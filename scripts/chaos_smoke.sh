#!/usr/bin/env bash
# Chaos smoke: the resilience layer under a seeded, replayable fault
# schedule. Builds race-enabled binaries, packs a small corpus, then
# asserts, in order:
#
#   1. a clean baseline fingerprint;
#   2. bit-identical fingerprints under injected read faults, kills and
#      latency at 1, 2 and 4 workers — retries absorb every fault;
#   3. replayability: the same seed injects the identical fault schedule
#      (the injector summary lines match across runs);
#   4. an HTTP fleet with one dead address still completes bit-identically
#      after the coordinator declares the ghost dead;
#   5. crash/resume: a run killed mid-flight by injected task kills leaves
#      a checkpoint journal; the resumed run skips the journaled tasks and
#      lands on the same fingerprint;
#   6. degraded results: a corrupted shard fails a -verify-reads run
#      loudly, while -allow-partial skips exactly the damaged task, prints
#      the degraded manifest, and yields the same degraded fingerprint at
#      1 and 2 workers.
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

# Race-enabled builds: the whole point of chaos is exercising the retry /
# quarantine / re-dispatch paths concurrently, so run them under the
# detector.
go build -race -o "$work/corpusgen" ./cmd/corpusgen
go build -race -o "$work/reshape" ./cmd/reshape
go build -race -o "$work/pipeline" ./cmd/pipeline
go build -race -o "$work/worker" ./cmd/worker

"$work/corpusgen" -spec text -scale 0.0005 -out "$work/corpus" >/dev/null
# Small units over small shards: every shard is its own task, so a
# 4-worker fleet has real contention and -allow-partial has a real
# blast-radius boundary to respect.
"$work/reshape" -in "$work/corpus" -pack -out "$work/packs" -unit 4000 -shard 32768 >/dev/null

measure="-packs $work/packs -measure -measure-only -grep the,and"
fp() { sed -n 's/^measurement fingerprint: \([0-9a-f]*\).*/\1/p' "$1" | head -n 1; }
fault_line() { sed -n 's/^fault injection: //p' "$1" | head -n 1; }

# 1. Clean baseline.
"$work/pipeline" $measure >"$work/clean.log"
base=$(fp "$work/clean.log")
if [ -z "$base" ]; then
    echo "chaos_smoke: no fingerprint from the clean run" >&2
    cat "$work/clean.log" >&2
    exit 1
fi
echo "chaos_smoke: clean fingerprint $base"

# 2. Seeded faults at 1, 2 and 4 workers: identical fingerprint, and the
#    injector must actually have fired (a chaos run that injects nothing
#    proves nothing).
spec='seed=7,readerr=0.05,kill=0.05,latencyrate=0.1,latency=1ms'
for w in 1 2 4; do
    "$work/pipeline" $measure -workers "$w" -max-attempts 8 -fault "$spec" >"$work/fault$w.log"
    got=$(fp "$work/fault$w.log")
    if [ "$got" != "$base" ]; then
        echo "chaos_smoke: faulted -workers $w fingerprint $got != $base" >&2
        cat "$work/fault$w.log" >&2
        exit 1
    fi
    if ! grep -q 'injected=' "$work/fault$w.log"; then
        echo "chaos_smoke: faulted -workers $w run reported no injector summary" >&2
        cat "$work/fault$w.log" >&2
        exit 1
    fi
    if grep -q 'injected=0' "$work/fault$w.log"; then
        echo "chaos_smoke: fault schedule injected nothing at -workers $w" >&2
        cat "$work/fault$w.log" >&2
        exit 1
    fi
done
echo "chaos_smoke: bit-identical under faults at 1/2/4 workers ($(fault_line "$work/fault2.log"))"

# 3. Replay: the same seed must inject the identical schedule. Fault
#    decisions are keyed on (site, key, attempt), not wall clock or
#    interleaving, so the summary line is reproducible run over run.
"$work/pipeline" $measure -workers 2 -max-attempts 8 -fault "$spec" >"$work/replay.log"
if [ "$(fault_line "$work/replay.log")" != "$(fault_line "$work/fault2.log")" ]; then
    echo "chaos_smoke: fault schedule not replayable:" >&2
    echo "  first:  $(fault_line "$work/fault2.log")" >&2
    echo "  replay: $(fault_line "$work/replay.log")" >&2
    exit 1
fi
echo "chaos_smoke: fault schedule replays identically"

# 4. HTTP fleet with a dead address: the coordinator quarantines the
#    ghost, declares it dead after failed probes, and the survivors
#    finish bit-identically.
"$work/worker" -packs "$work/packs" -addr 127.0.0.1:0 -name live >"$work/live.log" 2>&1 &
pids="$pids $!"
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$work/live.log" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "chaos_smoke: worker daemon never reported its address" >&2
    cat "$work/live.log" >&2
    exit 1
fi
# 127.0.0.1:9 (discard) refuses connections: a permanently dead peer.
"$work/pipeline" $measure -worker-addrs "$addr,127.0.0.1:9" >"$work/http.log"
got=$(fp "$work/http.log")
if [ "$got" != "$base" ]; then
    echo "chaos_smoke: fleet-with-dead-peer fingerprint $got != $base" >&2
    cat "$work/http.log" >&2
    exit 1
fi
if ! grep -q 'died; tasks re-dispatched' "$work/http.log"; then
    echo "chaos_smoke: dead peer was never declared dead" >&2
    cat "$work/http.log" >&2
    exit 1
fi
echo "chaos_smoke: HTTP fleet survives a dead peer bit-identically"

# 5. Crash, then resume. The first run's injected kills exhaust a
#    single-attempt budget partway through; completed tasks are already
#    journaled. The resumed run must skip them (resumed > 0) and land on
#    the clean fingerprint.
journal="$work/scan.journal"
if "$work/pipeline" $measure -workers 1 -checkpoint "$journal" \
        -max-attempts 1 -fault 'seed=5,kill=0.9' >"$work/crash.log" 2>&1; then
    echo "chaos_smoke: kill-heavy single-attempt run unexpectedly succeeded" >&2
    cat "$work/crash.log" >&2
    exit 1
fi
if [ ! -s "$journal" ]; then
    echo "chaos_smoke: crashed run left no checkpoint journal" >&2
    exit 1
fi
"$work/pipeline" $measure -workers 1 -checkpoint "$journal" -resume >"$work/resume.log"
got=$(fp "$work/resume.log")
if [ "$got" != "$base" ]; then
    echo "chaos_smoke: resumed fingerprint $got != $base" >&2
    cat "$work/resume.log" >&2
    exit 1
fi
resumed=$(sed -n 's/^  resumed \([0-9]*\) task(s) from checkpoint$/\1/p' "$work/resume.log")
if [ -z "$resumed" ] || [ "$resumed" -lt 1 ]; then
    echo "chaos_smoke: resume skipped no journaled tasks (resumed='$resumed')" >&2
    cat "$work/crash.log" "$work/resume.log" >&2
    exit 1
fi
echo "chaos_smoke: crash left $resumed journaled task(s); resume is bit-identical"

# 6. Degraded results from a corrupted shard. Flip one payload byte on
#    disk (offset 200 sits inside the first member's payload: 8 B pack
#    header + 16 B record prefix + name, then ~4000 B of unit content).
#    -verify-reads must fail loudly; adding -allow-partial must skip
#    exactly the damaged task and degrade deterministically.
victim=$(ls "$work/packs"/*.pack | sort | tail -n 1)
off=200
orig=$(od -An -tu1 -j$off -N1 "$victim" | tr -d ' ')
if [ "$orig" = "255" ]; then rep='\000'; else rep='\377'; fi
printf "$rep" | dd of="$victim" bs=1 seek=$off conv=notrunc 2>/dev/null
if "$work/pipeline" $measure -verify-reads >"$work/strict.log" 2>&1; then
    echo "chaos_smoke: -verify-reads did not fail on a corrupted shard" >&2
    cat "$work/strict.log" >&2
    exit 1
fi
if ! grep -q 'corrupt' "$work/strict.log"; then
    echo "chaos_smoke: strict failure does not mention corruption" >&2
    cat "$work/strict.log" >&2
    exit 1
fi
degraded=""
for w in 1 2; do
    "$work/pipeline" $measure -verify-reads -allow-partial -workers "$w" >"$work/partial$w.log"
    got=$(fp "$work/partial$w.log")
    if [ -z "$got" ]; then
        echo "chaos_smoke: degraded -workers $w run produced no fingerprint" >&2
        cat "$work/partial$w.log" >&2
        exit 1
    fi
    if ! grep -q 'DEGRADED RESULT' "$work/partial$w.log"; then
        echo "chaos_smoke: degraded -workers $w run printed no manifest" >&2
        cat "$work/partial$w.log" >&2
        exit 1
    fi
    if [ -z "$degraded" ]; then
        degraded="$got"
    elif [ "$got" != "$degraded" ]; then
        echo "chaos_smoke: degraded fingerprint differs across worker counts: $got != $degraded" >&2
        exit 1
    fi
done
if [ "$degraded" = "$base" ]; then
    echo "chaos_smoke: degraded fingerprint equals the clean one — nothing was skipped" >&2
    exit 1
fi
echo "chaos_smoke: corrupt shard fails strict, degrades deterministically ($degraded)"

echo "chaos_smoke: OK"
