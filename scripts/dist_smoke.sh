#!/usr/bin/env bash
# End-to-end smoke of the distributed shard scan: generate a small
# corpus, reshape it into pack shards, measure it three ways — one-shot
# single-node, in-process -workers 2, and two cmd/worker daemons over
# HTTP — and require the measurement fingerprint to be bit-identical
# across all three. Then SIGTERM the daemons and require a graceful
# drain with exit code 130 (the shared signal contract).
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/corpusgen" ./cmd/corpusgen
go build -o "$work/reshape" ./cmd/reshape
go build -o "$work/pipeline" ./cmd/pipeline
go build -o "$work/worker" ./cmd/worker

"$work/corpusgen" -spec text -scale 0.0002 -out "$work/corpus" >/dev/null
"$work/reshape" -in "$work/corpus" -pack -out "$work/packs" -shard 65536 >/dev/null

measure_flags="-packs $work/packs -measure -measure-only -grep the,and"
fp() { sed -n 's/^measurement fingerprint: \([0-9a-f]*\).*/\1/p' "$1" | head -n 1; }

# 1. Single-node baseline.
"$work/pipeline" $measure_flags >"$work/local.log"
base=$(fp "$work/local.log")
if [ -z "$base" ]; then
    echo "dist_smoke: no fingerprint from the single-node run" >&2
    cat "$work/local.log" >&2
    exit 1
fi
echo "dist_smoke: single-node fingerprint $base"

# 2. In-process coordinator–worker engine.
"$work/pipeline" $measure_flags -workers 2 >"$work/inproc.log"
inproc=$(fp "$work/inproc.log")
if [ "$inproc" != "$base" ]; then
    echo "dist_smoke: in-process -workers 2 fingerprint $inproc != $base" >&2
    cat "$work/inproc.log" >&2
    exit 1
fi
echo "dist_smoke: -workers 2 bit-identical"

# 3. Two worker daemons over HTTP, each deriving the plan from its own
#    view of the same shards; the fingerprint preflight pins agreement.
for i in 0 1; do
    "$work/worker" -packs "$work/packs" -addr 127.0.0.1:0 -name "w$i" >"$work/w$i.log" 2>&1 &
    pids="$pids $!"
done
addrs=""
for i in 0 1; do
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$work/w$i.log" | head -n 1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "dist_smoke: worker $i never reported its address" >&2
        cat "$work/w$i.log" >&2
        exit 1
    fi
    addrs="$addrs,$addr"
done
addrs=${addrs#,}
echo "dist_smoke: worker daemons at $addrs"

"$work/pipeline" $measure_flags -worker-addrs "$addrs" >"$work/http.log"
http=$(fp "$work/http.log")
if [ "$http" != "$base" ]; then
    echo "dist_smoke: HTTP fleet fingerprint $http != $base" >&2
    cat "$work/http.log" >&2
    exit 1
fi
if ! grep -q "worker http" "$work/http.log"; then
    echo "dist_smoke: no per-worker tallies in the coordinator output" >&2
    cat "$work/http.log" >&2
    exit 1
fi
echo "dist_smoke: HTTP fleet bit-identical"

# 4. Graceful shutdown: SIGTERM each daemon, require drain + exit 130.
for p in $pids; do kill -TERM "$p"; done
for p in $pids; do
    rc=0
    wait "$p" || rc=$?
    if [ "$rc" -ne 130 ]; then
        echo "dist_smoke: worker exited $rc after SIGTERM, want 130" >&2
        cat "$work"/w*.log >&2
        exit 1
    fi
done
pids=""
for i in 0 1; do
    if ! grep -q "drained" "$work/w$i.log"; then
        echo "dist_smoke: worker $i has no drain line" >&2
        cat "$work/w$i.log" >&2
        exit 1
    fi
done
echo "dist_smoke: OK (3-way bit-identical, graceful drain, exit 130)"
