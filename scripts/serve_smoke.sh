#!/usr/bin/env bash
# End-to-end smoke of the resident corpus service: generate a small
# corpus, reshape it into pack shards, start serve on an ephemeral port,
# exercise grep / measure / manifest / metrics over HTTP, then SIGTERM
# the daemon and require a graceful drain with exit code 130 (the shared
# signal contract every command in the repo follows).
set -euo pipefail

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/corpusgen" ./cmd/corpusgen
go build -o "$work/reshape" ./cmd/reshape
go build -o "$work/serve" ./cmd/serve

"$work/corpusgen" -spec text -scale 0.0002 -out "$work/corpus" >/dev/null
"$work/reshape" -in "$work/corpus" -pack -out "$work/packs" -shard 1048576 >/dev/null

"$work/serve" -packs "$work/packs" -addr 127.0.0.1:0 >"$work/serve.log" 2>&1 &
pid=$!

# The daemon prints "serve: listening on http://HOST:PORT ..." once ready.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's|.*http://\([0-9.:]*\).*|\1|p' "$work/serve.log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_smoke: daemon exited before listening" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve_smoke: daemon never reported its address" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "serve_smoke: daemon at $addr"

curl -fsS -X POST "http://$addr/v1/grep" -d '{"patterns":["the","and"]}' | grep -q '"matches"'
curl -fsS -X POST "http://$addr/v1/measure" -d '{"complexity":true}' | grep -q '"tokens"'
curl -fsS "http://$addr/v1/manifest" | grep -q '"fingerprint"'
curl -fsS "http://$addr/metrics" | grep -q '"queue_depth"'
echo "serve_smoke: endpoints answered"

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 130 ]; then
    echo "serve_smoke: daemon exited $rc after SIGTERM, want 130" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
if ! grep -q "serve: drained" "$work/serve.log"; then
    echo "serve_smoke: no drain line in the daemon log" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "serve_smoke: OK (graceful drain, exit 130)"
