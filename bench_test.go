package repro

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (regenerating the same rows/series the paper
// reports), plus micro-benchmarks and ablations for the design choices
// DESIGN.md calls out. Benchmarks reporting figure metrics expose them via
// b.ReportMetric so `go test -bench` output carries the reproduced shape
// numbers (who wins, by what factor).

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/binpack"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/provision"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// benchExperiment runs a figure driver once per iteration and reports the
// named metrics from its Values.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	driver, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("no driver %s", id)
	}
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = driver(experiments.Config{Seed: 2011})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- Figures and tables, in the paper's order. ---

func BenchmarkFig1aHTMLDistribution(b *testing.B) {
	benchExperiment(b, "fig1a", "frac_below_50kB", "mean_bytes")
}

func BenchmarkFig1bTextDistribution(b *testing.B) {
	benchExperiment(b, "fig1b", "frac_below_1kB", "frac_below_5kB")
}

func BenchmarkFig2ShapeAnalysis(b *testing.B) {
	benchExperiment(b, "fig2", "convex_prefers_new_instances", "concave_prefers_packing")
}

func BenchmarkFig3SmallProbeInstability(b *testing.B) {
	benchExperiment(b, "fig3", "max_cv")
}

func BenchmarkFig4Plateau(b *testing.B) {
	benchExperiment(b, "fig4", "plateau_ratio_10MB_2GB", "orig_vs_plateau")
}

func BenchmarkFig5EBSSpikes(b *testing.B) {
	benchExperiment(b, "fig5", "spikes", "plateau_spread")
}

func BenchmarkEq12GrepFits(b *testing.B) {
	benchExperiment(b, "eq12", "eq1_slope_s_per_byte", "eq1_r2")
}

func BenchmarkFig6HundredGB(b *testing.B) {
	benchExperiment(b, "fig6", "improvement_vs_original", "underestimate_frac")
}

func BenchmarkFig7POSUnits(b *testing.B) {
	benchExperiment(b, "fig7", "large_unit_degradation", "preferred_unit")
}

func BenchmarkEq34POSFits(b *testing.B) {
	benchExperiment(b, "eq34", "eq3_slope_s_per_byte", "adjustment_a")
}

func BenchmarkFig8aFirstFitSchedule(b *testing.B) {
	benchExperiment(b, "fig8a", "instances", "missed")
}

func BenchmarkFig8bUniformSchedule(b *testing.B) {
	benchExperiment(b, "fig8b", "instances", "missed")
}

func BenchmarkFig8cRefitSchedule(b *testing.B) {
	benchExperiment(b, "fig8c", "instances", "missed")
}

func BenchmarkFig8dAdjustedSchedule(b *testing.B) {
	benchExperiment(b, "fig8d", "instances", "missed")
}

func BenchmarkFig9aTwoHourSchedule(b *testing.B) {
	benchExperiment(b, "fig9a", "instances", "instance_hours")
}

func BenchmarkFig9bTwoHourRefit(b *testing.B) {
	benchExperiment(b, "fig9b", "instances", "missed")
}

func BenchmarkFig9cTwoHourAdjusted(b *testing.B) {
	benchExperiment(b, "fig9c", "instance_hours", "missed")
}

func BenchmarkComplexityBooks(b *testing.B) {
	benchExperiment(b, "complexity", "ratio")
}

func BenchmarkSwitchCalc(b *testing.B) {
	benchExperiment(b, "switchcalc", "switch_gain_gb")
}

func BenchmarkCostFunction(b *testing.B) {
	benchExperiment(b, "costfn", "subhour_premium")
}

// --- Micro-benchmarks of the underlying kernels. ---

func benchItems(n int, seed int64) []binpack.Item {
	dist := corpus.Text400K(1).Sizes
	r := stats.NewRand(seed, "bench-items")
	items := make([]binpack.Item, n)
	for i := range items {
		items[i] = binpack.Item{ID: fmt.Sprintf("f%06d", i), Size: dist.Sample(r)}
	}
	return items
}

func BenchmarkFirstFit10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.FirstFit(items, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstFitLinear10k is the O(n·bins) reference scan the indexed
// FirstFit replaced; kept as the speedup baseline.
func BenchmarkFirstFitLinear10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.FirstFitLinear(items, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstFitDecreasing10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.FirstFitDecreasing(items, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubsetSumFirstFit10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.SubsetSumFirstFit(items, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsetSumFirstFitLinear10k is the quadratic reference for the
// indexed subset-sum packer.
func BenchmarkSubsetSumFirstFitLinear10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.SubsetSumFirstFitLinear(items, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastLoaded10k(b *testing.B) {
	items := benchItems(10_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.LeastLoaded(items, 27); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrepBMH1MB(b *testing.B) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 3)
	text := g.Text(1_000_000)
	s, err := textproc.NewSearcher("xyzzyplugh")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountBytes(text)
	}
}

func BenchmarkGrepRegexp1MB(b *testing.B) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 3)
	text := g.Text(1_000_000)
	s, err := textproc.NewRegexpSearcher(`xy+zzy`)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountBytes(text)
	}
}

func BenchmarkPOSTagger100kB(b *testing.B) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 4)
	text := g.Text(100_000)
	tagger := textproc.NewTagger()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tagger.TagText(text)
	}
}

func BenchmarkTokenize100kB(b *testing.B) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 5)
	text := g.Text(100_000)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textproc.Tokenize(text)
	}
}

func BenchmarkParallelGrepFS(b *testing.B) {
	fs, err := corpus.GenerateWithContentEager(corpus.Text400K(0.0005), 9, 0) // 200 files
	if err != nil {
		b.Fatal(err)
	}
	s, err := textproc.NewSearcher("xyzzyplugh")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fs.TotalSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ParallelGrepFS(fs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildManifest(b *testing.B) {
	fs, err := corpus.GenerateWithContentEager(corpus.Text400K(0.0005), 10, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fs.TotalSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vfs.BuildManifest(fs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextGeneration100kB(b *testing.B) {
	b.SetBytes(100_000)
	for i := 0; i < b.N; i++ {
		g := corpus.NewGenerator(corpus.NewsStyle(), int64(i))
		g.Text(100_000)
	}
}

func BenchmarkModelFitAll(b *testing.B) {
	var xs, ys []float64
	for v := 1e6; v <= 1e10; v *= 2 {
		xs = append(xs, v)
		ys = append(ys, 0.3+8.65e-5*v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfmodel.FitAll(xs, ys)
	}
}

// --- Ablations for DESIGN.md's design choices. ---

// AblationPackingQuality compares bins used by the three packing
// heuristics at the probe unit size (the paper chose subset-sum first fit
// for probe construction).
func BenchmarkAblationPackingQuality(b *testing.B) {
	// Item sizes comparable to the bin capacity, where heuristics differ.
	r := stats.NewRand(2, "ablation-packing")
	items := make([]binpack.Item, 20_000)
	for i := range items {
		items[i] = binpack.Item{ID: fmt.Sprintf("p%06d", i), Size: r.Int63n(90_000) + 10_000}
	}
	var ff, ffd, ss int
	for i := 0; i < b.N; i++ {
		a, err := binpack.FirstFit(items, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		c, err := binpack.FirstFitDecreasing(items, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		d, err := binpack.SubsetSumFirstFit(items, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		ff, ffd, ss = len(a), len(c), len(d)
	}
	b.ReportMetric(float64(ff), "bins_firstfit")
	b.ReportMetric(float64(ffd), "bins_ffd")
	b.ReportMetric(float64(ss), "bins_subsetsum")
}

// AblationWrapper quantifies the paper's batch-wrapper decision for the
// POS tagger: one JVM per run versus one per file.
func BenchmarkAblationPOSWrapper(b *testing.B) {
	wrapped := workload.NewPOS()
	unwrapped := workload.NewPOS()
	unwrapped.Wrapper = false
	items := workload.Items(make([]int64, 1000))
	for i := range items {
		items[i] = workload.NewItem(2000)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		cost := func(p *workload.POS) float64 {
			total := p.Startup(nil).Seconds()
			for _, it := range items {
				total += p.PerFile(nil).Seconds() + p.Process(it, 80, nil).Seconds()
			}
			return total
		}
		ratio = cost(unwrapped) / cost(wrapped)
	}
	b.ReportMetric(ratio, "no_wrapper_slowdown_x")
}

// AblationUniformVsFirstFit quantifies the Fig. 8(b) design choice at the
// planning level: the spread of predicted per-instance times.
func BenchmarkAblationUniformVsFirstFit(b *testing.B) {
	items := benchItems(50_000, 3)
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0.327, 0.327 + 0.865e-4*1e9})
	if err != nil {
		b.Fatal(err)
	}
	pl := provision.NewPlanner(m)
	var spreadFF, spreadUni float64
	for i := 0; i < b.N; i++ {
		ff, err := pl.PlanDeadline(items, 3600, provision.FirstFitOriginal)
		if err != nil {
			b.Fatal(err)
		}
		uni, err := pl.PlanDeadline(items, 3600, provision.UniformBins)
		if err != nil {
			b.Fatal(err)
		}
		spread := func(p *provision.Plan) float64 {
			s := stats.Summarize(p.Predicted)
			return s.Max - s.Min
		}
		spreadFF, spreadUni = spread(ff), spread(uni)
	}
	b.ReportMetric(spreadFF, "spread_firstfit_s")
	b.ReportMetric(spreadUni, "spread_uniform_s")
}

// AblationQualification measures the value of the §4 bonnie++ loop: miss
// counts with and without instance qualification on a heterogeneous cloud.
func BenchmarkAblationQualification(b *testing.B) {
	items := benchItems(20_000, 4)
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0.327, 0.327 + 0.865e-4*1e9})
	if err != nil {
		b.Fatal(err)
	}
	pl := provision.NewPlanner(m)
	// A deadline that leaves the bins nearly full, so slow instances from
	// the quality lottery genuinely miss it.
	deadline := 0.327 + 0.865e-4*float64(binpack.TotalSize(items))/2*1.18
	plan, err := pl.PlanDeadline(items, deadline, provision.UniformBins)
	if err != nil {
		b.Fatal(err)
	}
	var missLottery, missQualified float64
	for i := 0; i < b.N; i++ {
		lot, err := provision.Execute(NewCloud(int64(i)), plan, provision.ExecuteOptions{App: workload.NewPOS()})
		if err != nil {
			b.Fatal(err)
		}
		qual, err := provision.Execute(NewCloud(int64(i)), plan, provision.ExecuteOptions{App: workload.NewPOS(), Qualify: true})
		if err != nil {
			b.Fatal(err)
		}
		missLottery += float64(lot.Missed)
		missQualified += float64(qual.Missed)
	}
	b.ReportMetric(missLottery/float64(b.N), "mean_missed_lottery")
	b.ReportMetric(missQualified/float64(b.N), "mean_missed_qualified")
}

// AblationMergeDerivation quantifies the §4 construction trick: building
// the probe family once at s₀ and merging bins for the multiples, versus
// re-running the subset-sum packing at every unit size.
func BenchmarkAblationMergeDerivation(b *testing.B) {
	items := benchItems(20_000, 5)
	multiples := []int{2, 5, 10, 50, 100}
	b.Run("merge-derived", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base, err := binpack.SubsetSumFirstFit(items, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range multiples {
				if _, err := binpack.MergeGroups(base, k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("repack-per-unit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, unit := range []int64{100_000, 200_000, 500_000, 1_000_000, 5_000_000, 10_000_000} {
				if _, err := binpack.SubsetSumFirstFit(items, unit); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Heuristic head-to-head at capacity-scale item sizes.
func BenchmarkHeuristicComparison(b *testing.B) {
	r := stats.NewRand(6, "bench-heuristics")
	items := make([]binpack.Item, 5000)
	for i := range items {
		items[i] = binpack.Item{ID: fmt.Sprintf("h%05d", i), Size: r.Int63n(90_000) + 10_000}
	}
	packers := []struct {
		name string
		pack func([]binpack.Item, int64) ([]*binpack.Bin, error)
	}{
		{"next-fit", binpack.NextFit},
		{"first-fit", binpack.FirstFit},
		{"best-fit", binpack.BestFit},
		{"ffd", binpack.FirstFitDecreasing},
		{"bfd", binpack.BestFitDecreasing},
		{"subset-sum", binpack.SubsetSumFirstFit},
	}
	for _, p := range packers {
		p := p
		b.Run(p.name, func(b *testing.B) {
			var bins int
			for i := 0; i < b.N; i++ {
				out, err := p.pack(items, 100_000)
				if err != nil {
					b.Fatal(err)
				}
				bins = len(out)
			}
			b.ReportMetric(float64(bins), "bins")
		})
	}
}

// AblationFitSelection compares in-sample best-R² selection against
// cross-validated selection on noisy near-linear data.
func BenchmarkAblationFitSelection(b *testing.B) {
	r := stats.NewRand(7, "bench-cv")
	var xs, ys []float64
	for v := 1e6; v <= 1e10; v *= 1.6 {
		for rep := 0; rep < 3; rep++ {
			xs = append(xs, v)
			ys = append(ys, (0.3+8.65e-5*v)*(1+r.NormFloat64()*0.05))
		}
	}
	var r2Err, cvErr float64
	truth := func(x float64) float64 { return 0.3 + 8.65e-5*x }
	relErr := func(m perfmodel.Model) float64 {
		at := 3e10 // extrapolation point beyond the data
		return math.Abs(m.Predict(at)/truth(at) - 1)
	}
	for i := 0; i < b.N; i++ {
		best, err := perfmodel.Best(perfmodel.FitAll(xs, ys))
		if err != nil {
			b.Fatal(err)
		}
		cv, _, err := perfmodel.SelectByCV(xs, ys, 5)
		if err != nil {
			b.Fatal(err)
		}
		r2Err = relErr(best)
		cvErr = relErr(cv)
	}
	b.ReportMetric(r2Err, "extrap_err_bestR2")
	b.ReportMetric(cvErr, "extrap_err_cv")
}

// CostCurve sweep performance and the sub-hour premium it exposes.
func BenchmarkCostCurve(b *testing.B) {
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0.327, 0.327 + 0.865e-4*1e9})
	if err != nil {
		b.Fatal(err)
	}
	pl := provision.NewPlanner(m)
	deadlines := []float64{300, 600, 1800, 3600, 7200, 14400, 28800}
	var premium float64
	for i := 0; i < b.N; i++ {
		curve, err := pl.CostCurve(1_000_000_000, deadlines)
		if err != nil {
			b.Fatal(err)
		}
		premium = curve[0].CostUSD / curve[3].CostUSD
	}
	b.ReportMetric(premium, "premium_5min_vs_1h")
}

// Retrieval-time experiment as a benchmark (the §1 output claim).
func BenchmarkRetrievalSegmentation(b *testing.B) {
	benchExperiment(b, "retrieval", "speedup_2M_to_100_files")
}

// --- Per-kernel compute: one kernel, one 1 MB block, no engine. ---
// These are the hot-loop throughput numbers the kernel-compute rework is
// held to; cmd/bench records the same cycle in BENCH.json's kernels
// section.

func benchKernelPerMB(b *testing.B, mk func() scan.Kernel) {
	b.Helper()
	text := corpus.NewGenerator(corpus.NewsStyle(), 6).Text(1 << 20)
	src := scan.Source{Name: "kernel-1mb", Size: int64(len(text))}
	k := mk()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Begin(src)
		k.Block(text)
		k.End()
	}
}

func BenchmarkKernelChecksumPerMB(b *testing.B) {
	benchKernelPerMB(b, func() scan.Kernel { return scan.NewChecksum() })
}

func BenchmarkKernelMatchPerMB(b *testing.B) {
	ms, err := textproc.NewMultiSearcher([]string{"the", "and", "president", "market", "city", "nation", "report", "error"})
	if err != nil {
		b.Fatal(err)
	}
	benchKernelPerMB(b, func() scan.Kernel { return textproc.NewMatchKernel(ms) })
}

func BenchmarkKernelStatsPerMB(b *testing.B) {
	benchKernelPerMB(b, func() scan.Kernel { return textproc.NewStatsKernel() })
}

func BenchmarkKernelComplexityPerMB(b *testing.B) {
	tagger := textproc.NewTagger()
	benchKernelPerMB(b, func() scan.Kernel { return workload.NewComplexityKernel(tagger) })
}

// Checksum throughput over the reshaping invariant check.
func BenchmarkCombinedChecksum(b *testing.B) {
	fs, err := corpus.GenerateWithContent(corpus.Text400K(0.0005), 8) // 200 files
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fs.TotalSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vfs.CombinedChecksum(fs); err != nil {
			b.Fatal(err)
		}
	}
}
