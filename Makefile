# Developer entry points. `make verify` is the gate CI and pre-commit run;
# `make bench` regenerates BENCH.json; `make bench-smoke` just proves every
# benchmark still executes.

GO ?= go

.PHONY: all build test test-nommap test-scandebug verify verify-quick bench bench-smoke bench-pack bench-kernels serve-smoke dist-smoke chaos-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-nommap exercises the portable packstore fallback (pread into a
# private buffer instead of mmap) that non-unix builds get unconditionally.
test-nommap:
	$(GO) test -tags packstore_nommap ./internal/packstore ./internal/vfs

# test-scandebug runs the scan suite with recycled block buffers poisoned
# (0xDB) so a kernel that retains a borrowed Block slice fails loudly.
# internal/vfs rides along so the mapped imports (packs and -dir) are
# exercised under the same poison build.
test-scandebug:
	$(GO) test -tags scandebug ./internal/scan ./internal/vfs

# verify is the tier-1 gate: vet clean and the full suite race-clean.
# The ./... wildcard covers every package, including internal/packstore's
# shared-handle concurrency and recovery tests.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# verify-quick is the inner-loop gate: a full build plus the suite without
# the race detector. Minutes faster than verify; run verify before pushing.
verify-quick:
	$(GO) build ./...
	$(GO) test ./...

# bench regenerates BENCH.json, the committed record of the acceptance
# numbers (indexed packers vs linear references, tokenizer allocations,
# parallel checksum/grep fan-outs, the fused scan vs separate passes).
# cmd/bench also writes a timestamped BENCH_<yyyymmdd>.json snapshot next
# to it, so the perf trajectory accumulates across PRs; commit both.
bench:
	$(GO) run ./cmd/bench -out BENCH.json

# bench-smoke runs every benchmark exactly once — an execution check, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-pack measures just the packstore paths (write, verify, O(1) random
# access) without rewriting BENCH.json.
bench-pack:
	$(GO) test -run '^$$' -bench Pack ./internal/packstore

# bench-kernels regenerates BENCH.json and asserts the kernel-compute
# acceptance ratios recorded in it (reworked multisearch vs the frozen
# reference walk, fused scan vs raw read) via the committed-number tests.
bench-kernels:
	$(GO) run ./cmd/bench -out BENCH.json
	$(GO) test -run 'TestBenchJSONKernelComputeAcceptance|TestBenchJSONZeroCopyAcceptance' -v .
	grep -q '"multisearch_fast_vs_old"' BENCH.json
	grep -q '"fused_scan_vs_raw_read"' BENCH.json

# serve-smoke boots the resident corpus service against freshly packed
# shards on an ephemeral port, exercises grep/measure/manifest/metrics
# over HTTP, and asserts a graceful SIGTERM drain with exit code 130.
serve-smoke:
	./scripts/serve_smoke.sh

# dist-smoke measures freshly packed shards three ways — single-node,
# in-process -workers 2, and two cmd/worker daemons over HTTP — and
# asserts a bit-identical measurement fingerprint across all three plus
# a graceful SIGTERM drain with exit code 130.
dist-smoke:
	./scripts/dist_smoke.sh

# chaos-smoke runs the resilience layer under a seeded, replayable fault
# schedule with race-enabled binaries: bit-identical fingerprints under
# injected read faults/kills/latency at 1/2/4 workers, identical replay
# of the schedule, an HTTP fleet surviving a dead peer, crash → resume
# from the checkpoint journal, and deterministic degraded results from a
# corrupted shard under -allow-partial.
chaos-smoke:
	./scripts/chaos_smoke.sh

clean:
	$(GO) clean ./...
