// Package repro is a reproduction of "Reshaping text data for efficient
// processing on Amazon EC2" (Turcu, Foster, Nestorov; Scientific
// Programming 19, 2011): reshape corpora of small files into unit files of
// an empirically-preferred size, fit a black-box performance model from
// probes, and derive EC2 execution plans that meet a deadline at minimal
// cost under hour-granular pricing.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core:      the end-to-end pipeline (probe → model → plan)
//   - internal/binpack:   first-fit / subset-sum packing heuristics
//   - internal/perfmodel: regression model families and deadline adjustment
//   - internal/provision: the §5 static planner and plan executor
//   - internal/cloudsim:  the deterministic EC2 simulator
//   - internal/corpus:    synthetic Newslab-like corpora
//   - internal/textproc:  real grep and POS-tagging kernels
//   - internal/scan:      fused streaming scan (one read per file, N kernels)
//   - internal/sched:     dynamic monitoring and spot plans (§7 extensions)
//
// Quick start:
//
//	fs, _ := repro.GenerateCorpus(repro.Text400K(0.01), 42)
//	p, _ := repro.NewPipeline(repro.PipelineConfig{
//	    Seed:            42,
//	    App:             repro.NewPOSApp(),
//	    DeadlineSeconds: 3600,
//	})
//	result, _ := p.Run(fs)
//	outcome, _ := p.Execute(result)
package repro

import (
	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/errs"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/provision"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Pipeline aliases for the end-to-end workflow.
type (
	// Pipeline drives probe → model → reshape → plan → execute.
	Pipeline = core.Pipeline
	// PipelineConfig parameterises a pipeline run.
	PipelineConfig = core.Config
	// PipelineResult carries the pipeline's artefacts.
	PipelineResult = core.Result
)

// NewPipeline constructs a pipeline with its own simulated cloud.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return core.New(cfg) }

// Reshape packs a corpus's files into unit files of the given size and
// returns the merged file system plus the packing manifest.
var Reshape = core.Reshape

// Fused measurement: one open and one streaming read per corpus file
// feeds every requested kernel (checksum, text stats, multi-pattern
// match counts, POS complexity) with bit-identical results at any
// worker count. See internal/scan and DESIGN.md §7.
type (
	// Measurement is the artefact of one fused scan.
	Measurement = core.Measurement
	// MeasureOptions selects the optional kernels.
	MeasureOptions = core.MeasureOptions
)

// Measure runs one fused scan over every file of a content-backed corpus.
var Measure = core.Measure

// MeasureCtx is Measure with cancellation.
var MeasureCtx = core.MeasureCtx

// MeasureSourcesCtx runs the fused measurement over an explicit ordered
// source list (see vfs.Sources / scan.SequentialOrder).
var MeasureSourcesCtx = core.MeasureSourcesCtx

// Corpus construction.
type (
	// FS is the virtual file system corpora live in.
	FS = vfs.FS
	// File is one (possibly content-backed) corpus file.
	File = vfs.File
	// CorpusSpec describes a synthetic dataset.
	CorpusSpec = corpus.Spec
)

// NewFS returns an empty virtual file system.
func NewFS() *FS { return vfs.NewFS() }

// ImportDir loads a real directory tree into a virtual file system.
var ImportDir = vfs.ImportDir

// ImportPack opens pack shards into a virtual file system whose files
// stream through shared per-shard handles.
var ImportPack = vfs.ImportPack

// ImportPackMapped opens pack shards memory-mapped: every imported file
// carries a zero-copy view of its bytes, so fused scans read borrowed
// windows of the mapping instead of copying through block buffers. The
// returned closer unmaps the shards and invalidates all views.
var ImportPackMapped = vfs.ImportPackMapped

// HTML18Mil returns the HTML news-corpus spec at the given scale
// (1.0 = the paper's 18 million files).
var HTML18Mil = corpus.HTML18Mil

// Text400K returns the extracted-text corpus spec at the given scale
// (1.0 = the paper's 400,000 files).
var Text400K = corpus.Text400K

// GenerateCorpus builds a metadata-only synthetic corpus.
var GenerateCorpus = corpus.Generate

// GenerateCorpusWithContent builds a corpus with deterministic text bytes.
var GenerateCorpusWithContent = corpus.GenerateWithContent

// CorpusProfile pairs a corpus with per-file complexity factors for
// heterogeneous-complexity studies (§5.2's closing observation).
type CorpusProfile = corpus.Profile

// GenerateCorpusProfile builds a corpus whose files carry complexity
// factors along a gradient.
var GenerateCorpusProfile = corpus.GenerateProfile

// Complexity gradients for GenerateCorpusProfile.
type (
	// FlatComplexity is a uniform-complexity corpus.
	FlatComplexity = corpus.FlatComplexity
	// RampComplexity rises linearly across the corpus.
	RampComplexity = corpus.RampComplexity
)

// Applications.

// App is a black-box application cost model (grep or the POS tagger).
type App = workload.App

// NewGrepApp returns the calibrated I/O-bound grep model.
func NewGrepApp() App { return workload.NewGrep() }

// NewPOSApp returns the calibrated CPU/memory-bound POS-tagger model.
func NewPOSApp() App { return workload.NewPOS() }

// NewSearcher compiles a literal streaming search pattern (the real grep
// kernel, for running over content-backed corpora).
var NewSearcher = textproc.NewSearcher

// NewMultiSearcher compiles N literal patterns into one Aho–Corasick
// automaton, so counting all of them costs a single pass over the bytes.
var NewMultiSearcher = textproc.NewMultiSearcher

// NewFoldedMultiSearcher is NewMultiSearcher with ASCII case folding.
var NewFoldedMultiSearcher = textproc.NewFoldedMultiSearcher

// NewTagger builds the real lexicon-driven POS tagger.
var NewTagger = textproc.NewTagger

// ExtractHTMLText strips markup from HTML, the operation that derived the
// paper's text corpus from its HTML corpus.
var ExtractHTMLText = textproc.ExtractText

// ExtractCorpus derives a text corpus from an HTML corpus file-by-file.
var ExtractCorpus = textproc.ExtractFS

// Modeling and planning.
type (
	// Model is a fitted execution-time predictor.
	Model = perfmodel.Model
	// Plan is a static provisioning plan.
	Plan = provision.Plan
	// Planner builds plans from a model and pricing.
	Planner = provision.Planner
	// Cloud is the simulated EC2 region.
	Cloud = cloudsim.Cloud
)

// NewCloud creates a deterministic simulated cloud.
var NewCloud = cloudsim.New

// NewPlanner creates a planner at the paper's small-instance rate.
var NewPlanner = provision.NewPlanner

// ExecutePlan runs a plan on a simulated cloud.
var ExecutePlan = provision.Execute

// SelectModelByCV chooses a performance-model family by k-fold
// cross-validation instead of in-sample R².
var SelectModelByCV = perfmodel.SelectByCV

// Error taxonomy (internal/errs). Every layer maps its failures onto
// these sentinels, so callers branch with errors.Is instead of matching
// message strings; StageError carries which pipeline stage died.
var (
	// ErrCancelled marks work interrupted by the caller's context.
	ErrCancelled = errs.ErrCancelled
	// ErrDeadline marks work stopped by an expired wall-clock deadline
	// (DeadlineSeconds arms one around the whole pipeline run).
	ErrDeadline = errs.ErrDeadline
	// ErrCorrupt marks stored data failing its checksum or declared size.
	ErrCorrupt = errs.ErrCorrupt
	// ErrNotFound marks a missing file or pack member.
	ErrNotFound = errs.ErrNotFound
	// ErrInvalid marks a rejected argument or configuration.
	ErrInvalid = errs.ErrInvalid
)

// StageError attributes an error to a pipeline stage (and optionally a
// file); retrieve it with errors.As, or just the stage name via StageOf.
type StageError = errs.StageError

// StageOf names the outermost pipeline stage an error passed through
// ("probing", "planning", "execution", …), or "" if none is recorded.
func StageOf(err error) string { return errs.StageOf(err) }

// IsCancellation reports whether err stems from context cancellation or
// an expired deadline (as opposed to a genuine task failure).
func IsCancellation(err error) bool { return errs.IsCancellation(err) }

// Experiments.

// RunExperiment regenerates one of the paper's tables or figures by ID
// (fig1a … fig9c, eq12, eq34, complexity, switchcalc, costfn).
func RunExperiment(id string, cfg experiments.Config) (*experiments.Report, error) {
	d, ok := experiments.Lookup(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return d(cfg)
}

// ExperimentConfig parameterises experiment reproduction.
type ExperimentConfig = experiments.Config

// ExperimentReport is a regenerated table/figure.
type ExperimentReport = experiments.Report

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "repro: unknown experiment " + string(e)
}
