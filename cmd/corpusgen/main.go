// Command corpusgen generates the synthetic corpora standing in for the
// paper's datasets: HTML_18mil (long-tailed HTML news articles) and
// Text_400K (small extracted text files).
//
// Usage:
//
//	corpusgen -spec text -scale 0.001                 # histogram to stdout
//	corpusgen -spec html -scale 0.0001 -out ./corpus  # write real files
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/corpus"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		specName = flag.String("spec", "text", "corpus spec: html or text")
		scale    = flag.Float64("scale", 0.001, "scale vs the paper's corpus (1.0 = full)")
		seed     = flag.Int64("seed", 2011, "random seed")
		outDir   = flag.String("out", "", "write content-backed files under this directory")
	)
	flag.Parse()

	var spec corpus.Spec
	switch *specName {
	case "html":
		spec = corpus.HTML18Mil(*scale)
	case "text":
		spec = corpus.Text400K(*scale)
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown spec %q (use html or text)\n", *specName)
		os.Exit(2)
	}

	if *outDir == "" {
		fs, err := corpus.Generate(spec, *seed)
		if err != nil {
			fatal(err)
		}
		binW, cap := int64(10*corpus.KB), 300*corpus.KB
		if *specName == "text" {
			binW, cap = corpus.KB, 160*corpus.KB
		}
		h, err := corpus.SizeHistogram(fs, binW, cap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d files, %d bytes total (mean %.0f)\n",
			spec.Name, fs.Len(), fs.TotalSize(), float64(fs.TotalSize())/float64(fs.Len()))
		fmt.Print(h.Render(30, 50))
		return
	}

	fs, err := corpus.GenerateWithContentEagerCtx(ctx, spec, *seed, 0)
	if err != nil {
		fatal(err)
	}
	if err := fs.ExportCtx(ctx, *outDir); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d files (%d bytes) under %s\n", fs.Len(), fs.TotalSize(), *outDir)
}

func fatal(err error) {
	cli.Fatal("corpusgen", err)
}
