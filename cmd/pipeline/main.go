// Command pipeline runs the paper's complete workflow end to end on a
// synthetic corpus or a real directory: qualify an instance, probe across
// unit file sizes, select the preferred unit, fit a performance model,
// reshape, plan for the deadline, and execute the plan on the simulated
// cloud.
//
// Usage:
//
//	pipeline -app pos -spec text -scale 0.002 -deadline 120
//	pipeline -app grep -dir ./corpus -deadline 3600
//	pipeline -app grep -packs ./packed -deadline 3600
//	pipeline -app pos -spec text -scale 0.002 -deadline 120 -fit cv
//	pipeline -app grep -dir ./corpus -grep error,warning,fatal -measure
//	pipeline -app pos -spec text -scale 0.002 -measure
//	pipeline -packs ./packed -measure -measure-only -workers 4
//	pipeline -packs ./packed -measure -measure-only -worker-addrs 127.0.0.1:9101,127.0.0.1:9102
//
// -grep and -measure share one fused scan: every file is opened and
// streamed exactly once, feeding the checksum, multi-pattern match,
// text-stats and (for -app pos) POS-complexity kernels per block.
//
// -workers N distributes that scan over N in-process workers through the
// coordinator–worker engine; -worker-addrs sends the tasks to remote
// worker daemons (cmd/worker) over HTTP instead. Either way the output
// is bit-identical to the single-node scan — the printed measurement
// fingerprint is the proof line scripts compare.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		appName  = flag.String("app", "grep", "application: grep or pos")
		specName = flag.String("spec", "text", "synthetic corpus: html or text (ignored with -dir)")
		scale    = flag.Float64("scale", 0.002, "synthetic corpus scale")
		dir      = flag.String("dir", "", "use a real directory instead of a synthetic corpus")
		packs    = flag.String("packs", "", "use a packed corpus: comma-separated pack files and/or directories of *.pack shards")
		deadline = flag.Float64("deadline", 3600, "deadline in seconds")
		seed     = flag.Int64("seed", 2011, "random seed")
		fit      = flag.String("fit", "r2", "model selection: r2, cv or weighted")
		execute  = flag.Bool("execute", true, "execute the plan on the simulated cloud")
		grepPats = flag.String("grep", "", "comma-separated literal patterns: count matches during the fused measurement scan")
		foldCase = flag.Bool("fold", false, "match -grep patterns ASCII case-insensitively")
		measure  = flag.Bool("measure", false, "fused single-pass scan of the corpus bytes (checksums + text stats; with -app pos also a per-file complexity profile that the run consumes)")
		workers  = flag.Int("workers", 0, "distribute the measurement scan over N in-process workers (0 = single-node scan)")
		wAddrs   = flag.String("worker-addrs", "", "distribute the measurement scan to remote worker daemons: comma-separated host:port list")
		onlyM    = flag.Bool("measure-only", false, "stop after the measurement scan (skip probing/planning/execution)")
		taskB    = flag.Int64("task-bytes", 0, "task chunking cap for shard-less sources (0 = default; must match remote workers)")

		faultSpec  = flag.String("fault", "", "seeded fault-injection spec, comma-separated key=value (e.g. seed=7,readerr=0.05,kill=0.1); see internal/fault")
		verifyR    = flag.Bool("verify-reads", false, "verify pack member checksums on every read (requires -packs); on-disk corruption fails loudly instead of skewing results")
		checkpoint = flag.String("checkpoint", "", "journal completed measurement tasks to this file (crash-safe checkpoint)")
		resume     = flag.Bool("resume", false, "resume from an existing -checkpoint journal, skipping tasks it already holds")
		allowPart  = flag.Bool("allow-partial", false, "degrade instead of failing when a task's data is corrupt: skip it and print a degraded-results manifest")
		maxAtt     = flag.Int("max-attempts", 0, "dispatch attempts per measurement task before the run fails (0 = default)")
	)
	flag.Parse()
	if *verifyR && *packs == "" {
		fmt.Fprintln(os.Stderr, "pipeline: -verify-reads needs a packed corpus (-packs)")
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "pipeline: -resume needs -checkpoint")
		os.Exit(2)
	}
	// Checkpointing, resume and degradation live in the coordinator; give
	// them a coordinator even when no explicit fleet was requested.
	if (*checkpoint != "" || *allowPart) && *workers == 0 && *wAddrs == "" {
		*workers = 1
	}

	var app workload.App
	switch *appName {
	case "grep":
		app = workload.NewGrep()
	case "pos":
		app = workload.NewPOS()
	default:
		fmt.Fprintf(os.Stderr, "pipeline: unknown app %q (grep or pos)\n", *appName)
		os.Exit(2)
	}
	var method core.FitMethod
	switch *fit {
	case "r2":
		method = core.FitBestR2
	case "cv":
		method = core.FitCrossValidated
	case "weighted":
		method = core.FitWeighted
	default:
		fmt.Fprintf(os.Stderr, "pipeline: unknown fit method %q (r2, cv or weighted)\n", *fit)
		os.Exit(2)
	}

	var fs *vfs.FS
	var err error
	if *packs != "" {
		var closer interface{ Close() error }
		if *verifyR {
			// Verified reads hash every member against the pack index as it
			// streams; that rules out the zero-copy raw windows, so this
			// import stays on plain section readers.
			fs, closer, err = vfs.ImportPackVerifiedCtx(ctx, strings.Split(*packs, ",")...)
		} else {
			// Packed corpora are memory-mapped: scans take the zero-copy
			// path, reading borrowed windows of each shard mapping. Keep the
			// mappings alive for the run.
			fs, closer, err = vfs.ImportPackMappedCtx(ctx, strings.Split(*packs, ",")...)
		}
		if err == nil {
			defer closer.Close()
		}
	} else if *dir != "" {
		// Unpacked corpora are memory-mapped per file, so -dir scans take
		// the same zero-copy windowing as mapped packs.
		var closer interface{ Close() error }
		fs, closer, err = vfs.ImportDirMappedCtx(ctx, *dir)
		if err == nil {
			defer closer.Close()
		}
	} else {
		var spec corpus.Spec
		switch *specName {
		case "html":
			spec = corpus.HTML18Mil(*scale)
		case "text":
			spec = corpus.Text400K(*scale)
		default:
			fmt.Fprintf(os.Stderr, "pipeline: unknown spec %q (html or text)\n", *specName)
			os.Exit(2)
		}
		if *grepPats != "" || *measure {
			// The fused scan needs real bytes; generate them lazily so the
			// corpus still never resides in memory at once.
			fs, err = corpus.GenerateWithContent(spec, *seed)
		} else {
			fs, err = corpus.Generate(spec, *seed)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("corpus: %d files, %d bytes\n", fs.Len(), fs.TotalSize())

	// Seeded fault injection wraps the corpus before the plan is built;
	// WrapFS preserves names, sizes and locality so the plan fingerprint —
	// and therefore the measurement — is identical to a clean run.
	var inj *fault.Injector
	if *faultSpec != "" {
		cfg, ferr := fault.ParseSpec(*faultSpec)
		if ferr != nil {
			fatal(ferr)
		}
		if cfg.Enabled() {
			if inj, err = fault.New(cfg); err != nil {
				fatal(err)
			}
			if fs, err = inj.WrapFS(fs); err != nil {
				fatal(err)
			}
			fmt.Printf("fault injection armed: %s\n", *faultSpec)
		}
	}

	// One fused scan serves every requested measurement: checksums, text
	// stats, multi-pattern grep and the POS complexity profile all ride the
	// same single read of each file (packed corpora shard-sequentially).
	var complexity map[string]float64
	if *grepPats != "" || *measure {
		if *wAddrs == "" && !contentBacked(fs) {
			fmt.Fprintln(os.Stderr, "pipeline: -grep/-measure need corpus bytes; use -dir or -packs (or a content-backed spec)")
			os.Exit(2)
		}
		spec := dist.Spec{FoldCase: *foldCase, Complexity: *measure && *appName == "pos"}
		if *grepPats != "" {
			spec.Patterns = strings.Split(*grepPats, ",")
		}
		plan := scan.NewPlan(vfs.Sources(fs.List()), scan.PlanOptions{TaskBytes: *taskB})

		opts := dist.Options{
			MaxAttempts:  *maxAtt,
			AllowPartial: *allowPart,
			Retry:        retry.Policy{Seed: *seed},
		}
		if *checkpoint != "" {
			var j *dist.Journal
			var jerr error
			if *resume {
				j, jerr = dist.OpenJournal(*checkpoint, plan.Fingerprint(), spec)
			} else {
				j, jerr = dist.CreateJournal(*checkpoint, plan.Fingerprint(), spec)
			}
			if jerr != nil {
				fatal(jerr)
			}
			defer j.Close()
			opts.Journal = j
		}

		var m *core.Measurement
		var err error
		switch {
		case *wAddrs != "":
			// Remote workers scan their own corpus views; the plan
			// fingerprint preflight catches any divergence. An armed
			// injector perturbs the HTTP transport, not the remote daemons
			// (give those their own -fault).
			var hc *http.Client
			if inj != nil {
				hc = &http.Client{Transport: inj.Transport(nil)}
			}
			var fleet []dist.Worker
			for _, a := range strings.Split(*wAddrs, ",") {
				a = strings.TrimSpace(a)
				if !strings.Contains(a, "://") {
					a = "http://" + a
				}
				if hc != nil {
					fleet = append(fleet, dist.NewHTTPWorkerClient(a, a, hc))
				} else {
					fleet = append(fleet, dist.NewHTTPWorker(a, a))
				}
			}
			m, err = distMeasure(ctx, plan, spec, fleet, opts)
		case *workers > 0:
			var fleet []dist.Worker
			for i := 0; i < *workers; i++ {
				name := fmt.Sprintf("w%d", i)
				l, lerr := dist.NewLocal(name, plan, spec)
				if lerr != nil {
					fatal(lerr)
				}
				if inj != nil {
					l.SetFault(inj.TaskKill(name))
				}
				fleet = append(fleet, l)
			}
			m, err = distMeasure(ctx, plan, spec, fleet, opts)
		default:
			m, err = core.MeasurePlanCtx(ctx, plan, spec.MeasureOptions())
		}
		if inj != nil {
			fmt.Printf("fault injection: %s\n", inj.Summary())
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("measured (one fused pass): %d tokens, %d words, %d sentences, %d lines, mean sentence %.1f words\n",
			m.Stats.Tokens, m.Stats.Words, m.Stats.Sentences, m.Lines, m.Stats.MeanSentence)
		fmt.Printf("measurement fingerprint: %016x (plan %016x, %d files, %d tasks)\n",
			m.Fingerprint(), plan.Fingerprint(), len(plan.Sources), len(plan.Tasks))
		for i, pat := range m.Patterns {
			fmt.Printf("  pattern %q: %d matches\n", pat, m.PatternTotals[i])
		}
		if m.Complexity != nil {
			complexity = m.Complexity
			var mean float64
			for _, c := range complexity {
				mean += c
			}
			fmt.Printf("  POS complexity profile: %d files, mean %.3f\n",
				len(complexity), mean/float64(len(complexity)))
		}
	}
	if *onlyM {
		return
	}

	// Scale the probe protocol to the corpus: escalate from ~1/100 of the
	// volume, cap at the corpus size.
	initial := fs.TotalSize() / 100
	if initial < 100_000 {
		initial = 100_000
	}
	if s0 := pickS0(fs); s0*5 > fs.TotalSize() {
		fmt.Printf("note: base unit %d bytes is large relative to the corpus; the unit-size sweep will be coarse\n", s0)
	}
	p, err := core.New(core.Config{
		Seed:            *seed,
		App:             app,
		DeadlineSeconds: *deadline,
		InitialVolume:   initial,
		MaxVolume:       fs.TotalSize(),
		S0:              pickS0(fs),
		Multiples:       []int{10, 100},
		FitMethod:       method,
	})
	if err != nil {
		fatal(err)
	}
	var res *core.Result
	if complexity != nil {
		res, err = p.RunProfileCtx(ctx, &corpus.Profile{FS: fs, Complexity: complexity})
	} else {
		res, err = p.RunCtx(ctx, fs)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("qualified instance: %s after %d attempt(s)\n", res.Instance.ID, res.QualificationAttempts)
	if res.PreferredUnit == 0 {
		fmt.Println("preferred shape: original segmentation (merging buys nothing)")
	} else {
		fmt.Printf("preferred shape: %d-byte unit files (%d units from %d files)\n",
			res.PreferredUnit, len(res.ReshapedBins), fs.Len())
	}
	fmt.Printf("model: %v\n", res.Model)
	fmt.Printf("adjustment: %v\n", res.Adjustment)
	fmt.Printf("plan: %d instance(s), %.0f instance-hours, est. $%.3f (deadline %.0fs, planned %.0fs)\n",
		res.Plan.Instances, res.Plan.InstanceHours(), res.Plan.EstimatedCost,
		res.Plan.RequestedDeadline, res.Plan.Deadline)

	if !*execute {
		return
	}
	out, err := p.ExecuteCtx(ctx, res)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed: makespan %.1fs, %d/%d missed, actual $%.3f\n",
		out.MakespanS, out.Missed, len(out.PerInstance), out.ActualCost)
}

// distMeasure runs the measurement through the coordinator–worker engine
// and reports the per-worker tallies, resume/retry totals and — when the
// run was allowed to degrade — the manifest of skipped tasks.
func distMeasure(ctx context.Context, plan *scan.Plan, spec dist.Spec, fleet []dist.Worker, opts dist.Options) (*core.Measurement, error) {
	m, rep, err := dist.Measure(ctx, plan, spec, fleet, opts)
	if rep == nil {
		return m, err
	}
	if rep.Resumed > 0 {
		fmt.Printf("  resumed %d task(s) from checkpoint\n", rep.Resumed)
	}
	for _, s := range rep.Workers {
		line := fmt.Sprintf("  worker %s: %d started, %d won, %d stolen", s.Name, s.Started, s.Won, s.Stolen)
		if s.Retries > 0 {
			line += fmt.Sprintf(", %d retried", s.Retries)
		}
		if s.Quarantined > 0 {
			line += fmt.Sprintf(", quarantined %d time(s)", s.Quarantined)
		}
		if s.Dead {
			line += " (died; tasks re-dispatched)"
		}
		fmt.Println(line)
	}
	if rep.Degraded() {
		var files int
		var bytes int64
		for _, sk := range rep.Skipped {
			files += sk.Files
			bytes += sk.Bytes
		}
		fmt.Printf("  DEGRADED RESULT: %d task(s) skipped (%d files, %d bytes)\n", len(rep.Skipped), files, bytes)
		for _, sk := range rep.Skipped {
			fmt.Printf("    task %d shard %q (%d files, %d bytes): %s\n", sk.Task, sk.Shard, sk.Files, sk.Bytes, sk.Reason)
		}
	}
	return m, err
}

// contentBacked reports whether every corpus file carries real bytes —
// the precondition for a fused measurement scan.
func contentBacked(fs *vfs.FS) bool {
	for _, f := range fs.List() {
		if !f.HasContent() {
			return false
		}
	}
	return true
}

// pickS0 chooses a base probe unit comfortably above the largest file, as
// §4 prescribes, rounded to a power of ten.
func pickS0(fs *vfs.FS) int64 {
	var maxSize int64
	for _, s := range fs.Sizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	s0 := int64(10)
	for s0 <= maxSize {
		s0 *= 10
	}
	return s0
}

func fatal(err error) {
	cli.Fatal("pipeline", err)
}
