// Command serve runs the resident corpus service: a long-running HTTP
// daemon that opens pack shards once (memory-mapped), keeps them hot, and
// exposes the library's scan surface — multi-pattern grep, the fused
// measurement scan, checksum verification, manifest and stats — as
// concurrent JSON endpoints with admission control and request-scoped
// metrics. One-shot CLI runs re-pay startup, pack opening and page-cache
// warm-up per measurement; the server pays them once.
//
// Usage:
//
//	serve -packs ./packed                       # mapped pack shards (zero-copy scans)
//	serve -dir ./corpus                         # plain directory
//	serve -spec text -scale 0.001               # synthetic corpus, eagerly generated
//	serve -addr 127.0.0.1:0 -inflight 4 -queue 64 -timeout 30 -drain 10
//
// Endpoints: POST /v1/grep, POST /v1/measure, POST /v1/verify,
// GET /v1/manifest, GET /v1/stats, GET /healthz, GET /metrics.
//
// Shutdown: SIGINT/SIGTERM (via the shared cli.SignalContext root — serve
// installs no handlers of its own) stops admission, drains in-flight
// requests under -drain seconds, hard-cancels whatever remains, and exits
// 130 like every other command interrupted by a signal.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/vfs"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		packs    = flag.String("packs", "", "serve a packed corpus: comma-separated pack files and/or directories of *.pack shards (memory-mapped, zero-copy scans)")
		dir      = flag.String("dir", "", "serve a real directory")
		specName = flag.String("spec", "text", "synthetic corpus: html or text (without -packs/-dir)")
		scale    = flag.Float64("scale", 0.001, "synthetic corpus scale")
		seed     = flag.Int64("seed", 2011, "synthetic corpus random seed")
		inflight = flag.Int("inflight", 4, "max concurrently running scan requests")
		queue    = flag.Int("queue", 64, "max requests waiting for a slot before 429")
		workers  = flag.Int("scan-workers", 0, "scan fan-out per request (0 = all CPUs)")
		timeout  = flag.Float64("timeout", 0, "default per-request timeout in seconds (0 = none; requests may set timeout_ms)")
		drain    = flag.Float64("drain", 10, "graceful-drain deadline in seconds after SIGINT/SIGTERM")
	)
	flag.Parse()

	var fs *vfs.FS
	var err error
	switch {
	case *packs != "":
		var closer interface{ Close() error }
		fs, closer, err = vfs.ImportPackMappedCtx(ctx, strings.Split(*packs, ",")...)
		if err == nil {
			defer closer.Close()
		}
	case *dir != "":
		// Per-file mappings give -dir corpora the same zero-copy scan
		// path as mapped packs; hold them for the server's lifetime.
		var closer interface{ Close() error }
		fs, closer, err = vfs.ImportDirMappedCtx(ctx, *dir)
		if err == nil {
			defer closer.Close()
		}
	default:
		var spec corpus.Spec
		switch *specName {
		case "html":
			spec = corpus.HTML18Mil(*scale)
		case "text":
			spec = corpus.Text400K(*scale)
		default:
			fmt.Fprintf(os.Stderr, "serve: unknown spec %q (html or text)\n", *specName)
			os.Exit(2)
		}
		fs, err = corpus.GenerateWithContentEagerCtx(ctx, spec, *seed, 0)
	}
	if err != nil {
		fatal(err)
	}

	files := fs.List()
	srcs := scan.SequentialOrder(vfs.Sources(files))
	srv, err := server.New(ctx, srcs, server.Config{
		MaxInFlight:    *inflight,
		QueueDepth:     *queue,
		ScanWorkers:    *workers,
		DefaultTimeout: time.Duration(*timeout * float64(time.Second)),
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("serve: listening on http://%s (%d files, %d bytes, inflight %d, queue %d)\n",
		ln.Addr(), fs.Len(), fs.TotalSize(), *inflight, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}

	// Signal received: release the registration so a second signal kills
	// immediately, then drain — stop admitting, let in-flight requests
	// finish under the deadline, hard-cancel the stragglers.
	stop()
	fmt.Fprintf(os.Stderr, "serve: signal received, draining (deadline %.0fs)\n", *drain)
	srv.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drain*float64(time.Second)))
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain deadline exceeded, cancelling in-flight requests\n")
		srv.HardStop()
		httpSrv.Close()
	}
	snap := srv.Metrics().Snapshot()
	var requests, cancels int64
	for _, ep := range snap.Endpoints {
		requests += ep.Requests
		cancels += ep.Cancels
	}
	fmt.Fprintf(os.Stderr, "serve: drained (%d requests served, %d cancelled, %d refused)\n",
		requests, cancels, snap.Rejected429+snap.Rejected503)
	os.Exit(cli.ExitCodeCancelled)
}

func fatal(err error) {
	cli.Fatal("serve", err)
}
