// Command provision computes a deadline-meeting, cost-minimising EC2
// execution plan from a fitted performance model (the paper's §5).
//
// The model is the affine f(x) = intercept + slope·x with x in bytes and
// f in seconds; the paper's published models are:
//
//	grep, 100 MB units (Eq. 1):  -slope 1.324e-8  -intercept -0.974
//	POS tagging (Eq. 3):         -slope 0.865e-4  -intercept 0.327
//
// Usage:
//
//	provision -volume 1000000000 -deadline 3600 -slope 0.865e-4 -intercept 0.327
//	provision -dir ./corpus -deadline 7200 -slope 1.324e-8 -uniform
//	provision -volume 1e9 -deadline 3600 -slope 0.865e-4 -adjust 0.1525
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/binpack"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/perfmodel"
	"repro/internal/provision"
	"repro/internal/vfs"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		volume    = flag.Float64("volume", 0, "total data volume in bytes (or use -dir)")
		dir       = flag.String("dir", "", "directory whose file sizes define the workload")
		deadline  = flag.Float64("deadline", 3600, "deadline in seconds")
		slope     = flag.Float64("slope", 0.865e-4, "model slope (seconds per byte)")
		intercept = flag.Float64("intercept", 0.327, "model intercept (seconds)")
		rate      = flag.Float64("rate", 0.085, "hourly instance rate in dollars")
		adjust    = flag.Float64("adjust", 0, "deadline-inflation factor a (schedule for D/(1+a))")
		uniform   = flag.Bool("uniform", true, "distribute data uniformly (false = first-fit, original order)")
		unit      = flag.Int64("unit", 1_000_000, "granularity for -volume workloads (bytes per file)")
		sweep     = flag.Bool("sweep", false, "print a cost-vs-deadline curve instead of one plan")
		staging   = flag.Float64("staging", 0, "constant per-run staging time in seconds (the paper's POS assumption)")
	)
	flag.Parse()

	var items []binpack.Item
	switch {
	case *dir != "":
		fs, err := vfs.ImportDir(*dir)
		if err != nil {
			fatal(err)
		}
		items = core.ItemsFromFS(fs)
	case *volume > 0:
		n := int64(*volume) / *unit
		for i := int64(0); i < n; i++ {
			items = append(items, binpack.Item{ID: fmt.Sprintf("chunk-%07d", i), Size: *unit})
		}
		if rem := int64(*volume) - n**unit; rem > 0 {
			items = append(items, binpack.Item{ID: "chunk-rem", Size: rem})
		}
	default:
		fmt.Fprintln(os.Stderr, "provision: provide -volume or -dir")
		os.Exit(2)
	}

	// Planning itself is fast; the cancellable part is the workload import
	// above. One check here keeps a Ctrl-C during a large -dir walk from
	// silently producing a plan for a half-read corpus.
	if cerr := errs.FromContext(ctx); cerr != nil {
		fatal(errs.Stage("planning", cerr))
	}

	model := affine(*slope, *intercept)
	planner := &provision.Planner{Model: model, Rate: *rate}
	strategy := provision.FirstFitOriginal
	if *uniform {
		strategy = provision.UniformBins
	}

	if *sweep {
		total := binpack.TotalSize(items)
		deadlines := []float64{*deadline / 4, *deadline / 2, *deadline, *deadline * 2, *deadline * 4}
		curve, err := planner.CostCurve(total, deadlines)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model: %v\n", model)
		fmt.Println("deadline(s)  instances  instance-h  cost($)  feasible")
		for _, pt := range curve {
			fmt.Printf("%-12.0f %-10d %-11.0f %-8.3f %v\n",
				pt.DeadlineSeconds, pt.Instances, pt.InstanceHours, pt.CostUSD, pt.Feasible)
		}
		if best, err := provision.CheapestFeasible(curve); err == nil {
			fmt.Printf("cheapest feasible: %.0f s at $%.3f\n", best.DeadlineSeconds, best.CostUSD)
		}
		return
	}

	var plan *provision.Plan
	var err error
	switch {
	case *staging > 0:
		staged, serr := planner.PlanStaged(items, *deadline, strategy, provision.ConstantStaging(*staging))
		if serr != nil {
			fatal(serr)
		}
		fmt.Printf("staging budget:   %.0f s per run\n", staged.StageSeconds)
		plan = staged.Plan
	case *adjust > 0:
		plan, err = planner.PlanAdjusted(items, *deadline, perfmodel.Adjustment{A: *adjust, MissProb: 0.10})
	default:
		plan, err = planner.PlanDeadline(items, *deadline, strategy)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model:            %v\n", model)
	fmt.Printf("strategy:         %s (%s)\n", plan.Strategy, provision.StrategyForShape(model.Shape()))
	fmt.Printf("volume:           %d bytes in %d files\n", plan.TotalVolume(), len(items))
	fmt.Printf("deadline:         %.0f s (planned for %.0f s)\n", plan.RequestedDeadline, plan.Deadline)
	fmt.Printf("per-instance cap: %d bytes (f⁻¹ of the planned deadline)\n", plan.PerInstanceCapacity)
	fmt.Printf("instances:        %d (minimum %d)\n", plan.Instances, plan.MinInstances)
	fmt.Printf("instance-hours:   %.0f\n", plan.InstanceHours())
	fmt.Printf("estimated cost:   $%.3f\n", plan.EstimatedCost)
	fmt.Println()
	fmt.Println("bin  bytes        files  predicted")
	for i, b := range plan.Bins {
		fmt.Printf("%-4d %-12d %-6d %.1fs\n", i+1, b.Used, len(b.Items), plan.Predicted[i])
	}
}

func affine(a, b float64) *perfmodel.Affine {
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{b, b + a*1e9})
	if err != nil {
		fatal(err)
	}
	return m
}

func fatal(err error) {
	cli.Fatal("provision", err)
}
