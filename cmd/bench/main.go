// Command bench runs the repository's acceptance benchmarks — the indexed
// bin packers against their linear references, the zero-allocation
// tokenizer, the parallel corpus/checksum/grep fan-outs, the fused scan
// engine against sequential separate passes, the multi-pattern searcher
// against per-pattern BMH, the packstore write/read/verify/
// random-access paths, and the resident corpus server under concurrent
// HTTP load — via testing.Benchmark and writes the results to
// BENCH.json (plus a timestamped BENCH_<yyyymmdd>.json snapshot).
// Regenerate with
//
//	make bench   # or: go run ./cmd/bench -out BENCH.json
//
// The JSON carries ns/op, bytes/op and allocs/op per benchmark plus the
// derived speedup ratios the performance work is held to.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/binpack"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/packstore"
	"repro/internal/par"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Result is one benchmark's outcome.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// CancelLatency records how quickly a cancelled fan-out returns: the
// wall-clock time from cancel() to ForEachCtx returning, over a pool
// mid-way through a large task list.
type CancelLatency struct {
	Tasks  int     `json:"tasks"`
	Rounds int     `json:"rounds"`
	MeanNs float64 `json:"mean_ns"`
	MaxNs  float64 `json:"max_ns"`
}

// ServeStats records the resident-server section: latency percentiles
// from the server's own histograms under concurrent load, plus the
// sequential round-trip means the serve_vs_oneshot ratio is derived from.
type ServeStats struct {
	Clients           int     `json:"clients"`
	RequestsPerClient int     `json:"requests_per_client"`
	GrepP50MS         float64 `json:"serve_grep_p50_ms"`
	GrepP95MS         float64 `json:"serve_grep_p95_ms"`
	GrepP99MS         float64 `json:"serve_grep_p99_ms"`
	MeasureP50MS      float64 `json:"serve_measure_p50_ms"`
	MeasureP95MS      float64 `json:"serve_measure_p95_ms"`
	MeasureP99MS      float64 `json:"serve_measure_p99_ms"`
	ServeGrepMeanMS   float64 `json:"serve_grep_mean_ms"`
	OneshotGrepMeanMS float64 `json:"oneshot_grep_mean_ms"`
}

// ChaosStats records the resilience section: the same distributed scan
// run under a seeded fault schedule, with the injected-fault and retry
// tallies proving the run actually weathered something (a chaos
// benchmark that injects nothing measures nothing).
type ChaosStats struct {
	FaultSpec string `json:"fault_spec"`
	Workers   int    `json:"workers"`
	Injected  int    `json:"injected_faults"`
	Retries   int    `json:"retries"`
}

// Output is the BENCH.json schema.
type Output struct {
	Results []Result           `json:"results"`
	Ratios  map[string]float64 `json:"ratios"`
	// Kernels isolates per-kernel compute: each entry feeds the same 1 MB
	// block to one kernel's Begin/Block/End cycle with no engine, no I/O
	// and no delivery — pure hot-loop throughput, the numbers the
	// kernel-compute rework is held to.
	Kernels       []Result      `json:"kernels"`
	CancelLatency CancelLatency `json:"cancel_latency"`
	Serve         ServeStats    `json:"serve"`
	Chaos         ChaosStats    `json:"chaos"`
}

func benchItems(n int) []binpack.Item {
	dist := corpus.Text400K(1).Sizes
	r := stats.NewRand(1, "bench-items")
	items := make([]binpack.Item, n)
	for i := range items {
		items[i] = binpack.Item{ID: fmt.Sprintf("f%06d", i), Size: dist.Sample(r)}
	}
	return items
}

func run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Printf("%-32s %12.0f ns/op %12d B/op %8d allocs/op\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func packBench(pack func([]binpack.Item, int64) ([]*binpack.Bin, error), items []binpack.Item) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pack(items, 1_000_000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// packAccessBench builds a pack of n 8 kB members and measures reading
// the middle member once per iteration.
func packAccessBench(baseDir string, n int) func(b *testing.B) {
	return func(b *testing.B) {
		path := filepath.Join(baseDir, fmt.Sprintf("access-%d.pack", n))
		if _, err := os.Stat(path); err != nil {
			w, err := packstore.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, 8192)
			for i := range data {
				data[i] = byte(i % 251)
			}
			for i := 0; i < n; i++ {
				if err := w.AppendBytes(fmt.Sprintf("m-%06d", i), data); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		p, err := packstore.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		m := p.Members()[p.Len()/2]
		buf := make([]byte, m.Size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := io.ReadFull(p.SectionReader(m), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// measureCancelLatency times the gap between cancelling a mid-flight
// 10k-task ForEachCtx and the fan-out returning. Each task does a small
// fixed unit of work, cancel fires once a fixed number of tasks have
// started, and the reported latency is cancel()-to-return: the cost of
// every in-flight task draining plus the workers observing the stop.
func measureCancelLatency(rounds int) CancelLatency {
	const tasks = 10_000
	var sink atomic.Int64
	lat := CancelLatency{Tasks: tasks}
	retries := 10 * rounds
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- par.Default().ForEachCtx(ctx, tasks, func(i int) error {
				if started.Add(1) == 64 {
					close(release)
				}
				s := int64(0)
				for j := 0; j < 2_000; j++ {
					s += int64(i ^ j)
				}
				sink.Add(s)
				return nil
			})
		}()
		<-release
		t0 := time.Now()
		cancel()
		err := <-done
		ns := float64(time.Since(t0).Nanoseconds())
		if err == nil {
			// The pool outran the cancel; this round measured nothing.
			if retries--; retries > 0 {
				r--
			}
			continue
		}
		lat.Rounds++
		lat.MeanNs += ns
		if ns > lat.MaxNs {
			lat.MaxNs = ns
		}
	}
	if lat.Rounds > 0 {
		lat.MeanNs /= float64(lat.Rounds)
	}
	return lat
}

func main() {
	out := flag.String("out", "BENCH.json", "output path for the JSON report")
	snapshot := flag.Bool("snapshot", true, "also write a timestamped BENCH_<yyyymmdd>.json copy next to -out, accumulating the perf trajectory across PRs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole benchmark run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run (go tool pprof)")
	flag.Parse()
	ctx, stop := cli.SignalContext()
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	items := benchItems(10_000)
	text := func() []byte {
		g := corpus.NewGenerator(corpus.NewsStyle(), 5)
		return g.Text(100_000)
	}()
	contentFS, err := corpus.GenerateWithContentEagerCtx(ctx, corpus.Text400K(0.0005), 8, 0)
	if err != nil {
		fatal(err)
	}

	var o Output
	add := func(r Result) { o.Results = append(o.Results, r) }

	add(run("FirstFit10k", packBench(binpack.FirstFit, items)))
	add(run("FirstFitLinear10k", packBench(binpack.FirstFitLinear, items)))
	add(run("SubsetSumFirstFit10k", packBench(binpack.SubsetSumFirstFit, items)))
	add(run("SubsetSumFirstFitLinear10k", packBench(binpack.SubsetSumFirstFitLinear, items)))
	add(run("Tokenize100kB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			textproc.Tokenize(text)
		}
	}))
	add(run("CombinedChecksum200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vfs.CombinedChecksum(contentFS); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(run("BuildManifest200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vfs.BuildManifest(contentFS); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(run("ParallelGrep200Files", func(b *testing.B) {
		s, err := textproc.NewSearcher("xyzzyplugh")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.ParallelGrepFS(contentFS, 0); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Fused scan over a packed corpus — the zero-copy acceptance trio. The
	// 200-file corpus is exported once as pack shards and as plain files:
	//
	//   - FusedScan200Files opens the shards memory-mapped and runs the
	//     production kernel trio (checksum + match + the fused
	//     stats/complexity kernel — the same assembly core.MeasureKernels
	//     builds, computing the same four outputs through one shared
	//     analyzer walk); the engine feeds the kernels borrowed windows of
	//     the mapping (no block buffers, no copies — the per-op
	//     allocations are the merge frontier's amortised bookkeeping only).
	//   - MultipassScan200Files is the pre-zero-copy pipeline over the same
	//     shards: four separate kernels, a streaming pack import read once
	//     per kernel, four full copies of the corpus through pooled block
	//     buffers and two analyzer walks (separate stats and complexity).
	//   - FusedScanChecksum200Files isolates delivery cost: the same
	//     engine and mapped corpus with one byte-touching kernel, so what
	//     remains beyond the checksum fold is the cost of getting bytes to
	//     a kernel.
	//   - RawReadFile200Files is the floor: os.ReadFile over the plain
	//     files, no kernels at all — just getting the bytes into memory.
	//     fused_scan_vs_raw_read holds the single-kernel scan to within
	//     ~2x of that floor; with the 4-kernel scan now CPU-bound in
	//     kernel compute (see the per-op allocation collapse), delivery
	//     overhead is the number zero-copy is accountable for.
	packDir, err := os.MkdirTemp("", "bench-packstore")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(packDir)
	shardDir := filepath.Join(packDir, "fixed")
	if _, err := contentFS.ExportPackCtx(ctx, shardDir, vfs.PackOptions{ShardSize: 8 << 20}); err != nil {
		fatal(err)
	}
	plainDir := filepath.Join(packDir, "plain")
	if err := contentFS.ExportCtx(ctx, plainDir); err != nil {
		fatal(err)
	}
	mappedFS, mappedCloser, err := vfs.ImportPackMapped(shardDir)
	if err != nil {
		fatal(err)
	}
	defer mappedCloser.Close()
	streamFS, streamCloser, err := vfs.ImportPack(shardDir)
	if err != nil {
		fatal(err)
	}
	defer streamCloser.Close()
	fusedSrcs := scan.SequentialOrder(vfs.Sources(mappedFS.List()))
	streamSrcs := scan.SequentialOrder(vfs.Sources(streamFS.List()))
	scanPatterns := []string{"the", "and", "president", "market", "city", "nation", "report", "error"}
	ms, err := textproc.NewMultiSearcher(scanPatterns)
	if err != nil {
		fatal(err)
	}
	tagger := textproc.NewTagger()
	fourKernels := func() []scan.Kernel {
		return []scan.Kernel{
			scan.NewChecksum(),
			textproc.NewStatsKernel(),
			textproc.NewMatchKernel(ms),
			workload.NewComplexityKernel(tagger),
		}
	}
	fusedKernels := func() []scan.Kernel {
		return []scan.Kernel{
			scan.NewChecksum(),
			textproc.NewMatchKernel(ms),
			workload.NewStatsComplexityKernel(tagger),
		}
	}
	add(run("FusedScan200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scan.Run(ctx, fusedSrcs, scan.Options{}, fusedKernels()...); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(run("MultipassScan200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range fourKernels() {
				if err := scan.Run(ctx, streamSrcs, scan.Options{}, k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))
	add(run("FusedScanChecksum200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scan.Run(ctx, fusedSrcs, scan.Options{}, scan.NewChecksum()); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rawPaths := make([]string, 0, contentFS.Len())
	for _, f := range contentFS.List() {
		rawPaths = append(rawPaths, filepath.Join(plainDir, filepath.FromSlash(f.Name)))
	}
	add(run("RawReadFile200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range rawPaths {
				if _, err := os.ReadFile(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))
	// Multi-pattern search: one automaton pass for 8 patterns against 8
	// separate BMH passes over the same 100 kB.
	add(run("MultiSearch8Patterns100kB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms.CountBytes(text)
		}
	}))
	add(run("SearcherPerPattern8x100kB", func(b *testing.B) {
		searchers := make([]*textproc.Searcher, len(scanPatterns))
		for i, p := range scanPatterns {
			s, err := textproc.NewSearcher(p)
			if err != nil {
				b.Fatal(err)
			}
			searchers[i] = s
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range searchers {
				s.CountBytes(text)
			}
		}
	}))

	// Per-kernel compute: the same 1 MB of news-style text fed straight to
	// each kernel's Begin/Block/End cycle — no engine, no delivery, pure
	// hot loop. MultiSearchReference8Patterns100kB is the frozen pre-rework
	// automaton walk over the exact MultiSearch8Patterns100kB input;
	// multisearch_fast_vs_old is the rework's speedup against it.
	addK := func(r Result) { o.Kernels = append(o.Kernels, r) }
	kernelText := corpus.NewGenerator(corpus.NewsStyle(), 6).Text(1 << 20)
	kernelSrc := scan.Source{Name: "kernel-1mb", Size: int64(len(kernelText))}
	kernelBench := func(mk func() scan.Kernel) func(b *testing.B) {
		return func(b *testing.B) {
			k := mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Begin(kernelSrc)
				k.Block(kernelText)
				k.End()
			}
		}
	}
	addK(run("KernelChecksumPerMB", kernelBench(func() scan.Kernel { return scan.NewChecksum() })))
	addK(run("KernelMatchPerMB", kernelBench(func() scan.Kernel { return textproc.NewMatchKernel(ms) })))
	addK(run("KernelStatsPerMB", kernelBench(func() scan.Kernel { return textproc.NewStatsKernel() })))
	addK(run("KernelComplexityPerMB", kernelBench(func() scan.Kernel { return workload.NewComplexityKernel(tagger) })))
	refMS, err := textproc.NewReferenceMultiSearcher(scanPatterns)
	if err != nil {
		fatal(err)
	}
	addK(run("MultiSearchReference8Patterns100kB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refMS.CountBytes(text)
		}
	}))

	// Packstore: durable pack shards for reshaped corpora. Write/import/
	// verify throughput over the same 200-file corpus, plus the O(1)
	// random-access acceptance pair: reading one fixed-size member from a
	// 32x larger pack must not cost more.
	add(run("PackExport200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dir := filepath.Join(packDir, fmt.Sprintf("w%d", i))
			if _, err := contentFS.ExportPack(dir, vfs.PackOptions{ShardSize: 8 << 20}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(run("PackImportChecksum200Files", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fs, closer, err := vfs.ImportPack(shardDir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := vfs.CombinedChecksum(fs); err != nil {
				b.Fatal(err)
			}
			closer.Close()
		}
	}))
	add(run("PackVerify200Files", func(b *testing.B) {
		paths, err := packstore.Discover(shardDir)
		if err != nil {
			b.Fatal(err)
		}
		set, err := packstore.OpenSet(paths...)
		if err != nil {
			b.Fatal(err)
		}
		defer set.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := set.Verify(0); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add(run("PackRandomAccess1of64", packAccessBench(packDir, 64)))
	add(run("PackRandomAccess1of2048", packAccessBench(packDir, 2048)))

	// Resident server: the same mapped pack shards behind the HTTP daemon.
	// 32 concurrent clients alternate grep and measure requests; the
	// percentiles come from the server's own latency histograms (the same
	// numbers /metrics exports). A sequential pass then prices the HTTP+
	// JSON envelope against the direct library call over the same sources:
	// serve_vs_oneshot is the per-request overhead factor of going through
	// the daemon instead of linking the library.
	srvInst, err := server.New(ctx, fusedSrcs, server.Config{MaxInFlight: 4, QueueDepth: 256})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srvInst.Handler()}
	go httpSrv.Serve(ln)
	baseURL := "http://" + ln.Addr().String()
	grepBody, err := json.Marshal(server.GrepRequest{Patterns: scanPatterns})
	if err != nil {
		fatal(err)
	}
	measureBody, err := json.Marshal(server.MeasureRequest{Complexity: true})
	if err != nil {
		fatal(err)
	}
	post := func(path string, body []byte) error {
		resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	const serveClients, servePerClient = 32, 8
	var serveWG sync.WaitGroup
	serveErrs := make(chan error, serveClients)
	for c := 0; c < serveClients; c++ {
		serveWG.Add(1)
		go func(c int) {
			defer serveWG.Done()
			for i := 0; i < servePerClient; i++ {
				var err error
				if (c+i)%2 == 0 {
					err = post("/v1/grep", grepBody)
				} else {
					err = post("/v1/measure", measureBody)
				}
				if err != nil {
					serveErrs <- err
					return
				}
			}
		}(c)
	}
	serveWG.Wait()
	close(serveErrs)
	for err := range serveErrs {
		fatal(err)
	}
	snap := srvInst.Metrics().Snapshot()
	const seqRounds = 32
	t0 := time.Now()
	for i := 0; i < seqRounds; i++ {
		if err := post("/v1/grep", grepBody); err != nil {
			fatal(err)
		}
	}
	serveGrepMeanMS := float64(time.Since(t0).Nanoseconds()) / 1e6 / seqRounds
	// The oneshot baseline is the exact library work the grep endpoint
	// does — one MatchKernel scan over the same mapped sources — so the
	// ratio isolates the HTTP+JSON+admission envelope.
	t0 = time.Now()
	for i := 0; i < seqRounds; i++ {
		if err := scan.Run(ctx, fusedSrcs, scan.Options{}, textproc.NewMatchKernel(ms)); err != nil {
			fatal(err)
		}
	}
	oneshotGrepMeanMS := float64(time.Since(t0).Nanoseconds()) / 1e6 / seqRounds
	httpSrv.Close()
	o.Serve = ServeStats{
		Clients:           serveClients,
		RequestsPerClient: servePerClient,
		GrepP50MS:         snap.Endpoints["grep"].P50MS,
		GrepP95MS:         snap.Endpoints["grep"].P95MS,
		GrepP99MS:         snap.Endpoints["grep"].P99MS,
		MeasureP50MS:      snap.Endpoints["measure"].P50MS,
		MeasureP95MS:      snap.Endpoints["measure"].P95MS,
		MeasureP99MS:      snap.Endpoints["measure"].P99MS,
		ServeGrepMeanMS:   serveGrepMeanMS,
		OneshotGrepMeanMS: oneshotGrepMeanMS,
	}
	fmt.Printf("%-32s %9.3f ms p50 %9.3f ms p99 grep, %9.3f ms p50 %9.3f ms p99 measure (%d clients x %d)\n",
		"ServeConcurrent", o.Serve.GrepP50MS, o.Serve.GrepP99MS,
		o.Serve.MeasureP50MS, o.Serve.MeasureP99MS, serveClients, servePerClient)

	// Distributed shard scan: the same corpus exported as small shards
	// (64 KiB → ~8 tasks) so the plan yields one task per shard and a
	// 4-worker fleet has real contention, measured through
	// the coordinator–worker engine with 1, 2 and 4 in-process workers
	// against the single-node plan execution over identical sources. The
	// in-process fleet isolates the engine's own overhead — task
	// dispatch, kernel snapshot/restore, the merge frontier — from
	// network cost; dist_scan_vs_local is that overhead as a factor.
	distShardDir := filepath.Join(packDir, "dist")
	if _, err := contentFS.ExportPackCtx(ctx, distShardDir, vfs.PackOptions{ShardSize: 64 << 10}); err != nil {
		fatal(err)
	}
	distFS, distCloser, err := vfs.ImportPackMapped(distShardDir)
	if err != nil {
		fatal(err)
	}
	defer distCloser.Close()
	distPlan := scan.NewPlan(vfs.Sources(distFS.List()), scan.PlanOptions{})
	distSpec := dist.Spec{Patterns: scanPatterns}
	fmt.Printf("%-32s %d tasks over %d files\n", "DistPlan", len(distPlan.Tasks), len(distPlan.Sources))
	add(run("DistScanLocal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MeasurePlanCtx(ctx, distPlan, distSpec.MeasureOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}))
	for _, n := range []int{1, 2, 4} {
		fleet := make([]dist.Worker, n)
		for i := range fleet {
			l, err := dist.NewLocal(fmt.Sprintf("w%d", i), distPlan, distSpec)
			if err != nil {
				fatal(err)
			}
			fleet[i] = l
		}
		add(run(fmt.Sprintf("DistScan%dWorkers", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dist.Measure(ctx, distPlan, distSpec, fleet, dist.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Resilience under faults: the identical distributed scan with a
	// seeded fault schedule injected into the workers' reads and task
	// execution. Retries must absorb every fault — the measurement stays
	// bit-identical to the clean run, checked outside the timed loop —
	// and scan_with_faults_vs_clean records what that absorption costs
	// end to end (fault sites, re-reads, backoff sleeps included),
	// against the clean 2-worker run as the baseline.
	const chaosSpec = "seed=7,readerr=0.01,kill=0.02,latencyrate=0.02,latency=200us"
	chaosCfg, err := fault.ParseSpec(chaosSpec)
	if err != nil {
		fatal(err)
	}
	chaosInj, err := fault.New(chaosCfg)
	if err != nil {
		fatal(err)
	}
	chaosFS, err := chaosInj.WrapFS(distFS)
	if err != nil {
		fatal(err)
	}
	chaosPlan := scan.NewPlan(vfs.Sources(chaosFS.List()), scan.PlanOptions{})
	if chaosPlan.Fingerprint() != distPlan.Fingerprint() {
		fatal(fmt.Errorf("bench: fault wrapping changed the plan fingerprint: %016x != %016x",
			chaosPlan.Fingerprint(), distPlan.Fingerprint()))
	}
	const chaosWorkers = 2
	chaosFleet := make([]dist.Worker, chaosWorkers)
	for i := range chaosFleet {
		name := fmt.Sprintf("w%d", i)
		l, err := dist.NewLocal(name, chaosPlan, distSpec)
		if err != nil {
			fatal(err)
		}
		l.SetFault(chaosInj.TaskKill(name))
		chaosFleet[i] = l
	}
	// Tight backoff keeps the benchmark honest about engine cost rather
	// than measuring sleeps; unlimited budget and generous attempts keep
	// an unlucky schedule from aborting a timing run.
	chaosOpts := dist.Options{
		MaxAttempts: 10,
		RetryBudget: -1,
		Retry:       retry.Policy{BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
	}
	cleanM, err := core.MeasurePlanCtx(ctx, distPlan, distSpec.MeasureOptions())
	if err != nil {
		fatal(err)
	}
	var chaosRetries int
	faultedM, chaosRep, err := dist.Measure(ctx, chaosPlan, distSpec, chaosFleet, chaosOpts)
	if err != nil {
		fatal(err)
	}
	if faultedM.Fingerprint() != cleanM.Fingerprint() {
		fatal(fmt.Errorf("bench: faulted scan diverged: %016x != clean %016x",
			faultedM.Fingerprint(), cleanM.Fingerprint()))
	}
	chaosRetries = chaosRep.Retries
	add(run(fmt.Sprintf("DistScanFaulted%dWorkers", chaosWorkers), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, rep, err := dist.Measure(ctx, chaosPlan, distSpec, chaosFleet, chaosOpts)
			if err != nil {
				b.Fatal(err)
			}
			if m.Fingerprint() != cleanM.Fingerprint() {
				b.Fatalf("faulted scan diverged: %016x != clean %016x",
					m.Fingerprint(), cleanM.Fingerprint())
			}
			chaosRetries += rep.Retries
		}
	}))
	o.Chaos = ChaosStats{
		FaultSpec: chaosSpec,
		Workers:   chaosWorkers,
		Injected:  chaosInj.Fired(),
		Retries:   chaosRetries,
	}
	fmt.Printf("%-32s %s\n", "DistScanFaulted", chaosInj.Summary())

	// Cancellation responsiveness: how long a mid-flight 10k-task fan-out
	// takes to return once cancelled. Not a ratio — an absolute latency the
	// interactive commands (Ctrl-C) are held to.
	o.CancelLatency = measureCancelLatency(20)
	fmt.Printf("%-32s %12.0f ns mean %12.0f ns max (cancel -> return, %d tasks)\n",
		"CancelLatency", o.CancelLatency.MeanNs, o.CancelLatency.MaxNs, o.CancelLatency.Tasks)

	byName := make(map[string]Result, len(o.Results))
	for _, r := range o.Results {
		byName[r.Name] = r
	}
	o.Ratios = map[string]float64{
		"firstfit_speedup_vs_linear":  byName["FirstFitLinear10k"].NsPerOp / byName["FirstFit10k"].NsPerOp,
		"subsetsum_speedup_vs_linear": byName["SubsetSumFirstFitLinear10k"].NsPerOp / byName["SubsetSumFirstFit10k"].NsPerOp,
		// ~1.0 demonstrates O(1) member access: one member's read cost is
		// independent of how many members the pack holds.
		"pack_random_access_2048_over_64": byName["PackRandomAccess1of2048"].NsPerOp / byName["PackRandomAccess1of64"].NsPerOp,
		// The pass-fusion acceptance: the zero-copy fused scan (one mapped
		// read feeding four kernels) vs the pre-zero-copy pipeline (four
		// streaming passes through pooled buffers) over the same shards.
		"fused_scan_speedup_vs_multipass": byName["MultipassScan200Files"].NsPerOp / byName["FusedScan200Files"].NsPerOp,
		// The zero-copy acceptance (CI asserts ≤ 2.5): scanning the mapped
		// pack through the engine with a real byte-touching kernel, held to
		// within ~2x of raw os.ReadFile over the unpacked files. This
		// isolates delivery overhead — the thing zero-copy removes — from
		// kernel compute, which the 4-kernel FusedScan200Files is bound by.
		// Below 1.0 means the mapped scan beats merely reading the files:
		// no per-file opens, no per-file buffers.
		"fused_scan_vs_raw_read": byName["FusedScanChecksum200Files"].NsPerOp / byName["RawReadFile200Files"].NsPerOp,
		// One automaton pass for 8 patterns vs 8 BMH passes.
		"multisearch_speedup_vs_8_searchers": byName["SearcherPerPattern8x100kB"].NsPerOp / byName["MultiSearch8Patterns100kB"].NsPerOp,
	}
	kernelByName := make(map[string]Result, len(o.Kernels))
	for _, r := range o.Kernels {
		kernelByName[r.Name] = r
	}
	// The kernel-compute acceptance: the reworked multi-pattern searcher
	// (bitap engine for small sets, restructured Aho–Corasick otherwise)
	// against the frozen reference walk over the same input. CI asserts
	// this stays above its floor.
	o.Ratios["multisearch_fast_vs_old"] =
		kernelByName["MultiSearchReference8Patterns100kB"].NsPerOp / byName["MultiSearch8Patterns100kB"].NsPerOp
	// The resident-service acceptance: one sequential grep round-trip
	// through the daemon (HTTP + JSON + admission) vs the direct library
	// call over the same mapped sources. Near 1.0 means the envelope is
	// noise next to the scan itself.
	o.Ratios["serve_vs_oneshot"] = o.Serve.ServeGrepMeanMS / o.Serve.OneshotGrepMeanMS
	// The distributed-scan acceptance: the coordinator–worker engine over
	// in-process workers vs single-node execution of the same plan. Near
	// 1.0 means dispatch + snapshot/restore + the merge frontier cost
	// little next to the scan; the per-count entries show how the factor
	// moves as the fleet grows on one machine (workers contend for the
	// same cores, so this is overhead, not speedup).
	for _, n := range []int{1, 2, 4} {
		o.Ratios[fmt.Sprintf("dist_scan_vs_local_%dw", n)] =
			byName[fmt.Sprintf("DistScan%dWorkers", n)].NsPerOp / byName["DistScanLocal"].NsPerOp
	}
	o.Ratios["dist_scan_vs_local"] = o.Ratios["dist_scan_vs_local_2w"]
	// The resilience acceptance: the same 2-worker distributed scan under
	// the seeded fault schedule vs clean. The measurement is bit-identical
	// either way (asserted above); the ratio is what absorbing the faults
	// — re-reads, re-dispatches, jittered backoff — costs.
	o.Ratios["scan_with_faults_vs_clean"] =
		byName[fmt.Sprintf("DistScanFaulted%dWorkers", chaosWorkers)].NsPerOp /
			byName[fmt.Sprintf("DistScan%dWorkers", chaosWorkers)].NsPerOp

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (firstfit %.2fx, subset-sum %.2fx vs linear, pack access 2048/64 %.2fx, fused scan %.2fx vs multipass, %.2fx of raw read, multisearch %.2fx vs 8 searchers, %.2fx vs old walk, serve %.2fx of oneshot, dist %.2f/%.2f/%.2fx of local at 1/2/4 workers, faulted scan %.2fx of clean)\n",
		*out, o.Ratios["firstfit_speedup_vs_linear"], o.Ratios["subsetsum_speedup_vs_linear"],
		o.Ratios["pack_random_access_2048_over_64"], o.Ratios["fused_scan_speedup_vs_multipass"],
		o.Ratios["fused_scan_vs_raw_read"], o.Ratios["multisearch_speedup_vs_8_searchers"],
		o.Ratios["multisearch_fast_vs_old"],
		o.Ratios["serve_vs_oneshot"], o.Ratios["dist_scan_vs_local_1w"],
		o.Ratios["dist_scan_vs_local_2w"], o.Ratios["dist_scan_vs_local_4w"],
		o.Ratios["scan_with_faults_vs_clean"])
	if *snapshot {
		snapPath := filepath.Join(filepath.Dir(*out),
			fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102")))
		if err := os.WriteFile(snapPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot %s\n", snapPath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // materialise only live allocations in the profile
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	cli.Fatal("bench", err)
}
