// Command experiments regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	experiments -run all            # every experiment, in paper order
//	experiments -run fig6           # one experiment
//	experiments -list               # available experiment IDs
//	experiments -run fig4 -seed 7 -scale 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		runID  = flag.String("run", "all", "experiment ID to run, or 'all'")
		seed   = flag.Int64("seed", 2011, "root random seed")
		scale  = flag.Float64("scale", 1.0, "dataset scale multiplier")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir = flag.String("csv", "", "also write each report as CSV under this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Paper)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale}
	emit := func(rep *experiments.Report) {
		fmt.Println(rep)
		if *csvDir != "" {
			if err := experiments.WriteCSV(rep, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
		}
	}
	if *runID == "all" {
		reports, err := experiments.RunAllCtx(ctx, cfg)
		for _, rep := range reports {
			emit(rep)
		}
		if err != nil {
			cli.Fatal("experiments", err)
		}
		return
	}
	driver, ok := experiments.Lookup(*runID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
		os.Exit(2)
	}
	rep, err := driver(cfg)
	if err != nil {
		cli.Fatal("experiments", err)
	}
	emit(rep)
}
