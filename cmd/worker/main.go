// Command worker runs a distributed-scan worker daemon: it loads its
// local view of the corpus (memory-mapped pack shards, a directory, or a
// synthetic spec), derives the shared scan plan, and answers a
// coordinator's POST /v1/scan requests by executing one plan task at a
// time and returning serialized kernel states. The coordinator (pipeline
// -worker-addrs) verifies plan agreement by fingerprint before any work
// lands, so a worker pointed at the wrong corpus refuses loudly.
//
// Usage:
//
//	worker -packs ./packed -addr 127.0.0.1:9101
//	worker -dir ./corpus -addr 127.0.0.1:0
//	worker -spec text -scale 0.002 -seed 2011 -name w0
//
// Endpoints: POST /v1/scan, GET /healthz.
//
// Shutdown: SIGINT/SIGTERM drains in-flight scans under -drain seconds
// and exits 130, the repository-wide signal contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/vfs"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		addr      = flag.String("addr", "127.0.0.1:9101", "listen address (use :0 for an ephemeral port)")
		name      = flag.String("name", "", "worker name in coordinator stats (default: the listen address)")
		packs     = flag.String("packs", "", "serve a packed corpus: comma-separated pack files and/or directories of *.pack shards (memory-mapped, zero-copy scans)")
		dir       = flag.String("dir", "", "serve a real directory")
		specName  = flag.String("spec", "text", "synthetic corpus: html or text (without -packs/-dir)")
		scale     = flag.Float64("scale", 0.002, "synthetic corpus scale")
		seed      = flag.Int64("seed", 2011, "synthetic corpus random seed")
		taskBytes = flag.Int64("task-bytes", 0, "task chunking cap for shard-less sources (0 = default; must match the coordinator)")
		drain     = flag.Float64("drain", 10, "graceful-drain deadline in seconds after SIGINT/SIGTERM")
		faultSpec = flag.String("fault", "", "seeded fault-injection spec, comma-separated key=value (e.g. seed=7,readerr=0.05,kill=0.1); see internal/fault")
		verifyR   = flag.Bool("verify-reads", false, "verify pack member checksums on every read (requires -packs)")
	)
	flag.Parse()
	if *verifyR && *packs == "" {
		fmt.Fprintln(os.Stderr, "worker: -verify-reads needs a packed corpus (-packs)")
		os.Exit(2)
	}

	var fs *vfs.FS
	var err error
	switch {
	case *packs != "":
		var closer interface{ Close() error }
		if *verifyR {
			fs, closer, err = vfs.ImportPackVerifiedCtx(ctx, strings.Split(*packs, ",")...)
		} else {
			fs, closer, err = vfs.ImportPackMappedCtx(ctx, strings.Split(*packs, ",")...)
		}
		if err == nil {
			defer closer.Close()
		}
	case *dir != "":
		// Map each file so assigned-shard scans run zero-copy, exactly
		// like the mapped-pack path above.
		var closer interface{ Close() error }
		fs, closer, err = vfs.ImportDirMappedCtx(ctx, *dir)
		if err == nil {
			defer closer.Close()
		}
	default:
		var spec corpus.Spec
		switch *specName {
		case "html":
			spec = corpus.HTML18Mil(*scale)
		case "text":
			spec = corpus.Text400K(*scale)
		default:
			fmt.Fprintf(os.Stderr, "worker: unknown spec %q (html or text)\n", *specName)
			os.Exit(2)
		}
		fs, err = corpus.GenerateWithContentEagerCtx(ctx, spec, *seed, 0)
	}
	if err != nil {
		fatal(err)
	}

	// Fault injection wraps the corpus before the plan derivation; WrapFS
	// preserves names, sizes and locality, so the fingerprint handshake
	// with the coordinator still passes and only the bytes (and task
	// execution, via the kill hook below) misbehave.
	var inj *fault.Injector
	if *faultSpec != "" {
		cfg, ferr := fault.ParseSpec(*faultSpec)
		if ferr != nil {
			fatal(ferr)
		}
		if cfg.Enabled() {
			if inj, err = fault.New(cfg); err != nil {
				fatal(err)
			}
			if fs, err = inj.WrapFS(fs); err != nil {
				fatal(err)
			}
		}
	}

	plan := scan.NewPlan(vfs.Sources(fs.List()), scan.PlanOptions{TaskBytes: *taskBytes})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	wname := *name
	if wname == "" {
		wname = ln.Addr().String()
	}
	ws := dist.NewWorkerServer(wname, plan)
	if inj != nil {
		ws.SetFault(inj.TaskKill(wname))
		fmt.Printf("worker %s: fault injection armed: %s\n", wname, *faultSpec)
	}
	httpSrv := &http.Server{Handler: ws.Handler()}
	fmt.Printf("worker %s: listening on http://%s (%d files, %d bytes, %d tasks, plan %016x)\n",
		wname, ln.Addr(), fs.Len(), fs.TotalSize(), len(plan.Tasks), plan.Fingerprint())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	// Signal received: release the registration so a second signal kills
	// immediately, then drain in-flight scans under the deadline.
	stop()
	fmt.Fprintf(os.Stderr, "worker %s: signal received, draining (deadline %.0fs)\n", wname, *drain)
	dctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drain*float64(time.Second)))
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: drain deadline exceeded, closing\n", wname)
		httpSrv.Close()
	}
	fmt.Fprintf(os.Stderr, "worker %s: drained\n", wname)
	os.Exit(cli.ExitCodeCancelled)
}

func fatal(err error) {
	cli.Fatal("worker", err)
}
