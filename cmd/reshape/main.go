// Command reshape merges a directory of small files into unit files of a
// target size using the paper's subset-sum first-fit heuristic. This is
// the real-data counterpart of the simulator experiments: the output unit
// files contain exactly the input bytes, concatenated.
//
// With -pack the unit files are written as checksummed pack shards
// (internal/packstore) instead of one plain file per unit — the durable
// staging artefact: a handful of file opens on re-import, per-member
// checksums, O(1) random access to any unit.
//
// Usage:
//
//	reshape -in ./corpus -out ./units -unit 100000000   # 100 MB units
//	reshape -in ./corpus -unit 1000000 -dry             # packing stats only
//	reshape -in ./corpus -out ./packed -unit 100000000 -pack -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/binpack"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/vfs"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	var (
		inDir   = flag.String("in", "", "input directory of small files (required)")
		outDir  = flag.String("out", "", "output directory for unit files")
		unit    = flag.Int64("unit", 100_000_000, "target unit file size in bytes")
		prefix  = flag.String("prefix", "unit", "unit file name prefix")
		dry     = flag.Bool("dry", false, "plan only; do not write output")
		pack    = flag.Bool("pack", false, "write pack shards instead of plain unit files")
		shard   = flag.Int64("shard", 256<<20, "target pack shard size in bytes (with -pack)")
		verify  = flag.Bool("verify", false, "re-import the packs and verify checksums (with -pack)")
		workers = flag.Int("workers", 0, "content read-ahead workers for -pack (0 = all CPUs)")
	)
	flag.Parse()
	if *inDir == "" {
		fmt.Fprintln(os.Stderr, "reshape: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if !*dry && *outDir == "" {
		fmt.Fprintln(os.Stderr, "reshape: -out is required unless -dry")
		os.Exit(2)
	}

	fs, err := vfs.ImportDir(*inDir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input: %d files, %d bytes\n", fs.Len(), fs.TotalSize())

	merged, bins, err := core.ReshapeCtx(ctx, fs, *unit, *prefix)
	if err != nil {
		fatal(err)
	}
	stats := binpack.Summarize(bins)
	fmt.Printf("packed into %d unit files (mean fill %.1f%%, %d oversized inputs)\n",
		stats.Bins, stats.MeanFill*100, stats.Oversized)
	fmt.Printf("output segmentation: %d -> %d files (%.1fx fewer)\n",
		fs.Len(), merged.Len(), float64(fs.Len())/float64(merged.Len()))

	if *dry {
		return
	}
	if *pack {
		paths, err := merged.ExportPackCtx(ctx, *outDir, vfs.PackOptions{
			Prefix:    *prefix,
			ShardSize: *shard,
			Workers:   *workers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d unit files into %d pack shard(s) in %s\n", merged.Len(), len(paths), *outDir)
		if *verify {
			want, err := vfs.CombinedChecksumCtx(ctx, merged)
			if err != nil {
				fatal(err)
			}
			imported, closer, err := vfs.ImportPackCtx(ctx, *outDir)
			if err != nil {
				fatal(err)
			}
			defer closer.Close()
			got, err := vfs.CombinedChecksumCtx(ctx, imported)
			if err != nil {
				fatal(err)
			}
			if got != want {
				fatal(fmt.Errorf("verify: pack round-trip checksum %x != source %x", got, want))
			}
			fmt.Printf("verified: %d members round-trip bit-identically (checksum %x)\n", imported.Len(), got)
		}
	} else {
		if err := merged.ExportCtx(ctx, *outDir); err != nil {
			fatal(err)
		}
	}
	// Write the manifest so outputs can be traced back to inputs.
	manifest, err := os.Create(*outDir + "/MANIFEST.txt")
	if err != nil {
		fatal(err)
	}
	defer manifest.Close()
	for i, b := range bins {
		fmt.Fprintf(manifest, "%s-%06d (%d bytes):\n", *prefix, i, b.Used)
		for _, it := range b.Items {
			fmt.Fprintf(manifest, "  %s %d\n", it.ID, it.Size)
		}
	}
	if !*pack {
		fmt.Printf("wrote %d unit files and MANIFEST.txt to %s\n", merged.Len(), *outDir)
	}
}

func fatal(err error) {
	cli.Fatal("reshape", err)
}
