package repro

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	fs, err := GenerateCorpus(Text400K(0.002), 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(PipelineConfig{
		Seed:            42,
		App:             NewPOSApp(),
		DeadlineSeconds: 120,
		InitialVolume:   100_000,
		MaxVolume:       1_500_000,
		S0:              10_000,
		Multiples:       []int{10},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	out, err := p.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if out.MakespanS <= 0 {
		t.Error("no makespan")
	}
}

func TestFacadeReshapeAndSearch(t *testing.T) {
	fs, err := GenerateCorpusWithContent(Text400K(0.0002), 7) // 80 files
	if err != nil {
		t.Fatal(err)
	}
	merged, bins, err := Reshape(fs, 50_000, "unit")
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalSize() != fs.TotalSize() {
		t.Error("reshape changed total size")
	}
	if len(bins) != merged.Len() {
		t.Error("manifest mismatch")
	}
	s, err := NewSearcher("the")
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.GrepFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.GrepFS(merged)
	if err != nil {
		t.Fatal(err)
	}
	// Concatenation can only add matches that span member boundaries
	// (exact grep semantics); it can never lose any.
	boundaries := int64(fs.Len() - merged.Len())
	if after.Matches < before.Matches || after.Matches > before.Matches+boundaries {
		t.Errorf("grep matches %d outside [%d, %d]", after.Matches, before.Matches, before.Matches+boundaries)
	}
}

func TestFacadeExperiment(t *testing.T) {
	rep, err := RunExperiment("costfn", ExperimentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "costfn" {
		t.Errorf("report ID = %s", rep.ID)
	}
	if _, err := RunExperiment("bogus", ExperimentConfig{}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestFacadePlannerAndCloud(t *testing.T) {
	c := NewCloud(1)
	if c.Region().Name != "us-east" {
		t.Errorf("region = %s", c.Region().Name)
	}
	tg := NewTagger()
	_, res := tg.TagText([]byte("the cat sat."))
	if res.Words != 3 {
		t.Errorf("tagger words = %d", res.Words)
	}
}

func TestFacadeProfilePipeline(t *testing.T) {
	profile, err := GenerateCorpusProfile(Text400K(0.002), 5, RampComplexity{From: 0.9, To: 1.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(PipelineConfig{
		Seed:            5,
		App:             NewPOSApp(),
		DeadlineSeconds: 120,
		InitialVolume:   100_000,
		MaxVolume:       1_500_000,
		S0:              10_000,
		Multiples:       []int{10},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complexity == nil || res.Plan == nil {
		t.Fatal("profiled run incomplete")
	}
}
