// Dynamic rescheduling: the paper's §7 future-work features, built out.
// A monitored grep task detects a slow instance mid-run, terminates it,
// and re-attaches its EBS volume to a replacement — no data moves. A spot
// plan then shows the §1.1 trade-off: cheaper hours in exchange for
// interruptions, for applications that can resume cleanly.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	// --- The §3.1 back-of-envelope first. ---
	decision, err := sched.AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch-or-stay on a 60 MB/s instance (85%% chance the replacement is fast):\n")
	fmt.Printf("  stay:            %.0f GB next hour\n", decision.StayGB)
	fmt.Printf("  switch (fast):   %.0f GB (%+.0f)\n", decision.SwitchGB, decision.SwitchGB-decision.StayGB)
	fmt.Printf("  switch (slow):   %.0f GB (%+.0f)\n", decision.SwitchSlowGB, decision.SwitchSlowGB-decision.StayGB)
	fmt.Printf("  recommendation:  switch=%v (expected gain %.0f GB)\n\n", decision.Recommend, decision.ExpectedGainGB)

	// --- Monitored execution on an all-slow cloud. ---
	// Expected progress comes from a model fitted on good instances.
	expected, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0, 1e9 / 60e6})
	if err != nil {
		log.Fatal(err)
	}
	items := make([]workload.Item, 40)
	for i := range items {
		items[i] = workload.NewItem(100_000_000) // 4 GB of grep work
	}
	for _, policy := range []sched.ReplacePolicy{sched.NeverReplace, sched.ReplaceNow, sched.ReplaceAtHour} {
		cloud := cloudsim.NewInRegion(6, cloudsim.USEast,
			cloudsim.QualityDist{SlowFraction: 0.5}) // a bad day on EC2: the first instance draws slow
		vol, err := cloud.CreateVolume("us-east-1a", 100)
		if err != nil {
			log.Fatal(err)
		}
		monitor := sched.NewMonitor(cloud, workload.NewGrep(), expected, "us-east-1a")
		monitor.Policy = policy
		monitor.SlowRatio = 1.4
		report, err := monitor.RunTask(items, vol, "newslab-shard-7")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy %-16s elapsed %7.0fs, %d replacement(s), %.0f billed hours, $%.3f, instances %v\n",
			policy, report.ElapsedS, report.Replacements, report.BilledHours, report.CostUSD, report.Grades)
	}

	// --- Zone-failure recovery via the S3 backup. ---
	fmt.Println()
	{
		c := cloudsim.NewInRegion(6, cloudsim.USEast, cloudsim.QualityDist{})
		vol40 := make([]workload.Item, 40)
		for i := range vol40 {
			vol40[i] = workload.NewItem(100_000_000)
		}
		monitor := sched.NewMonitor(c, workload.NewGrep(), expected, "us-east-1a")
		rep, err := monitor.RunTaskResilient(vol40, "us-east-1a", "newslab-backup",
			func(chunk int) {
				if chunk == 2 && !c.ZoneFailed("us-east-1a") {
					_ = c.FailZone("us-east-1a") // inject a zone outage mid-task
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zone outage mid-task: %d failover(s) via zones %v, re-staging cost %.0fs, finished in %.0fs ($%.3f)\n",
			rep.ZoneFailovers, rep.Zones, rep.RestageSeconds, rep.ElapsedS, rep.CostUSD)
	}

	// --- Spot execution for deadline-insensitive work. ---
	fmt.Println()
	cloud := cloudsim.New(11)
	for _, bid := range []float64{0.085, 0.042, 0.036} {
		out, err := sched.PlanSpot(cloud, bid, 12)
		if err != nil {
			fmt.Printf("bid $%.3f/h: %v\n", bid, err)
			continue
		}
		fmt.Printf("bid $%.3f/h: 12 work-hours finished in %5.1f wall-hours, %d interruption(s), $%.3f (on-demand $%.3f)\n",
			bid, out.SpanHours, out.Interruptions, out.CostUSD, out.OnDemandUSD)
	}
}
