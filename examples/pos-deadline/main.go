// POS deadline scheduling: the paper's §5.2 study. A corpus of small text
// files is scheduled onto EC2 instances under one- and two-hour deadlines,
// comparing first-fit packing, uniform bins, an under-predicting refit
// model, and the residual-based adjusted deadline. Per-instance execution
// times are drawn as ASCII bars against the deadline, mirroring Figs. 8-9.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/corpus"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/provision"
	"repro/internal/stats"
	"repro/internal/workload"
)

const seed = 2011

func main() {
	// Calibrate model (3) on a nominal instance (§4 protocol, condensed).
	cloud := cloudsim.New(seed)
	inst, err := cloud.LaunchNominal(cloudsim.Small, "us-east-1a")
	if err != nil {
		log.Fatal(err)
	}
	if err := cloud.WaitUntilRunning(inst); err != nil {
		log.Fatal(err)
	}
	harness := probe.NewHarness(cloud, inst, workload.NewPOS(), workload.Local{})
	var xs, ys []float64
	dist := corpus.Text400K(1).Sizes
	for _, volume := range []int64{1_000_000, 5_000_000, 20_000_000} {
		items := sample(dist, volume, fmt.Sprintf("cal-%d", volume))
		m, err := harness.MeasureProbe(volume, 0, items)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range m.Runs {
			xs = append(xs, float64(volume))
			ys = append(ys, r)
		}
	}
	m3, err := perfmodel.FitAffine(xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model (3): %v\n", m3)

	// The under-predicting refit, at the paper's Eq.(4)/Eq.(3) slope ratio.
	m4 := &perfmodel.Affine{A: m3.A * 0.725482 / 0.865, B: 3.086}
	adj, err := perfmodel.NewAdjustment(m4, xs, ys, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model (4): slope %.4g; adjustment %v\n\n", m4.A, adj)

	// The workload: the paper's operating point V = 26.1 · f⁻¹(1h).
	x0, err := m3.Invert(3600)
	if err != nil {
		log.Fatal(err)
	}
	workItems := sampleBin(dist, int64(26.1*x0), "workload")

	scenarios := []struct {
		name     string
		model    perfmodel.Model
		deadline float64
		strategy provision.Strategy
		adjusted bool
	}{
		{"D=1h, model (3), first-fit", m3, 3600, provision.FirstFitOriginal, false},
		{"D=1h, model (3), uniform", m3, 3600, provision.UniformBins, false},
		{"D=1h, model (4), uniform", m4, 3600, provision.UniformBins, false},
		{"D=1h, model (4), adjusted", m4, 3600, provision.UniformBins, true},
		{"D=2h, model (3), uniform", m3, 7200, provision.UniformBins, false},
		{"D=2h, model (4), adjusted", m4, 7200, provision.UniformBins, true},
	}
	for _, sc := range scenarios {
		planner := &provision.Planner{Model: sc.model, Rate: 0.085}
		var plan *provision.Plan
		var err error
		if sc.adjusted {
			plan, err = planner.PlanAdjusted(workItems, sc.deadline, adj)
		} else {
			plan, err = planner.PlanDeadline(workItems, sc.deadline, sc.strategy)
		}
		if err != nil {
			log.Fatal(err)
		}
		execCloud := cloudsim.New(stats.SeedFor(seed, sc.name))
		out, err := provision.Execute(execCloud, plan, provision.ExecuteOptions{
			App:     workload.NewPOS(),
			Uniform: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %2d instances  %4.0f instance-h  $%.3f  missed %d/%d\n",
			sc.name, plan.Instances, out.InstanceHours, out.ActualCost, out.Missed, plan.Instances)
		drawBars(out, sc.deadline)
		fmt.Println()
	}
}

// drawBars renders per-instance actual times against the deadline.
func drawBars(out *provision.Outcome, deadline float64) {
	const width = 48
	for _, io := range out.PerInstance {
		n := int(io.ActualS / deadline * width)
		if n > width+12 {
			n = width + 12
		}
		bar := strings.Repeat("█", n)
		marker := ""
		if io.Missed {
			marker = " ← miss"
		}
		fmt.Printf("  %6.0fs %s%s\n", io.ActualS, bar, marker)
	}
	fmt.Printf("  deadline at %.0fs = %d chars\n", deadline, width)
}

func sample(dist corpus.SizeDist, volume int64, salt string) []workload.Item {
	items := sampleBin(dist, volume, salt)
	out := make([]workload.Item, len(items))
	for i, it := range items {
		out[i] = workload.NewItem(it.Size)
	}
	return out
}

func sampleBin(dist corpus.SizeDist, volume int64, salt string) []binpack.Item {
	r := stats.NewRand(seed, salt)
	var items []binpack.Item
	var total int64
	for i := 0; total < volume; i++ {
		s := dist.Sample(r)
		if total+s > volume {
			s = volume - total
		}
		if s <= 0 {
			break
		}
		items = append(items, binpack.Item{ID: fmt.Sprintf("%s-%06d", salt, i), Size: s})
		total += s
	}
	return items
}
