// Newslab grep: the paper's §5.1 scenario end to end. A long-tailed HTML
// news corpus is reshaped into 100 MB unit files, a linear performance
// model is fitted from probes (the paper's Eq. (1)), the data is laid out
// over EBS volumes for a one-hour deadline, and the run is executed on the
// simulated cloud. A content-backed sample additionally runs the *real*
// streaming search engine to verify that reshaping never changes grep's
// answer.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/provision"
	"repro/internal/workload"
)

func main() {
	const seed = 2011

	// --- Part 1: real bytes — reshaping does not change grep output. ---
	sample, err := repro.GenerateCorpusWithContent(repro.HTML18Mil(0.00001), seed) // 180 files
	if err != nil {
		log.Fatal(err)
	}
	merged, _, err := repro.Reshape(sample, 500_000, "unit")
	if err != nil {
		log.Fatal(err)
	}
	search, err := repro.NewSearcher("government")
	if err != nil {
		log.Fatal(err)
	}
	before, err := search.GrepFS(sample)
	if err != nil {
		log.Fatal(err)
	}
	after, err := search.GrepFS(merged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real grep over %d files: %d matches; over %d unit files: %d matches\n",
		sample.Len(), before.Matches, merged.Len(), after.Matches)

	// --- Part 2: simulator — calibrate, plan the EBS layout, execute. ---
	cloud := cloudsim.New(seed)
	inst, attempts, err := cloud.AcquireQualified(cloudsim.Small, "us-east-1a", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qualified %s after %d attempt(s): %.0f MB/s block read\n",
		inst.ID, attempts, inst.Quality.SeqReadMBps)

	// Probe at the 100 MB unit size across escalating volumes (§4).
	harness := probe.NewHarness(cloud, inst, workload.NewGrep(), workload.Local{})
	var xs, ys []float64
	for _, volume := range []int64{500_000_000, 1_000_000_000, 2_000_000_000, 5_000_000_000} {
		items := make([]binpack.Item, volume/100_000_000)
		for i := range items {
			items[i] = binpack.Item{ID: fmt.Sprintf("u-%d-%d", volume, i), Size: 100_000_000}
		}
		m, err := harness.MeasureProbe(volume, 100_000_000, workload.Items(sizesOf(items)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("probe %4.1f GB: %7.2fs ± %.2fs\n", float64(volume)/1e9, m.Mean, m.StdDev)
		for _, r := range m.Runs {
			xs = append(xs, float64(volume))
			ys = append(ys, r)
		}
	}
	model, err := perfmodel.FitAffine(xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: %v  [paper Eq.(1): f(x) = -0.974 + 1.324e-8x]\n", model)

	// The paper's layout: 100 GB staged evenly over 100 EBS volumes.
	planner := &provision.Planner{Model: model, Rate: 0.085}
	layout, err := planner.PlanEBS(100_000_000_000, 100, 3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EBS layout for 100 GB, D=1h: %d volume(s) of %d bytes each, %d per instance, %d instance(s)\n",
		layout.VolumeCount, layout.PerVolume, layout.VolumesPerInstance, layout.Instances)

	// Build and execute the plan over 100 MB unit files.
	units := make([]binpack.Item, 1000)
	for i := range units {
		units[i] = binpack.Item{ID: fmt.Sprintf("unit-%04d", i), Size: 100_000_000}
	}
	plan, err := planner.PlanDeadline(units, 3600, provision.UniformBins)
	if err != nil {
		log.Fatal(err)
	}
	predicted := model.Predict(100_000_000_000)
	outcome, err := provision.Execute(cloud, plan, provision.ExecuteOptions{
		App:     workload.NewGrep(),
		Uniform: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("100 GB grep: predicted %.1fs, makespan %.1fs (%.0f%% error), %d instance(s), $%.2f\n",
		predicted/float64(plan.Instances), outcome.MakespanS,
		100*(outcome.MakespanS-predicted/float64(plan.Instances))/outcome.MakespanS,
		plan.Instances, outcome.ActualCost)
}

func sizesOf(items []binpack.Item) []int64 {
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.Size
	}
	return out
}
