// Quickstart: run the paper's full pipeline on a small synthetic corpus —
// qualify an instance, probe the application across unit file sizes, fit a
// performance model, reshape the data, build a deadline plan, and execute
// it on the simulated cloud.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small text corpus: ~800 files, ≈1.7 MB (0.2% of the paper's set).
	corpus, err := repro.GenerateCorpus(repro.Text400K(0.002), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d files, %d bytes\n", corpus.Len(), corpus.TotalSize())

	pipeline, err := repro.NewPipeline(repro.PipelineConfig{
		Seed:            42,
		App:             repro.NewPOSApp(),
		DeadlineSeconds: 120, // process everything within two minutes
		InitialVolume:   100_000,
		MaxVolume:       1_500_000,
		S0:              10_000,
		Multiples:       []int{10},
	})
	if err != nil {
		log.Fatal(err)
	}

	result, err := pipeline.Run(corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("qualified instance after %d attempt(s): %s (%s)\n",
		result.QualificationAttempts, result.Instance.ID, result.Instance.Quality.Grade())

	unit := "original segmentation"
	if result.PreferredUnit > 0 {
		unit = fmt.Sprintf("%d-byte units", result.PreferredUnit)
	}
	fmt.Printf("preferred shape: %s\n", unit)
	fmt.Printf("performance model: %v\n", result.Model)
	fmt.Printf("deadline adjustment: %v\n", result.Adjustment)
	fmt.Printf("plan: %d instances, %.0f instance-hours, est. $%.3f\n",
		result.Plan.Instances, result.Plan.InstanceHours(), result.Plan.EstimatedCost)

	outcome, err := pipeline.Execute(result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: makespan %.1fs, %d/%d instances missed the deadline, actual cost $%.3f\n",
		outcome.MakespanS, outcome.Missed, len(outcome.PerInstance), outcome.ActualCost)
}
