// Text workflow: the §7 extensions working together. A three-stage
// pipeline (extract HTML → tokenize → POS-tag) is scheduled with full-hour
// subdeadlines; acquired-instance quality is tracked and fed into
// per-grade predictors; and the switch-or-stay analysis consumes the
// live quality estimate instead of a guess.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
	"repro/internal/sched"
	"repro/internal/textproc"
)

func main() {
	// --- Part 1: real extraction feeding stage volumes. ---
	// Derive the text corpus from a small HTML sample to measure the
	// extraction ratio (the paper's Text_400K came from exactly this).
	htmlSample := `<html><head><title>a</title><script>x()</script></head>` +
		`<body><p>The government said the new policy will take effect in January.</p>` +
		`<p>Markets moved quickly &amp; analysts followed.</p></body></html>`
	text := textproc.ExtractText([]byte(htmlSample))
	ratio := float64(len(text)) / float64(len(htmlSample))
	fmt.Printf("extraction ratio on the sample article: %.0f%% of HTML bytes are text\n\n", ratio*100)

	// --- Part 2: whole-workflow schedule with hour subdeadlines. ---
	const inputBytes = 2_000_000_000 // 2 GB of HTML
	textBytes := int64(float64(inputBytes) * ratio)
	stages := []sched.Stage{
		{Name: "extract", Model: affine(2e-8, 60), VolumeBytes: inputBytes},
		{Name: "tokenize", Model: affine(5e-7, 120), VolumeBytes: textBytes},
		{Name: "pos-tag", Model: affine(8.65e-5, 600), VolumeBytes: textBytes},
	}
	plan, err := sched.PlanWorkflow(stages, 8, 0.085)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow schedule (8-hour budget):")
	for _, sp := range plan.Stages {
		fmt.Printf("  %-9s %d h subdeadline, %3d instance(s), predicted %6.0fs each, %4.0f instance-h\n",
			sp.Stage.Name, sp.SubdeadlineHours, sp.Instances, sp.PredictedS, sp.InstanceHours)
	}
	fmt.Printf("  total: %d wall-hours, %.0f instance-hours, $%.2f\n\n",
		plan.TotalHours, plan.InstanceHours, plan.CostUSD)

	// --- Part 3: quality tracking + per-grade predictors. ---
	cloud := cloudsim.New(20)
	tracker := sched.NewGradeTracker()
	for i := 0; i < 25; i++ {
		in, err := cloud.Launch(cloudsim.Small, "us-east-1a")
		if err != nil {
			log.Fatal(err)
		}
		tracker.Observe(in)
	}
	fmt.Printf("after %d acquisitions: P(good)=%.2f P(slow)=%.2f P(unstable)=%.2f\n",
		tracker.Observations(), tracker.P("good"), tracker.P("slow"), tracker.P("unstable"))

	bank, err := sched.CalibrateBank(affine(8.65e-5, 0.3), map[string]float64{
		"good": 1.0, "slow": 0.5, "unstable": 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, grade := range []string{"good", "slow", "unstable"} {
		v, err := bank.VolumeForDeadline(grade, 3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s instance gets %5.1f MB for a 1 h deadline\n", grade, float64(v)/1e6)
	}
	expected, err := bank.ExpectedVolume(tracker, []string{"good", "slow", "unstable"}, 3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  quality-weighted expectation: %.1f MB per fresh instance\n\n", expected/1e6)

	// --- Part 4: switch-or-stay with the live fast probability. ---
	pFast := tracker.P("good")
	d, err := sched.AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, pFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch-or-stay with live P(fast)=%.2f: expected gain %.0f GB → switch=%v\n",
		pFast, d.ExpectedGainGB, d.Recommend)
}

func affine(slope, intercept float64) perfmodel.Model {
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{intercept, intercept + slope*1e9})
	if err != nil {
		log.Fatal(err)
	}
	return m
}
