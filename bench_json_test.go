package repro

// The committed BENCH.json is part of the repo's contract: cmd/bench
// writes it, CI greps it, and this test holds its acceptance numbers so
// a regressed regeneration fails `go test` instead of slipping through
// review. Regenerate with `make bench` after perf-relevant changes.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchServe struct {
	Clients      int     `json:"clients"`
	GrepP99MS    float64 `json:"serve_grep_p99_ms"`
	MeasureP99MS float64 `json:"serve_measure_p99_ms"`
}

type benchChaos struct {
	FaultSpec string `json:"fault_spec"`
	Workers   int    `json:"workers"`
	Injected  int    `json:"injected_faults"`
	Retries   int    `json:"retries"`
}

type benchDoc struct {
	Results []benchResult      `json:"results"`
	Ratios  map[string]float64 `json:"ratios"`
	Kernels []benchResult      `json:"kernels"`
	Serve   benchServe         `json:"serve"`
	Chaos   benchChaos         `json:"chaos"`
}

func loadBenchDoc(t *testing.T) *benchDoc {
	t.Helper()
	raw, err := os.ReadFile("BENCH.json")
	if err != nil {
		t.Fatalf("read BENCH.json: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse BENCH.json: %v", err)
	}
	return &doc
}

func (d *benchDoc) result(t *testing.T, name string) benchResult {
	t.Helper()
	for _, r := range d.Results {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("BENCH.json has no result %q", name)
	panic("unreachable")
}

// TestBenchJSONZeroCopyAcceptance pins the zero-copy scanning acceptance
// numbers: scanning the mapped pack through the engine with a real
// byte-touching kernel stays within 2.5x of raw os.ReadFile over the
// unpacked corpus (it is currently *under* 1x — no per-file opens or
// buffers), and the full 4-kernel fused scan stays under 1k allocs/op.
func TestBenchJSONZeroCopyAcceptance(t *testing.T) {
	doc := loadBenchDoc(t)

	ratio, ok := doc.Ratios["fused_scan_vs_raw_read"]
	if !ok {
		t.Fatal("BENCH.json ratios missing fused_scan_vs_raw_read")
	}
	if ratio <= 0 || ratio > 2.5 {
		t.Fatalf("fused_scan_vs_raw_read = %.2f, want (0, 2.5]", ratio)
	}

	if fused := doc.result(t, "FusedScan200Files"); fused.AllocsPerOp >= 1000 {
		t.Fatalf("FusedScan200Files = %d allocs/op, want < 1000", fused.AllocsPerOp)
	}

	// The benchmarks the ratio is computed from must be present too, so a
	// bench refactor cannot silently decouple the ratio from its inputs.
	doc.result(t, "FusedScanChecksum200Files")
	doc.result(t, "RawReadFile200Files")
}

// TestBenchJSONKernelComputeAcceptance pins the kernel-compute rework:
// BENCH.json carries the per-kernel hot-loop section (one Begin/Block/End
// cycle over 1 MB, no engine, no delivery), and the reworked multi-pattern
// searcher beats the frozen reference walk by at least 1.5x on the
// production 8-pattern set. fused_scan_vs_raw_read — the other ratio this
// pass is held to — is asserted in TestBenchJSONZeroCopyAcceptance.
func TestBenchJSONKernelComputeAcceptance(t *testing.T) {
	doc := loadBenchDoc(t)

	kernels := make(map[string]benchResult, len(doc.Kernels))
	for _, r := range doc.Kernels {
		kernels[r.Name] = r
	}
	for _, name := range []string{
		"KernelChecksumPerMB",
		"KernelMatchPerMB",
		"KernelStatsPerMB",
		"KernelComplexityPerMB",
		"MultiSearchReference8Patterns100kB",
	} {
		r, ok := kernels[name]
		if !ok {
			t.Errorf("BENCH.json kernels section missing %q", name)
			continue
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s = %v ns/op, want > 0", name, r.NsPerOp)
		}
	}
	// The single-block cycle must stay allocation-free beyond the kernels'
	// fixed bookkeeping (per-file row append, match-count slab).
	for _, name := range []string{"KernelChecksumPerMB", "KernelStatsPerMB"} {
		if r, ok := kernels[name]; ok && r.AllocsPerOp > 2 {
			t.Errorf("%s = %d allocs/op, want <= 2", name, r.AllocsPerOp)
		}
	}

	ratio, ok := doc.Ratios["multisearch_fast_vs_old"]
	if !ok {
		t.Fatal("BENCH.json ratios missing multisearch_fast_vs_old")
	}
	if ratio < 1.5 {
		t.Fatalf("multisearch_fast_vs_old = %.2f, want >= 1.5 (reworked searcher vs frozen reference walk)", ratio)
	}
}

// TestBenchJSONRatiosPresent keeps the documented ratio keys stable;
// README and CI reference them by name.
func TestBenchJSONRatiosPresent(t *testing.T) {
	doc := loadBenchDoc(t)
	for _, key := range []string{
		"firstfit_speedup_vs_linear",
		"subsetsum_speedup_vs_linear",
		"pack_random_access_2048_over_64",
		"fused_scan_speedup_vs_multipass",
		"fused_scan_vs_raw_read",
		"multisearch_speedup_vs_8_searchers",
		"multisearch_fast_vs_old",
		"serve_vs_oneshot",
		"dist_scan_vs_local",
		"dist_scan_vs_local_1w",
		"dist_scan_vs_local_2w",
		"dist_scan_vs_local_4w",
	} {
		if _, ok := doc.Ratios[key]; !ok {
			t.Errorf("BENCH.json ratios missing %q", key)
		}
	}
}

// TestBenchJSONServeAcceptance pins the resident-server section: the
// serve benchmark really ran concurrent clients, exported latency
// percentiles, and the HTTP+JSON envelope stays a small constant factor
// over calling the library directly (generous bound — the point is to
// catch an accidental order-of-magnitude regression in the request path,
// not to pin a machine-dependent number).
func TestBenchJSONServeAcceptance(t *testing.T) {
	doc := loadBenchDoc(t)

	if doc.Serve.Clients < 32 {
		t.Errorf("serve section ran %d clients, want >= 32", doc.Serve.Clients)
	}
	if doc.Serve.GrepP99MS <= 0 {
		t.Errorf("serve_grep_p99_ms = %v, want > 0", doc.Serve.GrepP99MS)
	}
	if doc.Serve.MeasureP99MS <= 0 {
		t.Errorf("serve_measure_p99_ms = %v, want > 0", doc.Serve.MeasureP99MS)
	}
	ratio, ok := doc.Ratios["serve_vs_oneshot"]
	if !ok {
		t.Fatal("BENCH.json ratios missing serve_vs_oneshot")
	}
	if ratio <= 0 || ratio > 10 {
		t.Fatalf("serve_vs_oneshot = %.2f, want (0, 10]", ratio)
	}
}

// TestBenchJSONDistAcceptance pins the distributed-scan section: the
// coordinator–worker engine over in-process workers stays a small
// constant factor of single-node execution of the same plan (generous
// bound — in-process workers share the machine's cores, so the ratio
// measures engine overhead, and the point is catching an accidental
// order-of-magnitude regression in dispatch/snapshot/merge, not pinning
// a machine-dependent number).
func TestBenchJSONDistAcceptance(t *testing.T) {
	doc := loadBenchDoc(t)

	doc.result(t, "DistScanLocal")
	for _, n := range []int{1, 2, 4} {
		doc.result(t, "DistScan"+string(rune('0'+n))+"Workers")
		key := "dist_scan_vs_local_" + string(rune('0'+n)) + "w"
		ratio, ok := doc.Ratios[key]
		if !ok {
			t.Fatalf("BENCH.json ratios missing %s", key)
		}
		if ratio <= 0 || ratio > 10 {
			t.Errorf("%s = %.2f, want (0, 10]", key, ratio)
		}
	}
	if doc.Ratios["dist_scan_vs_local"] != doc.Ratios["dist_scan_vs_local_2w"] {
		t.Error("dist_scan_vs_local headline is not the 2-worker ratio")
	}
}

// TestBenchJSONChaosAcceptance pins the resilience section: the faulted
// distributed scan ran (bit-identity to the clean run is asserted inside
// cmd/bench itself — a diverged measurement aborts the regeneration),
// the seeded schedule actually injected faults, and absorbing them costs
// a small constant factor over the clean scan (generous bound — retry
// backoff is jittered and machine load moves the number; the point is
// catching an accidental order-of-magnitude regression in the retry or
// re-dispatch path, not pinning a machine-dependent figure).
func TestBenchJSONChaosAcceptance(t *testing.T) {
	doc := loadBenchDoc(t)

	doc.result(t, "DistScanFaulted2Workers")
	ratio, ok := doc.Ratios["scan_with_faults_vs_clean"]
	if !ok {
		t.Fatal("BENCH.json ratios missing scan_with_faults_vs_clean")
	}
	if ratio <= 0 || ratio > 25 {
		t.Fatalf("scan_with_faults_vs_clean = %.2f, want (0, 25]", ratio)
	}
	if doc.Chaos.FaultSpec == "" {
		t.Error("chaos section missing its fault spec")
	}
	if doc.Chaos.Workers < 2 {
		t.Errorf("chaos section ran %d workers, want >= 2", doc.Chaos.Workers)
	}
	if doc.Chaos.Injected <= 0 {
		t.Errorf("chaos section injected %d faults, want > 0 (a chaos run that injects nothing measures nothing)", doc.Chaos.Injected)
	}
	if doc.Chaos.Retries <= 0 {
		t.Errorf("chaos section recorded %d retries, want > 0", doc.Chaos.Retries)
	}
}
