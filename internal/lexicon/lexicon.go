// Package lexicon holds the embedded English word inventory shared by the
// synthetic text generator (internal/corpus) and the part-of-speech tagger
// (internal/textproc). Keeping one inventory in one place guarantees the
// generator emits text the tagger genuinely understands, while the
// deliberately ambiguous entries and the open-class gaps exercise the
// tagger's disambiguation and suffix-guessing paths.
package lexicon

// Tag is a coarse part-of-speech tag (a compact Penn-Treebank-like set).
type Tag string

// The tag inventory.
const (
	Noun      Tag = "NN"
	PluralN   Tag = "NNS"
	ProperN   Tag = "NNP"
	Verb      Tag = "VB"
	VerbPast  Tag = "VBD"
	VerbGer   Tag = "VBG"
	Adjective Tag = "JJ"
	Adverb    Tag = "RB"
	Det       Tag = "DT"
	Prep      Tag = "IN"
	Pronoun   Tag = "PRP"
	Conj      Tag = "CC"
	Modal     Tag = "MD"
	Number    Tag = "CD"
	Punct     Tag = "PUNCT"
	Unknown   Tag = "UNK"
)

// Determiners, prepositions, pronouns, conjunctions and modals are closed
// classes: the tagger knows all of them.
var (
	Determiners  = []string{"the", "a", "an", "this", "that", "these", "those", "each", "every", "some", "any", "no"}
	Prepositions = []string{"of", "in", "on", "at", "by", "for", "with", "from", "into", "through", "over", "under", "between", "against", "during", "without", "within", "toward", "upon", "about"}
	Pronouns     = []string{"he", "she", "it", "they", "we", "you", "i", "him", "her", "them", "us", "me", "himself", "herself", "itself"}
	Conjunctions = []string{"and", "but", "or", "nor", "yet", "so", "because", "although", "while", "whereas", "unless", "since"}
	Modals       = []string{"will", "would", "can", "could", "may", "might", "shall", "should", "must"}
)

// Open-class inventories. These drive both generation (picked by Zipf rank)
// and tagging (lexicon lookup).
var (
	Nouns = []string{
		"time", "year", "people", "way", "day", "man", "thing", "woman", "life", "child",
		"world", "school", "state", "family", "student", "group", "country", "problem", "hand", "part",
		"place", "case", "week", "company", "system", "program", "question", "work", "government", "number",
		"night", "point", "home", "water", "room", "mother", "area", "money", "story", "fact",
		"month", "lot", "right", "study", "book", "eye", "job", "word", "business", "issue",
		"side", "kind", "head", "house", "service", "friend", "father", "power", "hour", "game",
		"line", "end", "member", "law", "car", "city", "community", "name", "president", "team",
		"minute", "idea", "kid", "body", "information", "street", "art", "war", "history", "party",
		"result", "change", "morning", "reason", "research", "girl", "guy", "moment", "air", "teacher",
		"force", "education", "foot", "boy", "age", "policy", "process", "music", "market", "sense",
	}
	Verbs = []string{
		"be", "have", "do", "say", "get", "make", "go", "know", "take", "see",
		"come", "think", "look", "want", "give", "use", "find", "tell", "ask", "seem",
		"feel", "try", "leave", "call", "keep", "provide", "hold", "turn", "follow", "begin",
		"show", "hear", "play", "run", "move", "live", "believe", "bring", "happen", "write",
		"sit", "stand", "lose", "pay", "meet", "include", "continue", "set", "learn", "lead",
		"understand", "watch", "remain", "speak", "read", "spend", "grow", "open", "walk", "win",
	}
	Adjectives = []string{
		"good", "new", "first", "last", "long", "great", "little", "own", "other", "old",
		"right", "big", "high", "different", "small", "large", "next", "early", "young", "important",
		"few", "public", "bad", "same", "able", "human", "local", "late", "hard", "major",
		"better", "economic", "strong", "possible", "whole", "free", "military", "true", "federal", "international",
		"full", "special", "easy", "clear", "recent", "certain", "personal", "open", "red", "difficult",
	}
	Adverbs = []string{
		"up", "now", "then", "out", "just", "also", "here", "well", "only", "very",
		"even", "back", "there", "down", "still", "around", "too", "however", "again", "never",
		"really", "most", "why", "often", "always", "sometimes", "together", "far", "once", "quickly",
		"slowly", "quietly", "carefully", "suddenly", "finally", "nearly", "rarely", "deeply", "gently", "firmly",
	}
	ProperNouns = []string{
		"London", "Chicago", "Amazon", "Europe", "America", "Dublin", "Gabriel", "Agnes", "James", "Emily",
		"Monday", "January", "Thames", "Oxford", "Boston", "Maria", "Eveline", "Joyce", "Bronte", "Gutenberg",
	}
)

// Ambiguous words carry more than one plausible tag; the first entry is the
// most frequent reading. They force the tagger's transition model to do real
// work (e.g. "work" as noun vs. verb).
var Ambiguous = map[string][]Tag{
	"work":  {Noun, Verb},
	"play":  {Verb, Noun},
	"run":   {Verb, Noun},
	"open":  {Adjective, Verb},
	"right": {Adjective, Noun, Adverb},
	"set":   {Verb, Noun},
	"watch": {Verb, Noun},
	"back":  {Adverb, Noun, Verb},
	"study": {Noun, Verb},
	"call":  {Verb, Noun},
	"show":  {Verb, Noun},
	"move":  {Verb, Noun},
	"turn":  {Verb, Noun},
	"walk":  {Verb, Noun},
	"that":  {Det, Conj},
	"so":    {Adverb, Conj},
	"down":  {Adverb, Prep},
	"up":    {Adverb, Prep},
	"out":   {Adverb, Prep},
	"in":    {Prep, Adverb},
}

// Entries returns the full word → candidate-tags lexicon. The map is built
// fresh on each call so callers may mutate their copy.
func Entries() map[string][]Tag {
	lex := make(map[string][]Tag, 512)
	add := func(words []string, tag Tag) {
		for _, w := range words {
			if _, ok := lex[w]; !ok {
				lex[w] = []Tag{tag}
			}
		}
	}
	// Ambiguous entries take priority: install them first.
	for w, tags := range Ambiguous {
		lex[w] = append([]Tag(nil), tags...)
	}
	add(Determiners, Det)
	add(Prepositions, Prep)
	add(Pronouns, Pronoun)
	add(Conjunctions, Conj)
	add(Modals, Modal)
	add(Nouns, Noun)
	add(Verbs, Verb)
	add(Adjectives, Adjective)
	add(Adverbs, Adverb)
	add(ProperNouns, ProperN)
	return lex
}

// Size returns the number of distinct words across all inventories.
func Size() int { return len(Entries()) }
