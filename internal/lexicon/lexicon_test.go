package lexicon

import "testing"

func TestEntriesCoverAllInventories(t *testing.T) {
	lex := Entries()
	check := func(words []string, want Tag) {
		t.Helper()
		for _, w := range words {
			tags, ok := lex[w]
			if !ok {
				t.Errorf("word %q missing from lexicon", w)
				continue
			}
			// Either the inventory tag is the primary reading or the word
			// is deliberately ambiguous and carries it somewhere.
			found := false
			for _, tag := range tags {
				if tag == want {
					found = true
				}
			}
			if _, ambiguous := Ambiguous[w]; !found && !ambiguous {
				t.Errorf("word %q tags %v lack %v", w, tags, want)
			}
		}
	}
	check(Determiners, Det)
	check(Prepositions, Prep)
	check(Pronouns, Pronoun)
	check(Conjunctions, Conj)
	check(Modals, Modal)
	check(Nouns, Noun)
	check(Verbs, Verb)
	check(Adjectives, Adjective)
	check(Adverbs, Adverb)
	check(ProperNouns, ProperN)
}

func TestAmbiguousEntriesHaveMultipleTags(t *testing.T) {
	lex := Entries()
	for w, tags := range Ambiguous {
		if len(tags) < 2 {
			t.Errorf("ambiguous word %q has %d tags", w, len(tags))
		}
		got := lex[w]
		if len(got) != len(tags) {
			t.Errorf("lexicon lost ambiguity for %q: %v", w, got)
		}
	}
}

func TestEntriesFreshCopy(t *testing.T) {
	a := Entries()
	a["the"] = []Tag{Unknown}
	b := Entries()
	if b["the"][0] != Det {
		t.Error("Entries returns shared state")
	}
}

func TestSize(t *testing.T) {
	if Size() < 300 {
		t.Errorf("lexicon size %d, want ≥ 300", Size())
	}
	if Size() != len(Entries()) {
		t.Error("Size disagrees with Entries")
	}
}

func TestNoDuplicateWordsAcrossClosedClasses(t *testing.T) {
	seen := map[string]string{}
	classes := map[string][]string{
		"det":  Determiners,
		"prep": Prepositions,
		"pron": Pronouns,
		"conj": Conjunctions,
		"mod":  Modals,
	}
	for class, words := range classes {
		for _, w := range words {
			if prev, dup := seen[w]; dup {
				if _, ok := Ambiguous[w]; !ok {
					t.Errorf("word %q in both %s and %s without an Ambiguous entry", w, prev, class)
				}
			}
			seen[w] = class
		}
	}
}
