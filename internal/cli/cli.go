// Package cli holds the small pieces shared by every command: a root
// context cancelled on SIGINT/SIGTERM, and a fatal-error printer that
// turns the typed cancellation errors from internal/errs into a one-line
// "cancelled after stage X" diagnostic instead of a raw error dump.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/errs"
)

// ExitCodeCancelled is the exit code for signal-initiated termination —
// the shell convention for SIGINT (128+2). Fatal uses it for cancellation
// errors, and long-running commands (serve) exit with it directly after a
// signal-triggered graceful drain, so all commands share one signal
// contract.
const ExitCodeCancelled = 130

// SignalContext returns a root context that is cancelled on SIGINT or
// SIGTERM, plus the stop function releasing the signal registration.
// Commands call this first thing in main and thread the context through
// every Ctx-accepting layer; a second signal during shutdown falls back
// to the default handler (immediate termination). This is the ONLY signal
// wiring in the repository — commands must not install handlers of their
// own, so all seven share one signal path.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints the error prefixed with the program name and exits
// non-zero. Cancellations (interrupt or deadline) render as a single
// line naming the last stage reached — "cancelled after stage X" — with
// exit code 130 (the shell convention for SIGINT); everything else
// prints the full error chain and exits 1.
func Fatal(prog string, err error) {
	if errs.IsCancellation(err) {
		kind := "cancelled"
		if errors.Is(err, errs.ErrDeadline) {
			kind = "deadline exceeded"
		}
		if stage := errs.StageOf(err); stage != "" {
			fmt.Fprintf(os.Stderr, "%s: %s after stage %s\n", prog, kind, stage)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s\n", prog, kind)
		}
		os.Exit(ExitCodeCancelled)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(1)
}
