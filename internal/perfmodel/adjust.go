package perfmodel

import (
	"fmt"

	"repro/internal/stats"
)

// Adjustment is the paper's §5.2 deadline-derating: assuming the model's
// relative residuals (y-f(x))/f(x) are normally distributed, scheduling
// for the lowered deadline D/(1+A) bounds the probability of exceeding the
// true deadline D by MissProb.
type Adjustment struct {
	// A is the inflation factor a = z·σ + μ (z = 1.29 for a 10% miss).
	A float64
	// MissProb is the accepted probability of missing the deadline.
	MissProb float64
	// ResidualMean and ResidualStdDev are the sample moments of the
	// relative residuals the adjustment was derived from.
	ResidualMean   float64
	ResidualStdDev float64
	N              int
	// NormalityChecked reports whether enough residuals existed to run the
	// Kolmogorov-Smirnov check of the §5.2 normality assumption;
	// NormalityOK holds its verdict. A rejected check does not invalidate
	// the adjustment but flags that the miss-probability bound is
	// approximate.
	NormalityChecked bool
	NormalityOK      bool
	KSStatistic      float64
}

// AdjustDeadline returns the derated deadline D/(1+A). When A ≤ -1 the
// derate would be nonsensical (the model wildly over-predicts); the
// original deadline is returned unchanged.
func (a Adjustment) AdjustDeadline(d float64) float64 {
	if 1+a.A <= 0 {
		return d
	}
	return d / (1 + a.A)
}

func (a Adjustment) String() string {
	return fmt.Sprintf("a=%.4f (μ=%.4f σ=%.4f, miss≤%.0f%%)", a.A, a.ResidualMean, a.ResidualStdDev, a.MissProb*100)
}

// NewAdjustment derives the deadline adjustment from a fitted model and
// its calibration points.
func NewAdjustment(m Model, xs, ys []float64, missProb float64) (Adjustment, error) {
	if len(xs) != len(ys) {
		return Adjustment{}, fmt.Errorf("perfmodel: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	rel := stats.RelativeResiduals(xs, ys, m.Predict)
	a, err := stats.DeadlineInflation(rel, missProb)
	if err != nil {
		return Adjustment{}, err
	}
	s := stats.Summarize(rel)
	adj := Adjustment{
		A:              a,
		MissProb:       missProb,
		ResidualMean:   s.Mean,
		ResidualStdDev: s.StdDev,
		N:              s.N,
	}
	if ks, err := stats.KSNormal(rel); err == nil {
		adj.NormalityChecked = true
		adj.NormalityOK = ks.Normal
		adj.KSStatistic = ks.D
	}
	return adj, nil
}
