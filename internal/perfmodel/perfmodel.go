// Package perfmodel implements the paper's empirical application
// performance models (§4-§5): execution time as a function of data volume,
// fitted by regression over probe measurements. Because sample volumes are
// not equidistant, the non-linear families are fitted in logarithmic space,
// exactly as §5 prescribes:
//
//	linear       y = a·x          (log space: Y = ln a + X)
//	affine       y = b + a·x      (linear-space least squares; the form of
//	                               the paper's Eqs. (1)-(4))
//	power law    y = a·x^b        (log space: Y = ln a + b·X)
//	log-quad     y = x^(a·ln x+b) (log space: Y = a·X² + b·X)
//	exponential  y = a·e^(b·x)    (log space: Y = ln a + b·x)
//
// Models predict, invert (how much data fits in a deadline) and expose the
// convexity classification of Fig. 2 that drives provisioning strategy.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Model is a fitted execution-time predictor. x is data volume in bytes;
// predictions are seconds.
type Model interface {
	// Name identifies the model family.
	Name() string
	// Predict returns the estimated execution time for volume x.
	Predict(x float64) float64
	// Invert returns the volume processable within y seconds.
	Invert(y float64) (float64, error)
	// R2 is the coefficient of determination of the fit (in the space the
	// family was fitted in).
	R2() float64
	// Shape classifies the curve's convexity (Fig. 2).
	Shape() Shape
	fmt.Stringer
}

// Shape is the convexity classification of Fig. 2: for f”> 0 it is always
// better to start new instances; for f” < 0 it is better to pack data up
// to the deadline.
type Shape int

// Shapes.
const (
	ShapeLinear Shape = iota
	ShapeConvex
	ShapeConcave
)

func (s Shape) String() string {
	switch s {
	case ShapeConvex:
		return "convex"
	case ShapeConcave:
		return "concave"
	default:
		return "linear"
	}
}

func checkFitInput(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("perfmodel: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return stats.ErrInsufficientData
	}
	return nil
}

// Affine is y = B + A·x, the form of the paper's equations (1)-(4).
type Affine struct {
	A, B float64
	r2   float64
}

// Name implements Model.
func (m *Affine) Name() string { return "affine" }

// Predict implements Model.
func (m *Affine) Predict(x float64) float64 { return m.B + m.A*x }

// Invert implements Model.
func (m *Affine) Invert(y float64) (float64, error) {
	if m.A == 0 {
		return 0, fmt.Errorf("perfmodel: affine model has zero slope")
	}
	return (y - m.B) / m.A, nil
}

// R2 implements Model.
func (m *Affine) R2() float64 { return m.r2 }

// Shape implements Model.
func (m *Affine) Shape() Shape { return ShapeLinear }

func (m *Affine) String() string {
	return fmt.Sprintf("f(x) = %.6g + %.6g*x (R²=%.4f)", m.B, m.A, m.r2)
}

// FitAffine fits y = B + A·x by ordinary least squares in linear space.
func FitAffine(xs, ys []float64) (*Affine, error) {
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	return &Affine{A: fit.Slope, B: fit.Intercept, r2: fit.R2}, nil
}

// FitAffineWeighted fits y = B + A·x with per-point weights — the §7
// extension demanding closer fits in the large-volume range.
func FitAffineWeighted(xs, ys, ws []float64) (*Affine, error) {
	fit, err := stats.FitLinearWeighted(xs, ys, ws)
	if err != nil {
		return nil, err
	}
	return &Affine{A: fit.Slope, B: fit.Intercept, r2: fit.R2}, nil
}

// VolumeWeights returns weights proportional to x^power, the natural
// weighting for "closer fits in the large data volume range" (§7).
// power=0 reduces to uniform weights.
func VolumeWeights(xs []float64, power float64) []float64 {
	ws := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			ws[i] = 1e-9
			continue
		}
		ws[i] = math.Pow(x, power)
	}
	return ws
}

// Proportional is y = A·x, fitted in log space (Y = ln a + X as in §5(1)).
type Proportional struct {
	A  float64
	r2 float64
}

// Name implements Model.
func (m *Proportional) Name() string { return "linear" }

// Predict implements Model.
func (m *Proportional) Predict(x float64) float64 { return m.A * x }

// Invert implements Model.
func (m *Proportional) Invert(y float64) (float64, error) {
	if m.A == 0 {
		return 0, fmt.Errorf("perfmodel: proportional model has zero slope")
	}
	return y / m.A, nil
}

// R2 implements Model.
func (m *Proportional) R2() float64 { return m.r2 }

// Shape implements Model.
func (m *Proportional) Shape() Shape { return ShapeLinear }

func (m *Proportional) String() string {
	return fmt.Sprintf("f(x) = %.6g*x (R²=%.4f)", m.A, m.r2)
}

// FitProportional fits y = A·x in log space: ln a = mean(Y - X).
func FitProportional(xs, ys []float64) (*Proportional, error) {
	if err := checkFitInput(xs, ys); err != nil {
		return nil, err
	}
	X, err := stats.LogSpace(xs)
	if err != nil {
		return nil, err
	}
	Y, err := stats.LogSpace(ys)
	if err != nil {
		return nil, err
	}
	var sum float64
	for i := range X {
		sum += Y[i] - X[i]
	}
	m := &Proportional{A: math.Exp(sum / float64(len(X)))}
	m.r2 = logSpaceR2(Y, func(i int) float64 { return math.Log(m.A) + X[i] })
	return m, nil
}

// PowerLaw is y = A·x^B, fitted in log-log space.
type PowerLaw struct {
	A, B float64
	r2   float64
}

// Name implements Model.
func (m *PowerLaw) Name() string { return "power-law" }

// Predict implements Model.
func (m *PowerLaw) Predict(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return m.A * math.Pow(x, m.B)
}

// Invert implements Model.
func (m *PowerLaw) Invert(y float64) (float64, error) {
	if m.A <= 0 || m.B == 0 || y <= 0 {
		return 0, fmt.Errorf("perfmodel: power law not invertible at y=%v", y)
	}
	return math.Pow(y/m.A, 1/m.B), nil
}

// R2 implements Model.
func (m *PowerLaw) R2() float64 { return m.r2 }

// Shape implements Model: b>1 is convex, b<1 concave (Fig. 2).
func (m *PowerLaw) Shape() Shape {
	switch {
	case m.B > 1:
		return ShapeConvex
	case m.B < 1:
		return ShapeConcave
	default:
		return ShapeLinear
	}
}

func (m *PowerLaw) String() string {
	return fmt.Sprintf("f(x) = %.6g*x^%.4f (R²=%.4f)", m.A, m.B, m.r2)
}

// FitPowerLaw fits y = A·x^B by least squares in log-log space.
func FitPowerLaw(xs, ys []float64) (*PowerLaw, error) {
	if err := checkFitInput(xs, ys); err != nil {
		return nil, err
	}
	X, err := stats.LogSpace(xs)
	if err != nil {
		return nil, err
	}
	Y, err := stats.LogSpace(ys)
	if err != nil {
		return nil, err
	}
	fit, err := stats.FitLinear(X, Y)
	if err != nil {
		return nil, err
	}
	return &PowerLaw{A: math.Exp(fit.Intercept), B: fit.Slope, r2: fit.R2}, nil
}

// LogQuad is y = x^(A·ln x + B), the paper's Y = a·X² + b·X log-space form.
type LogQuad struct {
	A, B float64
	r2   float64
}

// Name implements Model.
func (m *LogQuad) Name() string { return "log-quadratic" }

// Predict implements Model.
func (m *LogQuad) Predict(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lx := math.Log(x)
	return math.Exp(m.A*lx*lx + m.B*lx)
}

// Invert implements Model: solve A·t² + B·t = ln y for t = ln x, taking
// the root that yields the larger volume (the economically relevant
// branch).
func (m *LogQuad) Invert(y float64) (float64, error) {
	if y <= 0 {
		return 0, fmt.Errorf("perfmodel: log-quad not invertible at y=%v", y)
	}
	ly := math.Log(y)
	if m.A == 0 {
		if m.B == 0 {
			return 0, fmt.Errorf("perfmodel: degenerate log-quad model")
		}
		return math.Exp(ly / m.B), nil
	}
	disc := m.B*m.B + 4*m.A*ly
	if disc < 0 {
		return 0, fmt.Errorf("perfmodel: log-quad has no real inverse at y=%v", y)
	}
	t1 := (-m.B + math.Sqrt(disc)) / (2 * m.A)
	t2 := (-m.B - math.Sqrt(disc)) / (2 * m.A)
	t := math.Max(t1, t2)
	return math.Exp(t), nil
}

// R2 implements Model.
func (m *LogQuad) R2() float64 { return m.r2 }

// Shape implements Model: exponent a·ln x + b grows with x when A > 0.
func (m *LogQuad) Shape() Shape {
	switch {
	case m.A > 0:
		return ShapeConvex
	case m.A < 0:
		return ShapeConcave
	default:
		if m.B > 1 {
			return ShapeConvex
		}
		if m.B < 1 {
			return ShapeConcave
		}
		return ShapeLinear
	}
}

func (m *LogQuad) String() string {
	return fmt.Sprintf("f(x) = x^(%.4g*ln x + %.4g) (R²=%.4f)", m.A, m.B, m.r2)
}

// FitLogQuad fits Y = A·X² + B·X in log space.
func FitLogQuad(xs, ys []float64) (*LogQuad, error) {
	if err := checkFitInput(xs, ys); err != nil {
		return nil, err
	}
	X, err := stats.LogSpace(xs)
	if err != nil {
		return nil, err
	}
	Y, err := stats.LogSpace(ys)
	if err != nil {
		return nil, err
	}
	fit, err := stats.FitQuadraticOrigin(X, Y)
	if err != nil {
		return nil, err
	}
	return &LogQuad{A: fit.A, B: fit.B, r2: fit.R2}, nil
}

// Exponential is y = A·e^(B·x), fitted as Y = ln a + b·x.
type Exponential struct {
	A, B float64
	r2   float64
}

// Name implements Model.
func (m *Exponential) Name() string { return "exponential" }

// Predict implements Model.
func (m *Exponential) Predict(x float64) float64 { return m.A * math.Exp(m.B*x) }

// Invert implements Model.
func (m *Exponential) Invert(y float64) (float64, error) {
	if m.A <= 0 || m.B == 0 || y <= 0 {
		return 0, fmt.Errorf("perfmodel: exponential not invertible at y=%v", y)
	}
	return math.Log(y/m.A) / m.B, nil
}

// R2 implements Model.
func (m *Exponential) R2() float64 { return m.r2 }

// Shape implements Model.
func (m *Exponential) Shape() Shape {
	if m.B > 0 {
		return ShapeConvex
	}
	if m.B < 0 {
		return ShapeConcave
	}
	return ShapeLinear
}

func (m *Exponential) String() string {
	return fmt.Sprintf("f(x) = %.6g*e^(%.4g*x) (R²=%.4f)", m.A, m.B, m.r2)
}

// FitExponential fits y = A·e^(B·x) by least squares on Y = ln y.
func FitExponential(xs, ys []float64) (*Exponential, error) {
	if err := checkFitInput(xs, ys); err != nil {
		return nil, err
	}
	Y, err := stats.LogSpace(ys)
	if err != nil {
		return nil, err
	}
	fit, err := stats.FitLinear(xs, Y)
	if err != nil {
		return nil, err
	}
	return &Exponential{A: math.Exp(fit.Intercept), B: fit.Slope, r2: fit.R2}, nil
}

// logSpaceR2 computes R² over log-space observations.
func logSpaceR2(Y []float64, pred func(i int) float64) float64 {
	mean := stats.Mean(Y)
	var ssRes, ssTot float64
	for i, y := range Y {
		r := y - pred(i)
		ssRes += r * r
		d := y - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// FitAll fits every family and returns the successful fits.
func FitAll(xs, ys []float64) []Model {
	var out []Model
	if m, err := FitAffine(xs, ys); err == nil {
		out = append(out, m)
	}
	if m, err := FitProportional(xs, ys); err == nil {
		out = append(out, m)
	}
	if m, err := FitPowerLaw(xs, ys); err == nil {
		out = append(out, m)
	}
	if m, err := FitLogQuad(xs, ys); err == nil {
		out = append(out, m)
	}
	if m, err := FitExponential(xs, ys); err == nil {
		out = append(out, m)
	}
	return out
}

// Best returns the model with the highest R², or an error if none fitted.
func Best(models []Model) (Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("perfmodel: no fitted models")
	}
	best := models[0]
	for _, m := range models[1:] {
		if m.R2() > best.R2() {
			best = m
		}
	}
	return best, nil
}
