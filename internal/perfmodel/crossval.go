package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Cross-validated model selection. R² in each family's own fitting space
// is not comparable across families (log-space R² vs linear-space R²), and
// the flexible families can overfit the handful of probe volumes. K-fold
// cross-validation on relative prediction error gives an apples-to-apples
// criterion; SelectByCV is the more careful alternative to Best.

// Family is a named fitting procedure.
type Family struct {
	Name string
	Fit  func(xs, ys []float64) (Model, error)
}

// Families returns the §5 model families as cross-validatable fitters.
func Families() []Family {
	return []Family{
		{"affine", func(xs, ys []float64) (Model, error) { return FitAffine(xs, ys) }},
		{"linear", func(xs, ys []float64) (Model, error) { return FitProportional(xs, ys) }},
		{"power-law", func(xs, ys []float64) (Model, error) { return FitPowerLaw(xs, ys) }},
		{"log-quadratic", func(xs, ys []float64) (Model, error) { return FitLogQuad(xs, ys) }},
		{"exponential", func(xs, ys []float64) (Model, error) { return FitExponential(xs, ys) }},
	}
}

// CVScore is a family's cross-validation outcome.
type CVScore struct {
	Family Family
	// MeanRelError is the mean absolute relative prediction error on
	// held-out points.
	MeanRelError float64
	// Folds actually evaluated (folds whose training fit failed are
	// skipped; a family that never fits gets +Inf error).
	Folds int
}

// CrossValidate scores one family with k-fold CV. Points are assigned to
// folds round-robin after sorting by x, so every fold spans the volume
// range (important for extrapolating families).
func CrossValidate(f Family, xs, ys []float64, k int) (CVScore, error) {
	if len(xs) != len(ys) {
		return CVScore{}, fmt.Errorf("perfmodel: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if k < 2 {
		return CVScore{}, fmt.Errorf("perfmodel: need k ≥ 2 folds, got %d", k)
	}
	if len(xs) < k {
		return CVScore{}, fmt.Errorf("perfmodel: %d points cannot fill %d folds", len(xs), k)
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })

	var sumErr float64
	var evaluated, folds int
	for fold := 0; fold < k; fold++ {
		var trainX, trainY, testX, testY []float64
		for pos, idx := range order {
			if pos%k == fold {
				testX = append(testX, xs[idx])
				testY = append(testY, ys[idx])
			} else {
				trainX = append(trainX, xs[idx])
				trainY = append(trainY, ys[idx])
			}
		}
		m, err := f.Fit(trainX, trainY)
		if err != nil {
			continue // this family cannot fit this fold's data
		}
		for i := range testX {
			pred := m.Predict(testX[i])
			if testY[i] == 0 {
				continue
			}
			sumErr += math.Abs(pred-testY[i]) / math.Abs(testY[i])
			evaluated++
		}
		folds++
	}
	if evaluated == 0 {
		return CVScore{Family: f, MeanRelError: math.Inf(1)}, nil
	}
	return CVScore{Family: f, MeanRelError: sumErr / float64(evaluated), Folds: folds}, nil
}

// SelectByCV cross-validates every family and refits the winner on the
// full data. It returns the fitted winner and all scores (sorted best
// first).
func SelectByCV(xs, ys []float64, k int) (Model, []CVScore, error) {
	families := Families()
	scores := make([]CVScore, 0, len(families))
	for _, f := range families {
		s, err := CrossValidate(f, xs, ys, k)
		if err != nil {
			return nil, nil, err
		}
		scores = append(scores, s)
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].MeanRelError < scores[b].MeanRelError })
	for _, s := range scores {
		if math.IsInf(s.MeanRelError, 1) {
			continue
		}
		m, err := s.Family.Fit(xs, ys)
		if err != nil {
			continue
		}
		return m, scores, nil
	}
	return nil, scores, fmt.Errorf("perfmodel: no family fit the data")
}
