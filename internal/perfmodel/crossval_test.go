package perfmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossValidateErrors(t *testing.T) {
	f := Families()[0]
	if _, err := CrossValidate(f, []float64{1}, []float64{1, 2}, 2); err == nil {
		t.Error("expected length error")
	}
	if _, err := CrossValidate(f, []float64{1, 2, 3}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("expected error for k < 2")
	}
	if _, err := CrossValidate(f, []float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("expected error for too few points")
	}
}

func TestSelectByCVRecoversAffineTruth(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for v := 1e6; v <= 1e10; v *= 1.5 {
		for rep := 0; rep < 3; rep++ {
			xs = append(xs, v)
			ys = append(ys, (0.3+8.65e-5*v)*(1+r.NormFloat64()*0.02))
		}
	}
	m, scores, err := SelectByCV(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(Families()) {
		t.Errorf("scores = %d", len(scores))
	}
	// Held-out error of the winner must be small, and its predictions
	// track the truth.
	if scores[0].MeanRelError > 0.05 {
		t.Errorf("winner CV error = %v", scores[0].MeanRelError)
	}
	at := 5e9
	truth := 0.3 + 8.65e-5*at
	if math.Abs(m.Predict(at)/truth-1) > 0.05 {
		t.Errorf("winner prediction %v vs truth %v", m.Predict(at), truth)
	}
	// Scores must be sorted ascending.
	for i := 1; i < len(scores); i++ {
		if scores[i].MeanRelError < scores[i-1].MeanRelError {
			t.Error("scores not sorted")
		}
	}
}

func TestSelectByCVRecoversPowerTruth(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var xs, ys []float64
	truth := func(x float64) float64 { return 3e-6 * math.Pow(x, 1.25) }
	for v := 1e5; v <= 1e9; v *= 1.7 {
		for rep := 0; rep < 3; rep++ {
			xs = append(xs, v)
			ys = append(ys, truth(v)*(1+r.NormFloat64()*0.02))
		}
	}
	m, scores, err := SelectByCV(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	winner := scores[0].Family.Name
	// Power-law truth: the winner must be one of the families that can
	// represent it well (power-law or the more general log-quadratic).
	if winner != "power-law" && winner != "log-quadratic" {
		t.Errorf("winner = %s for power-law truth", winner)
	}
	at := 3e8
	if math.Abs(m.Predict(at)/truth(at)-1) > 0.10 {
		t.Errorf("winner prediction %v vs truth %v", m.Predict(at), truth(at))
	}
}

func TestSelectByCVUnfittableData(t *testing.T) {
	// Negative y values break every log-space family and leave affine,
	// which still fits — so selection succeeds via affine.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{-1, -2, -3, -4, -5, -6}
	m, _, err := SelectByCV(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "affine" {
		t.Errorf("winner = %s, want affine (only family handling negative y)", m.Name())
	}
}

func TestCVScoreInfiniteForImpossibleFamily(t *testing.T) {
	// Exponential cannot fit negative y in any fold.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{-1, -2, -3, -4}
	var exp Family
	for _, f := range Families() {
		if f.Name == "exponential" {
			exp = f
		}
	}
	s, err := CrossValidate(exp, xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.MeanRelError, 1) {
		t.Errorf("impossible family error = %v, want +Inf", s.MeanRelError)
	}
}

func TestAdjustmentNormalityCheck(t *testing.T) {
	m := &Affine{A: 1, B: 0}
	r := rand.New(rand.NewSource(8))
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := 10 + r.Float64()*100
		xs = append(xs, x)
		ys = append(ys, x*(1+r.NormFloat64()*0.05))
	}
	adj, err := NewAdjustment(m, xs, ys, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !adj.NormalityChecked {
		t.Fatal("normality not checked despite 100 residuals")
	}
	if !adj.NormalityOK {
		t.Errorf("Gaussian residuals flagged non-normal (D=%v)", adj.KSStatistic)
	}
	// Heavily skewed residuals must be flagged.
	var ys2 []float64
	for _, x := range xs {
		ys2 = append(ys2, x*(1+r.ExpFloat64()))
	}
	adj2, err := NewAdjustment(m, xs, ys2, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if adj2.NormalityChecked && adj2.NormalityOK {
		t.Error("exponential residuals passed the normality check")
	}
}
