package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, relTol float64) bool {
	if b == 0 {
		return math.Abs(a) < relTol
	}
	return math.Abs(a/b-1) < relTol
}

func genNoisy(f func(x float64) float64, n int, noiseSD float64, seed int64) (xs, ys []float64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// Log-spaced volumes, like the paper's escalating probes.
		x := math.Pow(10, 3+r.Float64()*6)
		y := f(x) * (1 + r.NormFloat64()*noiseSD)
		if y <= 0 {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func TestFitAffineRecoversEquation1(t *testing.T) {
	// Eq. (1): f(x) = -0.974 + 1.324e-8 x.
	f := func(x float64) float64 { return -0.974 + 1.324e-8*x }
	var xs, ys []float64
	for _, v := range []float64{1e8, 5e8, 1e9, 5e9, 1e10, 1e11} {
		xs = append(xs, v)
		ys = append(ys, f(v))
	}
	m, err := FitAffine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.A, 1.324e-8, 1e-6) || math.Abs(m.B-(-0.974)) > 1e-6 {
		t.Errorf("fit = %v", m)
	}
	if m.R2() < 0.9999 {
		t.Errorf("R² = %v", m.R2())
	}
	x, err := m.Invert(3600)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Predict(x), 3600, 1e-9) {
		t.Error("invert not a right inverse")
	}
	if m.Shape() != ShapeLinear {
		t.Error("affine shape not linear")
	}
}

func TestFitProportionalLogSpace(t *testing.T) {
	xs, ys := genNoisy(func(x float64) float64 { return 2e-8 * x }, 200, 0.05, 1)
	m, err := FitProportional(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.A, 2e-8, 0.05) {
		t.Errorf("A = %v, want 2e-8", m.A)
	}
	if m.R2() < 0.99 {
		t.Errorf("R² = %v", m.R2())
	}
	x, err := m.Invert(100)
	if err != nil || !close(x, 100/m.A, 1e-9) {
		t.Errorf("invert = %v, %v", x, err)
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	for _, b := range []float64{0.7, 1.0, 1.4} {
		b := b
		xs, ys := genNoisy(func(x float64) float64 { return 3e-6 * math.Pow(x, b) }, 300, 0.05, 2)
		m, err := FitPowerLaw(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.B-b) > 0.03 {
			t.Errorf("B = %v, want %v", m.B, b)
		}
		x, err := m.Invert(50)
		if err != nil {
			t.Fatal(err)
		}
		if !close(m.Predict(x), 50, 1e-6) {
			t.Error("power-law invert broken")
		}
	}
}

func TestPowerLawShapeClassification(t *testing.T) {
	if (&PowerLaw{A: 1, B: 1.2}).Shape() != ShapeConvex {
		t.Error("b>1 should be convex")
	}
	if (&PowerLaw{A: 1, B: 0.8}).Shape() != ShapeConcave {
		t.Error("b<1 should be concave")
	}
	if (&PowerLaw{A: 1, B: 1}).Shape() != ShapeLinear {
		t.Error("b=1 should be linear")
	}
}

func TestFitLogQuad(t *testing.T) {
	// y = x^(0.02 ln x + 0.6)
	truth := func(x float64) float64 {
		lx := math.Log(x)
		return math.Exp(0.02*lx*lx + 0.6*lx)
	}
	xs, ys := genNoisy(truth, 300, 0.02, 3)
	m, err := FitLogQuad(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-0.02) > 0.005 || math.Abs(m.B-0.6) > 0.1 {
		t.Errorf("fit = %v", m)
	}
	if m.Shape() != ShapeConvex {
		t.Error("A>0 should be convex")
	}
	x, err := m.Invert(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.Predict(x), 1000, 1e-6) {
		t.Error("log-quad invert broken")
	}
}

func TestLogQuadInvertDegenerate(t *testing.T) {
	if _, err := (&LogQuad{}).Invert(10); err == nil {
		t.Error("expected error for degenerate model")
	}
	m := &LogQuad{A: 0, B: 2}
	x, err := m.Invert(100)
	if err != nil || !close(m.Predict(x), 100, 1e-9) {
		t.Errorf("linear-branch invert: %v, %v", x, err)
	}
	if _, err := (&LogQuad{A: -1, B: 0}).Invert(math.Exp(10)); err == nil {
		t.Error("expected no-real-root error")
	}
}

func TestFitExponential(t *testing.T) {
	truth := func(x float64) float64 { return 2 * math.Exp(3e-10*x) }
	var xs, ys []float64
	for x := 1e8; x <= 1e10; x *= 1.5 {
		xs = append(xs, x)
		ys = append(ys, truth(x))
	}
	m, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.A, 2, 0.01) || !close(m.B, 3e-10, 0.01) {
		t.Errorf("fit = %v", m)
	}
	if m.Shape() != ShapeConvex {
		t.Error("B>0 should be convex")
	}
	x, err := m.Invert(10)
	if err != nil || !close(m.Predict(x), 10, 1e-9) {
		t.Errorf("invert = %v, %v", x, err)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitAffine([]float64{1}, []float64{1}); err == nil {
		t.Error("expected insufficient-data error")
	}
	if _, err := FitProportional([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected length error")
	}
	if _, err := FitPowerLaw([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("expected log-domain error")
	}
	if _, err := FitExponential([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("expected log-domain error for y")
	}
	if _, err := (&Affine{A: 0}).Invert(1); err == nil {
		t.Error("expected zero-slope invert error")
	}
	if _, err := (&Proportional{A: 0}).Invert(1); err == nil {
		t.Error("expected zero-slope invert error")
	}
	if _, err := (&PowerLaw{A: 1, B: 1}).Invert(-1); err == nil {
		t.Error("expected domain error")
	}
	if _, err := (&Exponential{A: 1, B: 1}).Invert(0); err == nil {
		t.Error("expected domain error")
	}
}

func TestFitAllAndBest(t *testing.T) {
	xs, ys := genNoisy(func(x float64) float64 { return 1e-8 * x }, 100, 0.03, 5)
	models := FitAll(xs, ys)
	if len(models) < 4 {
		t.Fatalf("only %d families fitted", len(models))
	}
	best, err := Best(models)
	if err != nil {
		t.Fatal(err)
	}
	if best.R2() < 0.98 {
		t.Errorf("best R² = %v", best.R2())
	}
	if _, err := Best(nil); err == nil {
		t.Error("expected error for empty model list")
	}
}

func TestWeightedFitFavoursLargeVolumes(t *testing.T) {
	// Truth is linear at large volumes but corrupted at small ones; the
	// volume-weighted fit must track the large-volume behaviour better.
	var xs, ys []float64
	for x := 1e3; x <= 1e6; x *= 2 {
		y := 1e-5 * x
		if x < 1e4 {
			y *= 5 // small-volume overheads corrupt the trend
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	plain, err := FitAffine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := FitAffineWeighted(xs, ys, VolumeWeights(xs, 1))
	if err != nil {
		t.Fatal(err)
	}
	truthAt := 1e-5 * 1e6
	errPlain := math.Abs(plain.Predict(1e6) - truthAt)
	errWeighted := math.Abs(weighted.Predict(1e6) - truthAt)
	if errWeighted >= errPlain {
		t.Errorf("weighted fit no better at large volume: %v vs %v", errWeighted, errPlain)
	}
}

func TestVolumeWeightsEdge(t *testing.T) {
	ws := VolumeWeights([]float64{0, -5, 10}, 1)
	if ws[0] <= 0 || ws[1] <= 0 {
		t.Error("non-positive volumes must still get positive weights")
	}
	if ws[2] != 10 {
		t.Errorf("weight = %v, want 10", ws[2])
	}
}

func TestAdjustmentMatchesPaperCalculation(t *testing.T) {
	// Build residuals with known moments: the paper derives a = 1.525 from
	// its POS model (4) residuals; we verify the formula a = z·σ + μ.
	m := &Affine{A: 1, B: 0}
	xs := []float64{1, 1, 1, 1}
	ys := []float64{1.2, 0.8, 1.3, 0.7} // rel residuals: .2 -.2 .3 -.3
	adj, err := NewAdjustment(m, xs, ys, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(adj.ResidualMean) > 1e-12 {
		t.Errorf("residual mean = %v", adj.ResidualMean)
	}
	wantSD := math.Sqrt((0.04 + 0.04 + 0.09 + 0.09) / 3)
	if !close(adj.ResidualStdDev, wantSD, 1e-9) {
		t.Errorf("residual sd = %v, want %v", adj.ResidualStdDev, wantSD)
	}
	wantA := 1.2815515655446004 * wantSD
	if !close(adj.A, wantA, 1e-9) {
		t.Errorf("a = %v, want %v", adj.A, wantA)
	}
	// D = 3600 derates to D/(1+a), like the paper's 3600 → 3124.
	d1 := adj.AdjustDeadline(3600)
	if !close(d1, 3600/(1+wantA), 1e-9) {
		t.Errorf("adjusted deadline = %v", d1)
	}
}

func TestAdjustmentPaperNumbers(t *testing.T) {
	// With the paper's a = 1.525: D=3600 → 1425.7? No - the paper says
	// 3124. Its D/(1+a) uses a = 0.1525? Re-read: the paper's published
	// adjusted deadlines are 3600→3124 and 7200→6247, i.e. 1+a ≈ 1.1524.
	// We therefore interpret the printed "a = 1.525" as 10x-scaled
	// (a = 0.1525) and verify the ratio our formula needs to reproduce the
	// published deadlines.
	const impliedA = 0.15245
	if d := (Adjustment{A: impliedA}).AdjustDeadline(3600); math.Abs(d-3124) > 1 {
		t.Errorf("3600 derates to %v, want ≈3124", d)
	}
	if d := (Adjustment{A: impliedA}).AdjustDeadline(7200); math.Abs(d-6247.9) > 1 {
		t.Errorf("7200 derates to %v, want ≈6247", d)
	}
}

func TestAdjustDeadlinePathological(t *testing.T) {
	if d := (Adjustment{A: -1.5}).AdjustDeadline(100); d != 100 {
		t.Errorf("pathological adjustment changed deadline: %v", d)
	}
}

func TestNewAdjustmentErrors(t *testing.T) {
	m := &Affine{A: 1}
	if _, err := NewAdjustment(m, []float64{1}, []float64{1, 2}, 0.1); err == nil {
		t.Error("expected length error")
	}
	if _, err := NewAdjustment(m, []float64{1}, []float64{1}, 0.1); err == nil {
		t.Error("expected insufficient-residual error")
	}
}

// Property: for every family, Invert is a right inverse of Predict on the
// fitted curve wherever both are defined.
func TestInvertRoundTripProperty(t *testing.T) {
	xs, ys := genNoisy(func(x float64) float64 { return 1e-7 * math.Pow(x, 1.1) }, 200, 0.02, 9)
	models := FitAll(xs, ys)
	f := func(raw uint32) bool {
		x := 1e3 + float64(raw%1_000_000)*1e3
		for _, m := range models {
			y := m.Predict(x)
			if y <= 0 {
				continue
			}
			xi, err := m.Invert(y)
			if err != nil {
				continue
			}
			if !close(m.Predict(xi), y, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		&Affine{A: 1, B: 2},
		&Proportional{A: 1},
		&PowerLaw{A: 1, B: 2},
		&LogQuad{A: 1, B: 2},
		&Exponential{A: 1, B: 2},
	}
	for _, m := range models {
		if m.String() == "" || m.Name() == "" {
			t.Errorf("%T has empty identity", m)
		}
	}
}
