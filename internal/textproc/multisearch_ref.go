package textproc

// ReferenceMultiSearcher is the pre-rework multi-pattern matcher kept as a
// frozen differential oracle: the same Aho–Corasick automaton as
// MultiSearcher (they share buildAutomaton), but walked through the
// original [][256]int32 goto table with per-state []int32 output slices
// and no skip loop, bitmap, or interleave. Differential tests and the
// multisearch_fast_vs_old bench ratio pin the production searcher against
// it; nothing in the production path should ever call it.
type ReferenceMultiSearcher struct {
	patterns []string
	folded   bool
	next     [][256]int32
	out      [][]int32
}

// NewReferenceMultiSearcher builds the frozen case-sensitive reference.
func NewReferenceMultiSearcher(patterns []string) (*ReferenceMultiSearcher, error) {
	return newReferenceMultiSearcher(patterns, false)
}

// NewFoldedReferenceMultiSearcher builds the frozen ASCII
// case-insensitive reference.
func NewFoldedReferenceMultiSearcher(patterns []string) (*ReferenceMultiSearcher, error) {
	return newReferenceMultiSearcher(patterns, true)
}

func newReferenceMultiSearcher(patterns []string, folded bool) (*ReferenceMultiSearcher, error) {
	next, out, err := buildAutomaton(patterns, folded)
	if err != nil {
		return nil, err
	}
	return &ReferenceMultiSearcher{
		patterns: append([]string(nil), patterns...),
		folded:   folded,
		next:     next,
		out:      out,
	}, nil
}

// NumPatterns returns how many patterns the searcher matches.
func (m *ReferenceMultiSearcher) NumPatterns() int { return len(m.patterns) }

// Start returns the initial automaton state for a new stream.
func (m *ReferenceMultiSearcher) Start() MatchState { return 0 }

// Feed is the original per-byte walk: one goto-table row index, then a
// slice-header load and length check for the output set on every byte.
func (m *ReferenceMultiSearcher) Feed(st MatchState, p []byte, counts []int64) MatchState {
	s := int32(st)
	if m.folded {
		for i := 0; i < len(p); i++ {
			s = m.next[s][foldTable[p[i]]]
			for _, pi := range m.out[s] {
				counts[pi]++
			}
		}
	} else {
		for i := 0; i < len(p); i++ {
			s = m.next[s][p[i]]
			for _, pi := range m.out[s] {
				counts[pi]++
			}
		}
	}
	return MatchState(s)
}

// CountBytes counts every occurrence of every pattern in data.
func (m *ReferenceMultiSearcher) CountBytes(data []byte) []int64 {
	counts := make([]int64, len(m.patterns))
	m.Feed(m.Start(), data, counts)
	return counts
}
