package textproc

// Byte classification is centralised in two 256-entry tables shared by
// every byte-at-a-time scanner in the pipeline — the tokenizer, the
// streaming stats analyzer, the Aho–Corasick multi-searcher, the BMH
// grep fold and the tagger's lexicon fold. One table means one
// definition of "word byte" and one fold rule: the reshaping experiments
// depend on the tokenizer and the stream analyzer agreeing bit-for-bit,
// and a single lookup per byte is also the cheapest classification the
// hot loops can do (no multi-compare chains, no branch mispredicts on
// mixed-case text).
//
// Class semantics are frozen by the differential tests: words are
// maximal [a-zA-Z0-9'] runs, whitespace is exactly space/newline/tab/CR,
// and the fold maps 'A'-'Z' to 'a'-'z' leaving all other bytes (including
// UTF-8 continuation bytes) untouched.

// Class bits for Classes / classTable.
const (
	ClassSpace uint8 = 1 << iota // ' ', '\n', '\t', '\r'
	ClassWord                    // letter, digit or apostrophe: a token-continuing byte
	ClassLetter                  // 'a'-'z', 'A'-'Z'
	ClassDigit                   // '0'-'9'
	ClassUpper                   // 'A'-'Z' (fold target differs from the byte itself)
)

var classTable = buildClassTable()

// foldTable maps each byte to its ASCII-lowercased form; non-letters and
// all bytes >= 0x80 map to themselves. This is the single fold rule used
// by the folded searchers and the lexicon lookup.
var foldTable = buildFoldTable()

func buildClassTable() (t [256]uint8) {
	for c := 0; c < 256; c++ {
		b := byte(c)
		var cl uint8
		switch {
		case b == ' ' || b == '\n' || b == '\t' || b == '\r':
			cl |= ClassSpace
		case b >= 'a' && b <= 'z':
			cl |= ClassLetter | ClassWord
		case b >= 'A' && b <= 'Z':
			cl |= ClassLetter | ClassWord | ClassUpper
		case b >= '0' && b <= '9':
			cl |= ClassDigit | ClassWord
		case b == '\'':
			cl |= ClassWord
		}
		t[c] = cl
	}
	return t
}

func buildFoldTable() (t [256]byte) {
	for c := 0; c < 256; c++ {
		b := byte(c)
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		t[c] = b
	}
	return t
}

// streamClass is the stream analyzer's fused dispatch table: the
// classTable bits pre-resolved into the analyzer's own branch targets, so
// Block's dispatch is one load and one jump per byte instead of a chain
// of classTable tests. '\n' gets its own class because it is the only
// whitespace byte with a side effect (the line counter).
const (
	scOther   uint8 = iota // opens a rune chunk (incl. bytes >= 0x80)
	scWord                 // continues/starts a word token
	scSpace                // ' ', '\t', '\r'
	scNewline              // '\n'
)

var streamClass = buildStreamClass()

func buildStreamClass() (t [256]uint8) {
	for c := 0; c < 256; c++ {
		switch {
		case classTable[c]&ClassWord != 0:
			t[c] = scWord
		case byte(c) == '\n':
			t[c] = scNewline
		case classTable[c]&ClassSpace != 0:
			t[c] = scSpace
		}
	}
	return t
}

// Classes returns the class bits for a byte.
func Classes(c byte) uint8 { return classTable[c] }

// Fold returns the ASCII-lowercased form of a byte (identity for
// non-letters and non-ASCII bytes).
func Fold(c byte) byte { return foldTable[c] }

// isWordByte reports whether c continues a word token: [a-zA-Z0-9'].
func isWordByte(c byte) bool { return classTable[c]&ClassWord != 0 }

// isSpaceByte reports whether c is tokenizer whitespace.
func isSpaceByte(c byte) bool { return classTable[c]&ClassSpace != 0 }

// isUpperByte reports whether c is an ASCII uppercase letter.
func isUpperByte(c byte) bool { return classTable[c]&ClassUpper != 0 }
