package textproc

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/vfs"
)

func contentCorpus(t *testing.T, n int) []vfs.File {
	t.Helper()
	files := make([]vfs.File, n)
	for i := range files {
		g := corpus.NewGenerator(corpus.NewsStyle(), int64(i+100))
		files[i] = vfs.BytesFile(fmt.Sprintf("doc-%03d", i), g.Text(2000+i*17))
	}
	return files
}

func TestParallelGrepMatchesSerial(t *testing.T) {
	files := contentCorpus(t, 60)
	s, err := NewSearcher("the")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.GrepFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16, 100} {
		par, err := s.ParallelGrep(files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Matches != serial.Matches || par.Bytes != serial.Bytes {
			t.Errorf("workers=%d: totals %d/%d differ from serial %d/%d",
				workers, par.Matches, par.Bytes, serial.Matches, serial.Bytes)
		}
		for i := range serial.Files {
			if par.Files[i] != serial.Files[i] {
				t.Errorf("workers=%d file %d: %+v != %+v", workers, i, par.Files[i], serial.Files[i])
			}
		}
	}
}

func TestParallelGrepDefaultWorkers(t *testing.T) {
	files := contentCorpus(t, 8)
	s, _ := NewSearcher("the")
	par, err := s.ParallelGrep(files, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := s.GrepFiles(files)
	if par.Matches != serial.Matches {
		t.Error("default worker count changed results")
	}
}

func TestParallelGrepFS(t *testing.T) {
	fs := vfs.NewFS()
	for _, f := range contentCorpus(t, 10) {
		if err := fs.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := NewSearcher("the")
	par, err := s.ParallelGrepFS(fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := s.GrepFS(fs)
	if par.Matches != serial.Matches {
		t.Error("FS totals differ")
	}
}

func TestParallelGrepPropagatesError(t *testing.T) {
	files := contentCorpus(t, 5)
	files = append(files, vfs.NewFile("metadata-only", 10))
	s, _ := NewSearcher("the")
	if _, err := s.ParallelGrep(files, 3); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

func TestParallelGrepEmpty(t *testing.T) {
	s, _ := NewSearcher("x")
	res, err := s.ParallelGrep(nil, 4)
	if err != nil || res.Matches != 0 {
		t.Errorf("empty parallel grep: %+v, %v", res, err)
	}
}

func TestParallelTagMatchesSerial(t *testing.T) {
	files := contentCorpus(t, 40)
	tg := NewTagger()
	serial, err := tg.TagFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := tg.ParallelTagFiles(files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Sentences != serial.Sentences || par.Words != serial.Words || par.Unknown != serial.Unknown {
			t.Errorf("workers=%d: %+v != serial %+v", workers, par, serial)
		}
		for tag, n := range serial.TagCounts {
			if par.TagCounts[tag] != n {
				t.Errorf("workers=%d: tag %v count %d != %d", workers, tag, par.TagCounts[tag], n)
			}
		}
	}
}

func TestParallelTagPropagatesError(t *testing.T) {
	files := []vfs.File{vfs.NewFile("meta", 5)}
	tg := NewTagger()
	if _, err := tg.ParallelTagFiles(files, 2); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

// Run with -race: the shared Tagger must be safe for concurrent use.
func TestTaggerConcurrentUse(t *testing.T) {
	tg := NewTagger()
	files := contentCorpus(t, 30)
	done := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func() {
			_, err := tg.ParallelTagFiles(files, 4)
			done <- err
		}()
	}
	for w := 0; w < 3; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkParallelGrepSpeedup(b *testing.B) {
	var files []vfs.File
	for i := 0; i < 64; i++ {
		g := corpus.NewGenerator(corpus.NewsStyle(), int64(i))
		files = append(files, vfs.BytesFile(fmt.Sprintf("d%02d", i), g.Text(200_000)))
	}
	s, _ := NewSearcher("xyzzyplugh")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.ParallelGrep(files, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
