package textproc

import (
	"fmt"
	"io"
)

// MultiSearcher counts occurrences of N literal patterns in one pass over
// the haystack — an Aho–Corasick automaton with a dense byte-transition
// table, so matching costs one table lookup per input byte regardless of
// how many patterns are registered. Counting semantics match Searcher
// exactly: every occurrence is counted, overlaps included, and the folded
// variant lowercases ASCII letters on both sides.
//
// The automaton state is the entire cross-block carry: feeding a stream
// in arbitrary block splits yields the same counts as one contiguous
// buffer, because a match straddling a boundary is simply an automaton
// path that crosses a Feed call. No input bytes are ever re-buffered.
type MultiSearcher struct {
	patterns []string
	folded   bool
	next     [][256]int32 // dense goto: next[state][byte] -> state
	out      [][]int32    // pattern indices completed upon entering state
}

// MatchState is an automaton position carried across Feed calls. The zero
// value, returned by Start, is the initial state.
type MatchState int32

// NewMultiSearcher builds a case-sensitive multi-pattern searcher. At
// least one pattern is required and none may be empty.
func NewMultiSearcher(patterns []string) (*MultiSearcher, error) {
	return newMultiSearcher(patterns, false)
}

// NewFoldedMultiSearcher builds an ASCII case-insensitive multi-pattern
// searcher, with the same fold rule as NewFoldedSearcher: bytes 'A'-'Z'
// compare equal to 'a'-'z', all other bytes compare exactly.
func NewFoldedMultiSearcher(patterns []string) (*MultiSearcher, error) {
	return newMultiSearcher(patterns, true)
}

func newMultiSearcher(patterns []string, folded bool) (*MultiSearcher, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("textproc: multi-searcher needs at least one pattern")
	}
	m := &MultiSearcher{
		patterns: append([]string(nil), patterns...),
		folded:   folded,
	}

	// Trie phase. Node 0 is the root; a zero edge means "absent" (the root
	// can never be a child).
	trie := [][256]int32{{}}
	out := [][]int32{nil}
	for pi, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("textproc: empty search pattern at index %d", pi)
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if folded {
				c = foldTable[c]
			}
			nxt := trie[cur][c]
			if nxt == 0 {
				trie = append(trie, [256]int32{})
				out = append(out, nil)
				nxt = int32(len(trie) - 1)
				trie[cur][c] = nxt
			}
			cur = nxt
		}
		out[cur] = append(out[cur], int32(pi))
	}

	// BFS phase: failure links collapse into a dense goto table, and each
	// state's output set absorbs its failure state's outputs, so matching
	// never walks fail chains at scan time.
	fail := make([]int32, len(trie))
	next := make([][256]int32, len(trie))
	queue := make([]int32, 0, len(trie))
	for c := 0; c < 256; c++ {
		v := trie[0][c]
		next[0][c] = v // absent edges stay at the root
		if v != 0 {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		f := fail[u]
		out[u] = append(out[u], out[f]...)
		for c := 0; c < 256; c++ {
			if v := trie[u][c]; v != 0 {
				fail[v] = next[f][c]
				next[u][c] = v
				queue = append(queue, v)
			} else {
				next[u][c] = next[f][c]
			}
		}
	}
	m.next = next
	m.out = out
	return m, nil
}

// NumPatterns returns how many patterns the searcher matches; counts
// slices passed to Feed must have at least this length.
func (m *MultiSearcher) NumPatterns() int { return len(m.patterns) }

// Patterns returns the patterns in registration order (the index order of
// every counts slice). The slice is owned by the searcher.
func (m *MultiSearcher) Patterns() []string { return m.patterns }

// Start returns the initial automaton state for a new stream.
func (m *MultiSearcher) Start() MatchState { return 0 }

// Feed advances the automaton over p, incrementing counts[i] once per
// occurrence of pattern i that ends within p (overlaps included), and
// returns the state to pass to the next Feed. Splitting a stream into
// blocks at any boundaries yields the same counts as one contiguous
// buffer.
func (m *MultiSearcher) Feed(st MatchState, p []byte, counts []int64) MatchState {
	s := int32(st)
	next, out := m.next, m.out
	if m.folded {
		// foldTable is the shared fold rule: one load per byte instead of a
		// compare pair, and provably the same mapping the trie was built with.
		for _, c := range p {
			s = next[s][foldTable[c]]
			for _, pi := range out[s] {
				counts[pi]++
			}
		}
	} else {
		for _, c := range p {
			s = next[s][c]
			for _, pi := range out[s] {
				counts[pi]++
			}
		}
	}
	return MatchState(s)
}

// CountBytes counts every occurrence of every pattern in data, returning
// one count per pattern in registration order. Overlapping occurrences
// all count, matching Searcher.CountBytes per pattern.
func (m *MultiSearcher) CountBytes(data []byte) []int64 {
	counts := make([]int64, len(m.patterns))
	m.Feed(m.Start(), data, counts)
	return counts
}

// CountReader streams r through the automaton and returns per-pattern
// counts. The window is recycled from the shared grep pool; nothing is
// carried between blocks except the automaton state.
func (m *MultiSearcher) CountReader(r io.Reader) ([]int64, error) {
	counts := make([]int64, len(m.patterns))
	bp := windowPool.Get().(*[]byte)
	defer windowPool.Put(bp)
	buf := (*bp)[:grepBufSize]
	st := m.Start()
	for {
		n, err := r.Read(buf)
		if n > 0 {
			st = m.Feed(st, buf[:n], counts)
		}
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
