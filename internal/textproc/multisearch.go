package textproc

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"
)

// MultiSearcher counts occurrences of N literal patterns in one pass over
// the haystack. Counting semantics match Searcher exactly: every
// occurrence is counted, overlaps included, and the folded variant
// lowercases ASCII letters on both sides.
//
// The matcher state is the entire cross-block carry: feeding a stream in
// arbitrary block splits yields the same counts as one contiguous buffer,
// because a match straddling a boundary is simply a matcher position that
// crosses a Feed call. No input bytes are ever re-buffered.
//
// Two engines share that contract (DESIGN.md §12):
//
//   - bitap (shift-and), used when the patterns' total length fits the 64
//     bit positions of one machine word. Per input byte the whole matcher
//     is D = ((D<<1)|init) & masks[c]: a ~3-cycle ALU chain with the mask
//     load off the critical path (its address depends only on the input
//     byte, not on D), where an automaton walk pays load-to-use latency
//     on every byte because the next row address depends on the state
//     just loaded.
//
//   - Aho–Corasick with a dense byte-transition table, for pattern sets
//     too large for bitap. States are renumbered breadth-first and the
//     table is split hot/cold: the first 256 near-root states interleave
//     byte-major (hot[c<<8|s], padded to a full 256x256 so indexing is a
//     shift) so one input byte's candidate transitions share cache
//     lines, deeper states keep the classic state-major rows. Output sets are flattened into one offsets+flat
//     pair behind a per-state has-output bitmap, so the common no-match
//     byte is one transition load plus one bit test — never a
//     slice-header load. At the root, a skip loop jumps over bytes that
//     cannot start any pattern (bytes.IndexByte when only one byte can),
//     off the table-walk dependency chain entirely.
type MultiSearcher struct {
	patterns []string
	folded   bool

	// bitap engine (eligible pattern sets only).
	bitap     bool
	masks     [256]uint64 // bit j set iff pattern byte at position j matches input byte c
	initMask  uint64      // bits at each pattern's first position
	matchMask uint64      // bits at each pattern's last position
	bitPat    [64]int16   // match bit position -> pattern index

	// Aho–Corasick engine (always built; the only engine for large sets).
	hotN int32           // states resident in the byte-major interleaved region
	hot  *[1 << 16]int32 // hot[int(c)<<8|int(s)] for s < 256 (padded to a full 256x256)
	cold []int32         // cold[(int(s)-256)<<8 | int(c)] for s >= 256

	hasOut  []uint64 // bit s set iff state s completes at least one pattern
	outOff  []int32  // per-state offset into outFlat (len = numStates+1)
	outFlat []int32  // flattened pattern indices, outFlat[outOff[s]:outOff[s+1]]

	rootSkip  [256]bool // true iff the byte's root transition stays at the root
	soloStart int16     // the single start byte when IndexByte can skip, else -1
}

// MatchState is a matcher position carried across Feed calls. The zero
// value, returned by Start, is the initial state. States are only
// meaningful to the searcher that produced them.
type MatchState uint64

// NewMultiSearcher builds a case-sensitive multi-pattern searcher. At
// least one pattern is required and none may be empty.
func NewMultiSearcher(patterns []string) (*MultiSearcher, error) {
	return newMultiSearcher(patterns, false)
}

// NewFoldedMultiSearcher builds an ASCII case-insensitive multi-pattern
// searcher, with the same fold rule as NewFoldedSearcher: bytes 'A'-'Z'
// compare equal to 'a'-'z', all other bytes compare exactly.
func NewFoldedMultiSearcher(patterns []string) (*MultiSearcher, error) {
	return newMultiSearcher(patterns, true)
}

// buildAutomaton runs the trie + BFS/failure-link phases shared by the
// production searcher and the frozen reference: a dense goto table and
// per-state output sets, with fail chains already collapsed so matching
// never walks them. Node 0 is the root; a zero edge means "absent".
func buildAutomaton(patterns []string, folded bool) (next [][256]int32, out [][]int32, err error) {
	if len(patterns) == 0 {
		return nil, nil, fmt.Errorf("textproc: multi-searcher needs at least one pattern")
	}

	trie := [][256]int32{{}}
	out = [][]int32{nil}
	for pi, p := range patterns {
		if p == "" {
			return nil, nil, fmt.Errorf("textproc: empty search pattern at index %d", pi)
		}
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if folded {
				c = foldTable[c]
			}
			nxt := trie[cur][c]
			if nxt == 0 {
				trie = append(trie, [256]int32{})
				out = append(out, nil)
				nxt = int32(len(trie) - 1)
				trie[cur][c] = nxt
			}
			cur = nxt
		}
		out[cur] = append(out[cur], int32(pi))
	}

	// BFS phase: failure links collapse into a dense goto table, and each
	// state's output set absorbs its failure state's outputs.
	fail := make([]int32, len(trie))
	next = make([][256]int32, len(trie))
	queue := make([]int32, 0, len(trie))
	for c := 0; c < 256; c++ {
		v := trie[0][c]
		next[0][c] = v // absent edges stay at the root
		if v != 0 {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		f := fail[u]
		out[u] = append(out[u], out[f]...)
		for c := 0; c < 256; c++ {
			if v := trie[u][c]; v != 0 {
				fail[v] = next[f][c]
				next[u][c] = v
				queue = append(queue, v)
			} else {
				next[u][c] = next[f][c]
			}
		}
	}
	return next, out, nil
}

// bfsOrder returns the breadth-first visit order of the automaton's
// states starting at the root — the construction queue's discovery order,
// which puts shallow (frequently visited) states first.
func bfsOrder(next [][256]int32) []int32 {
	order := make([]int32, 0, len(next))
	order = append(order, 0)
	seen := make([]bool, len(next))
	seen[0] = true
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for c := 0; c < 256; c++ {
			// Only trie edges discover new states; collapsed fail edges
			// point at already-shallower states.
			if v := next[u][c]; v != 0 && !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return order
}

func newMultiSearcher(patterns []string, folded bool) (*MultiSearcher, error) {
	next, out, err := buildAutomaton(patterns, folded)
	if err != nil {
		return nil, err
	}
	m := &MultiSearcher{
		patterns: append([]string(nil), patterns...),
		folded:   folded,
	}
	m.buildAC(next, out)
	m.buildBitap()
	return m, nil
}

// buildAC lays the automaton out for the hot loop: BFS renumbering,
// hot/cold table split, flattened outputs behind the bitmap, and the
// root-skip configuration.
func (m *MultiSearcher) buildAC(next [][256]int32, out [][]int32) {
	// Renumber breadth-first: near-root states get the low ids, so the hot
	// interleaved region naturally covers where text automata live.
	order := bfsOrder(next)
	n := len(next)
	newID := make([]int32, n)
	for ni, old := range order {
		newID[old] = int32(ni)
	}

	// The hot region is padded to a full 256x256 so the index is a
	// shift+or (no multiply, no per-automaton scaling); padding rows are
	// unreachable because every stored transition is a valid state id.
	hotN := n
	if hotN > 256 {
		hotN = 256
	}
	m.hotN = int32(hotN)
	m.hot = new([1 << 16]int32)
	if n > hotN {
		m.cold = make([]int32, (n-hotN)*256)
	}
	for newS := 0; newS < n; newS++ {
		row := &next[order[newS]]
		if newS < hotN {
			for c := 0; c < 256; c++ {
				m.hot[c<<8|newS] = newID[row[c]]
			}
		} else {
			base := (newS - hotN) << 8
			for c := 0; c < 256; c++ {
				m.cold[base|c] = newID[row[c]]
			}
		}
	}

	// Flatten the output sets in the new numbering and mark states that
	// complete patterns in the bitmap.
	m.hasOut = make([]uint64, (n+63)/64)
	m.outOff = make([]int32, n+1)
	for newS := 0; newS < n; newS++ {
		o := out[order[newS]]
		m.outOff[newS+1] = m.outOff[newS] + int32(len(o))
		if len(o) > 0 {
			m.hasOut[newS>>6] |= 1 << (uint(newS) & 63)
		}
	}
	m.outFlat = make([]int32, m.outOff[n])
	for newS := 0; newS < n; newS++ {
		copy(m.outFlat[m.outOff[newS]:], out[order[newS]])
	}

	// Root skip setup: mark the bytes whose root transition stays at the
	// root. When exactly one byte can leave it — and, for folded
	// searchers, only when no other input byte folds onto that byte — the
	// skip loop can be bytes.IndexByte instead of a per-byte table test.
	m.soloStart = -1
	var startBytes []byte
	for c := 0; c < 256; c++ {
		if m.hot[c<<8] == 0 { // root is state 0 in both numberings
			m.rootSkip[c] = true
		} else {
			startBytes = append(startBytes, byte(c))
		}
	}
	if len(startBytes) == 1 {
		b := startBytes[0]
		// Folded automata are built over folded bytes, so the trie edge is
		// on the lowercase form; IndexByte over the raw input is only
		// correct when folding is the identity both ways at b (no 'A'-'Z'
		// input maps onto it, and b maps to itself).
		if !m.folded || (foldTable[b] == b && !(b >= 'a' && b <= 'z')) {
			m.soloStart = int16(b)
		}
	}
}

// buildBitap enables the shift-and engine when every pattern position
// fits one 64-bit word. Patterns pack contiguously with no guard bits:
// the top (match) bit of pattern i-1 shifts into pattern i's first
// position, but initMask sets that position unconditionally anyway, so
// the leak is harmless.
func (m *MultiSearcher) buildBitap() {
	total := 0
	for _, p := range m.patterns {
		total += len(p)
	}
	if total > 64 {
		return
	}
	off := 0
	for pi, p := range m.patterns {
		m.initMask |= 1 << uint(off)
		for j := 0; j < len(p); j++ {
			pc := p[j]
			if m.folded {
				pc = foldTable[pc]
			}
			// Index masks by the raw input byte, folding at build time:
			// every byte c that folds onto pc matches this position, so
			// the hot loop needs no per-byte fold load.
			for c := 0; c < 256; c++ {
				ic := byte(c)
				if m.folded {
					ic = foldTable[ic]
				}
				if ic == pc {
					m.masks[c] |= 1 << uint(off+j)
				}
			}
		}
		off += len(p)
		m.bitPat[off-1] = int16(pi)
		m.matchMask |= 1 << uint(off-1)
	}
	m.bitap = true
}

// NumPatterns returns how many patterns the searcher matches; counts
// slices passed to Feed must have at least this length.
func (m *MultiSearcher) NumPatterns() int { return len(m.patterns) }

// Patterns returns the patterns in registration order (the index order of
// every counts slice). The slice is owned by the searcher.
func (m *MultiSearcher) Patterns() []string { return m.patterns }

// Start returns the initial matcher state for a new stream.
func (m *MultiSearcher) Start() MatchState { return 0 }

// Feed advances the matcher over p, incrementing counts[i] once per
// occurrence of pattern i that ends within p (overlaps included), and
// returns the state to pass to the next Feed. Splitting a stream into
// blocks at any boundaries yields the same counts as one contiguous
// buffer.
func (m *MultiSearcher) Feed(st MatchState, p []byte, counts []int64) MatchState {
	if m.bitap {
		return MatchState(m.feedBitap(uint64(st), p, counts))
	}
	if m.folded {
		return MatchState(m.feedFolded(int32(st), p, counts))
	}
	return MatchState(m.feedExact(int32(st), p, counts))
}

// feedBitap is the shift-and hot loop. D's bit off_i+j means "the first
// j+1 bytes of pattern i end here"; matchMask picks out the completed
// patterns, almost always zero.
func (m *MultiSearcher) feedBitap(d uint64, p []byte, counts []int64) uint64 {
	masks := &m.masks
	init, match := m.initMask, m.matchMask
	for _, c := range p {
		d = ((d << 1) | init) & masks[c]
		if mm := d & match; mm != 0 {
			for {
				counts[m.bitPat[bits.TrailingZeros64(mm)]]++
				mm &= mm - 1
				if mm == 0 {
					break
				}
			}
		}
	}
	return d
}

// feedExact is the case-sensitive automaton hot loop: per byte, one
// transition load (hot region interleaved byte-major) and one has-output
// bit test. When a single byte value can start a pattern, root-state runs
// collapse to one vectorized bytes.IndexByte call; with several start
// bytes the root's own table row is already off the load-to-use chain
// (its address depends only on the input byte), so no skip loop can beat
// simply walking it. Automata that fit the hot region with no solo byte —
// the common multi-pattern shape — take a branch-free tight loop instead
// of paying the solo/cold tests on every byte.
func (m *MultiSearcher) feedExact(s int32, p []byte, counts []int64) int32 {
	hot := m.hot
	hasOut := m.hasOut
	if m.cold == nil && m.soloStart < 0 {
		for _, c := range p {
			s = hot[int(c)<<8|int(s)]
			if hasOut[s>>6]&(1<<(uint(s)&63)) != 0 {
				for _, pi := range m.outFlat[m.outOff[s]:m.outOff[s+1]] {
					counts[pi]++
				}
			}
		}
		return s
	}
	cold := m.cold
	solo := m.soloStart
	i, n := 0, len(p)
	for i < n {
		if s == 0 && solo >= 0 {
			j := bytes.IndexByte(p[i:], byte(solo))
			if j < 0 {
				break
			}
			i += j
		}
		c := p[i]
		i++
		if s < 256 {
			s = hot[int(c)<<8|int(s)]
		} else {
			s = cold[(int(s)-256)<<8|int(c)]
		}
		if hasOut[s>>6]&(1<<(uint(s)&63)) != 0 {
			for _, pi := range m.outFlat[m.outOff[s]:m.outOff[s+1]] {
				counts[pi]++
			}
		}
	}
	return s
}

// feedFolded is feedExact with the shared fold table applied per byte —
// one extra load, and exactly the mapping the trie was built with. The
// IndexByte skip stays sound because soloStart is only set for folded
// searchers when the byte is fold-invariant.
func (m *MultiSearcher) feedFolded(s int32, p []byte, counts []int64) int32 {
	hot := m.hot
	hasOut := m.hasOut
	if m.cold == nil && m.soloStart < 0 {
		for _, raw := range p {
			c := foldTable[raw]
			s = hot[int(c)<<8|int(s)]
			if hasOut[s>>6]&(1<<(uint(s)&63)) != 0 {
				for _, pi := range m.outFlat[m.outOff[s]:m.outOff[s+1]] {
					counts[pi]++
				}
			}
		}
		return s
	}
	cold := m.cold
	solo := m.soloStart
	i, n := 0, len(p)
	for i < n {
		if s == 0 && solo >= 0 {
			j := bytes.IndexByte(p[i:], byte(solo))
			if j < 0 {
				break
			}
			i += j
		}
		c := foldTable[p[i]]
		i++
		if s < 256 {
			s = hot[int(c)<<8|int(s)]
		} else {
			s = cold[(int(s)-256)<<8|int(c)]
		}
		if hasOut[s>>6]&(1<<(uint(s)&63)) != 0 {
			for _, pi := range m.outFlat[m.outOff[s]:m.outOff[s+1]] {
				counts[pi]++
			}
		}
	}
	return s
}

// NumStates returns the automaton's state count (root included) — layout
// introspection for tests and capacity planning, not needed for matching.
func (m *MultiSearcher) NumStates() int { return len(m.outOff) - 1 }

// startBytes returns how many distinct bytes can start a pattern; used by
// tests pinning the skip-loop setup.
func (m *MultiSearcher) startBytes() int {
	total := 0
	for c := 0; c < 256; c++ {
		if !m.rootSkip[c] {
			total++
		}
	}
	return total
}

// CountBytes counts every occurrence of every pattern in data, returning
// one count per pattern in registration order. Overlapping occurrences
// all count, matching Searcher.CountBytes per pattern.
func (m *MultiSearcher) CountBytes(data []byte) []int64 {
	counts := make([]int64, len(m.patterns))
	m.Feed(m.Start(), data, counts)
	return counts
}

// CountReader streams r through the matcher and returns per-pattern
// counts. The window is recycled from the shared grep pool; nothing is
// carried between blocks except the matcher state.
func (m *MultiSearcher) CountReader(r io.Reader) ([]int64, error) {
	counts := make([]int64, len(m.patterns))
	bp := windowPool.Get().(*[]byte)
	defer windowPool.Put(bp)
	buf := (*bp)[:grepBufSize]
	st := m.Start()
	for {
		n, err := r.Read(buf)
		if n > 0 {
			st = m.Feed(st, buf[:n], counts)
		}
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
