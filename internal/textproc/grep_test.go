package textproc

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func TestSearcherErrors(t *testing.T) {
	if _, err := NewSearcher(""); err == nil {
		t.Error("expected error for empty pattern")
	}
	if _, err := NewFoldedSearcher(""); err == nil {
		t.Error("expected error for empty folded pattern")
	}
	if _, err := NewRegexpSearcher("("); err == nil {
		t.Error("expected error for invalid regexp")
	}
}

func TestCountBytesLiteral(t *testing.T) {
	s, err := NewSearcher("ab")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		text string
		want int64
	}{
		{"", 0},
		{"a", 0},
		{"ab", 1},
		{"abab", 2},
		{"aab", 1},
		{"xyz", 0},
		{"ababab", 3},
	}
	for _, c := range cases {
		if got := s.CountBytes([]byte(c.text)); got != c.want {
			t.Errorf("count(%q) = %d, want %d", c.text, got, c.want)
		}
	}
}

func TestCountBytesOverlapping(t *testing.T) {
	s, _ := NewSearcher("aa")
	if got := s.CountBytes([]byte("aaaa")); got != 3 {
		t.Errorf("overlapping count = %d, want 3", got)
	}
}

func TestCountBytesSingleByte(t *testing.T) {
	s, _ := NewSearcher("x")
	if got := s.CountBytes([]byte("xxhxx")); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
}

func TestFoldedSearch(t *testing.T) {
	s, err := NewFoldedSearcher("CaT")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountBytes([]byte("cat CAT cAt dog")); got != 3 {
		t.Errorf("folded count = %d, want 3", got)
	}
}

func TestRegexpSearch(t *testing.T) {
	s, err := NewRegexpSearcher(`c.t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountBytes([]byte("cat cot cut dog")); got != 3 {
		t.Errorf("regexp count = %d, want 3", got)
	}
}

func TestCountReaderMatchesCountBytes(t *testing.T) {
	// Build a long text with matches straddling the 64 KiB window.
	r := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	for buf.Len() < 3*grepBufSize {
		if r.Intn(100) == 0 {
			buf.WriteString("needle")
		} else {
			buf.WriteByte(byte('a' + r.Intn(4)))
		}
	}
	data := buf.Bytes()
	s, _ := NewSearcher("needle")
	want := s.CountBytes(data)
	if want == 0 {
		t.Fatal("test text has no matches")
	}
	got, err := s.CountReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streaming count = %d, batch count = %d", got, want)
	}
}

func TestCountReaderMatchSpanningWindow(t *testing.T) {
	// Place a match exactly across the window boundary.
	pat := "boundary"
	data := make([]byte, grepBufSize-4)
	for i := range data {
		data[i] = 'x'
	}
	data = append(data, pat...)
	for i := 0; i < 100; i++ {
		data = append(data, 'y')
	}
	s, _ := NewSearcher(pat)
	got, err := s.CountReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("boundary-straddling count = %d, want 1", got)
	}
}

// drizzleReader yields data in tiny random chunks to stress carry logic.
type drizzleReader struct {
	data []byte
	r    *rand.Rand
}

func (d *drizzleReader) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + d.r.Intn(7)
	if n > len(d.data) {
		n = len(d.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, d.data[:n])
	d.data = d.data[n:]
	return n, nil
}

func TestCountReaderTinyReads(t *testing.T) {
	data := []byte(strings.Repeat("zxneedlexz", 50))
	s, _ := NewSearcher("needle")
	want := s.CountBytes(data)
	got, err := s.CountReader(&drizzleReader{data: data, r: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("tiny-read count = %d, want %d", got, want)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, fmt.Errorf("disk exploded") }

func TestCountReaderPropagatesError(t *testing.T) {
	s, _ := NewSearcher("x")
	if _, err := s.CountReader(failingReader{}); err == nil {
		t.Error("expected read error")
	}
}

func TestGrepFilesAndFS(t *testing.T) {
	fs := vfs.NewFS()
	_ = fs.Add(vfs.BytesFile("a.txt", []byte("the word appears: word")))
	_ = fs.Add(vfs.BytesFile("b.txt", []byte("no match here")))
	_ = fs.Add(vfs.BytesFile("c.txt", []byte("word")))
	s, _ := NewSearcher("word")
	res, err := s.GrepFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 3 {
		t.Errorf("total matches = %d, want 3", res.Matches)
	}
	if res.Bytes != fs.TotalSize() {
		t.Errorf("bytes = %d, want %d", res.Bytes, fs.TotalSize())
	}
	if len(res.Files) != 3 {
		t.Fatalf("file results = %d", len(res.Files))
	}
	// List order is name-sorted: a, b, c.
	if res.Files[0].Matches != 2 || res.Files[1].Matches != 0 || res.Files[2].Matches != 1 {
		t.Errorf("per-file matches: %+v", res.Files)
	}
}

func TestGrepMetadataOnlyFileFails(t *testing.T) {
	fs := vfs.NewFS()
	_ = fs.Add(vfs.NewFile("meta", 10))
	s, _ := NewSearcher("x")
	if _, err := s.GrepFS(fs); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

// The paper's key correctness invariant: reshaping (concatenating files)
// must not change the application's aggregate output. For a non-self-
// overlapping pattern and separator-free concatenation, total match counts
// can only grow by matches spanning file boundaries; with a pattern known
// not to straddle (we insert newlines), counts must be identical.
func TestGrepInvariantUnderConcat(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	var members []vfs.File
	for i := 0; i < 40; i++ {
		var buf bytes.Buffer
		for j := 0; j < 1+r.Intn(50); j++ {
			if r.Intn(6) == 0 {
				buf.WriteString("needle")
			}
			buf.WriteString("ha ")
		}
		buf.WriteByte('\n') // boundary guard
		members = append(members, vfs.BytesFile(fmt.Sprintf("m%02d", i), append([]byte(nil), buf.Bytes()...)))
	}
	s, _ := NewSearcher("needle")
	separate, err := s.GrepFiles(members)
	if err != nil {
		t.Fatal(err)
	}
	merged := vfs.Concat("unit", members)
	combined, err := s.GrepFiles([]vfs.File{merged})
	if err != nil {
		t.Fatal(err)
	}
	if separate.Matches != combined.Matches {
		t.Errorf("reshaping changed grep output: %d vs %d", separate.Matches, combined.Matches)
	}
}

// Property: BMH count equals a naive reference count for random inputs.
func TestBMHMatchesNaiveProperty(t *testing.T) {
	naive := func(hay, pat []byte) int64 {
		var c int64
		for i := 0; i+len(pat) <= len(hay); i++ {
			if bytes.Equal(hay[i:i+len(pat)], pat) {
				c++
			}
		}
		return c
	}
	f := func(hayRaw []byte, patRaw []byte) bool {
		// Map to a small alphabet so matches actually occur.
		small := func(b []byte) []byte {
			out := make([]byte, len(b))
			for i, c := range b {
				out[i] = 'a' + c%3
			}
			return out
		}
		hay := small(hayRaw)
		pat := small(patRaw)
		if len(pat) == 0 || len(pat) > 8 {
			return true
		}
		s, err := NewSearcher(string(pat))
		if err != nil {
			return false
		}
		return s.CountBytes(hay) == naive(hay, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: streaming count equals batch count for random chunked input.
func TestStreamEqualsBatchProperty(t *testing.T) {
	f := func(hayRaw []byte, seed int64) bool {
		hay := make([]byte, len(hayRaw))
		for i, c := range hayRaw {
			hay[i] = 'a' + c%2
		}
		s, err := NewSearcher("abba")
		if err != nil {
			return false
		}
		want := s.CountBytes(hay)
		got, err := s.CountReader(&drizzleReader{data: hay, r: rand.New(rand.NewSource(seed))})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
