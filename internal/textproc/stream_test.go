package textproc

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestTagReaderMatchesTagText(t *testing.T) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 31)
	text := g.Text(50_000)
	tg := NewTagger()
	_, want := tg.TagText(text)
	got, err := tg.TagReader(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sentences != want.Sentences || got.Words != want.Words ||
		got.Tokens != want.Tokens || got.Unknown != want.Unknown {
		t.Errorf("streaming %+v != batch %+v", got, want)
	}
	for tag, n := range want.TagCounts {
		if got.TagCounts[tag] != n {
			t.Errorf("tag %v: %d != %d", tag, got.TagCounts[tag], n)
		}
	}
}

func TestTagReaderTinyChunks(t *testing.T) {
	g := corpus.NewGenerator(corpus.PlainStyle(), 32)
	text := g.Text(5000)
	tg := NewTagger()
	_, want := tg.TagText(text)
	got, err := tg.TagReader(&drizzleReaderS{data: text})
	if err != nil {
		t.Fatal(err)
	}
	if got.Words != want.Words || got.Sentences != want.Sentences {
		t.Errorf("chunked streaming differs: %+v vs %+v", got, want)
	}
}

// drizzleReaderS yields one byte at a time.
type drizzleReaderS struct{ data []byte }

func (d *drizzleReaderS) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	p[0] = d.data[0]
	d.data = d.data[1:]
	return 1, nil
}

func TestTagReaderEmpty(t *testing.T) {
	tg := NewTagger()
	res, err := tg.TagReader(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sentences != 0 || res.Words != 0 {
		t.Errorf("empty stream result: %+v", res)
	}
}

func TestTagReaderNoTerminator(t *testing.T) {
	// A trailing fragment without '.' still gets tagged on EOF.
	tg := NewTagger()
	res, err := tg.TagReader(strings.NewReader("the cat sat"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sentences != 1 || res.Words != 3 {
		t.Errorf("fragment result: %+v", res)
	}
}

func TestTagReaderPropagatesError(t *testing.T) {
	tg := NewTagger()
	if _, err := tg.TagReader(failingReader{}); err == nil {
		t.Error("expected read error")
	}
}

func TestTagReaderPathologicalLongSentence(t *testing.T) {
	// A "sentence" longer than the buffer cap must be flushed in pieces,
	// not accumulate unboundedly.
	tg := NewTagger()
	long := strings.Repeat("word ", (maxSentenceBytes/5)+1000)
	res, err := tg.TagReader(strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	if res.Words == 0 {
		t.Error("no words tagged from the pathological stream")
	}
}
