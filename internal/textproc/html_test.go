package textproc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func TestExtractTextBasic(t *testing.T) {
	html := []byte(`<html><head><title>t</title></head><body><p>Hello <b>world</b>.</p></body></html>`)
	got := string(ExtractText(html))
	if !strings.Contains(got, "Hello world") {
		t.Errorf("extracted = %q", got)
	}
	if strings.ContainsAny(got, "<>") {
		t.Errorf("markup leaked: %q", got)
	}
}

func TestExtractTextScriptAndStyleDropped(t *testing.T) {
	html := []byte(`<p>keep</p><script>var x = "drop me";</script><style>.c{color:red}</style><p>also keep</p>`)
	got := string(ExtractText(html))
	if strings.Contains(got, "drop me") || strings.Contains(got, "color") {
		t.Errorf("script/style content leaked: %q", got)
	}
	if !strings.Contains(got, "keep") || !strings.Contains(got, "also keep") {
		t.Errorf("visible text lost: %q", got)
	}
}

func TestExtractTextScriptCaseInsensitive(t *testing.T) {
	html := []byte(`<SCRIPT>secret()</SCRIPT>visible`)
	got := string(ExtractText(html))
	if strings.Contains(got, "secret") {
		t.Errorf("uppercase script leaked: %q", got)
	}
	if !strings.Contains(got, "visible") {
		t.Errorf("text lost: %q", got)
	}
}

func TestExtractTextComments(t *testing.T) {
	got := string(ExtractText([]byte(`a<!-- hidden <p>x</p> -->b`)))
	if strings.Contains(got, "hidden") {
		t.Errorf("comment leaked: %q", got)
	}
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("text lost: %q", got)
	}
}

func TestExtractTextEntities(t *testing.T) {
	got := string(ExtractText([]byte(`Tom &amp; Jerry &lt;3 &#65; &nbsp;x &rsquo;`)))
	for _, want := range []string{"Tom & Jerry", "<3", "A", "x"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestExtractTextBadEntities(t *testing.T) {
	// Unknown / malformed entities pass through without panicking.
	got := string(ExtractText([]byte(`a &bogus; b &#; c &#x41; d & e`)))
	if !strings.Contains(got, "a") || !strings.Contains(got, "e") {
		t.Errorf("text lost around bad entities: %q", got)
	}
}

func TestExtractTextWhitespaceCollapse(t *testing.T) {
	got := ExtractText([]byte("<p>a</p>\n\n  <p>b</p>"))
	if string(got) != "a b" {
		t.Errorf("collapse = %q, want \"a b\"", got)
	}
}

func TestExtractTextTruncatedMarkup(t *testing.T) {
	// Unclosed constructs must not loop or panic.
	for _, s := range []string{"<", "<p", "<!--", "<script>never closed", "text<"} {
		_ = ExtractText([]byte(s))
	}
}

func TestExtractTextEmpty(t *testing.T) {
	if got := ExtractText(nil); len(got) != 0 {
		t.Errorf("extract(nil) = %q", got)
	}
}

func TestExtractTextOnGeneratedHTML(t *testing.T) {
	// The corpus generator's HTML wrapper must extract to exactly its body
	// text content (modulo whitespace at the seams).
	g := corpus.NewGenerator(corpus.NewsStyle(), 6)
	html := g.HTML(5000)
	text := ExtractText(html)
	if len(text) == 0 {
		t.Fatal("no text extracted")
	}
	if bytes.Contains(text, []byte("<")) {
		t.Error("markup left in extracted text")
	}
	st := Analyze(text)
	if st.Sentences == 0 || st.Words == 0 {
		t.Errorf("extracted text not sentence-like: %+v", st)
	}
	// The extracted text must be taggable with low OOV.
	tg := NewTagger()
	_, res := tg.TagText(text)
	if res.Words == 0 {
		t.Fatal("tagger found no words")
	}
	oov := float64(res.Unknown) / float64(res.Words)
	if oov > 0.15 {
		t.Errorf("OOV rate %v on extracted news text", oov)
	}
}

func TestOpenTagName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"<p>", "p", true},
		{"<DIV class=x>", "div", true},
		{"<>", "", false},
		{"x", "", false},
		{"</p>", "", false}, // closing tags have no open name
	}
	for _, c := range cases {
		got, ok := openTagName([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Errorf("openTagName(%q) = %q,%v; want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestDecodeEntity(t *testing.T) {
	cases := []struct {
		in       string
		want     string
		consumed int
	}{
		{"&amp;", "&", 5},
		{"&#65;", "A", 5},
		{"&#9999999999;", "", 0}, // overflow
		{"&#0;", "", 0},
		{"&unknown;", "", 0},
		{"&;", "", 0},
		{"no entity", "", 0},
	}
	for _, c := range cases {
		got, n := decodeEntity([]byte(c.in))
		if got != c.want || n != c.consumed {
			t.Errorf("decodeEntity(%q) = %q,%d; want %q,%d", c.in, got, n, c.want, c.consumed)
		}
	}
}

// Property: ExtractText never panics on arbitrary bytes, never loops, and
// never emits raw tag delimiters that came from markup (a '<' may only
// appear via an entity decode).
func TestExtractTextRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		out := ExtractText(raw)
		// Output is bounded: stripping plus entity decode of numeric
		// references can expand single bytes to runes, but never by more
		// than 4x.
		return len(out) <= 4*len(raw)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: extraction is idempotent on its own output when the output
// contains no '<' or '&' (i.e. plain text passes through verbatim modulo
// whitespace collapse).
func TestExtractTextIdempotentOnPlainText(t *testing.T) {
	f := func(raw []byte) bool {
		once := ExtractText(raw)
		if bytes.ContainsAny(once, "<&") {
			return true // entity-decoded characters may re-trigger parsing
		}
		twice := ExtractText(once)
		return bytes.Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
