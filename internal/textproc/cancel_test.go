package textproc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/errs"
)

// TestParallelGrepCtxCancellation: at worker counts {1,2,8} a
// pre-cancelled context yields the typed cancellation error, and a live
// run over the same files afterwards reproduces the serial result
// exactly — per-file counts included.
func TestParallelGrepCtxCancellation(t *testing.T) {
	files := contentCorpus(t, 40)
	s, err := NewSearcher("the")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.GrepFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		if _, err := s.ParallelGrepCtx(cancelled, files, workers); !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: cancelled grep returned %v, want ErrCancelled", workers, err)
		}
		res, err := s.ParallelGrepCtx(context.Background(), files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Matches != serial.Matches || res.Bytes != serial.Bytes {
			t.Fatalf("workers=%d: totals %d/%d differ from serial %d/%d",
				workers, res.Matches, res.Bytes, serial.Matches, serial.Bytes)
		}
		for i := range serial.Files {
			if res.Files[i] != serial.Files[i] {
				t.Fatalf("workers=%d file %d: %+v != %+v", workers, i, res.Files[i], serial.Files[i])
			}
		}
	}
}

func TestParallelTagFilesCtxCancellation(t *testing.T) {
	files := contentCorpus(t, 20)
	tg := NewTagger()
	serial, err := tg.TagFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		if _, err := tg.ParallelTagFilesCtx(cancelled, files, workers); !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: cancelled tagging returned %v", workers, err)
		}
		res, err := tg.ParallelTagFilesCtx(context.Background(), files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Tokens != serial.Tokens || res.Sentences != serial.Sentences || res.Words != serial.Words {
			t.Fatalf("workers=%d: %+v differs from serial %+v", workers, res, serial)
		}
		for tag, n := range serial.TagCounts {
			if res.TagCounts[tag] != n {
				t.Fatalf("workers=%d: tag %v count %d, want %d", workers, tag, res.TagCounts[tag], n)
			}
		}
	}
}
