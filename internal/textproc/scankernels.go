package textproc

import (
	"unicode"
	"unicode/utf8"

	"repro/internal/errs"
	"repro/internal/scan"
)

// StreamAnalyzer computes TextStats incrementally over a byte stream fed
// in arbitrary blocks, producing exactly what Analyze returns on the
// concatenated bytes — the differential tests pin this bit-for-bit. The
// cross-block carry is bounded: the in-flight token only (an open word's
// bytes when a word callback is registered, or at most the first four
// bytes of an open rune chunk); completed bytes are never re-buffered.
//
// An optional word callback observes every non-punctuation token as it
// completes (word bytes are valid only during the call). That is how the
// POS-complexity kernel counts out-of-vocabulary words in the same single
// pass, without re-tokenising.
type StreamAnalyzer struct {
	onWord func(word []byte)

	st    TextStats
	lines int64

	sentWords    int // words in the current (open) sentence
	tokensInSent int // tokens in the current (open) sentence

	inWord  bool
	wordBuf []byte // open word's bytes carried across blocks (callback mode only)

	inChunk  bool
	chunkLen int     // total bytes in the open rune chunk (may exceed 4)
	chunkBuf [4]byte // first (up to) four bytes — all DecodeRune can use
}

// NewStreamAnalyzer returns a streaming analyzer. onWord may be nil when
// only the statistics are wanted.
func NewStreamAnalyzer(onWord func(word []byte)) *StreamAnalyzer {
	return &StreamAnalyzer{onWord: onWord}
}

// Reset clears all accumulation so the analyzer can take a new stream.
// The word callback and carry buffer capacity are retained.
func (a *StreamAnalyzer) Reset() {
	a.st = TextStats{}
	a.lines = 0
	a.sentWords = 0
	a.tokensInSent = 0
	a.inWord = false
	a.wordBuf = a.wordBuf[:0]
	a.inChunk = false
	a.chunkLen = 0
}

// Block feeds the next window of the stream. Token boundaries are the
// tokenizer's: words are maximal [a-zA-Z0-9'] runs, whitespace separates,
// and any other byte starts a chunk that absorbs following UTF-8
// continuation bytes.
//
// The loop is structured for per-byte cost (DESIGN.md §12): cross-block
// carries (an open chunk or word) can only be live for the first bytes of
// a block, so they are resolved once up front instead of being tested on
// every byte; the main loop then dispatches on the fused streamClass
// table (one load, one jump) and word runs advance eight bytes at a time
// through the SWAR scanner. The differential and conformance tests pin
// the result bit-identical to Analyze at every block split.
func (a *StreamAnalyzer) Block(p []byte) {
	i, n := 0, len(p)
	// An open rune chunk carried from the previous block absorbs any
	// leading continuation bytes, then closes on the first byte that
	// isn't one.
	if a.inChunk {
		for {
			if i == n {
				return
			}
			if p[i]&0xC0 != 0x80 {
				break
			}
			if a.chunkLen < len(a.chunkBuf) {
				a.chunkBuf[a.chunkLen] = p[i]
			}
			a.chunkLen++
			i++
		}
		a.finishChunk()
	}
	// A word carried from the previous block either continues into this
	// block (the main loop's word case extends it via wordBuf) or ends
	// right here with all its bytes already carried.
	if a.inWord && i < n && !isWordByte(p[i]) {
		a.endWord(nil)
	}
	for i < n {
		c := p[i]
		switch streamClass[c] {
		case scWord:
			start := i
			i = wordRunEnd(p, i+1)
			a.inWord = true
			if i == n {
				// Word still open at the block edge: carry its bytes (only
				// needed when a callback wants them).
				if a.onWord != nil {
					a.wordBuf = append(a.wordBuf, p[start:]...)
				}
				return
			}
			a.endWord(p[start:i])
		case scSpace:
			i++
		case scNewline:
			a.lines++
			i++
		default: // scOther: a rune chunk, absorbing continuation bytes inline
			a.chunkBuf[0] = c
			a.chunkLen = 1
			i++
			for i < n && p[i]&0xC0 == 0x80 {
				if a.chunkLen < len(a.chunkBuf) {
					a.chunkBuf[a.chunkLen] = p[i]
				}
				a.chunkLen++
				i++
			}
			if i == n {
				a.inChunk = true
				return
			}
			a.finishChunk()
		}
	}
}

// Finish closes any in-flight token and the trailing sentence fragment,
// then returns the final statistics and newline count. The analyzer must
// be Reset before reuse.
func (a *StreamAnalyzer) Finish() (TextStats, int64) {
	if a.inChunk {
		a.finishChunk()
	}
	if a.inWord {
		a.endWord(nil)
	}
	if a.tokensInSent > 0 {
		a.closeSentence()
	}
	if a.st.Sentences > 0 {
		a.st.MeanSentence = float64(a.st.Words) / float64(a.st.Sentences)
	}
	return a.st, a.lines
}

// endWord completes the open word token; tail holds the word's bytes from
// the current block (nil when they are all in wordBuf).
func (a *StreamAnalyzer) endWord(tail []byte) {
	a.st.Tokens++
	a.tokensInSent++
	a.st.Words++
	a.sentWords++
	if a.onWord != nil {
		word := tail
		if len(a.wordBuf) > 0 {
			a.wordBuf = append(a.wordBuf, tail...)
			word = a.wordBuf
		}
		a.onWord(word)
		a.wordBuf = a.wordBuf[:0]
	}
	a.inWord = false
}

// finishChunk classifies the completed rune chunk exactly as Tokenize
// does: it is a word token iff its bytes decode to a single letter or
// digit rune spanning the whole chunk; a lone '.', '!' or '?' ends the
// sentence.
func (a *StreamAnalyzer) finishChunk() {
	a.st.Tokens++
	a.tokensInSent++
	word := false
	if a.chunkLen <= len(a.chunkBuf) {
		chunk := a.chunkBuf[:a.chunkLen]
		if r, size := utf8.DecodeRune(chunk); size == a.chunkLen &&
			(unicode.IsLetter(r) || unicode.IsDigit(r)) {
			word = true
		}
	}
	switch {
	case word:
		a.st.Words++
		a.sentWords++
		if a.onWord != nil {
			a.onWord(a.chunkBuf[:a.chunkLen])
		}
	case a.chunkLen == 1 && (a.chunkBuf[0] == '.' || a.chunkBuf[0] == '!' || a.chunkBuf[0] == '?'):
		a.closeSentence()
	}
	a.inChunk = false
	a.chunkLen = 0
}

func (a *StreamAnalyzer) closeSentence() {
	a.st.Sentences++
	if a.sentWords > a.st.MaxSentence {
		a.st.MaxSentence = a.sentWords
	}
	a.sentWords = 0
	a.tokensInSent = 0
}

// FileStats is one scanned file's text measurements.
type FileStats struct {
	Name  string
	Stats TextStats
	Lines int64
}

// StatsKernel is the token/sentence/line statistics scan kernel. After a
// run it holds per-file stats in input order plus corpus totals.
type StatsKernel struct {
	an   StreamAnalyzer
	name string

	files []FileStats
	total TextStats
	lines int64
}

// NewStatsKernel returns a stats kernel prototype.
func NewStatsKernel() *StatsKernel { return &StatsKernel{} }

// Fork implements scan.Kernel.
func (k *StatsKernel) Fork() scan.Kernel { return &StatsKernel{} }

// Begin implements scan.Kernel.
func (k *StatsKernel) Begin(src scan.Source) {
	k.an.Reset()
	k.name = src.Name
}

// Block implements scan.Kernel.
func (k *StatsKernel) Block(p []byte) { k.an.Block(p) }

// End implements scan.Kernel: the completed file is appended to the
// kernel's own accumulation and folded into its totals.
func (k *StatsKernel) End() {
	st, lines := k.an.Finish()
	k.files = append(k.files, FileStats{Name: k.name, Stats: st, Lines: lines})
	k.total.Tokens += st.Tokens
	k.total.Words += st.Words
	k.total.Sentences += st.Sentences
	if st.MaxSentence > k.total.MaxSentence {
		k.total.MaxSentence = st.MaxSentence
	}
	k.lines += lines
}

// Merge implements scan.Kernel: the other kernel's accumulated files are
// appended in input order, its totals folded in, and its accumulation
// drained. The integer folds are associative, so folding a shard-sized
// accumulation is bit-identical to folding its files one at a time.
func (k *StatsKernel) Merge(other scan.Kernel) {
	o := other.(*StatsKernel)
	k.files = append(k.files, o.files...)
	k.total.Tokens += o.total.Tokens
	k.total.Words += o.total.Words
	k.total.Sentences += o.total.Sentences
	if o.total.MaxSentence > k.total.MaxSentence {
		k.total.MaxSentence = o.total.MaxSentence
	}
	k.lines += o.lines
	o.files = o.files[:0]
	o.total = TextStats{}
	o.lines = 0
}

// Files returns per-file stats in input order; the slice is owned by the
// kernel.
func (k *StatsKernel) Files() []FileStats { return k.files }

// Total returns corpus-wide statistics: summed counts, max sentence, and
// the mean recomputed over all sentences.
func (k *StatsKernel) Total() TextStats {
	t := k.total
	if t.Sentences > 0 {
		t.MeanSentence = float64(t.Words) / float64(t.Sentences)
	}
	return t
}

// Lines returns the corpus-wide newline count.
func (k *StatsKernel) Lines() int64 { return k.lines }

const statsKernelTag = 'S'

func encodeTextStats(e *scan.StateEncoder, st TextStats) {
	e.Int(st.Tokens)
	e.Int(st.Words)
	e.Int(st.Sentences)
	e.F64(st.MeanSentence)
	e.Int(st.MaxSentence)
}

func decodeTextStats(d *scan.StateDecoder) TextStats {
	return TextStats{
		Tokens:       d.Int(),
		Words:        d.Int(),
		Sentences:    d.Int(),
		MeanSentence: d.F64(),
		MaxSentence:  d.Int(),
	}
}

// Snapshot implements scan.StateCodec: the accumulated per-file stats,
// totals and line count.
func (k *StatsKernel) Snapshot() ([]byte, error) {
	var e scan.StateEncoder
	e.Tag(statsKernelTag)
	e.Int(len(k.files))
	for _, f := range k.files {
		e.Str(f.Name)
		encodeTextStats(&e, f.Stats)
		e.I64(f.Lines)
	}
	encodeTextStats(&e, k.total)
	e.I64(k.lines)
	return e.Bytes(), nil
}

// Restore implements scan.StateCodec.
func (k *StatsKernel) Restore(state []byte) error {
	d := scan.NewStateDecoder(state)
	d.Tag(statsKernelTag)
	n := d.Len()
	files := make([]FileStats, 0, n)
	for i := 0; i < n; i++ {
		files = append(files, FileStats{Name: d.Str(), Stats: decodeTextStats(d), Lines: d.I64()})
	}
	total := decodeTextStats(d)
	lines := d.I64()
	if err := d.Finish(); err != nil {
		return err
	}
	k.files, k.total, k.lines = files, total, lines
	return nil
}

// FilePatternCount is one scanned file's per-pattern match counts.
type FilePatternCount struct {
	Name    string
	Bytes   int64
	Counts  []int64 // per pattern, registration order
	Matches int64   // sum over Counts
}

// MatchKernel is the multi-pattern grep scan kernel: one MultiSearcher
// automaton pass per file, counts per pattern. The automaton state is the
// whole block-boundary carry.
type MatchKernel struct {
	ms *MultiSearcher
	st MatchState

	name   string
	bytes  int64
	counts []int64

	files  []FilePatternCount
	totals []int64
	// arena carves per-file Counts rows out of shared slabs: End runs
	// inside a single worker's private kernel state, and one allocation
	// per DefaultArenaSize counts replaces one exact-size copy per file.
	// Merge moves the rows without re-copying; slabs are never reused, so
	// rows stay valid after their arena's kernel is recycled.
	arena scan.Int64Arena
}

// NewMatchKernel returns a match kernel prototype over the searcher.
func NewMatchKernel(ms *MultiSearcher) *MatchKernel {
	return &MatchKernel{ms: ms, totals: make([]int64, ms.NumPatterns())}
}

// Searcher returns the underlying MultiSearcher.
func (k *MatchKernel) Searcher() *MultiSearcher { return k.ms }

// Fork implements scan.Kernel: forks share the automaton (read-only) but
// not counts.
func (k *MatchKernel) Fork() scan.Kernel {
	return &MatchKernel{ms: k.ms, totals: make([]int64, k.ms.NumPatterns())}
}

// Begin implements scan.Kernel.
func (k *MatchKernel) Begin(src scan.Source) {
	k.st = k.ms.Start()
	k.name = src.Name
	k.bytes = src.Size
	if k.counts == nil {
		k.counts = make([]int64, k.ms.NumPatterns())
	} else {
		for i := range k.counts {
			k.counts[i] = 0
		}
	}
}

// Block implements scan.Kernel.
func (k *MatchKernel) Block(p []byte) { k.st = k.ms.Feed(k.st, p, k.counts) }

// End implements scan.Kernel: the completed file's counts are copied into
// the kernel's own arena (the scratch slice is recycled across files) and
// folded into its totals.
func (k *MatchKernel) End() {
	fc := FilePatternCount{
		Name:   k.name,
		Bytes:  k.bytes,
		Counts: k.arena.Copy(k.counts),
	}
	for i, c := range k.counts {
		fc.Matches += c
		k.totals[i] += c
	}
	k.files = append(k.files, fc)
}

// Merge implements scan.Kernel: the other kernel's accumulated rows are
// moved (not re-copied — arena slabs are never reused, so the rows stay
// valid), its totals folded in, and its accumulation drained.
func (k *MatchKernel) Merge(other scan.Kernel) {
	o := other.(*MatchKernel)
	k.files = append(k.files, o.files...)
	for i, c := range o.totals {
		k.totals[i] += c
	}
	o.files = o.files[:0]
	for i := range o.totals {
		o.totals[i] = 0
	}
}

// Files returns per-file counts in input order; the slice is owned by the
// kernel.
func (k *MatchKernel) Files() []FilePatternCount { return k.files }

// Totals returns corpus-wide per-pattern counts in registration order.
func (k *MatchKernel) Totals() []int64 { return k.totals }

// TotalMatches returns the corpus-wide match count across all patterns.
func (k *MatchKernel) TotalMatches() int64 {
	var t int64
	for _, c := range k.totals {
		t += c
	}
	return t
}

const matchKernelTag = 'M'

// Snapshot implements scan.StateCodec: the accumulated per-file rows and
// totals. The pattern set itself is configuration, not state — both sides
// of a transfer must build their kernels over the same patterns, and
// Restore rejects a payload whose pattern count disagrees.
func (k *MatchKernel) Snapshot() ([]byte, error) {
	var e scan.StateEncoder
	e.Tag(matchKernelTag)
	np := k.ms.NumPatterns()
	e.Int(np)
	e.Int(len(k.files))
	for _, f := range k.files {
		e.Str(f.Name)
		e.I64(f.Bytes)
		for _, c := range f.Counts {
			e.I64(c)
		}
		// Counts is nil for a zero-pattern searcher row; Matches is
		// derivable, so neither needs encoding beyond the counts above.
	}
	for _, c := range k.totals {
		e.I64(c)
	}
	return e.Bytes(), nil
}

// Restore implements scan.StateCodec.
func (k *MatchKernel) Restore(state []byte) error {
	d := scan.NewStateDecoder(state)
	d.Tag(matchKernelTag)
	np := d.Int()
	if d.Err() == nil && np != k.ms.NumPatterns() {
		return errs.Invalid("textproc: match kernel state has %d patterns, searcher has %d", np, k.ms.NumPatterns())
	}
	n := d.Len()
	files := make([]FilePatternCount, 0, n)
	var arena scan.Int64Arena
	row := make([]int64, np)
	for i := 0; i < n; i++ {
		fc := FilePatternCount{Name: d.Str(), Bytes: d.I64()}
		for j := 0; j < np; j++ {
			row[j] = d.I64()
			fc.Matches += row[j]
		}
		fc.Counts = arena.Copy(row)
		files = append(files, fc)
	}
	totals := make([]int64, np)
	for i := range totals {
		totals[i] = d.I64()
	}
	if err := d.Finish(); err != nil {
		return err
	}
	k.files, k.totals = files, totals
	return nil
}
