package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/lexicon"
	"repro/internal/vfs"
)

// TaggedToken is a token with its assigned part-of-speech tag.
type TaggedToken struct {
	Token
	Tag lexicon.Tag
}

// Tagger assigns part-of-speech tags using a lexicon, a suffix-based
// guesser for out-of-vocabulary words, and a bigram transition model —
// a compact stand-in for the Stanford left3words tagger the paper treats as
// a black box. Like the paper's wrapper, one Tagger instance processes many
// files, avoiding per-file model (re)initialisation (the paper's "startup
// cost of a new JVM for every file").
//
// A Tagger is safe for concurrent use after construction: tagging mutates
// no shared state.
type Tagger struct {
	lex map[string][]lexicon.Tag
	// trans[prev][cur] is the log-ish score of tag cur following prev.
	trans map[lexicon.Tag]map[lexicon.Tag]float64
}

// NewTagger builds a tagger over the embedded lexicon. Construction cost is
// deliberately non-trivial relative to tagging a single small file,
// mirroring the model-load cost that motivates the paper's batch wrapper.
func NewTagger() *Tagger {
	t := &Tagger{lex: lexicon.Entries(), trans: make(map[lexicon.Tag]map[lexicon.Tag]float64)}
	set := func(prev, cur lexicon.Tag, w float64) {
		m, ok := t.trans[prev]
		if !ok {
			m = make(map[lexicon.Tag]float64)
			t.trans[prev] = m
		}
		m[cur] = w
	}
	// Hand-tuned transition weights encoding basic English order.
	start := lexicon.Tag("START")
	set(start, lexicon.Det, 2.0)
	set(start, lexicon.Pronoun, 1.8)
	set(start, lexicon.ProperN, 1.5)
	set(start, lexicon.Adverb, 0.6)
	set(lexicon.Det, lexicon.Noun, 2.0)
	set(lexicon.Det, lexicon.Adjective, 1.6)
	set(lexicon.Det, lexicon.PluralN, 1.4)
	set(lexicon.Adjective, lexicon.Noun, 2.0)
	set(lexicon.Adjective, lexicon.PluralN, 1.4)
	set(lexicon.Adjective, lexicon.Adjective, 0.8)
	set(lexicon.Noun, lexicon.Verb, 1.8)
	set(lexicon.Noun, lexicon.VerbPast, 1.6)
	set(lexicon.Noun, lexicon.Prep, 1.2)
	set(lexicon.Noun, lexicon.Conj, 0.8)
	set(lexicon.PluralN, lexicon.Verb, 1.8)
	set(lexicon.PluralN, lexicon.Prep, 1.2)
	set(lexicon.Pronoun, lexicon.Verb, 2.0)
	set(lexicon.Pronoun, lexicon.VerbPast, 1.8)
	set(lexicon.Pronoun, lexicon.Modal, 1.2)
	set(lexicon.Modal, lexicon.Verb, 2.2)
	set(lexicon.Verb, lexicon.Det, 1.8)
	set(lexicon.Verb, lexicon.Adverb, 1.4)
	set(lexicon.Verb, lexicon.Prep, 1.2)
	set(lexicon.Verb, lexicon.Pronoun, 1.0)
	set(lexicon.VerbPast, lexicon.Det, 1.8)
	set(lexicon.VerbPast, lexicon.Adverb, 1.4)
	set(lexicon.VerbPast, lexicon.Prep, 1.2)
	set(lexicon.Adverb, lexicon.Verb, 1.6)
	set(lexicon.Adverb, lexicon.Adjective, 1.2)
	set(lexicon.Adverb, lexicon.VerbPast, 1.2)
	set(lexicon.Prep, lexicon.Det, 2.0)
	set(lexicon.Prep, lexicon.Noun, 1.2)
	set(lexicon.Prep, lexicon.ProperN, 1.2)
	set(lexicon.Conj, lexicon.Det, 1.4)
	set(lexicon.Conj, lexicon.Pronoun, 1.4)
	set(lexicon.Conj, lexicon.Verb, 1.0)
	set(lexicon.ProperN, lexicon.Verb, 1.8)
	set(lexicon.ProperN, lexicon.VerbPast, 1.6)
	return t
}

// candidates returns the possible tags for a word, consulting the lexicon
// first and the suffix guesser for out-of-vocabulary words. The second
// return reports whether the word was found in the lexicon.
func (t *Tagger) candidates(word string) ([]lexicon.Tag, bool) {
	if tags, ok := t.lex[lowerWord(word)]; ok {
		return tags, true
	}
	return []lexicon.Tag{GuessTag(word)}, false
}

// lowerWord lowercases a word for lexicon lookup, returning the input
// unchanged (no allocation) when it is already free of ASCII uppercase —
// the overwhelmingly common case in running text.
func lowerWord(word string) string {
	for i := 0; i < len(word); i++ {
		if isUpperByte(word[i]) {
			return strings.ToLower(word)
		}
	}
	return word
}

// KnownWord reports whether a word (raw token bytes) is in the lexicon —
// the same membership test tagInto uses to count a token as Unknown, so
// single-pass kernels can compute out-of-vocabulary rates identical to
// TagText without tagging. Allocation-free for tokenizer-produced words:
// the compiler elides the string conversion for map lookups, and ASCII
// uppercase is folded through a stack buffer.
func (t *Tagger) KnownWord(word []byte) bool {
	upper, wide := false, false
	for _, c := range word {
		if isUpperByte(c) {
			upper = true
		} else if c >= 0x80 {
			wide = true
		}
	}
	if !upper {
		_, ok := t.lex[string(word)]
		return ok
	}
	if wide || len(word) > 64 {
		// Mixed ASCII-uppercase and multi-byte runes: defer to the exact
		// lowerWord (Unicode-aware) path tagInto takes.
		_, ok := t.lex[lowerWord(string(word))]
		return ok
	}
	var buf [64]byte
	b := buf[:len(word)]
	for i, c := range word {
		b[i] = foldTable[c]
	}
	_, ok := t.lex[string(b)]
	return ok
}

// GuessTag assigns a tag to an out-of-vocabulary word from surface clues:
// digits, capitalisation and derivational suffixes.
func GuessTag(word string) lexicon.Tag {
	if word == "" {
		return lexicon.Unknown
	}
	if isNumeric(word) {
		return lexicon.Number
	}
	first, _ := utf8.DecodeRuneInString(word)
	if unicode.IsUpper(first) {
		return lexicon.ProperN
	}
	lower := lowerWord(word)
	switch {
	case strings.HasSuffix(lower, "ing"):
		return lexicon.VerbGer
	case strings.HasSuffix(lower, "ed"):
		return lexicon.VerbPast
	case strings.HasSuffix(lower, "ly"):
		return lexicon.Adverb
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"):
		return lexicon.Adjective
	case strings.HasSuffix(lower, "ness"), strings.HasSuffix(lower, "tion"),
		strings.HasSuffix(lower, "ment"), strings.HasSuffix(lower, "ism"),
		strings.HasSuffix(lower, "ity"), strings.HasSuffix(lower, "er"):
		return lexicon.Noun
	case strings.HasSuffix(lower, "s"):
		return lexicon.PluralN
	}
	return lexicon.Noun
}

func isNumeric(word string) bool {
	for _, r := range word {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(word) > 0
}

// TagSentence tags one sentence with greedy bigram decoding: each token
// takes the candidate tag maximising lexical preference (candidate order)
// plus the transition score from the previous tag.
func (t *Tagger) TagSentence(sentence []Token) []TaggedToken {
	out := make([]TaggedToken, len(sentence))
	t.tagInto(out, sentence, nil)
	return out
}

// tagInto tags one sentence into dst (len(dst) == len(sentence)), and, when
// res is non-nil, folds the per-token accounting into it in the same pass —
// one lexicon lookup per word serves both the tag decision and the
// known/unknown bookkeeping, where TagText used to look each word up twice.
func (t *Tagger) tagInto(dst []TaggedToken, sentence []Token, res *POSResult) {
	prev := lexicon.Tag("START")
	for k, tok := range sentence {
		if tok.Punct {
			dst[k] = TaggedToken{Token: tok, Tag: lexicon.Punct}
			if res != nil {
				res.Tokens++
				res.TagCounts[lexicon.Punct]++
			}
			continue
		}
		var best lexicon.Tag
		cands, known := t.lex[lowerWord(tok.Text)]
		if !known {
			// A single guessed candidate always wins the scoring below;
			// skip straight to it without materialising a slice.
			best = GuessTag(tok.Text)
		} else {
			best = cands[0]
			bestScore := -1e9
			for rank, cand := range cands {
				// Lexical preference decays with rank; transitions add
				// context.
				score := -0.5 * float64(rank)
				if m, ok := t.trans[prev]; ok {
					score += m[cand]
				}
				if score > bestScore {
					bestScore = score
					best = cand
				}
			}
		}
		dst[k] = TaggedToken{Token: tok, Tag: best}
		prev = best
		if res != nil {
			res.Tokens++
			res.Words++
			res.TagCounts[best]++
			if !known {
				res.Unknown++
			}
		}
	}
}

// POSResult aggregates a tagging run.
type POSResult struct {
	Sentences int
	Tokens    int
	Words     int
	Unknown   int // out-of-vocabulary words routed through the guesser
	TagCounts map[lexicon.Tag]int
}

// TagText tokenises, splits and tags a whole document. The sentences
// partition the token stream exactly, so all tagged tokens live in one flat
// slab sized len(tokens), with each sentence's slice a window into it — two
// allocations for the whole document instead of one per sentence.
func (t *Tagger) TagText(text []byte) ([][]TaggedToken, *POSResult) {
	tokens := Tokenize(text)
	sentences := SplitSentences(tokens)
	res := &POSResult{TagCounts: make(map[lexicon.Tag]int)}
	slab := make([]TaggedToken, len(tokens))
	tagged := make([][]TaggedToken, len(sentences))
	off := 0
	for si, s := range sentences {
		dst := slab[off : off+len(s) : off+len(s)]
		t.tagInto(dst, s, res)
		tagged[si] = dst
		off += len(s)
		res.Sentences++
	}
	return tagged, res
}

// TagFiles tags a batch of files with one shared model instance (the
// paper's wrapper pattern) and returns the merged result.
func (t *Tagger) TagFiles(files []vfs.File) (*POSResult, error) {
	total := &POSResult{TagCounts: make(map[lexicon.Tag]int)}
	for _, f := range files {
		data, err := f.ReadAll()
		if err != nil {
			return nil, err
		}
		_, res := t.TagText(data)
		total.Sentences += res.Sentences
		total.Tokens += res.Tokens
		total.Words += res.Words
		total.Unknown += res.Unknown
		for tag, n := range res.TagCounts {
			total.TagCounts[tag] += n
		}
	}
	return total, nil
}
