package textproc

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lexicon"
)

// Tagger accuracy against the generator's ground truth: every generated
// token carries the tag of the inventory it was drawn from, so tagging
// accuracy can be measured exactly — no hand-labelled corpus needed.
func TestTaggerAccuracyOnGroundTruth(t *testing.T) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 41)
	tg := NewTagger()
	var total, correct, knownTotal, knownCorrect int
	for s := 0; s < 400; s++ {
		words, goldTags := g.TaggedSentence()
		if len(words) != len(goldTags) {
			t.Fatalf("sentence %d: %d words but %d tags", s, len(words), len(goldTags))
		}
		// Render and re-tokenise the way real input arrives.
		var buf strings.Builder
		for i, w := range words {
			if w != "," && w != "." && i > 0 {
				buf.WriteByte(' ')
			}
			buf.WriteString(w)
		}
		tokens := Tokenize([]byte(buf.String()))
		if len(tokens) != len(words) {
			t.Fatalf("sentence %d: tokenizer split %d tokens from %d words", s, len(tokens), len(words))
		}
		tagged := tg.TagSentence(tokens)
		for i, tt := range tagged {
			gold := goldTags[i]
			total++
			hit := tt.Tag == gold
			// Near-miss classes that the gold standard cannot distinguish:
			// a generated "noun" may be an ambiguous word used as a verb
			// reading etc. Count exact matches only, but track the subset
			// where the gold tag is a closed class or punctuation — there
			// the tagger has no excuse.
			if hit {
				correct++
			}
			switch gold {
			case lexicon.Det, lexicon.Prep, lexicon.Pronoun, lexicon.Conj, lexicon.Modal, lexicon.Punct:
				knownTotal++
				if hit {
					knownCorrect++
				}
			}
		}
	}
	overall := float64(correct) / float64(total)
	closed := float64(knownCorrect) / float64(knownTotal)
	if overall < 0.70 {
		t.Errorf("overall tagging accuracy = %.3f, want ≥ 0.70", overall)
	}
	if closed < 0.90 {
		t.Errorf("closed-class accuracy = %.3f, want ≥ 0.90", closed)
	}
}

func TestTaggedSentenceAlignment(t *testing.T) {
	g := corpus.NewGenerator(corpus.ComplexStyle(), 42)
	for s := 0; s < 50; s++ {
		words, tags := g.TaggedSentence()
		if len(words) != len(tags) {
			t.Fatalf("misaligned: %d words, %d tags", len(words), len(tags))
		}
		for i, w := range words {
			isPunct := w == "," || w == "."
			if isPunct != (tags[i] == lexicon.Punct) {
				t.Fatalf("token %q tagged %v", w, tags[i])
			}
		}
		if tags[len(tags)-1] != lexicon.Punct {
			t.Fatal("sentence does not end in punctuation")
		}
	}
}

func TestTaggedSentenceDoesNotLeakBetweenCalls(t *testing.T) {
	g := corpus.NewGenerator(corpus.PlainStyle(), 43)
	w1, t1 := g.TaggedSentence()
	_, t2 := g.TaggedSentence()
	if len(t1) != len(w1) {
		t.Fatal("first sentence misaligned")
	}
	// The second sentence's tags must not contain the first's prefix by
	// aliasing: mutate t1 and confirm t2 unchanged length/content basis.
	if len(t2) == 0 {
		t.Fatal("empty second sentence")
	}
}
