package textproc_test

import (
	"testing"

	"repro/internal/scan/kerneltest"
	"repro/internal/textproc"
)

// TestStatsKernelConformance pins the portable-state contract for the
// text-statistics kernel.
func TestStatsKernelConformance(t *testing.T) {
	kerneltest.Conformance(t, textproc.NewStatsKernel(), nil)
}

// TestMatchKernelConformance pins the portable-state contract for the
// grep kernel, in both exact and case-folded configurations — the folded
// automaton has a different byte-class table, so its boundary-straddling
// behaviour is pinned separately.
func TestMatchKernelConformance(t *testing.T) {
	patterns := []string{"the", "error", "Unknownzz"}
	t.Run("exact", func(t *testing.T) {
		ms, err := textproc.NewMultiSearcher(patterns)
		if err != nil {
			t.Fatal(err)
		}
		kerneltest.Conformance(t, textproc.NewMatchKernel(ms), nil)
	})
	t.Run("folded", func(t *testing.T) {
		ms, err := textproc.NewFoldedMultiSearcher(patterns)
		if err != nil {
			t.Fatal(err)
		}
		kerneltest.Conformance(t, textproc.NewMatchKernel(ms), nil)
	})
}
