package textproc

import (
	"bytes"
	"testing"
)

// fuzzSearcherSets covers both engines and both folding modes: a small
// set the bitap engine takes, the same set forced onto the reworked AC
// walk, and folded variants. The reference walk is the oracle.
func fuzzSearcherSets() []struct {
	name     string
	patterns []string
	folded   bool
} {
	return []struct {
		name     string
		patterns []string
		folded   bool
	}{
		{"bitap", []string{"the", "fox", "ab", "ba"}, false},
		{"bitap-folded", []string{"The", "fox", "aB"}, true},
		{"ac", []string{"the", "theme", "he", "hem", "emit", "mit", "it", "t", "\xff\x00", "brown fox"}, false},
		{"ac-folded", []string{"The", "THEME", "He", "heM", "Emit", "miT", "It", "T", "brown Fox"}, true},
	}
}

// FuzzMultiSearcherBlockSplit pins block-split invariance for both
// searcher engines: feeding arbitrary bytes through Feed in blocks of
// any size yields exactly the counts of one contiguous feed, and both
// equal the frozen reference walk.
func FuzzMultiSearcherBlockSplit(f *testing.F) {
	f.Add([]byte("the quick brown fox themes the theme"), byte(3))
	f.Add([]byte("THE THEME emits; aB ba ab"), byte(1))
	f.Add([]byte("\xff\x00\xff\x00the\xfft"), byte(2))
	f.Add([]byte(""), byte(7))
	f.Add(bytes.Repeat([]byte("thethemit"), 40), byte(5))
	f.Fuzz(func(t *testing.T, data []byte, bsRaw byte) {
		bs := 1 + int(bsRaw)%13
		for _, set := range fuzzSearcherSets() {
			newFast := NewMultiSearcher
			newRef := NewReferenceMultiSearcher
			if set.folded {
				newFast = NewFoldedMultiSearcher
				newRef = NewFoldedReferenceMultiSearcher
			}
			m, err := newFast(set.patterns)
			if err != nil {
				t.Fatal(err)
			}
			forced, err := newFast(set.patterns)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := newRef(set.patterns)
			if err != nil {
				t.Fatal(err)
			}
			forced.bitap = false // exercise the AC walk even on small sets

			want := make([]int64, ref.NumPatterns())
			ref.Feed(ref.Start(), data, want)

			for name, s := range map[string]*MultiSearcher{"fast": m, "forced-ac": forced} {
				whole := make([]int64, s.NumPatterns())
				s.Feed(s.Start(), data, whole)
				if !equalInt64s(whole, want) {
					t.Fatalf("%s/%s contiguous feed: got %v want %v", set.name, name, whole, want)
				}
				split := make([]int64, s.NumPatterns())
				st := s.Start()
				for i := 0; i < len(data); i += bs {
					end := i + bs
					if end > len(data) {
						end = len(data)
					}
					st = s.Feed(st, data[i:end], split)
				}
				if !equalInt64s(split, want) {
					t.Fatalf("%s/%s block size %d: got %v want %v", set.name, name, bs, split, want)
				}
			}
		}
	})
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzStreamAnalyzerBlockSplit pins block-split invariance for the fused
// stats/complexity analyzer: stats, line count and the emitted word
// sequence are identical whether the input arrives whole or in blocks of
// any size — every word-run, chunk and sentence carry must survive the
// boundary.
func FuzzStreamAnalyzerBlockSplit(f *testing.F) {
	f.Add([]byte("The quick brown fox. It jumps!\nhéllo wörld's end"), byte(3))
	f.Add([]byte("a"), byte(1))
	f.Add([]byte("\xc3\xa9\xc3\xa9 abc\xc3"), byte(2))
	f.Add(bytes.Repeat([]byte("word "), 30), byte(7))
	f.Add([]byte("...!?\n\n  \t"), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, bsRaw byte) {
		bs := 1 + int(bsRaw)%13
		feed := func(blocks bool) (TextStats, int64, string) {
			var words bytes.Buffer
			a := NewStreamAnalyzer(func(w []byte) {
				words.Write(w)
				words.WriteByte(0)
			})
			if blocks {
				for i := 0; i < len(data); i += bs {
					end := i + bs
					if end > len(data) {
						end = len(data)
					}
					a.Block(data[i:end])
				}
			} else {
				a.Block(data)
			}
			st, lines := a.Finish()
			return st, lines, words.String()
		}
		wantSt, wantLines, wantWords := feed(false)
		gotSt, gotLines, gotWords := feed(true)
		if gotSt != wantSt {
			t.Fatalf("block size %d: stats %+v, contiguous %+v", bs, gotSt, wantSt)
		}
		if gotLines != wantLines {
			t.Fatalf("block size %d: lines %d, contiguous %d", bs, gotLines, wantLines)
		}
		if gotWords != wantWords {
			t.Fatalf("block size %d: words %q, contiguous %q", bs, gotWords, wantWords)
		}
	})
}
