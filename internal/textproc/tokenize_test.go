package textproc

import (
	"testing"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeWordsAndPunct(t *testing.T) {
	toks := Tokenize([]byte("The cat, quickly."))
	want := []string{"The", "cat", ",", "quickly", "."}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if !toks[2].Punct || !toks[4].Punct {
		t.Error("punctuation not flagged")
	}
	if toks[0].Punct || toks[1].Punct {
		t.Error("words flagged as punctuation")
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := []byte("ab cd.")
	toks := Tokenize(text)
	if toks[0].Start != 0 || toks[1].Start != 3 || toks[2].Start != 5 {
		t.Errorf("offsets wrong: %+v", toks)
	}
	for _, tok := range toks {
		if got := string(text[tok.Start : tok.Start+len(tok.Text)]); got != tok.Text {
			t.Errorf("offset slice %q != token %q", got, tok.Text)
		}
	}
}

func TestTokenizeEmptyAndWhitespace(t *testing.T) {
	if toks := Tokenize(nil); len(toks) != 0 {
		t.Errorf("tokens of nil = %v", toks)
	}
	if toks := Tokenize([]byte("  \n\t ")); len(toks) != 0 {
		t.Errorf("tokens of whitespace = %v", toks)
	}
}

func TestTokenizeApostropheAndDigits(t *testing.T) {
	toks := texts(Tokenize([]byte("it's 42 o'clock")))
	want := []string{"it's", "42", "o'clock"}
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeMultibyteRune(t *testing.T) {
	toks := Tokenize([]byte("a é b"))
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", texts(toks))
	}
	if toks[1].Text != "é" {
		t.Errorf("middle token = %q", toks[1].Text)
	}
	if toks[1].Punct {
		t.Error("letter rune flagged as punctuation")
	}
}

func TestSplitSentences(t *testing.T) {
	toks := Tokenize([]byte("One two. Three! Four five"))
	sents := SplitSentences(toks)
	if len(sents) != 3 {
		t.Fatalf("sentences = %d, want 3", len(sents))
	}
	if len(sents[0]) != 3 || len(sents[1]) != 2 || len(sents[2]) != 2 {
		t.Errorf("sentence lengths: %d %d %d", len(sents[0]), len(sents[1]), len(sents[2]))
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if s := SplitSentences(nil); len(s) != 0 {
		t.Errorf("sentences of nil = %v", s)
	}
}

func TestAnalyze(t *testing.T) {
	st := Analyze([]byte("The cat sat. The dog, however, ran away quickly."))
	if st.Sentences != 2 {
		t.Errorf("sentences = %d, want 2", st.Sentences)
	}
	if st.Words != 3+6 {
		t.Errorf("words = %d, want 9", st.Words)
	}
	if st.MaxSentence != 6 {
		t.Errorf("max sentence = %d, want 6", st.MaxSentence)
	}
	if st.MeanSentence != 4.5 {
		t.Errorf("mean sentence = %v, want 4.5", st.MeanSentence)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil)
	if st.Sentences != 0 || st.Words != 0 || st.MeanSentence != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
