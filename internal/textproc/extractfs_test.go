package textproc

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/vfs"
)

func TestExtractFSDerivesTextCorpus(t *testing.T) {
	htmlFS, err := corpus.GenerateWithContent(corpus.HTML18Mil(0.0000015), 5) // ~27 files
	if err != nil {
		t.Fatal(err)
	}
	textFS, err := ExtractFS(htmlFS)
	if err != nil {
		t.Fatal(err)
	}
	if textFS.Len() != htmlFS.Len() {
		t.Fatalf("file count changed: %d -> %d", htmlFS.Len(), textFS.Len())
	}
	// Extracted text is smaller than the HTML (markup removed) and
	// tag-free.
	if textFS.TotalSize() >= htmlFS.TotalSize() {
		t.Errorf("extraction did not shrink: %d vs %d", textFS.TotalSize(), htmlFS.TotalSize())
	}
	for _, f := range textFS.List() {
		if !strings.HasSuffix(f.Name, ".txt") {
			t.Errorf("name %q not rewritten to .txt", f.Name)
		}
		data, err := f.ReadAll() // validates declared size too
		if err != nil {
			t.Fatal(err)
		}
		if strings.ContainsAny(string(data), "<>") {
			t.Errorf("%s contains markup", f.Name)
		}
	}
}

func TestExtractFSLazyAndRepeatable(t *testing.T) {
	htmlFS, err := corpus.GenerateWithContent(corpus.HTML18Mil(0.0000003), 9) // ~5 files
	if err != nil {
		t.Fatal(err)
	}
	textFS, err := ExtractFS(htmlFS)
	if err != nil {
		t.Fatal(err)
	}
	f := textFS.List()[0]
	a, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("re-extraction not deterministic")
	}
}

func TestExtractFSMetadataOnlyFails(t *testing.T) {
	fs := vfs.NewFS()
	_ = fs.Add(vfs.NewFile("m.html", 10))
	if _, err := ExtractFS(fs); err == nil {
		t.Error("expected error for metadata-only corpus")
	}
}

func TestRewriteExt(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a/b/c.html", "a/b/c.txt"},
		{"plain", "plain.txt"},
		{"dir.v2/file", "dir.v2/file.txt"},
		{"x.tar.gz", "x.tar.txt"},
	}
	for _, c := range cases {
		if got := rewriteExt(c.in, ".txt"); got != c.want {
			t.Errorf("rewriteExt(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
