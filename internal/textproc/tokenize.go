// Package textproc implements the two real text-processing applications the
// paper evaluates: a streaming search engine (the grep stand-in) and a
// lexicon-driven part-of-speech tagger (the Stanford-tagger stand-in). Both
// operate on real bytes, so reshaping experiments can verify end-to-end that
// merging files never changes application output.
package textproc

import (
	"unicode"
	"unicode/utf8"
)

// Token is a word or punctuation unit with its byte offset in the source.
type Token struct {
	Text  string
	Start int
	Punct bool
}

// sentenceEnders terminate a sentence.
func isSentenceEnd(s string) bool {
	return s == "." || s == "!" || s == "?"
}

// Tokenize splits text into word and punctuation tokens. Words are maximal
// runs of letters, digits and apostrophes; every other non-space character
// is a single punctuation token. The tokenizer is ASCII-oriented (the
// corpus generator emits ASCII) but safe on arbitrary UTF-8: multi-byte
// runes are treated as word characters when letters and punctuation
// otherwise.
//
// Allocation discipline: the input is converted to a string once and every
// token's Text is a substring of it, so a full tokenisation costs exactly
// two allocations (the string copy and the exactly-sized token slice)
// instead of one per token — the per-token string copies used to dominate
// the POS pipeline's allocation profile.
func Tokenize(text []byte) []Token {
	s := string(text)
	tokens := make([]Token, 0, countTokens(s))
	i := 0
	n := len(s)
	for i < n {
		c := s[i]
		switch {
		case isSpaceByte(c):
			i++
		case isWordByte(c):
			start := i
			for i < n && isWordByte(s[i]) {
				i++
			}
			tokens = append(tokens, Token{Text: s[start:i], Start: start})
		default:
			// A single punctuation byte (or the lead byte of a multi-byte
			// rune, consumed together with its continuation bytes).
			start := i
			i++
			for i < n && s[i]&0xC0 == 0x80 {
				i++
			}
			chunk := s[start:i]
			punct := true
			if r, size := utf8.DecodeRuneInString(chunk); size == len(chunk) &&
				(unicode.IsLetter(r) || unicode.IsDigit(r)) {
				punct = false
			}
			tokens = append(tokens, Token{Text: chunk, Start: start, Punct: punct})
		}
	}
	return tokens
}

// countTokens is the counting-only pass of Tokenize: same boundaries, no
// classification, no allocation. Paying this cheap extra scan buys an
// exactly-sized token slice (no append doubling, no over-retention).
func countTokens(s string) int {
	count := 0
	i := 0
	n := len(s)
	for i < n {
		c := s[i]
		switch {
		case isSpaceByte(c):
			i++
		case isWordByte(c):
			for i < n && isWordByte(s[i]) {
				i++
			}
			count++
		default:
			i++
			for i < n && s[i]&0xC0 == 0x80 {
				i++
			}
			count++
		}
	}
	return count
}

// SplitSentences groups tokens into sentences at sentence-final punctuation.
// A trailing fragment without a terminator forms a final sentence.
func SplitSentences(tokens []Token) [][]Token {
	var sentences [][]Token
	start := 0
	for i, tok := range tokens {
		if tok.Punct && isSentenceEnd(tok.Text) {
			sentences = append(sentences, tokens[start:i+1])
			start = i + 1
		}
	}
	if start < len(tokens) {
		sentences = append(sentences, tokens[start:])
	}
	return sentences
}

// TextStats summarises the linguistic shape of a text; the workload cost
// model uses it to price POS tagging (sentence length is the paper's
// "important parameter for POS tagging", §5.2).
type TextStats struct {
	Tokens       int
	Words        int // non-punctuation tokens
	Sentences    int
	MeanSentence float64 // mean words per sentence
	MaxSentence  int
}

// Analyze computes TextStats for a text.
func Analyze(text []byte) TextStats {
	tokens := Tokenize(text)
	sentences := SplitSentences(tokens)
	st := TextStats{Tokens: len(tokens), Sentences: len(sentences)}
	for _, s := range sentences {
		words := 0
		for _, t := range s {
			if !t.Punct {
				words++
			}
		}
		st.Words += words
		if words > st.MaxSentence {
			st.MaxSentence = words
		}
	}
	if st.Sentences > 0 {
		st.MeanSentence = float64(st.Words) / float64(st.Sentences)
	}
	return st
}
