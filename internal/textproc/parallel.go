package textproc

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/lexicon"
	"repro/internal/vfs"
)

// Parallel kernels: the real search engine and tagger fanned out over a
// worker pool, the in-process analogue of the paper's fleet of instances.
// Results are deterministic — identical to the serial kernels and
// independent of worker scheduling — because each file's result is written
// to its own slot and aggregated in input order.

// ParallelGrep searches the files with `workers` goroutines (0 or negative
// means GOMAXPROCS) and returns exactly what the serial GrepFiles returns.
func (s *Searcher) ParallelGrep(files []vfs.File, workers int) (*GrepResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(files) {
		workers = len(files)
	}
	if workers <= 1 {
		return s.GrepFiles(files)
	}
	results := make([]FileResult, len(files))
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f := files[i]
				r, err := f.Open()
				if err != nil {
					errs[i] = err
					continue
				}
				matches, err := s.CountReader(r)
				if err != nil {
					errs[i] = fmt.Errorf("textproc: grep %s: %w", f.Name, err)
					continue
				}
				results[i] = FileResult{Name: f.Name, Bytes: f.Size, Matches: matches}
			}
		}()
	}
	for i := range files {
		next <- i
	}
	close(next)
	wg.Wait()
	res := &GrepResult{Files: results}
	for i := range files {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Bytes += results[i].Bytes
		res.Matches += results[i].Matches
	}
	return res, nil
}

// ParallelGrepFS searches the whole file system concurrently.
func (s *Searcher) ParallelGrepFS(fs *vfs.FS, workers int) (*GrepResult, error) {
	return s.ParallelGrep(fs.List(), workers)
}

// ParallelTagFiles tags the files with `workers` goroutines sharing one
// model instance (the Tagger is read-only after construction) and returns
// the same merged result as the serial TagFiles.
func (t *Tagger) ParallelTagFiles(files []vfs.File, workers int) (*POSResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(files) {
		workers = len(files)
	}
	if workers <= 1 {
		return t.TagFiles(files)
	}
	partials := make([]*POSResult, len(files))
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				data, err := files[i].ReadAll()
				if err != nil {
					errs[i] = err
					continue
				}
				_, res := t.TagText(data)
				partials[i] = res
			}
		}()
	}
	for i := range files {
		next <- i
	}
	close(next)
	wg.Wait()
	total := &POSResult{TagCounts: make(map[lexicon.Tag]int)}
	for i := range files {
		if errs[i] != nil {
			return nil, errs[i]
		}
		p := partials[i]
		total.Sentences += p.Sentences
		total.Tokens += p.Tokens
		total.Words += p.Words
		total.Unknown += p.Unknown
		for tag, n := range p.TagCounts {
			total.TagCounts[tag] += n
		}
	}
	return total, nil
}
