package textproc

import (
	"context"
	"sync"

	"repro/internal/lexicon"
	"repro/internal/par"
	"repro/internal/vfs"
)

// Parallel kernels: the real search engine and tagger fanned out over the
// shared par worker pool, the in-process analogue of the paper's fleet of
// instances. Results are deterministic — identical to the serial kernels
// and independent of worker scheduling — because each file's result is
// written to its own slot and aggregated in input order, with errors
// reported for the lowest failing index (the par.Pool contract).

// ParallelGrep searches the files with `workers` goroutines (0 or negative
// means GOMAXPROCS) and returns exactly what the serial GrepFiles returns.
func (s *Searcher) ParallelGrep(files []vfs.File, workers int) (*GrepResult, error) {
	return s.ParallelGrepCtx(context.Background(), files, workers)
}

// ParallelGrepCtx is ParallelGrep with cancellation: file dispatch stops
// once ctx is done and the call returns a typed cancellation error. A
// run that completes is bit-identical to ParallelGrep at any worker
// count, including the serial workers=1 path.
func (s *Searcher) ParallelGrepCtx(ctx context.Context, files []vfs.File, workers int) (*GrepResult, error) {
	pool := par.New(workers)
	results := make([]FileResult, len(files))
	err := pool.ForEachCtx(ctx, len(files), func(i int) error {
		f := files[i]
		matches, err := s.countFile(f)
		if err != nil {
			return err
		}
		results[i] = FileResult{Name: f.Name, Bytes: f.Size, Matches: matches}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &GrepResult{Files: results}
	for i := range results {
		res.Bytes += results[i].Bytes
		res.Matches += results[i].Matches
	}
	return res, nil
}

// ParallelGrepFS searches the whole file system concurrently.
func (s *Searcher) ParallelGrepFS(fs *vfs.FS, workers int) (*GrepResult, error) {
	return s.ParallelGrep(fs.List(), workers)
}

// ParallelGrepFSCtx is ParallelGrepFS with cancellation.
func (s *Searcher) ParallelGrepFSCtx(ctx context.Context, fs *vfs.FS, workers int) (*GrepResult, error) {
	return s.ParallelGrepCtx(ctx, fs.List(), workers)
}

// readBufPool recycles the file-materialisation buffers used by the
// parallel tagger, so tagging a corpus reuses a handful of buffers instead
// of allocating one per file.
var readBufPool sync.Pool

// ParallelTagFiles tags the files with `workers` goroutines sharing one
// model instance (the Tagger is read-only after construction) and returns
// the same merged result as the serial TagFiles.
func (t *Tagger) ParallelTagFiles(files []vfs.File, workers int) (*POSResult, error) {
	return t.ParallelTagFilesCtx(context.Background(), files, workers)
}

// ParallelTagFilesCtx is ParallelTagFiles with cancellation: file
// dispatch stops once ctx is done and the call returns a typed
// cancellation error. Completed runs merge identically to the non-ctx
// form at any worker count.
func (t *Tagger) ParallelTagFilesCtx(ctx context.Context, files []vfs.File, workers int) (*POSResult, error) {
	pool := par.New(workers)
	partials := make([]*POSResult, len(files))
	err := pool.ForEachCtx(ctx, len(files), func(i int) error {
		var buf []byte
		if b, ok := readBufPool.Get().(*[]byte); ok {
			buf = *b
		}
		data, err := files[i].ReadInto(buf)
		if err != nil {
			return err
		}
		_, res := t.TagText(data)
		readBufPool.Put(&data)
		partials[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := &POSResult{TagCounts: make(map[lexicon.Tag]int)}
	for _, p := range partials {
		total.Sentences += p.Sentences
		total.Tokens += p.Tokens
		total.Words += p.Words
		total.Unknown += p.Unknown
		for tag, n := range p.TagCounts {
			total.TagCounts[tag] += n
		}
	}
	return total, nil
}
