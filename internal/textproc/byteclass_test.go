package textproc

import (
	"strings"
	"testing"
)

// TestClassTableMatchesPredicates pins the shared tables to the original
// predicate definitions, byte by byte over the full 256-entry range —
// the tokenizer, stream analyzer, searchers and lexicon fold all read
// these tables, so a drifted entry would silently change every scanner
// at once.
func TestClassTableMatchesPredicates(t *testing.T) {
	for c := 0; c < 256; c++ {
		b := byte(c)
		wantSpace := b == ' ' || b == '\n' || b == '\t' || b == '\r'
		wantWord := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '\''
		wantLetter := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
		wantDigit := b >= '0' && b <= '9'
		wantUpper := b >= 'A' && b <= 'Z'
		if got := isSpaceByte(b); got != wantSpace {
			t.Errorf("isSpaceByte(%#x) = %v, want %v", b, got, wantSpace)
		}
		if got := isWordByte(b); got != wantWord {
			t.Errorf("isWordByte(%#x) = %v, want %v", b, got, wantWord)
		}
		if got := Classes(b)&ClassLetter != 0; got != wantLetter {
			t.Errorf("ClassLetter(%#x) = %v, want %v", b, got, wantLetter)
		}
		if got := Classes(b)&ClassDigit != 0; got != wantDigit {
			t.Errorf("ClassDigit(%#x) = %v, want %v", b, got, wantDigit)
		}
		if got := isUpperByte(b); got != wantUpper {
			t.Errorf("isUpperByte(%#x) = %v, want %v", b, got, wantUpper)
		}
	}
}

// TestFoldTableMatchesStringsToLower: the byte fold agrees with
// strings.ToLower on every ASCII byte and is the identity elsewhere
// (multi-byte runes must pass through untouched or UTF-8 would break).
func TestFoldTableMatchesStringsToLower(t *testing.T) {
	for c := 0; c < 256; c++ {
		b := byte(c)
		got := Fold(b)
		if b < 0x80 {
			want := strings.ToLower(string(rune(b)))
			if string(rune(got)) != want {
				t.Errorf("Fold(%q) = %q, want %q", b, got, want)
			}
		} else if got != b {
			t.Errorf("Fold(%#x) = %#x, want identity for non-ASCII", b, got)
		}
	}
}

// TestClassesAreDisjointWhereExpected: a byte is never both space and
// word, and upper implies letter implies word.
func TestClassesAreDisjointWhereExpected(t *testing.T) {
	for c := 0; c < 256; c++ {
		cl := Classes(byte(c))
		if cl&ClassSpace != 0 && cl&ClassWord != 0 {
			t.Errorf("byte %#x is both space and word", c)
		}
		if cl&ClassUpper != 0 && cl&ClassLetter == 0 {
			t.Errorf("byte %#x is upper but not letter", c)
		}
		if cl&ClassLetter != 0 && cl&ClassWord == 0 {
			t.Errorf("byte %#x is letter but not word", c)
		}
	}
}
