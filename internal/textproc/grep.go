package textproc

import (
	"fmt"
	"io"
	"regexp"
	"sync"

	"repro/internal/vfs"
)

// Searcher is a streaming pattern matcher. The paper's grep usage scenario
// is "simple patterns consisting of English dictionary words", searched in
// a full-traversal worst case (a nonsense word that never matches); the
// literal engine is a Boyer-Moore-Horspool scan that, like GNU grep, skips
// most input bytes. A regexp mode covers the complex-pattern case the paper
// mentions but does not evaluate.
type Searcher struct {
	pattern []byte
	skip    [256]int
	re      *regexp.Regexp
	folded  bool
}

// NewSearcher compiles a literal, case-sensitive pattern.
func NewSearcher(pattern string) (*Searcher, error) {
	if pattern == "" {
		return nil, fmt.Errorf("textproc: empty search pattern")
	}
	s := &Searcher{pattern: []byte(pattern)}
	s.buildSkip()
	return s, nil
}

// NewFoldedSearcher compiles a literal ASCII case-insensitive pattern.
func NewFoldedSearcher(pattern string) (*Searcher, error) {
	if pattern == "" {
		return nil, fmt.Errorf("textproc: empty search pattern")
	}
	s := &Searcher{pattern: toLowerASCII([]byte(pattern)), folded: true}
	s.buildSkip()
	return s, nil
}

// NewRegexpSearcher compiles an RE2 pattern; matching falls back to the
// stdlib engine over buffered windows.
func NewRegexpSearcher(pattern string) (*Searcher, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("textproc: %w", err)
	}
	return &Searcher{re: re}, nil
}

func (s *Searcher) buildSkip() {
	m := len(s.pattern)
	for i := range s.skip {
		s.skip[i] = m
	}
	for i := 0; i < m-1; i++ {
		s.skip[s.pattern[i]] = m - 1 - i
	}
}

func toLowerASCII(b []byte) []byte {
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = foldTable[c]
	}
	return out
}

// CountBytes returns the number of (possibly overlapping) matches in data.
func (s *Searcher) CountBytes(data []byte) int64 {
	if s.re != nil {
		return int64(len(s.re.FindAllIndex(data, -1)))
	}
	hay := data
	if s.folded {
		hay = toLowerASCII(data)
	}
	return s.countBMH(hay)
}

// countBMH runs the Boyer-Moore-Horspool scan, counting overlapping
// matches.
func (s *Searcher) countBMH(hay []byte) int64 {
	m := len(s.pattern)
	n := len(hay)
	if m == 0 || n < m {
		return 0
	}
	var count int64
	i := 0
	last := s.pattern[m-1]
	for i <= n-m {
		c := hay[i+m-1]
		if c == last && matchAt(hay[i:], s.pattern) {
			count++
			i++ // allow overlapping matches, like repeated grep -o semantics
			continue
		}
		i += s.skip[c]
	}
	return count
}

func matchAt(hay, pat []byte) bool {
	for i := len(pat) - 2; i >= 0; i-- {
		if hay[i] != pat[i] {
			return false
		}
	}
	return true
}

// grepBufSize is the streaming window; a literal match never spans more
// than len(pattern)-1 bytes across reads, so that carry suffices.
const grepBufSize = 64 * 1024

// windowPool recycles streaming windows across CountReader calls (and
// across the concurrent workers of ParallelGrep): a grep over a million
// small files would otherwise allocate a fresh 64 kB window per file. The
// pooled size covers the regexp carry; rare oversize literal patterns fall
// back to a dedicated allocation.
var windowPool = sync.Pool{
	New: func() any {
		buf := make([]byte, grepBufSize+4096)
		return &buf
	},
}

// CountReader streams r and returns the number of matches, never holding
// more than one window in memory. For the regexp engine a match must fit in
// one window (64 KiB), matching GNU grep's line-oriented behaviour for sane
// inputs.
func (s *Searcher) CountReader(r io.Reader) (int64, error) {
	overlap := 0
	if s.re == nil {
		overlap = len(s.pattern) - 1
	} else {
		overlap = 4096 // generous regexp carry window
	}
	bp := windowPool.Get().(*[]byte)
	defer windowPool.Put(bp)
	var buf []byte
	if need := grepBufSize + overlap; need <= cap(*bp) {
		buf = (*bp)[:need]
	} else {
		buf = make([]byte, need)
	}
	carry := 0
	var total int64
	var prevWindowMatches int64
	for {
		n, err := r.Read(buf[carry:])
		if n > 0 {
			window := buf[:carry+n]
			matches := s.CountBytes(window)
			// Matches entirely inside the carried prefix were counted in
			// the previous iteration; subtract them.
			total += matches - prevWindowMatches
			// Prepare next carry: keep the last `overlap` bytes.
			keep := overlap
			if keep > len(window) {
				keep = len(window)
			}
			copy(buf, window[len(window)-keep:])
			carry = keep
			prevWindowMatches = s.CountBytes(buf[:carry])
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// countFile streams one vfs file through CountReader, closing the reader
// afterwards when the content source hands out closable readers (disk- or
// pack-backed corpora); leaking one descriptor per searched file would
// exhaust the process limit long before a million-file corpus finishes.
func (s *Searcher) countFile(f vfs.File) (int64, error) {
	r, err := f.Open()
	if err != nil {
		return 0, err
	}
	matches, err := s.CountReader(r)
	if c, ok := r.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return 0, fmt.Errorf("textproc: grep %s: %w", f.Name, err)
	}
	return matches, nil
}

// FileResult is the per-file outcome of a grep run.
type FileResult struct {
	Name    string
	Bytes   int64
	Matches int64
}

// GrepResult aggregates a run over many files.
type GrepResult struct {
	Files   []FileResult
	Bytes   int64
	Matches int64
}

// GrepFiles searches every file in order, streaming each one's content.
func (s *Searcher) GrepFiles(files []vfs.File) (*GrepResult, error) {
	res := &GrepResult{}
	for _, f := range files {
		matches, err := s.countFile(f)
		if err != nil {
			return nil, err
		}
		res.Files = append(res.Files, FileResult{Name: f.Name, Bytes: f.Size, Matches: matches})
		res.Bytes += f.Size
		res.Matches += matches
	}
	return res, nil
}

// GrepFS searches the whole file system in List order.
func (s *Searcher) GrepFS(fs *vfs.FS) (*GrepResult, error) {
	return s.GrepFiles(fs.List())
}
