package textproc

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/vfs"
)

func tagsOf(tagged []TaggedToken) []lexicon.Tag {
	out := make([]lexicon.Tag, len(tagged))
	for i, tt := range tagged {
		out[i] = tt.Tag
	}
	return out
}

func TestTagSentenceBasicSVO(t *testing.T) {
	tg := NewTagger()
	toks := Tokenize([]byte("the child will find a book ."))
	tagged := tg.TagSentence(toks)
	want := []lexicon.Tag{lexicon.Det, lexicon.Noun, lexicon.Modal, lexicon.Verb, lexicon.Det, lexicon.Noun, lexicon.Punct}
	got := tagsOf(tagged)
	if len(got) != len(want) {
		t.Fatalf("tags = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tag %d (%q) = %v, want %v", i, tagged[i].Text, got[i], want[i])
		}
	}
}

func TestTagSentenceAmbiguityResolvedByContext(t *testing.T) {
	tg := NewTagger()
	// "the work" → noun reading; "they work" → verb reading.
	nounCase := tg.TagSentence(Tokenize([]byte("the work")))
	if nounCase[1].Tag != lexicon.Noun {
		t.Errorf("'the work' tagged %v, want NN", nounCase[1].Tag)
	}
	verbCase := tg.TagSentence(Tokenize([]byte("they work")))
	if verbCase[1].Tag != lexicon.Verb {
		t.Errorf("'they work' tagged %v, want VB", verbCase[1].Tag)
	}
}

func TestGuessTag(t *testing.T) {
	cases := []struct {
		word string
		want lexicon.Tag
	}{
		{"", lexicon.Unknown},
		{"12345", lexicon.Number},
		{"Chicago77x", lexicon.ProperN}, // capitalised wins
		{"flurbing", lexicon.VerbGer},
		{"flurbed", lexicon.VerbPast},
		{"flurbly", lexicon.Adverb},
		{"flurbous", lexicon.Adjective},
		{"flurbful", lexicon.Adjective},
		{"flurbness", lexicon.Noun},
		{"flurbtion", lexicon.Noun},
		{"flurbment", lexicon.Noun},
		{"flurbs", lexicon.PluralN},
		{"flurb", lexicon.Noun},
	}
	for _, c := range cases {
		if got := GuessTag(c.word); got != c.want {
			t.Errorf("GuessTag(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestTagTextCounts(t *testing.T) {
	tg := NewTagger()
	text := []byte("the man runs. she quilness sees the dog.")
	_, res := tg.TagText(text)
	if res.Sentences != 2 {
		t.Errorf("sentences = %d, want 2", res.Sentences)
	}
	if res.Words != 8 {
		t.Errorf("words = %d, want 8", res.Words)
	}
	if res.Unknown < 1 {
		t.Errorf("unknown = %d, want ≥ 1 (runs/quilness)", res.Unknown)
	}
	if res.TagCounts[lexicon.Punct] != 2 {
		t.Errorf("punct count = %d, want 2", res.TagCounts[lexicon.Punct])
	}
}

func TestTagTextEmpty(t *testing.T) {
	tg := NewTagger()
	tagged, res := tg.TagText(nil)
	if len(tagged) != 0 || res.Sentences != 0 || res.Tokens != 0 {
		t.Errorf("empty tag run: %v, %+v", tagged, res)
	}
}

func TestTagFilesMergesResults(t *testing.T) {
	tg := NewTagger()
	files := []vfs.File{
		vfs.BytesFile("a", []byte("the cat sat.")),
		vfs.BytesFile("b", []byte("a dog ran. it barked.")),
	}
	res, err := tg.TagFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sentences != 3 {
		t.Errorf("sentences = %d, want 3", res.Sentences)
	}
	if res.Words != 3+3+2 {
		t.Errorf("words = %d, want 8", res.Words)
	}
}

func TestTagFilesMetadataOnlyFails(t *testing.T) {
	tg := NewTagger()
	if _, err := tg.TagFiles([]vfs.File{vfs.NewFile("m", 5)}); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

// Reshaping invariant for POS: tagging the concatenation of files yields
// the same aggregate tag counts as tagging them separately, provided each
// file ends with sentence-final punctuation (the corpus generator
// guarantees whole sentences).
func TestPOSInvariantUnderConcat(t *testing.T) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 99)
	var members []vfs.File
	for i := 0; i < 10; i++ {
		// Whole sentences only: render until ≥200 bytes then close with '.'.
		var data []byte
		for len(data) < 200 {
			for _, w := range g.Sentence() {
				if w == "," || w == "." {
					data = append(data, w...)
					continue
				}
				if len(data) > 0 {
					data = append(data, ' ')
				}
				data = append(data, w...)
			}
		}
		members = append(members, vfs.BytesFile(fmt.Sprintf("s%02d", i), data))
	}
	tg := NewTagger()
	separate, err := tg.TagFiles(members)
	if err != nil {
		t.Fatal(err)
	}
	merged := vfs.Concat("unit", members)
	combined, err := tg.TagFiles([]vfs.File{merged})
	if err != nil {
		t.Fatal(err)
	}
	if separate.Sentences != combined.Sentences {
		t.Errorf("sentence counts differ under reshaping: %d vs %d", separate.Sentences, combined.Sentences)
	}
	if separate.Words != combined.Words {
		t.Errorf("word counts differ under reshaping: %d vs %d", separate.Words, combined.Words)
	}
	for tag, n := range separate.TagCounts {
		if combined.TagCounts[tag] != n {
			t.Errorf("tag %v count differs: %d vs %d", tag, n, combined.TagCounts[tag])
		}
	}
}

// The tagger must understand the synthetic corpus: on generated text the
// out-of-vocabulary rate should stay near the style's RareWordProb.
func TestTaggerCoversGeneratedText(t *testing.T) {
	g := corpus.NewGenerator(corpus.NewsStyle(), 4)
	text := g.Text(20000)
	tg := NewTagger()
	_, res := tg.TagText(text)
	if res.Words == 0 {
		t.Fatal("no words tagged")
	}
	oovRate := float64(res.Unknown) / float64(res.Words)
	if oovRate > 0.10 {
		t.Errorf("OOV rate = %.3f, want ≤ 0.10 (style rare prob 0.03)", oovRate)
	}
}

// Complex style must produce measurably more tagging work per word
// (longer sentences, more OOV) — the root cause of the paper's Dubliners
// vs Agnes Grey 2x runtime difference.
func TestComplexityAffectsTaggerWork(t *testing.T) {
	tg := NewTagger()
	measure := func(style corpus.Style) (meanSentence, oov float64) {
		g := corpus.NewGenerator(style, 12)
		text := g.Text(30000)
		_, res := tg.TagText(text)
		return float64(res.Words) / float64(res.Sentences), float64(res.Unknown) / float64(res.Words)
	}
	plainLen, plainOOV := measure(corpus.PlainStyle())
	complexLen, complexOOV := measure(corpus.ComplexStyle())
	if complexLen < 1.5*plainLen {
		t.Errorf("complex mean sentence %.1f not ≥1.5x plain %.1f", complexLen, plainLen)
	}
	if complexOOV <= plainOOV {
		t.Errorf("complex OOV %.3f not above plain %.3f", complexOOV, plainOOV)
	}
}

func TestTaggerLexiconLoaded(t *testing.T) {
	if lexicon.Size() < 300 {
		t.Errorf("lexicon size = %d, want ≥ 300", lexicon.Size())
	}
	tg := NewTagger()
	if tags, known := tg.candidates("the"); !known || tags[0] != lexicon.Det {
		t.Errorf("'the' lookup = %v, %v", tags, known)
	}
	if tags, known := tg.candidates("The"); !known || tags[0] != lexicon.Det {
		t.Errorf("case-folded lookup failed: %v, %v", tags, known)
	}
	if _, known := tg.candidates("zzzzgarbage"); known {
		t.Error("nonsense word reported as known")
	}
}
