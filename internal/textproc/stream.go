package textproc

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/lexicon"
)

// Streaming tagging. TagText tokenises the whole document in memory — fine
// for the corpus's small files, but exactly the pattern that makes the
// memory-bound tagger degrade on large merged unit files (Fig. 7). The
// streaming path processes one sentence at a time over an io.Reader with
// bounded memory, so merged unit files of any size can be tagged without
// the blow-up.

// maxSentenceBytes bounds a single sentence buffer; pathological inputs
// with no sentence-final punctuation are flushed at this size.
const maxSentenceBytes = 1 << 20

// TagReader tags the text streamed from r, returning the same aggregate
// result TagText would produce for the full content. Memory use is bounded
// by the longest sentence (capped at maxSentenceBytes), not the input.
func (t *Tagger) TagReader(r io.Reader) (*POSResult, error) {
	res := &POSResult{TagCounts: make(map[lexicon.Tag]int)}
	br := bufio.NewReaderSize(r, 64*1024)
	buf := make([]byte, 0, 4096)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		t.accumulate(buf, res)
		buf = buf[:0]
	}
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			flush()
			return res, nil
		}
		if err != nil {
			return nil, fmt.Errorf("textproc: streaming tag: %w", err)
		}
		buf = append(buf, b)
		if b == '.' || b == '!' || b == '?' || len(buf) >= maxSentenceBytes {
			flush()
		}
	}
}

// accumulate tags one chunk (a sentence, usually) into the running result.
func (t *Tagger) accumulate(chunk []byte, res *POSResult) {
	tokens := Tokenize(chunk)
	for _, sentence := range SplitSentences(tokens) {
		if len(sentence) == 0 {
			continue
		}
		tagged := t.TagSentence(sentence)
		res.Sentences++
		for _, tt := range tagged {
			res.Tokens++
			res.TagCounts[tt.Tag]++
			if !tt.Punct {
				res.Words++
				if _, known := t.candidates(tt.Text); !known {
					res.Unknown++
				}
			}
		}
	}
}
