package textproc

import (
	"bytes"
	"strings"
)

// ExtractText strips HTML markup and returns the visible text, the
// operation that produced the paper's second data set ("400,000 English
// language text files, extracted from a subset of HTML English language
// articles"). The extractor handles tags, comments, script/style blocks
// and the common named entities; it is deliberately tolerant of the
// malformed markup real crawled news pages contain.
func ExtractText(html []byte) []byte {
	var out bytes.Buffer
	out.Grow(len(html) / 2)
	i := 0
	n := len(html)
	lastSpace := true
	writeByte := func(c byte) {
		if isSpaceByte(c) {
			if !lastSpace {
				out.WriteByte(' ')
				lastSpace = true
			}
			return
		}
		out.WriteByte(c)
		lastSpace = false
	}
	for i < n {
		c := html[i]
		switch {
		case c == '<':
			if rest := html[i:]; hasPrefixFold(rest, "<!--") {
				// Comment: skip to -->.
				end := bytes.Index(rest, []byte("-->"))
				if end < 0 {
					i = n
					continue
				}
				i += end + 3
				continue
			}
			if tag, ok := openTagName(html[i:]); ok && (tag == "script" || tag == "style") {
				// Skip the whole element, content included.
				close := "</" + tag
				idx := indexFold(html[i:], close)
				if idx < 0 {
					i = n
					continue
				}
				i += idx
				// Fall through: the closing tag itself is consumed as a
				// normal tag on the next iteration.
				continue
			}
			// Regular tag: skip to '>'.
			end := bytes.IndexByte(html[i:], '>')
			if end < 0 {
				i = n
				continue
			}
			// Block-level tags break words.
			writeByte(' ')
			i += end + 1
		case c == '&':
			entity, consumed := decodeEntity(html[i:])
			if consumed > 0 {
				for _, e := range []byte(entity) {
					writeByte(e)
				}
				i += consumed
				continue
			}
			writeByte(c)
			i++
		default:
			writeByte(c)
			i++
		}
	}
	return bytes.TrimSpace(out.Bytes())
}

// openTagName parses "<name ..." returning the lowercase tag name.
func openTagName(b []byte) (string, bool) {
	if len(b) < 2 || b[0] != '<' {
		return "", false
	}
	j := 1
	var name []byte
	for j < len(b) {
		c := foldTable[b[j]]
		if c >= 'a' && c <= 'z' {
			name = append(name, c)
			j++
			continue
		}
		break
	}
	if len(name) == 0 {
		return "", false
	}
	return string(name), true
}

func hasPrefixFold(b []byte, prefix string) bool {
	if len(b) < len(prefix) {
		return false
	}
	return strings.EqualFold(string(b[:len(prefix)]), prefix)
}

// indexFold finds the case-insensitive index of pat in b (pat is ASCII).
func indexFold(b []byte, pat string) int {
	lower := bytes.ToLower(b)
	return bytes.Index(lower, []byte(strings.ToLower(pat)))
}

// entities covers the named entities that matter for news text.
var entities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"mdash":  "—",
	"ndash":  "–",
	"hellip": "…",
	"rsquo":  "'",
	"lsquo":  "'",
	"rdquo":  `"`,
	"ldquo":  `"`,
}

// decodeEntity decodes &name; or &#NNN; at the start of b, returning the
// replacement text and bytes consumed (0 when not an entity).
func decodeEntity(b []byte) (string, int) {
	if len(b) < 3 || b[0] != '&' {
		return "", 0
	}
	end := bytes.IndexByte(b[:min(len(b), 12)], ';')
	if end < 2 {
		return "", 0
	}
	body := string(b[1:end])
	if body[0] == '#' {
		num := body[1:]
		code := 0
		for _, d := range num {
			if d < '0' || d > '9' {
				return "", 0
			}
			code = code*10 + int(d-'0')
			if code > 0x10FFFF {
				return "", 0
			}
		}
		if code == 0 {
			return "", 0
		}
		return string(rune(code)), end + 1
	}
	if rep, ok := entities[body]; ok {
		return rep, end + 1
	}
	return "", 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
