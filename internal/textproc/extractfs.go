package textproc

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"repro/internal/vfs"
)

// ExtractFS derives a text corpus from an HTML corpus by stripping markup
// from every content-backed file — the provenance of the paper's second
// data set, whose 400k text files were "extracted from a subset of HTML
// English language articles". File names keep their path with the
// extension rewritten to .txt; extraction is lazy, so the derived corpus
// is as cheap to hold as the source.
func ExtractFS(in *vfs.FS) (*vfs.FS, error) {
	out := vfs.NewFS()
	for _, f := range in.List() {
		if !f.HasContent() {
			return nil, fmt.Errorf("textproc: cannot extract metadata-only file %q", f.Name)
		}
		// Extraction must happen once eagerly to learn the text size (the
		// corpus abstraction requires it up front), but the bytes are then
		// discarded; re-opens re-extract deterministically.
		src := f
		data, err := src.ReadAll()
		if err != nil {
			return nil, err
		}
		text := ExtractText(data)
		name := rewriteExt(f.Name, ".txt")
		nf := vfs.NewContentFile(name, int64(len(text)), lazyExtract(src))
		if err := out.Add(nf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// lazyExtract re-derives the text from the source file on each open.
func lazyExtract(src vfs.File) vfs.Opener {
	return func() io.Reader {
		data, err := src.ReadAll()
		if err != nil {
			return failedReader{err}
		}
		return bytes.NewReader(ExtractText(data))
	}
}

// failedReader surfaces a deferred open error on first Read.
type failedReader struct{ err error }

func (r failedReader) Read([]byte) (int, error) { return 0, r.err }

// rewriteExt swaps the final extension for ext (appending when none).
func rewriteExt(name, ext string) string {
	slash := strings.LastIndexByte(name, '/')
	dot := strings.LastIndexByte(name, '.')
	if dot > slash {
		return name[:dot] + ext
	}
	return name + ext
}
