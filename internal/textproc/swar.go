package textproc

import (
	"encoding/binary"
	"math/bits"
)

// Word-at-a-time (SWAR) scanning for the streaming analyzer's hottest
// loop: finding the end of a [a-zA-Z0-9'] word run. Eight bytes are
// classified per iteration with pure ALU ops — no per-byte table loads,
// no branches inside the window.
//
// All of the range tricks below are only valid when every byte in the
// word is ASCII (< 0x80): the per-lane additions in ge8 then cannot carry
// into the next lane (max 0x7F + 0x80 = 0xFF). Windows containing a high
// byte fall back to the per-byte table loop, which stops at that byte
// anyway (no byte >= 0x80 is a word byte).

const (
	swarOnes uint64 = 0x0101010101010101
	swarHigh uint64 = 0x8080808080808080
)

// ge8 returns a mask with the high bit of each lane set iff that lane's
// byte is >= c. Valid for ASCII lanes and c <= 0x80 only.
func ge8(x uint64, c byte) uint64 {
	return (x + (0x80-uint64(c))*swarOnes) & swarHigh
}

// wordMask8 returns a mask with the high bit of each lane set iff that
// lane's byte is a word byte ([a-zA-Z0-9']). ASCII lanes only.
func wordMask8(x uint64) uint64 {
	y := x | 0x2020202020202020 // lowercase the letters; digits/apostrophe unaffected
	letter := ge8(y, 'a') &^ ge8(y, 'z'+1)
	digit := ge8(x, '0') &^ ge8(x, '9'+1)
	apos := ge8(x, '\'') &^ ge8(x, '\''+1)
	return letter | digit | apos
}

// wordRunEnd returns the index of the first non-word byte at or after i,
// or len(p) if the run reaches the end. Equivalent to advancing while
// isWordByte(p[i]), eight bytes per step on plain ASCII text.
func wordRunEnd(p []byte, i int) int {
	n := len(p)
	for n-i >= 8 {
		x := binary.LittleEndian.Uint64(p[i:])
		if x&swarHigh != 0 {
			break // high byte in the window: the table loop stops at it
		}
		if m := wordMask8(x); m != swarHigh {
			return i + bits.TrailingZeros64(^m&swarHigh)>>3
		}
		i += 8
	}
	for i < n && isWordByte(p[i]) {
		i++
	}
	return i
}
