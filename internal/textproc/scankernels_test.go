package textproc

import (
	"bytes"
	"strings"
	"testing"
)

// analyzerTexts exercise every tokenizer edge: sentence enders, trailing
// fragments, apostrophes, multi-byte word and punctuation runes, bare
// continuation bytes, and pathological whitespace.
var analyzerTexts = []string{
	"",
	"   \n\t\r  ",
	"Hello world. How are you? I'm fine! trailing fragment",
	"one.two.three...",
	"café déjà-vu — naïve. 北京 is a city. é",
	"words\nacross\nlines\nwith no sentence end",
	"\x80\x80 stray continuation \xC3 lone lead \xC3\xA9 ok",
	"!?.",
	strings.Repeat("a sentence with seven words in it. ", 40),
	"don't can't won't o'clock '''",
}

func TestStreamAnalyzerMatchesAnalyzeAtAnySplit(t *testing.T) {
	for ti, text := range analyzerTexts {
		data := []byte(text)
		want := Analyze(data)
		wantLines := int64(bytes.Count(data, []byte("\n")))
		for _, block := range []int{1, 2, 3, 5, 7, 64, len(data) + 1} {
			a := NewStreamAnalyzer(nil)
			for off := 0; off < len(data); off += block {
				end := off + block
				if end > len(data) {
					end = len(data)
				}
				a.Block(data[off:end])
			}
			st, lines := a.Finish()
			if st != want {
				t.Errorf("text %d block %d: stats %+v, want %+v", ti, block, st, want)
			}
			if lines != wantLines {
				t.Errorf("text %d block %d: lines %d, want %d", ti, block, lines, wantLines)
			}
		}
	}
}

func TestStreamAnalyzerWordCallbackSeesEveryWordToken(t *testing.T) {
	for ti, text := range analyzerTexts {
		data := []byte(text)
		var want []string
		for _, tok := range Tokenize(data) {
			if !tok.Punct {
				want = append(want, tok.Text)
			}
		}
		for _, block := range []int{1, 3, 64} {
			var got []string
			a := NewStreamAnalyzer(func(w []byte) { got = append(got, string(w)) })
			for off := 0; off < len(data); off += block {
				end := off + block
				if end > len(data) {
					end = len(data)
				}
				a.Block(data[off:end])
			}
			a.Finish()
			if len(got) != len(want) {
				t.Fatalf("text %d block %d: %d words, want %d (%q vs %q)",
					ti, block, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("text %d block %d word %d: %q, want %q", ti, block, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamAnalyzerResetClearsState(t *testing.T) {
	a := NewStreamAnalyzer(nil)
	a.Block([]byte("unfinished word and sen"))
	a.Reset()
	a.Block([]byte("two words."))
	st, _ := a.Finish()
	want := Analyze([]byte("two words."))
	if st != want {
		t.Fatalf("after Reset: %+v, want %+v", st, want)
	}
}

func TestTaggerKnownWordMatchesLexiconMembership(t *testing.T) {
	tagger := NewTagger()
	words := []string{
		"the", "The", "THE", "and", "zzzgibberish", "Errors",
		"café", "O'Clock", "naïve", "12",
		strings.Repeat("Long", 40), // > 64 bytes with uppercase
	}
	for _, w := range words {
		want := func() bool {
			_, ok := tagger.lex[lowerWord(w)]
			return ok
		}()
		if got := tagger.KnownWord([]byte(w)); got != want {
			t.Errorf("KnownWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTaggerKnownWordDoesNotAllocate(t *testing.T) {
	tagger := NewTagger()
	word := []byte("Window") // forces the fold path
	allocs := testing.AllocsPerRun(100, func() {
		tagger.KnownWord(word)
		tagger.KnownWord([]byte("the")[:3])
	})
	if allocs > 0 {
		t.Errorf("KnownWord allocates %.1f per run, want 0", allocs)
	}
}
