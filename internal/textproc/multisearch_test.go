package textproc

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiSearcherMatchesSearcherPerPattern(t *testing.T) {
	patterns := []string{"ab", "abab", "ba", "b", "xyz", "aa"}
	texts := []string{
		"",
		"a",
		"ababab",
		"aaaa",
		"the ability of a crab to grab a kebab",
		strings.Repeat("ab", 500) + "xyz" + strings.Repeat("ba", 300),
	}
	ms, err := NewMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range texts {
		got := ms.CountBytes([]byte(text))
		for i, p := range patterns {
			s, err := NewSearcher(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.CountBytes([]byte(text)); got[i] != want {
				t.Errorf("text %.20q pattern %q: %d, want %d", text, p, got[i], want)
			}
		}
	}
}

func TestMultiSearcherOverlappingCounts(t *testing.T) {
	ms, err := NewMultiSearcher([]string{"aa"})
	if err != nil {
		t.Fatal(err)
	}
	// Overlaps all count: "aaaa" holds three "aa", same as Searcher.
	if got := ms.CountBytes([]byte("aaaa"))[0]; got != 3 {
		t.Fatalf("overlapping count = %d, want 3", got)
	}
}

func TestMultiSearcherBlockSplitInvariance(t *testing.T) {
	patterns := []string{"needle", "edl", "ene", "needleneedle"}
	text := bytes.Repeat([]byte("a needleneedle in a haystackneedle "), 20)
	ms, err := NewMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	want := ms.CountBytes(text)
	for _, block := range []int{1, 2, 3, 5, 7, 64} {
		counts := make([]int64, ms.NumPatterns())
		st := ms.Start()
		for off := 0; off < len(text); off += block {
			end := off + block
			if end > len(text) {
				end = len(text)
			}
			st = ms.Feed(st, text[off:end], counts)
		}
		for i := range want {
			if counts[i] != want[i] {
				t.Fatalf("block=%d pattern %q: %d, want %d (boundary straddle lost)",
					block, patterns[i], counts[i], want[i])
			}
		}
	}
}

func TestMultiSearcherCountReader(t *testing.T) {
	ms, err := NewMultiSearcher([]string{"one", "two"})
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Repeat("one two twone ", 10000) // spans several windows
	got, err := ms.CountReader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := ms.CountBytes([]byte(text))
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("CountReader %v, want %v", got, want)
	}
}

func TestMultiSearcherRejectsBadPatterns(t *testing.T) {
	if _, err := NewMultiSearcher(nil); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := NewMultiSearcher([]string{"ok", ""}); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestFoldedMultiSearcherFoldsASCIIOnly(t *testing.T) {
	ms, err := NewFoldedMultiSearcher([]string{"AbC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.CountBytes([]byte("abc ABC aBc abd"))[0]; got != 3 {
		t.Fatalf("folded count = %d, want 3", got)
	}
}
