package textproc

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiSearcherMatchesSearcherPerPattern(t *testing.T) {
	patterns := []string{"ab", "abab", "ba", "b", "xyz", "aa"}
	texts := []string{
		"",
		"a",
		"ababab",
		"aaaa",
		"the ability of a crab to grab a kebab",
		strings.Repeat("ab", 500) + "xyz" + strings.Repeat("ba", 300),
	}
	ms, err := NewMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range texts {
		got := ms.CountBytes([]byte(text))
		for i, p := range patterns {
			s, err := NewSearcher(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := s.CountBytes([]byte(text)); got[i] != want {
				t.Errorf("text %.20q pattern %q: %d, want %d", text, p, got[i], want)
			}
		}
	}
}

func TestMultiSearcherOverlappingCounts(t *testing.T) {
	ms, err := NewMultiSearcher([]string{"aa"})
	if err != nil {
		t.Fatal(err)
	}
	// Overlaps all count: "aaaa" holds three "aa", same as Searcher.
	if got := ms.CountBytes([]byte("aaaa"))[0]; got != 3 {
		t.Fatalf("overlapping count = %d, want 3", got)
	}
}

func TestMultiSearcherBlockSplitInvariance(t *testing.T) {
	patterns := []string{"needle", "edl", "ene", "needleneedle"}
	text := bytes.Repeat([]byte("a needleneedle in a haystackneedle "), 20)
	ms, err := NewMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	want := ms.CountBytes(text)
	for _, block := range []int{1, 2, 3, 5, 7, 64} {
		counts := make([]int64, ms.NumPatterns())
		st := ms.Start()
		for off := 0; off < len(text); off += block {
			end := off + block
			if end > len(text) {
				end = len(text)
			}
			st = ms.Feed(st, text[off:end], counts)
		}
		for i := range want {
			if counts[i] != want[i] {
				t.Fatalf("block=%d pattern %q: %d, want %d (boundary straddle lost)",
					block, patterns[i], counts[i], want[i])
			}
		}
	}
}

func TestMultiSearcherCountReader(t *testing.T) {
	ms, err := NewMultiSearcher([]string{"one", "two"})
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Repeat("one two twone ", 10000) // spans several windows
	got, err := ms.CountReader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := ms.CountBytes([]byte(text))
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("CountReader %v, want %v", got, want)
	}
}

func TestMultiSearcherRejectsBadPatterns(t *testing.T) {
	if _, err := NewMultiSearcher(nil); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := NewMultiSearcher([]string{"ok", ""}); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestFoldedMultiSearcherFoldsASCIIOnly(t *testing.T) {
	ms, err := NewFoldedMultiSearcher([]string{"AbC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.CountBytes([]byte("abc ABC aBc abd"))[0]; got != 3 {
		t.Fatalf("folded count = %d, want 3", got)
	}
}

// randTexts builds a deterministic mix of pattern-dense and pattern-free
// byte strings (including non-ASCII bytes) for differential runs.
func randTexts(patterns []string) [][]byte {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var texts [][]byte
	for n := 0; n < 24; n++ {
		size := int(next() % 3000)
		buf := make([]byte, 0, size+16)
		for len(buf) < size {
			switch next() % 4 {
			case 0: // embed a pattern, sometimes case-twisted
				p := patterns[next()%uint64(len(patterns))]
				for i := 0; i < len(p); i++ {
					c := p[i]
					if next()%3 == 0 && c >= 'a' && c <= 'z' {
						c -= 'a' - 'A'
					}
					buf = append(buf, c)
				}
			case 1: // plain ASCII filler
				buf = append(buf, byte('a'+next()%26))
			case 2: // spaces and punctuation
				buf = append(buf, " .,;\n\t!?"[next()%8])
			default: // arbitrary bytes incl. >= 0x80
				buf = append(buf, byte(next()))
			}
		}
		texts = append(texts, buf)
	}
	texts = append(texts, nil, []byte("x"), bytes.Repeat([]byte{0xff, 0x00}, 512))
	return texts
}

// TestMultiSearcherMatchesReference differentially pins the reworked hot
// loop (bitmap, flat outputs, hot/cold interleave, root skip) against the
// frozen pre-rework walk, exact and folded, contiguous and at hostile
// block splits.
func TestMultiSearcherMatchesReference(t *testing.T) {
	patternSets := [][]string{
		{"the"},                               // single pattern, single start byte
		{"the", "and", "president", "market"}, // bench-style words
		{"ab", "abab", "ba", "b", "aa"},       // dense overlaps
		{"\xff\xfe", "\x00"},                  // non-ASCII start bytes
		{"a", "A"},                            // fold-colliding pair
	}
	for _, patterns := range patternSets {
		for _, folded := range []bool{false, true} {
			ref, err := newReferenceMultiSearcher(patterns, folded)
			if err != nil {
				t.Fatal(err)
			}
			// Both engines are pinned: the bitap searcher as constructed
			// (all these sets are eligible), and the automaton engine by
			// clearing the dispatch flag — the AC tables are always built.
			for _, forceAC := range []bool{false, true} {
				fast, err := newMultiSearcher(patterns, folded)
				if err != nil {
					t.Fatal(err)
				}
				if forceAC {
					fast.bitap = false
				} else if !fast.bitap {
					t.Fatalf("patterns %q should be bitap-eligible", patterns)
				}
				for ti, text := range randTexts(patterns) {
					want := ref.CountBytes(text)
					if got := fast.CountBytes(text); !equalCounts(got, want) {
						t.Fatalf("patterns %q folded=%v forceAC=%v text #%d: fast %v, want %v",
							patterns, folded, forceAC, ti, got, want)
					}
					for _, block := range []int{1, 3, 7, 64} {
						counts := make([]int64, fast.NumPatterns())
						st := fast.Start()
						for off := 0; off < len(text); off += block {
							end := off + block
							if end > len(text) {
								end = len(text)
							}
							st = fast.Feed(st, text[off:end], counts)
						}
						if !equalCounts(counts, want) {
							t.Fatalf("patterns %q folded=%v forceAC=%v text #%d block=%d: fast %v, want %v",
								patterns, folded, forceAC, ti, block, counts, want)
						}
					}
				}
			}
		}
	}
}

func equalCounts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMultiSearcherSkipLoopSetup pins the root-skip configuration: a
// single fold-invariant start byte enables IndexByte, a letter start byte
// under folding must not (uppercase inputs fold onto it), and the start
// set matches the distinct first bytes.
func TestMultiSearcherSkipLoopSetup(t *testing.T) {
	ms, _ := NewMultiSearcher([]string{"needle", "nose"})
	if ms.soloStart != int16('n') || ms.startBytes() != 1 {
		t.Fatalf("exact single start byte: soloStart=%d startBytes=%d, want 'n'/1",
			ms.soloStart, ms.startBytes())
	}
	ms, _ = NewFoldedMultiSearcher([]string{"needle"})
	if ms.soloStart != -1 {
		t.Fatalf("folded letter start byte must not use IndexByte (misses 'N'), got soloStart=%d", ms.soloStart)
	}
	if got := ms.CountBytes([]byte("Needle needle NEEDLE")); got[0] != 3 {
		t.Fatalf("folded skip loop count = %d, want 3", got[0])
	}
	ms, _ = NewFoldedMultiSearcher([]string{"0ops"})
	if ms.soloStart != int16('0') {
		t.Fatalf("folded non-letter start byte should use IndexByte, got soloStart=%d", ms.soloStart)
	}
	ms, _ = NewMultiSearcher([]string{"alpha", "beta", "gamma"})
	if ms.soloStart != -1 || ms.startBytes() != 3 {
		t.Fatalf("three start bytes: soloStart=%d startBytes=%d, want -1/3",
			ms.soloStart, ms.startBytes())
	}
}

// TestMultiSearcherHotColdBoundary forces an automaton bigger than the
// hot region so the cold state-major table is exercised, and checks the
// deep walk still matches the reference.
func TestMultiSearcherHotColdBoundary(t *testing.T) {
	// ~40 patterns x ~12 bytes ≈ 480 states: well past hotN=256.
	var patterns []string
	for i := 0; i < 40; i++ {
		patterns = append(patterns, strings.Repeat(string(rune('a'+i%26)), 3)+"suffixtail"+string(rune('a'+i%26)))
	}
	fast, err := NewMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumStates() <= int(fast.hotN) {
		t.Fatalf("automaton too small to exercise cold table: %d states, hotN=%d",
			fast.NumStates(), fast.hotN)
	}
	ref, err := NewReferenceMultiSearcher(patterns)
	if err != nil {
		t.Fatal(err)
	}
	text := []byte(strings.Join(patterns, " filler ") + " aaasuffixtaila bbbsuffixtail")
	if got, want := fast.CountBytes(text), ref.CountBytes(text); !equalCounts(got, want) {
		t.Fatalf("deep automaton: fast %v, want %v", got, want)
	}
}
