package textproc

import (
	"strings"
	"testing"
	"unicode"
)

// tokenizeReference is the pre-optimisation tokenizer — one string copy per
// token, append-grown slice — kept as the behavioural reference and the
// allocation baseline for BenchmarkTokenizeReference.
func tokenizeReference(text []byte) []Token {
	var tokens []Token
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\n' || c == '\t' || c == '\r':
			i++
		case isWordByte(c):
			start := i
			for i < n && isWordByte(text[i]) {
				i++
			}
			tokens = append(tokens, Token{Text: string(text[start:i]), Start: start})
		default:
			start := i
			i++
			for i < n && text[i]&0xC0 == 0x80 {
				i++
			}
			r := []rune(string(text[start:i]))
			punct := true
			if len(r) == 1 && (unicode.IsLetter(r[0]) || unicode.IsDigit(r[0])) {
				punct = false
			}
			tokens = append(tokens, Token{Text: string(text[start:i]), Start: start, Punct: punct})
		}
	}
	return tokens
}

func TestTokenizeMatchesReference(t *testing.T) {
	cases := []string{
		"",
		"plain words only",
		"It's a test, isn't it? Yes! No...",
		"tabs\tand\nnewlines\r\nmixed  spaces",
		"digits 123 mixed42 '' ' lone",
		"unicode: café über €100 —dash— 世界",
		"\x80 stray continuation \xff invalid",
		strings.Repeat("The quick brown fox, jumps! Over 9 lazy dogs? ", 50),
	}
	for _, s := range cases {
		got := Tokenize([]byte(s))
		want := tokenizeReference([]byte(s))
		if len(got) != len(want) {
			t.Fatalf("%q: %d tokens != reference %d", s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q token %d: %+v != reference %+v", s, i, got[i], want[i])
			}
		}
	}
}

func benchText(n int) []byte {
	s := strings.Repeat("The planner merges small files, into larger units! Costs drop 5x. ", n/66+1)
	return []byte(s[:n])
}

func BenchmarkTokenizeOptimized(b *testing.B) {
	text := benchText(100_000)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkTokenizeReference(b *testing.B) {
	text := benchText(100_000)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokenizeReference(text)
	}
}
