package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/errs"
)

// Journal is the coordinator's checkpoint: an append-only on-disk log
// of completed task states, so a run killed partway (coordinator crash,
// SIGKILL, power loss) can resume and re-scan only the tasks that never
// finished. It records exactly what the merge frontier folds — each
// task's serialized kernel states (scan.StateCodec snapshots) — so a
// resumed run folds the journaled states through the identical
// Fork→Restore→Merge path and its output is bit-identical to an
// uninterrupted run.
//
// Format (all integers little-endian, checksums FNV-64a):
//
//	header:  magic "RJRNLv1\n" | plan fingerprint u64 | spec length u32 |
//	         spec JSON | header checksum u64 (over fingerprint + spec)
//	record:  "JREC" | task u32 | state count u32 |
//	         per state: length u32 | bytes | record checksum u64
//	         (over everything after the record magic)
//
// The header pins the journal to one (plan, spec): resuming against a
// different corpus or kernel set refuses with ErrInvalid instead of
// folding foreign states. Like packstore's Recover, loading tolerates a
// torn tail — a record cut short by the crash that made the journal
// useful is dropped and the file truncated to the last complete record —
// but corruption *before* the tail is a loud ErrCorrupt.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	resumed  map[int][][]byte
	appended int
	closed   bool
}

const journalMagic = "RJRNLv1\n"
const journalRecMagic = "JREC"

// fnv64a over b, continuing from h (offset basis for a fresh sum).
func journalFold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

const journalFNVOffset = 14695981039346656037

func journalU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func journalU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func journalReadU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func journalReadU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// journalHeader builds the serialized header for (planFP, spec).
func journalHeader(planFP uint64, spec Spec) ([]byte, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, errs.Invalid("dist: journal: encoding spec: %v", err)
	}
	buf := make([]byte, 0, len(journalMagic)+8+4+len(specJSON)+8)
	buf = append(buf, journalMagic...)
	var u [8]byte
	journalU64(u[:], planFP)
	buf = append(buf, u[:]...)
	var l [4]byte
	journalU32(l[:], uint32(len(specJSON)))
	buf = append(buf, l[:]...)
	buf = append(buf, specJSON...)
	sum := journalFold(journalFold(journalFNVOffset, u[:]), specJSON)
	journalU64(u[:], sum)
	buf = append(buf, u[:]...)
	return buf, nil
}

// CreateJournal starts a fresh checkpoint at path for (planFP, spec),
// truncating any existing file — the "start over" mode `pipeline
// -checkpoint` uses when -resume is not given.
func CreateJournal(path string, planFP uint64, spec Spec) (*Journal, error) {
	hdr, err := journalHeader(planFP, spec)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: journal %s: writing header: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path, resumed: map[int][][]byte{}}, nil
}

// OpenJournal resumes the checkpoint at path: it validates the header
// against (planFP, spec) — a mismatch is ErrInvalid, never a silent
// fold of foreign states — loads every complete record, drops a torn
// tail (truncating the file to the last complete record so appends
// continue cleanly), and reports non-tail corruption as ErrCorrupt. A
// missing or empty file starts a fresh journal, so `pipeline -resume`
// works on the first run too.
func OpenJournal(path string, planFP uint64, spec Spec) (*Journal, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) || (err == nil && len(raw) == 0) {
		return CreateJournal(path, planFP, spec)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	wantHdr, err := journalHeader(planFP, spec)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		return nil, errs.Corrupt("dist: journal %s: bad magic", path)
	}
	hdr, err := parseJournalHeader(path, raw)
	if err != nil {
		return nil, err
	}
	if string(raw[:len(hdr)]) != string(wantHdr) {
		return nil, errs.Invalid(
			"dist: journal %s belongs to a different run (plan fingerprint or spec mismatch)", path)
	}
	resumed, goodEnd, err := parseJournalRecords(path, raw, len(hdr))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	if err := f.Truncate(int64(goodEnd)); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: journal %s: truncating torn tail: %w", path, err)
	}
	if _, err := f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path, resumed: resumed}, nil
}

// parseJournalHeader validates structure and checksum, returning the
// full header bytes (identity comparison is the caller's).
func parseJournalHeader(path string, raw []byte) ([]byte, error) {
	off := len(journalMagic)
	if len(raw) < off+8+4 {
		return nil, errs.Corrupt("dist: journal %s: truncated header", path)
	}
	specLen := int(journalReadU32(raw[off+8:]))
	end := off + 8 + 4 + specLen + 8
	if specLen > len(raw) || end > len(raw) {
		return nil, errs.Corrupt("dist: journal %s: truncated header", path)
	}
	sum := journalFold(journalFold(journalFNVOffset, raw[off:off+8]), raw[off+12:off+12+specLen])
	if journalReadU64(raw[end-8:]) != sum {
		return nil, errs.Corrupt("dist: journal %s: header checksum mismatch", path)
	}
	return raw[:end], nil
}

// parseJournalRecords walks the record region. A clean cut at the tail
// (crash mid-append) stops the walk; a checksum mismatch on a complete
// record is corruption and fails the load. Duplicate task records keep
// the first occurrence — it is the one an interrupted run's frontier
// may already have folded.
func parseJournalRecords(path string, raw []byte, start int) (map[int][][]byte, int, error) {
	resumed := map[int][][]byte{}
	off := start
	for off < len(raw) {
		recStart := off
		if len(raw)-off < len(journalRecMagic)+4+4 {
			return resumed, recStart, nil // torn tail
		}
		if string(raw[off:off+len(journalRecMagic)]) != journalRecMagic {
			return nil, 0, errs.Corrupt("dist: journal %s: bad record magic at offset %d", path, off)
		}
		off += len(journalRecMagic)
		body := off
		task := int(journalReadU32(raw[off:]))
		nstates := int(journalReadU32(raw[off+4:]))
		off += 8
		states := make([][]byte, 0, nstates)
		torn := false
		for s := 0; s < nstates; s++ {
			if len(raw)-off < 4 {
				torn = true
				break
			}
			n := int(journalReadU32(raw[off:]))
			off += 4
			if len(raw)-off < n {
				torn = true
				break
			}
			states = append(states, append([]byte(nil), raw[off:off+n]...))
			off += n
		}
		if torn || len(raw)-off < 8 {
			return resumed, recStart, nil // torn tail
		}
		sum := journalFold(journalFNVOffset, raw[body:off])
		if journalReadU64(raw[off:]) != sum {
			// A bad checksum on the *last* record is a torn/garbled tail —
			// drop it. Anywhere else it is mid-file corruption.
			if off+8 == len(raw) {
				return resumed, recStart, nil
			}
			return nil, 0, errs.Corrupt("dist: journal %s: record checksum mismatch at offset %d", path, recStart)
		}
		off += 8
		if _, dup := resumed[task]; !dup {
			resumed[task] = states
		}
	}
	return resumed, off, nil
}

// States returns the journaled task results loaded at open: task index →
// kernel state snapshots. The map is the journal's own; callers must
// not mutate it.
func (j *Journal) States() map[int][][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// Len reports how many completed tasks the journal holds (resumed plus
// appended this run).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.resumed) + j.appended
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably records one completed task's kernel states: the write
// is synced before returning, so a journal entry implies the states
// survive a crash. Called by the coordinator the moment a task wins;
// a failed append fails the run (a checkpoint that silently loses
// entries is worse than none).
func (j *Journal) Append(task int, states [][]byte) error {
	size := len(journalRecMagic) + 4 + 4 + 8
	for _, s := range states {
		size += 4 + len(s)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, journalRecMagic...)
	var u [8]byte
	journalU32(u[:4], uint32(task))
	buf = append(buf, u[:4]...)
	journalU32(u[:4], uint32(len(states)))
	buf = append(buf, u[:4]...)
	for _, s := range states {
		journalU32(u[:4], uint32(len(s)))
		buf = append(buf, u[:4]...)
		buf = append(buf, s...)
	}
	sum := journalFold(journalFNVOffset, buf[len(journalRecMagic):])
	journalU64(u[:], sum)
	buf = append(buf, u[:]...)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errs.Invalid("dist: journal %s: append after close", j.path)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("dist: journal %s: appending task %d: %w", j.path, task, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal %s: syncing task %d: %w", j.path, task, err)
	}
	j.appended++
	return nil
}

// Close releases the journal file. The file itself stays on disk — it
// is the resume artifact.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
