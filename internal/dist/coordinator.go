package dist

import (
	"context"
	"errors"
	"sync"

	"repro/internal/errs"
	"repro/internal/scan"
)

// Options configures a coordinated run.
type Options struct {
	// MaxAttempts caps how many workers may attempt one task — the first
	// dispatch plus steals and re-dispatches (0 = DefaultMaxAttempts).
	// A task that exhausts its attempts fails the run rather than loop.
	MaxAttempts int
	// ScanWorkers bounds each worker's per-task scan fan-out
	// (0 = GOMAXPROCS on the worker).
	ScanWorkers int
	// BlockSize pins the workers' streaming window (0 = default). Block
	// splits never change results; pinning it keeps instrumented runs
	// exactly reproducible.
	BlockSize int
}

// DefaultMaxAttempts allows the initial dispatch plus two recoveries.
const DefaultMaxAttempts = 3

// WorkerStats reports one worker's share of a completed run.
type WorkerStats struct {
	// Name is the worker's self-reported identity.
	Name string
	// Started counts task attempts the worker began.
	Started int
	// Won counts attempts whose result the merge frontier used; losing
	// speculative attempts count in Started only.
	Won int
	// Stolen counts attempts that speculated on a task already running
	// elsewhere.
	Stolen int
	// Dead reports that the worker stopped answering (ErrUnavailable or
	// a transport failure mapped onto it) and left the run; any task it
	// was running was re-dispatched.
	Dead bool
}

// coordinator is the shared state the per-worker loops contend on. All
// fields are guarded by mu; cond wakes waiting loops when a task
// completes, a task is requeued, or the run is over.
type coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	tasks       []taskState
	done        int // completed tasks
	maxAttempts int

	// frontier is the next task to fold: results are merged into the
	// prototypes strictly in task order, exactly like the scan engine's
	// per-file merge frontier, so the distributed fold is bit-identical
	// to the in-process one.
	frontier int
	protos   []scan.Kernel

	// fatalErr is the run's verdict on task failure: the error from the
	// lowest failing task index, mirroring par.Pool's contract so
	// single-node and distributed runs report the same error for the
	// same fault.
	fatalErr  error
	fatalTask int

	// cancelled is set when the run context ends; loops drain out.
	cancelled bool
}

type taskState struct {
	running  int // attempts in flight right now
	attempts int // attempts ever started
	done     bool
	states   [][]byte // winning result, nil once folded
}

func (c *coordinator) finished() bool {
	return c.done == len(c.tasks) || c.fatalErr != nil || c.cancelled
}

func (c *coordinator) fail(task int, err error) {
	if c.fatalErr == nil || task < c.fatalTask {
		c.fatalErr = err
		c.fatalTask = task
	}
}

// pick chooses the worker's next task under mu: the lowest-index task
// nobody is running (fresh, or requeued after its worker died), else —
// work stealing — the lowest-index unfinished task still within its
// attempt budget, speculating against a possibly-slow owner. The first
// completed attempt wins; the loser's result is discarded.
func (c *coordinator) pick() (task int, steal, ok bool) {
	for i := range c.tasks {
		t := &c.tasks[i]
		if !t.done && t.running == 0 && t.attempts < c.maxAttempts {
			return i, false, true
		}
	}
	for i := range c.tasks {
		t := &c.tasks[i]
		if !t.done && t.attempts < c.maxAttempts {
			return i, true, true
		}
	}
	return 0, false, false
}

// anyRunning reports whether some attempt is still in flight.
func (c *coordinator) anyRunning() bool {
	for i := range c.tasks {
		if c.tasks[i].running > 0 {
			return true
		}
	}
	return false
}

// advanceFrontier folds every contiguously-completed task's states into
// the prototypes, in task order: fork the prototype, restore the
// portable state into the fork, merge — the exact in-process fold with a
// Restore spliced in. Called under mu; Merge is never concurrent, per
// the kernel contract.
func (c *coordinator) advanceFrontier() {
	for c.frontier < len(c.tasks) && c.tasks[c.frontier].done {
		t := &c.tasks[c.frontier]
		if len(t.states) != len(c.protos) {
			c.fail(c.frontier, errs.Invalid("dist: task %d returned %d kernel states, want %d",
				c.frontier, len(t.states), len(c.protos)))
			return
		}
		for j, proto := range c.protos {
			fork := proto.Fork()
			if err := scan.RestoreKernel(fork, t.states[j]); err != nil {
				c.fail(c.frontier, err)
				return
			}
			proto.Merge(fork)
		}
		t.states = nil
		c.frontier++
	}
}

// Run distributes the plan's tasks across the workers and folds their
// kernel states into the prototypes in task order. On success the
// prototypes hold exactly what scan.Execute over the full plan would
// have left in them — bit-identical by the portable-state and
// associative-fold contracts — and the stats describe who did what
// (stats are returned for failed runs too, for diagnostics). On failure
// the prototypes hold an unspecified prefix and must be discarded; the
// error is the lowest-task-index failure, with cancellation mapped
// through the errs sentinels per the scan determinism contract.
func Run(ctx context.Context, plan *scan.Plan, spec Spec, workers []Worker, opts Options, protos ...scan.Kernel) ([]WorkerStats, error) {
	if len(workers) == 0 {
		return nil, errs.Invalid("dist: no workers")
	}
	if len(protos) == 0 {
		return nil, errs.Invalid("dist: no kernels registered")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}

	c := &coordinator{
		tasks:       make([]taskState, len(plan.Tasks)),
		maxAttempts: maxAttempts,
		protos:      protos,
	}
	c.cond = sync.NewCond(&c.mu)
	stats := make([]WorkerStats, len(workers))
	for i, w := range workers {
		stats[i] = WorkerStats{Name: w.Name()}
	}

	// A context watcher flips the run into draining: waiting loops wake
	// and exit, in-flight Scan calls unwind through their own ctx.
	stopWatch := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cancelled = true
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stopWatch()

	planFP := plan.Fingerprint()
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w Worker) {
			defer wg.Done()
			st := &stats[wi]
			for {
				c.mu.Lock()
				var task int
				var steal bool
				for {
					if c.finished() {
						c.mu.Unlock()
						return
					}
					var ok bool
					if task, steal, ok = c.pick(); ok {
						break
					}
					if !c.anyRunning() {
						// Every unfinished task has exhausted its attempt
						// budget and nobody is still trying: the run cannot
						// make progress.
						for i := range c.tasks {
							if !c.tasks[i].done {
								c.fail(i, errs.Unavailable("dist: task %d failed %d attempts", i, c.tasks[i].attempts))
								break
							}
						}
						c.cond.Broadcast()
						c.mu.Unlock()
						return
					}
					c.cond.Wait()
				}
				t := &c.tasks[task]
				t.running++
				t.attempts++
				st.Started++
				if steal {
					st.Stolen++
				}
				c.mu.Unlock()

				resp, err := w.Scan(ctx, &ScanRequest{
					PlanFP:      planFP,
					Spec:        spec,
					Task:        task,
					ScanWorkers: opts.ScanWorkers,
					BlockSize:   opts.BlockSize,
				})

				c.mu.Lock()
				t.running--
				switch {
				case err != nil && ctx.Err() != nil:
					// The run is being cancelled; the error is just that
					// cancellation echoing back.
					c.cancelled = true
				case errors.Is(err, errs.ErrUnavailable):
					// The worker is gone. Its decrement above requeues the
					// task (running is back to 0, done is not set); the
					// broadcast hands it to whoever is idle. This loop exits
					// — a dead worker gets no more work.
					st.Dead = true
					c.cond.Broadcast()
					c.mu.Unlock()
					return
				case err != nil:
					// A real task failure (corrupt shard, invalid request):
					// deterministic, so retrying elsewhere would fail the
					// same way. Record at this task's index and stop the run.
					c.fail(task, err)
				case !t.done:
					t.done = true
					t.states = resp.States
					c.done++
					st.Won++
					c.advanceFrontier()
				}
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		}(wi, w)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.fatalErr != nil:
		return stats, c.fatalErr
	case ctx.Err() != nil:
		return stats, errs.FromContext(ctx)
	case c.done < len(c.tasks):
		// Every worker loop exited (all dead) with work outstanding.
		return stats, errs.Unavailable("dist: all %d workers unavailable with %d of %d tasks unfinished",
			len(workers), len(c.tasks)-c.done, len(c.tasks))
	}
	return stats, nil
}
