package dist

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/errs"
	"repro/internal/retry"
	"repro/internal/scan"
)

// Options configures a coordinated run.
type Options struct {
	// MaxAttempts caps how many coordinator-level attempts one task may
	// consume — the first dispatch plus steals and re-dispatches
	// (0 = DefaultMaxAttempts). Per-attempt transient retries (Retry)
	// are separate: one attempt may retry the same worker several times.
	// A task that exhausts its attempts fails the run rather than loop.
	MaxAttempts int
	// ScanWorkers bounds each worker's per-task scan fan-out
	// (0 = GOMAXPROCS on the worker).
	ScanWorkers int
	// BlockSize pins the workers' streaming window (0 = default). Block
	// splits never change results; pinning it keeps instrumented runs
	// exactly reproducible.
	BlockSize int

	// Retry shapes the per-attempt transient-failure loop: a worker
	// whose Scan fails retryably (errs.IsRetryable — ErrUnavailable,
	// refused connections, timeouts) is retried in place with
	// exponential backoff + full jitter before the coordinator gives the
	// task away. The zero value uses retry's defaults; Seed is mixed
	// with the worker name so fleets do not back off in lockstep.
	Retry retry.Policy
	// RetryBudget caps total transient retries across the whole run
	// (0 = DefaultRetryBudget, negative = unlimited), so a systemic
	// fault fails loudly instead of stalling exponentially.
	RetryBudget int
	// Health configures worker health gating: trip, quarantine, probe,
	// re-admission.
	Health HealthOptions
	// AllowPartial degrades instead of aborting when a task fails
	// deterministically with ErrCorrupt: the task is skipped, the rest
	// of the plan completes, and the Report carries an explicit manifest
	// of what was left out. Without it a corrupt shard fails the run.
	AllowPartial bool
	// Journal, when set, checkpoints every completed task's kernel
	// states and pre-loads tasks the journal already holds, so a killed
	// coordinator resumes instead of rescanning — bit-identically, since
	// the journaled states fold through the same frontier.
	Journal *Journal
}

// Defaults for Options' zero fields.
const (
	// DefaultMaxAttempts allows the initial dispatch plus two recoveries.
	DefaultMaxAttempts = 3
	// DefaultRetryBudget bounds total transient retries per run.
	DefaultRetryBudget = 64
)

// HealthOptions tunes the consecutive-failure trip and the
// quarantine/probe/re-admission loop that replaced the engine's old
// permanent-death model: a worker that keeps failing is quarantined
// (gets no work), probed periodically, and either re-admitted when a
// probe succeeds or declared dead when MaxProbes all fail.
type HealthOptions struct {
	// TripAfter is the consecutive exhausted-retry failure count that
	// quarantines a worker (0 = DefaultTripAfter).
	TripAfter int
	// ProbeInterval spaces the quarantine probes (0 = DefaultProbeInterval).
	ProbeInterval time.Duration
	// MaxProbes is how many probes a quarantined worker gets before it
	// is declared dead for the rest of the run (0 = DefaultMaxProbes).
	MaxProbes int
}

// Health gating defaults.
const (
	DefaultTripAfter     = 2
	DefaultProbeInterval = 50 * time.Millisecond
	DefaultMaxProbes     = 3
)

func (h HealthOptions) withDefaults() HealthOptions {
	if h.TripAfter <= 0 {
		h.TripAfter = DefaultTripAfter
	}
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = DefaultProbeInterval
	}
	if h.MaxProbes <= 0 {
		h.MaxProbes = DefaultMaxProbes
	}
	return h
}

// HealthChecker is the optional probe surface of a Worker: Probe
// reports nil when the worker can take work again. HTTPWorker probes
// GET /healthz; Local consults its test hook (healthy by default).
// Workers without the interface are assumed healthy — their quarantine
// ends at the first probe tick.
type HealthChecker interface {
	Probe(ctx context.Context) error
}

// WorkerStats reports one worker's share of a completed run.
type WorkerStats struct {
	// Name is the worker's self-reported identity.
	Name string
	// Started counts task attempts the worker began.
	Started int
	// Won counts attempts whose result the merge frontier used; losing
	// speculative attempts count in Started only.
	Won int
	// Stolen counts attempts that speculated on a task already running
	// elsewhere.
	Stolen int
	// Retries counts transient same-worker retries spent on this worker.
	Retries int
	// Quarantines counts how many times the worker tripped the health
	// gate and was benched for probing.
	Quarantined int
	// Dead reports the worker failed its quarantine probes (or the run
	// ended while it was benched) and left the run for good; any task it
	// was running was re-dispatched.
	Dead bool
}

// SkippedTask is one entry of a degraded run's manifest: a task the
// coordinator abandoned under AllowPartial because its data is corrupt,
// with enough identity (shard, file count, bytes) for the operator to
// quarantine and repair the shard.
type SkippedTask struct {
	// Task is the plan task index.
	Task int
	// Shard is the pack shard the task scans ("" for shard-less tasks).
	Shard string
	// Files and Bytes describe the skipped slice of the corpus.
	Files int
	Bytes int64
	// Reason is the corruption error that condemned the task.
	Reason string
}

// Report describes a completed (or failed) run: who did what, what was
// retried, what was resumed from the checkpoint, and — for degraded
// runs — exactly what was skipped.
type Report struct {
	// Workers holds per-worker tallies, in fleet order.
	Workers []WorkerStats
	// Skipped is the degraded manifest, sorted by task index. Empty on
	// full runs.
	Skipped []SkippedTask
	// Retries totals the transient same-worker retries across the run.
	Retries int
	// Resumed counts tasks whose states were loaded from the journal
	// instead of scanned.
	Resumed int
}

// Degraded reports whether the run skipped any tasks — the result is a
// partial measurement and must be labelled as such.
func (r *Report) Degraded() bool { return len(r.Skipped) > 0 }

// coordinator is the shared state the per-worker loops contend on. All
// fields are guarded by mu; cond wakes waiting loops when a task
// completes, a task is requeued, or the run is over.
type coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	tasks       []taskState
	done        int // completed tasks (won, resumed or skipped)
	maxAttempts int

	// frontier is the next task to fold: results are merged into the
	// prototypes strictly in task order, exactly like the scan engine's
	// per-file merge frontier, so the distributed fold is bit-identical
	// to the in-process one. Skipped tasks are stepped over — their
	// absence, not some placeholder, is what makes the result partial.
	frontier int
	protos   []scan.Kernel

	rep     *Report
	journal *Journal
	allow   bool // AllowPartial

	// fatalErr is the run's verdict on task failure: the error from the
	// lowest failing task index, mirroring par.Pool's contract so
	// single-node and distributed runs report the same error for the
	// same fault.
	fatalErr  error
	fatalTask int

	// cancelled is set when the run context ends; loops drain out.
	cancelled bool
}

type taskState struct {
	running  int // attempts in flight right now
	attempts int // attempts ever started
	done     bool
	skipped  bool     // done by abandonment (AllowPartial), nothing to fold
	states   [][]byte // winning result, nil once folded
}

func (c *coordinator) finished() bool {
	return c.done == len(c.tasks) || c.fatalErr != nil || c.cancelled
}

func (c *coordinator) fail(task int, err error) {
	if c.fatalErr == nil || task < c.fatalTask {
		c.fatalErr = err
		c.fatalTask = task
	}
}

// pick chooses the worker's next task under mu: the lowest-index task
// nobody is running (fresh, or requeued after a failed attempt), else —
// work stealing — the lowest-index unfinished task still within its
// attempt budget, speculating against a possibly-slow owner. The first
// completed attempt wins; the loser's result is discarded.
func (c *coordinator) pick() (task int, steal, ok bool) {
	for i := range c.tasks {
		t := &c.tasks[i]
		if !t.done && t.running == 0 && t.attempts < c.maxAttempts {
			return i, false, true
		}
	}
	for i := range c.tasks {
		t := &c.tasks[i]
		if !t.done && t.attempts < c.maxAttempts {
			return i, true, true
		}
	}
	return 0, false, false
}

// anyRunning reports whether some attempt is still in flight.
func (c *coordinator) anyRunning() bool {
	for i := range c.tasks {
		if c.tasks[i].running > 0 {
			return true
		}
	}
	return false
}

// advanceFrontier folds every contiguously-completed task's states into
// the prototypes, in task order: fork the prototype, restore the
// portable state into the fork, merge — the exact in-process fold with a
// Restore spliced in. Skipped tasks contribute nothing and are stepped
// over. Called under mu; Merge is never concurrent, per the kernel
// contract.
func (c *coordinator) advanceFrontier() {
	for c.frontier < len(c.tasks) && c.tasks[c.frontier].done {
		t := &c.tasks[c.frontier]
		if t.skipped {
			c.frontier++
			continue
		}
		if len(t.states) != len(c.protos) {
			c.fail(c.frontier, errs.Invalid("dist: task %d returned %d kernel states, want %d",
				c.frontier, len(t.states), len(c.protos)))
			return
		}
		for j, proto := range c.protos {
			fork := proto.Fork()
			if err := scan.RestoreKernel(fork, t.states[j]); err != nil {
				c.fail(c.frontier, err)
				return
			}
			proto.Merge(fork)
		}
		t.states = nil
		c.frontier++
	}
}

// complete records a winning result for task under mu: journal first
// (durability before visibility), then fold. Late duplicate wins (a
// steal losing the race) are discarded by the caller's done check.
func (c *coordinator) complete(task int, states [][]byte) {
	t := &c.tasks[task]
	if c.journal != nil {
		if err := c.journal.Append(task, states); err != nil {
			c.fail(task, err)
			return
		}
	}
	t.done = true
	t.states = states
	c.done++
	c.advanceFrontier()
}

// skip abandons task under mu with the corruption that condemned it,
// recording the degraded-manifest entry.
func (c *coordinator) skip(task int, plan *scan.Plan, cause error) {
	t := &c.tasks[task]
	pt := plan.Tasks[task]
	t.done = true
	t.skipped = true
	c.done++
	c.rep.Skipped = append(c.rep.Skipped, SkippedTask{
		Task:   task,
		Shard:  pt.Shard,
		Files:  pt.Hi - pt.Lo,
		Bytes:  pt.Bytes,
		Reason: cause.Error(),
	})
	c.advanceFrontier()
}

// mixSeed decorrelates the per-worker jitter streams from one base seed.
func mixSeed(base int64, name string) int64 {
	h := uint64(14695981039346656037)
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(uint64(base) >> (8 * i))
	}
	h = journalFold(h, buf[:])
	h = journalFold(h, []byte(name))
	if h == 0 {
		h = 1
	}
	return int64(h)
}

// probe runs one quarantine's probe loop outside mu: up to MaxProbes
// probes, ProbeInterval apart, ending early when the run finishes or
// the context dies. It reports whether the worker may rejoin.
func (c *coordinator) probe(ctx context.Context, w Worker, h HealthOptions) bool {
	hc, probeable := w.(HealthChecker)
	for i := 0; i < h.MaxProbes; i++ {
		t := time.NewTimer(h.ProbeInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
		c.mu.Lock()
		over := c.finished()
		c.mu.Unlock()
		if over {
			return false
		}
		if !probeable || hc.Probe(ctx) == nil {
			return true
		}
	}
	return false
}

// Run distributes the plan's tasks across the workers and folds their
// kernel states into the prototypes in task order. On success the
// prototypes hold exactly what scan.Execute over the full plan would
// have left in them — bit-identical by the portable-state and
// associative-fold contracts — unless the Report says Degraded, in
// which case they hold exactly the non-skipped tasks' fold. The Report
// describes who did what (returned for failed runs too, for
// diagnostics). On failure the prototypes hold an unspecified prefix
// and must be discarded; the error is the lowest-task-index failure,
// with cancellation mapped through the errs sentinels per the scan
// determinism contract.
//
// Resilience: a retryably-failing Scan (errs.IsRetryable) is retried on
// the same worker under Options.Retry and the shared budget; a worker
// whose failures trip Options.Health is quarantined, probed, and
// re-admitted or declared dead; ErrCorrupt under AllowPartial skips the
// task; completed tasks are journaled (Options.Journal) and journaled
// tasks are folded without rescanning.
func Run(ctx context.Context, plan *scan.Plan, spec Spec, workers []Worker, opts Options, protos ...scan.Kernel) (*Report, error) {
	rep := &Report{Workers: make([]WorkerStats, len(workers))}
	for i, w := range workers {
		rep.Workers[i] = WorkerStats{Name: w.Name()}
	}
	if len(workers) == 0 {
		return rep, errs.Invalid("dist: no workers")
	}
	if len(protos) == 0 {
		return rep, errs.Invalid("dist: no kernels registered")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	health := opts.Health.withDefaults()
	var budget *retry.Budget
	if opts.RetryBudget >= 0 {
		n := opts.RetryBudget
		if n == 0 {
			n = DefaultRetryBudget
		}
		budget = retry.NewBudget(n)
	}

	c := &coordinator{
		tasks:       make([]taskState, len(plan.Tasks)),
		maxAttempts: maxAttempts,
		protos:      protos,
		rep:         rep,
		journal:     opts.Journal,
		allow:       opts.AllowPartial,
	}
	c.cond = sync.NewCond(&c.mu)

	// Resume: journaled tasks are done before any worker starts; the
	// frontier folds the leading run of them immediately, and the rest
	// fold as the gaps fill — bit-identically, because fold order is
	// task order regardless of where states came from.
	if opts.Journal != nil {
		for task, states := range opts.Journal.States() {
			if task < 0 || task >= len(c.tasks) {
				return rep, errs.Invalid("dist: journal task %d out of range (plan has %d)", task, len(c.tasks))
			}
			t := &c.tasks[task]
			t.done = true
			t.states = states
			c.done++
			rep.Resumed++
		}
		c.advanceFrontier()
		if c.fatalErr != nil {
			return rep, c.fatalErr
		}
	}

	// A context watcher flips the run into draining: waiting loops wake
	// and exit, in-flight Scan calls unwind through their own ctx.
	stopWatch := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cancelled = true
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stopWatch()

	planFP := plan.Fingerprint()
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w Worker) {
			defer wg.Done()
			st := &rep.Workers[wi]
			policy := opts.Retry
			policy.Seed = mixSeed(opts.Retry.Seed, w.Name())
			consecFails := 0
			for {
				c.mu.Lock()
				var task int
				var steal bool
				for {
					if c.finished() {
						c.mu.Unlock()
						return
					}
					var ok bool
					if task, steal, ok = c.pick(); ok {
						break
					}
					if !c.anyRunning() {
						// Every unfinished task has exhausted its attempt
						// budget and nobody is still trying: the run cannot
						// make progress.
						for i := range c.tasks {
							if !c.tasks[i].done {
								c.fail(i, errs.Unavailable("dist: task %d failed %d attempts", i, c.tasks[i].attempts))
								break
							}
						}
						c.cond.Broadcast()
						c.mu.Unlock()
						return
					}
					c.cond.Wait()
				}
				t := &c.tasks[task]
				t.running++
				t.attempts++
				st.Started++
				if steal {
					st.Stolen++
				}
				c.mu.Unlock()

				req := &ScanRequest{
					PlanFP:      planFP,
					Spec:        spec,
					Task:        task,
					ScanWorkers: opts.ScanWorkers,
					BlockSize:   opts.BlockSize,
				}
				var resp *ScanResponse
				retries, err := retry.Do(ctx, policy, budget, func(ctx context.Context) error {
					var serr error
					resp, serr = w.Scan(ctx, req)
					return serr
				})

				quarantine := false
				c.mu.Lock()
				t.running--
				st.Retries += retries
				rep.Retries += retries
				switch {
				case err != nil && ctx.Err() != nil:
					// The run is being cancelled; the error is just that
					// cancellation echoing back.
					c.cancelled = true
				case err == nil:
					consecFails = 0
					if !t.done {
						c.complete(task, resp.States)
						st.Won++
					}
				case errs.IsRetryable(err):
					// Transient even after in-place retries. The decrement
					// above requeues the task; the health gate decides
					// whether this worker keeps playing.
					consecFails++
					if consecFails >= health.TripAfter {
						quarantine = true
						st.Quarantined++
					}
				case errors.Is(err, errs.ErrCorrupt) && c.allow:
					// Deterministic data corruption: retrying anywhere
					// reproduces it. Degrade: abandon the task, keep the run.
					consecFails = 0
					if !t.done {
						c.skip(task, plan, err)
					}
				default:
					// A deterministic failure (invalid request, scan bug):
					// record at this task's index and stop the run.
					c.fail(task, err)
				}
				c.cond.Broadcast()
				c.mu.Unlock()

				if quarantine {
					if c.probe(ctx, w, health) {
						consecFails = 0
						continue
					}
					c.mu.Lock()
					st.Dead = true
					c.cond.Broadcast()
					c.mu.Unlock()
					return
				}
			}
		}(wi, w)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(rep.Skipped, func(i, j int) bool { return rep.Skipped[i].Task < rep.Skipped[j].Task })
	switch {
	case c.fatalErr != nil:
		return rep, c.fatalErr
	case ctx.Err() != nil:
		return rep, errs.FromContext(ctx)
	case c.done < len(c.tasks):
		// Every worker loop exited (all dead) with work outstanding.
		return rep, errs.Unavailable("dist: all %d workers unavailable with %d of %d tasks unfinished",
			len(workers), len(c.tasks)-c.done, len(c.tasks))
	}
	return rep, nil
}
