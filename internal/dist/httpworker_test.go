package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/errs"
)

// TestHTTPWorkersBitIdentical runs the distributed measurement over real
// HTTP round trips (two worker daemons on loopback) and checks the
// output equals the single-node fused scan bit for bit.
func TestHTTPWorkersBitIdentical(t *testing.T) {
	spec := Spec{Patterns: []string{"error", "the"}, Complexity: true}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	var workers []Worker
	for _, name := range []string{"w0", "w1"} {
		ts := httptest.NewServer(NewWorkerServer(name, p).Handler())
		defer ts.Close()
		workers = append(workers, NewHTTPWorker(name, ts.URL))
	}

	m, stats, err := Measure(context.Background(), p, spec, workers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	won := 0
	for _, s := range stats {
		won += s.Won
	}
	if won != len(p.Tasks) {
		t.Errorf("workers won %d tasks, plan has %d", won, len(p.Tasks))
	}
}

// abortOnce aborts the first /v1/scan request mid-response — the HTTP
// spelling of killing a worker mid-flight: the client sees a dead
// connection, not an error document.
type abortOnce struct {
	inner http.Handler
	mu    sync.Mutex
	done  bool
}

func (a *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	first := !a.done
	a.done = true
	a.mu.Unlock()
	if first && r.URL.Path == "/v1/scan" {
		panic(http.ErrAbortHandler)
	}
	a.inner.ServeHTTP(w, r)
}

// TestHTTPWorkerKilledMidFlight kills one HTTP worker's connection in
// the middle of its first task; the coordinator must map the transport
// failure onto ErrUnavailable, mark the worker dead, re-dispatch the
// task to the survivor, and still produce bit-identical output.
func TestHTTPWorkerKilledMidFlight(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	died := make(chan struct{})
	dyingSrv := httptest.NewServer(&notifyAbort{abort: &abortOnce{inner: NewWorkerServer("dying", p).Handler()}, died: died})
	defer dyingSrv.Close()
	survivorSrv := httptest.NewServer(NewWorkerServer("survivor", p).Handler())
	defer survivorSrv.Close()

	dying := NewHTTPWorker("dying", dyingSrv.URL)
	survivor := &gatedHTTPWorker{HTTPWorker: NewHTTPWorker("survivor", survivorSrv.URL), gate: died}

	m, stats, err := Measure(context.Background(), p, spec, []Worker{dying, survivor}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if !stats[0].Dead {
		t.Errorf("dying worker not marked dead: %+v", stats[0])
	}
	if stats[1].Won != len(p.Tasks) {
		t.Errorf("survivor won %d of %d tasks", stats[1].Won, len(p.Tasks))
	}
}

// notifyAbort closes died once the wrapped abortOnce has fired.
type notifyAbort struct {
	abort *abortOnce
	died  chan struct{}
	once  sync.Once
}

func (n *notifyAbort) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer n.once.Do(func() { close(n.died) })
	n.abort.ServeHTTP(w, r)
}

// gatedHTTPWorker delays its first scan until gate closes.
type gatedHTTPWorker struct {
	*HTTPWorker
	gate <-chan struct{}
}

func (w *gatedHTTPWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	<-w.gate
	return w.HTTPWorker.Scan(ctx, req)
}

// TestHTTPWorkerConnectionRefused checks a worker that never existed
// (nothing listening) maps onto ErrUnavailable, so a fleet with one dead
// address still completes on the survivors.
func TestHTTPWorkerConnectionRefused(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	want := singleNode(t, p, spec)

	ts := httptest.NewServer(NewWorkerServer("live", p).Handler())
	defer ts.Close()

	failed := make(chan struct{})
	ghost := &failNotifyWorker{Worker: NewHTTPWorker("ghost", "http://127.0.0.1:1"), failed: failed}
	live := &gatedHTTPWorker{HTTPWorker: NewHTTPWorker("live", ts.URL), gate: failed}

	m, stats, err := Measure(context.Background(), p, spec, []Worker{ghost, live}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if !stats[0].Dead {
		t.Errorf("ghost worker not marked dead: %+v", stats[0])
	}
}

// failNotifyWorker closes failed once the wrapped worker errors.
type failNotifyWorker struct {
	Worker
	failed chan struct{}
	once   sync.Once
}

func (w *failNotifyWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	resp, err := w.Worker.Scan(ctx, req)
	if err != nil {
		w.once.Do(func() { close(w.failed) })
	}
	return resp, err
}

// TestHTTPWorkerPlanMismatch checks the fingerprint preflight crosses
// the wire: a daemon serving a different corpus answers 400 and the run
// fails with ErrInvalid.
func TestHTTPWorkerPlanMismatch(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	other := testPlan(t, 13)
	ts := httptest.NewServer(NewWorkerServer("stale", other).Handler())
	defer ts.Close()

	_, _, err := Measure(context.Background(), p, spec, []Worker{NewHTTPWorker("stale", ts.URL)}, Options{})
	if !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}
