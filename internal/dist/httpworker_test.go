package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/retry"
)

// TestHTTPWorkersBitIdentical runs the distributed measurement over real
// HTTP round trips (two worker daemons on loopback) and checks the
// output equals the single-node fused scan bit for bit.
func TestHTTPWorkersBitIdentical(t *testing.T) {
	spec := Spec{Patterns: []string{"error", "the"}, Complexity: true}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	var workers []Worker
	for _, name := range []string{"w0", "w1"} {
		ts := httptest.NewServer(NewWorkerServer(name, p).Handler())
		defer ts.Close()
		workers = append(workers, NewHTTPWorker(name, ts.URL))
	}

	m, rep, err := Measure(context.Background(), p, spec, workers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	won := 0
	for _, s := range rep.Workers {
		won += s.Won
	}
	if won != len(p.Tasks) {
		t.Errorf("workers won %d tasks, plan has %d", won, len(p.Tasks))
	}
}

// abortOnce aborts the first /v1/scan request mid-response — the HTTP
// spelling of killing a worker mid-flight: the client sees a dead
// connection, not an error document.
type abortOnce struct {
	inner http.Handler
	mu    sync.Mutex
	done  bool
}

func (a *abortOnce) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	first := !a.done
	a.done = true
	a.mu.Unlock()
	if first && r.URL.Path == "/v1/scan" {
		panic(http.ErrAbortHandler)
	}
	a.inner.ServeHTTP(w, r)
}

// TestHTTPWorkerKilledMidFlight aborts one HTTP worker's connection in
// the middle of its first task; the coordinator must map the transport
// failure onto ErrUnavailable and — since the daemon itself survives —
// retry the task in place rather than writing the worker off. The run
// stays bit-identical and nobody dies.
func TestHTTPWorkerKilledMidFlight(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	died := make(chan struct{})
	flakySrv := httptest.NewServer(&notifyAbort{abort: &abortOnce{inner: NewWorkerServer("flaky", p).Handler()}, died: died})
	defer flakySrv.Close()
	steadySrv := httptest.NewServer(NewWorkerServer("steady", p).Handler())
	defer steadySrv.Close()

	flaky := NewHTTPWorker("flaky", flakySrv.URL)
	steady := &gatedHTTPWorker{HTTPWorker: NewHTTPWorker("steady", steadySrv.URL), gate: died}

	opts := Options{Retry: retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}}
	m, rep, err := Measure(context.Background(), p, spec, []Worker{flaky, steady}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if rep.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1 (aborted attempt retried in place)", rep.Retries)
	}
	for _, s := range rep.Workers {
		if s.Dead {
			t.Errorf("worker %q marked dead; transient abort should be retried: %+v", s.Name, s)
		}
	}
	if won := rep.Workers[0].Won + rep.Workers[1].Won; won != len(p.Tasks) {
		t.Errorf("workers won %d of %d tasks", won, len(p.Tasks))
	}
}

// notifyAbort closes died once the wrapped abortOnce has fired.
type notifyAbort struct {
	abort *abortOnce
	died  chan struct{}
	once  sync.Once
}

func (n *notifyAbort) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer n.once.Do(func() { close(n.died) })
	n.abort.ServeHTTP(w, r)
}

// gatedHTTPWorker delays its first scan until gate closes.
type gatedHTTPWorker struct {
	*HTTPWorker
	gate <-chan struct{}
}

func (w *gatedHTTPWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	<-w.gate
	return w.HTTPWorker.Scan(ctx, req)
}

// TestHTTPWorkerConnectionRefused checks a worker that never existed
// (nothing listening) maps onto ErrUnavailable, so a fleet with one dead
// address still completes on the survivors.
func TestHTTPWorkerConnectionRefused(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	want := singleNode(t, p, spec)

	ts := httptest.NewServer(NewWorkerServer("live", p).Handler())
	defer ts.Close()

	failed := make(chan struct{})
	ghost := &failNotifyWorker{HTTPWorker: NewHTTPWorker("ghost", "http://127.0.0.1:1"), failed: failed}
	live := &gatedHTTPWorker{HTTPWorker: NewHTTPWorker("live", ts.URL), gate: failed}

	// The ghost's health probe refuses too, so quarantine cannot
	// re-admit it: the trip escalates to death.
	m, rep, err := Measure(context.Background(), p, spec, []Worker{ghost, live}, fastFailOpts())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if !rep.Workers[0].Dead {
		t.Errorf("ghost worker not marked dead: %+v", rep.Workers[0])
	}
}

// failNotifyWorker closes failed once the wrapped worker errors. It
// embeds the concrete HTTPWorker so Probe stays visible: the
// coordinator's health check must reach the (dead) address too.
type failNotifyWorker struct {
	*HTTPWorker
	failed chan struct{}
	once   sync.Once
}

func (w *failNotifyWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	resp, err := w.HTTPWorker.Scan(ctx, req)
	if err != nil {
		w.once.Do(func() { close(w.failed) })
	}
	return resp, err
}

// TestHTTPWorkerRetryAfter pins the back-pressure contract: 429 and
// 503 answers come back as retryable ErrUnavailable carrying the
// server's Retry-After hint, so the retry layer waits at least that
// long instead of hammering an overloaded worker.
func TestHTTPWorkerRetryAfter(t *testing.T) {
	p := testPlan(t, 12)
	inner := NewWorkerServer("busy", p).Handler()
	for _, tc := range []struct {
		name       string
		status     int
		retryAfter string
		wantHint   time.Duration
	}{
		{"503-with-hint", http.StatusServiceUnavailable, "2", 2 * time.Second},
		{"429-with-hint", http.StatusTooManyRequests, "1", time.Second},
		{"503-no-hint", http.StatusServiceUnavailable, "", 0},
		{"503-bad-hint", http.StatusServiceUnavailable, "soon", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var rejected bool
			var mu sync.Mutex
			h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				mu.Lock()
				first := !rejected
				rejected = true
				mu.Unlock()
				if first && r.URL.Path == "/v1/scan" {
					if tc.retryAfter != "" {
						w.Header().Set("Retry-After", tc.retryAfter)
					}
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(tc.status)
					w.Write([]byte(`{"error":"busy"}`))
					return
				}
				inner.ServeHTTP(w, r)
			})
			ts := httptest.NewServer(h)
			defer ts.Close()

			w := NewHTTPWorker("busy", ts.URL)
			req := &ScanRequest{PlanFP: p.Fingerprint(), Task: 0}
			_, err := w.Scan(context.Background(), req)
			if !errs.IsRetryable(err) {
				t.Fatalf("status %d: err = %v, want retryable", tc.status, err)
			}
			hint, ok := errs.RetryAfterHint(err)
			if hint != tc.wantHint || ok != (tc.wantHint > 0) {
				t.Errorf("RetryAfterHint = (%v, %v), want (%v, %v)", hint, ok, tc.wantHint, tc.wantHint > 0)
			}
			// The rejection is transient: the next call must succeed.
			resp, err := w.Scan(context.Background(), req)
			if err != nil {
				t.Fatalf("second scan: %v", err)
			}
			if resp.Task != 0 || len(resp.States) == 0 {
				t.Errorf("second scan returned %+v", resp)
			}
		})
	}
}

// TestHTTPWorkerProbe checks the health-probe round trip: a live daemon
// answers healthy, a dead address answers retryably unhealthy.
func TestHTTPWorkerProbe(t *testing.T) {
	p := testPlan(t, 12)
	ts := httptest.NewServer(NewWorkerServer("live", p).Handler())
	defer ts.Close()

	if err := NewHTTPWorker("live", ts.URL).Probe(context.Background()); err != nil {
		t.Errorf("live probe: %v", err)
	}
	err := NewHTTPWorker("ghost", "http://127.0.0.1:1").Probe(context.Background())
	if err == nil {
		t.Fatal("ghost probe succeeded")
	}
	if !errors.Is(err, errs.ErrUnavailable) {
		t.Errorf("ghost probe err = %v, want ErrUnavailable", err)
	}
}

// TestHTTPWorkerPlanMismatch checks the fingerprint preflight crosses
// the wire: a daemon serving a different corpus answers 400 and the run
// fails with ErrInvalid.
func TestHTTPWorkerPlanMismatch(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	other := testPlan(t, 13)
	ts := httptest.NewServer(NewWorkerServer("stale", other).Handler())
	defer ts.Close()

	_, _, err := Measure(context.Background(), p, spec, []Worker{NewHTTPWorker("stale", ts.URL)}, Options{})
	if !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}
