// Package dist is the coordinator–worker engine over the fused scan: it
// distributes a scan plan's tasks (pack shards, the paper's unit of
// physical locality) across N workers and folds their serialized kernel
// states back into coordinator-side prototypes, bit-identical to running
// the whole plan in one process.
//
// The engine leans on three contracts established below it:
//
//   - scan.Plan splits planning from execution, so coordinator and
//     workers agree on "task i means exactly these files in this order"
//     and a plan fingerprint rejects disagreement before any scanning;
//   - scan.StateCodec makes a kernel's completed accumulation portable,
//     and the Merge contract (fold the other's entire accumulation,
//     drain it) makes a restored shard-sized kernel fold exactly like an
//     engine-forked per-file one;
//   - the integer folds inside every production kernel are associative,
//     so folding per-task accumulations in task order is bit-identical
//     to folding per-file results in file order — the scan engine's
//     determinism contract survives the process boundary.
//
// The coordinator dispatches one task per worker round trip, keeps a
// merge frontier that folds results strictly in task order as they
// arrive, lets idle workers steal (speculatively re-run) tasks still in
// flight elsewhere, and re-dispatches the tasks of workers that die
// (transport failure or errs.ErrUnavailable). Workers are either
// in-process (Local — tests, and the -workers N single-machine mode) or
// remote over thin HTTP/JSON (HTTPWorker ↔ WorkerServer on the
// internal/server plumbing).
package dist

import "repro/internal/core"

// Spec selects the kernels of a distributed measurement — the wire form
// of core.MeasureOptions. Both sides build their kernel sets from the
// same spec via core.NewMeasureKernels, which is what makes a worker's
// snapshots restorable into the coordinator's forks: configuration
// (automata, lexicons) travels as the spec, never as state.
type Spec struct {
	// Patterns adds the multi-pattern match kernel.
	Patterns []string `json:"patterns,omitempty"`
	// FoldCase makes the pattern match ASCII case-insensitive.
	FoldCase bool `json:"fold_case,omitempty"`
	// Complexity swaps the stats kernel for the fused stats+complexity
	// kernel.
	Complexity bool `json:"complexity,omitempty"`
}

// MeasureOptions returns the single-node options equivalent of the spec.
func (s Spec) MeasureOptions() core.MeasureOptions {
	return core.MeasureOptions{
		Patterns:   s.Patterns,
		FoldCase:   s.FoldCase,
		Complexity: s.Complexity,
	}
}

// Kernels assembles the spec's kernel set. Every participant — the
// coordinator's prototypes, each worker's per-task forks — comes from
// this one constructor.
func (s Spec) Kernels() (*core.MeasureKernels, error) {
	return core.NewMeasureKernels(s.MeasureOptions())
}
