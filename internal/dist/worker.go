package dist

import (
	"context"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/scan"
)

// ScanRequest assigns one plan task to a worker. PlanFP is the
// coordinator's plan fingerprint: a worker that derived a different plan
// from its own corpus view must refuse (ErrInvalid) rather than scan the
// wrong files — the guard that turns silent divergence into a loud
// preflight failure.
type ScanRequest struct {
	PlanFP uint64 `json:"plan_fp"`
	Spec   Spec   `json:"spec"`
	// Task indexes the shared plan's task list.
	Task int `json:"task"`
	// ScanWorkers bounds the worker's scan fan-out for this task
	// (0 = GOMAXPROCS).
	ScanWorkers int `json:"scan_workers,omitempty"`
	// BlockSize overrides the streaming window (0 = default). Block
	// splits never change results, but pinning it keeps runs exactly
	// reproducible under instrumentation.
	BlockSize int `json:"block_size,omitempty"`
}

// ScanResponse carries one completed task's kernel states: one snapshot
// per kernel, in registration (spec) order. JSON transports the byte
// strings as base64.
type ScanResponse struct {
	Task   int      `json:"task"`
	States [][]byte `json:"states"`
}

// Worker executes plan tasks. Scan is synchronous — one task in, its
// kernel states out — and must be safe for concurrent calls: the
// coordinator never sends a worker more than one task at a time, but a
// stolen task's original owner may still be running it.
//
// Error taxonomy: ErrUnavailable (or a transport failure, which
// HTTPWorker maps onto it) means the worker is gone and its tasks
// re-dispatchable; ErrInvalid means the request itself is wrong (plan
// mismatch, bad spec) and retrying elsewhere would fail identically;
// anything else is a scan failure surfaced as-is.
type Worker interface {
	Name() string
	Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error)
}

// Local is an in-process worker over a plan: the -workers N
// single-machine mode and the test double for the distributed engine. It
// builds its kernel prototypes once (automaton and lexicon construction
// amortised across tasks) and forks them per task.
type Local struct {
	name   string
	plan   *scan.Plan
	planFP uint64
	protos *core.MeasureKernels

	// fault, when set, runs before each task scan — the chaos-injection
	// seam (fault.Injector.TaskKill) and the test seam for worker death
	// and slow-worker scenarios. A non-nil error aborts the task with it.
	fault func(ctx context.Context, task int) error

	// health, when set, answers Probe — the seam for simulating workers
	// that stay down (probes fail → dead) versus workers that recover
	// (probe succeeds → re-admitted). nil means always healthy.
	health func(ctx context.Context) error
}

// SetFault installs a per-task fault hook: it runs before each task
// scan, and a non-nil error aborts the attempt with it. The chaos
// harness installs fault.Injector.TaskKill here.
func (l *Local) SetFault(f func(ctx context.Context, task int) error) { l.fault = f }

// SetHealth installs the probe hook consulted by Probe (nil: always
// healthy).
func (l *Local) SetHealth(h func(ctx context.Context) error) { l.health = h }

// Probe implements HealthChecker: healthy unless a SetHealth hook says
// otherwise.
func (l *Local) Probe(ctx context.Context) error {
	if l.health != nil {
		return l.health(ctx)
	}
	return nil
}

// NewLocal builds an in-process worker over the plan, with kernels
// assembled from the spec.
func NewLocal(name string, plan *scan.Plan, spec Spec) (*Local, error) {
	protos, err := spec.Kernels()
	if err != nil {
		return nil, err
	}
	return &Local{name: name, plan: plan, planFP: plan.Fingerprint(), protos: protos}, nil
}

// Name implements Worker.
func (l *Local) Name() string { return l.name }

// Scan implements Worker: it executes the task's slice of the plan
// through fresh forks of the prototypes and snapshots each kernel's
// accumulation.
func (l *Local) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	if req.PlanFP != l.planFP {
		return nil, errs.Invalid("dist: plan fingerprint %016x, worker has %016x", req.PlanFP, l.planFP)
	}
	if req.Task < 0 || req.Task >= len(l.plan.Tasks) {
		return nil, errs.Invalid("dist: task %d out of range (plan has %d)", req.Task, len(l.plan.Tasks))
	}
	if l.fault != nil {
		if err := l.fault(ctx, req.Task); err != nil {
			return nil, err
		}
	}
	kernels := make([]scan.Kernel, len(l.protos.List))
	for i, k := range l.protos.List {
		kernels[i] = k.Fork()
	}
	opts := scan.Options{Workers: req.ScanWorkers, BlockSize: req.BlockSize}
	if err := scan.Execute(ctx, l.plan, l.plan.Tasks[req.Task:req.Task+1], opts, kernels...); err != nil {
		return nil, err
	}
	states := make([][]byte, len(kernels))
	for i, k := range kernels {
		st, err := scan.SnapshotKernel(k)
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	return &ScanResponse{Task: req.Task, States: states}, nil
}
