package dist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/errs"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.journal")
}

// TestJournalRoundTrip appends records, reopens, and checks every state
// comes back byte for byte.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	spec := Spec{Patterns: []string{"a", "b"}, FoldCase: true}
	j, err := CreateJournal(path, 0xdeadbeef, spec)
	if err != nil {
		t.Fatal(err)
	}
	recs := map[int][][]byte{
		0: {[]byte("alpha"), []byte("")},
		3: {[]byte{0x00, 0xff, 0x42}},
		1: {},
	}
	for task, states := range recs {
		if err := j.Append(task, states); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, 0xdeadbeef, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.States()
	if len(got) != len(recs) {
		t.Fatalf("resumed %d tasks, want %d", len(got), len(recs))
	}
	for task, states := range recs {
		rs, ok := got[task]
		if !ok {
			t.Errorf("task %d missing from resumed states", task)
			continue
		}
		if len(rs) != len(states) {
			t.Errorf("task %d: %d states, want %d", task, len(rs), len(states))
			continue
		}
		for i := range states {
			if string(rs[i]) != string(states[i]) {
				t.Errorf("task %d state %d = %q, want %q", task, i, rs[i], states[i])
			}
		}
	}
}

// TestJournalMismatchIsInvalid pins the identity guard: a journal from
// a different plan or a different spec refuses with ErrInvalid.
func TestJournalMismatchIsInvalid(t *testing.T) {
	path := journalPath(t)
	spec := Spec{Patterns: []string{"x"}}
	j, err := CreateJournal(path, 111, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, [][]byte{[]byte("s")})
	j.Close()

	if _, err := OpenJournal(path, 222, spec); !errors.Is(err, errs.ErrInvalid) {
		t.Errorf("plan mismatch: err = %v, want ErrInvalid", err)
	}
	if _, err := OpenJournal(path, 111, Spec{Patterns: []string{"y"}}); !errors.Is(err, errs.ErrInvalid) {
		t.Errorf("spec mismatch: err = %v, want ErrInvalid", err)
	}
	if j2, err := OpenJournal(path, 111, spec); err != nil {
		t.Errorf("matching open: err = %v", err)
	} else {
		j2.Close()
	}
}

// TestJournalTornTail simulates a crash mid-append: the incomplete last
// record is dropped, the file truncated back to the last good record,
// and appends continue cleanly from there.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	spec := Spec{}
	j, err := CreateJournal(path, 7, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, [][]byte{[]byte("keep me")})
	j.Append(1, [][]byte{[]byte("also keep")})
	j.Close()

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1's record: magic(4) + task(4) + nstates(4) + len(4) +
	// "also keep"(9) + checksum(8) = 33 bytes, the file's tail.
	garbled := append([]byte(nil), whole[len(whole)-33:]...)
	if string(garbled[:4]) != journalRecMagic {
		t.Fatalf("test arithmetic off: tail does not start at a record")
	}
	garbled[18] ^= 0x01 // flip a state byte: complete record, wrong checksum

	for name, tail := range map[string][]byte{
		"cut-mid-record": whole[len(whole)-9 : len(whole)-2],
		"cut-mid-magic":  []byte("JR"),
		"garbled-last":   garbled,
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), whole...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(path, 7, spec)
			if err != nil {
				t.Fatalf("torn tail must be tolerated: %v", err)
			}
			if got := len(j2.States()); got != 2 {
				t.Errorf("resumed %d tasks, want 2", got)
			}
			// The file must be usable for further appends.
			if err := j2.Append(2, [][]byte{[]byte("post-recovery")}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3, err := OpenJournal(path, 7, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(j3.States()); got != 3 {
				t.Errorf("after recovery append: resumed %d tasks, want 3", got)
			}
			j3.Close()
		})
	}
}

// TestJournalMidFileCorruption flips a byte inside the first record's
// body (not the tail): that is data loss, not a torn append, and must
// fail loudly with ErrCorrupt instead of silently dropping records.
func TestJournalMidFileCorruption(t *testing.T) {
	path := journalPath(t)
	spec := Spec{}
	j, err := CreateJournal(path, 7, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, [][]byte{[]byte("first record body")})
	j.Append(1, [][]byte{[]byte("second record body")})
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := journalHeader(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 0's state bytes.
	raw[len(hdr)+len(journalRecMagic)+8+4+3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, 7, spec); !errors.Is(err, errs.ErrCorrupt) {
		t.Errorf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestJournalHeaderCorruption garbles the header checksum region and
// the magic; both must be ErrCorrupt.
func TestJournalHeaderCorruption(t *testing.T) {
	path := journalPath(t)
	spec := Spec{}
	j, err := CreateJournal(path, 9, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	badMagic := append([]byte(nil), raw...)
	badMagic[0] ^= 0x01
	badSum := append([]byte(nil), raw...)
	badSum[len(badSum)-1] ^= 0x01
	for name, b := range map[string][]byte{"bad-magic": badMagic, "bad-checksum": badSum} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenJournal(path, 9, spec); !errors.Is(err, errs.ErrCorrupt) {
				t.Errorf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestJournalDuplicateKeepsFirst pins the duplicate rule: if a crash
// window lets the same task be appended twice, resume keeps the first
// occurrence — the one an interrupted frontier may already have folded.
func TestJournalDuplicateKeepsFirst(t *testing.T) {
	path := journalPath(t)
	spec := Spec{}
	j, err := CreateJournal(path, 5, spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, [][]byte{[]byte("first")})
	j.Append(0, [][]byte{[]byte("second")})
	j.Close()

	j2, err := OpenJournal(path, 5, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := map[int][][]byte{0: {[]byte("first")}}
	if !reflect.DeepEqual(j2.States(), want) {
		t.Errorf("States = %v, want %v", j2.States(), want)
	}
}

// TestJournalMissingFileStartsFresh checks OpenJournal on a nonexistent
// path behaves like CreateJournal — first runs need no special casing.
func TestJournalMissingFileStartsFresh(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, 3, Spec{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(j.States()) != 0 || j.Len() != 0 {
		t.Errorf("fresh journal not empty: states=%d len=%d", len(j.States()), j.Len())
	}
	if err := j.Append(0, [][]byte{[]byte("s")}); err != nil {
		t.Fatal(err)
	}
}
