package dist

import (
	"context"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/scan"
)

// Measure runs the distributed fused measurement: coordinator-side
// prototypes assembled from the spec, the plan's tasks spread across the
// workers, states folded back in task order. The resulting Measurement
// is bit-identical to core.MeasurePlanCtx over the same plan and
// options — manifest checksums, grep counts, text statistics and
// per-file complexity all — at any worker count, including runs where
// workers died and their tasks were re-dispatched. Errors carry the
// "dist" stage.
func Measure(ctx context.Context, plan *scan.Plan, spec Spec, workers []Worker, opts Options) (*core.Measurement, []WorkerStats, error) {
	mk, err := spec.Kernels()
	if err != nil {
		return nil, nil, errs.Stage("dist", err)
	}
	stats, err := Run(ctx, plan, spec, workers, opts, mk.List...)
	if err != nil {
		return nil, stats, errs.Stage("dist", err)
	}
	return mk.Measurement(), stats, nil
}
