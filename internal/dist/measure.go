package dist

import (
	"context"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/scan"
)

// Measure runs the distributed fused measurement: coordinator-side
// prototypes assembled from the spec, the plan's tasks spread across the
// workers, states folded back in task order. The resulting Measurement
// is bit-identical to core.MeasurePlanCtx over the same plan and
// options — manifest checksums, grep counts, text statistics and
// per-file complexity all — at any worker count, including runs where
// workers died, retried, were quarantined and re-admitted, or where
// tasks were resumed from a checkpoint journal. The one exception is a
// degraded run (Options.AllowPartial with Report.Degraded() true): the
// measurement then covers exactly the non-skipped tasks, and the
// Report's Skipped manifest says what is missing. Errors carry the
// "dist" stage.
func Measure(ctx context.Context, plan *scan.Plan, spec Spec, workers []Worker, opts Options) (*core.Measurement, *Report, error) {
	mk, err := spec.Kernels()
	if err != nil {
		return nil, &Report{}, errs.Stage("dist", err)
	}
	rep, err := Run(ctx, plan, spec, workers, opts, mk.List...)
	if err != nil {
		return nil, rep, errs.Stage("dist", err)
	}
	return mk.Measurement(), rep, nil
}
