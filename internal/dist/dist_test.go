package dist

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/vfs"
)

// fastFailOpts are the options death-scenario tests run under: no
// in-place retries (so fault-hook call counts stay choreographed), an
// immediate health trip, and quick failing probes — the pre-gating
// permanent-death behaviour, reachable deliberately instead of by
// default.
func fastFailOpts() Options {
	return Options{
		Retry:  retry.Policy{MaxAttempts: 1},
		Health: HealthOptions{TripAfter: 1, ProbeInterval: time.Millisecond, MaxProbes: 1},
	}
}

// alwaysDown is the health hook of a worker that never comes back.
func alwaysDown(ctx context.Context) error {
	return errs.Unavailable("induced death")
}

// testPlan builds a small in-memory corpus and a plan chopped into many
// tasks (tiny TaskBytes), so even four workers have work to contend
// over.
func testPlan(t *testing.T, n int) *scan.Plan {
	t.Helper()
	fs := vfs.NewFS()
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("File %d says the error count is %d. Unknownzz word! lines\nhere. The end? Yes!", i, i*7)
		if i%3 == 0 {
			text += " An ERROR in upper case, and errors besides; the theory holds."
		}
		if err := fs.Add(vfs.BytesFile(fmt.Sprintf("doc-%03d.txt", i), []byte(text))); err != nil {
			t.Fatal(err)
		}
	}
	p := scan.NewPlan(vfs.Sources(fs.List()), scan.PlanOptions{TaskBytes: 300})
	if len(p.Tasks) < 3 {
		t.Fatalf("want ≥3 tasks for contention, got %d", len(p.Tasks))
	}
	return p
}

func singleNode(t *testing.T, p *scan.Plan, spec Spec) *core.Measurement {
	t.Helper()
	m, err := core.MeasurePlanCtx(context.Background(), p, spec.MeasureOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sameMeasurement asserts got is bit-identical to want in every output
// the measurement carries: manifest checksums (via the ordered
// fingerprint), text statistics, grep counts and complexity.
func sameMeasurement(t *testing.T, got, want *core.Measurement) {
	t.Helper()
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("fingerprint %016x, want %016x", got.Fingerprint(), want.Fingerprint())
	}
	if got.Files != want.Files || got.Bytes != want.Bytes {
		t.Errorf("files/bytes = %d/%d, want %d/%d", got.Files, got.Bytes, want.Files, want.Bytes)
	}
	if got.Stats != want.Stats || got.Lines != want.Lines {
		t.Errorf("stats = %+v lines %d, want %+v lines %d", got.Stats, got.Lines, want.Stats, want.Lines)
	}
	if !reflect.DeepEqual(got.FileStats, want.FileStats) {
		t.Error("per-file stats differ")
	}
	if !reflect.DeepEqual(got.Sums, want.Sums) {
		t.Error("ordered checksums differ")
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) || !reflect.DeepEqual(got.PatternTotals, want.PatternTotals) || got.Matches != want.Matches {
		t.Errorf("pattern totals %v (%d matches), want %v (%d)", got.PatternTotals, got.Matches, want.PatternTotals, want.Matches)
	}
	if !reflect.DeepEqual(got.PatternFiles, want.PatternFiles) {
		t.Error("per-file pattern counts differ")
	}
	if !reflect.DeepEqual(got.Complexity, want.Complexity) {
		t.Error("complexity maps differ")
	}
}

func localWorkers(t *testing.T, p *scan.Plan, spec Spec, n int) []Worker {
	t.Helper()
	ws := make([]Worker, n)
	for i := range ws {
		l, err := NewLocal(fmt.Sprintf("w%d", i), p, spec)
		if err != nil {
			t.Fatal(err)
		}
		ws[i] = l
	}
	return ws
}

// TestMeasureBitIdentical pins the acceptance contract: the distributed
// measurement equals the single-node fused scan bit for bit at worker
// counts 1, 2 and 4, with and without the complexity kernel.
func TestMeasureBitIdentical(t *testing.T) {
	specs := map[string]Spec{
		"stats":           {Patterns: []string{"error", "the"}},
		"complexity-fold": {Patterns: []string{"error", "the"}, FoldCase: true, Complexity: true},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			p := testPlan(t, 24)
			want := singleNode(t, p, spec)
			for _, n := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("workers-%d", n), func(t *testing.T) {
					m, rep, err := Measure(context.Background(), p, spec, localWorkers(t, p, spec, n), Options{})
					if err != nil {
						t.Fatal(err)
					}
					sameMeasurement(t, m, want)
					won := 0
					for _, s := range rep.Workers {
						won += s.Won
					}
					if won != len(p.Tasks) {
						t.Errorf("workers won %d tasks, plan has %d", won, len(p.Tasks))
					}
					if rep.Degraded() || rep.Resumed != 0 {
						t.Errorf("clean run reported degraded=%v resumed=%d", rep.Degraded(), rep.Resumed)
					}
				})
			}
		})
	}
}

// TestWorkerDiesMidRun kills one worker partway through — it completes
// its first task, then reports ErrUnavailable on its second, and its
// health probe confirms it is gone — and checks the survivor picks up
// the re-dispatched task and the output stays bit-identical. The
// survivor is gated on the death event, so the dying worker
// deterministically gets both attempts in first.
func TestWorkerDiesMidRun(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}, Complexity: true}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	died := make(chan struct{})
	dying, err := NewLocal("dying", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	var mu sync.Mutex
	dying.fault = func(ctx context.Context, task int) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls >= 2 {
			if calls == 2 {
				close(died)
			}
			return errs.Unavailable("induced death")
		}
		return nil
	}
	dying.SetHealth(alwaysDown)
	survivorLocal, err := NewLocal("survivor", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	survivor := &gatedWorker{Local: survivorLocal, gate: died}

	m, rep, err := Measure(context.Background(), p, spec, []Worker{dying, survivor}, fastFailOpts())
	if err != nil {
		t.Fatal(err)
	}
	stats := rep.Workers
	sameMeasurement(t, m, want)
	if !stats[0].Dead {
		t.Errorf("dying worker not marked dead: %+v", stats[0])
	}
	if stats[0].Won != 1 {
		t.Errorf("dying worker won %d tasks, want 1", stats[0].Won)
	}
	if stats[0].Quarantined != 1 {
		t.Errorf("dying worker quarantined %d times, want 1", stats[0].Quarantined)
	}
	if stats[1].Dead {
		t.Errorf("survivor marked dead: %+v", stats[1])
	}
	if stats[1].Won != len(p.Tasks)-1 {
		t.Errorf("survivor won %d tasks, want %d (including the re-dispatched one)", stats[1].Won, len(p.Tasks)-1)
	}
}

// gatedWorker delays its first scan until gate closes.
type gatedWorker struct {
	*Local
	gate <-chan struct{}
}

func (w *gatedWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	<-w.gate
	return w.Local.Scan(ctx, req)
}

// TestAllWorkersDie checks the run fails with ErrUnavailable — not a
// hang — when every worker stops answering and stays down through its
// health probes.
func TestAllWorkersDie(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	ws := localWorkers(t, p, spec, 2)
	for _, w := range ws {
		w.(*Local).fault = func(ctx context.Context, task int) error {
			return errs.Unavailable("induced death")
		}
		w.(*Local).SetHealth(alwaysDown)
	}
	_, rep, err := Measure(context.Background(), p, spec, ws, fastFailOpts())
	if !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	for i, s := range rep.Workers {
		if !s.Dead {
			t.Errorf("worker %d not marked dead", i)
		}
	}
}

// TestCancellationPropagates pins the determinism contract's
// cancellation clause: cancelling the run context surfaces ErrCancelled
// through the dist stage, while a worker is blocked mid-task.
func TestCancellationPropagates(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	ctx, cancel := context.WithCancel(context.Background())

	// The canceller cancels the run from inside its first task attempt;
	// the bystander is gated on that cancellation, so every task it ever
	// sees runs under a dead context — pinning that cancellation drains
	// the whole fleet, not just the worker that observed it first.
	canceller, err := NewLocal("canceller", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	canceller.fault = func(fctx context.Context, task int) error {
		once.Do(cancel)
		<-fctx.Done()
		return errs.FromContext(fctx)
	}
	bystanderLocal, err := NewLocal("bystander", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	bystander := &gatedWorker{Local: bystanderLocal, gate: ctx.Done()}

	_, _, err = Measure(ctx, p, spec, []Worker{canceller, bystander}, Options{})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if got := errs.StageOf(err); got != "dist" {
		t.Errorf("stage = %q, want dist", got)
	}
}

// TestPlanMismatchIsFatal checks the fingerprint preflight: a worker
// whose corpus view derived a different plan refuses with ErrInvalid and
// the run fails instead of folding wrong slices.
func TestPlanMismatchIsFatal(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	other := testPlan(t, 13) // one file more → different plan
	w, err := NewLocal("w0", other, spec)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Measure(context.Background(), p, spec, []Worker{w}, Options{})
	if !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

// countingWorker wraps a Local for the stealing test's choreography: it
// waits for the slow worker to claim a task before doing anything, and
// closes release once it has completed enough tasks itself.
type countingWorker struct {
	*Local
	claimed <-chan struct{}
	after   int
	release chan struct{}
	done    int
	mu      sync.Mutex
}

func (w *countingWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	<-w.claimed // the slow worker holds its task before we race ahead
	resp, err := w.Local.Scan(ctx, req)
	if err == nil {
		w.mu.Lock()
		w.done++
		if w.done == w.after {
			close(w.release)
		}
		w.mu.Unlock()
	}
	return resp, err
}

// TestStealFromSlowWorker blocks the slow worker inside whichever task
// it claims first while the fast worker finishes everything else; the
// fast worker must then steal the held task so the run completes —
// bit-identical — without waiting for the straggler, whose late result
// is discarded. The release only opens once the fast worker has
// completed every task (including the stolen one), so the choreography
// is deterministic.
func TestStealFromSlowWorker(t *testing.T) {
	spec := Spec{Patterns: []string{"the"}}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	release := make(chan struct{})
	claimed := make(chan struct{})
	slow, err := NewLocal("slow", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var claimOnce sync.Once
	slow.fault = func(ctx context.Context, task int) error {
		claimOnce.Do(func() { close(claimed) })
		<-release // held until the fast worker has done everything
		return nil
	}
	fastLocal, err := NewLocal("fast", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	fast := &countingWorker{Local: fastLocal, claimed: claimed, after: len(p.Tasks), release: release}

	m, rep, err := Measure(context.Background(), p, spec, []Worker{slow, fast}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := rep.Workers
	sameMeasurement(t, m, want)
	if stats[1].Stolen == 0 {
		t.Errorf("fast worker stole nothing: %+v", stats)
	}
	if stats[1].Won != len(p.Tasks) {
		t.Errorf("fast worker won %d of %d tasks", stats[1].Won, len(p.Tasks))
	}
}
