package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/errs"
	"repro/internal/scan"
	"repro/internal/server"
)

// HTTPWorker is the coordinator-side client for a remote worker daemon:
// one POST /v1/scan per task, JSON both ways. Any transport failure —
// connection refused, reset mid-response, the process killed — maps onto
// ErrUnavailable, which is precisely the coordinator's re-dispatch
// signal: a vanished worker is indistinguishable from one that answered
// 503, and both mean "give the task to someone else".
type HTTPWorker struct {
	name string
	base string
	hc   *http.Client
}

// NewHTTPWorker returns a client for the worker daemon at baseURL (e.g.
// "http://127.0.0.1:9101"). The request context governs timeouts; the
// client itself sets none.
func NewHTTPWorker(name, baseURL string) *HTTPWorker {
	return NewHTTPWorkerClient(name, baseURL, &http.Client{})
}

// NewHTTPWorkerClient is NewHTTPWorker with a caller-supplied client —
// the injection point for instrumented or fault-injecting transports
// (fault.Injector.Transport).
func NewHTTPWorkerClient(name, baseURL string, hc *http.Client) *HTTPWorker {
	return &HTTPWorker{name: name, base: baseURL, hc: hc}
}

// Name implements Worker.
func (w *HTTPWorker) Name() string { return w.name }

// Probe implements HealthChecker: one GET /healthz round trip. Any
// transport failure or non-200 answer keeps the worker benched.
func (w *HTTPWorker) Probe(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		return errs.Invalid("dist: worker %q probe: %v", w.name, err)
	}
	resp, err := w.hc.Do(hreq)
	if err != nil {
		return errs.Unavailable("dist: worker %q probe: %v", w.name, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return errs.Unavailable("dist: worker %q probe: status %d", w.name, resp.StatusCode)
	}
	return nil
}

// Scan implements Worker.
func (w *HTTPWorker) Scan(ctx context.Context, req *ScanRequest) (*ScanResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, errs.Invalid("dist: encoding scan request: %v", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/scan", bytes.NewReader(body))
	if err != nil {
		return nil, errs.Invalid("dist: worker %q request: %v", w.name, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, errs.FromContext(ctx)
		}
		return nil, errs.Unavailable("dist: worker %q: %v", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, w.statusError(resp)
	}
	var sr ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		if ctx.Err() != nil {
			return nil, errs.FromContext(ctx)
		}
		// A response that dies mid-body is the worker dying, not data
		// corruption — still a re-dispatch.
		return nil, errs.Unavailable("dist: worker %q: truncated response: %v", w.name, err)
	}
	return &sr, nil
}

// statusError maps a non-200 answer back onto the taxonomy — the inverse
// of errs.HTTPStatus, so a sentinel crossing the wire comes back as
// itself: 503 re-dispatches, 400 is a protocol bug, and a 500-class scan
// failure stays fatal exactly as it would be in-process. 429 and 503 are
// both "come back later" (ErrUnavailable), and when the server says how
// long — the Retry-After header — the hint rides along so the retry
// layer waits at least that long instead of hammering an overloaded or
// draining worker.
func (w *HTTPWorker) statusError(resp *http.Response) error {
	msg := "(no body)"
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil && len(b) > 0 {
		var eb server.ErrorBody
		if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		} else {
			msg = string(bytes.TrimSpace(b))
		}
	}
	switch resp.StatusCode {
	case 400:
		return errs.Invalid("dist: worker %q: %s", w.name, msg)
	case 404:
		return errs.NotFound("dist: worker %q: %s", w.name, msg)
	case 429, 503:
		err := errs.Unavailable("dist: worker %q: status %d: %s", w.name, resp.StatusCode, msg)
		return errs.RetryAfter(err, retryAfterOf(resp))
	case 499:
		return fmt.Errorf("dist: worker %q: %s: %w", w.name, msg, errs.ErrCancelled)
	case 504:
		return fmt.Errorf("dist: worker %q: %s: %w", w.name, msg, errs.ErrDeadline)
	default:
		return fmt.Errorf("dist: worker %q: status %d: %s", w.name, resp.StatusCode, msg)
	}
}

// retryAfterOf parses the response's Retry-After header (delta-seconds
// form). 0 when absent or unparseable — errs.RetryAfter treats that as
// "no hint".
func retryAfterOf(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// WorkerServer is the daemon half: it owns a plan over its local corpus
// view and answers POST /v1/scan by executing the requested task through
// an in-process Local worker. The Local (and its amortised automata and
// lexicons) is cached per spec — coordinators send one spec per run, so
// steady state is build-once.
//
//	POST /v1/scan  execute one plan task, return serialized kernel states
//	GET  /healthz  liveness
//
// Errors leave through server.WriteError, so the status codes are
// exactly errs.HTTPStatus's table and HTTPWorker's statusError inverts
// them faithfully.
type WorkerServer struct {
	name string
	plan *scan.Plan

	mu      sync.Mutex
	local   *Local
	specKey string
	fault   func(ctx context.Context, task int) error
}

// NewWorkerServer returns a worker daemon over the plan.
func NewWorkerServer(name string, plan *scan.Plan) *WorkerServer {
	return &WorkerServer{name: name, plan: plan}
}

// SetFault installs a per-task fault hook on the daemon's Local workers
// — how `cmd/worker -fault` injects seeded task kills on the server
// side of the wire. Must be called before the first request.
func (s *WorkerServer) SetFault(f func(ctx context.Context, task int) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
	if s.local != nil {
		s.local.SetFault(f)
	}
}

// Handler returns the HTTP handler; the caller owns the http.Server and
// listener around it.
func (s *WorkerServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// localFor returns the cached Local for the spec, building one on first
// use or spec change.
func (s *WorkerServer) localFor(spec Spec) (*Local, error) {
	key, err := json.Marshal(spec)
	if err != nil {
		return nil, errs.Invalid("dist: encoding spec: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local == nil || s.specKey != string(key) {
		l, err := NewLocal(s.name, s.plan, spec)
		if err != nil {
			return nil, err
		}
		l.SetFault(s.fault)
		s.local, s.specKey = l, string(key)
	}
	return s.local, nil
}

func (s *WorkerServer) handleScan(w http.ResponseWriter, r *http.Request) {
	var req ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteError(w, errs.Invalid("dist: bad scan request: %v", err))
		return
	}
	l, err := s.localFor(req.Spec)
	if err != nil {
		server.WriteError(w, err)
		return
	}
	resp, err := l.Scan(r.Context(), &req)
	if err != nil {
		server.WriteError(w, errs.Categorize(err))
		return
	}
	server.WriteJSON(w, http.StatusOK, resp)
}

// WorkerHealth is the worker daemon's /healthz document.
type WorkerHealth struct {
	Status string `json:"status"`
	Name   string `json:"name"`
	Files  int    `json:"files"`
	Tasks  int    `json:"tasks"`
	PlanFP string `json:"plan_fp"`
}

func (s *WorkerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, &WorkerHealth{
		Status: "ok",
		Name:   s.name,
		Files:  len(s.plan.Sources),
		Tasks:  len(s.plan.Tasks),
		PlanFP: fmt.Sprintf("%016x", s.plan.Fingerprint()),
	})
}
