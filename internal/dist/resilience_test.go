package dist

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/retry"
	"repro/internal/scan"
)

// fastRetryOpts keeps the in-place retry loop but with millisecond
// backoff, so recovery tests run fast.
func fastRetryOpts() Options {
	return Options{Retry: retry.Policy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}}
}

// TestRetryRecoversTransientFaults gives a single worker a fault hook
// that fails the first attempt of every task with ErrUnavailable. The
// retry layer must absorb each failure in place — same worker, backoff,
// no quarantine, no death — and the run must stay bit-identical.
func TestRetryRecoversTransientFaults(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	w, err := NewLocal("flaky", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]int{}
	w.SetFault(func(ctx context.Context, task int) error {
		mu.Lock()
		defer mu.Unlock()
		seen[task]++
		if seen[task] == 1 {
			return errs.Unavailable("transient fault on task %d", task)
		}
		return nil
	})

	m, rep, err := Measure(context.Background(), p, spec, []Worker{w}, fastRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if rep.Retries != len(p.Tasks) {
		t.Errorf("Retries = %d, want %d (one per task)", rep.Retries, len(p.Tasks))
	}
	s := rep.Workers[0]
	if s.Won != len(p.Tasks) || s.Quarantined != 0 || s.Dead {
		t.Errorf("worker stats = %+v, want all tasks won with no quarantine or death", s)
	}
}

// TestRetryBudgetExhaustionFailsLoudly pins the budget backstop: a
// systemic fault that would retry forever instead burns the shared
// budget and fails the run with the retryable error, not a hang.
func TestRetryBudgetExhaustionFailsLoudly(t *testing.T) {
	spec := Spec{}
	p := testPlan(t, 12)
	w, err := NewLocal("doomed", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	w.SetFault(func(ctx context.Context, task int) error {
		return errs.Unavailable("systemic fault")
	})
	w.SetHealth(alwaysDown)

	opts := fastRetryOpts()
	opts.RetryBudget = 2
	opts.Health = HealthOptions{TripAfter: 1, ProbeInterval: time.Millisecond, MaxProbes: 1}
	_, rep, err := Measure(context.Background(), p, spec, []Worker{w}, opts)
	if !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if rep.Retries > 2 {
		t.Errorf("Retries = %d, want <= budget of 2", rep.Retries)
	}
}

// TestQuarantineAndReadmission trips a worker's health gate with a
// burst of failures, then lets its probe succeed: the worker must be
// quarantined (not killed), re-admitted, and finish the run. This is
// the scenario the old permanent-death model got wrong.
func TestQuarantineAndReadmission(t *testing.T) {
	spec := Spec{Patterns: []string{"the"}}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)

	w, err := NewLocal("wobbly", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	w.SetFault(func(ctx context.Context, task int) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return errs.Unavailable("brownout")
		}
		return nil
	})
	// Health hook unset: Probe answers healthy, so quarantine ends in
	// re-admission at the first probe tick.

	opts := Options{
		Retry:  retry.Policy{MaxAttempts: 1},
		Health: HealthOptions{TripAfter: 1, ProbeInterval: time.Millisecond, MaxProbes: 3},
	}
	m, rep, err := Measure(context.Background(), p, spec, []Worker{w}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	s := rep.Workers[0]
	if s.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", s.Quarantined)
	}
	if s.Dead {
		t.Errorf("worker marked dead despite healthy probe: %+v", s)
	}
	if s.Won != len(p.Tasks) {
		t.Errorf("worker won %d of %d tasks after re-admission", s.Won, len(p.Tasks))
	}
}

// partialWant folds every plan task except the skipped ones — the
// ground truth a degraded run must match exactly.
func partialWant(t *testing.T, p *scan.Plan, spec Spec, skip map[int]bool) *core.Measurement {
	t.Helper()
	mk, err := spec.Kernels()
	if err != nil {
		t.Fatal(err)
	}
	var tasks []scan.Task
	for i, task := range p.Tasks {
		if !skip[i] {
			tasks = append(tasks, task)
		}
	}
	if err := scan.Execute(context.Background(), p, tasks, scan.Options{}, mk.List...); err != nil {
		t.Fatal(err)
	}
	return mk.Measurement()
}

// TestAllowPartialSkipsCorruptTask injects deterministic corruption
// into one task. Without AllowPartial the run must fail with
// ErrCorrupt; with it, the run completes degraded, the measurement
// equals the fold over the surviving tasks exactly, and the manifest
// names what was skipped.
func TestAllowPartialSkipsCorruptTask(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}}
	p := testPlan(t, 24)
	const bad = 1
	corrupt := func(ctx context.Context, task int) error {
		if task == bad {
			return errs.Corrupt("task %d: checksum mismatch in doc", task)
		}
		return nil
	}

	newWorker := func() *Local {
		w, err := NewLocal("w0", p, spec)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFault(corrupt)
		return w
	}

	t.Run("strict-run-fails", func(t *testing.T) {
		_, rep, err := Measure(context.Background(), p, spec, []Worker{newWorker()}, Options{})
		if !errors.Is(err, errs.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if rep.Degraded() {
			t.Error("strict failure must not report a degraded manifest")
		}
	})

	t.Run("degraded-run-completes", func(t *testing.T) {
		want := partialWant(t, p, spec, map[int]bool{bad: true})
		m, rep, err := Measure(context.Background(), p, spec, []Worker{newWorker()}, Options{AllowPartial: true})
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, m, want)
		if !rep.Degraded() {
			t.Fatal("run with a corrupt task not reported degraded")
		}
		if len(rep.Skipped) != 1 {
			t.Fatalf("Skipped = %+v, want exactly one entry", rep.Skipped)
		}
		sk := rep.Skipped[0]
		pt := p.Tasks[bad]
		if sk.Task != bad || sk.Files != pt.Hi-pt.Lo || sk.Bytes != pt.Bytes || sk.Shard != pt.Shard {
			t.Errorf("manifest entry %+v does not match plan task %d (%+v)", sk, bad, pt)
		}
		if sk.Reason == "" {
			t.Error("manifest entry has no reason")
		}
	})
}

// TestAllowPartialMultipleWorkers checks the degraded fold stays
// bit-identical at higher worker counts: the skip set is a function of
// the data, not the schedule.
func TestAllowPartialMultipleWorkers(t *testing.T) {
	spec := Spec{Patterns: []string{"error", "the"}, Complexity: true}
	p := testPlan(t, 24)
	skip := map[int]bool{0: true, 2: true}
	want := partialWant(t, p, spec, skip)
	corrupt := func(ctx context.Context, task int) error {
		if skip[task] {
			return errs.Corrupt("task %d: bad record", task)
		}
		return nil
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers-%d", n), func(t *testing.T) {
			ws := localWorkers(t, p, spec, n)
			for _, w := range ws {
				w.(*Local).SetFault(corrupt)
			}
			m, rep, err := Measure(context.Background(), p, spec, ws, Options{AllowPartial: true})
			if err != nil {
				t.Fatal(err)
			}
			sameMeasurement(t, m, want)
			if len(rep.Skipped) != len(skip) {
				t.Fatalf("Skipped = %+v, want %d entries", rep.Skipped, len(skip))
			}
			for i, sk := range rep.Skipped {
				if !skip[sk.Task] {
					t.Errorf("entry %d skipped task %d, not in the corrupt set", i, sk.Task)
				}
			}
		})
	}
}

// TestJournalResume is the checkpoint/resume acceptance scenario: kill
// the coordinator after K of N tasks, resume from the journal, and
// check the resumed run (a) re-runs exactly N−K tasks and (b) produces
// bit-identical output to an uninterrupted run.
func TestJournalResume(t *testing.T) {
	spec := Spec{Patterns: []string{"error", "the"}, Complexity: true}
	p := testPlan(t, 24)
	want := singleNode(t, p, spec)
	n := len(p.Tasks)
	k := n / 2
	if k == 0 {
		t.Fatalf("plan too small: %d tasks", n)
	}
	path := filepath.Join(t.TempDir(), "run.journal")

	// First run: a single worker completes tasks 0..k-1 (task order is
	// deterministic with one worker), then the "coordinator dies" — the
	// fault hook cancels the run context mid-task k.
	j1, err := CreateJournal(path, p.Fingerprint(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1, err := NewLocal("w0", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	w1.SetFault(func(fctx context.Context, task int) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls > k {
			cancel()
			return errs.FromContext(fctx)
		}
		return nil
	})
	_, _, err = Measure(ctx, p, spec, []Worker{w1}, Options{Journal: j1})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("interrupted run: err = %v, want ErrCancelled", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: reopen the journal, count actual scans, and finish.
	j2, err := OpenJournal(path, p.Fingerprint(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.States()); got != k {
		t.Fatalf("journal resumed %d tasks, want %d", got, k)
	}
	w2, err := NewLocal("w0", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	scanned := 0
	w2.SetFault(func(ctx context.Context, task int) error {
		mu.Lock()
		defer mu.Unlock()
		scanned++
		if task < k {
			t.Errorf("resumed run re-scanned journaled task %d", task)
		}
		return nil
	})
	m, rep, err := Measure(context.Background(), p, spec, []Worker{w2}, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if rep.Resumed != k {
		t.Errorf("Resumed = %d, want %d", rep.Resumed, k)
	}
	if scanned != n-k {
		t.Errorf("resumed run scanned %d tasks, want %d", scanned, n-k)
	}
	if rep.Workers[0].Won != n-k {
		t.Errorf("resumed worker won %d tasks, want %d", rep.Workers[0].Won, n-k)
	}
}

// TestJournalResumeCompletedRun checks resuming a journal that already
// holds every task: no scans at all, bit-identical output.
func TestJournalResumeCompletedRun(t *testing.T) {
	spec := Spec{Patterns: []string{"error"}}
	p := testPlan(t, 12)
	want := singleNode(t, p, spec)
	path := filepath.Join(t.TempDir(), "run.journal")

	j1, err := CreateJournal(path, p.Fingerprint(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Measure(context.Background(), p, spec, localWorkers(t, p, spec, 2), Options{Journal: j1}); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	j2, err := OpenJournal(path, p.Fingerprint(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	w, err := NewLocal("w0", p, spec)
	if err != nil {
		t.Fatal(err)
	}
	w.SetFault(func(ctx context.Context, task int) error {
		t.Errorf("fully-journaled run scanned task %d", task)
		return nil
	})
	m, rep, err := Measure(context.Background(), p, spec, []Worker{w}, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, m, want)
	if rep.Resumed != len(p.Tasks) {
		t.Errorf("Resumed = %d, want %d", rep.Resumed, len(p.Tasks))
	}
}
