package scan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"testing"

	"repro/internal/errs"
)

// bytesSource builds a Source over an in-memory payload.
func bytesSource(name string, data []byte) Source {
	return Source{
		Name:    name,
		Size:    int64(len(data)),
		Content: OpenFunc(func() (io.Reader, error) { return bytes.NewReader(data), nil }),
	}
}

// testCorpus is a deterministic set of sources with varied sizes,
// including empty files.
func testCorpus(n int) ([]Source, [][]byte) {
	srcs := make([]Source, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		size := (i * 137) % 1000
		if i%7 == 3 {
			size = 0
		}
		data := make([]byte, size)
		for j := range data {
			data[j] = byte((i*31 + j*7) % 251)
		}
		payloads[i] = data
		srcs[i] = bytesSource(fmt.Sprintf("file-%04d", i), data)
	}
	return srcs, payloads
}

func refSum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

func TestRunChecksumMatchesReferenceAtAnyWorkerCount(t *testing.T) {
	srcs, payloads := testCorpus(40)
	for _, workers := range []int{1, 2, 8} {
		for _, block := range []int{0, 1, 7, 64} {
			ck := NewChecksum()
			err := Run(context.Background(), srcs, Options{Workers: workers, BlockSize: block}, ck)
			if err != nil {
				t.Fatalf("workers=%d block=%d: %v", workers, block, err)
			}
			sums := ck.Sums()
			if len(sums) != len(srcs) {
				t.Fatalf("workers=%d: %d sums, want %d", workers, len(sums), len(srcs))
			}
			for i, s := range sums {
				if s.Name != srcs[i].Name {
					t.Fatalf("workers=%d: sum %d is %q, want %q (merge order broken)",
						workers, i, s.Name, srcs[i].Name)
				}
				if want := refSum(payloads[i]); s.Sum != want {
					t.Fatalf("workers=%d block=%d: %s sum %x, want %x",
						workers, block, s.Name, s.Sum, want)
				}
			}
		}
	}
}

func TestRunOrderedCombinedEqualsConcatHash(t *testing.T) {
	srcs, payloads := testCorpus(25)
	var concat []byte
	for _, p := range payloads {
		concat = append(concat, p...)
	}
	want := refSum(concat)
	for _, workers := range []int{1, 2, 8} {
		c := NewCombined()
		if err := RunOrdered(context.Background(), srcs, Options{Workers: workers}, c); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if c.Sum() != want {
			t.Fatalf("workers=%d: combined %x, want %x", workers, c.Sum(), want)
		}
	}
	// Empty corpus hashes to the canonical empty sum.
	c := NewCombined()
	if err := RunOrdered(context.Background(), nil, Options{}, c); err != nil {
		t.Fatal(err)
	}
	if c.Sum() != refSum(nil) {
		t.Fatalf("empty corpus combined %x, want offset basis", c.Sum())
	}
}

func TestRunValidatesDeclaredSize(t *testing.T) {
	short := Source{
		Name:    "short",
		Size:    10,
		Content: OpenFunc(func() (io.Reader, error) { return bytes.NewReader([]byte("abc")), nil }),
	}
	long := Source{
		Name:    "long",
		Size:    2,
		Content: OpenFunc(func() (io.Reader, error) { return bytes.NewReader([]byte("abcdef")), nil }),
	}
	for _, src := range []Source{short, long} {
		err := Run(context.Background(), []Source{src}, Options{}, NewChecksum())
		if !errors.Is(err, errs.ErrCorrupt) {
			t.Fatalf("%s: Run returned %v, want ErrCorrupt", src.Name, err)
		}
		err = RunOrdered(context.Background(), []Source{src}, Options{}, NewCombined())
		if !errors.Is(err, errs.ErrCorrupt) {
			t.Fatalf("%s: RunOrdered returned %v, want ErrCorrupt", src.Name, err)
		}
	}
}

func TestRunRequiresKernelsAndContent(t *testing.T) {
	srcs, _ := testCorpus(3)
	if err := Run(context.Background(), srcs, Options{}); !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("no kernels: %v, want ErrInvalid", err)
	}
	if err := RunOrdered(context.Background(), srcs, Options{}); !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("no kernels (ordered): %v, want ErrInvalid", err)
	}
	meta := Source{Name: "meta", Size: 5}
	if err := Run(context.Background(), []Source{meta}, Options{}, NewChecksum()); !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("metadata-only: %v, want ErrInvalid", err)
	}
}

func TestRunCancellation(t *testing.T) {
	srcs, _ := testCorpus(32)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		err := Run(cancelled, srcs, Options{Workers: workers}, NewChecksum())
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: %v, want ErrCancelled", workers, err)
		}
	}
	if err := RunOrdered(cancelled, srcs, Options{}, NewCombined()); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("ordered: %v, want ErrCancelled", err)
	}
}

func TestRunReportsLowestFailingIndex(t *testing.T) {
	srcs, _ := testCorpus(12)
	boom := errors.New("boom")
	srcs[3].Content = OpenFunc(func() (io.Reader, error) { return nil, fmt.Errorf("three: %w", boom) })
	srcs[9].Content = OpenFunc(func() (io.Reader, error) { return nil, errors.New("nine") })
	err := Run(context.Background(), srcs, Options{Workers: 4}, NewChecksum())
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the lowest failing index's error (index 3)", err)
	}
}

func TestSequentialOrder(t *testing.T) {
	srcs := []Source{
		{Name: "c", Shard: "s2.pack", Offset: 10},
		{Name: "a", Shard: "s1.pack", Offset: 500},
		{Name: "plain"},
		{Name: "b", Shard: "s1.pack", Offset: 20},
		{Name: "d", Shard: "s2.pack", Offset: 5},
	}
	got := SequentialOrder(srcs)
	want := []string{"plain", "b", "a", "d", "c"}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, got[i].Name, name, names(got))
		}
	}
	// Input untouched.
	if srcs[0].Name != "c" {
		t.Fatal("SequentialOrder mutated its input")
	}
	// No locality: same slice back, order preserved.
	plain := []Source{{Name: "y"}, {Name: "x"}}
	if out := SequentialOrder(plain); &out[0] != &plain[0] {
		t.Fatal("unsharded input should be returned as-is")
	}
}

func names(srcs []Source) []string {
	out := make([]string, len(srcs))
	for i, s := range srcs {
		out[i] = s.Name
	}
	return out
}

// shortReader returns at most 3 bytes per Read — the scan loop must
// tolerate readers that never fill the block buffer.
type shortReader struct {
	data []byte
	off  int
}

func (r *shortReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := 3
	if n > len(p) {
		n = len(p)
	}
	n = copy(p[:n], r.data[r.off:])
	r.off += n
	return n, nil
}

func TestRunHandlesShortReads(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	src := Source{
		Name:    "short-reads",
		Size:    int64(len(data)),
		Content: OpenFunc(func() (io.Reader, error) { return &shortReader{data: data}, nil }),
	}
	ck := NewChecksum()
	if err := Run(context.Background(), []Source{src}, Options{}, ck); err != nil {
		t.Fatal(err)
	}
	if got := ck.Sums()[0].Sum; got != refSum(data) {
		t.Fatalf("short-read sum %x, want %x", got, refSum(data))
	}
}
