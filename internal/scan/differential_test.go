package scan_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/scan"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// diffPatterns are the grep patterns for the differential corpus; they
// overlap each other ("the"/"they", "an"/"and") and self-overlap ("anan"
// never, "aa" in "aaaa") to stress the automaton's counting semantics.
var diffPatterns = []string{"the", "they", "an", "and", "aa", "error"}

// diffCorpus builds deterministic text files exercising every tokenizer
// edge the streaming kernels must reproduce: sentence punctuation,
// multi-byte runes (word and punctuation), apostrophes, pattern matches
// placed to straddle small block boundaries, and empty files.
func diffCorpus(t *testing.T, n int) *vfs.FS {
	t.Helper()
	pieces := []string{
		"the quick brown fox. ",
		"they said it's fine! ",
		"an and and anan aaaa?\n",
		"café naïve résumé — dash. ",
		"errors error erroneous\n",
		"12 o'clock... ",
		"é ",
	}
	fs := vfs.NewFS()
	for i := 0; i < n; i++ {
		var b bytes.Buffer
		if i%9 != 4 { // every ninth file is empty
			for j := 0; j < 3+i%5; j++ {
				b.WriteString(pieces[(i+j)%len(pieces)])
			}
		}
		if err := fs.Add(vfs.BytesFile(fmt.Sprintf("file-%04d", i), append([]byte(nil), b.Bytes()...))); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// TestFusedScanMatchesReferenceImplementations is the acceptance
// differential: one fused run of all four kernels must be byte-identical
// to the per-kernel reference implementations (vfs.Checksum,
// textproc.Analyze, per-pattern Searcher counts, workload.ComplexityOf)
// at workers 1, 2 and 8 — including with a tiny block size that forces
// every token, match and rune to straddle block boundaries.
func TestFusedScanMatchesReferenceImplementations(t *testing.T) {
	fs := diffCorpus(t, 30)
	files := fs.List()
	tagger := textproc.NewTagger()

	// Reference results, computed the slow way: one full pass per kernel.
	type ref struct {
		sum        uint64
		stats      textproc.TextStats
		lines      int64
		counts     []int64
		complexity float64
	}
	refs := make([]ref, len(files))
	searchers := make([]*textproc.Searcher, len(diffPatterns))
	for i, p := range diffPatterns {
		s, err := textproc.NewSearcher(p)
		if err != nil {
			t.Fatal(err)
		}
		searchers[i] = s
	}
	for i, f := range files {
		data, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		sum, err := vfs.Checksum(f)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, len(diffPatterns))
		for j, s := range searchers {
			counts[j] = s.CountBytes(data)
		}
		refs[i] = ref{
			sum:        sum,
			stats:      textproc.Analyze(data),
			lines:      int64(bytes.Count(data, []byte("\n"))),
			counts:     counts,
			complexity: workload.ComplexityOf(data, tagger),
		}
	}

	ms, err := textproc.NewMultiSearcher(diffPatterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, block := range []int{3, 64, 0} {
			ck := scan.NewChecksum()
			st := textproc.NewStatsKernel()
			mk := textproc.NewMatchKernel(ms)
			cx := workload.NewComplexityKernel(tagger)
			err := scan.Run(context.Background(), vfs.Sources(files),
				scan.Options{Workers: workers, BlockSize: block}, ck, st, mk, cx)
			if err != nil {
				t.Fatalf("workers=%d block=%d: %v", workers, block, err)
			}
			sums, stats, matches, cplx := ck.Sums(), st.Files(), mk.Files(), cx.Files()
			for i, f := range files {
				tag := fmt.Sprintf("workers=%d block=%d file=%s", workers, block, f.Name)
				if sums[i].Name != f.Name || stats[i].Name != f.Name ||
					matches[i].Name != f.Name || cplx[i].Name != f.Name {
					t.Fatalf("%s: kernel merge order diverged from input order", tag)
				}
				if sums[i].Sum != refs[i].sum {
					t.Errorf("%s: checksum %x, want %x", tag, sums[i].Sum, refs[i].sum)
				}
				if stats[i].Stats != refs[i].stats {
					t.Errorf("%s: stats %+v, want %+v", tag, stats[i].Stats, refs[i].stats)
				}
				if stats[i].Lines != refs[i].lines {
					t.Errorf("%s: lines %d, want %d", tag, stats[i].Lines, refs[i].lines)
				}
				if !reflect.DeepEqual(matches[i].Counts, refs[i].counts) {
					t.Errorf("%s: counts %v, want %v", tag, matches[i].Counts, refs[i].counts)
				}
				if cplx[i].Complexity != refs[i].complexity {
					t.Errorf("%s: complexity %v, want %v", tag, cplx[i].Complexity, refs[i].complexity)
				}
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// TestFoldedMultiSearcherMatchesFoldedSearcher pins the fold semantics of
// the automaton to the reference BMH searcher.
func TestFoldedMultiSearcherMatchesFoldedSearcher(t *testing.T) {
	text := []byte("The THEY theatre ANDante AA aa aA Error ERRORS the")
	ms, err := textproc.NewFoldedMultiSearcher(diffPatterns)
	if err != nil {
		t.Fatal(err)
	}
	got := ms.CountBytes(text)
	for i, p := range diffPatterns {
		s, err := textproc.NewFoldedSearcher(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.CountBytes(text); got[i] != want {
			t.Errorf("pattern %q: folded count %d, want %d", p, got[i], want)
		}
	}
}
