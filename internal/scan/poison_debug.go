//go:build scandebug

package scan

// PoisonEnabled reports whether this build poisons recycled scan
// buffers (the `scandebug` build tag).
const PoisonEnabled = true

// poisonByte overwrites every recycled block buffer in scandebug builds:
// a kernel that illegally retained a Block slice sees 0xDB garbage
// instead of stale-but-plausible bytes, turning a silent corruption into
// a loud test failure.
const poisonByte = 0xDB

func poison(b []byte) {
	for i := range b {
		b[i] = poisonByte
	}
}
