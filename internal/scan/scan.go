// Package scan is the fused single-pass scan engine: it reads each input
// file's bytes exactly once through a pooled block buffer and feeds every
// registered kernel per block, so a run that checksums, greps and measures
// text statistics costs one open and one streaming read per file instead of
// one per kernel. The paper's whole premise is that per-file overhead — not
// compute — dominates text processing over many-small-file corpora; pass
// fusion removes the software re-introduction of that overhead.
//
// Determinism contract: results are bit-identical at any worker count,
// including 1, because
//
//   - every file is scanned by exactly one worker into a private kernel set
//     (forked from the registered prototypes, recycled through a free list),
//   - per-file kernel state is merged into the prototypes strictly in input
//     order (a merge frontier advances as files complete, regardless of
//     which worker finished them first), and
//   - dispatch, fast-fail and cancellation semantics are par.Pool's:
//     the reported error is the one from the lowest failing index, and
//     Ctx cancellation maps to the typed errs sentinels.
//
// Kernels own the block-boundary problem: a kernel whose unit of work can
// straddle two Block calls must carry the straddle itself — bounded
// carry-over bytes (literal matchers keep at most len(pattern)-1 bytes),
// automaton state (Aho–Corasick needs only its node index), or an
// in-flight token buffer (the text-stats analyzer). The engine never
// re-delivers bytes.
package scan

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/errs"
	"repro/internal/par"
)

// DefaultBlockSize is the streaming window used when Options.BlockSize is
// zero: large enough to amortise per-block kernel dispatch, small enough
// that a worker set's resident buffer stays cache-friendly.
const DefaultBlockSize = 128 * 1024

// Opener provides a Source's bytes. Open must return an independent
// reader per call; the engine calls it exactly once per file per run and
// closes the reader when it implements io.Closer. It is an interface
// rather than a func field so adapters holding a pointer (vfs files, pack
// members) cost no per-source closure allocation.
type Opener interface {
	Open() (io.Reader, error)
}

// OpenFunc adapts a plain function to an Opener (handy for tests and
// ad-hoc sources).
type OpenFunc func() (io.Reader, error)

// Open implements Opener.
func (f OpenFunc) Open() (io.Reader, error) { return f() }

// BytesSource provides a source's complete content as a borrowed byte
// slice — the zero-copy path for memory-mapped pack members. The slice
// must stay valid and immutable for the duration of the scan; the engine
// never writes through it and never frees it. Kernels still receive the
// bytes in BlockSize windows (subslices, no copying), so the block-carry
// contract and block-split determinism are identical to the streaming
// path.
type BytesSource interface {
	Bytes() ([]byte, error)
}

// BytesFunc adapts a plain function to a BytesSource.
type BytesFunc func() ([]byte, error)

// Bytes implements BytesSource.
func (f BytesFunc) Bytes() ([]byte, error) { return f() }

// Source is one scannable input: a named, sized byte stream. Shard and
// Offset optionally record the file's physical location inside a shared
// container (a packstore shard): SequentialOrder uses them to keep reads
// sequential on disk. A non-nil Raw switches the engine to the zero-copy
// path: kernels are fed borrowed windows of Raw's slice and Content is
// never opened — no block-buffer pool traffic at all.
type Source struct {
	Name    string
	Size    int64
	Shard   string
	Offset  int64
	Content Opener
	Raw     BytesSource
}

// Kernel is a streaming computation fed one file at a time. The engine
// drives the cycle Begin(file) → Block(bytes)* → End() on a forked
// instance — End folds the completed file into the instance's own
// accumulation — then hands that instance to the registered prototype's
// Merge, always in input order. Merge folds the other kernel's entire
// accumulation (one file for an engine-forked instance, a whole shard's
// worth for one restored via StateCodec) and drains it, so recycled
// instances start empty.
//
// Block receives a window of the file's bytes, valid only for the
// duration of the call; kernels MUST NOT retain it (not even until End).
// On the streaming path the window is a pooled buffer that another
// worker will overwrite; on the zero-copy path it borrows a memory
// mapping that is unmapped when the pack reader closes. A kernel that
// needs bytes past the call must copy them into its own state (the
// stream analyzer's in-flight word buffer is the model). Builds with the
// `scandebug` tag poison recycled buffers with 0xDB so retention bugs
// surface as garbage instead of silent corruption; `go test -race` runs
// catch cross-worker retention. Merge is called on the prototype only,
// never concurrently.
type Kernel interface {
	// Fork returns a fresh instance sharing the receiver's read-only
	// configuration (pattern automata, lexicons) but no accumulation.
	Fork() Kernel
	// Begin resets the kernel for a new file.
	Begin(src Source)
	// Block feeds the next window of the file's bytes.
	Block(p []byte)
	// End marks the file complete; the kernel finalises the per-file
	// state and folds it into its own accumulation.
	End()
	// Merge folds the other kernel's (same concrete type) accumulated
	// results into the receiver and drains the other. The engine
	// guarantees input order and never calls Merge concurrently.
	Merge(other Kernel)
}

// Options configures a scan run.
type Options struct {
	// Workers bounds the fan-out (0 or negative = GOMAXPROCS; 1 = serial).
	Workers int
	// BlockSize is the streaming window in bytes (0 = DefaultBlockSize).
	BlockSize int
}

// Run scans every source exactly once, feeding all kernels per block, and
// merges per-file results into the kernel prototypes in input order. On
// error (lowest failing index, per the par contract) or cancellation the
// prototypes hold an unspecified prefix of the results and must be
// discarded. Completed runs are bit-identical at any worker count.
func Run(ctx context.Context, srcs []Source, opts Options, kernels ...Kernel) error {
	if len(kernels) == 0 {
		return errs.Invalid("scan: no kernels registered")
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	pool := par.New(opts.Workers)
	n := len(srcs)

	// Pooled per-file scratch: block buffers and forked kernel sets. The
	// free list is bounded by the worker count plus the merge frontier's
	// straggler window, so a million-file scan allocates a handful of sets,
	// not one per file.
	bufs := sync.Pool{New: func() any {
		b := make([]byte, blockSize)
		return &b
	}}
	var mu sync.Mutex
	var free [][]Kernel
	slots := make([][]Kernel, n)
	frontier := 0

	fork := func() []Kernel {
		mu.Lock()
		if k := len(free) - 1; k >= 0 {
			set := free[k]
			free = free[:k]
			mu.Unlock()
			return set
		}
		mu.Unlock()
		set := make([]Kernel, len(kernels))
		for i, k := range kernels {
			set[i] = k.Fork()
		}
		return set
	}

	return pool.ForEachCtx(ctx, n, func(i int) error {
		set := fork()
		var err error
		if srcs[i].Raw != nil {
			// Zero-copy path: borrowed windows, no pool traffic.
			err = scanRaw(srcs[i], set, blockSize)
		} else {
			bp := bufs.Get().(*[]byte)
			err = scanOne(srcs[i], set, *bp)
			poison(*bp)
			bufs.Put(bp)
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			free = append(free, set) // Begin resets; safe to recycle
			return err
		}
		slots[i] = set
		// Advance the merge frontier: every contiguously-completed file is
		// folded into the prototypes in input order and its set recycled.
		for frontier < n && slots[frontier] != nil {
			done := slots[frontier]
			slots[frontier] = nil
			for j, k := range done {
				kernels[j].Merge(k)
			}
			free = append(free, done)
			frontier++
		}
		return nil
	})
}

// scanRaw feeds one zero-copy source through the kernel set: the
// complete content comes back as one borrowed slice and kernels see it
// in blockSize windows — subslices of the original, nothing copied, no
// buffer recycled. The length is validated against the declared size,
// the same corruption contract as the streaming path.
func scanRaw(src Source, set []Kernel, blockSize int) error {
	data, err := src.Raw.Bytes()
	if err != nil {
		return fmt.Errorf("scan: raw open %q: %w", src.Name, err)
	}
	if int64(len(data)) != src.Size {
		return errs.Corrupt("scan: %q declared %d bytes but content has %d", src.Name, src.Size, len(data))
	}
	for _, k := range set {
		k.Begin(src)
	}
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		b := data[off:end]
		for _, k := range set {
			k.Block(b)
		}
	}
	for _, k := range set {
		k.End()
	}
	return nil
}

// scanOne streams one source through the kernel set: exactly one Open,
// one pass of reads, one Close. The byte count is validated against the
// declared size — short or over-long content is as corrupt here as it is
// in vfs.ReadInto.
func scanOne(src Source, set []Kernel, buf []byte) error {
	if src.Content == nil {
		return errs.Invalid("scan: source %q has no content", src.Name)
	}
	r, err := src.Content.Open()
	if err != nil {
		return fmt.Errorf("scan: open %q: %w", src.Name, err)
	}
	for _, k := range set {
		k.Begin(src)
	}
	var total int64
	var rerr error
	for {
		n, err := r.Read(buf)
		if n > 0 {
			total += int64(n)
			for _, k := range set {
				k.Block(buf[:n])
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = fmt.Errorf("scan: reading %q: %w", src.Name, err)
			break
		}
	}
	if c, ok := r.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && rerr == nil {
			rerr = fmt.Errorf("scan: closing %q: %w", src.Name, cerr)
		}
	}
	if rerr != nil {
		return rerr
	}
	if total != src.Size {
		return errs.Corrupt("scan: %q declared %d bytes but content has %d", src.Name, src.Size, total)
	}
	for _, k := range set {
		k.End()
	}
	return nil
}
