//go:build scandebug

package scan

import (
	"bytes"
	"context"
	"io"
	"testing"
)

// retainingKernel deliberately violates the Block contract: it keeps the
// last delivered slice instead of copying it. Under the scandebug tag the
// engine poisons recycled buffers, so the retained bytes are provably
// clobbered after the run — the mechanism this build mode exists for.
type retainingKernel struct {
	last []byte
}

func (k *retainingKernel) Fork() Kernel       { return k } // shared on purpose: keep the evidence
func (k *retainingKernel) Begin(Source)       {}
func (k *retainingKernel) Block(p []byte)     { k.last = p }
func (k *retainingKernel) End()               {}
func (k *retainingKernel) Merge(other Kernel) {}

// TestPoisonClobbersRetainedBuffers proves the scandebug mode works: a
// kernel that illegally retains a streaming Block slice observes 0xDB
// poison after the run, never the original bytes.
func TestPoisonClobbersRetainedBuffers(t *testing.T) {
	if !PoisonEnabled {
		t.Fatal("scandebug build must set PoisonEnabled")
	}
	content := bytes.Repeat([]byte("retain-me "), 20)
	srcs := []Source{{
		Name: "a.txt", Size: int64(len(content)),
		Content: OpenFunc(func() (io.Reader, error) { return bytes.NewReader(content), nil }),
	}}
	bad := &retainingKernel{}
	if err := Run(context.Background(), srcs, Options{Workers: 1}, bad); err != nil {
		t.Fatal(err)
	}
	if len(bad.last) == 0 {
		t.Fatal("kernel never saw a block")
	}
	for i, b := range bad.last {
		if b != poisonByte {
			t.Fatalf("retained byte %d is %#x, want poison %#x — recycled buffer was not clobbered", i, b, poisonByte)
		}
	}
}

// TestPoisonDoesNotChangeResults: poisoning recycles only — a compliant
// kernel's output is identical with poison on.
func TestPoisonDoesNotChangeResults(t *testing.T) {
	streaming, raw := rawCorpus(30)
	for _, srcs := range [][]Source{streaming, raw} {
		one := NewChecksum()
		if err := Run(context.Background(), srcs, Options{Workers: 1, BlockSize: 128}, one); err != nil {
			t.Fatal(err)
		}
		eight := NewChecksum()
		if err := Run(context.Background(), srcs, Options{Workers: 8, BlockSize: 128}, eight); err != nil {
			t.Fatal(err)
		}
		for i := range one.Sums() {
			if one.Sums()[i] != eight.Sums()[i] {
				t.Fatalf("file %d: workers=1 %+v != workers=8 %+v under poison", i, one.Sums()[i], eight.Sums()[i])
			}
		}
	}
}
