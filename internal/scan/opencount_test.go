package scan_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"repro/internal/scan"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// countingSources wraps each source's Open so the test can prove the
// engine's core economy claim: a fused run with all four kernels costs
// exactly one open (and one streaming read) per file.
func countingSources(srcs []scan.Source) ([]scan.Source, map[string]*int) {
	var mu sync.Mutex
	counts := make(map[string]*int, len(srcs))
	out := make([]scan.Source, len(srcs))
	for i, src := range srcs {
		src := src
		c := new(int)
		counts[src.Name] = c
		wrapped := src
		wrapped.Content = scan.OpenFunc(func() (io.Reader, error) {
			mu.Lock()
			*c++
			mu.Unlock()
			return src.Content.Open()
		})
		out[i] = wrapped
	}
	return out, counts
}

func fourKernels(t *testing.T) []scan.Kernel {
	t.Helper()
	ms, err := textproc.NewMultiSearcher([]string{"the", "and"})
	if err != nil {
		t.Fatal(err)
	}
	return []scan.Kernel{
		scan.NewChecksum(),
		textproc.NewStatsKernel(),
		textproc.NewMatchKernel(ms),
		workload.NewComplexityKernel(textproc.NewTagger()),
	}
}

func TestFusedRunOpensEachFileExactlyOnce(t *testing.T) {
	fs := diffCorpus(t, 24)
	for _, workers := range []int{1, 2, 8} {
		srcs, counts := countingSources(vfs.Sources(fs.List()))
		if err := scan.Run(context.Background(), srcs, scan.Options{Workers: workers}, fourKernels(t)...); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for name, c := range counts {
			if *c != 1 {
				t.Errorf("workers=%d: %s opened %d times, want exactly 1", workers, name, *c)
			}
		}
	}
}

func TestFusedRunOverPackedCorpusOpensEachMemberOnce(t *testing.T) {
	fs := diffCorpus(t, 24)
	dir := t.TempDir()
	// Two shards so the sequential order spans multiple containers.
	paths, err := fs.ExportPack(dir, vfs.PackOptions{ShardSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("want >= 2 shards for this test, got %d", len(paths))
	}
	packed, closer, err := vfs.ImportPack(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	for _, workers := range []int{1, 2, 8} {
		// Each member section is opened exactly once per fused run; the
		// shard *handles* were opened once for the whole FS at import (the
		// section readers share them), which is what keeps a packed scan at
		// O(shards) descriptors however many members there are.
		srcs, counts := countingSources(scan.SequentialOrder(vfs.Sources(packed.List())))
		if err := scan.Run(context.Background(), srcs, scan.Options{Workers: workers}, fourKernels(t)...); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for name, c := range counts {
			if *c != 1 {
				t.Errorf("workers=%d: packed member %s opened %d times, want exactly 1", workers, name, *c)
			}
		}
		// The sequential order really is shard-major, offset-ascending.
		var prevShard string
		var prevOff int64
		for _, s := range srcs {
			if s.Shard == prevShard && s.Offset < prevOff {
				t.Fatalf("workers=%d: offsets not ascending within shard %s", workers, s.Shard)
			}
			if s.Shard != prevShard {
				prevShard = s.Shard
			}
			prevOff = s.Offset
		}
	}
}
