package scan

// FNV-64a, inlined: the same function hash/fnv computes, but folded in a
// tight loop over each block with the running state in a register instead
// of behind an interface call per write. Per-file sums here are
// bit-identical to vfs.Checksum; the combined fold is bit-identical to
// hashing the concatenation of all files in input order.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnvFold advances the running FNV-64a state over p. The hash is one
// serial xor-multiply chain — unrolling cannot overlap the multiplies —
// but consuming eight bytes per iteration removes seven loop-bound checks
// and branches per chain step, bit-identical to the byte loop.
func fnvFold(h uint64, p []byte) uint64 {
	for len(p) >= 8 {
		h = (h ^ uint64(p[0])) * fnvPrime64
		h = (h ^ uint64(p[1])) * fnvPrime64
		h = (h ^ uint64(p[2])) * fnvPrime64
		h = (h ^ uint64(p[3])) * fnvPrime64
		h = (h ^ uint64(p[4])) * fnvPrime64
		h = (h ^ uint64(p[5])) * fnvPrime64
		h = (h ^ uint64(p[6])) * fnvPrime64
		h = (h ^ uint64(p[7])) * fnvPrime64
		p = p[8:]
	}
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// FileSum is one scanned file's identity: its name, declared size, and
// FNV-64a checksum of its content.
type FileSum struct {
	Name string
	Size int64
	Sum  uint64
}

// FingerprintSums folds every file's (name, size, checksum) into one
// FNV-64a corpus identity, in input order. Unlike the order-sequential
// Combined fold it is computable from the parallel per-file sums, so it
// is the corpus fingerprint the resident server and the distributed scan
// both report — equal fingerprints mean byte-identical manifests.
func FingerprintSums(sums []FileSum) uint64 {
	h := uint64(fnvOffset64)
	var buf [16]byte
	for _, s := range sums {
		h = fnvFoldString(h, s.Name)
		for i := 0; i < 8; i++ {
			buf[i] = byte(s.Size >> (8 * i))
			buf[8+i] = byte(s.Sum >> (8 * i))
		}
		h = fnvFold(h, buf[:])
	}
	return h
}

// Checksum is the per-file FNV-64a kernel: after a run it holds one
// FileSum per scanned file, in input order.
type Checksum struct {
	h    uint64
	cur  FileSum
	sums []FileSum
}

// NewChecksum returns a per-file checksum kernel prototype.
func NewChecksum() *Checksum { return &Checksum{} }

// Fork implements Kernel.
func (c *Checksum) Fork() Kernel { return &Checksum{} }

// Begin implements Kernel.
func (c *Checksum) Begin(src Source) {
	c.h = fnvOffset64
	c.cur = FileSum{Name: src.Name, Size: src.Size}
}

// Block implements Kernel.
func (c *Checksum) Block(p []byte) { c.h = fnvFold(c.h, p) }

// End implements Kernel: the completed file is folded into the kernel's
// own accumulation.
func (c *Checksum) End() {
	c.cur.Sum = c.h
	c.sums = append(c.sums, c.cur)
}

// Merge implements Kernel: it appends the other kernel's completed files
// — one for an engine-forked instance, a whole shard's worth for a
// restored one — preserving input order, and drains the other so a
// recycled instance starts empty.
func (c *Checksum) Merge(other Kernel) {
	o := other.(*Checksum)
	c.sums = append(c.sums, o.sums...)
	o.sums = o.sums[:0]
}

// Sums returns the per-file checksums in input order. The slice is owned
// by the kernel.
func (c *Checksum) Sums() []FileSum { return c.sums }

const checksumTag = 'C'

// Snapshot implements StateCodec: the accumulated per-file sums.
func (c *Checksum) Snapshot() ([]byte, error) {
	var e StateEncoder
	e.Tag(checksumTag)
	e.Int(len(c.sums))
	for _, s := range c.sums {
		e.Str(s.Name)
		e.I64(s.Size)
		e.U64(s.Sum)
	}
	return e.Bytes(), nil
}

// Restore implements StateCodec.
func (c *Checksum) Restore(state []byte) error {
	d := NewStateDecoder(state)
	d.Tag(checksumTag)
	n := d.Len()
	sums := make([]FileSum, 0, n)
	for i := 0; i < n; i++ {
		sums = append(sums, FileSum{Name: d.Str(), Size: d.I64(), Sum: d.U64()})
	}
	if err := d.Finish(); err != nil {
		return err
	}
	c.sums = sums
	return nil
}

// Combined is the order-sequential corpus checksum kernel: one FNV-64a
// state folded across every file's bytes in delivery order, equal to
// hashing the concatenation of all inputs. Because the fold order defines
// the value, Combined is only meaningful under RunOrdered; it cannot
// participate in out-of-order merges, and Merge panics to make that
// misuse loud. Its portable state is the running fold itself, so an
// ordered scan can pause, cross a process boundary, and resume — but it
// cannot be distributed across concurrent workers.
type Combined struct {
	h uint64
}

// NewCombined returns a combined-checksum kernel seeded with the FNV
// offset basis, so an empty corpus hashes to the canonical empty sum.
func NewCombined() *Combined { return &Combined{h: fnvOffset64} }

// Fork implements Kernel. A fork restarts from the offset basis; it does
// not share the parent's running state.
func (c *Combined) Fork() Kernel { return NewCombined() }

// Begin implements Kernel: a no-op — the running state spans files.
func (c *Combined) Begin(Source) {}

// Block implements Kernel.
func (c *Combined) Block(p []byte) { c.h = fnvFold(c.h, p) }

// End implements Kernel: a no-op — the running state spans files.
func (c *Combined) End() {}

// Merge implements Kernel. FNV states are not mergeable across files, so
// Combined refuses: use RunOrdered, which never merges.
func (c *Combined) Merge(Kernel) {
	panic("scan: Combined checksum cannot merge; run it under RunOrdered")
}

// Sum returns the running combined checksum.
func (c *Combined) Sum() uint64 { return c.h }

const combinedTag = 'O'

// Snapshot implements StateCodec: the running fold.
func (c *Combined) Snapshot() ([]byte, error) {
	var e StateEncoder
	e.Tag(combinedTag)
	e.U64(c.h)
	return e.Bytes(), nil
}

// Restore implements StateCodec.
func (c *Combined) Restore(state []byte) error {
	d := NewStateDecoder(state)
	d.Tag(combinedTag)
	h := d.U64()
	if err := d.Finish(); err != nil {
		return err
	}
	c.h = h
	return nil
}
