package scan

// FNV-64a, inlined: the same function hash/fnv computes, but folded in a
// tight loop over each block with the running state in a register instead
// of behind an interface call per write. Per-file sums here are
// bit-identical to vfs.Checksum; the combined fold is bit-identical to
// hashing the concatenation of all files in input order.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvFold(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// FileSum is one scanned file's identity: its name, declared size, and
// FNV-64a checksum of its content.
type FileSum struct {
	Name string
	Size int64
	Sum  uint64
}

// Checksum is the per-file FNV-64a kernel: after a Run it holds one
// FileSum per scanned file, in input order.
type Checksum struct {
	h    uint64
	cur  FileSum
	sums []FileSum
}

// NewChecksum returns a per-file checksum kernel prototype.
func NewChecksum() *Checksum { return &Checksum{} }

// Fork implements Kernel.
func (c *Checksum) Fork() Kernel { return &Checksum{} }

// Begin implements Kernel.
func (c *Checksum) Begin(src Source) {
	c.h = fnvOffset64
	c.cur = FileSum{Name: src.Name, Size: src.Size}
}

// Block implements Kernel.
func (c *Checksum) Block(p []byte) { c.h = fnvFold(c.h, p) }

// End implements Kernel.
func (c *Checksum) End() { c.cur.Sum = c.h }

// Merge implements Kernel: it appends the completed file carried by a
// forked instance, preserving the engine's input order.
func (c *Checksum) Merge(other Kernel) {
	c.sums = append(c.sums, other.(*Checksum).cur)
}

// Sums returns the per-file checksums in input order. The slice is owned
// by the kernel.
func (c *Checksum) Sums() []FileSum { return c.sums }

// Combined is the order-sequential corpus checksum kernel: one FNV-64a
// state folded across every file's bytes in delivery order, equal to
// hashing the concatenation of all inputs. Because the fold order defines
// the value, Combined is only meaningful under RunOrdered; it cannot
// participate in out-of-order merges, and Merge panics to make that
// misuse loud.
type Combined struct {
	h uint64
}

// NewCombined returns a combined-checksum kernel seeded with the FNV
// offset basis, so an empty corpus hashes to the canonical empty sum.
func NewCombined() *Combined { return &Combined{h: fnvOffset64} }

// Fork implements Kernel. A fork restarts from the offset basis; it does
// not share the parent's running state.
func (c *Combined) Fork() Kernel { return NewCombined() }

// Begin implements Kernel: a no-op — the running state spans files.
func (c *Combined) Begin(Source) {}

// Block implements Kernel.
func (c *Combined) Block(p []byte) { c.h = fnvFold(c.h, p) }

// End implements Kernel: a no-op — the running state spans files.
func (c *Combined) End() {}

// Merge implements Kernel. FNV states are not mergeable across files, so
// Combined refuses: use RunOrdered, which never merges.
func (c *Combined) Merge(Kernel) {
	panic("scan: Combined checksum cannot merge; run it under RunOrdered")
}

// Sum returns the running combined checksum.
func (c *Combined) Sum() uint64 { return c.h }
