package scan

// Int64Arena is an append-only slab allocator for per-file result rows.
// Kernels that must persist a small slice per scanned file (the match
// kernel's per-pattern counts, for instance) used to allocate one exact
// copy per file — 200k allocations over a 200k-file corpus. Copying into
// an arena instead carves the rows out of fixed-capacity slabs, so the
// allocation count scales with total bytes, not file count.
//
// Slices returned by Copy stay valid forever (slabs are never reused or
// grown in place; a full slab is simply abandoned to the GC when its
// rows die). The arena is NOT safe for concurrent use: it belongs on the
// merge frontier — the engine calls Merge on the prototype strictly
// serially — or inside a single worker's private kernel state.
type Int64Arena struct {
	slab []int64
	// slabSize is the chunk capacity; 0 means DefaultArenaSize.
	slabSize int
}

// DefaultArenaSize is the per-slab element count when none is configured:
// big enough to amortise, small enough not to strand memory on tiny runs.
const DefaultArenaSize = 4096

// NewInt64Arena returns an arena cutting slabs of slabSize elements
// (<= 0 means DefaultArenaSize).
func NewInt64Arena(slabSize int) *Int64Arena {
	return &Int64Arena{slabSize: slabSize}
}

// Copy stores a copy of src in the arena and returns the stored slice,
// capacity-clamped so appends by the caller cannot bleed into the next
// row. A nil or empty src returns nil.
func (a *Int64Arena) Copy(src []int64) []int64 {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(a.slab)-len(a.slab) < n {
		c := a.slabSize
		if c <= 0 {
			c = DefaultArenaSize
		}
		if n > c {
			c = n
		}
		a.slab = make([]int64, 0, c)
	}
	off := len(a.slab)
	a.slab = a.slab[: off+n : off+n]
	dst := a.slab[off:]
	copy(dst, src)
	return dst
}
