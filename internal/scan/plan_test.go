package scan

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// shardedSource builds a metadata-only Source with shard locality.
func shardedSource(name, shard string, off, size int64) Source {
	return Source{Name: name, Shard: shard, Offset: off, Size: size}
}

func taskRanges(p *Plan) [][2]int {
	out := make([][2]int, len(p.Tasks))
	for i, t := range p.Tasks {
		out[i] = [2]int{t.Lo, t.Hi}
	}
	return out
}

// TestNewPlanShardRuns checks every contiguous shard run forms exactly
// one task, regardless of TaskBytes, and the tasks tile the source list.
func TestNewPlanShardRuns(t *testing.T) {
	srcs := []Source{
		shardedSource("b0", "packs/b.pack", 0, 100),
		shardedSource("a1", "packs/a.pack", 512, 300),
		shardedSource("a0", "packs/a.pack", 0, 200),
		shardedSource("b1", "packs/b.pack", 256, 400),
	}
	p := NewPlan(srcs, PlanOptions{TaskBytes: 1}) // tiny cap must not split shards
	if len(p.Tasks) != 2 {
		t.Fatalf("%d tasks, want 2 (one per shard): %+v", len(p.Tasks), p.Tasks)
	}
	// SequentialOrder groups by shard path, offset ascending.
	wantOrder := []string{"a0", "a1", "b0", "b1"}
	for i, w := range wantOrder {
		if p.Sources[i].Name != w {
			t.Fatalf("source %d is %q, want %q", i, p.Sources[i].Name, w)
		}
	}
	if got, want := taskRanges(p), [][2]int{{0, 2}, {2, 4}}; !reflect.DeepEqual(got, want) {
		t.Errorf("task ranges %v, want %v", got, want)
	}
	if p.Tasks[0].Shard != "packs/a.pack" || p.Tasks[0].Bytes != 500 {
		t.Errorf("task 0 = %+v, want shard a.pack / 500 bytes", p.Tasks[0])
	}
	if p.Tasks[1].Shard != "packs/b.pack" || p.Tasks[1].Bytes != 500 {
		t.Errorf("task 1 = %+v, want shard b.pack / 500 bytes", p.Tasks[1])
	}
}

// TestNewPlanChunksShardless checks shard-less runs are chunked at file
// granularity under TaskBytes, a lone oversized file still forms its own
// task, and tasks tile the sources exactly.
func TestNewPlanChunksShardless(t *testing.T) {
	srcs := []Source{
		{Name: "f0", Size: 60},
		{Name: "f1", Size: 60},  // 120 > 100 → f1 starts task 2
		{Name: "f2", Size: 250}, // oversized alone
		{Name: "f3", Size: 10},
		{Name: "f4", Size: 10},
		{Name: "f5", Size: 10},
	}
	p := NewPlan(srcs, PlanOptions{TaskBytes: 100})
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 6}}
	if got := taskRanges(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("task ranges %v, want %v", got, want)
	}
	if p.Tasks[2].Bytes != 250 {
		t.Errorf("oversized task bytes = %d, want 250", p.Tasks[2].Bytes)
	}
	// Tiling invariant: Lo of each task is Hi of the previous.
	lo := 0
	for i, tk := range p.Tasks {
		if tk.Lo != lo {
			t.Fatalf("task %d Lo=%d, want %d (tasks must tile)", i, tk.Lo, lo)
		}
		lo = tk.Hi
	}
	if lo != len(p.Sources) {
		t.Fatalf("tasks end at %d, want %d", lo, len(p.Sources))
	}
}

// TestNewPlanDefaultTaskBytes checks the zero value picks the default
// cap: a small shard-less corpus collapses to a single task.
func TestNewPlanDefaultTaskBytes(t *testing.T) {
	srcs := make([]Source, 50)
	for i := range srcs {
		srcs[i] = Source{Name: fmt.Sprintf("f%02d", i), Size: 1000}
	}
	p := NewPlan(srcs, PlanOptions{})
	if len(p.Tasks) != 1 {
		t.Fatalf("%d tasks, want 1 under DefaultTaskBytes", len(p.Tasks))
	}
	if p.Tasks[0].Bytes != 50_000 {
		t.Errorf("task bytes = %d, want 50000", p.Tasks[0].Bytes)
	}
}

// TestPlanFingerprint pins the agreement contract: identical source
// lists agree; renames, size changes, relocations and different chunking
// all disagree.
func TestPlanFingerprint(t *testing.T) {
	mk := func() []Source {
		return []Source{
			shardedSource("a0", "packs/a.pack", 0, 200),
			shardedSource("a1", "packs/a.pack", 512, 300),
			{Name: "loose", Size: 40},
		}
	}
	base := NewPlan(mk(), PlanOptions{}).Fingerprint()
	if again := NewPlan(mk(), PlanOptions{}).Fingerprint(); again != base {
		t.Fatalf("same inputs fingerprint %016x then %016x", base, again)
	}

	mutations := map[string]func([]Source) []Source{
		"rename":    func(s []Source) []Source { s[2].Name = "loose2"; return s },
		"resize":    func(s []Source) []Source { s[1].Size++; return s },
		"relocate":  func(s []Source) []Source { s[1].Offset++; return s },
		"reshard":   func(s []Source) []Source { s[0].Shard = "packs/c.pack"; return s },
		"drop-file": func(s []Source) []Source { return s[:2] },
	}
	for name, mut := range mutations {
		if got := NewPlan(mut(mk()), PlanOptions{}).Fingerprint(); got == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}

	// Same sources, different chunking → different task boundaries →
	// different fingerprint.
	loose := []Source{{Name: "x", Size: 60}, {Name: "y", Size: 60}}
	one := NewPlan(loose, PlanOptions{TaskBytes: 1000}).Fingerprint()
	two := NewPlan([]Source{{Name: "x", Size: 60}, {Name: "y", Size: 60}}, PlanOptions{TaskBytes: 64}).Fingerprint()
	if one == two {
		t.Error("different chunking, same fingerprint")
	}
}

// TestExecuteEqualsRun pins the split's core identity: executing a
// plan's full task list produces the same accumulation as Run over its
// sources, and executing tasks one at a time with a merge between equals
// both.
func TestExecuteEqualsRun(t *testing.T) {
	srcs, _ := testCorpus(30)
	p := NewPlan(srcs, PlanOptions{TaskBytes: 1500})
	if len(p.Tasks) < 3 {
		t.Fatalf("want ≥3 tasks, got %d", len(p.Tasks))
	}

	direct := NewChecksum()
	if err := Run(context.Background(), p.Sources, Options{}, direct); err != nil {
		t.Fatal(err)
	}

	whole := NewChecksum()
	if err := Execute(context.Background(), p, p.Tasks, Options{}, whole); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole.Sums(), direct.Sums()) {
		t.Error("Execute over all tasks differs from Run over sources")
	}

	// Task at a time, folded through the portable-state path.
	frontier := NewChecksum()
	for _, tk := range p.Tasks {
		part := NewChecksum()
		if err := Execute(context.Background(), p, []Task{tk}, Options{}, part); err != nil {
			t.Fatal(err)
		}
		st, err := SnapshotKernel(part)
		if err != nil {
			t.Fatal(err)
		}
		carried := frontier.Fork()
		if err := RestoreKernel(carried, st); err != nil {
			t.Fatal(err)
		}
		frontier.Merge(carried)
	}
	if !reflect.DeepEqual(frontier.Sums(), direct.Sums()) {
		t.Error("per-task Execute + state fold differs from Run over sources")
	}
	if FingerprintSums(frontier.Sums()) != FingerprintSums(direct.Sums()) {
		t.Error("fingerprints differ")
	}
}
