package scan

import (
	"context"
	"fmt"
	"io"

	"repro/internal/errs"
	"repro/internal/par"
)

// maxPrefetch bounds how much of any one file RunOrdered materialises
// ahead of the fold; larger files are streamed at fold time instead.
const maxPrefetch = 4 << 20

// zeroBytes marks a prefetched empty file: non-nil so the fold does not
// mistake it for "not prefetched" and open the source a second time.
var zeroBytes = []byte{}

// RunOrdered scans every source exactly once and feeds the kernels in
// strict input order — file i's blocks are delivered before file i+1's,
// with no interleaving. It exists for order-sequential folds like the
// combined corpus checksum, where per-file states cannot be merged and
// the value is defined by the concatenation order. Parallelism comes from
// windowed content prefetch (the same pattern as pack export): workers
// materialise upcoming files concurrently while the fold walks the window
// serially, handing buffers one window ahead for reuse. Oversized files
// are streamed through a block buffer at fold time rather than
// materialised. Kernels see Begin/Block/End per file but are never
// forked or merged; completed runs are bit-identical at any worker count.
func RunOrdered(ctx context.Context, srcs []Source, opts Options, kernels ...Kernel) error {
	if len(kernels) == 0 {
		return errs.Invalid("scan: no kernels registered")
	}
	blockSize := opts.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	pool := par.New(opts.Workers)
	// The window is sized for both prefetch depth (2 per worker) and
	// dispatch amortisation: each window costs one pool fan-out, so a floor
	// keeps narrow machines from paying that per pair of files.
	window := pool.Workers() * 2
	if window < 16 {
		window = 16
	}
	n := len(srcs)
	bufs := make([][]byte, n)
	// Size every window buffer for the largest prefetchable file up front:
	// the hand-off one window ahead then never regrows a buffer, so the run
	// allocates one buffer per window slot instead of one per size bump.
	var capHint int
	for i := range srcs {
		if srcs[i].Raw != nil {
			continue // zero-copy sources never need a prefetch buffer
		}
		if srcs[i].Size <= maxPrefetch && int(srcs[i].Size) > capHint {
			capHint = int(srcs[i].Size)
		}
	}
	var blockBuf []byte // lazily sized; only large files stream
	for lo := 0; lo < n; lo += window {
		hi := lo + window
		if hi > n {
			hi = n
		}
		err := pool.ForEachCtx(ctx, hi-lo, func(k int) error {
			i := lo + k
			if srcs[i].Raw != nil || srcs[i].Size > maxPrefetch {
				return nil
			}
			buf := bufs[i]
			if buf == nil && capHint > 0 {
				buf = make([]byte, 0, capHint+1) // +1: probe byte, see readSource
			}
			data, err := readSource(srcs[i], buf)
			if err != nil {
				return err
			}
			bufs[i] = data
			return nil
		})
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if cerr := errs.FromContext(ctx); cerr != nil {
				return cerr
			}
			src := srcs[i]
			if src.Raw != nil {
				// Zero-copy source: feed borrowed windows directly, no
				// prefetch buffer and no materialisation.
				if err := scanRaw(src, kernels, blockSize); err != nil {
					return err
				}
				continue
			}
			if src.Size > maxPrefetch || bufs[i] == nil {
				// Oversized (or prefetch-skipped) file: stream it through a
				// block buffer at fold time; scanOne drives Begin..End.
				if blockBuf == nil {
					blockBuf = make([]byte, blockSize)
				}
				if err := scanOne(src, kernels, blockBuf); err != nil {
					return err
				}
				continue
			}
			for _, k := range kernels {
				k.Begin(src)
			}
			if len(bufs[i]) > 0 {
				for _, k := range kernels {
					k.Block(bufs[i])
				}
			}
			for _, k := range kernels {
				k.End()
			}
			// Hand the backing array to a file one window ahead for reuse.
			if j := i + window; j < n {
				bufs[j] = bufs[i][:0]
			}
			bufs[i] = nil
		}
	}
	return nil
}

// readSource materialises one source in full: one Open, one exact-size
// read, one Close. Content shorter or longer than the declared size is
// corrupt. buf is reused when its capacity suffices.
func readSource(src Source, buf []byte) ([]byte, error) {
	if src.Content == nil {
		return nil, errs.Invalid("scan: source %q has no content", src.Name)
	}
	r, err := src.Content.Open()
	if err != nil {
		return nil, fmt.Errorf("scan: open %q: %w", src.Name, err)
	}
	// Always keep one spare byte of capacity: the over-length probe below
	// reads into it, so no per-file probe array escapes through the
	// io.Reader interface call.
	if int64(cap(buf)) > src.Size {
		buf = buf[:src.Size]
	} else {
		buf = make([]byte, src.Size, src.Size+1)
	}
	got, err := io.ReadFull(r, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		closeIgnore(r)
		return nil, errs.Corrupt("scan: %q declared %d bytes but content has %d", src.Name, src.Size, got)
	}
	if err != nil {
		closeIgnore(r)
		return nil, fmt.Errorf("scan: reading %q: %w", src.Name, err)
	}
	// Probe for bytes past the declared size: over-long content is as
	// corrupt as a short file. A non-EOF probe error is the source's own
	// verdict (verified pack readers report checksum mismatches on the
	// drain read) and must not be dropped.
	probe := buf[len(buf) : len(buf)+1]
	if extra, perr := r.Read(probe); extra > 0 {
		closeIgnore(r)
		return nil, errs.Corrupt("scan: %q has more content than its declared %d bytes", src.Name, src.Size)
	} else if perr != nil && perr != io.EOF {
		closeIgnore(r)
		return nil, fmt.Errorf("scan: reading %q: %w", src.Name, perr)
	}
	if c, ok := r.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil {
			return nil, fmt.Errorf("scan: closing %q: %w", src.Name, cerr)
		}
	}
	if buf == nil {
		buf = zeroBytes
	}
	return buf, nil
}

func closeIgnore(r io.Reader) {
	if c, ok := r.(io.Closer); ok {
		c.Close()
	}
}
