// Package kerneltest is the conformance harness for scan kernels with
// portable state: one entry point pins, for any kernel, every contract
// the distributed scan engine leans on — Fork/Begin/Block/End/Merge
// semantics, block-size independence, Snapshot→Restore bit-identity, the
// Merge-drains rule, and the fold-across-a-process-boundary equivalence.
// Each production kernel gets one conformance test in its own package;
// a new kernel earns distribution by passing here, not by review.
package kerneltest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/scan"
)

// BlockSizes are the streaming windows conformance runs at: one byte at
// a time (every state transition crosses a Block boundary), tiny prime
// windows that misalign multi-byte tokens and the kernels' word-at-a-time
// fast paths, the page-ish window, and one larger than any sample file
// (the whole file in one Block call).
var BlockSizes = []int{1, 3, 7, 4096, 1 << 20}

// SampleContents returns a corpus exercising the usual hazards: an empty
// file, boundary-straddling tokens, multi-byte runes, sentence
// punctuation, and a file larger than the page-ish block size.
func SampleContents() [][]byte {
	return [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("The quick brown fox! Jumps over the lazy dog? Errors abound. the THE the"),
		[]byte("line one\nline two\nline three with Unknownzz words\n"),
		[]byte("naïve café résumé — “curly” quotes and …ellipsis… 日本語のテキスト"),
		bytes.Repeat([]byte("the error rate is 0.07 per file. Sentences vary! Do they? Yes.\n"), 200),
	}
}

func sources(contents [][]byte) []scan.Source {
	srcs := make([]scan.Source, len(contents))
	for i, c := range contents {
		srcs[i] = scan.Source{Name: fmt.Sprintf("sample-%02d.txt", i), Size: int64(len(c))}
	}
	return srcs
}

// feed drives one file through the kernel's Begin/Block/End cycle at the
// given block size.
func feed(k scan.Kernel, src scan.Source, content []byte, blockSize int) {
	k.Begin(src)
	for off := 0; off < len(content); off += blockSize {
		end := off + blockSize
		if end > len(content) {
			end = len(content)
		}
		k.Block(content[off:end])
	}
	k.End()
}

// accumulate scans files [lo, hi) the way the engine does — a private
// fork per file, merged in input order into a root fork — and returns
// the root.
func accumulate(t *testing.T, proto scan.Kernel, contents [][]byte, lo, hi, blockSize int) scan.Kernel {
	t.Helper()
	srcs := sources(contents)
	root := proto.Fork()
	for i := lo; i < hi; i++ {
		k := proto.Fork()
		feed(k, srcs[i], contents[i], blockSize)
		root.Merge(k)
	}
	return root
}

func snapshot(t *testing.T, k scan.Kernel) []byte {
	t.Helper()
	st, err := scan.SnapshotKernel(k)
	if err != nil {
		t.Fatalf("snapshot %T: %v", k, err)
	}
	return st
}

// Conformance pins the portable-state contract for a mergeable kernel
// prototype over the sample contents (SampleContents when nil):
//
//   - block-size independence: the accumulated snapshot is bit-identical
//     at every BlockSizes entry;
//   - Snapshot→Restore→Snapshot is bit-identical;
//   - Merge drains the other kernel back to empty;
//   - process-boundary fold: scanning a prefix and a suffix separately,
//     snapshotting the suffix kernel, restoring it into a fresh fork and
//     merging equals scanning everything in one process.
func Conformance(t *testing.T, proto scan.Kernel, contents [][]byte) {
	t.Helper()
	if _, ok := proto.(scan.StateCodec); !ok {
		t.Fatalf("kernel %T does not implement scan.StateCodec", proto)
	}
	if contents == nil {
		contents = SampleContents()
	}

	// Block-size independence, pinned on snapshot bytes.
	want := snapshot(t, accumulate(t, proto, contents, 0, len(contents), BlockSizes[0]))
	for _, bs := range BlockSizes[1:] {
		got := snapshot(t, accumulate(t, proto, contents, 0, len(contents), bs))
		if !bytes.Equal(got, want) {
			t.Errorf("%T: snapshot at block size %d differs from block size %d", proto, bs, BlockSizes[0])
		}
	}

	// Round trip: Restore must rebuild the exact accumulation.
	restored := proto.Fork()
	if err := scan.RestoreKernel(restored, want); err != nil {
		t.Fatalf("%T: restore: %v", proto, err)
	}
	if got := snapshot(t, restored); !bytes.Equal(got, want) {
		t.Errorf("%T: snapshot(restore(snapshot)) differs", proto)
	}

	// Restoring garbage must fail loudly, not silently corrupt.
	if err := scan.RestoreKernel(proto.Fork(), []byte("not a snapshot")); err == nil {
		t.Errorf("%T: restoring garbage succeeded", proto)
	}
	if len(want) > 1 {
		if err := scan.RestoreKernel(proto.Fork(), want[:len(want)-1]); err == nil {
			t.Errorf("%T: restoring a truncated snapshot succeeded", proto)
		}
	}

	// Merge drains: after folding, the other kernel snapshots empty.
	empty := snapshot(t, proto.Fork())
	for _, bs := range BlockSizes {
		root := proto.Fork()
		other := accumulate(t, proto, contents, 0, len(contents), bs)
		root.Merge(other)
		if got := snapshot(t, other); !bytes.Equal(got, empty) {
			t.Errorf("%T: merged-from kernel not drained at block size %d", proto, bs)
		}
		if got := snapshot(t, root); !bytes.Equal(got, want) {
			t.Errorf("%T: merge of a whole accumulation differs from direct accumulation", proto)
		}
	}

	// Process-boundary fold at every split point: prefix in "this
	// process", suffix snapshotted, restored into a fork, merged.
	for split := 0; split <= len(contents); split++ {
		for _, bs := range BlockSizes {
			local := accumulate(t, proto, contents, 0, split, bs)
			remote := accumulate(t, proto, contents, split, len(contents), bs)
			carried := snapshot(t, remote)
			fork := proto.Fork()
			if err := scan.RestoreKernel(fork, carried); err != nil {
				t.Fatalf("%T: restore at split %d: %v", proto, split, err)
			}
			local.Merge(fork)
			if got := snapshot(t, local); !bytes.Equal(got, want) {
				t.Errorf("%T: boundary fold at split %d block size %d differs from in-process scan", proto, split, bs)
			}
		}
	}
}

// ConformanceOrdered pins the portable-state contract for an
// order-sequential kernel (scan.Combined): one instance fed every file
// in order, with a Snapshot→Restore pause/resume spliced in at every
// file boundary, must match the uninterrupted run at every block size.
// Such kernels are resumable across a process boundary but not
// distributable — Merge is out of contract and not exercised.
func ConformanceOrdered(t *testing.T, proto scan.Kernel, contents [][]byte) {
	t.Helper()
	if _, ok := proto.(scan.StateCodec); !ok {
		t.Fatalf("kernel %T does not implement scan.StateCodec", proto)
	}
	if contents == nil {
		contents = SampleContents()
	}
	srcs := sources(contents)

	run := func(blockSize, pause int) []byte {
		k := proto.Fork()
		for i := range contents {
			if i == pause {
				carried := snapshot(t, k)
				k = proto.Fork()
				if err := scan.RestoreKernel(k, carried); err != nil {
					t.Fatalf("%T: resume at file %d: %v", proto, i, err)
				}
			}
			feed(k, srcs[i], contents[i], blockSize)
		}
		return snapshot(t, k)
	}

	want := run(BlockSizes[0], -1)
	for _, bs := range BlockSizes {
		if got := run(bs, -1); !bytes.Equal(got, want) {
			t.Errorf("%T: ordered snapshot at block size %d differs", proto, bs)
		}
		for pause := 0; pause <= len(contents); pause++ {
			if got := run(bs, pause); !bytes.Equal(got, want) {
				t.Errorf("%T: pause/resume at file %d block size %d differs", proto, pause, bs)
			}
		}
	}

	// Round-trip sanity on the final state too.
	restored := proto.Fork()
	if err := scan.RestoreKernel(restored, want); err != nil {
		t.Fatalf("%T: restore: %v", proto, err)
	}
	if got := snapshot(t, restored); !bytes.Equal(got, want) {
		t.Errorf("%T: snapshot(restore(snapshot)) differs", proto)
	}
}

// GarbageStates returns payloads every Restore must reject: wrong tag,
// empty, and high-entropy noise — used by packages wanting extra
// negative cases beyond what Conformance already runs.
func GarbageStates() [][]byte {
	return [][]byte{
		{},
		[]byte{0xFF},
		[]byte(strings.Repeat("\xde\xad\xbe\xef", 16)),
	}
}
