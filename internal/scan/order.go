package scan

import "sort"

// SequentialOrder returns the sources arranged for sequential disk reads:
// sources that carry shard locality (pack-backed members) are grouped by
// shard path and sorted by byte offset within each shard, so a scan walks
// every pack front to back instead of seeking per member. Sources without
// locality keep their relative order and sort ahead of sharded ones. The
// input is not modified; when nothing carries locality it is returned
// as-is. Note this reorders *scanning* only — order-defined folds like the
// combined checksum must keep their semantic input order and should not
// be fed through this.
func SequentialOrder(srcs []Source) []Source {
	sharded := false
	for i := range srcs {
		if srcs[i].Shard != "" {
			sharded = true
			break
		}
	}
	if !sharded {
		return srcs
	}
	out := append([]Source(nil), srcs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}
