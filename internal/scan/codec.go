package scan

import (
	"math"

	"repro/internal/errs"
)

// StateCodec is the portable-state half of a kernel: Snapshot serialises
// the kernel's completed accumulation into a self-contained byte string
// and Restore loads one into a fresh instance (normally a Fork of an
// identically-configured prototype). Together with the Merge contract —
// Merge folds another kernel's entire accumulation and drains it — a
// kernel that has scanned one shard's files can cross a process boundary
// and fold into a coordinator's prototype exactly as it would have
// in-process: Restore on a fork, then Merge on the prototype, in input
// order.
//
// Contract:
//
//   - Snapshot is only defined between files (never mid-Begin/Block/End);
//     the engine's run functions always leave kernels in that state.
//   - Restore replaces the receiver's accumulation wholesale; restoring
//     into a non-empty kernel is a caller bug with undefined results.
//   - Snapshot(Restore(b)) must be byte-identical to b — the conformance
//     helper in scan/kerneltest pins this for every production kernel.
//   - The encoding carries no read-only configuration (automata,
//     lexicons); both sides must construct kernels from the same spec.
//
// Decoding failures are reported through the errs taxonomy: a truncated
// or trailing-garbage payload is ErrCorrupt, a payload for a different
// kernel type (wrong tag) or mismatched configuration is ErrInvalid.
type StateCodec interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// SnapshotKernel snapshots k's state, or reports ErrInvalid when the
// kernel does not implement StateCodec.
func SnapshotKernel(k Kernel) ([]byte, error) {
	c, ok := k.(StateCodec)
	if !ok {
		return nil, errs.Invalid("scan: kernel %T has no portable state (StateCodec)", k)
	}
	return c.Snapshot()
}

// RestoreKernel restores state into k, or reports ErrInvalid when the
// kernel does not implement StateCodec.
func RestoreKernel(k Kernel, state []byte) error {
	c, ok := k.(StateCodec)
	if !ok {
		return errs.Invalid("scan: kernel %T has no portable state (StateCodec)", k)
	}
	return c.Restore(state)
}

// StateEncoder builds a kernel snapshot: fixed-width little-endian
// integers, IEEE-754 bit patterns for floats, length-prefixed strings.
// The layout is deterministic — the same accumulation always encodes to
// the same bytes, which is what lets tests compare snapshots for
// bit-identity instead of walking kernel internals.
type StateEncoder struct {
	buf []byte
}

// Tag writes the kernel's one-byte type tag; by convention the first
// write of every snapshot.
func (e *StateEncoder) Tag(b byte) { e.buf = append(e.buf, b) }

// U64 writes a fixed-width little-endian uint64.
func (e *StateEncoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 (two's-complement bits).
func (e *StateEncoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes an int (as int64).
func (e *StateEncoder) Int(v int) { e.U64(uint64(int64(v))) }

// F64 writes a float64's IEEE-754 bits — exact, no formatting round-trip.
func (e *StateEncoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (e *StateEncoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes returns the encoded snapshot.
func (e *StateEncoder) Bytes() []byte { return e.buf }

// StateDecoder reads a kernel snapshot produced by StateEncoder. Errors
// are sticky: after the first failure every read returns a zero value,
// and Err reports the failure — so Restore implementations read all
// fields unconditionally and check once at the end.
type StateDecoder struct {
	buf []byte
	off int
	err error
}

// NewStateDecoder returns a decoder over the snapshot bytes.
func NewStateDecoder(b []byte) *StateDecoder { return &StateDecoder{buf: b} }

func (d *StateDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Tag consumes the type tag and fails with ErrInvalid when it is not the
// expected one — the guard against restoring one kernel type's state
// into another.
func (d *StateDecoder) Tag(want byte) {
	if d.err != nil {
		return
	}
	if d.off >= len(d.buf) {
		d.fail(errs.Corrupt("scan: kernel state truncated at tag"))
		return
	}
	got := d.buf[d.off]
	d.off++
	if got != want {
		d.fail(errs.Invalid("scan: kernel state tag %q, want %q", got, want))
	}
}

// U64 reads a fixed-width little-endian uint64.
func (d *StateDecoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(errs.Corrupt("scan: kernel state truncated at offset %d", d.off))
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *StateDecoder) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *StateDecoder) Int() int { return int(int64(d.U64())) }

// F64 reads a float64.
func (d *StateDecoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *StateDecoder) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(errs.Corrupt("scan: kernel state string of %d bytes overruns payload", n))
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Len reads a count and fails when it is implausible for the remaining
// payload (every counted element costs at least one byte), so a corrupt
// length cannot drive a multi-gigabyte allocation before the per-element
// reads fail.
func (d *StateDecoder) Len() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(errs.Corrupt("scan: kernel state count %d overruns payload", n))
		return 0
	}
	return int(n)
}

// Err returns the first decoding failure, or nil.
func (d *StateDecoder) Err() error { return d.err }

// Finish fails the decode when bytes remain unconsumed, then returns the
// sticky error — the single check at the end of every Restore.
func (d *StateDecoder) Finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail(errs.Corrupt("scan: kernel state has %d trailing bytes", len(d.buf)-d.off))
	}
	return d.err
}
