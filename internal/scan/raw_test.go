package scan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/errs"
)

// rawCorpus builds a deterministic mixed corpus twice over: one source
// slice using the streaming Content path and one using the zero-copy Raw
// path, backed by the same bytes.
func rawCorpus(n int) (streaming, raw []Source) {
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		for j := 0; j < 40+i*13; j++ {
			fmt.Fprintf(&buf, "word%d the quick amazon ec2 reshape %d\n", j, i*j)
		}
		if i%7 == 0 {
			buf.Reset() // empty files ride along
		}
		data := buf.Bytes()
		name := fmt.Sprintf("file-%03d.txt", i)
		streaming = append(streaming, Source{
			Name: name, Size: int64(len(data)),
			Content: OpenFunc(func() (io.Reader, error) { return bytes.NewReader(data), nil }),
		})
		raw = append(raw, Source{
			Name: name, Size: int64(len(data)),
			Raw: BytesFunc(func() ([]byte, error) { return data, nil }),
		})
	}
	return streaming, raw
}

// carryKernel counts occurrences of a fixed pattern across block
// boundaries (bounded carry-over), so block-split differences between the
// streaming and raw paths would change its answer if either path broke
// the windowing contract.
type carryKernel struct {
	pat   []byte
	carry []byte
	count int64
	total int64
}

func newCarryKernel(pat string) *carryKernel { return &carryKernel{pat: []byte(pat)} }

func (k *carryKernel) Fork() Kernel { return &carryKernel{pat: k.pat} }
func (k *carryKernel) Begin(Source) {
	k.carry = k.carry[:0]
	k.count = 0
}
func (k *carryKernel) Block(p []byte) {
	joined := append(k.carry, p...)
	k.count += int64(bytes.Count(joined, k.pat))
	// Subtract matches wholly inside the carry (already counted last block).
	if len(k.carry) >= len(k.pat) {
		k.count -= int64(bytes.Count(k.carry, k.pat))
	}
	keep := len(k.pat) - 1
	if keep > len(joined) {
		keep = len(joined)
	}
	k.carry = append(k.carry[:0], joined[len(joined)-keep:]...)
}
func (k *carryKernel) End() {}
func (k *carryKernel) Merge(other Kernel) {
	k.total += other.(*carryKernel).count
}

// TestRawMatchesStreaming pins the zero-copy path bit-identical to the
// streaming path: same per-file checksums, same cross-block match counts,
// at every worker count and at block sizes down to smaller than the
// pattern.
func TestRawMatchesStreaming(t *testing.T) {
	streaming, raw := rawCorpus(60)
	for _, workers := range []int{1, 2, 8} {
		for _, blockSize := range []int{3, 64, 4096, DefaultBlockSize} {
			opts := Options{Workers: workers, BlockSize: blockSize}
			sc, sk := NewChecksum(), newCarryKernel("amazon")
			if err := Run(context.Background(), streaming, opts, sc, sk); err != nil {
				t.Fatalf("workers=%d block=%d streaming: %v", workers, blockSize, err)
			}
			rc, rk := NewChecksum(), newCarryKernel("amazon")
			if err := Run(context.Background(), raw, opts, rc, rk); err != nil {
				t.Fatalf("workers=%d block=%d raw: %v", workers, blockSize, err)
			}
			if len(sc.Sums()) != len(rc.Sums()) {
				t.Fatalf("workers=%d block=%d: %d streaming sums vs %d raw", workers, blockSize, len(sc.Sums()), len(rc.Sums()))
			}
			for i, s := range sc.Sums() {
				if r := rc.Sums()[i]; s != r {
					t.Fatalf("workers=%d block=%d file %d: streaming %+v != raw %+v", workers, blockSize, i, s, r)
				}
			}
			if sk.total != rk.total {
				t.Fatalf("workers=%d block=%d: streaming matched %d, raw matched %d", workers, blockSize, sk.total, rk.total)
			}
			if sk.total == 0 {
				t.Fatal("corpus produced zero matches; test is vacuous")
			}
		}
	}
}

// TestRunOrderedRawMatchesStreaming pins the ordered fold: a combined
// checksum over raw sources equals the same fold over streaming sources,
// at every worker count.
func TestRunOrderedRawMatchesStreaming(t *testing.T) {
	streaming, raw := rawCorpus(40)
	var want uint64
	for _, workers := range []int{1, 2, 8} {
		opts := Options{Workers: workers, BlockSize: 512}
		sc := NewCombined()
		if err := RunOrdered(context.Background(), streaming, opts, sc); err != nil {
			t.Fatalf("workers=%d streaming: %v", workers, err)
		}
		rc := NewCombined()
		if err := RunOrdered(context.Background(), raw, opts, rc); err != nil {
			t.Fatalf("workers=%d raw: %v", workers, err)
		}
		if sc.Sum() != rc.Sum() {
			t.Fatalf("workers=%d: streaming sum %#x != raw sum %#x", workers, sc.Sum(), rc.Sum())
		}
		if workers == 1 {
			want = sc.Sum()
		} else if sc.Sum() != want {
			t.Fatalf("workers=%d: sum %#x differs from workers=1 sum %#x", workers, sc.Sum(), want)
		}
	}
}

// TestRawSizeMismatchIsCorrupt: a Raw source whose bytes disagree with
// the declared size is reported as corruption, same as the streaming
// path.
func TestRawSizeMismatchIsCorrupt(t *testing.T) {
	srcs := []Source{{
		Name: "liar.txt", Size: 10,
		Raw: BytesFunc(func() ([]byte, error) { return []byte("short"), nil }),
	}}
	err := Run(context.Background(), srcs, Options{Workers: 1}, NewChecksum())
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("size-lying raw source returned %v, want ErrCorrupt", err)
	}
	err = RunOrdered(context.Background(), srcs, Options{Workers: 1}, NewCombined())
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("ordered size-lying raw source returned %v, want ErrCorrupt", err)
	}
}

// TestRawErrorPropagates: a Raw source that fails to produce bytes
// surfaces its error with the source name attached.
func TestRawErrorPropagates(t *testing.T) {
	boom := errors.New("mapping gone")
	srcs := []Source{{
		Name: "gone.txt", Size: 3,
		Raw: BytesFunc(func() ([]byte, error) { return nil, boom }),
	}}
	err := Run(context.Background(), srcs, Options{Workers: 1}, NewChecksum())
	if !errors.Is(err, boom) {
		t.Fatalf("raw open failure returned %v, want wrapped %v", err, boom)
	}
}

func TestInt64ArenaCopy(t *testing.T) {
	a := NewInt64Arena(8)
	rows := make([][]int64, 0, 20)
	for i := 0; i < 20; i++ {
		src := []int64{int64(i), int64(i * 2), int64(i * 3)}
		rows = append(rows, a.Copy(src))
	}
	for i, row := range rows {
		want := []int64{int64(i), int64(i * 2), int64(i * 3)}
		for j := range want {
			if row[j] != want[j] {
				t.Fatalf("row %d = %v, want %v", i, row, want)
			}
		}
		if cap(row) != len(row) {
			t.Fatalf("row %d capacity %d leaks past its length %d", i, cap(row), len(row))
		}
	}
	// Appending to a carved row must not corrupt its neighbours.
	_ = append(rows[0], 999)
	if rows[1][0] != 1 {
		t.Fatal("append to one arena row bled into the next")
	}
	if a.Copy(nil) != nil {
		t.Fatal("Copy(nil) should return nil")
	}
	// Oversized rows get a dedicated slab rather than failing.
	big := make([]int64, 100)
	big[99] = 7
	got := a.Copy(big)
	if len(got) != 100 || got[99] != 7 {
		t.Fatalf("oversized copy = len %d last %d", len(got), got[99])
	}
}

// TestStreamingBufferRecyclingUnderRace is the contract canary for
// "kernels must not retain Block bytes": well-behaved copying kernels run
// at workers=8 over many files while block buffers are poisoned (under
// the scandebug tag) and recycled across goroutines. `make verify` runs
// this under -race, where a retention bug in any registered kernel shows
// up as a data race on the pooled buffer.
func TestStreamingBufferRecyclingUnderRace(t *testing.T) {
	streaming, raw := rawCorpus(120)
	opts := Options{Workers: 8, BlockSize: 256}
	sc := NewChecksum()
	if err := Run(context.Background(), streaming, opts, sc, newCarryKernel("the")); err != nil {
		t.Fatal(err)
	}
	rc := NewChecksum()
	if err := Run(context.Background(), raw, opts, rc, newCarryKernel("the")); err != nil {
		t.Fatal(err)
	}
	for i := range sc.Sums() {
		if sc.Sums()[i] != rc.Sums()[i] {
			t.Fatalf("file %d: streaming %+v != raw %+v", i, sc.Sums()[i], rc.Sums()[i])
		}
	}
}
