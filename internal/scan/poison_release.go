//go:build !scandebug

package scan

// PoisonEnabled reports whether this build poisons recycled scan
// buffers (the `scandebug` build tag).
const PoisonEnabled = false

// poison is a no-op in release builds; the compiler removes the calls.
func poison([]byte) {}
