package scan_test

import (
	"testing"

	"repro/internal/scan"
	"repro/internal/scan/kerneltest"
)

// TestChecksumConformance pins the portable-state contract for the
// per-file checksum kernel: Snapshot/Restore round trips, Merge drains,
// and folding across a process boundary is bit-identical.
func TestChecksumConformance(t *testing.T) {
	kerneltest.Conformance(t, scan.NewChecksum(), nil)
}

// TestCombinedConformance pins the resumable (ordered) contract for the
// whole-corpus rolling checksum: pause/resume at any file boundary via
// Snapshot→Restore matches the uninterrupted run. Combined is
// order-sequential — resumable across a process boundary, not
// distributable — so the ordered harness applies.
func TestCombinedConformance(t *testing.T) {
	kerneltest.ConformanceOrdered(t, scan.NewCombined(), nil)
}
