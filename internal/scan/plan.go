package scan

import "context"

// Plan is the shard-assignment half of a scan, split from execution so
// the two can live on different sides of a process boundary: a
// coordinator builds the plan once, hands out task indices, and workers
// execute their slices as a pure function of (plan, tasks, kernels).
// Sources hold every input in final scan order (SequentialOrder); Tasks
// partitions that slice into contiguous ranges, one per pack shard —
// the paper's unit of physical locality — with shard-less runs chunked
// by declared size. Executing all tasks in order is, by construction,
// exactly Run over Sources: same files, same order, same block splits,
// so the engine's determinism contract extends to any partitioning of
// the task list.
type Plan struct {
	Sources []Source
	Tasks   []Task
}

// Task is one contiguous slice of a Plan's sources: the half-open index
// range [Lo, Hi) and its total declared bytes (the load-balancing
// weight).
type Task struct {
	// Shard is the pack path the range belongs to ("" for shard-less
	// sources) — diagnostic only; the range is what executes.
	Shard string
	// Lo and Hi bound the half-open range into Plan.Sources.
	Lo, Hi int
	// Bytes is the range's total declared size.
	Bytes int64
}

// DefaultTaskBytes caps a shard-less task's declared bytes: small enough
// that a handful of workers can balance a modest corpus, large enough
// that per-task overhead (a fork, a snapshot, one HTTP round trip in the
// distributed engine) stays amortised.
const DefaultTaskBytes = 4 << 20

// PlanOptions configures task formation.
type PlanOptions struct {
	// TaskBytes caps the declared bytes per task for sources without
	// shard locality (0 = DefaultTaskBytes); a single oversized file
	// still forms its own task — files are never split. Sharded sources
	// ignore it: one shard is one task.
	TaskBytes int64
}

// NewPlan arranges the sources with SequentialOrder and partitions them
// into tasks: every contiguous run of one shard becomes one task, and
// shard-less runs are chunked at file granularity so no task exceeds
// TaskBytes (except a lone oversized file). The partitioning is a pure
// function of the source list, so coordinator and workers that load the
// same corpus derive the same plan — Fingerprint pins that agreement.
func NewPlan(srcs []Source, opts PlanOptions) *Plan {
	taskBytes := opts.TaskBytes
	if taskBytes <= 0 {
		taskBytes = DefaultTaskBytes
	}
	ordered := SequentialOrder(srcs)
	p := &Plan{Sources: ordered}
	i := 0
	for i < len(ordered) {
		shard := ordered[i].Shard
		t := Task{Shard: shard, Lo: i}
		if shard != "" {
			for i < len(ordered) && ordered[i].Shard == shard {
				t.Bytes += ordered[i].Size
				i++
			}
		} else {
			for i < len(ordered) && ordered[i].Shard == "" {
				if i > t.Lo && t.Bytes+ordered[i].Size > taskBytes {
					break
				}
				t.Bytes += ordered[i].Size
				i++
			}
		}
		t.Hi = i
		p.Tasks = append(p.Tasks, t)
	}
	return p
}

// Slice returns the task's sources — the window of the plan a worker
// executes.
func (p *Plan) Slice(t Task) []Source { return p.Sources[t.Lo:t.Hi] }

// Fingerprint folds the plan's identity — every source's name, declared
// size and physical location, plus the task boundaries — into one
// FNV-64a value. A coordinator sends it ahead of work so a worker that
// derived a different plan (different corpus, different order, different
// chunking) refuses instead of silently computing the wrong slices.
// Content is deliberately excluded: the checksums themselves verify
// content, and hashing it here would cost a full corpus read at plan
// time.
func (p *Plan) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	var buf [16]byte
	u64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h = fnvFold(h, buf[:8])
	}
	u64(uint64(len(p.Sources)))
	for i := range p.Sources {
		s := &p.Sources[i]
		h = fnvFoldString(h, s.Name)
		h = fnvFoldString(h, s.Shard)
		for j := 0; j < 8; j++ {
			buf[j] = byte(s.Size >> (8 * j))
			buf[8+j] = byte(s.Offset >> (8 * j))
		}
		h = fnvFold(h, buf[:])
	}
	u64(uint64(len(p.Tasks)))
	for _, t := range p.Tasks {
		u64(uint64(int64(t.Lo)))
		u64(uint64(int64(t.Hi)))
	}
	return h
}

// Execute scans the given tasks' sources, in the given order, through
// the kernels — a pure function of (plan, tasks, kernels): no hidden
// state, so the same call on any machine that holds the same plan
// produces bit-identical kernel accumulations. Executing a plan's full
// task list equals Run over its Sources.
func Execute(ctx context.Context, p *Plan, tasks []Task, opts Options, kernels ...Kernel) error {
	total := 0
	for _, t := range tasks {
		total += t.Hi - t.Lo
	}
	srcs := make([]Source, 0, total)
	for _, t := range tasks {
		srcs = append(srcs, p.Sources[t.Lo:t.Hi]...)
	}
	return Run(ctx, srcs, opts, kernels...)
}
