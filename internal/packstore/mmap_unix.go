//go:build (linux || darwin) && !packstore_nommap

package packstore

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mapFile maps size bytes of f read-only. When the mapping itself fails
// (filesystems without mmap support, 32-bit length overflow) it degrades
// to the heap-materialised fallback rather than failing the open — the
// caller learns which path it got from the mapped flag.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	if int64(int(size)) != size {
		data, err := readFileAt(f, size)
		return data, false, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, rerr := readFileAt(f, size)
		return data, false, rerr
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by mapFile with mapped == true.
func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}

// adviseSequential hints read-ahead for a front-to-back scan of the
// mapping.
func adviseSequential(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}
