package packstore

import (
	"fmt"
	"os"
)

// FileMapping is one regular file's complete content as a read-only
// borrowed view — memory-mapped where the platform supports it, and
// heap-materialised behind the packstore_nommap tag or when the mapping
// itself fails (same degradation contract as the pack Reader). The file
// descriptor is released before MapFile returns: a mapping needs no fd,
// and the fallback has already read everything.
//
// This is the unpacked-corpus sibling of the pack Reader's MemberBytes:
// vfs.ImportDirMapped attaches one FileMapping per corpus file so -dir
// corpora take the same zero-copy scan path as mapped packs.
type FileMapping struct {
	path   string
	data   []byte
	mapped bool
	closed bool
}

// MapFile maps the regular file at path read-only, sized by stat at open
// time. Zero-length files yield a valid mapping with nil Data.
func MapFile(path string) (*FileMapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !info.Mode().IsRegular() {
		return nil, fmt.Errorf("packstore: map %s: not a regular file", path)
	}
	data, mapped, err := mapFile(f, info.Size())
	if err != nil {
		return nil, fmt.Errorf("packstore: map %s: %w", path, err)
	}
	return &FileMapping{path: path, data: data, mapped: mapped}, nil
}

// Data returns the file's bytes as a borrowed view, valid until Close.
// Callers must treat it as immutable.
func (m *FileMapping) Data() []byte {
	if m.closed {
		return nil
	}
	return m.data
}

// Mapped reports whether the view is a real memory mapping (false on the
// heap fallback). Introspection for tests; both paths behave identically.
func (m *FileMapping) Mapped() bool { return m.mapped }

// Closed reports whether the mapping has been released. Importers check
// it so post-close streaming reads fail loudly instead of touching a
// dead mapping.
func (m *FileMapping) Closed() bool { return m.closed }

// AdviseSequential hints read-ahead for a front-to-back scan of the
// mapping. Best effort: a no-op on the heap fallback, and errors are
// advisory.
func (m *FileMapping) AdviseSequential() error {
	if m.closed || !m.mapped {
		return nil
	}
	return adviseSequential(m.data)
}

// Close releases the mapping. Views obtained from Data are invalid
// afterwards. Close is idempotent.
func (m *FileMapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if !m.mapped {
		return nil
	}
	if err := unmapFile(data); err != nil {
		return fmt.Errorf("packstore: unmap %s: %w", m.path, err)
	}
	return nil
}
