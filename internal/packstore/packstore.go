// Package packstore implements a durable, sharded pack-file store for
// reshaped corpora: the on-disk counterpart of the paper's unit files.
// Exporting a reshaped corpus as one plain file per unit re-pays the
// per-file open overhead the reshaping eliminated; a pack bundles many
// members into a single container with an index, so a million-member
// corpus costs a handful of file opens and any member is reachable in
// O(1) — the same shape every modern data-loading stack (tfrecord,
// WebDataset) converged on, and the staging artefact the paper's §3/§5
// storage experiments call for.
//
// # Format
//
// A pack is append-only and fully deterministic (no timestamps, no
// padding, fixed little-endian encoding), so packing the same members in
// the same order twice yields byte-identical files:
//
//	header   8 B  magic "RPACKv1\n"
//	records  one per member, in append order:
//	           magic "RREC" (4 B) | nameLen uint32 | size uint64
//	           name (nameLen B) | payload (size B)
//	           checksum uint64 — FNV-64a of the payload
//	index    one entry per member, sorted by name:
//	           nameLen uint32 | size uint64 | checksum uint64
//	           offset uint64 (payload start) | name
//	footer  40 B  indexOffset | indexSize | count | indexChecksum
//	              | magic "RPACKEND"
//
// The payload checksum trails the payload so writing streams in one
// pass; the index repeats it so strict readers never touch record
// headers. Because records are strictly sequential, a crash while
// appending can only damage the tail: Recover rescans the records of a
// pack with a missing or corrupt footer and salvages every complete
// member (see reader.go).
package packstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/errs"
)

// Format constants. Changing any of these is a format break.
const (
	headerMagic = "RPACKv1\n"
	footerMagic = "RPACKEND"
	recordMagic = "RREC"

	headerLen       = len(headerMagic)
	recordPrefixLen = 4 + 4 + 8 // magic, nameLen, size
	checksumLen     = 8
	footerLen       = 8 + 8 + 8 + 8 + len(footerMagic)

	// MaxNameLen bounds member names; it doubles as a sanity check when
	// scanning possibly-damaged packs.
	MaxNameLen = 1 << 16
)

// Member describes one file stored in a pack.
type Member struct {
	// Name is the member's slash-separated corpus name, unique per pack.
	Name string
	// Size is the payload length in bytes.
	Size int64
	// Checksum is the FNV-64a hash of the payload.
	Checksum uint64
	// Offset is the payload's byte offset within the pack file.
	Offset int64
}

// Writer appends members to a single pack file. Append streams payloads
// straight to disk (one pass, checksummed on the fly); Close writes the
// sorted index and footer and syncs. A Writer whose Append failed is
// poisoned: Close then leaves the truncated, Recover-able file in place
// and reports the original error.
//
// Append-path allocation discipline: the record-prefix scratch, the
// streaming copy window and the checksum state all live on the Writer and
// are reused across appends — exporting a million members costs a handful
// of allocations, not a hasher plus copy buffer per member.
type Writer struct {
	f       *os.File
	bw      *bufio.Writer
	path    string
	off     int64
	members []Member
	names   map[string]struct{}
	err     error
	closed  bool
	buf     [recordPrefixLen]byte
	copyBuf []byte // streaming window, reused across Append calls
}

// Inlined FNV-64a (the same function hash/fnv computes): folding in a
// plain loop keeps the running state in a register and costs zero
// allocations per member, where a fresh fnv.New64a per append dominated
// the export profile.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvFold(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// Create opens a new pack file at path, truncating any existing file,
// and writes the header.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("packstore: create: %w", err)
	}
	w := &Writer{
		f:     f,
		bw:    bufio.NewWriterSize(f, 256*1024),
		path:  path,
		names: make(map[string]struct{}),
	}
	if _, err := w.bw.WriteString(headerMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("packstore: create %s: %w", path, err)
	}
	w.off = int64(headerLen)
	return w, nil
}

// Path returns the file path the writer is producing.
func (w *Writer) Path() string { return w.path }

// Count returns the number of members appended so far.
func (w *Writer) Count() int { return len(w.members) }

// DataSize returns the summed payload bytes appended so far — the
// quantity shard rolling is measured against.
func (w *Writer) DataSize() int64 {
	var n int64
	for _, m := range w.members {
		n += m.Size
	}
	return n
}

// checkName validates a member name for storage.
func checkName(name string) error {
	switch {
	case name == "":
		return errs.Invalid("packstore: empty member name")
	case len(name) >= MaxNameLen:
		return errs.Invalid("packstore: member name %.40q... exceeds %d bytes", name, MaxNameLen)
	case strings.ContainsRune(name, 0):
		return errs.Invalid("packstore: member name %q contains NUL", name)
	}
	return nil
}

// beginRecord validates the member and writes the record prefix and
// name, returning the payload offset.
func (w *Writer) beginRecord(name string, size int64) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("packstore: append to closed writer %s", w.path)
	}
	if err := checkName(name); err != nil {
		return 0, err
	}
	if _, dup := w.names[name]; dup {
		return 0, errs.Invalid("packstore: duplicate member %q", name)
	}
	if size < 0 {
		return 0, errs.Invalid("packstore: member %q has negative size %d", name, size)
	}
	// Record prefix: magic, nameLen, size.
	b := w.buf[:]
	copy(b, recordMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(name)))
	binary.LittleEndian.PutUint64(b[8:], uint64(size))
	if _, err := w.bw.Write(b); err != nil {
		return 0, w.fail(err)
	}
	if _, err := w.bw.WriteString(name); err != nil {
		return 0, w.fail(err)
	}
	return w.off + int64(recordPrefixLen) + int64(len(name)), nil
}

// endRecord writes the trailing checksum and books the member.
func (w *Writer) endRecord(name string, size, payloadOff int64, sum uint64) error {
	var sumBuf [checksumLen]byte
	binary.LittleEndian.PutUint64(sumBuf[:], sum)
	if _, err := w.bw.Write(sumBuf[:]); err != nil {
		return w.fail(err)
	}
	w.members = append(w.members, Member{
		Name:     name,
		Size:     size,
		Checksum: sum,
		Offset:   payloadOff,
	})
	w.names[name] = struct{}{}
	w.off = payloadOff + size + checksumLen
	return nil
}

// Append stores one member whose content comes from r. The reader must
// yield exactly size bytes; shorter or longer content is an error, since
// a silently mis-sized member would corrupt every later offset.
func (w *Writer) Append(name string, size int64, r io.Reader) error {
	payloadOff, err := w.beginRecord(name, size)
	if err != nil {
		return err
	}
	// Stream through the reused window, folding the checksum inline. The
	// window is capped at the remaining byte count so the reader can never
	// over-deliver into the record.
	if w.copyBuf == nil {
		w.copyBuf = make([]byte, 64*1024)
	}
	h := uint64(fnvOffset64)
	var n int64
	for n < size {
		want := int64(len(w.copyBuf))
		if size-n < want {
			want = size - n
		}
		m, rerr := r.Read(w.copyBuf[:want])
		if m > 0 {
			if _, werr := w.bw.Write(w.copyBuf[:m]); werr != nil {
				return w.fail(werr)
			}
			h = fnvFold(h, w.copyBuf[:m])
			n += int64(m)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return w.fail(fmt.Errorf("packstore: member %q: %w", name, rerr))
		}
	}
	if n != size {
		return w.fail(errs.Corrupt("packstore: member %q declared %d bytes but content has %d", name, size, n))
	}
	// The source must be exhausted: extra bytes are as corrupt as missing
	// ones (mirrors vfs.ReadInto).
	var probe [1]byte
	if m, _ := r.Read(probe[:]); m > 0 {
		return w.fail(errs.Corrupt("packstore: member %q declared %d bytes but content has more", name, size))
	}
	return w.endRecord(name, size, payloadOff, h)
}

// AppendBytes is Append over an in-memory payload: the bytes go to the
// buffered writer directly and the checksum folds over them in place —
// no intermediate reader, no copy window.
func (w *Writer) AppendBytes(name string, data []byte) error {
	payloadOff, err := w.beginRecord(name, int64(len(data)))
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(data); err != nil {
		return w.fail(err)
	}
	return w.endRecord(name, int64(len(data)), payloadOff, fnvFold(fnvOffset64, data))
}

// fail poisons the writer: the pack's tail is now a partial record, so
// finalising would index garbage. Close will surface this error.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Close writes the sorted index and footer, flushes, syncs and closes
// the file. On a poisoned writer it closes the file without finalising
// (leaving a Recover-able truncated pack) and returns the append error.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("packstore: writer %s already closed", w.path)
	}
	w.closed = true
	if w.err != nil {
		w.bw.Flush()
		w.f.Close()
		return w.err
	}
	sorted := append([]Member(nil), w.members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	index := encodeIndex(sorted)
	h := fnv.New64a()
	h.Write(index)

	indexOff := w.off
	if _, err := w.bw.Write(index); err != nil {
		w.f.Close()
		return fmt.Errorf("packstore: finalize %s: %w", w.path, err)
	}
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(index)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(len(sorted)))
	binary.LittleEndian.PutUint64(footer[24:], h.Sum64())
	copy(footer[32:], footerMagic)
	if _, err := w.bw.Write(footer[:]); err != nil {
		w.f.Close()
		return fmt.Errorf("packstore: finalize %s: %w", w.path, err)
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("packstore: finalize %s: %w", w.path, err)
	}
	// Durable store: the pack must survive the crash it is the recovery
	// artefact for.
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("packstore: sync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("packstore: close %s: %w", w.path, err)
	}
	return nil
}

// encodeIndex serialises index entries in the given (sorted) order.
func encodeIndex(members []Member) []byte {
	size := 0
	for _, m := range members {
		size += 4 + 8 + 8 + 8 + len(m.Name)
	}
	out := make([]byte, 0, size)
	var b [28]byte
	for _, m := range members {
		binary.LittleEndian.PutUint32(b[0:], uint32(len(m.Name)))
		binary.LittleEndian.PutUint64(b[4:], uint64(m.Size))
		binary.LittleEndian.PutUint64(b[12:], m.Checksum)
		binary.LittleEndian.PutUint64(b[20:], uint64(m.Offset))
		out = append(out, b[:]...)
		out = append(out, m.Name...)
	}
	return out
}
