package packstore

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/errs"
)

// TestVerifyCtxCancellation: a pre-cancelled context yields the typed
// cancellation error at every worker count, and a live verify afterwards
// still passes — the cancelled attempt reads nothing it shouldn't.
func TestVerifyCtxCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	writePack(t, path, testMembers(40))
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		if err := p.VerifyCtx(cancelled, workers); !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: cancelled verify returned %v, want ErrCancelled", workers, err)
		}
		if err := p.VerifyCtx(context.Background(), workers); err != nil {
			t.Fatalf("workers=%d: verify after cancelled attempt: %v", workers, err)
		}
	}
}

func TestSetVerifyCtxCancellation(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.pack", "b.pack"} {
		writePack(t, filepath.Join(dir, name), testMembers(10))
	}
	paths, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	set, err := OpenSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		if err := set.VerifyCtx(cancelled, workers); !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: cancelled set verify returned %v", workers, err)
		}
		if err := set.VerifyCtx(context.Background(), workers); err != nil {
			t.Fatalf("workers=%d: set verify after cancelled attempt: %v", workers, err)
		}
	}
}

func TestRecoverCtxCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	writePack(t, path, testMembers(12))
	// Chop the footer so RecoverCtx has to take the salvage path (which
	// runs the cancellable verify pass).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-footerLen], 0o644); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RecoverCtx(cancelled, path); !errs.IsCancellation(err) {
		t.Fatalf("cancelled recover returned %v", err)
	}
	p, err := RecoverCtx(context.Background(), path)
	if err != nil {
		t.Fatalf("recover after cancelled attempt: %v", err)
	}
	defer p.Close()
	if p.Len() != 12 {
		t.Fatalf("salvaged %d members, want 12", p.Len())
	}
}

func TestShardWriterAppendCtx(t *testing.T) {
	dir := t.TempDir()
	sw := NewShardWriter(dir, "c", 0)
	if err := sw.AppendCtx(context.Background(), "m1", 3, &byteReader{data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sw.AppendCtx(cancelled, "m2", 3, &byteReader{data: []byte("def")}); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled append returned %v", err)
	}
	// The shard finalises cleanly with only the completed member.
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := Open(sw.Paths()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 1 {
		t.Fatalf("shard holds %d members, want 1", p.Len())
	}
	if err := p.Verify(0); err != nil {
		t.Fatal(err)
	}
}

// byteReader is a minimal io.Reader over a byte slice (Append sees only
// Read, exactly as external streaming sources present themselves).
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestWriterErrorsAreTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(path)
	if err := w.Append("", 0, &byteReader{}); !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("empty name: %v, want ErrInvalid", err)
	}
	if err := w.Append("m", -1, &byteReader{}); !errors.Is(err, errs.ErrInvalid) {
		t.Fatalf("negative size: %v, want ErrInvalid", err)
	}
	if err := w.Append("short", 5, &byteReader{data: []byte("abc")}); !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("short content: %v, want ErrCorrupt", err)
	}
}
