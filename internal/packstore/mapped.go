package packstore

import (
	"fmt"
	"io"
	"os"

	"repro/internal/errs"
)

// Reader is a zero-copy view over a finalised pack: the whole shard is
// memory-mapped (or, on platforms without mmap and under the
// `packstore_nommap` build tag, materialised once through the portable
// ReaderAt fallback) and every member's payload is a subslice of that one
// mapping. Opening a member costs nothing and reading one costs no copy —
// kernels scan straight out of the page cache, which is the logical
// endpoint of reshaping: the pack removed the per-file opens, the mapping
// removes the per-block copies.
//
// Lifetime rules (the borrowed-slice contract):
//
//   - Slices returned by MemberBytes alias the mapping and are valid only
//     until Close. Retaining one past Close is a use-after-unmap fault on
//     the mmap path and silent garbage on none — callers that need bytes
//     beyond the reader's lifetime must copy.
//   - The mapping is read-only; writing through a returned slice faults.
//   - Close is idempotent and must be called exactly when every borrowed
//     slice is dead.
type Reader struct {
	pack   *Pack
	data   []byte
	mapped bool
}

// MmapSupported reports whether this build maps packs with the OS mmap
// path (false under the portable fallback build tag, where Readers
// materialise shards on the heap instead).
const MmapSupported = mmapSupported

// OpenReader opens a finalised pack for zero-copy member access. The
// footer and index are validated exactly as Open does; the record region
// is then mapped (or materialised under the fallback).
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("packstore: open reader: %w", err)
	}
	p, err := openStrict(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	data, mapped, err := mapFile(f, p.size)
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("packstore: map %s: %w", path, err)
	}
	r := &Reader{pack: p, data: data, mapped: mapped}
	// Serve the pack's ReadAt traffic (SectionReader, Verify) from the
	// mapping too: one backing for every access path, no pread syscalls.
	p.ra = sliceReaderAt(data)
	return r, nil
}

// Pack returns the underlying pack (members, lookups, verification). Its
// SectionReaders read from the mapping and share the Reader's lifetime.
func (r *Reader) Pack() *Pack { return r.pack }

// Len returns the number of members.
func (r *Reader) Len() int { return r.pack.Len() }

// Mapped reports whether the reader holds a real OS mapping (false when
// the portable fallback materialised the shard on the heap, or when mmap
// failed and the open fell back).
func (r *Reader) Mapped() bool { return r.mapped }

// MemberBytes returns the i-th member's payload (members sorted by name,
// matching Pack.Members) as a borrowed zero-copy slice, valid until
// Close. The slice is capacity-clamped so an append cannot spill into the
// neighbouring member's bytes.
func (r *Reader) MemberBytes(i int) []byte {
	m := r.pack.members[i]
	return r.data[m.Offset : m.Offset+m.Size : m.Offset+m.Size]
}

// Lookup returns the named member's payload as a borrowed slice, valid
// until Close.
func (r *Reader) Lookup(name string) ([]byte, error) {
	i, ok := r.pack.byName[name]
	if !ok {
		return nil, errs.NotFound("packstore: %s: no member %q", r.pack.path, name)
	}
	return r.MemberBytes(i), nil
}

// AdviseSequential hints the OS that the mapping will be read front to
// back (madvise(MADV_SEQUENTIAL) on the mmap path, a no-op on the
// fallback), which is how full-shard fused scans walk it. Best effort:
// an unsupported advice is not an error worth failing a scan for, so
// callers may ignore the return.
func (r *Reader) AdviseSequential() error {
	if !r.mapped {
		return nil
	}
	return adviseSequential(r.data)
}

// Close unmaps the shard and releases the file handle. Every slice
// handed out by MemberBytes/Lookup is invalid afterwards. Idempotent.
func (r *Reader) Close() error {
	if r.data == nil && r.pack == nil {
		return nil
	}
	data, mapped := r.data, r.mapped
	r.data = nil
	var err error
	if mapped {
		err = unmapFile(data)
	}
	if r.pack != nil {
		// Detach the pack's view of the dead mapping before closing it, so
		// a straggling SectionReader errors instead of faulting.
		r.pack.ra = closedReaderAt{r.pack.path}
		if cerr := r.pack.Close(); cerr != nil && err == nil {
			err = cerr
		}
		r.pack = nil
	}
	return err
}

// sliceReaderAt adapts the mapped bytes to io.ReaderAt so the Pack's
// SectionReader/Verify machinery reads from the mapping.
type sliceReaderAt []byte

func (s sliceReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(s)) {
		return 0, fmt.Errorf("packstore: read at %d outside mapping of %d bytes", off, len(s))
	}
	n := copy(p, s[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// closedReaderAt is what a closed Reader's pack reads through: every
// read fails loudly instead of touching a dead mapping.
type closedReaderAt struct{ path string }

func (c closedReaderAt) ReadAt([]byte, int64) (int, error) {
	return 0, fmt.Errorf("packstore: %s: read after Reader.Close", c.path)
}

// readFileAt materialises size bytes of f on the heap — the portable
// fallback's "mapping", also used when a real mmap fails.
func readFileAt(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	return data, nil
}
