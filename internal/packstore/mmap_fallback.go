//go:build (!linux && !darwin) || packstore_nommap

package packstore

import "os"

const mmapSupported = false

// mapFile is the portable fallback: the shard is materialised once on
// the heap through ReaderAt. MemberBytes views are subslices of that one
// buffer, so the zero-copy member contract (and the differential tests
// pinning it to the mmap path) hold identically — the fallback pays one
// up-front copy of the shard instead of none, never one per member.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := readFileAt(f, size)
	return data, false, err
}

// unmapFile is a no-op: heap buffers are garbage-collected.
func unmapFile([]byte) error { return nil }

// adviseSequential is a no-op without a mapping to advise on.
func adviseSequential([]byte) error { return nil }
