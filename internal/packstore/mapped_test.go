package packstore

// The mapped Reader tests are build-tag agnostic: they exercise whichever
// implementation the build selected (real mmap, or the portable ReaderAt
// fallback under `packstore_nommap` / non-mmap platforms), so CI running
// them under both tags proves the two paths are interchangeable.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mappedFixture writes a pack with a few members of varied sizes
// (including empty) and returns its path plus the payloads by name.
func mappedFixture(t *testing.T) (string, map[string][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mapped.pack")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{
		"a/small":  []byte("hello pack"),
		"b/empty":  {},
		"c/binary": bytes.Repeat([]byte{0x00, 0xFF, 0x7F, 'x'}, 1024),
		"d/text":   []byte(strings.Repeat("the quick brown fox. ", 500)),
	}
	// Append in non-sorted order so index sorting is exercised.
	for _, name := range []string{"d/text", "a/small", "c/binary", "b/empty"} {
		if err := w.AppendBytes(name, payloads[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, payloads
}

func TestReaderMemberBytesMatchPayloads(t *testing.T) {
	path, payloads := mappedFixture(t)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(payloads) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(payloads))
	}
	for i, m := range r.Pack().Members() {
		got := r.MemberBytes(i)
		if !bytes.Equal(got, payloads[m.Name]) {
			t.Errorf("MemberBytes(%d) = %d bytes, want payload of %q (%d bytes)",
				i, len(got), m.Name, len(payloads[m.Name]))
		}
		// The view must be capacity-clamped: appending to it must not be
		// able to overwrite the next member in the mapping.
		if cap(got) != len(got) {
			t.Errorf("member %q view cap %d != len %d (not clamped)", m.Name, cap(got), len(got))
		}
		byName, err := r.Lookup(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(byName, got) {
			t.Errorf("Lookup(%q) differs from MemberBytes(%d)", m.Name, i)
		}
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("Lookup of a missing member succeeded")
	}
}

// TestReaderMatchesSectionReader is the zero-copy differential: every
// member's borrowed view must be bit-identical to the bytes the copying
// SectionReader path streams, and the pack must still verify through the
// mapping-backed ReaderAt.
func TestReaderMatchesSectionReader(t *testing.T) {
	path, _ := mappedFixture(t)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, m := range r.Pack().Members() {
		streamed, err := io.ReadAll(r.Pack().SectionReader(m))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed, r.MemberBytes(i)) {
			t.Errorf("member %q: SectionReader bytes differ from MemberBytes view", m.Name)
		}
	}
	if err := r.Pack().Verify(0); err != nil {
		t.Fatalf("Verify through the mapping: %v", err)
	}
}

func TestReaderAdviseAndClose(t *testing.T) {
	path, _ := mappedFixture(t)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	if !MmapSupported && r.Mapped() {
		t.Error("fallback build reports a real mapping")
	}
	if err := r.AdviseSequential(); err != nil {
		t.Errorf("AdviseSequential: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}

func TestReaderRejectsCorruptPack(t *testing.T) {
	path, _ := mappedFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the footer: OpenReader must refuse like Open does.
	trunc := filepath.Join(t.TempDir(), "trunc.pack")
	if err := os.WriteFile(trunc, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(trunc); err == nil {
		t.Fatal("OpenReader accepted a truncated pack")
	}
}

func TestReaderManyMembersZeroCopyIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "many.pack")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.AppendBytes(fmt.Sprintf("m-%04d", i), []byte(fmt.Sprintf("payload %d |", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// All views share one backing array: offsets must be strictly
	// increasing within it and contents exact.
	for i := 0; i < r.Len(); i++ {
		m := r.Pack().Members()[i]
		want := fmt.Sprintf("payload %s |", strings.TrimLeft(m.Name[2:], "0"))
		if m.Name == "m-0000" {
			want = "payload 0 |"
		}
		if got := string(r.MemberBytes(i)); got != want {
			t.Fatalf("member %q = %q, want %q", m.Name, got, want)
		}
	}
}
