package packstore

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/errs"
	"repro/internal/par"
)

// ShardWriter splits a stream of members across pack files, rolling to a
// new shard once the current one holds at least one member and the next
// member would push its payload bytes past the target. Shard file names
// are "<prefix>-<seq>.pack" with a fixed-width sequence number, so a
// directory listing sorts shards in write order and the layout is a pure
// function of the member sequence — byte-reproducible.
type ShardWriter struct {
	dir    string
	prefix string
	target int64
	w      *Writer
	seq    int
	paths  []string
	closed bool
}

// NewShardWriter prepares a sharding writer. target <= 0 means a single
// unbounded shard. No file is created until the first Append, so an
// empty export leaves no artefacts.
func NewShardWriter(dir, prefix string, target int64) *ShardWriter {
	if prefix == "" {
		prefix = "corpus"
	}
	return &ShardWriter{dir: dir, prefix: prefix, target: target}
}

// Paths returns the shard files written so far, in write order.
func (s *ShardWriter) Paths() []string { return append([]string(nil), s.paths...) }

// Shards returns the number of shard files started so far.
func (s *ShardWriter) Shards() int { return s.seq }

// roll closes the current shard (if any) and starts the next.
func (s *ShardWriter) roll() error {
	if s.w != nil {
		if err := s.w.Close(); err != nil {
			return err
		}
		s.w = nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.pack", s.prefix, s.seq))
	w, err := Create(path)
	if err != nil {
		return err
	}
	s.w = w
	s.seq++
	s.paths = append(s.paths, path)
	return nil
}

// ensure rolls to a fresh shard when appending size more bytes to the
// current one would exceed the target (and the shard is non-empty).
func (s *ShardWriter) ensure(size int64) error {
	if s.closed {
		return fmt.Errorf("packstore: append to closed shard writer")
	}
	if s.w == nil || (s.target > 0 && s.w.Count() > 0 && s.w.DataSize()+size > s.target) {
		return s.roll()
	}
	return nil
}

// Append stores one member, rolling to a new shard first when the
// current shard is non-empty and adding size bytes would exceed the
// target. Oversized members therefore get a shard of their own rather
// than being rejected, mirroring the bin packers' oversized handling.
func (s *ShardWriter) Append(name string, size int64, r io.Reader) error {
	if err := s.ensure(size); err != nil {
		return err
	}
	return s.w.Append(name, size, r)
}

// AppendCtx is Append guarded by a context check: once ctx is done no
// further member is started and the typed cancellation error is
// returned. The shard on disk stays well-formed up to the last completed
// append (Close still finalises it).
func (s *ShardWriter) AppendCtx(ctx context.Context, name string, size int64, r io.Reader) error {
	if cerr := errs.FromContext(ctx); cerr != nil {
		return cerr
	}
	return s.Append(name, size, r)
}

// AppendBytes is Append over an in-memory payload, taking the Writer's
// zero-copy direct path (no intermediate reader or copy window).
func (s *ShardWriter) AppendBytes(name string, data []byte) error {
	if err := s.ensure(int64(len(data))); err != nil {
		return err
	}
	return s.w.AppendBytes(name, data)
}

// Close finalises the last shard. The ShardWriter is unusable afterwards.
func (s *ShardWriter) Close() error {
	if s.closed {
		return fmt.Errorf("packstore: shard writer already closed")
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// Discover returns the pack files under dir ("*.pack"), sorted by name —
// the inverse of ShardWriter's naming, recovering write order.
func Discover(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.pack"))
	if err != nil {
		return nil, fmt.Errorf("packstore: discover %s: %w", dir, err)
	}
	sort.Strings(paths)
	return paths, nil
}

// Set is a collection of open packs — typically the shards of one
// exported corpus — verified and closed as a unit.
type Set struct {
	packs []*Pack
}

// OpenSet strictly opens every path into a Set. On any failure the packs
// opened so far are closed.
func OpenSet(paths ...string) (*Set, error) {
	s := &Set{packs: make([]*Pack, 0, len(paths))}
	for _, path := range paths {
		p, err := Open(path)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.packs = append(s.packs, p)
	}
	return s, nil
}

// Packs returns the set's packs in open order. Callers must not modify
// the returned slice.
func (s *Set) Packs() []*Pack { return s.packs }

// Len returns the total member count across all packs.
func (s *Set) Len() int {
	n := 0
	for _, p := range s.packs {
		n += p.Len()
	}
	return n
}

// DataSize returns the total payload bytes across all packs.
func (s *Set) DataSize() int64 {
	var n int64
	for _, p := range s.packs {
		n += p.DataSize()
	}
	return n
}

// Verify checksums every member of every pack on one pool, so a set of
// many small shards still saturates the machine. Errors are reported for
// the first failing member in (pack, name) order, independent of worker
// count.
func (s *Set) Verify(workers int) error {
	return s.VerifyCtx(context.Background(), workers)
}

// VerifyCtx is Verify with cancellation: the flattened (pack, member)
// dispatch stops once ctx is done and the call returns a typed
// cancellation error; a corruption found before the abort still wins.
func (s *Set) VerifyCtx(ctx context.Context, workers int) error {
	type slot struct {
		p *Pack
		m Member
	}
	flat := make([]slot, 0, s.Len())
	for _, p := range s.packs {
		for _, m := range p.Members() {
			flat = append(flat, slot{p, m})
		}
	}
	return par.New(workers).ForEachCtx(ctx, len(flat), func(i int) error {
		return flat[i].p.verifyMember(flat[i].m)
	})
}

// Close closes every pack, returning the first error.
func (s *Set) Close() error {
	var first error
	for _, p := range s.packs {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
