package packstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/errs"
)

// truncateTo copies the pack at src truncated to n bytes.
func truncateTo(t *testing.T, src string, n int64) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if n > int64(len(data)) {
		t.Fatalf("truncateTo %d > file size %d", n, len(data))
	}
	dst := src + fmt.Sprintf(".trunc%d", n)
	if err := os.WriteFile(dst, data[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.pack")
	members := testMembers(10)
	writePack(t, path, members)

	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record where each member's record ends (payload + trailing checksum)
	// so truncation points can be placed precisely.
	ends := make(map[string]int64, p.Len())
	var lastName string
	var lastEnd int64
	for _, m := range p.Members() {
		end := m.Offset + m.Size + checksumLen
		ends[m.Name] = end
		if end > lastEnd {
			lastEnd = end
			lastName = m.Name
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fileSize := info.Size()
	p.Close()

	cases := []struct {
		name string
		cut  int64 // file length after truncation
		want int   // salvaged members
	}{
		{"mid-footer", fileSize - 5, len(members)},
		{"mid-index", lastEnd + 10, len(members)},
		{"index-lost", lastEnd, len(members)},
		{"mid-last-checksum", lastEnd - 3, len(members) - 1},
		{"mid-last-payload", lastEnd - checksumLen - 1, len(members) - 1},
		{"mid-last-header", lastEnd - checksumLen - sizeOfLast(t, path, lastName) - 2, len(members) - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cut := truncateTo(t, path, tc.cut)
			if _, err := Open(cut); err == nil && tc.cut < fileSize {
				t.Fatal("strict Open accepted a truncated pack")
			}
			r, err := Recover(cut)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Len() != tc.want {
				t.Fatalf("salvaged %d members, want %d", r.Len(), tc.want)
			}
			if !r.Truncated() {
				t.Error("recovered pack does not report Truncated")
			}
			// Every salvaged member reads back intact.
			for _, m := range members {
				got, ok := r.Lookup(m.name)
				if !ok {
					continue
				}
				data, err := io.ReadAll(r.SectionReader(got))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(data, m.data) {
					t.Fatalf("salvaged member %q bytes differ", m.name)
				}
			}
			if err := r.Verify(0); err != nil {
				t.Fatalf("Verify over salvage: %v", err)
			}
		})
	}
}

// sizeOfLast returns the payload size of the named member.
func sizeOfLast(t *testing.T, path, name string) int64 {
	t.Helper()
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m, ok := p.Lookup(name)
	if !ok {
		t.Fatalf("member %q missing", name)
	}
	return m.Size
}

func TestRecoverIntactPackMatchesOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	writePack(t, path, testMembers(8))
	p, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Truncated() {
		t.Error("intact pack recovered as truncated")
	}
	if p.Len() != 8 {
		t.Fatalf("Len = %d, want 8", p.Len())
	}
}

func TestRecoverRejectsNonTailCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	members := testMembers(10)
	writePack(t, path, members)
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of the earliest non-empty member (which is not
	// the tail), then cut the footer so Recover takes the scan path.
	var first Member
	for _, m := range p.Members() {
		if m.Size == 0 {
			continue
		}
		if first.Name == "" || m.Offset < first.Offset {
			first = m
		}
	}
	if first.Name == "" {
		t.Fatal("no non-empty member to corrupt")
	}
	info, _ := os.Stat(path)
	p.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[first.Offset] ^= 0xFF
	if err := os.WriteFile(path, data[:info.Size()-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Recover(path)
	if err == nil {
		t.Fatal("Recover accepted corruption in the middle of the pack")
	}
	// The refusal is typed and names the damaged member: the operator
	// learns *which* file to restore, not just that something is wrong.
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Errorf("errors.Is(err, ErrCorrupt) = false: %v", err)
	}
	var se *errs.StageError
	if !errors.As(err, &se) || se.File != first.Name {
		t.Errorf("Recover blamed %v, want member %q", err, first.Name)
	}
}

// TestRecoverCorruptRecordBody flips a byte deep inside an interior
// record's payload — not the tail, not the index — on a pack whose
// footer is also gone. Recover's salvage must refuse with ErrCorrupt
// naming the damaged member rather than resurrect bad bytes.
func TestRecoverCorruptRecordBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	members := testMembers(12)
	writePack(t, path, members)
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Victim: a mid-pack member (neither first nor last by offset) with a
	// payload to damage.
	byOffset := append([]Member(nil), p.Members()...)
	sort.Slice(byOffset, func(i, j int) bool { return byOffset[i].Offset < byOffset[j].Offset })
	var victim Member
	for _, m := range byOffset[1 : len(byOffset)-1] {
		if m.Size > 2 {
			victim = m
			break
		}
	}
	p.Close()
	if victim.Name == "" {
		t.Fatal("no mid-pack member with a payload")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.Offset+victim.Size/2] ^= 0x01
	// Cut the footer so Recover takes the salvage path.
	if err := os.WriteFile(path, data[:len(data)-footerLen], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Recover(path)
	if err == nil {
		t.Fatal("Recover salvaged a pack with a corrupt interior record body")
	}
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Errorf("errors.Is(err, ErrCorrupt) = false: %v", err)
	}
	var se *errs.StageError
	if !errors.As(err, &se) || se.File != victim.Name {
		t.Errorf("Recover blamed %v, want member %q", err, victim.Name)
	}
}

func TestRecoverEmptyAndGarbage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.pack")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(empty); err == nil {
		t.Error("Recover accepted an empty file")
	}
	garbage := filepath.Join(dir, "garbage.pack")
	if err := os.WriteFile(garbage, []byte("this is not a pack at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(garbage); err == nil {
		t.Error("Recover accepted a non-pack file")
	}
	// Header only: a pack that crashed before its first complete record
	// recovers to zero members.
	headerOnly := filepath.Join(dir, "header.pack")
	if err := os.WriteFile(headerOnly, []byte(headerMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Recover(headerOnly)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 0 {
		t.Fatalf("salvaged %d members from a header-only pack", p.Len())
	}
}
