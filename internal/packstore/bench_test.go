package packstore

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"
)

// benchPack writes one pack of n members × memberSize bytes and returns
// the opened pack.
func benchPack(b *testing.B, n int, memberSize int) *Pack {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.pack")
	w, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, memberSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	for i := 0; i < n; i++ {
		if err := w.AppendBytes(fmt.Sprintf("m-%06d", i), data); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	p, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	return p
}

// randomAccessBench reads one mid-pack member per iteration. Comparing
// the small and large variants demonstrates O(1) member access: the cost
// tracks the member size, not the pack size.
func randomAccessBench(p *Pack) func(b *testing.B) {
	return func(b *testing.B) {
		m := p.Members()[p.Len()/2]
		buf := make([]byte, m.Size)
		b.SetBytes(m.Size)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := io.ReadFull(p.SectionReader(m), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPackRandomAccess64(b *testing.B)   { randomAccessBench(benchPack(b, 64, 8192))(b) }
func BenchmarkPackRandomAccess2048(b *testing.B) { randomAccessBench(benchPack(b, 2048, 8192))(b) }

func BenchmarkPackVerify512(b *testing.B) {
	p := benchPack(b, 512, 8192)
	b.SetBytes(p.DataSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Verify(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackWrite512(b *testing.B) {
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i % 251)
	}
	dir := b.TempDir()
	b.SetBytes(512 * 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := Create(filepath.Join(dir, fmt.Sprintf("w%d.pack", i)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 512; j++ {
			if err := w.AppendBytes(fmt.Sprintf("m-%06d", j), data); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
