package packstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/par"
)

// Pack is an open pack file. All members share one *os.File handle used
// exclusively through ReadAt (pread), so any number of member readers
// can stream concurrently from a single descriptor — opening a member is
// free and reading one costs O(member), not O(pack).
type Pack struct {
	path      string
	ra        io.ReaderAt
	closer    io.Closer
	size      int64
	members   []Member // sorted by name
	byName    map[string]int
	truncated bool
}

// Open opens a finalised pack strictly: the footer must be intact and
// the index must match its checksum. Use Recover for packs that may
// have lost their tail to a crash.
func Open(path string) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("packstore: open: %w", err)
	}
	p, err := openStrict(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// openStrict reads header, footer and index from an open file.
func openStrict(f *os.File, path string) (*Pack, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("packstore: open %s: %w", path, err)
	}
	size := info.Size()
	if size < int64(headerLen+footerLen) {
		return nil, fmt.Errorf("packstore: %s: too short for a pack (%d bytes)", path, size)
	}
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:headerLen], 0); err != nil {
		return nil, fmt.Errorf("packstore: %s: reading header: %w", path, err)
	}
	if string(hdr[:headerLen]) != headerMagic {
		return nil, fmt.Errorf("packstore: %s: bad header magic", path)
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-int64(footerLen)); err != nil {
		return nil, fmt.Errorf("packstore: %s: reading footer: %w", path, err)
	}
	if string(footer[32:]) != footerMagic {
		return nil, errs.Corrupt("packstore: %s: bad footer magic (truncated or unfinalised pack; try Recover)", path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	count := binary.LittleEndian.Uint64(footer[16:])
	indexSum := binary.LittleEndian.Uint64(footer[24:])
	if indexOff < int64(headerLen) || indexLen < 0 || indexOff+indexLen != size-int64(footerLen) {
		return nil, fmt.Errorf("packstore: %s: footer index bounds [%d,+%d) inconsistent with file size %d",
			path, indexOff, indexLen, size)
	}
	index := make([]byte, indexLen)
	if _, err := f.ReadAt(index, indexOff); err != nil {
		return nil, fmt.Errorf("packstore: %s: reading index: %w", path, err)
	}
	h := fnv.New64a()
	h.Write(index)
	if h.Sum64() != indexSum {
		return nil, errs.Corrupt("packstore: %s: index checksum %x != footer %x (corrupt index; try Recover)",
			path, h.Sum64(), indexSum)
	}
	members, err := decodeIndex(index, count, indexOff)
	if err != nil {
		return nil, fmt.Errorf("packstore: %s: %w", path, err)
	}
	return newPack(path, f, f, size, members, false)
}

// decodeIndex parses index bytes, validating every entry's bounds
// against the record region [headerLen, indexOff).
func decodeIndex(index []byte, count uint64, indexOff int64) ([]Member, error) {
	members := make([]Member, 0, count)
	off := 0
	for i := uint64(0); i < count; i++ {
		if off+28 > len(index) {
			return nil, fmt.Errorf("index entry %d overruns index", i)
		}
		nameLen := int(binary.LittleEndian.Uint32(index[off:]))
		m := Member{
			Size:     int64(binary.LittleEndian.Uint64(index[off+4:])),
			Checksum: binary.LittleEndian.Uint64(index[off+12:]),
			Offset:   int64(binary.LittleEndian.Uint64(index[off+20:])),
		}
		off += 28
		if nameLen <= 0 || nameLen >= MaxNameLen || off+nameLen > len(index) {
			return nil, fmt.Errorf("index entry %d has invalid name length %d", i, nameLen)
		}
		m.Name = string(index[off : off+nameLen])
		off += nameLen
		if m.Size < 0 || m.Offset < int64(headerLen) || m.Offset+m.Size+checksumLen > indexOff {
			return nil, fmt.Errorf("index entry %q payload [%d,+%d) outside record region", m.Name, m.Offset, m.Size)
		}
		members = append(members, m)
	}
	if off != len(index) {
		return nil, fmt.Errorf("index has %d trailing bytes", len(index)-off)
	}
	return members, nil
}

// newPack assembles a Pack, sorting members by name and rejecting
// duplicates so lookups and iteration order are deterministic.
func newPack(path string, ra io.ReaderAt, closer io.Closer, size int64, members []Member, truncated bool) (*Pack, error) {
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
	byName := make(map[string]int, len(members))
	for i, m := range members {
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("packstore: %s: duplicate member %q", path, m.Name)
		}
		byName[m.Name] = i
	}
	return &Pack{
		path:      path,
		ra:        ra,
		closer:    closer,
		size:      size,
		members:   members,
		byName:    byName,
		truncated: truncated,
	}, nil
}

// Recover opens a pack leniently: if the footer and index are intact it
// behaves exactly like Open; otherwise it rescans the record region and
// salvages every complete member, checksums included — the durable-store
// guarantee that a crash mid-append loses at most the member being
// written. A pack recovered from a damaged tail reports Truncated().
func Recover(path string) (*Pack, error) {
	return RecoverCtx(context.Background(), path)
}

// RecoverCtx is Recover with cancellation, threaded through the salvage
// verification passes (the expensive part of recovery on a large pack).
func RecoverCtx(ctx context.Context, path string) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("packstore: recover: %w", err)
	}
	if p, err := openStrict(f, path); err == nil {
		return p, nil
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("packstore: recover %s: %w", path, err)
	}
	size := info.Size()
	if size < int64(headerLen) {
		f.Close()
		return nil, fmt.Errorf("packstore: recover %s: shorter than the pack header", path)
	}
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:headerLen], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("packstore: recover %s: reading header: %w", path, err)
	}
	if string(hdr[:headerLen]) != headerMagic {
		f.Close()
		return nil, fmt.Errorf("packstore: recover %s: not a pack (bad header magic)", path)
	}
	members := scanRecords(f, size)
	p, err := newPack(path, f, f, size, members, true)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Salvage means intact: verify every salvaged payload. A bad final
	// member is the crash tail — drop it; a bad earlier member is
	// corruption, not truncation — surface it.
	if err := p.VerifyCtx(ctx, 0); err != nil {
		if errs.IsCancellation(err) {
			f.Close()
			return nil, err
		}
		if len(members) == 0 {
			f.Close()
			return nil, err
		}
		last := members[len(members)-1] // highest offset = last appended
		for _, m := range members {
			if m.Offset > last.Offset {
				last = m
			}
		}
		if verr := p.verifyMember(last); verr != nil {
			trimmed := make([]Member, 0, len(members)-1)
			for _, m := range members {
				if m.Name != last.Name {
					trimmed = append(trimmed, m)
				}
			}
			p, err = newPack(path, f, f, size, trimmed, true)
			if err != nil {
				f.Close()
				return nil, err
			}
			if err := p.VerifyCtx(ctx, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("packstore: recover %s: corruption beyond the tail: %w", path, err)
			}
		} else {
			f.Close()
			return nil, fmt.Errorf("packstore: recover %s: corruption beyond the tail: %w", path, err)
		}
	}
	return p, nil
}

// scanRecords walks the record region sequentially and returns every
// member whose record is complete (prefix, name, payload and trailing
// checksum all present). The first malformed or cut record ends the
// scan: records are written strictly sequentially, so nothing beyond a
// damaged record can be a record.
func scanRecords(ra io.ReaderAt, size int64) []Member {
	var members []Member
	off := int64(headerLen)
	prefix := make([]byte, recordPrefixLen)
	for {
		if off+int64(recordPrefixLen) > size {
			return members
		}
		if _, err := ra.ReadAt(prefix, off); err != nil {
			return members
		}
		if string(prefix[:4]) != recordMagic {
			return members
		}
		nameLen := int64(binary.LittleEndian.Uint32(prefix[4:]))
		msize := int64(binary.LittleEndian.Uint64(prefix[8:]))
		if nameLen <= 0 || nameLen >= MaxNameLen || msize < 0 {
			return members
		}
		nameOff := off + int64(recordPrefixLen)
		payloadOff := nameOff + nameLen
		end := payloadOff + msize + checksumLen
		if end > size {
			return members
		}
		name := make([]byte, nameLen)
		if _, err := ra.ReadAt(name, nameOff); err != nil {
			return members
		}
		var sum [checksumLen]byte
		if _, err := ra.ReadAt(sum[:], payloadOff+msize); err != nil {
			return members
		}
		members = append(members, Member{
			Name:     string(name),
			Size:     msize,
			Checksum: binary.LittleEndian.Uint64(sum[:]),
			Offset:   payloadOff,
		})
		off = end
	}
}

// Path returns the pack's file path.
func (p *Pack) Path() string { return p.path }

// Len returns the number of members.
func (p *Pack) Len() int { return len(p.members) }

// DataSize returns the summed payload bytes of all members.
func (p *Pack) DataSize() int64 {
	var n int64
	for _, m := range p.members {
		n += m.Size
	}
	return n
}

// Truncated reports whether the pack was salvaged from a damaged tail
// (only ever true for packs opened via Recover).
func (p *Pack) Truncated() bool { return p.truncated }

// Members returns all members sorted by name. Callers must not modify
// the returned slice.
func (p *Pack) Members() []Member { return p.members }

// Lookup finds a member by name.
func (p *Pack) Lookup(name string) (Member, bool) {
	i, ok := p.byName[name]
	if !ok {
		return Member{}, false
	}
	return p.members[i], true
}

// SectionReader returns an independent reader over a member's payload.
// It never opens a file descriptor: all sections share the pack's
// handle through ReadAt.
func (p *Pack) SectionReader(m Member) *io.SectionReader {
	return io.NewSectionReader(p.ra, m.Offset, m.Size)
}

// Open returns a reader over the named member's payload.
func (p *Pack) Open(name string) (*io.SectionReader, error) {
	m, ok := p.Lookup(name)
	if !ok {
		return nil, errs.NotFound("packstore: %s: no member %q", p.path, name)
	}
	return p.SectionReader(m), nil
}

// verifyBufPool recycles the streaming windows Verify hashes through.
var verifyBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 256*1024)
		return &buf
	},
}

// verifyMember streams one member's payload and compares checksums. A
// mismatch comes back as a StageError (stage "verify", file = member
// name) wrapping errs.ErrCorrupt, so callers identify the blamed member
// with errors.As instead of parsing the message.
func (p *Pack) verifyMember(m Member) error {
	h := fnv.New64a()
	bp := verifyBufPool.Get().(*[]byte)
	_, err := io.CopyBuffer(h, p.SectionReader(m), *bp)
	verifyBufPool.Put(bp)
	if err != nil {
		return errs.StageFile("verify", m.Name, fmt.Errorf("packstore: %s: %w", p.path, err))
	}
	if sum := h.Sum64(); sum != m.Checksum {
		return errs.StageFile("verify", m.Name,
			errs.Corrupt("packstore: %s: checksum %x != stored %x", p.path, sum, m.Checksum))
	}
	return nil
}

// Verify checksums every member's payload against the index, fanning the
// FNV streams out over the pool (workers <= 0 means GOMAXPROCS). The
// reported error is the one from the first member in name order, so the
// outcome is identical at any worker count.
func (p *Pack) Verify(workers int) error {
	return p.VerifyCtx(context.Background(), workers)
}

// VerifyCtx is Verify with cancellation: member dispatch stops once ctx
// is done and the call returns a typed cancellation error. A corruption
// found before the abort still wins (task errors take precedence).
func (p *Pack) VerifyCtx(ctx context.Context, workers int) error {
	return par.New(workers).ForEachCtx(ctx, len(p.members), func(i int) error {
		return p.verifyMember(p.members[i])
	})
}

// Close releases the pack's shared file handle. Member readers obtained
// earlier fail after Close.
func (p *Pack) Close() error {
	if p.closer == nil {
		return nil
	}
	c := p.closer
	p.closer = nil
	return c.Close()
}
