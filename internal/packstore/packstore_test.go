package packstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/errs"
)

// testMembers builds a deterministic member set with varied sizes,
// including empty and nested names.
func testMembers(n int) []struct {
	name string
	data []byte
} {
	out := make([]struct {
		name string
		data []byte
	}, n)
	for i := range out {
		out[i].name = fmt.Sprintf("dir%d/file-%04d.txt", i%3, i)
		size := (i * 37) % 4096
		data := make([]byte, size)
		for j := range data {
			data[j] = byte((i + j*31) % 251)
		}
		out[i].data = data
	}
	return out
}

// writePack writes the given members into a single pack at path.
func writePack(t *testing.T, path string, members []struct {
	name string
	data []byte
}) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if err := w.AppendBytes(m.name, m.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.pack")
	members := testMembers(50)
	writePack(t, path, members)

	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != len(members) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(members))
	}
	if p.Truncated() {
		t.Fatal("finalised pack reports Truncated")
	}
	for _, m := range members {
		got, ok := p.Lookup(m.name)
		if !ok {
			t.Fatalf("member %q missing", m.name)
		}
		if got.Size != int64(len(m.data)) {
			t.Fatalf("member %q size %d, want %d", m.name, got.Size, len(m.data))
		}
		data, err := io.ReadAll(p.SectionReader(got))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, m.data) {
			t.Fatalf("member %q bytes differ", m.name)
		}
	}
	// Members() is sorted by name.
	ms := p.Members()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Name >= ms[i].Name {
			t.Fatalf("members not sorted: %q >= %q", ms[i-1].Name, ms[i].Name)
		}
	}
	if err := p.Verify(0); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	members := testMembers(30)
	writePack(t, filepath.Join(dir, "a.pack"), members)
	writePack(t, filepath.Join(dir, "b.pack"), members)
	a, err := os.ReadFile(filepath.Join(dir, "a.pack"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.pack"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("packing the same members twice produced different bytes")
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(filepath.Join(dir, "a.pack"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBytes("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.AppendBytes("ok", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBytes("ok", []byte("y")); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := w.Append("short", 5, strings.NewReader("abc")); err == nil {
		t.Error("short content accepted")
	}
	// A failed append poisons the writer: Close must refuse to finalise.
	if err := w.Close(); err == nil {
		t.Error("Close after failed append did not report the error")
	}
}

func TestAppendRejectsLongContent(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(filepath.Join(dir, "a.pack"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("long", 2, strings.NewReader("abcdef")); err == nil {
		t.Error("over-long content accepted")
	}
	w.Close()
}

func TestEmptyPack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.pack")
	writePack(t, path, nil)
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
	if err := p.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptPayloadCaughtByVerify(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.pack")
	members := testMembers(20)
	writePack(t, path, members)

	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a member with a non-empty payload and flip one byte of it.
	var victim Member
	for _, m := range p.Members() {
		if m.Size > 0 {
			victim = m
			break
		}
	}
	p.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victim.Offset+victim.Size/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path) // index untouched: strict open still succeeds
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, workers := range []int{1, 2, 8} {
		err := p2.Verify(workers)
		if err == nil {
			t.Fatalf("Verify(%d) missed a flipped payload byte", workers)
		}
		if !errors.Is(err, errs.ErrCorrupt) {
			t.Fatalf("Verify(%d): errors.Is(err, ErrCorrupt) = false: %v", workers, err)
		}
		var se *errs.StageError
		if !errors.As(err, &se) || se.File != victim.Name {
			t.Fatalf("Verify(%d) blamed the wrong member: %v", workers, err)
		}
	}
}

func TestCorruptIndexCaughtByOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pack")
	writePack(t, path, testMembers(5))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the index region (just before the footer).
	data[len(data)-footerLen-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a pack with a corrupt index")
	}
	// Recover falls back to the record scan and salvages everything.
	p, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 5 {
		t.Fatalf("recovered %d members, want 5", p.Len())
	}
	if !p.Truncated() {
		t.Error("recovered pack does not report Truncated")
	}
}

func TestShardWriter(t *testing.T) {
	dir := t.TempDir()
	members := testMembers(40)
	var total int64
	sw := NewShardWriter(dir, "shard", 8*1024)
	for _, m := range members {
		if err := sw.AppendBytes(m.name, m.data); err != nil {
			t.Fatal(err)
		}
		total += int64(len(m.data))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	paths := sw.Paths()
	if len(paths) < 2 {
		t.Fatalf("expected multiple shards, got %d", len(paths))
	}
	found, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != len(paths) {
		t.Fatalf("Discover found %d packs, writer reported %d", len(found), len(paths))
	}

	set, err := OpenSet(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Len() != len(members) {
		t.Fatalf("set has %d members, want %d", set.Len(), len(members))
	}
	if set.DataSize() != total {
		t.Fatalf("set data size %d, want %d", set.DataSize(), total)
	}
	for _, workers := range []int{1, 3, 8} {
		if err := set.Verify(workers); err != nil {
			t.Fatalf("Verify(%d): %v", workers, err)
		}
	}
	// Every member is reachable through exactly one shard.
	seen := make(map[string]bool)
	for _, p := range set.Packs() {
		for _, m := range p.Members() {
			if seen[m.Name] {
				t.Fatalf("member %q appears in two shards", m.Name)
			}
			seen[m.Name] = true
		}
	}
	if len(seen) != len(members) {
		t.Fatalf("saw %d unique members, want %d", len(seen), len(members))
	}
}

func TestShardWriterEmptyLeavesNoFiles(t *testing.T) {
	dir := t.TempDir()
	sw := NewShardWriter(dir, "shard", 1024)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	found, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("empty shard writer left %d files", len(found))
	}
}

func TestOversizedMemberGetsOwnShard(t *testing.T) {
	dir := t.TempDir()
	sw := NewShardWriter(dir, "shard", 10)
	big := bytes.Repeat([]byte("x"), 100)
	if err := sw.AppendBytes("small-1", []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendBytes("big", big); err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendBytes("small-2", []byte("cd")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Shards(); got != 3 {
		t.Fatalf("got %d shards, want 3 (oversized member isolated)", got)
	}
}

func TestSectionReadersShareOneHandle(t *testing.T) {
	// Concurrent reads through many section readers over one pack must
	// not interfere (ReadAt is stateless) — run under -race this is also
	// the fd-safety proof.
	path := filepath.Join(t.TempDir(), "a.pack")
	members := testMembers(32)
	writePack(t, path, members)
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	errc := make(chan error, len(members))
	for _, m := range members {
		m := m
		go func() {
			got, ok := p.Lookup(m.name)
			if !ok {
				errc <- fmt.Errorf("member %q missing", m.name)
				return
			}
			data, err := io.ReadAll(p.SectionReader(got))
			if err != nil {
				errc <- err
				return
			}
			if !bytes.Equal(data, m.data) {
				errc <- fmt.Errorf("member %q bytes differ", m.name)
				return
			}
			errc <- nil
		}()
	}
	for range members {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
