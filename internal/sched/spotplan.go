package sched

import (
	"fmt"
	"time"

	"repro/internal/cloudsim"
)

// SpotOutcome describes executing a resumable batch job under a spot
// request: total wall-clock span (including interruptions), billed hours
// and cost, contrasted with the on-demand alternative.
type SpotOutcome struct {
	// WorkHours is the compute the job needs.
	WorkHours float64
	// FinishAt is the virtual time the job completes.
	FinishAt time.Duration
	// SpanHours is wall-clock from request to completion.
	SpanHours float64
	// ActiveHours is how many market hours actually ran.
	ActiveHours int
	// CostUSD is the spot bill (active hours at market price).
	CostUSD float64
	// OnDemandUSD is what the same compute costs on demand.
	OnDemandUSD float64
	// Interruptions counts gaps in the active schedule.
	Interruptions int
}

// PlanSpot simulates running workHours of resumable computation (the
// clean-resume requirement of §1.1) under a spot request with the given
// bid, starting at the market's current virtual time. It scans the
// deterministic price series hour by hour and accrues work only in active
// hours.
func PlanSpot(c *cloudsim.Cloud, bid, workHours float64) (*SpotOutcome, error) {
	if workHours <= 0 {
		return nil, fmt.Errorf("sched: work hours must be positive, got %v", workHours)
	}
	m := c.Spot()
	req, err := m.RequestSpot(bid)
	if err != nil {
		return nil, err
	}
	start := c.Clock().Now()
	out := &SpotOutcome{WorkHours: workHours}
	remaining := workHours
	t := start
	inGap := false
	const maxScan = 60 * 24 // hours; bounds unbounded low bids
	for scanned := 0; remaining > 0; scanned++ {
		if scanned > maxScan {
			req.Cancel()
			return nil, fmt.Errorf("sched: bid %v too low — job not finished after %d market hours", bid, maxScan)
		}
		hourStart := t.Truncate(time.Hour)
		price := m.Price(hourStart)
		hourEnd := hourStart + time.Hour
		if price <= bid {
			if inGap {
				out.Interruptions++
				inGap = false
			}
			avail := (hourEnd - t).Hours()
			use := avail
			if remaining < use {
				use = remaining
			}
			remaining -= use
			out.ActiveHours++
			out.CostUSD += price // spot bills the hour at market price
			t += time.Duration(use * float64(time.Hour))
			if remaining <= 0 {
				break
			}
			t = hourEnd
		} else {
			inGap = out.ActiveHours > 0 // a gap only counts once started
			t = hourEnd
		}
	}
	req.Cancel()
	out.FinishAt = t
	out.SpanHours = (t - start).Hours()
	ondemandHours := float64(int(workHours))
	if workHours > ondemandHours {
		ondemandHours++
	}
	out.OnDemandUSD = ondemandHours * cloudsim.Small.HourlyRate
	return out, nil
}
