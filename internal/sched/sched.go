// Package sched implements the paper's dynamic-scheduling extensions. The
// published system is a static planner; §3.1 and §7 sketch the dynamic
// pieces this package builds out: the switch-or-stay analysis for a slow
// instance, a monitor that replaces under-performing instances mid-run by
// detaching and re-attaching their EBS volume (no data transfer), and
// spot-market execution plans for deadline-insensitive work.
package sched

import (
	"fmt"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// SwitchDecision is the §3.1 back-of-envelope: an I/O-bound application on
// a slow instance can either let it run another hour or switch to a fresh
// (likely fast) instance, paying a startup + EBS-attach penalty.
type SwitchDecision struct {
	// StayGB is the data processed in the horizon if we stay.
	StayGB float64
	// SwitchGB is the data processed if the replacement is fast.
	SwitchGB float64
	// SwitchSlowGB is the downside if the replacement is slow too.
	SwitchSlowGB float64
	// Recommend is true when switching wins in expectation.
	Recommend bool
	// ExpectedGainGB is the probability-weighted gain from switching.
	ExpectedGainGB float64
}

// AnalyzeSwitch reproduces the paper's example: at 60 MB/s a slow instance
// processes ≈210 GB in the next hour; a fast replacement (even after a
// 3-minute penalty) processes ≈57 GB more; a slow replacement loses
// ≈10 GB. pFast is the probability the replacement is fast.
func AnalyzeSwitch(slowMBps, fastMBps float64, penalty, horizon time.Duration, pFast float64) (SwitchDecision, error) {
	if slowMBps <= 0 || fastMBps <= 0 {
		return SwitchDecision{}, fmt.Errorf("sched: speeds must be positive (%v, %v)", slowMBps, fastMBps)
	}
	if penalty < 0 || horizon <= 0 {
		return SwitchDecision{}, fmt.Errorf("sched: invalid penalty %v or horizon %v", penalty, horizon)
	}
	if pFast < 0 || pFast > 1 {
		return SwitchDecision{}, fmt.Errorf("sched: pFast %v out of [0,1]", pFast)
	}
	gb := func(mbps float64, d time.Duration) float64 {
		return mbps * d.Seconds() / 1000
	}
	work := horizon - penalty
	if work < 0 {
		work = 0
	}
	d := SwitchDecision{
		StayGB:       gb(slowMBps, horizon),
		SwitchGB:     gb(fastMBps, work),
		SwitchSlowGB: gb(slowMBps, work),
	}
	d.ExpectedGainGB = pFast*(d.SwitchGB-d.StayGB) + (1-pFast)*(d.SwitchSlowGB-d.StayGB)
	d.Recommend = d.ExpectedGainGB > 0
	return d, nil
}

// ReplacePolicy chooses when a slow instance is replaced (§7: "terminate
// poor instances right away or ... let them run up to close to a full hour
// and then reassign").
type ReplacePolicy int

// Policies.
const (
	// ReplaceNow terminates immediately on detection.
	ReplaceNow ReplacePolicy = iota
	// ReplaceAtHour lets the paid hour finish before switching.
	ReplaceAtHour
	// NeverReplace disables monitoring (the static baseline).
	NeverReplace
)

func (p ReplacePolicy) String() string {
	switch p {
	case ReplaceNow:
		return "replace-now"
	case ReplaceAtHour:
		return "replace-at-hour"
	default:
		return "never-replace"
	}
}

// Monitor supervises instances executing chunked work and replaces the
// ones whose observed progress falls behind the model's prediction.
type Monitor struct {
	Cloud *cloudsim.Cloud
	App   workload.App
	Model perfmodel.Model
	Zone  string
	// SlowRatio is the observed/predicted threshold that marks an instance
	// slow (e.g. 1.5 = 50% behind schedule).
	SlowRatio float64
	// Policy picks the replacement moment.
	Policy ReplacePolicy
	// Chunks is how many checkpoints the work is split into.
	Chunks int
}

// NewMonitor returns a monitor with sensible defaults.
func NewMonitor(c *cloudsim.Cloud, app workload.App, m perfmodel.Model, zone string) *Monitor {
	return &Monitor{
		Cloud:     c,
		App:       app,
		Model:     m,
		Zone:      zone,
		SlowRatio: 1.5,
		Policy:    ReplaceNow,
		Chunks:    4,
	}
}

// TaskReport describes one monitored task execution.
type TaskReport struct {
	Replacements int
	// ElapsedS is wall-clock task time including replacement penalties.
	ElapsedS float64
	// BilledHours across all instances that touched the task.
	BilledHours float64
	// CostUSD at the small-instance rate.
	CostUSD float64
	// Grades of the instances used, in order.
	Grades []string
}

// RunTask executes items on a monitored instance with data on an EBS
// volume, replacing the instance (detach + launch + attach, the ~3-minute
// penalty of §3.1) whenever a checkpoint shows it behind schedule. The
// volume's persistence is what makes replacement cheap: no data moves.
func (mo *Monitor) RunTask(items []workload.Item, vol *cloudsim.Volume, datasetKey string) (*TaskReport, error) {
	if mo.Chunks < 1 {
		return nil, fmt.Errorf("sched: Chunks must be ≥ 1, got %d", mo.Chunks)
	}
	if mo.SlowRatio <= 1 {
		return nil, fmt.Errorf("sched: SlowRatio must exceed 1, got %v", mo.SlowRatio)
	}
	report := &TaskReport{}
	in, err := mo.launch(report)
	if err != nil {
		return nil, err
	}
	if err := mo.Cloud.Attach(vol, in); err != nil {
		return nil, err
	}
	var elapsed float64     // wall-clock seconds for the whole task
	var instElapsed float64 // running-state seconds on the current instance
	chunks := splitChunks(items, mo.Chunks)
	for ci := 0; ci < len(chunks); ci++ {
		chunk := chunks[ci]
		d, err := workload.Estimate(in, mo.App, chunk, vol, datasetKey)
		if err != nil {
			return nil, err
		}
		if err := mo.Cloud.Clock().Advance(d); err != nil {
			return nil, err
		}
		elapsed += d.Seconds()
		instElapsed += d.Seconds()
		// Checkpoint: compare observed chunk time against the model.
		predicted := mo.Model.Predict(float64(workload.TotalBytes(chunk)))
		behind := predicted > 0 && d.Seconds()/predicted > mo.SlowRatio
		lastChunk := ci == len(chunks)-1
		if !behind || mo.Policy == NeverReplace || lastChunk {
			continue
		}
		if mo.Policy == ReplaceAtHour {
			// Let the paid hour finish before switching (§7). The idle
			// remainder burns wall-clock but no extra billed hours.
			rem := time.Duration((3600 - mod3600(instElapsed)) * float64(time.Second))
			if err := mo.Cloud.Clock().Advance(rem); err != nil {
				return nil, err
			}
			elapsed += rem.Seconds()
			instElapsed += rem.Seconds()
		}
		report.BilledHours += billHours(instElapsed)
		if err := mo.Cloud.Detach(vol); err != nil {
			return nil, err
		}
		if err := mo.Cloud.Terminate(in); err != nil {
			return nil, err
		}
		in, err = mo.launch(report)
		if err != nil {
			return nil, err
		}
		boot := in.ReadyAt() - mo.Cloud.Clock().Now()
		if boot > 0 {
			elapsed += boot.Seconds()
		}
		if err := mo.Cloud.WaitUntilRunning(in); err != nil {
			return nil, err
		}
		if err := mo.Cloud.Attach(vol, in); err != nil {
			return nil, err
		}
		elapsed += cloudsim.VolumeAttachDelay.Seconds()
		instElapsed = 0
		report.Replacements++
	}
	report.BilledHours += billHours(instElapsed)
	report.ElapsedS = elapsed
	report.CostUSD = report.BilledHours * cloudsim.Small.HourlyRate
	return report, nil
}

// launch starts and readies one instance, recording its grade.
func (mo *Monitor) launch(report *TaskReport) (*cloudsim.Instance, error) {
	in, err := mo.Cloud.Launch(cloudsim.Small, mo.Zone)
	if err != nil {
		return nil, err
	}
	if err := mo.Cloud.WaitUntilRunning(in); err != nil {
		return nil, err
	}
	report.Grades = append(report.Grades, in.Quality.Grade())
	return in, nil
}

func splitChunks(items []workload.Item, n int) [][]workload.Item {
	if n > len(items) {
		n = len(items)
	}
	if n < 1 {
		n = 1
	}
	chunks := make([][]workload.Item, 0, n)
	per := (len(items) + n - 1) / n
	for start := 0; start < len(items); start += per {
		end := start + per
		if end > len(items) {
			end = len(items)
		}
		chunks = append(chunks, items[start:end])
	}
	return chunks
}

func billHours(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	h := seconds / 3600
	whole := float64(int(h))
	if h > whole {
		whole++
	}
	return whole
}

func mod3600(seconds float64) float64 {
	for seconds >= 3600 {
		seconds -= 3600
	}
	return seconds
}
