package sched

import (
	"testing"

	"repro/internal/workload"
)

func TestRunTaskResilientNoFailure(t *testing.T) {
	c := goodCloud(70)
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	rep, err := mo.RunTaskResilient(taskItems(20, 100_000_000), "us-east-1a", "backup-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ZoneFailovers != 0 {
		t.Errorf("failovers = %d on a healthy cloud", rep.ZoneFailovers)
	}
	if len(rep.Zones) != 1 || rep.Zones[0] != "us-east-1a" {
		t.Errorf("zones = %v", rep.Zones)
	}
	if rep.RestageSeconds <= 0 {
		t.Error("initial staging from S3 took no time")
	}
	if rep.BilledHours < 1 || rep.CostUSD <= 0 {
		t.Errorf("billing empty: %+v", rep.TaskReport)
	}
}

func TestRunTaskResilientSurvivesZoneOutage(t *testing.T) {
	c := goodCloud(71)
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	mo.Chunks = 4
	failed := false
	rep, err := mo.RunTaskResilient(taskItems(20, 100_000_000), "us-east-1a", "backup-b",
		func(chunk int) {
			if chunk == 2 && !failed {
				failed = true
				if err := c.FailZone("us-east-1a"); err != nil {
					t.Fatal(err)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ZoneFailovers != 1 {
		t.Fatalf("failovers = %d, want 1", rep.ZoneFailovers)
	}
	if len(rep.Zones) != 2 || rep.Zones[1] == "us-east-1a" {
		t.Errorf("zones = %v; recovery must move zones", rep.Zones)
	}
	// Recovery re-staged from S3 a second time.
	baseline, err := NewMonitor(goodCloud(71), workload.NewGrep(), grepModel(t), "us-east-1a").
		RunTaskResilient(taskItems(20, 100_000_000), "us-east-1a", "backup-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestageSeconds <= baseline.RestageSeconds {
		t.Error("failover did not pay a re-staging cost")
	}
	if rep.ElapsedS <= baseline.ElapsedS {
		t.Error("failover run not slower than the undisturbed run")
	}
}

func TestRunTaskResilientAllZonesDown(t *testing.T) {
	c := goodCloud(72)
	for _, z := range c.Region().Zones {
		if err := c.FailZone(z); err != nil {
			t.Fatal(err)
		}
	}
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	if _, err := mo.RunTaskResilient(taskItems(4, 1000), "us-east-1a", "backup-c", nil); err == nil {
		t.Error("expected error with every zone failed")
	}
}

func TestRunTaskResilientValidation(t *testing.T) {
	c := goodCloud(73)
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	mo.Chunks = 0
	if _, err := mo.RunTaskResilient(taskItems(1, 1), "us-east-1a", "k", nil); err == nil {
		t.Error("expected error for zero chunks")
	}
}

func TestMeanTimeToRecover(t *testing.T) {
	small := MeanTimeToRecover(1_000_000)
	big := MeanTimeToRecover(100_000_000_000)
	if big <= small {
		t.Error("larger volumes must take longer to recover")
	}
	if small <= 0 {
		t.Error("non-positive recovery time")
	}
}
