package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

func TestAnalyzeSwitchPaperExample(t *testing.T) {
	// §3.1: slow instance at 60 MB/s processes ≈210 GB/h (the paper rounds
	// 216 down); a fast replacement (≈75+ MB/s) with a 3-minute penalty
	// gains ≈57 GB; a slow replacement loses ≈10 GB.
	d, err := AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.StayGB-216) > 1 {
		t.Errorf("stay = %v GB, want ≈216 (paper rounds to 210)", d.StayGB)
	}
	gain := d.SwitchGB - d.StayGB
	if gain < 40 || gain > 70 {
		t.Errorf("switch gain = %v GB, want ≈57", gain)
	}
	loss := d.StayGB - d.SwitchSlowGB
	if loss < 5 || loss > 15 {
		t.Errorf("slow-replacement loss = %v GB, want ≈10", loss)
	}
	if !d.Recommend {
		t.Error("switch not recommended with certain fast replacement")
	}
}

func TestAnalyzeSwitchExpectedValue(t *testing.T) {
	// With a high enough fast probability the expected gain is positive;
	// with pFast = 0 it must be negative (pure downside).
	hi, err := AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !hi.Recommend {
		t.Error("80% fast probability should recommend switching")
	}
	lo, err := AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Recommend {
		t.Error("0% fast probability should not recommend switching")
	}
}

func TestAnalyzeSwitchValidation(t *testing.T) {
	if _, err := AnalyzeSwitch(0, 10, time.Minute, time.Hour, 0.5); err == nil {
		t.Error("expected error for zero slow speed")
	}
	if _, err := AnalyzeSwitch(10, 10, -time.Minute, time.Hour, 0.5); err == nil {
		t.Error("expected error for negative penalty")
	}
	if _, err := AnalyzeSwitch(10, 10, time.Minute, time.Hour, 1.5); err == nil {
		t.Error("expected error for pFast > 1")
	}
	// Penalty longer than horizon: switching yields zero work.
	d, err := AnalyzeSwitch(60, 78, 2*time.Hour, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.SwitchGB != 0 || d.Recommend {
		t.Errorf("over-long penalty: %+v", d)
	}
}

// grepModel builds a grep-like linear model at ≈57 MB/s effective rate.
func grepModel(t *testing.T) perfmodel.Model {
	t.Helper()
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0, 1e9 / 57e6})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// slowCloud returns a cloud whose quality lottery yields only slow
// instances, forcing replacements deterministically.
func slowCloud(seed int64) *cloudsim.Cloud {
	return cloudsim.NewInRegion(seed, cloudsim.USEast,
		cloudsim.QualityDist{SlowFraction: 1, UnstableFraction: 0})
}

// goodCloud yields only good instances.
func goodCloud(seed int64) *cloudsim.Cloud {
	return cloudsim.NewInRegion(seed, cloudsim.USEast,
		cloudsim.QualityDist{SlowFraction: 0, UnstableFraction: 0})
}

func taskItems(n int, size int64) []workload.Item {
	items := make([]workload.Item, n)
	for i := range items {
		items[i] = workload.NewItem(size)
	}
	return items
}

func TestMonitorNoReplacementOnGoodInstance(t *testing.T) {
	c := goodCloud(3)
	vol, err := c.CreateVolume("us-east-1a", 100)
	if err != nil {
		t.Fatal(err)
	}
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	rep, err := mo.RunTask(taskItems(40, 100_000_000), vol, "task-a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 0 {
		t.Errorf("replacements = %d, want 0 on a good instance", rep.Replacements)
	}
	if rep.ElapsedS <= 0 || rep.BilledHours < 1 || rep.CostUSD <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	if len(rep.Grades) != 1 || rep.Grades[0] != "good" {
		t.Errorf("grades = %v", rep.Grades)
	}
}

func TestMonitorReplacesSlowInstance(t *testing.T) {
	// All instances slow: the monitor detects and replaces (the new one is
	// slow too, but the mechanism is what is under test).
	c := slowCloud(4)
	vol, err := c.CreateVolume("us-east-1a", 100)
	if err != nil {
		t.Fatal(err)
	}
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	mo.SlowRatio = 1.2
	rep, err := mo.RunTask(taskItems(40, 100_000_000), vol, "task-b")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements == 0 {
		t.Error("no replacements on an all-slow cloud")
	}
	if len(rep.Grades) != rep.Replacements+1 {
		t.Errorf("grades %v inconsistent with %d replacements", rep.Grades, rep.Replacements)
	}
	// The volume survives all the churn, detached at most once at the end.
	if vol.AttachedTo() == nil {
		t.Error("volume should remain attached to the final instance")
	}
}

func TestMonitorNeverReplacePolicy(t *testing.T) {
	c := slowCloud(4)
	vol, _ := c.CreateVolume("us-east-1a", 100)
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	mo.Policy = NeverReplace
	mo.SlowRatio = 1.2
	rep, err := mo.RunTask(taskItems(20, 100_000_000), vol, "task-c")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replacements != 0 {
		t.Errorf("never-replace policy replaced %d times", rep.Replacements)
	}
}

func TestMonitorReplaceAtHourBillsNoPartialExtra(t *testing.T) {
	c := slowCloud(5)
	vol, _ := c.CreateVolume("us-east-1a", 100)
	now := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	now.SlowRatio = 1.2
	repNow, err := now.RunTask(taskItems(40, 100_000_000), vol, "task-d")
	if err != nil {
		t.Fatal(err)
	}

	c2 := slowCloud(5)
	vol2, _ := c2.CreateVolume("us-east-1a", 100)
	atHour := NewMonitor(c2, workload.NewGrep(), grepModel(t), "us-east-1a")
	atHour.SlowRatio = 1.2
	atHour.Policy = ReplaceAtHour
	repHour, err := atHour.RunTask(taskItems(40, 100_000_000), vol2, "task-d")
	if err != nil {
		t.Fatal(err)
	}
	// Replace-at-hour waits longer in wall clock...
	if repHour.Replacements > 0 && repHour.ElapsedS <= repNow.ElapsedS {
		t.Errorf("replace-at-hour elapsed %v not above replace-now %v", repHour.ElapsedS, repNow.ElapsedS)
	}
	// ...but never bills more hours than replace-now (it only consumes the
	// hours already paid for).
	if repHour.BilledHours > repNow.BilledHours {
		t.Errorf("replace-at-hour billed %v > replace-now %v", repHour.BilledHours, repNow.BilledHours)
	}
}

func TestMonitorValidation(t *testing.T) {
	c := goodCloud(1)
	vol, _ := c.CreateVolume("us-east-1a", 100)
	mo := NewMonitor(c, workload.NewGrep(), grepModel(t), "us-east-1a")
	mo.Chunks = 0
	if _, err := mo.RunTask(taskItems(1, 1), vol, "k"); err == nil {
		t.Error("expected error for zero chunks")
	}
	mo.Chunks = 2
	mo.SlowRatio = 1
	if _, err := mo.RunTask(taskItems(1, 1), vol, "k"); err == nil {
		t.Error("expected error for SlowRatio ≤ 1")
	}
}

func TestSplitChunks(t *testing.T) {
	items := taskItems(10, 1)
	chunks := splitChunks(items, 3)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	if total != 10 {
		t.Errorf("chunked items = %d, want 10", total)
	}
	if got := splitChunks(items, 100); len(got) != 10 {
		t.Errorf("over-chunking produced %d chunks", len(got))
	}
}

func TestBillHours(t *testing.T) {
	cases := []struct {
		s    float64
		want float64
	}{{0, 0}, {1, 1}, {3600, 1}, {3601, 2}, {7200, 2}}
	for _, c := range cases {
		if got := billHours(c.s); got != c.want {
			t.Errorf("billHours(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPlanSpotCheaperThanOnDemand(t *testing.T) {
	c := cloudsim.New(8)
	// Bid just above base: some hours active, charged below on-demand.
	out, err := PlanSpot(c, c.Spot().Base*1.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.CostUSD >= out.OnDemandUSD {
		t.Errorf("spot cost %v not below on-demand %v", out.CostUSD, out.OnDemandUSD)
	}
	if out.SpanHours < out.WorkHours {
		t.Errorf("span %v below work %v", out.SpanHours, out.WorkHours)
	}
	if out.ActiveHours < 10 {
		t.Errorf("active hours %d below work hours", out.ActiveHours)
	}
}

func TestPlanSpotHighBidRunsStraightThrough(t *testing.T) {
	c := cloudsim.New(8)
	out, err := PlanSpot(c, 10 /* above any price */, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interruptions != 0 {
		t.Errorf("interruptions = %d, want 0 at a top bid", out.Interruptions)
	}
	if math.Abs(out.SpanHours-5) > 1.01 {
		t.Errorf("span = %v, want ≈5", out.SpanHours)
	}
}

func TestPlanSpotLowBidInterrupted(t *testing.T) {
	c := cloudsim.New(8)
	// 20 work hours cannot fit in one cheap half-day window, so the job
	// must straddle at least one expensive stretch.
	out, err := PlanSpot(c, c.Spot().Base*0.95, 20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interruptions == 0 {
		t.Error("a below-base bid should be interrupted across the daily cycle")
	}
	if out.SpanHours <= out.WorkHours {
		t.Error("interrupted job should span longer than its work")
	}
}

func TestPlanSpotValidation(t *testing.T) {
	c := cloudsim.New(8)
	if _, err := PlanSpot(c, 1, 0); err == nil {
		t.Error("expected error for zero work")
	}
	if _, err := PlanSpot(c, 0.00001, 5); err == nil {
		t.Error("expected error for an unfillable bid")
	}
}
