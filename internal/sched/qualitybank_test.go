package sched

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
)

func baseModel(t *testing.T) perfmodel.Model {
	t.Helper()
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{0, 100}) // 1e-7 s/byte
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGradeTrackerPriorAndUpdates(t *testing.T) {
	tr := NewGradeTracker()
	// Prior alone: good is most likely.
	if tr.P("good") <= tr.P("slow") {
		t.Error("prior should favour good")
	}
	pSlowBefore := tr.P("slow")
	// A run of slow observations shifts the estimate up.
	for i := 0; i < 20; i++ {
		tr.ObserveGrade("slow")
	}
	if tr.P("slow") <= pSlowBefore {
		t.Error("slow probability did not increase with observations")
	}
	if tr.Observations() != 20 {
		t.Errorf("observations = %d", tr.Observations())
	}
	// Probabilities over the known grades stay normalised.
	total := tr.P("good") + tr.P("slow") + tr.P("unstable")
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", total)
	}
}

func TestGradeTrackerObserveInstance(t *testing.T) {
	c := cloudsim.New(3)
	tr := NewGradeTracker()
	for i := 0; i < 10; i++ {
		in, err := c.Launch(cloudsim.Small, "us-east-1a")
		if err != nil {
			t.Fatal(err)
		}
		tr.Observe(in)
	}
	if tr.Observations() != 10 {
		t.Errorf("observations = %d", tr.Observations())
	}
	if len(tr.Grades()) == 0 {
		t.Error("no grades recorded")
	}
}

func TestGradeTrackerConcurrent(t *testing.T) {
	tr := NewGradeTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.ObserveGrade("good")
				_ = tr.P("good")
			}
		}()
	}
	wg.Wait()
	if tr.Observations() != 800 {
		t.Errorf("observations = %d, want 800", tr.Observations())
	}
}

func TestModelBankFallback(t *testing.T) {
	bank := NewModelBank()
	if _, err := bank.For("slow"); err == nil {
		t.Error("expected error for empty bank")
	}
	base := baseModel(t)
	bank.Set("good", base)
	m, err := bank.For("slow")
	if err != nil || m != base {
		t.Errorf("fallback = %v, %v", m, err)
	}
}

func TestCalibrateBankScaling(t *testing.T) {
	base := baseModel(t)
	bank, err := CalibrateBank(base, map[string]float64{"slow": 0.5, "unstable": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	goodM, err := bank.For("good")
	if err != nil {
		t.Fatal(err)
	}
	slowM, err := bank.For("slow")
	if err != nil {
		t.Fatal(err)
	}
	// A half-speed grade predicts double time...
	if got := slowM.Predict(1e9) / goodM.Predict(1e9); math.Abs(got-2) > 1e-9 {
		t.Errorf("slow/good prediction ratio = %v, want 2", got)
	}
	// ...and half the volume per deadline.
	vGood, err := bank.VolumeForDeadline("good", 100)
	if err != nil {
		t.Fatal(err)
	}
	vSlow, err := bank.VolumeForDeadline("slow", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(vGood)/float64(vSlow)-2) > 0.01 {
		t.Errorf("volume ratio = %v, want 2", float64(vGood)/float64(vSlow))
	}
	// Invert must round-trip through the scaling.
	x, err := slowM.Invert(slowM.Predict(5e8))
	if err != nil || math.Abs(x-5e8) > 1 {
		t.Errorf("scaled invert = %v, %v", x, err)
	}
	if slowM.Name() == "" || slowM.(*scaledModel).String() == "" {
		t.Error("scaled model identity empty")
	}
	if slowM.R2() != base.R2() || slowM.Shape() != base.Shape() {
		t.Error("scaled model does not inherit R²/shape")
	}
}

func TestCalibrateBankValidation(t *testing.T) {
	if _, err := CalibrateBank(baseModel(t), map[string]float64{"slow": 0}); err == nil {
		t.Error("expected error for zero factor")
	}
}

func TestExpectedVolumeWeighting(t *testing.T) {
	base := baseModel(t)
	bank, err := CalibrateBank(base, map[string]float64{"slow": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewGradeTracker()
	grades := []string{"good", "slow"}

	// All-good observations: expected volume near the good volume.
	for i := 0; i < 100; i++ {
		tr.ObserveGrade("good")
	}
	vGood, _ := bank.VolumeForDeadline("good", 3600)
	expGood, err := bank.ExpectedVolume(tr, grades, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if expGood < 0.85*float64(vGood) {
		t.Errorf("expected volume %v too far below good volume %v", expGood, float64(vGood))
	}

	// Heavy slow observations pull it down.
	trSlow := NewGradeTracker()
	for i := 0; i < 100; i++ {
		trSlow.ObserveGrade("slow")
	}
	expSlow, err := bank.ExpectedVolume(trSlow, grades, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if expSlow >= expGood {
		t.Errorf("slow-history expectation %v not below good-history %v", expSlow, expGood)
	}
}

func TestExpectedVolumeNoGrades(t *testing.T) {
	bank := NewModelBank()
	bank.Set("good", baseModel(t))
	tr := NewGradeTracker()
	if _, err := bank.ExpectedVolume(tr, nil, 3600); err == nil {
		t.Error("expected error for empty grade list")
	}
}
