package sched

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
)

// Workflow scheduling with full-hour subdeadlines — the paper's §7
// direction ("We can schedule such workflows while making sure we assign
// full hour subdeadlines to groups of tasks", after Yu, Buyya & Tham).
//
// A Workflow is a chain of stages (e.g. extract → tokenize → tag), each a
// data volume processed under its own performance model. Because EC2 bills
// whole hours, the planner assigns each stage a subdeadline that is a
// multiple of one hour, so instances retire at hour boundaries and no paid
// fraction is wasted.

// Stage is one step of a processing chain.
type Stage struct {
	Name string
	// Model predicts the stage's single-instance execution time for a
	// volume in bytes.
	Model perfmodel.Model
	// VolumeBytes is the stage's total input volume.
	VolumeBytes int64
}

// StagePlan is the per-stage outcome.
type StagePlan struct {
	Stage Stage
	// SubdeadlineHours is the whole-hour budget assigned to the stage.
	SubdeadlineHours int
	// Instances provisioned for the stage.
	Instances int
	// PredictedS is the predicted per-instance time at the assigned load.
	PredictedS float64
	// InstanceHours billed by the stage.
	InstanceHours float64
}

// WorkflowPlan is the whole chain's schedule.
type WorkflowPlan struct {
	Stages []StagePlan
	// TotalHours is the end-to-end wall-clock in hours (stages are
	// sequential: each consumes the previous one's output).
	TotalHours int
	// InstanceHours and CostUSD aggregate billing.
	InstanceHours float64
	CostUSD       float64
}

// PlanWorkflow assigns whole-hour subdeadlines to a sequential workflow
// under a total deadline of deadlineHours, minimising instance-hours:
// each stage first gets one hour; remaining hours go to the stage whose
// instance count shrinks the most per added hour (greedy on marginal
// saving). Stage instance counts follow the paper's ⌈V/f⁻¹(D)⌉ rule.
func PlanWorkflow(stages []Stage, deadlineHours int, hourlyRate float64) (*WorkflowPlan, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("sched: empty workflow")
	}
	if deadlineHours < len(stages) {
		return nil, fmt.Errorf("sched: %d stages cannot fit whole-hour subdeadlines in %d hours", len(stages), deadlineHours)
	}
	if hourlyRate <= 0 {
		return nil, fmt.Errorf("sched: non-positive rate %v", hourlyRate)
	}
	for _, s := range stages {
		if s.Model == nil || s.VolumeBytes <= 0 {
			return nil, fmt.Errorf("sched: stage %q lacks model or volume", s.Name)
		}
	}
	hours := make([]int, len(stages))
	for i := range hours {
		hours[i] = 1
	}
	spare := deadlineHours - len(stages)
	instancesFor := func(i int, h int) (int, error) {
		x, err := stages[i].Model.Invert(float64(h) * 3600)
		if err != nil {
			return 0, err
		}
		if x < 1 {
			return 0, fmt.Errorf("sched: stage %q cannot process data in %d h", stages[i].Name, h)
		}
		return int(math.Ceil(float64(stages[i].VolumeBytes) / math.Floor(x))), nil
	}
	// Greedy: spend spare hours where they save the most instance-hours.
	for ; spare > 0; spare-- {
		bestStage := -1
		bestSaving := 0.0
		for i := range stages {
			cur, err := instancesFor(i, hours[i])
			if err != nil {
				return nil, err
			}
			next, err := instancesFor(i, hours[i]+1)
			if err != nil {
				return nil, err
			}
			saving := float64(cur*hours[i] - next*(hours[i]+1))
			if saving > bestSaving {
				bestSaving = saving
				bestStage = i
			}
		}
		if bestStage == -1 {
			break // no stage benefits from more time
		}
		hours[bestStage]++
	}

	plan := &WorkflowPlan{}
	for i, s := range stages {
		n, err := instancesFor(i, hours[i])
		if err != nil {
			return nil, err
		}
		perInstance := float64(s.VolumeBytes) / float64(n)
		sp := StagePlan{
			Stage:            s,
			SubdeadlineHours: hours[i],
			Instances:        n,
			PredictedS:       s.Model.Predict(perInstance),
			InstanceHours:    float64(n * hours[i]),
		}
		plan.Stages = append(plan.Stages, sp)
		plan.TotalHours += hours[i]
		plan.InstanceHours += sp.InstanceHours
	}
	plan.CostUSD = plan.InstanceHours * hourlyRate
	return plan, nil
}
