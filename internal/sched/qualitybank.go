package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cloudsim"
	"repro/internal/perfmodel"
)

// GradeTracker records the quality grades of acquired instances and
// estimates the probability that the next instance is of each grade — the
// §7 idea of "tracking the quality of newly acquired instances and
// including instance quality likelihood estimates when devising an
// execution plan". It is safe for concurrent use.
type GradeTracker struct {
	mu     sync.Mutex
	counts map[string]int
	total  int
	// prior smooths early estimates (Laplace, one pseudo-count per grade
	// seen in the prior map).
	prior map[string]int
}

// NewGradeTracker creates a tracker with the default prior reflecting the
// published quality mix (mostly good, a minority slow or unstable).
func NewGradeTracker() *GradeTracker {
	return &GradeTracker{
		counts: make(map[string]int),
		prior:  map[string]int{"good": 7, "slow": 2, "unstable": 1},
	}
}

// Observe records one acquired instance.
func (g *GradeTracker) Observe(in *cloudsim.Instance) {
	g.ObserveGrade(in.Quality.Grade())
}

// ObserveGrade records a grade directly.
func (g *GradeTracker) ObserveGrade(grade string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.counts[grade]++
	g.total++
}

// P returns the smoothed probability of drawing the given grade next.
func (g *GradeTracker) P(grade string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	priorTotal := 0
	for _, n := range g.prior {
		priorTotal += n
	}
	num := float64(g.counts[grade] + g.prior[grade])
	den := float64(g.total + priorTotal)
	if den == 0 {
		return 0
	}
	return num / den
}

// Observations returns the number of instances observed.
func (g *GradeTracker) Observations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Grades returns the observed grades in sorted order.
func (g *GradeTracker) Grades() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.counts))
	for grade := range g.counts {
		out = append(out, grade)
	}
	sort.Strings(out)
	return out
}

// ModelBank holds one performance model per instance grade — the §7 plan
// of using "different predictors for each instance quality level to decide
// how much data to send to meet the deadline".
type ModelBank struct {
	models map[string]perfmodel.Model
}

// NewModelBank creates an empty bank.
func NewModelBank() *ModelBank {
	return &ModelBank{models: make(map[string]perfmodel.Model)}
}

// Set installs the model for a grade.
func (b *ModelBank) Set(grade string, m perfmodel.Model) {
	b.models[grade] = m
}

// For returns the model for a grade, falling back to "good".
func (b *ModelBank) For(grade string) (perfmodel.Model, error) {
	if m, ok := b.models[grade]; ok {
		return m, nil
	}
	if m, ok := b.models["good"]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("sched: no model for grade %q and no good fallback", grade)
}

// VolumeForDeadline returns how much data to assign to an instance of the
// observed grade so it finishes by the deadline according to that grade's
// predictor.
func (b *ModelBank) VolumeForDeadline(grade string, deadlineSeconds float64) (int64, error) {
	m, err := b.For(grade)
	if err != nil {
		return 0, err
	}
	x, err := m.Invert(deadlineSeconds)
	if err != nil {
		return 0, err
	}
	if x < 0 {
		x = 0
	}
	return int64(x), nil
}

// ExpectedVolume returns the probability-weighted volume a freshly drawn
// instance can process by the deadline, under the tracker's grade
// likelihoods — the quantity a quality-aware planner provisions against.
func (b *ModelBank) ExpectedVolume(tr *GradeTracker, grades []string, deadlineSeconds float64) (float64, error) {
	var expected, pTotal float64
	for _, grade := range grades {
		p := tr.P(grade)
		if p == 0 {
			continue
		}
		v, err := b.VolumeForDeadline(grade, deadlineSeconds)
		if err != nil {
			return 0, err
		}
		expected += p * float64(v)
		pTotal += p
	}
	if pTotal == 0 {
		return 0, fmt.Errorf("sched: no grade has positive probability")
	}
	return expected / pTotal, nil
}

// CalibrateBank derives a per-grade bank from a baseline (good-instance)
// model and representative CPU factors per grade: a grade that runs at
// factor f of nominal speed gets a model predicting 1/f times the time.
// This is the cheap alternative to the paper's "lightweight tests" — reuse
// one calibration, scale by grade.
func CalibrateBank(baseline perfmodel.Model, cpuFactors map[string]float64) (*ModelBank, error) {
	bank := NewModelBank()
	for grade, f := range cpuFactors {
		if f <= 0 {
			return nil, fmt.Errorf("sched: non-positive CPU factor %v for grade %q", f, grade)
		}
		bank.Set(grade, &scaledModel{base: baseline, factor: 1 / f})
	}
	if _, ok := cpuFactors["good"]; !ok {
		bank.Set("good", baseline)
	}
	return bank, nil
}

// scaledModel multiplies a base model's predictions by a constant factor.
type scaledModel struct {
	base   perfmodel.Model
	factor float64
}

// Name implements perfmodel.Model.
func (m *scaledModel) Name() string { return m.base.Name() + "-scaled" }

// Predict implements perfmodel.Model.
func (m *scaledModel) Predict(x float64) float64 { return m.base.Predict(x) * m.factor }

// Invert implements perfmodel.Model.
func (m *scaledModel) Invert(y float64) (float64, error) { return m.base.Invert(y / m.factor) }

// R2 implements perfmodel.Model.
func (m *scaledModel) R2() float64 { return m.base.R2() }

// Shape implements perfmodel.Model.
func (m *scaledModel) Shape() perfmodel.Shape { return m.base.Shape() }

func (m *scaledModel) String() string {
	return fmt.Sprintf("%v (x%.2f)", m.base, m.factor)
}
