package sched

import (
	"fmt"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/workload"
)

// Zone-resilient execution. The paper keeps inputs on EBS volumes, whose
// persistence makes instance replacement free of data movement (§7) — but
// an EBS volume lives in one availability zone, so a zone outage takes the
// volume with it. The resilient runner keeps a backup of the input in S3
// (region-scoped, zone-independent, §1.1) and recovers from a zone failure
// by re-staging onto a fresh volume in a healthy zone.

// ResilientReport describes a zone-failover task execution.
type ResilientReport struct {
	TaskReport
	// ZoneFailovers counts recoveries from zone outages.
	ZoneFailovers int
	// Zones lists the zones used, in order.
	Zones []string
	// RestageSeconds is the total time spent re-staging data from S3.
	RestageSeconds float64
}

// RunTaskResilient executes items chunk by chunk on an instance in the
// preferred zone, with the input backed up under s3Key. After each chunk it
// invokes OnCheckpoint (tests inject failures there) and inspects the
// instance: if its zone has failed, it recovers — healthy zone, new
// volume, re-stage from S3, new instance — and resumes from the next
// unprocessed chunk. Slow-instance replacement (the Monitor's policy)
// still applies within a zone.
func (mo *Monitor) RunTaskResilient(items []workload.Item, preferredZone, s3Key string, onCheckpoint func(chunk int)) (*ResilientReport, error) {
	if mo.Chunks < 1 {
		return nil, fmt.Errorf("sched: Chunks must be ≥ 1, got %d", mo.Chunks)
	}
	totalBytes := workload.TotalBytes(items)
	s3 := mo.Cloud.S3()
	if err := s3.Put(s3Key, minInt64(totalBytes, cloudsim.MaxObjectBytes)); err != nil {
		return nil, fmt.Errorf("sched: backing up input: %w", err)
	}
	report := &ResilientReport{}
	zone := preferredZone

	setup := func() (*cloudsim.Instance, *cloudsim.Volume, error) {
		if mo.Cloud.ZoneFailed(zone) {
			healthy := mo.Cloud.HealthyZones()
			if len(healthy) == 0 {
				return nil, nil, fmt.Errorf("sched: no healthy zones remain")
			}
			zone = healthy[0]
		}
		in, err := mo.Cloud.Launch(cloudsim.Small, zone)
		if err != nil {
			return nil, nil, err
		}
		if err := mo.Cloud.WaitUntilRunning(in); err != nil {
			return nil, nil, err
		}
		report.Grades = append(report.Grades, in.Quality.Grade())
		report.Zones = append(report.Zones, zone)
		sizeGB := int(totalBytes/1_000_000_000) + 1
		vol, err := mo.Cloud.CreateVolume(zone, sizeGB)
		if err != nil {
			return nil, nil, err
		}
		if err := mo.Cloud.Attach(vol, in); err != nil {
			return nil, nil, err
		}
		// Re-stage the input from S3 onto the fresh volume.
		fetch, err := s3.FetchTime(s3Key)
		if err != nil {
			return nil, nil, err
		}
		if err := mo.Cloud.Clock().Advance(fetch); err != nil {
			return nil, nil, err
		}
		report.RestageSeconds += fetch.Seconds()
		report.ElapsedS += fetch.Seconds()
		return in, vol, nil
	}

	in, vol, err := setup()
	if err != nil {
		return nil, err
	}
	var instElapsed float64
	chunks := splitChunks(items, mo.Chunks)
	for ci := 0; ci < len(chunks); {
		d, err := workload.Estimate(in, mo.App, chunks[ci], vol, s3Key)
		if err != nil {
			return nil, err
		}
		if err := mo.Cloud.Clock().Advance(d); err != nil {
			return nil, err
		}
		report.ElapsedS += d.Seconds()
		instElapsed += d.Seconds()
		ci++
		if onCheckpoint != nil {
			onCheckpoint(ci)
		}
		if ci >= len(chunks) {
			break
		}
		// Outage check: the zone may have died under us. Completed chunks
		// stand — grep/tagging results stream back to the caller rather
		// than living on the dead volume — so recovery resumes at the next
		// unprocessed chunk.
		if in.State() != cloudsim.Running {
			report.BilledHours += billHours(instElapsed)
			instElapsed = 0
			report.ZoneFailovers++
			in, vol, err = setup()
			if err != nil {
				return nil, err
			}
		}
	}
	report.BilledHours += billHours(instElapsed)
	report.CostUSD = report.BilledHours * cloudsim.Small.HourlyRate
	return report, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MeanTimeToRecover estimates the wall-clock cost of one zone failover:
// boot (midpoint), volume create + attach, and the S3 re-stage of the
// given volume at nominal bandwidth.
func MeanTimeToRecover(bytes int64) time.Duration {
	boot := (cloudsim.MinBootDelay + cloudsim.MaxBootDelay) / 2
	stage := cloudsim.EstimateTransfer(bytes, 40)
	return boot + cloudsim.VolumeAttachDelay + stage
}
