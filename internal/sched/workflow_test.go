package sched

import (
	"testing"

	"repro/internal/perfmodel"
)

// wfModel builds an affine model with the given slope (s/byte) and
// intercept (s of per-instance setup — what makes longer subdeadlines
// cheaper: fewer instances amortise the setup). With a zero intercept the
// linear model is hour-indifferent, the paper's Fig. 2 "linear" case.
func wfModel(t *testing.T, slope, intercept float64) perfmodel.Model {
	t.Helper()
	m, err := perfmodel.FitAffine([]float64{0, 1e9}, []float64{intercept, intercept + slope*1e9})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// textChain is a 3-stage extract → tokenize → tag workflow over 1 GB:
// extraction is fast (I/O-ish), tokenisation medium, tagging slow with a
// heavy model-load setup.
func textChain(t *testing.T) []Stage {
	t.Helper()
	return []Stage{
		{Name: "extract", Model: wfModel(t, 2e-8, 60), VolumeBytes: 1_000_000_000},
		{Name: "tokenize", Model: wfModel(t, 5e-7, 120), VolumeBytes: 1_000_000_000},
		{Name: "tag", Model: wfModel(t, 8.65e-5, 600), VolumeBytes: 1_000_000_000},
	}
}

func TestPlanWorkflowWholeHourSubdeadlines(t *testing.T) {
	plan, err := PlanWorkflow(textChain(t), 6, 0.085)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 3 {
		t.Fatalf("stages = %d", len(plan.Stages))
	}
	total := 0
	for _, sp := range plan.Stages {
		if sp.SubdeadlineHours < 1 {
			t.Errorf("stage %s got %d hours", sp.Stage.Name, sp.SubdeadlineHours)
		}
		total += sp.SubdeadlineHours
		// The predicted per-instance time must fit the subdeadline.
		if sp.PredictedS > float64(sp.SubdeadlineHours)*3600 {
			t.Errorf("stage %s predicted %v > subdeadline %d h", sp.Stage.Name, sp.PredictedS, sp.SubdeadlineHours)
		}
	}
	if total != plan.TotalHours || total > 6 {
		t.Errorf("subdeadlines sum to %d, plan says %d (budget 6)", total, plan.TotalHours)
	}
	if plan.CostUSD <= 0 || plan.InstanceHours <= 0 {
		t.Errorf("plan billing empty: %+v", plan)
	}
}

func TestPlanWorkflowSpareHoursGoToExpensiveStage(t *testing.T) {
	plan, err := PlanWorkflow(textChain(t), 8, 0.085)
	if err != nil {
		t.Fatal(err)
	}
	var tagHours, extractHours int
	for _, sp := range plan.Stages {
		switch sp.Stage.Name {
		case "tag":
			tagHours = sp.SubdeadlineHours
		case "extract":
			extractHours = sp.SubdeadlineHours
		}
	}
	// The tagging stage dominates cost; spare hours must land there.
	if tagHours <= extractHours {
		t.Errorf("tag got %d hours, extract %d; spare time misallocated", tagHours, extractHours)
	}
}

func TestPlanWorkflowMoreTimeNeverCostsMore(t *testing.T) {
	tight, err := PlanWorkflow(textChain(t), 4, 0.085)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := PlanWorkflow(textChain(t), 12, 0.085)
	if err != nil {
		t.Fatal(err)
	}
	if loose.InstanceHours > tight.InstanceHours {
		t.Errorf("looser deadline costs more: %v > %v instance-hours", loose.InstanceHours, tight.InstanceHours)
	}
	if loose.TotalHours > 12 || tight.TotalHours > 4 {
		t.Error("deadline budgets exceeded")
	}
}

func TestPlanWorkflowValidation(t *testing.T) {
	if _, err := PlanWorkflow(nil, 4, 0.085); err == nil {
		t.Error("expected error for empty workflow")
	}
	if _, err := PlanWorkflow(textChain(t), 2, 0.085); err == nil {
		t.Error("expected error when stages outnumber hours")
	}
	if _, err := PlanWorkflow(textChain(t), 6, 0); err == nil {
		t.Error("expected error for zero rate")
	}
	broken := []Stage{{Name: "x", Model: nil, VolumeBytes: 1}}
	if _, err := PlanWorkflow(broken, 2, 0.085); err == nil {
		t.Error("expected error for nil model")
	}
}

func TestPlanWorkflowSingleStage(t *testing.T) {
	stages := []Stage{{Name: "only", Model: wfModel(t, 8.65e-5, 600), VolumeBytes: 500_000_000}}
	plan, err := PlanWorkflow(stages, 3, 0.085)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalHours > 3 {
		t.Errorf("total hours = %d", plan.TotalHours)
	}
	// 500 MB at 86.5 µs/byte = 43,250 s ≈ 12 instance-hours minimum.
	if plan.InstanceHours < 12 {
		t.Errorf("instance-hours = %v, want ≥ 12", plan.InstanceHours)
	}
}
