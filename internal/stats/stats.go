// Package stats provides the small statistical toolkit the reproduction
// needs: descriptive summaries, least-squares regression (plain, through the
// origin, weighted and log-space), residual analysis and normal-distribution
// quantiles used for the paper's deadline-adjustment rule.
//
// Everything is dependency-free and deterministic. The regression helpers
// deliberately mirror the fitting procedures of §4-§5 of the paper rather
// than offering a general statistics library.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer points
// than it mathematically requires.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes descriptive statistics for xs. It returns a zero
// Summary when xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CV returns the coefficient of variation (stddev/mean). It reports +Inf for
// a zero mean with nonzero spread and 0 for a degenerate sample.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		if s.StdDev == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return s.StdDev / math.Abs(s.Mean)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 if len < 2).
func StdDev(xs []float64) float64 {
	return Summarize(xs).StdDev
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile p=%v out of [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }
