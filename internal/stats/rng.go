package stats

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// SeedFor derives a deterministic sub-seed from a root seed and a component
// name, so independent subsystems (corpus sampling, instance quality, EBS
// placement, measurement noise) get decorrelated but reproducible streams.
func SeedFor(root int64, name string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(root >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// NewRand returns a rand.Rand seeded from (root, name) via SeedFor.
func NewRand(root int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(root, name)))
}

// LogNormal draws from a log-normal distribution with the given parameters
// of the underlying normal (mu, sigma in log space).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bounded draws from sample() until the result falls in [lo, hi], clamping
// after maxTries attempts. It lets size samplers honour hard caps (e.g. the
// 705 kB maximum of the Text_400K set) without distorting the body of the
// distribution.
func Bounded(sample func() float64, lo, hi float64, maxTries int) float64 {
	for i := 0; i < maxTries; i++ {
		v := sample()
		if v >= lo && v <= hi {
			return v
		}
	}
	v := sample()
	return math.Min(math.Max(v, lo), hi)
}
