package stats

import (
	"fmt"
	"math"
	"sort"
)

// Kolmogorov-Smirnov normality check. The paper's deadline adjustment
// (§5.2) rests on the assumption that "the relative residuals ... are
// normally distributed"; this test lets callers verify rather than assume.

// KSResult is the outcome of a one-sample KS test against a normal
// distribution with the sample's own mean and standard deviation
// (Lilliefors-style; the critical values account for the estimated
// parameters approximately).
type KSResult struct {
	// D is the KS statistic: the maximal distance between the empirical
	// CDF and the fitted normal CDF.
	D float64
	// Critical is the rejection threshold at the requested level.
	Critical float64
	// N is the sample size.
	N int
	// Normal is true when D ≤ Critical: normality is not rejected.
	Normal bool
}

func (r KSResult) String() string {
	verdict := "normality not rejected"
	if !r.Normal {
		verdict = "normality REJECTED"
	}
	return fmt.Sprintf("KS D=%.4f (crit %.4f, n=%d): %s", r.D, r.Critical, r.N, verdict)
}

// lilliefors05 approximates the Lilliefors critical value near the 5%
// level for sample size n. The constant is deliberately on the
// conservative (slightly larger) side of the published 0.886/√n
// asymptotic: this check is a sanity flag on the §5.2 assumption, and a
// false rejection would needlessly alarm.
func lilliefors05(n int) float64 {
	fn := float64(n)
	return 0.95 / (math.Sqrt(fn) - 0.01 + 0.85/math.Sqrt(fn))
}

// KSNormal tests whether xs is plausibly normal at the 5% level. It
// requires at least 5 observations and non-zero spread.
func KSNormal(xs []float64) (KSResult, error) {
	if len(xs) < 5 {
		return KSResult{}, fmt.Errorf("stats: KS test needs ≥ 5 samples, got %d", len(xs))
	}
	s := Summarize(xs)
	if s.StdDev == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs non-degenerate sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		z := (x - s.Mean) / s.StdDev
		f := NormalCDF(z)
		// Both one-sided gaps around the step of the empirical CDF.
		upper := float64(i+1)/n - f
		lower := f - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	crit := lilliefors05(len(sorted))
	return KSResult{D: d, Critical: crit, N: len(sorted), Normal: d <= crit}, nil
}
