package stats

import (
	"fmt"
	"strings"
)

// Histogram accumulates counts of values into fixed-width bins, matching the
// frequency-distribution plots of Fig. 1 (10 kB bins for the HTML set, 1 kB
// bins for the text set). Values below zero are rejected; values at or above
// the cap are accumulated into an overflow count so long tails stay visible.
type Histogram struct {
	binWidth int64
	cap      int64 // values ≥ cap land in Overflow
	counts   []int64
	overflow int64
	total    int64
	sum      int64
}

// NewHistogram creates a histogram with the given bin width covering
// [0, cap). Both must be positive and cap must be a multiple of binWidth.
func NewHistogram(binWidth, cap int64) (*Histogram, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("stats: bin width must be positive, got %d", binWidth)
	}
	if cap <= 0 || cap%binWidth != 0 {
		return nil, fmt.Errorf("stats: cap %d must be a positive multiple of bin width %d", cap, binWidth)
	}
	return &Histogram{
		binWidth: binWidth,
		cap:      cap,
		counts:   make([]int64, cap/binWidth),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(v int64) error {
	if v < 0 {
		return fmt.Errorf("stats: histogram value must be non-negative, got %d", v)
	}
	h.total++
	h.sum += v
	if v >= h.cap {
		h.overflow++
		return nil
	}
	h.counts[v/h.binWidth]++
	return nil
}

// Bins returns a copy of the per-bin counts; bin i covers
// [i·binWidth, (i+1)·binWidth).
func (h *Histogram) Bins() []int64 { return append([]int64(nil), h.counts...) }

// BinWidth returns the configured bin width.
func (h *Histogram) BinWidth() int64 { return h.binWidth }

// Overflow returns the count of observations at or beyond the cap.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the sum of all recorded observations (total data volume when
// observations are file sizes).
func (h *Histogram) Sum() int64 { return h.sum }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// NumBins returns the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// ModeBin returns the index of the fullest bin (the lowest index on ties).
func (h *Histogram) ModeBin() int {
	best := 0
	for i, c := range h.counts {
		if c > h.counts[best] {
			best = i
		}
	}
	return best
}

// FractionBelow returns the fraction of observations strictly below limit,
// counting whole bins only (limit should be a multiple of the bin width for
// an exact answer).
func (h *Histogram) FractionBelow(limit int64) float64 {
	if h.total == 0 {
		return 0
	}
	var below int64
	for i, c := range h.counts {
		if int64(i+1)*h.binWidth <= limit {
			below += c
		}
	}
	return float64(below) / float64(h.total)
}

// Render draws a textual bar chart of the first maxBins bins, the form the
// experiment harness uses to print Fig. 1.
func (h *Histogram) Render(maxBins, barWidth int) string {
	if maxBins <= 0 || maxBins > len(h.counts) {
		maxBins = len(h.counts)
	}
	var peak int64 = 1
	for i := 0; i < maxBins; i++ {
		if h.counts[i] > peak {
			peak = h.counts[i]
		}
	}
	var b strings.Builder
	for i := 0; i < maxBins; i++ {
		n := int(h.counts[i] * int64(barWidth) / peak)
		fmt.Fprintf(&b, "%8d-%-8d %8d %s\n",
			int64(i)*h.binWidth, int64(i+1)*h.binWidth, h.counts[i], strings.Repeat("#", n))
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "%8d+%9s %8d (tail)\n", h.cap, "", h.overflow)
	}
	return b.String()
}
