package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.StdDev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev with n-1 denominator: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Errorf("min/max/sum wrong: %+v", s)
	}
}

func TestSummarizeNegativeValues(t *testing.T) {
	s := Summarize([]float64{-3, -1, -2})
	if s.Mean != -2 || s.Min != -3 || s.Max != -1 {
		t.Fatalf("negative summary wrong: %+v", s)
	}
}

func TestCV(t *testing.T) {
	if cv := (Summary{Mean: 10, StdDev: 2}).CV(); !almostEqual(cv, 0.2, 1e-12) {
		t.Errorf("CV = %v, want 0.2", cv)
	}
	if cv := (Summary{Mean: -10, StdDev: 2}).CV(); !almostEqual(cv, 0.2, 1e-12) {
		t.Errorf("CV with negative mean = %v, want 0.2", cv)
	}
	if cv := (Summary{Mean: 0, StdDev: 1}).CV(); !math.IsInf(cv, 1) {
		t.Errorf("CV with zero mean = %v, want +Inf", cv)
	}
	if cv := (Summary{}).CV(); cv != 0 {
		t.Errorf("CV of zero summary = %v, want 0", cv)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	med, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	if med != 2.5 {
		t.Errorf("median = %v, want 2.5", med)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 4 {
		t.Errorf("q0=%v q1=%v, want 1 and 4", q0, q1)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty quantile")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for out-of-range p")
	}
}

func TestQuantileSingle(t *testing.T) {
	q, err := Quantile([]float64{7}, 0.9)
	if err != nil || q != 7 {
		t.Fatalf("quantile of singleton = %v, %v", q, err)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanQuantileProperty(t *testing.T) {
	// Property: min ≤ every quantile ≤ max, and quantiles are monotone in p.
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa := float64(p1%101) / 100
		pb := float64(p2%101) / 100
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, err1 := Quantile(xs, pa)
		qb, err2 := Quantile(xs, pb)
		if err1 != nil || err2 != nil {
			return false
		}
		s := Summarize(xs)
		return qa >= s.Min && qb <= s.Max && qa <= qb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2, intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
	x, err := fit.Invert(21)
	if err != nil || !almostEqual(x, 10, 1e-12) {
		t.Errorf("invert(21) = %v, %v; want 10", x, err)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("expected error for constant x")
	}
	if _, err := (LinearFit{Slope: 0}).Invert(1); err == nil {
		t.Error("expected error inverting zero slope")
	}
}

func TestFitLinearWeightedPullsTowardHeavyPoints(t *testing.T) {
	// Two clusters; weighting the second cluster heavily must move the fit
	// toward it.
	xs := []float64{1, 2, 10, 11}
	ys := []float64{10, 10, 1, 1}
	uniform, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := FitLinearWeighted(xs, ys, []float64{1, 1, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	errU := math.Abs(uniform.Predict(10.5) - 1)
	errW := math.Abs(weighted.Predict(10.5) - 1)
	if errW >= errU {
		t.Errorf("weighted fit no better near heavy cluster: %v vs %v", errW, errU)
	}
}

func TestFitLinearWeightedErrors(t *testing.T) {
	if _, err := FitLinearWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for weight length mismatch")
	}
	if _, err := FitLinearWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestFitThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	fit, err := FitThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || fit.Intercept != 0 {
		t.Errorf("fit = %+v, want slope 2 through origin", fit)
	}
	if _, err := FitThroughOrigin(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FitThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected error for all-zero x")
	}
}

func TestFitQuadraticOriginExact(t *testing.T) {
	// y = 3x² - 2x
	xs := []float64{1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x*x - 2*x
	}
	fit, err := FitQuadraticOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.A, 3, 1e-9) || !almostEqual(fit.B, -2, 1e-9) {
		t.Errorf("fit = %+v, want A=3 B=-2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
}

func TestFitQuadraticOriginErrors(t *testing.T) {
	if _, err := FitQuadraticOrigin([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitQuadraticOrigin([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestFitLinearRecoversNoisyLine(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 5+0.3*x+r.NormFloat64()*0.5)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.3, 0.02) || !almostEqual(fit.Intercept, 5, 0.5) {
		t.Errorf("noisy fit off: %+v", fit)
	}
	if fit.R2 < 0.97 {
		t.Errorf("R² = %v, want > 0.97", fit.R2)
	}
}

func TestResiduals(t *testing.T) {
	xs := []float64{1, 2}
	ys := []float64{3, 7}
	pred := func(x float64) float64 { return 2 * x }
	res := Residuals(xs, ys, pred)
	if res[0] != 1 || res[1] != 3 {
		t.Errorf("residuals = %v, want [1 3]", res)
	}
	rel := RelativeResiduals(xs, ys, pred)
	if !almostEqual(rel[0], 0.5, 1e-12) || !almostEqual(rel[1], 0.75, 1e-12) {
		t.Errorf("relative residuals = %v", rel)
	}
}

func TestRelativeResidualsSkipsZeroPrediction(t *testing.T) {
	rel := RelativeResiduals([]float64{0, 1}, []float64{5, 4}, func(x float64) float64 { return x })
	if len(rel) != 1 || rel[0] != 3 {
		t.Errorf("rel = %v, want [3]", rel)
	}
}

func TestLogSpace(t *testing.T) {
	out, err := LogSpace([]float64{1, math.E})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 0, 1e-12) || !almostEqual(out[1], 1, 1e-12) {
		t.Errorf("log space = %v", out)
	}
	if _, err := LogSpace([]float64{1, 0}); err == nil {
		t.Error("expected error for zero value")
	}
	if _, err := LogSpace([]float64{-1}); err == nil {
		t.Error("expected error for negative value")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.9, 1.2815515655446004},
		{0.95, 1.6448536269514722},
		{0.975, 1.959963984540054},
		{0.1, -1.2815515655446004},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		z, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(z, c.z, 1e-8) {
			t.Errorf("quantile(%v) = %v, want %v", c.p, z, c.z)
		}
	}
	if _, err := NormalQuantile(0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := NormalQuantile(1); err == nil {
		t.Error("expected error for p=1")
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	for p := 0.01; p < 1; p += 0.01 {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := NormalCDF(z); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(quantile(%v)) = %v", p, got)
		}
	}
}

func TestDeadlineInflationMatchesPaper(t *testing.T) {
	// The paper reports z = 1.29 for a 10% miss probability; our quantile is
	// the exact 1.2816. With μ=0, σ=1 the inflation must be ≈ z.
	rel := []float64{-1, 1} // mean 0, sample stddev sqrt(2)
	a, err := DeadlineInflation(rel, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.2815515655446004 * math.Sqrt2
	if !almostEqual(a, want, 1e-9) {
		t.Errorf("inflation = %v, want %v", a, want)
	}
}

func TestDeadlineInflationErrors(t *testing.T) {
	if _, err := DeadlineInflation([]float64{1}, 0.1); err == nil {
		t.Error("expected error for single residual")
	}
	if _, err := DeadlineInflation([]float64{1, 2}, 0); err == nil {
		t.Error("expected error for missProb=0")
	}
	if _, err := DeadlineInflation([]float64{1, 2}, 1); err == nil {
		t.Error("expected error for missProb=1")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 5, 9, 10, 95, 99, 100, 250} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if h.Count(0) != 3 {
		t.Errorf("bin 0 = %d, want 3", h.Count(0))
	}
	if h.Count(1) != 1 {
		t.Errorf("bin 1 = %d, want 1", h.Count(1))
	}
	if h.Count(9) != 2 {
		t.Errorf("bin 9 = %d, want 2", h.Count(9))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.ModeBin() != 0 {
		t.Errorf("mode bin = %d, want 0", h.ModeBin())
	}
	if h.Sum() != 0+5+9+10+95+99+100+250 {
		t.Errorf("sum = %d", h.Sum())
	}
	if err := h.Add(-1); err == nil {
		t.Error("expected error for negative value")
	}
}

func TestHistogramConstructionErrors(t *testing.T) {
	if _, err := NewHistogram(0, 100); err == nil {
		t.Error("expected error for zero bin width")
	}
	if _, err := NewHistogram(10, 105); err == nil {
		t.Error("expected error for non-multiple cap")
	}
	if _, err := NewHistogram(10, 0); err == nil {
		t.Error("expected error for zero cap")
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h, _ := NewHistogram(10, 100)
	for i := int64(0); i < 100; i += 10 {
		_ = h.Add(i)
	}
	if f := h.FractionBelow(50); !almostEqual(f, 0.5, 1e-12) {
		t.Errorf("fraction below 50 = %v, want 0.5", f)
	}
	if f := h.FractionBelow(100); !almostEqual(f, 1, 1e-12) {
		t.Errorf("fraction below 100 = %v, want 1", f)
	}
	empty, _ := NewHistogram(10, 100)
	if f := empty.FractionBelow(50); f != 0 {
		t.Errorf("empty fraction = %v, want 0", f)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(10, 30)
	_ = h.Add(5)
	_ = h.Add(5)
	_ = h.Add(15)
	_ = h.Add(99)
	out := h.Render(0, 20)
	if out == "" {
		t.Fatal("empty render")
	}
	if got := h.Render(2, 20); len(got) >= len(out) {
		t.Error("maxBins did not truncate output")
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	a := SeedFor(1, "corpus")
	b := SeedFor(1, "corpus")
	c := SeedFor(1, "instances")
	d := SeedFor(2, "corpus")
	if a != b {
		t.Error("SeedFor not deterministic")
	}
	if a == c || a == d {
		t.Error("SeedFor collisions across names/roots")
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(42, "lognormal-test")
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, LogNormal(r, math.Log(100), 0.5))
	}
	med, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	if med < 90 || med > 110 {
		t.Errorf("lognormal median = %v, want ≈100", med)
	}
}

func TestBounded(t *testing.T) {
	r := NewRand(42, "bounded-test")
	for i := 0; i < 1000; i++ {
		v := Bounded(func() float64 { return LogNormal(r, 5, 2) }, 10, 1000, 50)
		if v < 10 || v > 1000 {
			t.Fatalf("bounded sample %v out of range", v)
		}
	}
	// A sampler that never lands in range must clamp.
	v := Bounded(func() float64 { return 5000 }, 10, 1000, 3)
	if v != 1000 {
		t.Errorf("clamp high = %v, want 1000", v)
	}
	v = Bounded(func() float64 { return -5 }, 10, 1000, 3)
	if v != 10 {
		t.Errorf("clamp low = %v, want 10", v)
	}
}

func TestMeanAndStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
}
