package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least-squares straight-line fit
// y ≈ Intercept + Slope·x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Invert solves Intercept + Slope·x = y for x. It returns an error for a
// zero slope.
func (f LinearFit) Invert(y float64) (float64, error) {
	if f.Slope == 0 {
		return 0, fmt.Errorf("stats: cannot invert fit with zero slope")
	}
	return (y - f.Intercept) / f.Slope, nil
}

func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.6g + %.6g*x (R²=%.4f, n=%d)", f.Intercept, f.Slope, f.R2, f.N)
}

// FitLinear computes the ordinary least-squares line through (xs, ys).
// It requires at least two points with distinct x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	return FitLinearWeighted(xs, ys, nil)
}

// FitLinearWeighted computes a weighted least-squares line. A nil ws means
// uniform weights; otherwise len(ws) must equal len(xs) and every weight must
// be positive. Weighted fitting implements the paper's §7 extension of
// demanding closer fits in the large-volume range.
func FitLinearWeighted(xs, ys, ws []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	if ws != nil && len(ws) != len(xs) {
		return LinearFit{}, fmt.Errorf("stats: len(ws)=%d != len(xs)=%d", len(ws), len(xs))
	}
	var sw, sx, sy, sxx, sxy float64
	for i := range xs {
		w := 1.0
		if ws != nil {
			w = ws[i]
			if w <= 0 {
				return LinearFit{}, fmt.Errorf("stats: non-positive weight %v at index %d", w, i)
			}
		}
		sw += w
		sx += w * xs[i]
		sy += w * ys[i]
		sxx += w * xs[i] * xs[i]
		sxy += w * xs[i] * ys[i]
	}
	det := sw*sxx - sx*sx
	// Guard against exactly and *nearly* singular designs: with all x
	// equal, floating-point residue can leave det tiny but nonzero, and
	// the resulting slope is garbage.
	if det == 0 || math.Abs(det) < 1e-12*math.Abs(sw*sxx) {
		return LinearFit{}, fmt.Errorf("stats: degenerate design (all x identical)")
	}
	slope := (sw*sxy - sx*sy) / det
	intercept := (sy - slope*sx) / sw
	fit := LinearFit{Slope: slope, Intercept: intercept, N: len(xs)}
	fit.R2 = rSquared(ys, func(i int) float64 { return fit.Predict(xs[i]) })
	return fit, nil
}

// FitThroughOrigin fits y ≈ Slope·x with zero intercept, the paper's y = ax
// linear family.
func FitThroughOrigin(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate design (all x zero)")
	}
	fit := LinearFit{Slope: sxy / sxx, N: len(xs)}
	fit.R2 = rSquared(ys, func(i int) float64 { return fit.Predict(xs[i]) })
	return fit, nil
}

// QuadraticOriginFit is the result of fitting y ≈ A·x² + B·x (no constant
// term), the log-space form the paper uses for y = x^(a·ln x + b).
type QuadraticOriginFit struct {
	A, B float64
	R2   float64
	N    int
}

// Predict evaluates the fitted quadratic at x.
func (f QuadraticOriginFit) Predict(x float64) float64 { return f.A*x*x + f.B*x }

// FitQuadraticOrigin solves the 2×2 normal equations for y ≈ A·x² + B·x.
func FitQuadraticOrigin(xs, ys []float64) (QuadraticOriginFit, error) {
	if len(xs) != len(ys) {
		return QuadraticOriginFit{}, fmt.Errorf("stats: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return QuadraticOriginFit{}, ErrInsufficientData
	}
	// Normal equations for basis {x², x}:
	//   [Σx⁴ Σx³] [A]   [Σx²y]
	//   [Σx³ Σx²] [B] = [Σxy ]
	var s4, s3, s2, s2y, s1y float64
	for i := range xs {
		x := xs[i]
		x2 := x * x
		s4 += x2 * x2
		s3 += x2 * x
		s2 += x2
		s2y += x2 * ys[i]
		s1y += x * ys[i]
	}
	det := s4*s2 - s3*s3
	if det == 0 || math.Abs(det) < 1e-12*math.Abs(s4*s2) {
		return QuadraticOriginFit{}, fmt.Errorf("stats: degenerate design for quadratic fit")
	}
	fit := QuadraticOriginFit{
		A: (s2y*s2 - s3*s1y) / det,
		B: (s4*s1y - s3*s2y) / det,
		N: len(xs),
	}
	fit.R2 = rSquared(ys, func(i int) float64 { return fit.Predict(xs[i]) })
	return fit, nil
}

// rSquared computes the coefficient of determination of predictions pred(i)
// against observations ys. A constant-y sample yields 1 when predictions are
// exact and 0 otherwise.
func rSquared(ys []float64, pred func(i int) float64) float64 {
	mean := Mean(ys)
	var ssRes, ssTot float64
	for i, y := range ys {
		r := y - pred(i)
		ssRes += r * r
		d := y - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Residuals returns observed-minus-predicted for each point.
func Residuals(xs, ys []float64, predict func(x float64) float64) []float64 {
	res := make([]float64, len(ys))
	for i := range ys {
		res[i] = ys[i] - predict(xs[i])
	}
	return res
}

// RelativeResiduals returns (y - f(x)) / f(x) for each point, the quantity
// the paper assumes normally distributed when adjusting deadlines (§5.2).
// Points where the prediction is zero are skipped.
func RelativeResiduals(xs, ys []float64, predict func(x float64) float64) []float64 {
	res := make([]float64, 0, len(ys))
	for i := range ys {
		p := predict(xs[i])
		if p == 0 {
			continue
		}
		res = append(res, (ys[i]-p)/p)
	}
	return res
}

// LogSpace transforms positive samples to natural-log space, returning an
// error if any value is non-positive (the paper performs its regressions in
// logarithmic space because sample volumes are not equidistant).
func LogSpace(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, fmt.Errorf("stats: log-space transform requires positive values, got %v at %d", x, i)
		}
		out[i] = math.Log(x)
	}
	return out, nil
}
