package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns P(Z ≤ z) for a standard normal variable.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z with P(Z ≤ z) = p for a standard normal
// variable, using Acklam's rational approximation refined by one Halley
// step (absolute error well below 1e-9 across (0,1)).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: normal quantile requires p in (0,1), got %v", p)
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// DeadlineInflation computes the paper's deadline-adjustment factor
// a = z·σ + μ where z is the (1-missProb) standard-normal quantile and μ, σ
// are the sample mean and standard deviation of the model's relative
// residuals (§5.2). Scheduling for D/(1+a) instead of D bounds the miss
// probability by missProb under the normality assumption.
func DeadlineInflation(relResiduals []float64, missProb float64) (float64, error) {
	if len(relResiduals) < 2 {
		return 0, ErrInsufficientData
	}
	if missProb <= 0 || missProb >= 1 {
		return 0, fmt.Errorf("stats: miss probability must be in (0,1), got %v", missProb)
	}
	z, err := NormalQuantile(1 - missProb)
	if err != nil {
		return 0, err
	}
	s := Summarize(relResiduals)
	return z*s.StdDev + s.Mean, nil
}
