package stats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestKSNormalAcceptsGaussian(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rejected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = 3 + 0.5*r.NormFloat64()
		}
		res, err := KSNormal(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Normal {
			rejected++
		}
	}
	// 5% level: expect ≈2 rejections in 40 trials; allow up to 6.
	if rejected > 6 {
		t.Errorf("rejected %d/%d Gaussian samples at the 5%% level", rejected, trials)
	}
}

func TestKSNormalRejectsHeavySkew(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := make([]float64, 300)
	for i := range xs {
		// Exponential: decisively non-normal.
		xs[i] = r.ExpFloat64()
	}
	res, err := KSNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal {
		t.Errorf("exponential sample accepted as normal: %v", res)
	}
	if !strings.Contains(res.String(), "REJECTED") {
		t.Errorf("string verdict wrong: %s", res)
	}
}

func TestKSNormalRejectsBimodal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 300)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = -5 + 0.3*r.NormFloat64()
		} else {
			xs[i] = 5 + 0.3*r.NormFloat64()
		}
	}
	res, err := KSNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal {
		t.Error("bimodal sample accepted as normal")
	}
}

func TestKSNormalErrors(t *testing.T) {
	if _, err := KSNormal([]float64{1, 2, 3}); err == nil {
		t.Error("expected error for tiny sample")
	}
	if _, err := KSNormal([]float64{2, 2, 2, 2, 2}); err == nil {
		t.Error("expected error for degenerate sample")
	}
}
