package binpack

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkItems(sizes ...int64) []Item {
	items := make([]Item, len(sizes))
	for i, s := range sizes {
		items[i] = Item{ID: fmt.Sprintf("f%03d", i), Size: s}
	}
	return items
}

func TestFirstFitBasic(t *testing.T) {
	items := mkItems(4, 8, 1, 4, 2, 1)
	bins, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	// FF trace at cap 10: [4,1,4,1]=10, [8,2]=10.
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(bins))
	}
	if bins[0].Used != 10 || bins[1].Used != 10 {
		t.Errorf("bin loads %d,%d want 10,10", bins[0].Used, bins[1].Used)
	}
}

func TestFirstFitPreservesOrderWithinBin(t *testing.T) {
	items := mkItems(3, 3, 3)
	bins, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 {
		t.Fatalf("bins = %d, want 1", len(bins))
	}
	for i, it := range bins[0].Items {
		if it.ID != fmt.Sprintf("f%03d", i) {
			t.Errorf("order broken at %d: %s", i, it.ID)
		}
	}
}

func TestFirstFitOversized(t *testing.T) {
	items := mkItems(5, 20, 5)
	bins, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	var oversized int
	for _, b := range bins {
		if b.Oversized {
			oversized++
			if len(b.Items) != 1 || b.Items[0].Size != 20 {
				t.Errorf("oversized bin should hold only the big item: %+v", b)
			}
		}
	}
	if oversized != 1 {
		t.Errorf("oversized bins = %d, want 1", oversized)
	}
}

func TestFirstFitErrors(t *testing.T) {
	if _, err := FirstFit(mkItems(1), 0); err == nil {
		t.Error("expected error for zero capacity")
	}
	if _, err := FirstFit([]Item{{ID: "x", Size: -1}}, 10); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestFirstFitEmpty(t *testing.T) {
	bins, err := FirstFit(nil, 10)
	if err != nil || len(bins) != 0 {
		t.Fatalf("empty pack: %v, %v", bins, err)
	}
}

func TestFirstFitDecreasingTighter(t *testing.T) {
	// A pathological order where plain FF wastes space but FFD packs tightly.
	items := mkItems(1, 9, 1, 9, 1, 9, 1, 9)
	ff, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	ffd, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, ffd); err != nil {
		t.Fatal(err)
	}
	if len(ffd) > len(ff) {
		t.Errorf("FFD used %d bins, FF used %d", len(ffd), len(ff))
	}
	if len(ffd) != 4 {
		t.Errorf("FFD bins = %d, want 4", len(ffd))
	}
}

func TestSubsetSumFirstFitFillsBinsFull(t *testing.T) {
	// Sizes that allow exact fills at capacity 100.
	items := mkItems(60, 40, 70, 30, 50, 50, 90, 10)
	bins, err := SubsetSumFirstFit(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Fatalf("bins = %d, want 4", len(bins))
	}
	for i, b := range bins {
		if b.Used != 100 {
			t.Errorf("bin %d used %d, want 100", i, b.Used)
		}
	}
}

func TestSubsetSumFirstFitHalfFullGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var items []Item
	for i := 0; i < 500; i++ {
		items = append(items, Item{ID: fmt.Sprintf("r%d", i), Size: int64(r.Intn(50) + 1)})
	}
	bins, err := SubsetSumFirstFit(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	// All bins except possibly the last must be at least half full: a less
	// than half-full bin plus any unpacked item would have fit together.
	for i, b := range bins[:len(bins)-1] {
		if b.FillFraction() < 0.5 {
			t.Errorf("bin %d only %.2f full", i, b.FillFraction())
		}
	}
}

func TestSubsetSumFirstFitOversized(t *testing.T) {
	items := mkItems(150, 40, 60)
	bins, err := SubsetSumFirstFit(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	oversized := 0
	for _, b := range bins {
		if b.Oversized {
			oversized++
		}
	}
	if oversized != 1 {
		t.Errorf("oversized = %d, want 1", oversized)
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	items := mkItems(10, 10, 10, 10, 10, 10)
	bins, err := LeastLoaded(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	for i, b := range bins {
		if b.Used != 20 {
			t.Errorf("bin %d used %d, want 20", i, b.Used)
		}
	}
}

func TestLeastLoadedDecreasingBeatsOriginalOrder(t *testing.T) {
	// Adversarial order: big items last cause imbalance in original order.
	items := mkItems(1, 1, 1, 1, 30, 30)
	plain, err := LeastLoaded(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := LeastLoadedDecreasing(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(bins []*Bin) int64 {
		s := Summarize(bins)
		return s.MaxUsed - s.MinUsed
	}
	if spread(lpt) > spread(plain) {
		t.Errorf("LPT spread %d worse than plain %d", spread(lpt), spread(plain))
	}
	if spread(lpt) != 0 {
		t.Errorf("LPT spread = %d, want 0", spread(lpt))
	}
}

func TestLeastLoadedErrors(t *testing.T) {
	if _, err := LeastLoaded(mkItems(1), 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := LeastLoaded([]Item{{ID: "x", Size: -2}}, 2); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestLeastLoadedEmptyItems(t *testing.T) {
	bins, err := LeastLoaded(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	for _, b := range bins {
		if b.Used != 0 {
			t.Error("empty distribution has load")
		}
	}
}

func TestMergeGroups(t *testing.T) {
	items := mkItems(10, 10, 10, 10, 10)
	bins, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("bins = %d, want 5", len(bins))
	}
	merged, err := MergeGroups(bins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, merged); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged bins = %d, want 3", len(merged))
	}
	if merged[0].Capacity != 20 || merged[0].Used != 20 {
		t.Errorf("merged[0] = %+v", merged[0])
	}
	// Trailing partial group keeps nominal k*cap capacity.
	if merged[2].Capacity != 20 || merged[2].Used != 10 {
		t.Errorf("merged[2] = %+v", merged[2])
	}
}

func TestMergeGroupsK1CopiesDeeply(t *testing.T) {
	items := mkItems(5, 5)
	bins, _ := FirstFit(items, 10)
	out, err := MergeGroups(bins, 1)
	if err != nil {
		t.Fatal(err)
	}
	out[0].Items[0].ID = "mutated"
	if bins[0].Items[0].ID == "mutated" {
		t.Error("MergeGroups(k=1) aliases input items")
	}
}

func TestMergeGroupsErrors(t *testing.T) {
	if _, err := MergeGroups(nil, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestFlatten(t *testing.T) {
	items := mkItems(4, 4, 4)
	bins, _ := FirstFit(items, 8)
	flat := Flatten(bins)
	if len(flat) != 3 {
		t.Fatalf("flatten length = %d", len(flat))
	}
	if TotalSize(flat) != 12 {
		t.Errorf("total = %d, want 12", TotalSize(flat))
	}
}

func TestSummarize(t *testing.T) {
	items := mkItems(10, 5, 20)
	bins, _ := FirstFit(items, 10) // [10] [5] oversized[20]
	s := Summarize(bins)
	if s.Bins != 3 || s.Oversized != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalVolume != 35 || s.MinUsed != 5 || s.MaxUsed != 20 {
		t.Errorf("stats volumes wrong: %+v", s)
	}
	if s.MeanFill != 0.75 { // (1.0 + 0.5) / 2 over the two regular bins
		t.Errorf("mean fill = %v, want 0.75", s.MeanFill)
	}
	empty := Summarize(nil)
	if empty.Bins != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	items := mkItems(5, 5)
	bins, _ := FirstFit(items, 10)

	t.Run("lost item", func(t *testing.T) {
		broken := []*Bin{{Capacity: 10, Items: bins[0].Items[:1], Used: 5}}
		if err := Verify(items, broken); err == nil {
			t.Error("expected error for missing item")
		}
	})
	t.Run("wrong used", func(t *testing.T) {
		broken := []*Bin{{Capacity: 10, Items: append([]Item(nil), items...), Used: 99}}
		if err := Verify(items, broken); err == nil {
			t.Error("expected error for wrong Used")
		}
	})
	t.Run("unknown item", func(t *testing.T) {
		broken := []*Bin{{Capacity: 10, Items: []Item{{ID: "ghost", Size: 1}, items[0], items[1]}, Used: 11}}
		if err := Verify(items, broken); err == nil {
			t.Error("expected error for unknown item")
		}
	})
	t.Run("duplicate input", func(t *testing.T) {
		dup := []Item{{ID: "a", Size: 1}, {ID: "a", Size: 1}}
		if err := Verify(dup, nil); err == nil {
			t.Error("expected error for duplicate input IDs")
		}
	})
	t.Run("overfull", func(t *testing.T) {
		big := mkItems(6, 6)
		broken := []*Bin{{Capacity: 10, Items: append([]Item(nil), big...), Used: 12}}
		if err := Verify(big, broken); err == nil {
			t.Error("expected error for overfull bin")
		}
	})
	t.Run("size change", func(t *testing.T) {
		changed := []*Bin{{Capacity: 10, Items: []Item{{ID: items[0].ID, Size: 6}, items[1]}, Used: 11}}
		if err := Verify(items, changed); err == nil {
			t.Error("expected error for changed size")
		}
	})
}

// Property: for every heuristic, packing conserves items and respects
// capacities on arbitrary inputs.
func TestPackingInvariantsProperty(t *testing.T) {
	heuristics := map[string]func([]Item, int64) ([]*Bin, error){
		"first-fit":            FirstFit,
		"first-fit-decreasing": FirstFitDecreasing,
		"subset-sum":           SubsetSumFirstFit,
	}
	for name, pack := range heuristics {
		pack := pack
		t.Run(name, func(t *testing.T) {
			f := func(rawSizes []uint16, rawCap uint16) bool {
				capacity := int64(rawCap%1000) + 1
				items := make([]Item, len(rawSizes))
				for i, s := range rawSizes {
					items[i] = Item{ID: fmt.Sprintf("p%d", i), Size: int64(s % 2000)}
				}
				bins, err := pack(items, capacity)
				if err != nil {
					return false
				}
				return Verify(items, bins) == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: merging preserves items for any k.
func TestMergeInvariantProperty(t *testing.T) {
	f := func(rawSizes []uint8, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		items := make([]Item, len(rawSizes))
		for i, s := range rawSizes {
			items[i] = Item{ID: fmt.Sprintf("m%d", i), Size: int64(s)}
		}
		bins, err := SubsetSumFirstFit(items, 300)
		if err != nil {
			return false
		}
		merged, err := MergeGroups(bins, k)
		if err != nil {
			return false
		}
		return Verify(items, merged) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FFD never uses more bins than 2x optimal lower bound
// ceil(total/cap) would allow by the classical 11/9 OPT + 1 bound; we check
// the weaker but assumption-free bound bins ≤ 2*ceil(total/cap) + 1 for
// inputs with no oversized items.
func TestFFDBinCountBoundProperty(t *testing.T) {
	f := func(rawSizes []uint8) bool {
		const capacity = 100
		items := make([]Item, len(rawSizes))
		var total int64
		for i, s := range rawSizes {
			size := int64(s%100) + 1
			items[i] = Item{ID: fmt.Sprintf("b%d", i), Size: size}
			total += size
		}
		bins, err := FirstFitDecreasing(items, capacity)
		if err != nil {
			return false
		}
		lower := (total + capacity - 1) / capacity
		return int64(len(bins)) <= 2*lower+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
