package binpack

import "fmt"

// MergeGroups coalesces consecutive groups of k bins into single bins of
// k times the capacity. This is the paper's §4 derivation trick: run the
// subset-sum first-fit packing once at unit size s₀, then obtain the probe
// sets for s₁..sₙ = multiples of s₀ by merging bins directly, avoiding a
// re-pack per unit size. The trailing partial group (fewer than k bins) is
// merged as well.
//
// Oversized flags are preserved only if the merged content still exceeds the
// merged capacity.
func MergeGroups(bins []*Bin, k int) ([]*Bin, error) {
	if k <= 0 {
		return nil, fmt.Errorf("binpack: merge factor must be positive, got %d", k)
	}
	if k == 1 {
		out := make([]*Bin, len(bins))
		for i, b := range bins {
			cp := *b
			cp.Items = append([]Item(nil), b.Items...)
			out[i] = &cp
		}
		return out, nil
	}
	var out []*Bin
	for start := 0; start < len(bins); start += k {
		end := start + k
		if end > len(bins) {
			end = len(bins)
		}
		var capSum int64
		merged := &Bin{}
		for _, b := range bins[start:end] {
			capSum += b.Capacity
			merged.Items = append(merged.Items, b.Items...)
			merged.Used += b.Used
		}
		// Keep the nominal capacity of a full group so unit file sizes stay
		// comparable even for the trailing partial group.
		if len(bins[start:end]) > 0 {
			merged.Capacity = bins[start].Capacity * int64(k)
		} else {
			merged.Capacity = capSum
		}
		merged.Oversized = merged.Used > merged.Capacity
		out = append(out, merged)
	}
	return out, nil
}

// Flatten returns all items of the bins in bin order, the file order a
// concatenated unit file would contain.
func Flatten(bins []*Bin) []Item {
	var items []Item
	for _, b := range bins {
		items = append(items, b.Items...)
	}
	return items
}
