package binpack

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNextFitStreamsForward(t *testing.T) {
	items := mkItems(6, 6, 6) // capacity 10: every item closes the bin
	bins, err := NextFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Errorf("bins = %d, want 3 (NextFit never looks back)", len(bins))
	}
	// A trailing small item fits an earlier *closed* bin: FF reuses bin 0,
	// NF cannot look back.
	items2 := mkItems(6, 9, 3)
	nf, _ := NextFit(items2, 10)
	ff, _ := FirstFit(items2, 10)
	if len(nf) != 3 || len(ff) != 2 {
		t.Errorf("NF=%d FF=%d, want 3 and 2", len(nf), len(ff))
	}
}

func TestBestFitTighterThanFirstFit(t *testing.T) {
	// FF puts 3 into bin0 (free 4); BF puts it into bin1 (free 3),
	// leaving bin0 able to take the final 4.
	items := mkItems(6, 7, 3, 4)
	ff, err := FirstFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BestFit(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bf); err != nil {
		t.Fatal(err)
	}
	if len(bf) != 2 || len(ff) != 3 {
		t.Errorf("BF=%d FF=%d, want 2 and 3", len(bf), len(ff))
	}
}

func TestBestFitDecreasing(t *testing.T) {
	items := mkItems(1, 9, 1, 9, 1, 9, 1, 9)
	bins, err := BestFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(items, bins); err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Errorf("BFD bins = %d, want 4", len(bins))
	}
}

func TestNewHeuristicsOversized(t *testing.T) {
	items := mkItems(15, 5)
	for name, pack := range map[string]func([]Item, int64) ([]*Bin, error){
		"nextfit": NextFit, "bestfit": BestFit, "bfd": BestFitDecreasing,
	} {
		bins, err := pack(items, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(items, bins); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oversized := 0
		for _, b := range bins {
			if b.Oversized {
				oversized++
			}
		}
		if oversized != 1 {
			t.Errorf("%s: oversized = %d", name, oversized)
		}
	}
}

func TestNewHeuristicsValidation(t *testing.T) {
	for name, pack := range map[string]func([]Item, int64) ([]*Bin, error){
		"nextfit": NextFit, "bestfit": BestFit,
	} {
		if _, err := pack(mkItems(1), 0); err == nil {
			t.Errorf("%s: expected error for zero capacity", name)
		}
		if _, err := pack([]Item{{ID: "x", Size: -1}}, 5); err == nil {
			t.Errorf("%s: expected error for negative size", name)
		}
	}
}

// Property: the new heuristics conserve items and respect capacities, and
// their bin counts are ordered NF ≥ FF ≥ never-less-than-lower-bound.
func TestHeuristicOrderingProperty(t *testing.T) {
	f := func(rawSizes []uint8) bool {
		const capacity = 100
		items := make([]Item, len(rawSizes))
		var total int64
		for i, s := range rawSizes {
			size := int64(s%100) + 1
			items[i] = Item{ID: fmt.Sprintf("h%d", i), Size: size}
			total += size
		}
		nf, err := NextFit(items, capacity)
		if err != nil || Verify(items, nf) != nil {
			return false
		}
		ff, err := FirstFit(items, capacity)
		if err != nil || Verify(items, ff) != nil {
			return false
		}
		bf, err := BestFit(items, capacity)
		if err != nil || Verify(items, bf) != nil {
			return false
		}
		lower := (total + capacity - 1) / capacity
		if int64(len(bf)) < lower || int64(len(ff)) < lower || int64(len(nf)) < lower {
			return false
		}
		// NextFit never beats FirstFit.
		return len(nf) >= len(ff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
