package binpack

import (
	"fmt"
	"math/rand"
	"testing"
)

// packersMatch asserts two packings are identical bin-for-bin.
func packersMatch(t *testing.T, label string, got, want []*Bin) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d bins != reference %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Capacity != w.Capacity || g.Used != w.Used || g.Oversized != w.Oversized || len(g.Items) != len(w.Items) {
			t.Fatalf("%s: bin %d header %+v != reference %+v", label, i, g, w)
		}
		for j := range w.Items {
			if g.Items[j] != w.Items[j] {
				t.Fatalf("%s: bin %d item %d %+v != reference %+v", label, i, j, g.Items[j], w.Items[j])
			}
		}
	}
}

// randomItems generates adversarial inputs: duplicates, zeros and
// oversized items mixed in.
func randomItems(r *rand.Rand, n int, capacity int64) []Item {
	items := make([]Item, n)
	for i := range items {
		var size int64
		switch r.Intn(10) {
		case 0:
			size = 0
		case 1:
			size = capacity + r.Int63n(capacity) // oversized
		case 2:
			size = capacity // exact fit
		default:
			size = r.Int63n(capacity) + 1
		}
		items[i] = Item{ID: fmt.Sprintf("r%05d", i), Size: size}
	}
	return items
}

func TestFirstFitMatchesLinearReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		capacity := int64(1000 + r.Intn(9000))
		items := randomItems(r, 1+r.Intn(400), capacity)
		fast, err := FirstFit(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := FirstFitLinear(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		packersMatch(t, fmt.Sprintf("trial %d", trial), fast, ref)
		if err := Verify(items, fast); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSubsetSumFirstFitMatchesLinearReference(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		capacity := int64(1000 + r.Intn(9000))
		items := randomItems(r, 1+r.Intn(400), capacity)
		fast, err := SubsetSumFirstFit(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SubsetSumFirstFitLinear(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		packersMatch(t, fmt.Sprintf("trial %d", trial), fast, ref)
		if err := Verify(items, fast); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFirstFitEqualSizesStable(t *testing.T) {
	// All-equal sizes exercise tie-breaking: both implementations must fill
	// bins in creation order.
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("e%03d", i), Size: 10}
	}
	fast, _ := FirstFit(items, 35)
	ref, _ := FirstFitLinear(items, 35)
	packersMatch(t, "equal sizes", fast, ref)
	ss, _ := SubsetSumFirstFit(items, 35)
	ssRef, _ := SubsetSumFirstFitLinear(items, 35)
	packersMatch(t, "equal sizes subset-sum", ss, ssRef)
}

func TestBinIndexGrow(t *testing.T) {
	// Force the tree past its initial sizing to cover grow().
	ix := newBinIndex()
	for i := 0; i < 9; i++ {
		ix.push(int64(i))
	}
	for need := int64(0); need < 9; need++ {
		if got := ix.findFirst(need); got != int(need) {
			t.Fatalf("findFirst(%d) = %d", need, got)
		}
	}
	ix.set(3, 100)
	if got := ix.findFirst(50); got != 3 {
		t.Fatalf("after set: findFirst(50) = %d", got)
	}
}

func TestNextUnusedSkips(t *testing.T) {
	nx := newNextUnused(5)
	nx.consume(0)
	nx.consume(1)
	nx.consume(3)
	if got := nx.find(0); got != 2 {
		t.Fatalf("find(0) = %d", got)
	}
	nx.consume(2)
	if got := nx.find(0); got != 4 {
		t.Fatalf("find(0) after consume(2) = %d", got)
	}
	nx.consume(4)
	if got := nx.find(0); got != 5 {
		t.Fatalf("find(0) exhausted = %d", got)
	}
}
