package binpack


// Index structures behind the O(n log n) packers. FirstFit needs "the
// first open bin with at least `size` residual capacity"; SubsetSumFirstFit
// needs "the largest not-yet-packed item that still fits". Both queries are
// answered in O(log n) — a max segment tree over bin residuals for the
// former, a binary search plus a next-unused skip pointer for the latter —
// replacing the O(n·bins) linear scans (kept as FirstFitLinear /
// SubsetSumFirstFitLinear for differential tests and benchmarks).

// binIndex is a max segment tree over per-bin residual capacities, in bin
// creation order. Closed slots (oversized bins, not-yet-opened positions)
// hold -1 so they never satisfy a `free >= size` query, even for size 0.
type binIndex struct {
	leaves int     // number of leaf slots (power of two)
	tree   []int64 // 1-based heap layout; leaves at [leaves, 2*leaves)
	count  int     // bins registered so far
}

// newBinIndex starts small and doubles on demand, so query depth tracks
// log(actual bins), not log(items) — packings that fill few large bins pay
// a few tree levels, not the worst case's.
func newBinIndex() *binIndex {
	const initialLeaves = 8
	t := make([]int64, 2*initialLeaves)
	for i := range t {
		t[i] = -1
	}
	return &binIndex{leaves: initialLeaves, tree: t}
}

// push registers the next bin with the given residual capacity; pass -1
// for bins that must never accept items (oversized).
func (ix *binIndex) push(free int64) {
	if ix.count == ix.leaves {
		ix.grow()
	}
	ix.set(ix.count, free)
	ix.count++
}

// set updates bin pos's residual capacity.
func (ix *binIndex) set(pos int, free int64) {
	i := ix.leaves + pos
	ix.tree[i] = free
	for i >>= 1; i >= 1; i >>= 1 {
		l, r := ix.tree[2*i], ix.tree[2*i+1]
		if l < r {
			l = r
		}
		if ix.tree[i] == l {
			break
		}
		ix.tree[i] = l
	}
}

// findFirst returns the lowest bin position with residual capacity >= need,
// or -1 when no open bin fits.
func (ix *binIndex) findFirst(need int64) int {
	if ix.tree[1] < need {
		return -1
	}
	i := 1
	for i < ix.leaves {
		if ix.tree[2*i] >= need {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - ix.leaves
}

func (ix *binIndex) grow() {
	old := ix.tree[ix.leaves : ix.leaves+ix.count]
	leaves := ix.leaves * 2
	t := make([]int64, 2*leaves)
	for i := range t {
		t[i] = -1
	}
	nx := &binIndex{leaves: leaves, tree: t}
	for pos, free := range old {
		nx.set(pos, free)
	}
	ix.leaves, ix.tree = nx.leaves, nx.tree
}

// scanOrder is the subset-sum scan order: items by decreasing size, equal
// sizes in input order. The (size, idx) key is a strict total order, so the
// unstable-but-faster generic sort yields exactly the stable ordering.
type scanOrder []sizeIdx

type sizeIdx struct {
	size int64
	idx  int32
}

func sizeOrder(items []Item) scanOrder {
	order := make(scanOrder, len(items))
	for i, it := range items {
		order[i] = sizeIdx{size: it.Size, idx: int32(i)}
	}
	radixSortSizeDesc(order)
	return order
}

// radixSortSizeDesc sorts by decreasing size, stable on idx, with an LSD
// radix sort over the complemented size key (ascending on ^size =
// descending on size; LSD stability preserves input order on ties).
// Byte passes whose digit is constant across the slice — all of the high
// ones, for realistic file sizes — are skipped, so a corpus of sub-16MB
// files pays 3 passes, not 8. Roughly 10× faster than the comparator sort
// the packers' profiles were previously dominated by.
func radixSortSizeDesc(order scanOrder) {
	n := len(order)
	if n < 64 {
		// Insertion sort for small inputs; same total order.
		for i := 1; i < n; i++ {
			for j := i; j > 0; j-- {
				a, b := order[j-1], order[j]
				if a.size > b.size || (a.size == b.size && a.idx < b.idx) {
					break
				}
				order[j-1], order[j] = b, a
			}
		}
		return
	}
	buf := make(scanOrder, n)
	src, dst := order, buf
	swapped := false
	for shift := uint(0); shift < 64; shift += 8 {
		var counts [256]int
		for _, e := range src {
			counts[byte(^uint64(e.size)>>shift)]++
		}
		if counts[byte(^uint64(src[0].size)>>shift)] == n {
			continue // constant digit: pass is a no-op
		}
		pos := 0
		var offsets [256]int
		for d := 0; d < 256; d++ {
			offsets[d] = pos
			pos += counts[d]
		}
		for _, e := range src {
			d := byte(^uint64(e.size) >> shift)
			dst[offsets[d]] = e
			offsets[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(order, src)
	}
}

// sortedBySizeDesc returns a copy of the items in decreasing-size order,
// equal sizes keeping input order — what sort.SliceStable over the items
// produces, but via the integer-keyed sort (an order of magnitude faster
// than the reflection-based stable sort on 10k-item corpora).
func sortedBySizeDesc(items []Item) []Item {
	order := sizeOrder(items)
	sorted := make([]Item, len(items))
	for i, o := range order {
		sorted[i] = items[o.idx]
	}
	return sorted
}

// searchFit returns the first scan position whose item size is <= free.
// Sizes are non-increasing along the order, so plain binary search works.
func (o scanOrder) searchFit(free int64) int {
	lo, hi := 0, len(o)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o[mid].size <= free {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// nextUnused is a union-find "skip to the next unconsumed position"
// pointer over a fixed ordering: find(p) returns the smallest position
// >= p not yet consumed (or n), in near-constant amortised time.
type nextUnused []int

func newNextUnused(n int) nextUnused {
	next := make(nextUnused, n+1)
	for i := range next {
		next[i] = i
	}
	return next
}

func (nx nextUnused) find(p int) int {
	for nx[p] != p {
		nx[p] = nx[nx[p]] // path halving
		p = nx[p]
	}
	return p
}

func (nx nextUnused) consume(p int) { nx[p] = p + 1 }
