package binpack

// Additional classical heuristics, used by the ablation benchmarks to
// situate the paper's choices: NextFit (the cheapest possible packer),
// BestFit (tightest per-item placement) and BestFitDecreasing.

// NextFit packs items in order, keeping only the latest bin open: an item
// that does not fit closes the bin and opens a new one. O(n), the weakest
// quality bound (2·OPT), but the only heuristic with streaming behaviour —
// relevant when the corpus cannot be held in memory.
func NextFit(items []Item, capacity int64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []*Bin
	var open *Bin
	for _, it := range items {
		if it.Size > capacity {
			bins = append(bins, &Bin{Capacity: capacity, Items: []Item{it}, Used: it.Size, Oversized: true})
			continue
		}
		if open == nil || open.Free() < it.Size {
			open = &Bin{Capacity: capacity}
			bins = append(bins, open)
		}
		open.add(it)
	}
	return bins, nil
}

// BestFit places each item into the open bin with the least remaining
// space that still fits it, opening a new bin when none does.
func BestFit(items []Item, capacity int64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []*Bin
	for _, it := range items {
		if it.Size > capacity {
			bins = append(bins, &Bin{Capacity: capacity, Items: []Item{it}, Used: it.Size, Oversized: true})
			continue
		}
		best := -1
		var bestFree int64
		for i, b := range bins {
			if b.Oversized {
				continue
			}
			free := b.Free()
			if free >= it.Size && (best == -1 || free < bestFree) {
				best = i
				bestFree = free
			}
		}
		if best == -1 {
			nb := &Bin{Capacity: capacity}
			nb.add(it)
			bins = append(bins, nb)
			continue
		}
		bins[best].add(it)
	}
	return bins, nil
}

// BestFitDecreasing sorts items by decreasing size (stable) before BestFit.
func BestFitDecreasing(items []Item, capacity int64) ([]*Bin, error) {
	return BestFit(sortedBySizeDesc(items), capacity)
}
