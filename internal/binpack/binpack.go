// Package binpack implements the bin-packing heuristics the paper uses to
// reshape corpora: first-fit in original order (the order the paper keeps
// for POS scheduling, §5.2), first-fit decreasing, the subset-sum first-fit
// heuristic [Vazirani 2003] used to build probe sets (§4), and least-loaded
// balancing for the uniform-bins improvement of Fig. 8(b).
//
// Items are (ID, Size) pairs; packing never splits an item — the paper's
// files are unsplittable units, so an item larger than the bin capacity gets
// a dedicated oversized bin rather than an error.
package binpack

import (
	"fmt"
	"sort"
)

// Item is an unsplittable unit of data to pack, typically one input file.
type Item struct {
	ID   string
	Size int64
}

// Bin is a set of items packed against a capacity.
type Bin struct {
	Capacity  int64
	Items     []Item
	Used      int64
	Oversized bool // single item exceeding the capacity
}

// Free returns the remaining capacity (negative for oversized bins).
func (b *Bin) Free() int64 { return b.Capacity - b.Used }

// FillFraction returns Used/Capacity (may exceed 1 for oversized bins).
func (b *Bin) FillFraction() float64 {
	if b.Capacity == 0 {
		return 0
	}
	return float64(b.Used) / float64(b.Capacity)
}

func (b *Bin) add(it Item) {
	b.Items = append(b.Items, it)
	b.Used += it.Size
}

func validate(items []Item, capacity int64) error {
	if capacity <= 0 {
		return fmt.Errorf("binpack: capacity must be positive, got %d", capacity)
	}
	for i, it := range items {
		if it.Size < 0 {
			return fmt.Errorf("binpack: item %d (%q) has negative size %d", i, it.ID, it.Size)
		}
	}
	return nil
}

// binMeta accumulates a bin's totals during the placement pass; the Bin
// structs and their Items slices are materialised afterwards with exact
// sizes (see buildBins), avoiding the append-growth garbage that dominates
// the naive packer's profile.
type binMeta struct {
	used      int64
	count     int32
	oversized bool
}

// buildBins materialises bins from per-item placements. binAt[i] is the
// bin index of the i-th placement, in the order placements were made, and
// itemAt(i) the corresponding item; all bins share one flat item slab
// (capacity-bounded subslices, so a caller appending to one bin's Items
// reallocates instead of clobbering its neighbour).
func buildBins(metas []binMeta, capacity int64, n int, binAt []int32, itemAt func(i int) Item) []*Bin {
	slab := make([]Item, 0, n)
	structs := make([]Bin, len(metas))
	bins := make([]*Bin, len(metas))
	off := 0
	for bi, m := range metas {
		b := &structs[bi]
		b.Capacity = capacity
		b.Used = m.used
		b.Oversized = m.oversized
		end := off + int(m.count)
		b.Items = slab[off:off:end]
		off = end
		bins[bi] = b
	}
	for i := 0; i < n; i++ {
		b := bins[binAt[i]]
		b.Items = append(b.Items, itemAt(i))
	}
	return bins
}

// FirstFit packs the items, in the order given, each into the first open bin
// with room, opening a new bin when none fits. This is the ordering the
// paper deliberately keeps for the POS workload so that large files do not
// cluster in the first bins (§5.2).
//
// Bins already closed off by the advancing frontier live in a max segment
// tree over their residual capacities, so "the first earlier bin with room"
// is an O(log bins) query — and the frontier bin itself (where the vast
// majority of items land when items are much smaller than the capacity) is
// kept outside the tree for an O(1) fast path. The output is identical
// bin-for-bin to the O(n·bins) reference FirstFitLinear.
func FirstFit(items []Item, capacity int64) ([]*Bin, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("binpack: capacity must be positive, got %d", capacity)
	}
	n := len(items)
	binAt := make([]int32, n)
	var metas []binMeta
	ix := newBinIndex()
	frontier := -1 // position of the open frontier bin; residual tracked here, not in the tree
	var frontierFree int64
	for i, it := range items {
		if it.Size < 0 {
			return nil, fmt.Errorf("binpack: item %d (%q) has negative size %d", i, it.ID, it.Size)
		}
		if it.Size > capacity {
			// The frontier keeps its position; the oversized bin's tree slot
			// stays closed (-1) so queries never land on it.
			metas = append(metas, binMeta{used: it.Size, count: 1, oversized: true})
			ix.push(-1)
			binAt[i] = int32(len(metas) - 1)
			continue
		}
		var pos int
		switch {
		case ix.count > 0 && ix.tree[1] >= it.Size:
			// Some closed bin fits; all closed regular bins precede the
			// frontier, so the leftmost of them is the first-fit choice.
			pos = ix.findFirst(it.Size)
			m := &metas[pos]
			m.used += it.Size
			m.count++
			ix.set(pos, capacity-m.used)
		case frontier >= 0 && frontierFree >= it.Size:
			pos = frontier
			m := &metas[pos]
			m.used += it.Size
			m.count++
			frontierFree -= it.Size
		default:
			// Close the old frontier into the tree and open a new bin.
			if frontier >= 0 {
				ix.set(frontier, frontierFree)
			}
			metas = append(metas, binMeta{used: it.Size, count: 1})
			pos = len(metas) - 1
			ix.push(-1)
			frontier = pos
			frontierFree = capacity - it.Size
		}
		binAt[i] = int32(pos)
	}
	return buildBins(metas, capacity, n, binAt, func(i int) Item { return items[i] }), nil
}

// FirstFitLinear is the O(n·bins) reference implementation of FirstFit —
// a plain scan over open bins per item. Kept for differential tests and
// the indexed-vs-naive benchmarks.
func FirstFitLinear(items []Item, capacity int64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []*Bin
	for _, it := range items {
		if it.Size > capacity {
			bins = append(bins, &Bin{Capacity: capacity, Items: []Item{it}, Used: it.Size, Oversized: true})
			continue
		}
		placed := false
		for _, b := range bins {
			if !b.Oversized && b.Free() >= it.Size {
				b.add(it)
				placed = true
				break
			}
		}
		if !placed {
			nb := &Bin{Capacity: capacity}
			nb.add(it)
			bins = append(bins, nb)
		}
	}
	return bins, nil
}

// FirstFitDecreasing sorts items by decreasing size (stable, so equal-size
// items keep their relative order) before running FirstFit. It packs tighter
// but, as the paper notes, concentrates large files in the early bins.
func FirstFitDecreasing(items []Item, capacity int64) ([]*Bin, error) {
	return FirstFit(sortedBySizeDesc(items), capacity)
}

// SubsetSumFirstFit packs items using the subset-sum first-fit heuristic the
// paper cites for probe construction: bins are filled one at a time, each
// with a greedy approximation of the fullest subset of the remaining items
// (scan remaining items in decreasing size order, take everything that still
// fits). The greedy scan guarantees each closed bin is at least half full
// whenever enough data remains.
//
// Because sizes are non-increasing along the scan order, "take everything
// that fits" is equivalent to repeatedly taking the first remaining item
// whose size is at most the bin's residual capacity — found here by binary
// search plus a next-unused skip pointer, O(log n) per placement instead of
// the O(n)-per-bin rescan of the reference SubsetSumFirstFitLinear. The
// output is identical bin-for-bin.
func SubsetSumFirstFit(items []Item, capacity int64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	n := len(items)
	order := sizeOrder(items)
	next := newNextUnused(n)
	binAt := make([]int32, n) // bin index per scan position
	var metas []binMeta

	// Oversized items lead the decreasing-size order; the linear scan emits
	// each as its own bin the moment it is encountered, i.e. all of them
	// first, before any regular bin.
	pos := 0
	for pos < n && order[pos].size > capacity {
		metas = append(metas, binMeta{used: order[pos].size, count: 1, oversized: true})
		binAt[pos] = int32(len(metas) - 1)
		next.consume(pos)
		pos++
	}
	remaining := n - pos
	for remaining > 0 {
		var m binMeta
		bi := int32(len(metas))
		free := capacity
		for {
			// First scan position whose item fits (sizes are non-increasing
			// along the order, so binary search applies); the next unused
			// position at or after it is the item the linear scan would take.
			p := next.find(order.searchFit(free))
			if p >= n {
				break
			}
			m.used += order[p].size
			m.count++
			free = capacity - m.used
			binAt[p] = bi
			next.consume(p)
			remaining--
		}
		if m.count == 0 {
			break // unreachable: every remaining item fits an empty bin
		}
		metas = append(metas, m)
	}
	// Within a bin, items appear in scan order (decreasing size), exactly as
	// the linear reference appends them.
	return buildBins(metas, capacity, n, binAt, func(p int) Item { return items[order[p].idx] }), nil
}

// SubsetSumFirstFitLinear is the O(n·bins) reference implementation of
// SubsetSumFirstFit — a full rescan of the remaining items per bin. Kept
// for differential tests and the indexed-vs-naive benchmarks.
func SubsetSumFirstFitLinear(items []Item, capacity int64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]].Size > items[order[b]].Size })
	used := make([]bool, len(items))
	remaining := len(items)

	var bins []*Bin
	for remaining > 0 {
		b := &Bin{Capacity: capacity}
		for _, idx := range order {
			if used[idx] {
				continue
			}
			it := items[idx]
			if it.Size > capacity {
				// Oversized items are emitted as their own bins immediately.
				bins = append(bins, &Bin{Capacity: capacity, Items: []Item{it}, Used: it.Size, Oversized: true})
				used[idx] = true
				remaining--
				continue
			}
			if b.Free() >= it.Size {
				b.add(it)
				used[idx] = true
				remaining--
			}
		}
		if len(b.Items) > 0 {
			bins = append(bins, b)
		}
	}
	return bins, nil
}

// LeastLoaded distributes items across exactly n bins, always placing the
// next item into the currently least-loaded bin. With items pre-sorted by
// decreasing size this is the LPT rule; the paper's "uniform bins"
// improvement (Fig. 8(b)) corresponds to balanced bins of volume ≈ V/n.
func LeastLoaded(items []Item, n int) ([]*Bin, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binpack: bin count must be positive, got %d", n)
	}
	for i, it := range items {
		if it.Size < 0 {
			return nil, fmt.Errorf("binpack: item %d (%q) has negative size %d", i, it.ID, it.Size)
		}
	}
	var total int64
	for _, it := range items {
		total += it.Size
	}
	capacity := total / int64(n)
	if total%int64(n) != 0 {
		capacity++
	}
	if capacity == 0 {
		capacity = 1
	}
	bins := make([]*Bin, n)
	for i := range bins {
		bins[i] = &Bin{Capacity: capacity}
	}
	for _, it := range items {
		best := 0
		for i := 1; i < n; i++ {
			if bins[i].Used < bins[best].Used {
				best = i
			}
		}
		bins[best].add(it)
	}
	// ⌈V/n⌉ is a balancing target, not a hard cap: item granularity can
	// overshoot it slightly. Widen capacities to the realised maximum so
	// the packing invariants hold.
	var maxUsed int64
	for _, b := range bins {
		if b.Used > maxUsed {
			maxUsed = b.Used
		}
	}
	if maxUsed > capacity {
		for _, b := range bins {
			b.Capacity = maxUsed
		}
	}
	return bins, nil
}

// LeastLoadedDecreasing sorts items by decreasing size before LeastLoaded
// (the classic LPT balancing rule, tighter max-bin bounds).
func LeastLoadedDecreasing(items []Item, n int) ([]*Bin, error) {
	return LeastLoaded(sortedBySizeDesc(items), n)
}

// Stats summarises the quality of a packing.
type Stats struct {
	Bins          int
	Oversized     int
	TotalVolume   int64
	TotalCapacity int64
	MinUsed       int64
	MaxUsed       int64
	MeanFill      float64 // mean fill fraction over non-oversized bins
}

// Summarize computes packing-quality statistics.
func Summarize(bins []*Bin) Stats {
	s := Stats{Bins: len(bins)}
	if len(bins) == 0 {
		return s
	}
	s.MinUsed = bins[0].Used
	var fillSum float64
	regular := 0
	for _, b := range bins {
		s.TotalVolume += b.Used
		s.TotalCapacity += b.Capacity
		if b.Used < s.MinUsed {
			s.MinUsed = b.Used
		}
		if b.Used > s.MaxUsed {
			s.MaxUsed = b.Used
		}
		if b.Oversized {
			s.Oversized++
		} else {
			fillSum += b.FillFraction()
			regular++
		}
	}
	if regular > 0 {
		s.MeanFill = fillSum / float64(regular)
	}
	return s
}

// TotalSize returns the summed size of the items.
func TotalSize(items []Item) int64 {
	var total int64
	for _, it := range items {
		total += it.Size
	}
	return total
}

// Verify checks the packing invariants: every input item appears in exactly
// one bin, bin Used fields match their contents, and no non-oversized bin
// exceeds its capacity. It returns a descriptive error on the first
// violation. Tests and the probe harness call this after every pack.
func Verify(items []Item, bins []*Bin) error {
	want := make(map[string]int64, len(items))
	for _, it := range items {
		if _, dup := want[it.ID]; dup {
			return fmt.Errorf("binpack: duplicate item ID %q in input", it.ID)
		}
		want[it.ID] = it.Size
	}
	seen := make(map[string]bool, len(items))
	for bi, b := range bins {
		var used int64
		for _, it := range b.Items {
			size, ok := want[it.ID]
			if !ok {
				return fmt.Errorf("binpack: bin %d contains unknown item %q", bi, it.ID)
			}
			if size != it.Size {
				return fmt.Errorf("binpack: item %q size changed: %d -> %d", it.ID, size, it.Size)
			}
			if seen[it.ID] {
				return fmt.Errorf("binpack: item %q packed twice", it.ID)
			}
			seen[it.ID] = true
			used += it.Size
		}
		if used != b.Used {
			return fmt.Errorf("binpack: bin %d Used=%d but contents sum to %d", bi, b.Used, used)
		}
		if !b.Oversized && b.Used > b.Capacity {
			return fmt.Errorf("binpack: bin %d overfull: %d > %d", bi, b.Used, b.Capacity)
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("binpack: packed %d of %d items", len(seen), len(want))
	}
	return nil
}
