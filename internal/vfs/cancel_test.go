package vfs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/errs"
)

// cancelCorpus builds a deterministic in-memory corpus for cancellation
// tests.
func cancelCorpus(n int) *FS {
	fs := NewFS()
	for i := 0; i < n; i++ {
		data := make([]byte, 512+i)
		for j := range data {
			data[j] = byte((i*131 + j*7) % 251)
		}
		if err := fs.Add(BytesFile(fmt.Sprintf("file-%04d", i), data)); err != nil {
			panic(err)
		}
	}
	return fs
}

// TestBuildManifestCtxCancellation: at every worker count a pre-cancelled
// context yields the typed cancellation error, and a subsequent live run
// over the same FS is byte-identical to a never-cancelled one.
func TestBuildManifestCtxCancellation(t *testing.T) {
	fs := cancelCorpus(64)
	want, err := BuildManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		if _, err := BuildManifestWorkersCtx(cancelled, fs, workers); !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: cancelled build returned %v, want ErrCancelled", workers, err)
		}
		// The cancelled attempt must not poison the corpus: a completed
		// run afterwards reproduces the reference manifest exactly.
		got, err := BuildManifestWorkersCtx(context.Background(), fs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d entries, want %d", workers, len(got), len(want))
		}
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("workers=%d: %s = %+v, want %+v", workers, name, got[name], w)
			}
		}
	}
}

func TestCombinedChecksumCtxCancellation(t *testing.T) {
	fs := cancelCorpus(32)
	want, err := CombinedChecksum(fs)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CombinedChecksumCtx(cancelled, fs); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled combined checksum returned %v", err)
	}
	got, err := CombinedChecksumCtx(context.Background(), fs)
	if err != nil || got != want {
		t.Fatalf("post-cancel rerun: (%x, %v), want %x", got, err, want)
	}
}

func TestExportPackCtxCancellation(t *testing.T) {
	fs := cancelCorpus(16)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fs.ExportPackCtx(cancelled, t.TempDir(), PackOptions{}); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled export pack returned %v", err)
	}
	// A live run into a fresh directory still round-trips.
	dir := t.TempDir()
	paths, err := fs.ExportPackCtx(context.Background(), dir, PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, closer, err := ImportPackCtx(context.Background(), paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	want, err := CombinedChecksum(fs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CombinedChecksum(back)
	if err != nil || got != want {
		t.Fatalf("pack round-trip after cancelled attempt: (%x, %v), want %x", got, err, want)
	}
}

func TestVfsErrNotFoundIsTyped(t *testing.T) {
	fs := NewFS()
	_, err := fs.Get("missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("errors.Is(%v, vfs.ErrNotFound) = false", err)
	}
	if !errors.Is(err, errs.ErrNotFound) {
		t.Fatalf("errors.Is(%v, errs.ErrNotFound) = false", err)
	}
}

func TestManifestVerifyReportsCorrupt(t *testing.T) {
	fs := cancelCorpus(4)
	m, err := BuildManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	e := m["file-0002"]
	e.Checksum ^= 1
	m["file-0002"] = e
	err = m.Verify(fs)
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("errors.Is(%v, ErrCorrupt) = false", err)
	}
	var se *errs.StageError
	if !errors.As(err, &se) || se.File != "file-0002" {
		t.Fatalf("corruption blamed wrong file: %v", err)
	}
}
