package vfs

import (
	"context"
	"fmt"
	"io"

	"repro/internal/errs"
	"repro/internal/packstore"
)

// ImportPackMapped opens pack files — given directly or discovered as
// "*.pack" under directory arguments, exactly like ImportPack — through
// memory-mapped readers, so every imported file carries a zero-copy raw
// view of its bytes alongside the streaming content source. Scans over
// the returned FS take the engine's borrowed-window path: no per-file
// opens, no block-buffer copies, the kernels read straight out of the
// page cache.
//
// The returned closer unmaps every shard; all raw views (and streaming
// readers) obtained from the FS are invalid after it runs. Callers that
// need bytes past that point must copy them first.
func ImportPackMapped(sources ...string) (*FS, io.Closer, error) {
	return ImportPackMappedCtx(context.Background(), sources...)
}

// ImportPackMappedCtx is ImportPackMapped with cancellation, checked
// between pack opens and member registrations; on abort every mapping
// made so far is released before the typed cancellation error is
// returned.
func ImportPackMappedCtx(ctx context.Context, sources ...string) (*FS, io.Closer, error) {
	paths, err := resolvePackPaths(ctx, sources...)
	if err != nil {
		return nil, nil, err
	}
	readers := &readerSet{}
	fail := func(err error) (*FS, io.Closer, error) {
		readers.Close()
		return nil, nil, err
	}
	fs := NewFS()
	for _, path := range paths {
		if cerr := errs.FromContext(ctx); cerr != nil {
			return fail(cerr)
		}
		r, err := packstore.OpenReader(path)
		if err != nil {
			return fail(err)
		}
		readers.rs = append(readers.rs, r)
		// Scans walk each shard front to back; tell the OS so readahead
		// stays aggressive. Best effort by contract.
		_ = r.AdviseSequential()
		p := r.Pack()
		for i, m := range p.Members() {
			f := NewContentFile(m.Name, m.Size, func() io.Reader {
				return p.SectionReader(m)
			}).WithLocality(p.Path(), m.Offset).WithRawBytes(r.MemberBytes(i))
			if err := fs.Add(f); err != nil {
				return fail(fmt.Errorf("vfs: import mapped pack %s: %w", p.Path(), err))
			}
		}
	}
	return fs, readers, nil
}

// readerSet closes a group of mapped pack readers as one unit, keeping
// the first error.
type readerSet struct {
	rs []*packstore.Reader
}

func (s *readerSet) Close() error {
	var first error
	for _, r := range s.rs {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
