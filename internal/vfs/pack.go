package vfs

import (
	"context"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/errs"
	"repro/internal/packstore"
	"repro/internal/par"
)

// Pack round-trips: a reshaped corpus exported as pack shards instead of
// one plain file per unit keeps the paper's gains on disk — re-importing
// costs a handful of opens however many members there are, and every
// member stays individually checksummed and randomly accessible.

// PackOptions configures ExportPack.
type PackOptions struct {
	// Prefix names the shard files "<Prefix>-<seq>.pack". Default "corpus".
	Prefix string
	// ShardSize is the target payload bytes per shard; members are never
	// split, so a shard holds at least one member however large. <= 0
	// means a single unbounded shard. Default 256 MB.
	ShardSize int64
	// Workers bounds the content read-ahead fan-out (0 = GOMAXPROCS,
	// 1 = serial). The written bytes are identical at any worker count:
	// only materialisation is concurrent, appending is in List order.
	Workers int
}

func (o *PackOptions) fillDefaults() {
	if o.Prefix == "" {
		o.Prefix = "corpus"
	}
	if o.ShardSize == 0 {
		o.ShardSize = 256 << 20
	}
}

// ExportPack writes every content-backed file into pack shards under
// dir, in List order, and returns the shard paths. Like CombinedChecksum
// the expensive part — materialising content — runs ahead concurrently
// in a bounded window while members are appended strictly in order, so
// the shards are byte-reproducible: the same FS always produces the same
// pack files.
func (fs *FS) ExportPack(dir string, opts PackOptions) ([]string, error) {
	return fs.ExportPackCtx(context.Background(), dir, opts)
}

// ExportPackCtx is ExportPack with cancellation: the context is checked
// between prefetch windows and before each member append, so an abort
// lands within one window of work and the partial shards on disk remain
// well-formed up to the last completed append. Completed runs are
// byte-identical to ExportPack.
func (fs *FS) ExportPackCtx(ctx context.Context, dir string, opts PackOptions) ([]string, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: export pack: %w", err)
	}
	files := fs.List()
	sw := packstore.NewShardWriter(dir, opts.Prefix, opts.ShardSize)

	// Files above the prefetch cap are streamed at append time instead of
	// being materialised, bounding read-ahead memory at window × cap.
	const maxPrefetch = 4 << 20
	pool := par.New(opts.Workers)
	window := pool.Workers() * 2
	if window < 2 {
		window = 2
	}
	bufs := make([][]byte, len(files))
	for lo := 0; lo < len(files); lo += window {
		hi := lo + window
		if hi > len(files) {
			hi = len(files)
		}
		err := pool.ForEachCtx(ctx, hi-lo, func(k int) error {
			i := lo + k
			if files[i].Size > maxPrefetch {
				return nil
			}
			data, err := files[i].ReadInto(bufs[i])
			if err != nil {
				return fmt.Errorf("vfs: export pack at %q: %w", files[i].Name, err)
			}
			bufs[i] = data
			return nil
		})
		if err != nil {
			sw.Close()
			return nil, err
		}
		for i := lo; i < hi; i++ {
			if cerr := errs.FromContext(ctx); cerr != nil {
				sw.Close()
				return nil, cerr
			}
			f := files[i]
			if f.Size > maxPrefetch || bufs[i] == nil {
				r, err := f.Open()
				if err != nil {
					sw.Close()
					return nil, fmt.Errorf("vfs: export pack at %q: %w", f.Name, err)
				}
				err = closeReader(r, sw.Append(f.Name, f.Size, r))
				if err != nil {
					sw.Close()
					return nil, err
				}
				continue
			}
			if err := sw.AppendBytes(f.Name, bufs[i]); err != nil {
				sw.Close()
				return nil, err
			}
			// Hand the backing array to a file one window ahead for reuse.
			if j := i + window; j < len(files) {
				bufs[j] = bufs[i][:0]
			}
			bufs[i] = nil
		}
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	return sw.Paths(), nil
}

// ImportPack opens pack files — given directly or discovered as "*.pack"
// under directory arguments — into an FS whose files read straight out
// of the packs via shared handles: no per-member descriptors, O(1)
// random access to any member. The returned closer releases the pack
// handles; files obtained from the FS fail after it is closed.
func ImportPack(sources ...string) (*FS, io.Closer, error) {
	return ImportPackCtx(context.Background(), sources...)
}

// ImportPackCtx is ImportPack with cancellation, checked between pack
// discovery and between member registrations; on abort any packs opened
// so far are closed before the typed cancellation error is returned.
func ImportPackCtx(ctx context.Context, sources ...string) (*FS, io.Closer, error) {
	return importPackCtx(ctx, false, sources...)
}

// ImportPackVerified is ImportPack with end-to-end read verification:
// every member reader folds the payload through FNV-64a as it streams
// and fails the read with ErrCorrupt — stage "verify", file = member
// name — if the bytes do not match the checksum the pack index recorded
// at export. The cost is one extra hash pass over whatever is actually
// read; unread members cost nothing. This is the `-verify-reads` mode:
// on-disk corruption (a flipped bit, a torn write) surfaces as a loud
// typed failure at the first scan that touches it, instead of silently
// skewing results.
func ImportPackVerified(sources ...string) (*FS, io.Closer, error) {
	return ImportPackVerifiedCtx(context.Background(), sources...)
}

// ImportPackVerifiedCtx is ImportPackVerified with cancellation,
// checked at the same points as ImportPackCtx.
func ImportPackVerifiedCtx(ctx context.Context, sources ...string) (*FS, io.Closer, error) {
	return importPackCtx(ctx, true, sources...)
}

func importPackCtx(ctx context.Context, verified bool, sources ...string) (*FS, io.Closer, error) {
	paths, err := resolvePackPaths(ctx, sources...)
	if err != nil {
		return nil, nil, err
	}
	set, err := packstore.OpenSet(paths...)
	if err != nil {
		return nil, nil, err
	}
	fs := NewFS()
	for _, p := range set.Packs() {
		p := p
		if cerr := errs.FromContext(ctx); cerr != nil {
			set.Close()
			return nil, nil, cerr
		}
		for _, m := range p.Members() {
			m := m
			// Locality (shard path + member offset) lets fused scans read
			// each pack front to back instead of seeking per member.
			open := func() io.Reader { return p.SectionReader(m) }
			if verified {
				open = func() io.Reader {
					return &verifyReader{r: p.SectionReader(m), name: m.Name, size: m.Size, want: m.Checksum, h: fnv.New64a()}
				}
			}
			f := NewContentFile(m.Name, m.Size, open).WithLocality(p.Path(), m.Offset)
			if err := fs.Add(f); err != nil {
				set.Close()
				return nil, nil, fmt.Errorf("vfs: import pack %s: %w", p.Path(), err)
			}
		}
	}
	return fs, set, nil
}

// verifyReader streams a pack member while folding its FNV-64a sum,
// checking it against the indexed checksum the moment the payload is
// fully delivered. The check fires exactly once, on whichever Read
// completes the payload (or hits EOF), so a scanner that consumes the
// member sees either fully-verified bytes followed by EOF, or a typed
// ErrCorrupt naming the member.
type verifyReader struct {
	r       io.Reader
	name    string
	want    uint64
	h       hash.Hash64
	n       int64
	size    int64
	checked bool
	err     error // sticky verification failure
}

func (v *verifyReader) Read(p []byte) (int, error) {
	// The failure is sticky: io.ReadFull-style consumers drop an error
	// delivered alongside the final bytes, so every later Read must
	// repeat it rather than answer EOF.
	if v.err != nil {
		return 0, v.err
	}
	n, err := v.r.Read(p)
	if n > 0 {
		v.h.Write(p[:n])
		v.n += int64(n)
	}
	if err == io.EOF || (err == nil && v.n >= v.size) {
		if cerr := v.check(); cerr != nil {
			v.err = cerr
			return n, cerr
		}
	}
	return n, err
}

func (v *verifyReader) check() error {
	if v.checked {
		return nil
	}
	v.checked = true
	if v.n != v.size {
		return errs.StageFile("verify", v.name,
			errs.Corrupt("vfs: member %q delivered %d bytes, index says %d", v.name, v.n, v.size))
	}
	if sum := v.h.Sum64(); sum != v.want {
		return errs.StageFile("verify", v.name,
			errs.Corrupt("vfs: member %q checksum %016x != indexed %016x", v.name, sum, v.want))
	}
	return nil
}

// resolvePackPaths expands pack sources — explicit files or directories
// discovered for "*.pack" — into the flat path list both import variants
// open, checking cancellation between sources.
func resolvePackPaths(ctx context.Context, sources ...string) ([]string, error) {
	var paths []string
	for _, src := range sources {
		if cerr := errs.FromContext(ctx); cerr != nil {
			return nil, cerr
		}
		info, err := os.Stat(src)
		if err != nil {
			return nil, fmt.Errorf("vfs: import pack: %w", err)
		}
		if !info.IsDir() {
			paths = append(paths, src)
			continue
		}
		found, err := packstore.Discover(src)
		if err != nil {
			return nil, err
		}
		if len(found) == 0 {
			return nil, fmt.Errorf("vfs: import pack: no *.pack files under %s", src)
		}
		paths = append(paths, found...)
	}
	return paths, nil
}
