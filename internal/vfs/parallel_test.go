package vfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// contentFS builds a file system of deterministic pseudo-random content
// files, including empty files and one above the CombinedChecksum prefetch
// cap so the streaming fold path is exercised.
func contentFS(t *testing.T, n int) *FS {
	t.Helper()
	fs := NewFS()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		size := r.Intn(8000)
		if i%17 == 0 {
			size = 0
		}
		data := make([]byte, size)
		r.Read(data)
		if err := fs.Add(BytesFile(fmt.Sprintf("f/%04d.bin", i), data)); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 5<<20)
	r.Read(big)
	if err := fs.Add(BytesFile("f/big.bin", big)); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestBuildManifestWorkerCountInvariant(t *testing.T) {
	fs := contentFS(t, 120)
	serial, err := BuildManifestWorkers(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 16} {
		m, err := BuildManifestWorkers(fs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(m, serial) {
			t.Errorf("workers=%d: manifest differs from serial", workers)
		}
	}
	if err := serial.Verify(fs); err != nil {
		t.Fatal(err)
	}
}

func TestCombinedChecksumMatchesSerialFold(t *testing.T) {
	fs := contentFS(t, 120)
	// Reference: the plain sequential fold the windowed version replaces.
	h := fnv.New64a()
	for _, f := range fs.List() {
		r, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(h, r); err != nil {
			t.Fatal(err)
		}
	}
	want := h.Sum64()
	got, err := CombinedChecksum(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("combined checksum %x != serial fold %x", got, want)
	}
}

func TestCombinedChecksumMetadataOnlyFails(t *testing.T) {
	fs := NewFS()
	if err := fs.Add(NewFile("meta.bin", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := CombinedChecksum(fs); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

func TestListAndSizesCacheInvalidation(t *testing.T) {
	fs := NewFS()
	for _, name := range []string{"b", "a", "c"} {
		if err := fs.Add(NewFile(name, int64(len(name)))); err != nil {
			t.Fatal(err)
		}
	}
	l1 := fs.List()
	if len(l1) != 3 || l1[0].Name != "a" {
		t.Fatalf("list = %+v", l1)
	}
	if &fs.List()[0] != &l1[0] {
		t.Error("repeated List did not reuse the cached snapshot")
	}
	s1 := fs.Sizes()
	if err := fs.Add(NewFile("aa", 9)); err != nil {
		t.Fatal(err)
	}
	l2 := fs.List()
	if len(l2) != 4 || l2[1].Name != "aa" {
		t.Fatalf("list after add = %+v", l2)
	}
	if len(fs.Sizes()) != 4 || len(s1) != 3 {
		t.Error("sizes cache not invalidated on add")
	}
	if err := fs.Remove("aa"); err != nil {
		t.Fatal(err)
	}
	if len(fs.List()) != 3 || len(fs.Sizes()) != 3 {
		t.Error("caches not invalidated on remove")
	}
}

func TestReadIntoReusesBuffer(t *testing.T) {
	f := BytesFile("x", []byte("hello world"))
	buf := make([]byte, 0, 64)
	data, err := f.ReadInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Errorf("content = %q", data)
	}
	if &data[0] != &buf[:1][0] {
		t.Error("ReadInto allocated despite sufficient capacity")
	}
	// Undersized buffer: a fresh allocation, same content.
	data2, err := f.ReadInto(make([]byte, 0, 4))
	if err != nil || string(data2) != "hello world" {
		t.Errorf("undersized ReadInto: %q, %v", data2, err)
	}
}
