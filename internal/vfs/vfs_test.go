package vfs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestMetadataOnlyFile(t *testing.T) {
	f := NewFile("a.txt", 100)
	if f.HasContent() {
		t.Error("metadata file reports content")
	}
	if _, err := f.Open(); err == nil {
		t.Error("expected error opening metadata-only file")
	}
	if _, err := f.ReadAll(); err == nil {
		t.Error("expected error reading metadata-only file")
	}
}

func TestBytesFile(t *testing.T) {
	f := BytesFile("b.txt", []byte("hello world"))
	if f.Size != 11 {
		t.Errorf("size = %d, want 11", f.Size)
	}
	data, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Errorf("content = %q", data)
	}
	// Re-reading must work (fresh reader per Open).
	data2, err := f.ReadAll()
	if err != nil || !bytes.Equal(data, data2) {
		t.Errorf("second read differs: %q, %v", data2, err)
	}
}

func TestContentFileSizeMismatch(t *testing.T) {
	f := NewContentFile("c.txt", 5, func() io.Reader { return strings.NewReader("too long") })
	if _, err := f.ReadAll(); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestConcatPreservesBytes(t *testing.T) {
	members := []File{
		BytesFile("1", []byte("alpha ")),
		BytesFile("2", []byte("beta ")),
		BytesFile("3", []byte("gamma")),
	}
	merged := Concat("unit-000", members)
	if merged.Size != 16 {
		t.Errorf("merged size = %d, want 16", merged.Size)
	}
	data, err := merged.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "alpha beta gamma" {
		t.Errorf("merged content = %q", data)
	}
}

func TestConcatIndependentOfInputSliceMutation(t *testing.T) {
	members := []File{BytesFile("1", []byte("aa")), BytesFile("2", []byte("bb"))}
	merged := Concat("u", members)
	members[0] = BytesFile("1", []byte("XX"))
	data, err := merged.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "aabb" {
		t.Errorf("merged content changed after input mutation: %q", data)
	}
}

func TestConcatMetadataOnly(t *testing.T) {
	merged := Concat("u", []File{NewFile("1", 10), NewFile("2", 20)})
	if merged.Size != 30 {
		t.Errorf("size = %d, want 30", merged.Size)
	}
	if merged.HasContent() {
		t.Error("metadata-only concat should have no content")
	}
}

func TestConcatEmpty(t *testing.T) {
	merged := Concat("u", nil)
	if merged.Size != 0 || merged.HasContent() {
		t.Errorf("empty concat = %+v", merged)
	}
}

func TestFSAddGetRemove(t *testing.T) {
	fs := NewFS()
	if err := fs.Add(NewFile("x", 5)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Add(NewFile("x", 5)); err == nil {
		t.Error("expected duplicate error")
	}
	if err := fs.Add(NewFile("", 5)); err == nil {
		t.Error("expected empty-name error")
	}
	if err := fs.Add(NewFile("neg", -1)); err == nil {
		t.Error("expected negative-size error")
	}
	f, err := fs.Get("x")
	if err != nil || f.Size != 5 {
		t.Errorf("get = %+v, %v", f, err)
	}
	if _, err := fs.Get("missing"); err == nil {
		t.Error("expected not-found error")
	}
	if fs.Len() != 1 || fs.TotalSize() != 5 {
		t.Errorf("len=%d total=%d", fs.Len(), fs.TotalSize())
	}
	if err := fs.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("x"); err == nil {
		t.Error("expected error removing twice")
	}
	if fs.Len() != 0 || fs.TotalSize() != 0 {
		t.Errorf("after remove: len=%d total=%d", fs.Len(), fs.TotalSize())
	}
}

func TestFSListSorted(t *testing.T) {
	fs := NewFS()
	for _, name := range []string{"c", "a", "b"} {
		if err := fs.Add(NewFile(name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	files := fs.List()
	if files[0].Name != "a" || files[1].Name != "b" || files[2].Name != "c" {
		t.Errorf("list not sorted: %v", files)
	}
	// Add after a List and re-list: still sorted.
	if err := fs.Add(NewFile("0", 1)); err != nil {
		t.Fatal(err)
	}
	files = fs.List()
	if files[0].Name != "0" {
		t.Errorf("re-sort failed: %v", files)
	}
}

func TestFSSizes(t *testing.T) {
	fs := NewFS()
	_ = fs.Add(NewFile("a", 10))
	_ = fs.Add(NewFile("b", 20))
	sizes := fs.Sizes()
	if len(sizes) != 2 || sizes[0] != 10 || sizes[1] != 20 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS()
	want := map[string]string{
		"doc1.txt":        "first document",
		"sub/doc2.txt":    "second document, nested",
		"sub/deep/d3.txt": "third",
	}
	for name, content := range want {
		if err := fs.Add(BytesFile(name, []byte(content))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Export(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(want) {
		t.Fatalf("imported %d files, want %d", back.Len(), len(want))
	}
	for name, content := range want {
		f, err := back.Get(name)
		if err != nil {
			t.Fatalf("get %q: %v", name, err)
		}
		data, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != content {
			t.Errorf("%q content = %q, want %q", name, data, content)
		}
	}
}

func TestExportMetadataOnlyFails(t *testing.T) {
	fs := NewFS()
	_ = fs.Add(NewFile("meta", 10))
	if err := fs.Export(t.TempDir()); err == nil {
		t.Error("expected error exporting metadata-only file")
	}
}

func TestImportDirMissing(t *testing.T) {
	if _, err := ImportDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("expected error importing missing dir")
	}
}

func TestImportOpensLazily(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(path, []byte("live"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the underlying file; a lazy reader must observe the new bytes.
	if err := os.WriteFile(path, []byte("edit"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Get("f.txt")
	data, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "edit" {
		t.Errorf("content = %q, want lazily-read %q", data, "edit")
	}
}

// Property: concatenation of arbitrary byte contents is exactly the joined
// bytes, and the declared size always matches.
func TestConcatProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		members := make([]File, len(chunks))
		var want []byte
		for i, c := range chunks {
			members[i] = BytesFile(fmt.Sprintf("m%d", i), c)
			want = append(want, c...)
		}
		merged := Concat("u", members)
		if len(chunks) == 0 {
			return merged.Size == 0
		}
		got, err := merged.ReadAll()
		if err != nil {
			return false
		}
		return bytes.Equal(got, want) && merged.Size == int64(len(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
