package vfs

import (
	"bytes"
	"io"
	"testing"
)

// trackingReader reports whether it has been closed; it stands in for a
// descriptor-holding member reader.
type trackingReader struct {
	r      io.Reader
	closed bool
}

func (tr *trackingReader) Read(p []byte) (int, error) { return tr.r.Read(p) }
func (tr *trackingReader) Close() error {
	tr.closed = true
	return nil
}

// trackedFile returns a content file whose most recently opened reader is
// observable through the returned pointer slot.
func trackedFile(name string, data []byte, slot **trackingReader) File {
	return NewContentFile(name, int64(len(data)), func() io.Reader {
		tr := &trackingReader{r: bytes.NewReader(data)}
		*slot = tr
		return tr
	})
}

func TestConcatReaderCloseMidStreamReleasesOpenMember(t *testing.T) {
	var first, second *trackingReader
	unit := Concat("unit", []File{
		trackedFile("a", []byte("aaaaaaaaaa"), &first),
		trackedFile("b", []byte("bbbbbbbbbb"), &second),
	})
	r, err := unit.Open()
	if err != nil {
		t.Fatal(err)
	}
	// Read into the first member only: it is open, the second untouched.
	buf := make([]byte, 4)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if first == nil || first.closed {
		t.Fatal("first member should be open mid-stream")
	}
	if second != nil {
		t.Fatal("second member should not have been opened yet")
	}
	c, ok := r.(io.Closer)
	if !ok {
		t.Fatal("concat reader must implement io.Closer")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !first.closed {
		t.Fatal("Close mid-stream did not release the currently open member")
	}
	if second != nil {
		t.Fatal("Close must not open unopened members")
	}
	// Closing twice is a no-op.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestConcatZeroLengthMembers(t *testing.T) {
	unit := Concat("unit", []File{
		BytesFile("empty-head", nil),
		BytesFile("a", []byte("abc")),
		BytesFile("empty-mid", []byte{}),
		BytesFile("b", []byte("def")),
		BytesFile("empty-tail", nil),
	})
	if unit.Size != 6 {
		t.Fatalf("concat size %d, want 6", unit.Size)
	}
	got, err := unit.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdef" {
		t.Fatalf("concat content %q, want %q", got, "abcdef")
	}
	// The scan engine streams concat units too: one pass, exact size.
	sum1, err := Checksum(unit)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := Checksum(BytesFile("flat", []byte("abcdef")))
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatal("zero-length members changed the byte stream")
	}
}

// dribbleReader returns one byte per Read call — a member whose reader
// never fills the caller's buffer.
type dribbleReader struct {
	data []byte
	off  int
}

func (d *dribbleReader) Read(p []byte) (int, error) {
	if d.off >= len(d.data) {
		return 0, io.EOF
	}
	p[0] = d.data[d.off]
	d.off++
	return 1, nil
}

func TestConcatShortReadMembers(t *testing.T) {
	unit := Concat("unit", []File{
		NewContentFile("dribble", 5, func() io.Reader { return &dribbleReader{data: []byte("hello")} }),
		BytesFile("tail", []byte(" world")),
	})
	got, err := unit.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("short-read concat %q, want %q", got, "hello world")
	}
	// The fused checksum path streams the same unit identically.
	sum, err := Checksum(unit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Checksum(BytesFile("flat", []byte("hello world")))
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatal("short reads changed the concat byte stream")
	}
}
