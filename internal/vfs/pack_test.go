package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/errs"
)

// packTestFS builds an in-memory FS with deterministic content: varied
// sizes, nested names, empty files.
func packTestFS(t *testing.T, n int) *FS {
	t.Helper()
	fs := NewFS()
	for i := 0; i < n; i++ {
		size := (i * 131) % 3000
		data := make([]byte, size)
		for j := range data {
			data[j] = byte((i*7 + j) % 253)
		}
		name := fmt.Sprintf("sub%d/doc-%04d.txt", i%4, i)
		if err := fs.Add(BytesFile(name, data)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestExportImportPackRoundTrip(t *testing.T) {
	fs := packTestFS(t, 60)
	want, err := CombinedChecksum(fs)
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, err := BuildManifest(fs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths, err := fs.ExportPack(dir, PackOptions{Prefix: "t", ShardSize: 16 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected multiple shards, got %d", len(paths))
	}

	in, closer, err := ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if in.Len() != fs.Len() {
		t.Fatalf("imported %d files, want %d", in.Len(), fs.Len())
	}
	got, err := CombinedChecksum(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("combined checksum %x != original %x", got, want)
	}
	// Per-file identity, not just the corpus-wide fold.
	if err := wantManifest.Verify(in); err != nil {
		t.Fatalf("manifest over pack import: %v", err)
	}
	// Byte equality file by file.
	for _, f := range fs.List() {
		imp, err := in.Get(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		b, err := imp.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("file %q differs after pack round-trip", f.Name)
		}
	}
}

// TestImportPackVerified pins the -verify-reads contract: a clean pack
// reads identically through the verifying import, and a single flipped
// payload bit on disk turns the damaged member's read into a typed
// ErrCorrupt naming the member — while every other member still reads
// clean. The plain import, by contrast, returns the flipped bytes
// silently; that difference is the whole point of the mode.
func TestImportPackVerified(t *testing.T) {
	fs := packTestFS(t, 40)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{Prefix: "v", ShardSize: 16 * 1024}); err != nil {
		t.Fatal(err)
	}

	in, closer, err := ImportPackVerified(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs.List() {
		imp, err := in.Get(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := f.ReadAll()
		got, err := imp.ReadAll()
		if err != nil {
			t.Fatalf("verified read of clean member %q: %v", f.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file %q differs through verified import", f.Name)
		}
	}
	closer.Close()

	// Flip one payload bit on disk. Locate the victim through the
	// member locality the import recorded (shard path + offset).
	victim := ""
	var shard string
	var off int64
	for _, f := range in.List() {
		if f.Size > 2 {
			victim = f.Name
			shard, off = f.Locality()
			break
		}
	}
	if victim == "" {
		t.Fatal("no member large enough to corrupt")
	}
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	data[off+1] ^= 0x01
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}

	in2, closer2, err := ImportPackVerified(dir)
	if err != nil {
		t.Fatal(err) // index untouched: the import itself still succeeds
	}
	defer closer2.Close()
	bad, err := in2.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	_, err = bad.ReadAll()
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("read of corrupted member: err = %v, want ErrCorrupt", err)
	}
	var se *errs.StageError
	if !errors.As(err, &se) || se.File != victim {
		t.Errorf("corruption blamed %v, want member %q", err, victim)
	}
	for _, f := range in2.List() {
		if f.Name == victim {
			continue
		}
		if _, err := f.ReadAll(); err != nil {
			t.Errorf("undamaged member %q fails verified read: %v", f.Name, err)
		}
	}

	// The unverified import streams the damage through without complaint.
	in3, closer3, err := ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer3.Close()
	f3, err := in3.Get(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f3.ReadAll(); err != nil {
		t.Errorf("plain import surfaced the corruption: %v (verified import exists for this)", err)
	}
}

func TestExportPackDeterministicAcrossWorkers(t *testing.T) {
	fs := packTestFS(t, 45)
	var reference map[string][]byte
	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		paths, err := fs.ExportPack(dir, PackOptions{Prefix: "d", ShardSize: 8 * 1024, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		shards := make(map[string][]byte, len(paths))
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			shards[filepath.Base(p)] = data
		}
		if reference == nil {
			reference = shards
			continue
		}
		if len(shards) != len(reference) {
			t.Fatalf("workers=%d produced %d shards, reference %d", workers, len(shards), len(reference))
		}
		for name, data := range shards {
			if !bytes.Equal(data, reference[name]) {
				t.Fatalf("workers=%d: shard %s differs from reference", workers, name)
			}
		}
	}
}

func TestExportPackTwiceIsByteIdentical(t *testing.T) {
	fs := packTestFS(t, 30)
	dirA, dirB := t.TempDir(), t.TempDir()
	pathsA, err := fs.ExportPack(dirA, PackOptions{ShardSize: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	pathsB, err := fs.ExportPack(dirB, PackOptions{ShardSize: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(pathsA) != len(pathsB) {
		t.Fatalf("shard counts differ: %d vs %d", len(pathsA), len(pathsB))
	}
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d not byte-identical across exports", i)
		}
	}
}

func TestImportPackExplicitFiles(t *testing.T) {
	fs := packTestFS(t, 10)
	dir := t.TempDir()
	paths, err := fs.ExportPack(dir, PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, closer, err := ImportPack(paths...)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if in.Len() != fs.Len() {
		t.Fatalf("imported %d files, want %d", in.Len(), fs.Len())
	}
}

func TestImportPackEmptyDir(t *testing.T) {
	if _, _, err := ImportPack(t.TempDir()); err == nil {
		t.Fatal("ImportPack accepted a directory with no packs")
	}
}

func TestExportPackEmptyFS(t *testing.T) {
	paths, err := NewFS().ExportPack(t.TempDir(), PackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("empty FS exported %d shards", len(paths))
	}
}

func TestImportPackReadAfterCloseFails(t *testing.T) {
	fs := packTestFS(t, 5)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{}); err != nil {
		t.Fatal(err)
	}
	in, closer, err := ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	closer.Close()
	var nonEmpty File
	for _, f := range in.List() {
		if f.Size > 0 {
			nonEmpty = f
			break
		}
	}
	if _, err := nonEmpty.ReadAll(); err == nil {
		t.Fatal("reading a pack-backed file succeeded after Close")
	}
}
