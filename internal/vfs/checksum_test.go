package vfs

import "testing"

func TestChecksumDeterministicAndDiscriminating(t *testing.T) {
	a := BytesFile("a", []byte("hello"))
	sum1, err := Checksum(a)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := Checksum(a)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Error("checksum not deterministic")
	}
	b := BytesFile("b", []byte("hellp"))
	sumB, err := Checksum(b)
	if err != nil {
		t.Fatal(err)
	}
	if sumB == sum1 {
		t.Error("different content, same checksum")
	}
	if _, err := Checksum(NewFile("meta", 5)); err == nil {
		t.Error("expected error for metadata-only file")
	}
}

func TestManifestVerify(t *testing.T) {
	fs := NewFS()
	_ = fs.Add(BytesFile("x", []byte("one")))
	_ = fs.Add(BytesFile("y", []byte("two")))
	m, err := BuildManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(fs); err != nil {
		t.Fatalf("self-verify failed: %v", err)
	}

	// Missing file.
	fs2 := NewFS()
	_ = fs2.Add(BytesFile("x", []byte("one")))
	if err := m.Verify(fs2); err == nil {
		t.Error("expected error for missing file")
	}
	// Extra file.
	fs3 := NewFS()
	_ = fs3.Add(BytesFile("x", []byte("one")))
	_ = fs3.Add(BytesFile("y", []byte("two")))
	_ = fs3.Add(BytesFile("z", []byte("three")))
	if err := m.Verify(fs3); err == nil {
		t.Error("expected error for extra file")
	}
	// Corrupted content (same size).
	fs4 := NewFS()
	_ = fs4.Add(BytesFile("x", []byte("one")))
	_ = fs4.Add(BytesFile("y", []byte("tWo")))
	if err := m.Verify(fs4); err == nil {
		t.Error("expected error for corrupted content")
	}
	// Wrong size.
	fs5 := NewFS()
	_ = fs5.Add(BytesFile("x", []byte("one")))
	_ = fs5.Add(BytesFile("y", []byte("twooo")))
	if err := m.Verify(fs5); err == nil {
		t.Error("expected error for wrong size")
	}
}

func TestCombinedChecksumReshapingInvariant(t *testing.T) {
	// The byte stream is identical whether the corpus is one file or many:
	// merging moves boundaries, never bytes.
	parts := NewFS()
	_ = parts.Add(BytesFile("a", []byte("abc")))
	_ = parts.Add(BytesFile("b", []byte("defg")))
	_ = parts.Add(BytesFile("c", []byte("hi")))

	merged := NewFS()
	_ = merged.Add(Concat("unit-0", []File{
		BytesFile("a", []byte("abc")),
		BytesFile("b", []byte("defg")),
		BytesFile("c", []byte("hi")),
	}))

	sumParts, err := CombinedChecksum(parts)
	if err != nil {
		t.Fatal(err)
	}
	sumMerged, err := CombinedChecksum(merged)
	if err != nil {
		t.Fatal(err)
	}
	if sumParts != sumMerged {
		t.Error("reshaping changed the combined byte stream")
	}

	// But different bytes change it.
	other := NewFS()
	_ = other.Add(BytesFile("a", []byte("abX")))
	_ = other.Add(BytesFile("b", []byte("defg")))
	_ = other.Add(BytesFile("c", []byte("hi")))
	sumOther, err := CombinedChecksum(other)
	if err != nil {
		t.Fatal(err)
	}
	if sumOther == sumParts {
		t.Error("different corpus, same combined checksum")
	}
}
