package vfs

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scan"
)

// dirTestTree writes a small on-disk corpus with nested directories, an
// empty file and some non-ASCII content, returning its root.
func dirTestTree(t *testing.T, files int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < files; i++ {
		rel := filepath.Join("sub", "deep")
		if i%3 == 0 {
			rel = "."
		}
		if err := os.MkdirAll(filepath.Join(dir, rel), 0o755); err != nil {
			t.Fatal(err)
		}
		content := strings.Repeat("the quick brown fox. ", i*7+1) + "héllo\n"
		if i == files/2 {
			content = "" // one empty file: mmap of length 0 must degrade cleanly
		}
		name := filepath.Join(dir, rel, "f"+string(rune('a'+i%26))+strings.Repeat("x", i%4)+".txt")
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestImportDirMappedMatchesImportDir: the mapped import exposes the same
// corpus as the streaming import — same names, sizes and bytes — plus a
// raw view per file.
func TestImportDirMappedMatchesImportDir(t *testing.T) {
	dir := dirTestTree(t, 17)
	plain, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := ImportDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	if mapped.Len() != plain.Len() {
		t.Fatalf("mapped import has %d files, plain has %d", mapped.Len(), plain.Len())
	}
	for _, pf := range plain.List() {
		mf, err := mapped.Get(pf.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !mf.HasRaw() {
			t.Fatalf("mapped file %q has no raw view", mf.Name)
		}
		if pf.HasRaw() {
			t.Fatalf("plain import file %q unexpectedly has a raw view", pf.Name)
		}
		if mf.Size != pf.Size {
			t.Fatalf("file %q size differs: plain %d mapped %d", pf.Name, pf.Size, mf.Size)
		}
		want, err := pf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := mf.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, raw) {
			t.Fatalf("file %q raw view differs from on-disk content", pf.Name)
		}
		// The mapped import's streaming path reads through the same
		// mapping, so it must agree byte for byte too.
		streamed, err := mf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, streamed) {
			t.Fatalf("file %q streamed content differs under mapped import", pf.Name)
		}
	}
}

// TestMappedDirScanBitIdenticalToStreamingScan is the acceptance
// differential: a fused scan over the mapped dir import is bit-identical
// to the same scan over the streaming import, at workers 1, 2 and 8 down
// to 3-byte blocks.
func TestMappedDirScanBitIdenticalToStreamingScan(t *testing.T) {
	dir := dirTestTree(t, 23)
	plain, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := ImportDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	for _, workers := range []int{1, 2, 8} {
		for _, block := range []int{3, 4096} {
			opts := scan.Options{Workers: workers, BlockSize: block}
			ck := scan.NewChecksum()
			if err := scan.Run(context.Background(), Sources(plain.List()), opts, ck); err != nil {
				t.Fatalf("workers=%d block=%d streaming scan: %v", workers, block, err)
			}
			mk := scan.NewChecksum()
			if err := scan.Run(context.Background(), Sources(mapped.List()), opts, mk); err != nil {
				t.Fatalf("workers=%d block=%d mapped scan: %v", workers, block, err)
			}
			a, b := ck.Sums(), mk.Sums()
			if len(a) != len(b) {
				t.Fatalf("workers=%d block=%d: %d sums vs %d", workers, block, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d block=%d file %d: streaming %+v != mapped %+v", workers, block, i, a[i], b[i])
				}
			}
		}
	}
}

// TestImportDirMappedScanOpensNoFiles proves the delivery-parity claim:
// a scan over the mapped import never touches the streaming Open path —
// every file arrives through its raw view.
func TestImportDirMappedScanOpensNoFiles(t *testing.T) {
	dir := dirTestTree(t, 12)
	mapped, closer, err := ImportDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	// Wrap every source's streaming opener with a counter; the raw path
	// must win so the counter stays at zero.
	opens := 0
	srcs := Sources(mapped.List())
	for i := range srcs {
		orig := srcs[i].Content
		srcs[i].Content = scan.OpenFunc(func() (io.Reader, error) {
			opens++
			return orig.Open()
		})
	}
	if err := scan.Run(context.Background(), srcs, scan.Options{Workers: 4}, scan.NewChecksum()); err != nil {
		t.Fatal(err)
	}
	if opens != 0 {
		t.Fatalf("mapped dir scan opened %d streaming readers, want 0", opens)
	}
}

// TestImportDirMappedCancelled: a pre-cancelled context aborts the import
// with the typed error and releases any mappings made so far.
func TestImportDirMappedCancelled(t *testing.T) {
	dir := dirTestTree(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ImportDirMappedCtx(ctx, dir); err == nil {
		t.Fatal("cancelled mapped dir import succeeded")
	}
}

// TestImportDirMappedCloseInvalidatesStreaming: after the closer runs,
// streaming reads fail loudly instead of touching a dead mapping — on
// both the mmap and fallback builds.
func TestImportDirMappedCloseInvalidatesStreaming(t *testing.T) {
	dir := dirTestTree(t, 6)
	mapped, closer, err := ImportDirMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := mapped.List()
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	var nonEmpty *File
	for i := range files {
		if files[i].Size > 0 {
			nonEmpty = &files[i]
			break
		}
	}
	if nonEmpty == nil {
		t.Fatal("corpus has no non-empty file")
	}
	if _, err := nonEmpty.ReadAll(); err == nil || !strings.Contains(err.Error(), "after mapped dir import close") {
		t.Fatalf("read after close returned %v, want loud close error", err)
	}
}
