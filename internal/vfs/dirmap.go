package vfs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/errs"
	"repro/internal/packstore"
)

// ImportDirMapped loads every regular file under dir — the same corpus
// ImportDir builds — through per-file read-only memory mappings, so every
// imported file carries a zero-copy raw view alongside its streaming
// content source. Scans over the returned FS take the engine's
// borrowed-window path: no per-file opens during the scan, no
// block-buffer copies, the kernels read straight out of the page cache.
// This is delivery parity for unpacked corpora: -dir gets the same
// zero-copy windowing ImportPackMapped gives pack shards.
//
// Sizes come from each file's stat at map time, and the streaming source
// reads through the mapping itself, so the raw and streamed views are one
// consistent snapshot even if the underlying files change afterwards. On
// platforms (or builds) without mmap the mappings degrade to
// heap-materialised buffers with identical behavior, exactly like the
// pack Reader's packstore_nommap fallback.
//
// The returned closer unmaps every file; all raw views and streaming
// readers obtained from the FS are invalid after it runs. Callers that
// need bytes past that point must copy them first.
func ImportDirMapped(dir string) (*FS, io.Closer, error) {
	return ImportDirMappedCtx(context.Background(), dir)
}

// ImportDirMappedCtx is ImportDirMapped with cancellation, checked
// between file mappings; on abort every mapping made so far is released
// before the typed cancellation error is returned.
func ImportDirMappedCtx(ctx context.Context, dir string) (*FS, io.Closer, error) {
	// Walk first, map second: the walk order defines the corpus exactly as
	// ImportDir does, and collecting paths up front keeps the mapping loop
	// a flat, cancellable pass.
	type entry struct{ name, path string }
	var entries []entry
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		entries = append(entries, entry{name: filepath.ToSlash(rel), path: path})
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("vfs: import mapped %s: %w", dir, err)
	}

	maps := &mappingSet{}
	fail := func(err error) (*FS, io.Closer, error) {
		maps.Close()
		return nil, nil, err
	}
	fs := NewFS()
	for _, e := range entries {
		if cerr := errs.FromContext(ctx); cerr != nil {
			return fail(cerr)
		}
		m, err := packstore.MapFile(e.path)
		if err != nil {
			return fail(fmt.Errorf("vfs: import mapped %s: %w", dir, err))
		}
		maps.ms = append(maps.ms, m)
		// Scans walk each file front to back; tell the OS so readahead
		// stays aggressive. Best effort by contract.
		_ = m.AdviseSequential()
		data := m.Data()
		name := e.name
		f := NewContentFile(name, int64(len(data)), func() io.Reader {
			// Loud failure after the import's closer runs, matching the
			// pack reader's read-after-close contract.
			if m.Closed() {
				return &errReader{fmt.Errorf("vfs: %s: read after mapped dir import close", name)}
			}
			return &sliceReader{data: m.Data()}
		}).WithRawBytes(data)
		if err := fs.Add(f); err != nil {
			return fail(fmt.Errorf("vfs: import mapped %s: %w", dir, err))
		}
	}
	return fs, maps, nil
}

// mappingSet closes a group of file mappings as one unit, keeping the
// first error.
type mappingSet struct {
	ms []*packstore.FileMapping
}

func (s *mappingSet) Close() error {
	var first error
	for _, m := range s.ms {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
