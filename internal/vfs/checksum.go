package vfs

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/par"
)

// Content integrity: reshaping must never corrupt data, and exported unit
// files must be provably identical to their sources. Checksums are
// FNV-64a — not cryptographic, but collision-safe enough for manifest
// verification and fully deterministic.

// copyBufPool recycles the streaming windows used by Checksum and
// CombinedChecksum; without it every io.Copy allocated a fresh 32 kB buffer,
// which at manifest scale (one per file) dominated the allocation profile.
var copyBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 64*1024)
		return &buf
	},
}

// hashReader streams r through FNV-64a using a pooled window buffer.
func hashReader(r io.Reader) (uint64, error) {
	h := fnv.New64a()
	bp := copyBufPool.Get().(*[]byte)
	_, err := io.CopyBuffer(h, r, *bp)
	copyBufPool.Put(bp)
	if err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// Checksum streams a file's content through FNV-64a, closing the reader
// afterwards when the content source hands out closable readers.
func Checksum(f File) (uint64, error) {
	r, err := f.Open()
	if err != nil {
		return 0, err
	}
	sum, err := hashReader(r)
	if err := closeReader(r, err); err != nil {
		return 0, fmt.Errorf("vfs: checksum %q: %w", f.Name, err)
	}
	return sum, nil
}

// Manifest maps file names to (size, checksum).
type Manifest map[string]ManifestEntry

// ManifestEntry records one file's identity.
type ManifestEntry struct {
	Size     int64
	Checksum uint64
}

// BuildManifest checksums every content-backed file of the file system,
// fanning the per-file FNV streams out over all CPUs. Each file's checksum
// depends only on its own bytes, so the manifest is identical at any worker
// count; errors surface in List order like the serial loop's.
func BuildManifest(fs *FS) (Manifest, error) {
	return BuildManifestWorkersCtx(context.Background(), fs, 0)
}

// BuildManifestCtx is BuildManifest with cancellation: checksum dispatch
// stops once ctx is done and the call returns a typed cancellation error
// (errors.Is against errs.ErrCancelled / errs.ErrDeadline).
func BuildManifestCtx(ctx context.Context, fs *FS) (Manifest, error) {
	return BuildManifestWorkersCtx(ctx, fs, 0)
}

// BuildManifestWorkers is BuildManifest with an explicit worker count
// (0 or negative means GOMAXPROCS); workers=1 is the serial reference.
func BuildManifestWorkers(fs *FS, workers int) (Manifest, error) {
	return BuildManifestWorkersCtx(context.Background(), fs, workers)
}

// BuildManifestWorkersCtx is the cancellable, worker-bounded manifest
// builder all the other forms delegate to. A run that completes without
// cancellation is bit-identical to the non-ctx variants at any worker
// count.
func BuildManifestWorkersCtx(ctx context.Context, fs *FS, workers int) (Manifest, error) {
	files := fs.List()
	sums := make([]uint64, len(files))
	err := par.New(workers).ForEachCtx(ctx, len(files), func(i int) error {
		sum, err := Checksum(files[i])
		if err != nil {
			return err
		}
		sums[i] = sum
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := make(Manifest, len(files))
	for i, f := range files {
		m[f.Name] = ManifestEntry{Size: f.Size, Checksum: sums[i]}
	}
	return m, nil
}

// Verify checks the file system against the manifest: every manifest entry
// must exist with matching size and checksum, and the file system must not
// contain extra files. The first violation is returned as an error.
func (m Manifest) Verify(fs *FS) error {
	if fs.Len() != len(m) {
		return errs.Corrupt("vfs: manifest has %d entries, file system %d files", len(m), fs.Len())
	}
	// Deterministic iteration for stable error messages.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := m[name]
		f, err := fs.Get(name)
		if err != nil {
			return fmt.Errorf("vfs: manifest entry %q missing: %w", name, err)
		}
		if f.Size != want.Size {
			return errs.StageFile("manifest-verify", name,
				errs.Corrupt("vfs: size %d != manifest %d", f.Size, want.Size))
		}
		sum, err := Checksum(f)
		if err != nil {
			return err
		}
		if sum != want.Checksum {
			return errs.StageFile("manifest-verify", name,
				errs.Corrupt("vfs: checksum %x != manifest %x", sum, want.Checksum))
		}
	}
	return nil
}

// CombinedChecksum hashes the concatenation of all files in List order —
// the whole-corpus identity. Two file systems holding the same bytes in
// the same order (regardless of file boundaries) produce the same value,
// which is exactly the reshaping invariant: merging files moves boundaries
// but never bytes.
//
// The hash itself is inherently sequential (each byte folds into the
// running state), but content materialisation is not: a window of upcoming
// files is read ahead concurrently while earlier bytes are folded in List
// order, so the expensive part — regenerating file bytes — overlaps. The
// resulting value is bit-identical to the fully serial fold.
func CombinedChecksum(fs *FS) (uint64, error) {
	return CombinedChecksumCtx(context.Background(), fs)
}

// CombinedChecksumCtx is CombinedChecksum with cancellation: the context
// is checked between prefetch windows (and inside the read-ahead fan-out),
// so an abort lands within one window of work. A run that completes is
// bit-identical to the non-ctx form.
func CombinedChecksumCtx(ctx context.Context, fs *FS) (uint64, error) {
	// Files above the prefetch cap are streamed at fold time instead of
	// being materialised, bounding read-ahead memory at window × cap.
	const maxPrefetch = 4 << 20
	files := fs.List()
	h := fnv.New64a()
	pool := par.Default()
	window := pool.Workers() * 2
	if window < 2 {
		window = 2
	}
	bufs := make([][]byte, len(files))
	for lo := 0; lo < len(files); lo += window {
		hi := lo + window
		if hi > len(files) {
			hi = len(files)
		}
		err := pool.ForEachCtx(ctx, hi-lo, func(k int) error {
			i := lo + k
			if files[i].Size > maxPrefetch {
				return nil
			}
			data, err := files[i].ReadInto(bufs[i])
			if err != nil {
				return fmt.Errorf("vfs: combined checksum at %q: %w", files[i].Name, err)
			}
			bufs[i] = data
			return nil
		})
		if err != nil {
			return 0, err
		}
		for i := lo; i < hi; i++ {
			if files[i].Size > maxPrefetch || bufs[i] == nil {
				r, err := files[i].Open()
				if err != nil {
					return 0, fmt.Errorf("vfs: combined checksum at %q: %w", files[i].Name, err)
				}
				bp := copyBufPool.Get().(*[]byte)
				_, err = io.CopyBuffer(h, r, *bp)
				copyBufPool.Put(bp)
				if err := closeReader(r, err); err != nil {
					return 0, fmt.Errorf("vfs: combined checksum at %q: %w", files[i].Name, err)
				}
				continue
			}
			h.Write(bufs[i])
			// Hand the backing array to a file one window ahead for reuse.
			if j := i + window; j < len(files) {
				bufs[j] = bufs[i][:0]
			}
			bufs[i] = nil
		}
	}
	return h.Sum64(), nil
}
