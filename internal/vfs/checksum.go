package vfs

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/scan"
)

// Content integrity: reshaping must never corrupt data, and exported unit
// files must be provably identical to their sources. Checksums are
// FNV-64a — not cryptographic, but collision-safe enough for manifest
// verification and fully deterministic.
//
// The corpus-wide operations here are thin wrappers over the fused scan
// engine: BuildManifest and Manifest.Verify run a checksum-only scan.Run
// (pooled block buffers and recycled kernel sets replace the per-file
// hasher/window allocations the old loop paid), and CombinedChecksum is a
// combined-checksum kernel under scan.RunOrdered (the fold order defines
// the value, so it keeps List order with windowed content prefetch).

// copyBufPool recycles the streaming window used by single-file Checksum;
// without it every io.Copy allocated a fresh 32 kB buffer.
var copyBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 64*1024)
		return &buf
	},
}

// hashReader streams r through FNV-64a using a pooled window buffer.
func hashReader(r io.Reader) (uint64, error) {
	h := fnv.New64a()
	bp := copyBufPool.Get().(*[]byte)
	_, err := io.CopyBuffer(h, r, *bp)
	copyBufPool.Put(bp)
	if err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// Checksum streams a file's content through FNV-64a, closing the reader
// afterwards when the content source hands out closable readers.
func Checksum(f File) (uint64, error) {
	r, err := f.Open()
	if err != nil {
		return 0, err
	}
	sum, err := hashReader(r)
	if err := closeReader(r, err); err != nil {
		return 0, fmt.Errorf("vfs: checksum %q: %w", f.Name, err)
	}
	return sum, nil
}

// Manifest maps file names to (size, checksum).
type Manifest map[string]ManifestEntry

// ManifestEntry records one file's identity.
type ManifestEntry struct {
	Size     int64
	Checksum uint64
}

// checksumScan runs a checksum-only fused scan over the files — each file
// opened and streamed exactly once, shard-sequentially for pack-backed
// corpora — and returns the per-file sums.
func checksumScan(ctx context.Context, files []File, workers int) ([]scan.FileSum, error) {
	ck := scan.NewChecksum()
	srcs := scan.SequentialOrder(Sources(files))
	if err := scan.Run(ctx, srcs, scan.Options{Workers: workers}, ck); err != nil {
		return nil, err
	}
	return ck.Sums(), nil
}

// BuildManifest checksums every content-backed file of the file system via
// a checksum-only fused scan over all CPUs. Each file's checksum depends
// only on its own bytes, so the manifest is identical at any worker count.
func BuildManifest(fs *FS) (Manifest, error) {
	return BuildManifestWorkersCtx(context.Background(), fs, 0)
}

// BuildManifestCtx is BuildManifest with cancellation: checksum dispatch
// stops once ctx is done and the call returns a typed cancellation error
// (errors.Is against errs.ErrCancelled / errs.ErrDeadline).
func BuildManifestCtx(ctx context.Context, fs *FS) (Manifest, error) {
	return BuildManifestWorkersCtx(ctx, fs, 0)
}

// BuildManifestWorkers is BuildManifest with an explicit worker count
// (0 or negative means GOMAXPROCS); workers=1 is the serial reference.
func BuildManifestWorkers(fs *FS, workers int) (Manifest, error) {
	return BuildManifestWorkersCtx(context.Background(), fs, workers)
}

// BuildManifestWorkersCtx is the cancellable, worker-bounded manifest
// builder all the other forms delegate to. A run that completes without
// cancellation is bit-identical to the non-ctx variants at any worker
// count.
func BuildManifestWorkersCtx(ctx context.Context, fs *FS, workers int) (Manifest, error) {
	files := fs.List()
	sums, err := checksumScan(ctx, files, workers)
	if err != nil {
		return nil, err
	}
	m := make(Manifest, len(files))
	for _, s := range sums {
		m[s.Name] = ManifestEntry{Size: s.Size, Checksum: s.Sum}
	}
	return m, nil
}

// Verify checks the file system against the manifest: every manifest entry
// must exist with matching size and checksum, and the file system must not
// contain extra files. The first violation (in name order) is returned as
// an error. Content is checksummed by a fused scan — one open and one
// streaming read per file, shard-sequential for packed corpora.
func (m Manifest) Verify(fs *FS) error {
	return m.VerifyCtx(context.Background(), fs)
}

// VerifyCtx is Verify with cancellation, following the usual typed-error
// contract.
func (m Manifest) VerifyCtx(ctx context.Context, fs *FS) error {
	if fs.Len() != len(m) {
		return errs.Corrupt("vfs: manifest has %d entries, file system %d files", len(m), fs.Len())
	}
	// Deterministic iteration for stable error messages: cheap metadata
	// checks first, in name order.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]File, 0, len(m))
	for _, name := range names {
		want := m[name]
		f, err := fs.Get(name)
		if err != nil {
			return fmt.Errorf("vfs: manifest entry %q missing: %w", name, err)
		}
		if f.Size != want.Size {
			return errs.StageFile("manifest-verify", name,
				errs.Corrupt("vfs: size %d != manifest %d", f.Size, want.Size))
		}
		files = append(files, f)
	}
	sums, err := checksumScan(ctx, files, 0)
	if err != nil {
		return err
	}
	byName := make(map[string]uint64, len(sums))
	for _, s := range sums {
		byName[s.Name] = s.Sum
	}
	for _, name := range names {
		if sum := byName[name]; sum != m[name].Checksum {
			return errs.StageFile("manifest-verify", name,
				errs.Corrupt("vfs: checksum %x != manifest %x", sum, m[name].Checksum))
		}
	}
	return nil
}

// CombinedChecksum hashes the concatenation of all files in List order —
// the whole-corpus identity. Two file systems holding the same bytes in
// the same order (regardless of file boundaries) produce the same value,
// which is exactly the reshaping invariant: merging files moves boundaries
// but never bytes.
//
// The hash itself is inherently sequential (each byte folds into the
// running state), so this cannot be a per-file parallel scan; it is a
// combined-checksum kernel under scan.RunOrdered, which prefetches a
// window of upcoming files concurrently while earlier bytes fold in List
// order. The resulting value is bit-identical to the fully serial fold.
func CombinedChecksum(fs *FS) (uint64, error) {
	return CombinedChecksumCtx(context.Background(), fs)
}

// CombinedChecksumCtx is CombinedChecksum with cancellation: the context
// is checked between prefetch windows (and inside the read-ahead fan-out),
// so an abort lands within one window of work. A run that completes is
// bit-identical to the non-ctx form.
func CombinedChecksumCtx(ctx context.Context, fs *FS) (uint64, error) {
	ck := scan.NewCombined()
	// List order, not SequentialOrder: the fold order defines the value.
	if err := scan.RunOrdered(ctx, Sources(fs.List()), scan.Options{}, ck); err != nil {
		return 0, err
	}
	return ck.Sum(), nil
}
