package vfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Content integrity: reshaping must never corrupt data, and exported unit
// files must be provably identical to their sources. Checksums are
// FNV-64a — not cryptographic, but collision-safe enough for manifest
// verification and fully deterministic.

// Checksum streams a file's content through FNV-64a.
func Checksum(f File) (uint64, error) {
	r, err := f.Open()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	if _, err := io.Copy(h, r); err != nil {
		return 0, fmt.Errorf("vfs: checksum %q: %w", f.Name, err)
	}
	return h.Sum64(), nil
}

// Manifest maps file names to (size, checksum).
type Manifest map[string]ManifestEntry

// ManifestEntry records one file's identity.
type ManifestEntry struct {
	Size     int64
	Checksum uint64
}

// BuildManifest checksums every content-backed file of the file system.
func BuildManifest(fs *FS) (Manifest, error) {
	m := make(Manifest, fs.Len())
	for _, f := range fs.List() {
		sum, err := Checksum(f)
		if err != nil {
			return nil, err
		}
		m[f.Name] = ManifestEntry{Size: f.Size, Checksum: sum}
	}
	return m, nil
}

// Verify checks the file system against the manifest: every manifest entry
// must exist with matching size and checksum, and the file system must not
// contain extra files. The first violation is returned as an error.
func (m Manifest) Verify(fs *FS) error {
	if fs.Len() != len(m) {
		return fmt.Errorf("vfs: manifest has %d entries, file system %d files", len(m), fs.Len())
	}
	// Deterministic iteration for stable error messages.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := m[name]
		f, err := fs.Get(name)
		if err != nil {
			return fmt.Errorf("vfs: manifest entry %q missing: %w", name, err)
		}
		if f.Size != want.Size {
			return fmt.Errorf("vfs: %q size %d != manifest %d", name, f.Size, want.Size)
		}
		sum, err := Checksum(f)
		if err != nil {
			return err
		}
		if sum != want.Checksum {
			return fmt.Errorf("vfs: %q checksum %x != manifest %x", name, sum, want.Checksum)
		}
	}
	return nil
}

// CombinedChecksum hashes the concatenation of all files in List order —
// the whole-corpus identity. Two file systems holding the same bytes in
// the same order (regardless of file boundaries) produce the same value,
// which is exactly the reshaping invariant: merging files moves boundaries
// but never bytes.
func CombinedChecksum(fs *FS) (uint64, error) {
	h := fnv.New64a()
	for _, f := range fs.List() {
		r, err := f.Open()
		if err != nil {
			return 0, err
		}
		if _, err := io.Copy(h, r); err != nil {
			return 0, fmt.Errorf("vfs: combined checksum at %q: %w", f.Name, err)
		}
	}
	return h.Sum64(), nil
}
