package vfs

import "repro/internal/scan"

// Source adapts the file to a scan engine input, carrying pack locality
// so SequentialOrder can keep pack reads sequential on disk. Raw-backed
// files (mapped pack imports) additionally carry the zero-copy view, so
// the engine feeds kernels borrowed windows instead of streaming through
// a pooled buffer.
func (f File) Source() scan.Source {
	src := scan.Source{
		Name:    f.Name,
		Size:    f.Size,
		Shard:   f.shard,
		Offset:  f.shardOff,
		Content: &f,
	}
	if f.hasRaw {
		src.Raw = &f
	}
	return src
}

// Sources adapts a file list to scan engine inputs, preserving order. The
// sources reference the given slice's elements directly (a *File in an
// interface word costs no allocation), so the slice must stay alive and
// unmutated for the duration of the scan.
func Sources(files []File) []scan.Source {
	out := make([]scan.Source, len(files))
	for i := range files {
		f := &files[i]
		out[i] = scan.Source{
			Name:    f.Name,
			Size:    f.Size,
			Shard:   f.shard,
			Offset:  f.shardOff,
			Content: f,
		}
		if f.hasRaw {
			out[i].Raw = f
		}
	}
	return out
}
