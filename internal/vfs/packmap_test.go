package vfs

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/scan"
)

// TestImportPackMappedMatchesImportPack: the mapped import exposes the
// same corpus as the copying import — same names, sizes, locality and
// bytes — plus a raw view per file.
func TestImportPackMappedMatchesImportPack(t *testing.T) {
	fs := packTestFS(t, 60)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{Prefix: "t", ShardSize: 16 * 1024}); err != nil {
		t.Fatal(err)
	}

	plain, plainCloser, err := ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer plainCloser.Close()
	mapped, mappedCloser, err := ImportPackMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mappedCloser.Close()

	if mapped.Len() != plain.Len() {
		t.Fatalf("mapped import has %d files, plain has %d", mapped.Len(), plain.Len())
	}
	for _, pf := range plain.List() {
		mf, err := mapped.Get(pf.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !mf.HasRaw() {
			t.Fatalf("mapped file %q has no raw view", mf.Name)
		}
		if pf.HasRaw() {
			t.Fatalf("plain import file %q unexpectedly has a raw view", pf.Name)
		}
		pShard, pOff := pf.Locality()
		mShard, mOff := mf.Locality()
		if pShard != mShard || pOff != mOff {
			t.Fatalf("file %q locality differs: plain (%s,%d) mapped (%s,%d)", pf.Name, pShard, pOff, mShard, mOff)
		}
		want, err := pf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := mf.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, raw) {
			t.Fatalf("file %q raw view differs from streamed content", pf.Name)
		}
		// The streaming path of the mapped import must agree too (it reads
		// through the same mapping).
		streamed, err := mf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, streamed) {
			t.Fatalf("file %q streamed content differs under mapped import", pf.Name)
		}
	}
}

// TestMappedScanBitIdenticalToCopyingScan is the acceptance differential:
// a fused scan over the mapped import is bit-identical to the same scan
// over the copying import, at workers 1, 2 and 8.
func TestMappedScanBitIdenticalToCopyingScan(t *testing.T) {
	fs := packTestFS(t, 80)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{Prefix: "t", ShardSize: 32 * 1024}); err != nil {
		t.Fatal(err)
	}
	plain, plainCloser, err := ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer plainCloser.Close()
	mapped, mappedCloser, err := ImportPackMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mappedCloser.Close()

	for _, workers := range []int{1, 2, 8} {
		opts := scan.Options{Workers: workers, BlockSize: 4096}
		ck := scan.NewChecksum()
		if err := scan.Run(context.Background(), scan.SequentialOrder(Sources(plain.List())), opts, ck); err != nil {
			t.Fatalf("workers=%d copying scan: %v", workers, err)
		}
		mk := scan.NewChecksum()
		if err := scan.Run(context.Background(), scan.SequentialOrder(Sources(mapped.List())), opts, mk); err != nil {
			t.Fatalf("workers=%d mapped scan: %v", workers, err)
		}
		a, b := ck.Sums(), mk.Sums()
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d sums vs %d", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d file %d: copying %+v != mapped %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestImportPackMappedCancelled: a pre-cancelled context aborts the
// import with the typed error and leaks no mappings (the failure path
// closes them; nothing to assert beyond a clean error return under
// -race).
func TestImportPackMappedCancelled(t *testing.T) {
	fs := packTestFS(t, 10)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{Prefix: "t"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ImportPackMappedCtx(ctx, dir); err == nil {
		t.Fatal("cancelled mapped import succeeded")
	}
}

// TestImportPackMappedCloseInvalidatesStreaming: after the closer runs,
// streaming reads fail loudly instead of touching a dead mapping — on
// both the mmap and fallback builds, since Close detaches the pack's
// reader either way.
func TestImportPackMappedCloseInvalidatesStreaming(t *testing.T) {
	fs := packTestFS(t, 6)
	dir := t.TempDir()
	if _, err := fs.ExportPack(dir, PackOptions{Prefix: "t"}); err != nil {
		t.Fatal(err)
	}
	mapped, closer, err := ImportPackMapped(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := mapped.List()
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	var nonEmpty *File
	for i := range files {
		if files[i].Size > 0 {
			nonEmpty = &files[i]
			break
		}
	}
	if nonEmpty == nil {
		t.Fatal("corpus has no non-empty file")
	}
	if _, err := nonEmpty.ReadAll(); err == nil || !strings.Contains(err.Error(), "after Reader.Close") {
		t.Fatalf("read after close returned %v, want loud close error", err)
	}
}
