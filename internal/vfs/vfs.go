// Package vfs provides a lightweight virtual file system used to model
// corpora of millions of small files without holding their bytes in memory.
//
// A File is (name, size, content source). The content source is optional:
// the packing and provisioning layers consume only metadata, while the real
// text-processing kernels (grep, POS tagging) open files and stream bytes
// that are materialised deterministically on demand. Concatenation — the
// paper's reshaping operation — is a zero-copy view over member files, so a
// merged unit file always contains exactly the bytes of its members in
// order.
package vfs

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/errs"
	"repro/internal/par"
)

// Opener produces a fresh reader over a file's content. Implementations
// must return independent readers on each call so files can be read
// concurrently and repeatedly.
type Opener func() io.Reader

// File is a named, sized blob with optional lazily-materialised content.
// Pack-backed files additionally carry locality — which shard container
// holds their bytes and at what offset — so scans can order reads
// sequentially on disk.
type File struct {
	Name    string
	Size    int64
	content Opener

	shard    string // container (pack shard) path, "" for standalone files
	shardOff int64  // byte offset of the content within the container

	// raw, when hasRaw, is the file's complete content as a borrowed view —
	// typically a window into a memory-mapped pack shard. Scans use it for
	// the zero-copy path; the view is only valid while its owner (the pack
	// reader) stays open. Deliberately separate from BytesFile content: a
	// file having in-memory bytes is not the same as a file whose owner
	// guarantees them stable for a whole scan.
	raw    []byte
	hasRaw bool
}

// NewFile creates a metadata-only file (no content source).
func NewFile(name string, size int64) File {
	return File{Name: name, Size: size}
}

// NewContentFile creates a file whose bytes come from open. The declared
// size must match the content length; ReadAll validates this.
func NewContentFile(name string, size int64, open Opener) File {
	return File{Name: name, Size: size, content: open}
}

// BytesFile creates a file backed by an in-memory byte slice. The slice is
// not copied; callers must not mutate it afterwards.
func BytesFile(name string, data []byte) File {
	return File{
		Name: name,
		Size: int64(len(data)),
		content: func() io.Reader {
			return &sliceReader{data: data}
		},
	}
}

// sliceReader is a minimal io.Reader over a byte slice (bytes.NewReader
// would also do; this keeps File free of retained Reader state).
type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// WithLocality returns a copy of the file annotated with its physical
// location: the shard container path holding its bytes and the offset
// within it. ImportPack sets this so SequentialOrder can walk each pack
// front to back.
func (f File) WithLocality(shard string, offset int64) File {
	f.shard = shard
	f.shardOff = offset
	return f
}

// Locality returns the file's shard container path and byte offset
// within it; shard is "" for files that are not pack-backed.
func (f File) Locality() (shard string, offset int64) { return f.shard, f.shardOff }

// WithRawBytes returns a copy of the file annotated with a borrowed
// zero-copy view of its complete content. data must hold exactly Size
// bytes and must stay valid and immutable for as long as the file is
// scanned — ImportPackMapped sets this to a window of the shard mapping,
// valid until the import's closer runs. Scans given a raw view skip the
// streaming Open path entirely.
func (f File) WithRawBytes(data []byte) File {
	f.raw = data
	f.hasRaw = true
	return f
}

// HasRaw reports whether the file carries a zero-copy content view.
func (f File) HasRaw() bool { return f.hasRaw }

// Bytes returns the file's zero-copy content view. It implements
// scan.BytesSource for raw-backed files; calling it on a file without a
// raw view is an error (scans route those through Open instead).
func (f *File) Bytes() ([]byte, error) {
	if !f.hasRaw {
		return nil, fmt.Errorf("vfs: file %q has no raw content view", f.Name)
	}
	return f.raw, nil
}

// HasContent reports whether the file carries a content source.
func (f File) HasContent() bool { return f.content != nil }

// Open returns a new reader over the file's content. It returns an error
// for metadata-only files.
func (f File) Open() (io.Reader, error) {
	if f.content == nil {
		return nil, fmt.Errorf("vfs: file %q is metadata-only", f.Name)
	}
	return f.content(), nil
}

// ReadAll materialises the full content of the file and validates that its
// length matches the declared size. The size is known up front, so the
// buffer is allocated once at exactly that size and filled with ReadFull —
// no io.ReadAll growth-and-copy doubling, which matters when concatenated
// unit files run to hundreds of megabytes.
func (f File) ReadAll() ([]byte, error) {
	return f.ReadInto(nil)
}

// closeReader closes r when it holds an OS resource (ImportDir openers
// hand out bare *os.File readers), keeping err if one is already set.
// Content sources that are plain in-memory readers are unaffected.
func closeReader(r io.Reader, err error) error {
	if c, ok := r.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			return cerr
		}
	}
	return err
}

// ReadInto is ReadAll with buffer reuse: when cap(buf) >= f.Size the content
// is read into buf's backing array and no allocation happens. The returned
// slice always has length f.Size and is only valid until the buffer's next
// reuse. Pass nil to allocate fresh. The reader is closed after draining
// when the content source hands out closable readers (real files), so
// reading at manifest scale does not exhaust descriptors.
func (f File) ReadInto(buf []byte) ([]byte, error) {
	r, err := f.Open()
	if err != nil {
		return nil, err
	}
	data, err := readFull(f, r, buf)
	if err := closeReader(r, err); err != nil {
		return nil, err
	}
	return data, nil
}

func readFull(f File, r io.Reader, buf []byte) ([]byte, error) {
	if int64(cap(buf)) >= f.Size {
		buf = buf[:f.Size]
	} else {
		buf = make([]byte, f.Size)
	}
	n, err := io.ReadFull(r, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return nil, fmt.Errorf("vfs: file %q declared %d bytes but content has %d", f.Name, f.Size, n)
	}
	if err != nil {
		return nil, fmt.Errorf("vfs: reading %q: %w", f.Name, err)
	}
	// The source must be exhausted: extra bytes are as corrupt as missing
	// ones. A non-EOF error here is the source's own verdict (verified
	// pack readers report checksum mismatches on the drain read) and
	// outranks the byte count.
	var probe [1]byte
	if m, perr := r.Read(probe[:]); m > 0 {
		return nil, fmt.Errorf("vfs: file %q declared %d bytes but content has %d", f.Name, f.Size, n+m)
	} else if perr != nil && perr != io.EOF {
		return nil, fmt.Errorf("vfs: reading %q: %w", f.Name, perr)
	}
	return buf, nil
}

// Concat builds a single merged file whose content is the concatenation of
// the members' contents in order — the reshaped "unit file" of the paper.
// The members are captured by value; later mutation of the input slice does
// not affect the merged file. Metadata-only members produce a metadata-only
// merged file.
func Concat(name string, members []File) File {
	var size int64
	allContent := true
	captured := append([]File(nil), members...)
	for _, m := range captured {
		size += m.Size
		if !m.HasContent() {
			allContent = false
		}
	}
	f := File{Name: name, Size: size}
	if allContent && len(captured) > 0 {
		f.content = func() io.Reader {
			readers := make([]io.Reader, len(captured))
			lazies := make([]*lazyReader, len(captured))
			for i := range captured {
				l := &lazyReader{f: captured[i]}
				lazies[i] = l
				readers[i] = l
			}
			return &concatReader{Reader: io.MultiReader(readers...), members: lazies}
		}
	}
	return f
}

// lazyReader opens its member on first Read and closes it at EOF, so a
// merged unit of thousands of disk-backed members holds at most one
// descriptor at a time instead of one per member for the whole stream.
type lazyReader struct {
	f    File
	r    io.Reader
	done bool
}

func (l *lazyReader) Read(p []byte) (int, error) {
	if l.done {
		return 0, io.EOF
	}
	if l.r == nil {
		r, err := l.f.Open()
		if err != nil {
			l.done = true
			return 0, err
		}
		l.r = r
	}
	n, err := l.r.Read(p)
	if err == io.EOF {
		if cerr := l.Close(); cerr != nil {
			return n, cerr
		}
	}
	return n, err
}

// Close releases the member's reader early (abandoned streams); closing
// an unopened or finished lazyReader is a no-op.
func (l *lazyReader) Close() error {
	if l.done && l.r == nil {
		return nil
	}
	l.done = true
	r := l.r
	l.r = nil
	if c, ok := r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// concatReader is the merged stream handed out by Concat. It implements
// io.Closer so consumers that close after draining (ReadInto, checksum
// paths) release any member descriptors still open mid-stream.
type concatReader struct {
	io.Reader
	members []*lazyReader
}

func (c *concatReader) Close() error {
	var first error
	for _, l := range c.members {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrNotFound is returned by FS lookups for unknown names. It wraps
// errs.ErrNotFound, so callers can branch on either sentinel with
// errors.Is.
var ErrNotFound = fmt.Errorf("vfs: file not found: %w", errs.ErrNotFound)

// FS is an ordered collection of Files keyed by name.
type FS struct {
	files map[string]File
	order []string // insertion order; List sorts lazily
	dirty bool     // order needs re-sorting before deterministic listing
	total int64

	// Sorted snapshots, built on first List/Sizes call and served until the
	// next mutation. Pack/plan/probe layers call List and Sizes in tight
	// loops over an immutable corpus; rebuilding an n-entry slice per call
	// was pure allocation churn.
	listCache  []File
	sizesCache []int64
}

// invalidate drops the cached listings after a mutation.
func (fs *FS) invalidate() {
	fs.listCache = nil
	fs.sizesCache = nil
}

// NewFS returns an empty file system.
func NewFS() *FS {
	return &FS{files: make(map[string]File)}
}

// Add inserts a file, rejecting duplicates and negative sizes.
func (fs *FS) Add(f File) error {
	if f.Name == "" {
		return fmt.Errorf("vfs: empty file name")
	}
	if f.Size < 0 {
		return fmt.Errorf("vfs: file %q has negative size %d", f.Name, f.Size)
	}
	if _, exists := fs.files[f.Name]; exists {
		return fmt.Errorf("vfs: file %q already exists", f.Name)
	}
	fs.files[f.Name] = f
	fs.order = append(fs.order, f.Name)
	fs.dirty = true
	fs.total += f.Size
	fs.invalidate()
	return nil
}

// Remove deletes a file by name.
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(fs.files, name)
	fs.total -= f.Size
	for i, n := range fs.order {
		if n == name {
			fs.order = append(fs.order[:i], fs.order[i+1:]...)
			break
		}
	}
	fs.invalidate()
	return nil
}

// Get looks up a file by name.
func (fs *FS) Get(name string) (File, error) {
	f, ok := fs.files[name]
	if !ok {
		return File{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// Len returns the number of files.
func (fs *FS) Len() int { return len(fs.files) }

// TotalSize returns the summed size of all files.
func (fs *FS) TotalSize() int64 { return fs.total }

// List returns all files sorted by name, for deterministic iteration. The
// returned slice is a cached snapshot shared between calls; callers must
// not modify it.
func (fs *FS) List() []File {
	if fs.listCache != nil {
		return fs.listCache
	}
	if fs.dirty {
		sort.Strings(fs.order)
		fs.dirty = false
	}
	out := make([]File, 0, len(fs.order))
	for _, name := range fs.order {
		out = append(out, fs.files[name])
	}
	fs.listCache = out
	return out
}

// Sizes returns the sizes of all files in List order. Like List, the slice
// is cached until the next mutation and must not be modified.
func (fs *FS) Sizes() []int64 {
	if fs.sizesCache != nil {
		return fs.sizesCache
	}
	files := fs.List()
	sizes := make([]int64, len(files))
	for i, f := range files {
		sizes[i] = f.Size
	}
	fs.sizesCache = sizes
	return sizes
}

// Export writes every content-backed file under dir on the real file
// system, creating parent directories as needed. Metadata-only files cause
// an error: exporting would silently lose data otherwise. Files are
// materialised and written concurrently (content sources are independent by
// the Opener contract); on failure the reported error is the one from the
// first file in List order, matching the serial behaviour.
func (fs *FS) Export(dir string) error {
	return fs.ExportCtx(context.Background(), dir)
}

// ExportCtx is Export with cancellation: no new files are written once
// ctx is done (files already being written complete), and the call
// returns a typed cancellation error.
func (fs *FS) ExportCtx(ctx context.Context, dir string) error {
	files := fs.List()
	return par.Default().ForEachCtx(ctx, len(files), func(i int) error {
		f := files[i]
		path, err := exportPath(dir, f.Name)
		if err != nil {
			return err
		}
		data, err := f.ReadAll()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("vfs: export: %w", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return fmt.Errorf("vfs: export: %w", err)
		}
		return nil
	})
}

// exportPath joins a slash-separated file name onto the output directory,
// rejecting names that would escape it (absolute paths or ".." traversal).
// Corpus names come from ImportDir, generators or pack indexes; a crafted
// name like "../x" must fail loudly instead of writing outside dir.
func exportPath(dir, name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	sep := string(filepath.Separator)
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+sep) {
		return "", fmt.Errorf("vfs: export: file name %q escapes output directory", name)
	}
	return filepath.Join(dir, clean), nil
}

// ImportDir loads every regular file under dir on the real file system into
// a new FS, with names relative to dir (slash-separated).
func ImportDir(dir string) (*FS, error) {
	fs := NewFS()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		p := path
		return fs.Add(NewContentFile(name, info.Size(), func() io.Reader {
			f, err := os.Open(p)
			if err != nil {
				return &errReader{err}
			}
			return f
		}))
	})
	if err != nil {
		return nil, fmt.Errorf("vfs: import %s: %w", dir, err)
	}
	return fs, nil
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }
