package vfs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// On-disk round-trips: the in-memory FS paths have always been
// round-trip tested; these cover the real-file-system legs the CLIs use
// (ImportDir → Export → ImportDir) plus descriptor hygiene.

// writeTree materialises a small nested directory of real files.
func writeTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{
		"a.txt":           []byte("alpha"),
		"empty.txt":       {},
		"sub/b.txt":       []byte(strings.Repeat("bravo ", 1000)),
		"sub/deep/c.bin":  {0, 1, 2, 3, 255, 254, 7},
		"sub/deep/d.txt":  []byte("delta"),
		"another/e.fancy": []byte("echo echo echo"),
	}
	for name, data := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

func TestImportExportImportRoundTrip(t *testing.T) {
	src := t.TempDir()
	files := writeTree(t, src)

	fs1, err := ImportDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if fs1.Len() != len(files) {
		t.Fatalf("imported %d files, want %d", fs1.Len(), len(files))
	}
	manifest, err := BuildManifest(fs1)
	if err != nil {
		t.Fatal(err)
	}

	out := t.TempDir()
	if err := fs1.Export(out); err != nil {
		t.Fatal(err)
	}
	fs2, err := ImportDir(out)
	if err != nil {
		t.Fatal(err)
	}

	// Byte equality per file against the original tree.
	for name, want := range files {
		f, err := fs2.Get(name)
		if err != nil {
			t.Fatalf("file %q lost in round-trip: %v", name, err)
		}
		got, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file %q differs after ImportDir→Export→ImportDir", name)
		}
	}
	// Manifest built over the first import must verify the second — the
	// real-directory counterpart of the in-memory reshaping invariant.
	if err := manifest.Verify(fs2); err != nil {
		t.Fatalf("manifest verify over re-import: %v", err)
	}
	c1, err := CombinedChecksum(fs1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CombinedChecksum(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("combined checksum changed across round-trip: %x != %x", c1, c2)
	}
}

func TestManifestVerifyDetectsOnDiskCorruption(t *testing.T) {
	src := t.TempDir()
	writeTree(t, src)
	fs1, err := ImportDir(src)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := BuildManifest(fs1)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte of a real file; a fresh import must fail verification.
	path := filepath.Join(src, "a.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := ImportDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := manifest.Verify(fs2); err == nil {
		t.Fatal("manifest missed a flipped byte on disk")
	}
}

func TestExportRejectsPathTraversal(t *testing.T) {
	for _, name := range []string{"../escape.txt", "a/../../escape.txt", "/abs.txt"} {
		t.Run(name, func(t *testing.T) {
			fs := NewFS()
			if err := fs.Add(BytesFile(name, []byte("x"))); err != nil {
				t.Fatal(err)
			}
			parent := t.TempDir()
			out := filepath.Join(parent, "out")
			if err := fs.Export(out); err == nil {
				t.Fatalf("Export accepted traversal name %q", name)
			}
			// Nothing may have been written outside the output directory.
			if _, err := os.Stat(filepath.Join(parent, "escape.txt")); err == nil {
				t.Fatal("Export wrote outside the output directory")
			}
		})
	}
}

func TestExportAllowsDotDotInFileName(t *testing.T) {
	// ".." as a name substring (not a path element) is legitimate.
	fs := NewFS()
	if err := fs.Add(BytesFile("notes..old.txt", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := fs.Export(t.TempDir()); err != nil {
		t.Fatalf("Export rejected a benign name: %v", err)
	}
}

// openFDs counts this process's open descriptors via /proc (linux); the
// fd-leak regression tests skip elsewhere.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

func TestReadPathsDoNotLeakDescriptors(t *testing.T) {
	src := t.TempDir()
	const n = 64
	for i := 0; i < n; i++ {
		name := filepath.Join(src, fmt.Sprintf("f%03d.txt", i))
		if err := os.WriteFile(name, []byte(strings.Repeat("x", 100+i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := ImportDir(src)
	if err != nil {
		t.Fatal(err)
	}
	before := openFDs(t)

	// Every disk-touching read path: ReadAll, Checksum, BuildManifest,
	// CombinedChecksum, Concat streaming.
	for _, f := range fs.List() {
		if _, err := f.ReadAll(); err != nil {
			t.Fatal(err)
		}
		if _, err := Checksum(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BuildManifest(fs); err != nil {
		t.Fatal(err)
	}
	if _, err := CombinedChecksum(fs); err != nil {
		t.Fatal(err)
	}
	merged := Concat("unit", fs.List())
	if _, err := merged.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := Checksum(merged); err != nil {
		t.Fatal(err)
	}

	after := openFDs(t)
	if after > before {
		t.Fatalf("descriptor leak: %d open before reads, %d after", before, after)
	}
}
