package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/errs"
)

// TestForEachCtxMatchesForEachOnSuccess is the bit-identity acceptance
// check: an uncancelled ForEachCtx run produces exactly the per-slot
// results of the non-ctx variant at worker counts {1, 2, 8}.
func TestForEachCtxMatchesForEachOnSuccess(t *testing.T) {
	n := 1009
	fill := func(run func(p *Pool, out []int64) error, workers int) []int64 {
		t.Helper()
		out := make([]int64, n)
		if err := run(New(workers), out); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	plain := func(p *Pool, out []int64) error {
		return p.ForEach(n, func(i int) error {
			out[i] = int64(i)*7919 + 13
			return nil
		})
	}
	withCtx := func(p *Pool, out []int64) error {
		return p.ForEachCtx(context.Background(), n, func(i int) error {
			out[i] = int64(i)*7919 + 13
			return nil
		})
	}
	want := fill(plain, 1)
	for _, workers := range []int{1, 2, 8} {
		for name, run := range map[string]func(*Pool, []int64) error{"ForEach": plain, "ForEachCtx": withCtx} {
			got := fill(run, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: slot %d = %d, want %d", name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestForEachCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		var ran atomic.Int64
		err := New(workers).ForEachCtx(ctx, 1000, func(i int) error {
			ran.Add(1)
			return nil
		})
		var ce *CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: got %v, want *CancelledError", workers, err)
		}
		if !errors.Is(err, errs.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: %v not Is-clean against ErrCancelled/context.Canceled", workers, err)
		}
		if got := ran.Load(); got > int64(workers) {
			t.Fatalf("workers=%d: %d tasks ran after pre-cancellation", workers, got)
		}
	}
}

func TestForEachCtxCancelMidFlight(t *testing.T) {
	for _, workers := range []int{2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		n := 100_000
		err := New(workers).ForEachCtx(ctx, n, func(i int) error {
			if ran.Add(1) == 64 {
				cancel()
			}
			time.Sleep(10 * time.Microsecond)
			return nil
		})
		cancel()
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: got %v, want ErrCancelled", workers, err)
		}
		// Dispatch must stop promptly: well under the full task count.
		if got := ran.Load(); got >= int64(n) {
			t.Fatalf("workers=%d: all %d tasks ran despite cancellation", workers, got)
		}
	}
}

func TestForEachCtxDeadlineMapsToErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := New(4).ForEachCtx(ctx, 100, func(i int) error { return nil })
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("errors.Is(%v, ErrDeadline) = false", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(%v, context.DeadlineExceeded) = false", err)
	}
	if errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("deadline expiry categorised as plain cancellation: %v", err)
	}
}

// TestForEachCtxTaskErrorBeatsCancellation: when a dispatched task failed,
// the lowest-index task error is reported even if the context was also
// cancelled by the time the fan-out returns.
func TestForEachCtxTaskErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := New(4).ForEachCtx(ctx, 100, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the task error", err)
	}
}

func TestMapCtxSuccessAndCancel(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, err := MapCtx(context.Background(), New(workers), 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, New(4), 100, func(i int) (int, error) { return i, nil })
	if out != nil || !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled MapCtx: (%v, %v)", out, err)
	}
}

func TestSumChunksCtxSuccessAndCancel(t *testing.T) {
	n := 10_001
	want, err := New(1).SumChunks(n, func(lo, hi int) (int64, error) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := New(workers).SumChunksCtx(context.Background(), n, func(lo, hi int) (int64, error) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s, nil
		})
		if err != nil || got != want {
			t.Fatalf("workers=%d: (%d, %v), want %d", workers, got, err, want)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := New(workers).SumChunksCtx(ctx, n, func(lo, hi int) (int64, error) { return 0, nil })
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("workers=%d: got %v, want ErrCancelled", workers, err)
		}
	}
}
