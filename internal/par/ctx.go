package par

import (
	"context"
	"errors"

	"repro/internal/errs"
)

// CancelledError reports a fan-out stopped by context cancellation or
// deadline expiry before (or while) dispatching its tasks. It wraps the
// context's own error and the matching errs sentinel, so both
//
//	errors.Is(err, context.Canceled)           // or DeadlineExceeded
//	errors.Is(err, errs.ErrCancelled)          // or errs.ErrDeadline
//
// hold. Work already dispatched when the cancellation landed has run to
// completion; no per-slot result written before the stop is torn down.
type CancelledError struct {
	// Err is the context's termination cause (ctx.Err()).
	Err error
}

// Error renders the underlying context error with a par: prefix.
func (e *CancelledError) Error() string { return "par: fan-out cancelled: " + e.Err.Error() }

// Unwrap exposes both the context error and the errs category sentinel,
// making the error errors.Is-clean against either vocabulary.
func (e *CancelledError) Unwrap() []error {
	cat := errs.ErrCancelled
	if errors.Is(e.Err, context.DeadlineExceeded) {
		cat = errs.ErrDeadline
	}
	return []error{e.Err, cat}
}

// ForEachCtx is ForEach with cancellation: before claiming each index the
// worker checks ctx, and once ctx is done no new indices are dispatched
// (in-flight tasks still complete). On cancellation it returns ctx.Err()
// wrapped in *CancelledError — unless some dispatched task already failed,
// in which case the lowest-index task error wins, exactly as in ForEach.
// A run that completes without cancellation is bit-identical to ForEach
// at any worker count.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	return p.forEach(ctx, n, fn)
}

// MapCtx is Map with cancellation, built on ForEachCtx: results come back
// in index order, a successful run is bit-identical to Map, and a
// cancelled run returns *CancelledError with the results discarded.
func MapCtx[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.forEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SumChunksCtx is SumChunks with cancellation: chunk dispatch stops once
// ctx is done, and the cancelled call returns *CancelledError. Successful
// runs remain bit-identical to SumChunks at any worker count (integer
// partials summed in fixed range order).
func (p *Pool) SumChunksCtx(ctx context.Context, n int, chunk func(lo, hi int) (int64, error)) (int64, error) {
	return p.sumChunks(ctx, n, chunk)
}
