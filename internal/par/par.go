// Package par is the repository's single bounded, deterministic
// parallel-execution primitive. Every concurrent fan-out in the tree —
// corpus materialisation, checksum manifests, the grep/POS kernels, the
// workload estimator and the experiment drivers — runs on this pool, so
// there is exactly one concurrency idiom to reason about.
//
// Determinism contract: a fan-out over n tasks produces bit-identical
// results at any worker count, including 1, because
//
//   - each task writes only to its own pre-allocated slot (ForEach/Map),
//   - errors are reported by lowest task index, not completion order,
//   - reductions (SumChunks) combine integer partials in fixed chunk
//     order, and integer addition is associative, and
//   - tasks that need randomness derive a private seed from their index
//     (see stats.SeedFor) instead of sharing a sequential stream.
//
// Error handling is fast-fail: once any task records an error, no new
// indices are dispatched (in-flight tasks still run to completion), so
// wasted work after an early failure is bounded by the worker count
// instead of scaling with n. The reported error is still the one from the
// lowest failing index: claims are issued in index order, so by the time
// any failure is observed every lower index has already been claimed and
// will finish — the lowest failing index always runs.
//
// The Ctx variants (ForEachCtx, MapCtx, SumChunksCtx) additionally stop
// dispatching when the context is cancelled or its deadline expires,
// returning ctx.Err() wrapped in *CancelledError. On success they are
// bit-identical to the non-ctx forms at any worker count.
//
// Panics inside a task propagate and crash the process, as they would in
// a serial loop.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value is not useful; construct
// with New. Pools are cheap (two words) and carry no goroutines between
// calls: workers are spawned per fan-out and torn down when it returns,
// so an idle Pool costs nothing.
type Pool struct {
	workers int
}

// New returns a pool running at most `workers` tasks concurrently.
// Zero or negative means runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Default returns a pool sized to the machine (GOMAXPROCS at call time).
func Default() *Pool { return New(0) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// goroutines. Dispatch is fast-fail: after the first recorded error no
// new indices are claimed, though tasks already in flight complete. The
// returned error is the one from the lowest failing index, so the
// outcome does not depend on scheduling. fn must confine its writes to
// per-index state (or otherwise synchronise).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.forEach(nil, n, fn)
}

// forEach is the shared fan-out core. A nil ctx means "never cancelled"
// (the non-ctx entry points); a non-nil ctx adds a cancellation check
// before each claim and maps expiry to *CancelledError.
func (p *Pool) forEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil {
				if cerr := ctx.Err(); cerr != nil {
					return &CancelledError{Err: cerr}
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var stop atomic.Bool
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Lowest failing index wins. Claims are monotonic, so when any task
	// observed a failure, every lower index had already been claimed and
	// ran to completion — the minimum failing index is always present.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return &CancelledError{Err: cerr}
		}
	}
	return nil
}

// Map runs fn over [0, n) on the pool and returns the results in index
// order. On error the first (lowest-index) error is returned and the
// results are discarded.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SumChunks splits [0, n) into one contiguous range per worker, computes
// chunk(lo, hi) for each range concurrently, and returns the sum of the
// partials in range order. Because the partials are integers, the result
// is bit-identical to a serial accumulation at any worker count. The
// returned error is the one from the lowest-index failing range.
func (p *Pool) SumChunks(n int, chunk func(lo, hi int) (int64, error)) (int64, error) {
	return p.sumChunks(nil, n, chunk)
}

func (p *Pool) sumChunks(ctx context.Context, n int, chunk func(lo, hi int) (int64, error)) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return 0, &CancelledError{Err: cerr}
			}
		}
		return chunk(0, n)
	}
	step := (n + w - 1) / w
	ranges := make([][2]int, 0, w)
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	partials := make([]int64, len(ranges))
	err := p.forEach(ctx, len(ranges), func(i int) error {
		v, err := chunk(ranges[i][0], ranges[i][1])
		if err != nil {
			return err
		}
		partials[i] = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, v := range partials {
		total += v
	}
	return total, nil
}
