// Package par is the repository's single bounded, deterministic
// parallel-execution primitive. Every concurrent fan-out in the tree —
// corpus materialisation, checksum manifests, the grep/POS kernels, the
// workload estimator and the experiment drivers — runs on this pool, so
// there is exactly one concurrency idiom to reason about.
//
// Determinism contract: a fan-out over n tasks produces bit-identical
// results at any worker count, including 1, because
//
//   - each task writes only to its own pre-allocated slot (ForEach/Map),
//   - errors are reported by lowest task index, not completion order,
//   - reductions (SumChunks) combine integer partials in fixed chunk
//     order, and integer addition is associative, and
//   - tasks that need randomness derive a private seed from their index
//     (see stats.SeedFor) instead of sharing a sequential stream.
//
// Panics inside a task propagate and crash the process, as they would in
// a serial loop.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value is not useful; construct
// with New. Pools are cheap (two words) and carry no goroutines between
// calls: workers are spawned per fan-out and torn down when it returns,
// so an idle Pool costs nothing.
type Pool struct {
	workers int
}

// New returns a pool running at most `workers` tasks concurrently.
// Zero or negative means runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Default returns a pool sized to the machine (GOMAXPROCS at call time).
func Default() *Pool { return New(0) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// goroutines. fn is invoked exactly once per index regardless of errors;
// the returned error is the one from the lowest failing index, so the
// outcome does not depend on scheduling. fn must confine its writes to
// per-index state (or otherwise synchronise).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) on the pool and returns the results in index
// order. On error the first (lowest-index) error is returned and the
// results are discarded.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SumChunks splits [0, n) into one contiguous range per worker, computes
// chunk(lo, hi) for each range concurrently, and returns the sum of the
// partials in range order. Because the partials are integers, the result
// is bit-identical to a serial accumulation at any worker count. The
// returned error is the one from the lowest-index failing range.
func (p *Pool) SumChunks(n int, chunk func(lo, hi int) (int64, error)) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return chunk(0, n)
	}
	step := (n + w - 1) / w
	ranges := make([][2]int, 0, w)
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	partials, err := Map(p, len(ranges), func(i int) (int64, error) {
		return chunk(ranges[i][0], ranges[i][1])
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, v := range partials {
		total += v
	}
	return total, nil
}
