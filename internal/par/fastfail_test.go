package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachFastFailBoundsWastedWork is the regression test for the
// fast-fail gap: after an early failure, the number of additional tasks
// dispatched must be bounded by a small constant, not scale with n.
// Before fast-fail, a failure at index 3 still dispatched all n tasks.
func TestForEachFastFailBoundsWastedWork(t *testing.T) {
	boom := errors.New("boom")
	for _, n := range []int{1_000, 100_000} {
		for _, workers := range []int{2, 8} {
			var ran atomic.Int64
			err := New(workers).ForEach(n, func(i int) error {
				ran.Add(1)
				if i == 3 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("n=%d workers=%d: got %v", n, workers, err)
			}
			// Each worker can dispatch at most a handful of tasks before
			// observing the stop flag; generously allow 64 per worker. The
			// point is that the bound is independent of n.
			if got, limit := ran.Load(), int64(workers*64); got > limit {
				t.Fatalf("n=%d workers=%d: %d tasks ran after early failure (limit %d)", n, workers, got, limit)
			}
		}
	}
}

// TestForEachSerialFastFail: the w<=1 path must also stop at the first
// error instead of continuing through the remaining indices.
func TestForEachSerialFastFail(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := New(1).ForEach(1000, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial path ran %d tasks after failure at index 3", ran)
	}
}
