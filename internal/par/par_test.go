package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		n := 257
		counts := make([]atomic.Int32, n)
		err := New(workers).ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		err := New(workers).ForEach(100, func(i int) error {
			switch i {
			case 90:
				return errHigh
			case 7:
				return errLow
			}
			return nil
		})
		if err != errLow {
			t.Errorf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := Default().ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(New(workers), 50, func(i int) (string, error) {
			return fmt.Sprintf("task-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if want := fmt.Sprintf("task-%02d", i); v != want {
				t.Fatalf("workers=%d: out[%d]=%q", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(New(4), 10, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if err != boom || out != nil {
		t.Fatalf("got (%v, %v)", out, err)
	}
}

func TestSumChunksDeterministic(t *testing.T) {
	n := 10_001
	sum := func(workers int) int64 {
		t.Helper()
		got, err := New(workers).SumChunks(n, func(lo, hi int) (int64, error) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)*3 + 1
			}
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := sum(1)
	for _, workers := range []int{2, 3, 7, runtime.NumCPU()} {
		if got := sum(workers); got != serial {
			t.Errorf("workers=%d: sum %d != serial %d", workers, got, serial)
		}
	}
}

func TestSumChunksError(t *testing.T) {
	boom := errors.New("bad chunk")
	_, err := New(4).SumChunks(1000, func(lo, hi int) (int64, error) {
		if lo <= 500 && 500 < hi {
			return 0, boom
		}
		return 0, nil
	})
	if err != boom {
		t.Fatalf("got %v", err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := Default().Workers(); w < 1 {
		t.Fatalf("default workers %d", w)
	}
	if w := New(-5).Workers(); w < 1 {
		t.Fatalf("negative-normalised workers %d", w)
	}
}
