package core

import (
	"context"

	"repro/internal/errs"
	"repro/internal/scan"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Measurement is the artefact of one fused scan over a content-backed
// corpus: checksums, text statistics, optional multi-pattern match counts
// and optional per-file POS complexity — all from exactly one open and
// one streaming read of every file. This replaces the measure/verify
// pattern of separate CombinedChecksum + ParallelGrep + ComplexityOf
// passes, each of which re-read the whole corpus.
type Measurement struct {
	Files int
	Bytes int64

	// Manifest holds every file's size and FNV-64a checksum.
	Manifest vfs.Manifest

	// Stats aggregates token/sentence/line statistics corpus-wide;
	// FileStats holds them per file in scan order.
	Stats     textproc.TextStats
	Lines     int64
	FileStats []textproc.FileStats

	// Patterns echoes MeasureOptions.Patterns; PatternTotals counts
	// corpus-wide matches per pattern in the same order, PatternFiles per
	// file, and Matches sums across patterns. Empty without patterns.
	Patterns      []string
	PatternTotals []int64
	PatternFiles  []textproc.FilePatternCount
	Matches       int64

	// Complexity maps file name to POS complexity (nil unless requested),
	// in the exact shape RunProfileCtx consumes.
	Complexity map[string]float64
}

// MeasureOptions selects which kernels a fused measurement runs beyond
// the always-on checksum and text-stats pair.
type MeasureOptions struct {
	// Workers bounds the scan fan-out (0 = GOMAXPROCS).
	Workers int
	// Patterns adds a multi-pattern grep kernel (Aho–Corasick, one
	// automaton pass for all patterns).
	Patterns []string
	// FoldCase makes the pattern match ASCII case-insensitive.
	FoldCase bool
	// Complexity adds the POS-complexity kernel, producing the per-file
	// profile RunProfileCtx consumes.
	Complexity bool
	// Tagger optionally supplies a prebuilt tagger for the complexity
	// kernel; nil means build one on demand.
	Tagger *textproc.Tagger
}

// Measure runs one fused scan over every file of the corpus.
func Measure(corpusFS *vfs.FS, opts MeasureOptions) (*Measurement, error) {
	return MeasureCtx(context.Background(), corpusFS, opts)
}

// MeasureCtx is Measure with cancellation. The scan reads pack-backed
// corpora shard-sequentially; results are bit-identical at any worker
// count. Errors carry the "measure" stage and the usual typed sentinels.
// Corpora imported with vfs.ImportPackMapped automatically take the
// zero-copy scan path: their sources carry raw views, so the kernels read
// borrowed windows of the mapping.
func MeasureCtx(ctx context.Context, corpusFS *vfs.FS, opts MeasureOptions) (*Measurement, error) {
	return MeasureSourcesCtx(ctx, scan.SequentialOrder(vfs.Sources(corpusFS.List())), opts)
}

// MeasureSourcesCtx is the source-level Measure: it runs the fused
// measurement over an explicit, already-ordered source list. MeasureCtx
// is a thin wrapper; callers that build sources themselves (pre-sliced
// corpora, hand-picked shard subsets, benchmark baselines) use this
// directly rather than materialising a throwaway FS.
func MeasureSourcesCtx(ctx context.Context, srcs []scan.Source, opts MeasureOptions) (*Measurement, error) {
	ck := scan.NewChecksum()
	kernels := []scan.Kernel{ck}

	// With complexity requested, one fused kernel computes stats and
	// complexity from a single shared StreamAnalyzer pass; running the
	// separate kernels side by side would tokenise every block twice.
	var st *textproc.StatsKernel
	var sc *workload.StatsComplexityKernel
	if opts.Complexity {
		tagger := opts.Tagger
		if tagger == nil {
			tagger = textproc.NewTagger()
		}
		sc = workload.NewStatsComplexityKernel(tagger)
		kernels = append(kernels, sc)
	} else {
		st = textproc.NewStatsKernel()
		kernels = append(kernels, st)
	}

	var mk *textproc.MatchKernel
	if len(opts.Patterns) > 0 {
		var ms *textproc.MultiSearcher
		var err error
		if opts.FoldCase {
			ms, err = textproc.NewFoldedMultiSearcher(opts.Patterns)
		} else {
			ms, err = textproc.NewMultiSearcher(opts.Patterns)
		}
		if err != nil {
			return nil, errs.Stage("measure", errs.Invalid("%v", err))
		}
		mk = textproc.NewMatchKernel(ms)
		kernels = append(kernels, mk)
	}

	if err := scan.Run(ctx, srcs, scan.Options{Workers: opts.Workers}, kernels...); err != nil {
		return nil, errs.Stage("measure", err)
	}

	m := &Measurement{
		Files:    len(srcs),
		Manifest: make(vfs.Manifest, len(srcs)),
	}
	if sc != nil {
		m.Stats = sc.Total()
		m.Lines = sc.Lines()
		m.FileStats = sc.StatsFiles()
		m.Complexity = sc.Map()
	} else {
		m.Stats = st.Total()
		m.Lines = st.Lines()
		m.FileStats = st.Files()
	}
	for _, s := range ck.Sums() {
		m.Bytes += s.Size
		m.Manifest[s.Name] = vfs.ManifestEntry{Size: s.Size, Checksum: s.Sum}
	}
	if mk != nil {
		m.Patterns = mk.Searcher().Patterns()
		m.PatternTotals = mk.Totals()
		m.PatternFiles = mk.Files()
		m.Matches = mk.TotalMatches()
	}
	return m, nil
}

// RunMeasured executes the pipeline over a content-backed corpus whose
// complexity profile is derived from its real bytes by one fused scan.
func (p *Pipeline) RunMeasured(corpusFS *vfs.FS) (*Result, *Measurement, error) {
	return p.RunMeasuredCtx(context.Background(), corpusFS)
}

// RunMeasuredCtx measures the corpus (checksums, stats, per-file POS
// complexity — one read of every file) and then runs the pipeline as
// RunProfileCtx would with the measured profile. The measurement is
// returned alongside the plan so callers can report or verify it.
func (p *Pipeline) RunMeasuredCtx(ctx context.Context, corpusFS *vfs.FS) (*Result, *Measurement, error) {
	m, err := MeasureCtx(ctx, corpusFS, MeasureOptions{Complexity: true})
	if err != nil {
		return nil, nil, err
	}
	res, err := p.run(ctx, corpusFS, m.Complexity)
	if err != nil {
		return nil, m, err
	}
	return res, m, nil
}
