package core

import (
	"context"

	"repro/internal/errs"
	"repro/internal/scan"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Measurement is the artefact of one fused scan over a content-backed
// corpus: checksums, text statistics, optional multi-pattern match counts
// and optional per-file POS complexity — all from exactly one open and
// one streaming read of every file. This replaces the measure/verify
// pattern of separate CombinedChecksum + ParallelGrep + ComplexityOf
// passes, each of which re-read the whole corpus.
type Measurement struct {
	Files int
	Bytes int64

	// Manifest holds every file's size and FNV-64a checksum.
	Manifest vfs.Manifest

	// Stats aggregates token/sentence/line statistics corpus-wide;
	// FileStats holds them per file in scan order.
	Stats     textproc.TextStats
	Lines     int64
	FileStats []textproc.FileStats

	// Patterns echoes MeasureOptions.Patterns; PatternTotals counts
	// corpus-wide matches per pattern in the same order, PatternFiles per
	// file, and Matches sums across patterns. Empty without patterns.
	Patterns      []string
	PatternTotals []int64
	PatternFiles  []textproc.FilePatternCount
	Matches       int64

	// Complexity maps file name to POS complexity (nil unless requested),
	// in the exact shape RunProfileCtx consumes.
	Complexity map[string]float64

	// Sums holds every file's (name, size, checksum) in scan order — the
	// ordered view of Manifest that Fingerprint folds. Two measurements
	// with equal fingerprints saw byte-identical corpora in the same
	// order, which is how the distributed engine's output is checked
	// against a single-node run.
	Sums []scan.FileSum
}

// Fingerprint folds the ordered per-file checksums into one FNV-64a
// corpus identity (scan.FingerprintSums).
func (m *Measurement) Fingerprint() uint64 { return scan.FingerprintSums(m.Sums) }

// MeasureOptions selects which kernels a fused measurement runs beyond
// the always-on checksum and text-stats pair.
type MeasureOptions struct {
	// Workers bounds the scan fan-out (0 = GOMAXPROCS).
	Workers int
	// Patterns adds a multi-pattern grep kernel (Aho–Corasick, one
	// automaton pass for all patterns).
	Patterns []string
	// FoldCase makes the pattern match ASCII case-insensitive.
	FoldCase bool
	// Complexity adds the POS-complexity kernel, producing the per-file
	// profile RunProfileCtx consumes.
	Complexity bool
	// Tagger optionally supplies a prebuilt tagger for the complexity
	// kernel; nil means build one on demand.
	Tagger *textproc.Tagger
}

// Measure runs one fused scan over every file of the corpus.
func Measure(corpusFS *vfs.FS, opts MeasureOptions) (*Measurement, error) {
	return MeasureCtx(context.Background(), corpusFS, opts)
}

// MeasureCtx is Measure with cancellation. The scan reads pack-backed
// corpora shard-sequentially; results are bit-identical at any worker
// count. Errors carry the "measure" stage and the usual typed sentinels.
// Corpora imported with vfs.ImportPackMapped automatically take the
// zero-copy scan path: their sources carry raw views, so the kernels read
// borrowed windows of the mapping.
func MeasureCtx(ctx context.Context, corpusFS *vfs.FS, opts MeasureOptions) (*Measurement, error) {
	return MeasurePlanCtx(ctx, scan.NewPlan(vfs.Sources(corpusFS.List()), scan.PlanOptions{}), opts)
}

// MeasureKernels is the assembled kernel set of one fused measurement:
// the prototypes a scan folds into and the registration-ordered list the
// engine runs. The distributed engine reuses the same assembly on both
// sides of the wire — coordinator prototypes and worker forks come from
// the same constructor, which is what makes their snapshots compatible.
type MeasureKernels struct {
	Checksum *scan.Checksum
	Stats    *textproc.StatsKernel           // nil when Complexity is requested
	Fused    *workload.StatsComplexityKernel // nil unless Complexity is requested
	Match    *textproc.MatchKernel           // nil without patterns

	// List holds the kernels in registration order — the order snapshots
	// travel in and the order Merge folds them.
	List []scan.Kernel
}

// NewMeasureKernels assembles the kernel set MeasureOptions selects:
// always the per-file checksum; the fused stats+complexity kernel when
// complexity is requested (one shared StreamAnalyzer pass), else the
// plain stats kernel; and the multi-pattern match kernel when patterns
// are given.
func NewMeasureKernels(opts MeasureOptions) (*MeasureKernels, error) {
	mk := &MeasureKernels{Checksum: scan.NewChecksum()}
	mk.List = []scan.Kernel{mk.Checksum}

	// With complexity requested, one fused kernel computes stats and
	// complexity from a single shared StreamAnalyzer pass; running the
	// separate kernels side by side would tokenise every block twice.
	if opts.Complexity {
		tagger := opts.Tagger
		if tagger == nil {
			tagger = textproc.NewTagger()
		}
		mk.Fused = workload.NewStatsComplexityKernel(tagger)
		mk.List = append(mk.List, mk.Fused)
	} else {
		mk.Stats = textproc.NewStatsKernel()
		mk.List = append(mk.List, mk.Stats)
	}

	if len(opts.Patterns) > 0 {
		var ms *textproc.MultiSearcher
		var err error
		if opts.FoldCase {
			ms, err = textproc.NewFoldedMultiSearcher(opts.Patterns)
		} else {
			ms, err = textproc.NewMultiSearcher(opts.Patterns)
		}
		if err != nil {
			return nil, errs.Invalid("%v", err)
		}
		mk.Match = textproc.NewMatchKernel(ms)
		mk.List = append(mk.List, mk.Match)
	}
	return mk, nil
}

// Measurement assembles the result artefact from the kernels'
// accumulated state after a completed scan.
func (mk *MeasureKernels) Measurement() *Measurement {
	m := &Measurement{Sums: mk.Checksum.Sums()}
	m.Files = len(m.Sums)
	m.Manifest = make(vfs.Manifest, m.Files)
	if mk.Fused != nil {
		m.Stats = mk.Fused.Total()
		m.Lines = mk.Fused.Lines()
		m.FileStats = mk.Fused.StatsFiles()
		m.Complexity = mk.Fused.Map()
	} else {
		m.Stats = mk.Stats.Total()
		m.Lines = mk.Stats.Lines()
		m.FileStats = mk.Stats.Files()
	}
	for _, s := range m.Sums {
		m.Bytes += s.Size
		m.Manifest[s.Name] = vfs.ManifestEntry{Size: s.Size, Checksum: s.Sum}
	}
	if mk.Match != nil {
		m.Patterns = mk.Match.Searcher().Patterns()
		m.PatternTotals = mk.Match.Totals()
		m.PatternFiles = mk.Match.Files()
		m.Matches = mk.Match.TotalMatches()
	}
	return m
}

// MeasureSourcesCtx is the source-level Measure: it runs the fused
// measurement over an explicit, already-ordered source list. MeasureCtx
// is a thin wrapper; callers that build sources themselves (pre-sliced
// corpora, hand-picked shard subsets, benchmark baselines) use this
// directly rather than materialising a throwaway FS.
func MeasureSourcesCtx(ctx context.Context, srcs []scan.Source, opts MeasureOptions) (*Measurement, error) {
	mk, err := NewMeasureKernels(opts)
	if err != nil {
		return nil, errs.Stage("measure", err)
	}
	if err := scan.Run(ctx, srcs, scan.Options{Workers: opts.Workers}, mk.List...); err != nil {
		return nil, errs.Stage("measure", err)
	}
	return mk.Measurement(), nil
}

// MeasurePlanCtx runs the fused measurement over a prepared scan plan —
// all tasks, in order, via scan.Execute. It is the single-node twin of
// the distributed engine's Measure: same plan type, same kernel
// assembly, bit-identical results.
func MeasurePlanCtx(ctx context.Context, p *scan.Plan, opts MeasureOptions) (*Measurement, error) {
	mk, err := NewMeasureKernels(opts)
	if err != nil {
		return nil, errs.Stage("measure", err)
	}
	if err := scan.Execute(ctx, p, p.Tasks, scan.Options{Workers: opts.Workers}, mk.List...); err != nil {
		return nil, errs.Stage("measure", err)
	}
	return mk.Measurement(), nil
}

// RunMeasured executes the pipeline over a content-backed corpus whose
// complexity profile is derived from its real bytes by one fused scan.
func (p *Pipeline) RunMeasured(corpusFS *vfs.FS) (*Result, *Measurement, error) {
	return p.RunMeasuredCtx(context.Background(), corpusFS)
}

// RunMeasuredCtx measures the corpus (checksums, stats, per-file POS
// complexity — one read of every file) and then runs the pipeline as
// RunProfileCtx would with the measured profile. The measurement is
// returned alongside the plan so callers can report or verify it.
func (p *Pipeline) RunMeasuredCtx(ctx context.Context, corpusFS *vfs.FS) (*Result, *Measurement, error) {
	m, err := MeasureCtx(ctx, corpusFS, MeasureOptions{Complexity: true})
	if err != nil {
		return nil, nil, err
	}
	res, err := p.run(ctx, corpusFS, m.Complexity)
	if err != nil {
		return nil, m, err
	}
	return res, m, nil
}
