package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/errs"
	"repro/internal/workload"
)

func cancelPipeline(t *testing.T) (*Pipeline, *testing.T) {
	t.Helper()
	p, err := New(Config{
		Seed:            42,
		App:             workload.NewGrep(),
		DeadlineSeconds: 60,
		InitialVolume:   1_000_000,
		MaxVolume:       100_000_000,
		S0:              1_000_000,
		Multiples:       []int{10, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, t
}

// TestPipelineExpiredDeadlineAborts is the acceptance check: a pipeline
// whose context deadline has already expired must abort with an error
// satisfying errors.Is(err, errs.ErrDeadline) before a plan exists —
// and therefore before anything could execute it.
func TestPipelineExpiredDeadlineAborts(t *testing.T) {
	fs, err := corpus.Generate(corpus.HTML18Mil(0.0001), 42)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := cancelPipeline(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	res, err := p.RunCtx(ctx, fs)
	if res != nil {
		t.Fatalf("expired deadline still produced a result (plan: %+v)", res.Plan)
	}
	if !errors.Is(err, errs.ErrDeadline) {
		t.Fatalf("errors.Is(%v, ErrDeadline) = false", err)
	}
	if stage := errs.StageOf(err); stage == "" {
		t.Fatalf("no stage identity on %v", err)
	}
}

func TestPipelineCancelledContextAborts(t *testing.T) {
	fs, err := corpus.Generate(corpus.HTML18Mil(0.0001), 42)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := cancelPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunCtx(ctx, fs); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
	// The cancelled attempt must not corrupt the pipeline: a live run on
	// a fresh pipeline with the same seed matches one that never saw a
	// cancellation.
	pA, _ := cancelPipeline(t)
	resA, err := pA.RunCtx(context.Background(), fs)
	if err != nil {
		t.Fatal(err)
	}
	pB, _ := cancelPipeline(t)
	resB, err := pB.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	if resA.PreferredUnit != resB.PreferredUnit || resA.Plan.Instances != resB.Plan.Instances {
		t.Fatalf("RunCtx result (%d, %d) differs from Run (%d, %d)",
			resA.PreferredUnit, resA.Plan.Instances, resB.PreferredUnit, resB.Plan.Instances)
	}
}

func TestPipelineExecuteCtxCancellation(t *testing.T) {
	fs, err := corpus.Generate(corpus.HTML18Mil(0.0001), 42)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := cancelPipeline(t)
	res, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, xerr := p.ExecuteCtx(ctx, res)
	if !errors.Is(xerr, errs.ErrCancelled) {
		t.Fatalf("cancelled execute returned %v, want ErrCancelled", xerr)
	}
	if errs.StageOf(xerr) != "execution" {
		t.Fatalf("execute cancellation lost stage identity: %v", xerr)
	}
	out, err := p.ExecuteCtx(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerInstance) != res.Plan.Instances {
		t.Fatal("execution after cancelled attempt does not match plan size")
	}
}
