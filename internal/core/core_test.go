package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/perfmodel"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{DeadlineSeconds: 10}); err == nil {
		t.Error("expected error for missing app")
	}
	if _, err := New(Config{App: workload.NewGrep()}); err == nil {
		t.Error("expected error for missing deadline")
	}
}

func TestPipelineGrepEndToEnd(t *testing.T) {
	fs, err := corpus.Generate(corpus.HTML18Mil(0.0002), 42) // 3600 files ≈ 180 MB
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Seed:            42,
		App:             workload.NewGrep(),
		DeadlineSeconds: 60,
		InitialVolume:   1_000_000,
		MaxVolume:       100_000_000,
		S0:              1_000_000,
		Multiples:       []int{10, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || res.Instance.Quality.Grade() == "slow" {
		t.Error("pipeline did not qualify a good instance")
	}
	if len(res.ProbeSets) == 0 {
		t.Fatal("no probe sets")
	}
	// grep must prefer merged units over the original small files.
	if res.PreferredUnit == 0 {
		t.Error("grep pipeline kept original segmentation; merging should win")
	}
	if res.Model == nil || res.Model.R2() < 0.9 {
		t.Errorf("weak model: %v", res.Model)
	}
	if res.ReshapedBins == nil {
		t.Error("no reshaped bins despite merged preference")
	}
	if res.Plan == nil || res.Plan.Instances < 1 {
		t.Fatalf("bad plan: %+v", res.Plan)
	}
	// Execute the plan end to end.
	out, err := p.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerInstance) != res.Plan.Instances {
		t.Error("execution does not match plan size")
	}
}

func TestPipelinePOSKeepsOriginalSegmentation(t *testing.T) {
	fs, err := corpus.Generate(corpus.Text400K(0.01), 7) // 4000 files ≈ 8 MB
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Seed:            7,
		App:             workload.NewPOS(),
		DeadlineSeconds: 120,
		InitialVolume:   100_000,
		MaxVolume:       4_000_000,
		S0:              1_000, // the paper's 1 kB base unit for the text set
		Multiples:       []int{10, 100, 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 7: original segmentation fares best for the memory-bound tagger.
	if res.PreferredUnit != 0 {
		t.Errorf("POS preferred unit = %d, want 0 (original)", res.PreferredUnit)
	}
	if res.ReshapedBins != nil {
		t.Error("POS pipeline reshaped despite original preference")
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	if res.Plan.Model.Shape() != perfmodel.ShapeLinear && res.Model.R2() < 0.95 {
		t.Errorf("unexpected model: %v", res.Model)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() (*Result, error) {
		fs, err := corpus.Generate(corpus.Text400K(0.005), 3)
		if err != nil {
			return nil, err
		}
		p, err := New(Config{
			Seed:            3,
			App:             workload.NewGrep(),
			DeadlineSeconds: 60,
			InitialVolume:   500_000,
			MaxVolume:       5_000_000,
			S0:              100_000,
			Multiples:       []int{10},
		})
		if err != nil {
			return nil, err
		}
		return p.Run(fs)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.PreferredUnit != b.PreferredUnit {
		t.Errorf("unit differs: %d vs %d", a.PreferredUnit, b.PreferredUnit)
	}
	if a.Plan.Instances != b.Plan.Instances {
		t.Errorf("instances differ: %d vs %d", a.Plan.Instances, b.Plan.Instances)
	}
	if a.Model.String() != b.Model.String() {
		t.Errorf("models differ: %v vs %v", a.Model, b.Model)
	}
}

func TestItemsFromFS(t *testing.T) {
	fs := vfs.NewFS()
	_ = fs.Add(vfs.NewFile("b", 2))
	_ = fs.Add(vfs.NewFile("a", 1))
	items := ItemsFromFS(fs)
	if len(items) != 2 || items[0].ID != "a" || items[1].ID != "b" {
		t.Errorf("items = %+v", items)
	}
}

func TestPipelineEmptyCorpus(t *testing.T) {
	p, err := New(Config{App: workload.NewGrep(), DeadlineSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(vfs.NewFS()); err == nil {
		t.Error("expected error for empty corpus")
	}
}

func TestExecuteWithoutPlan(t *testing.T) {
	p, err := New(Config{App: workload.NewGrep(), DeadlineSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(nil); err == nil {
		t.Error("expected error executing nil result")
	}
	if _, err := p.Execute(&Result{}); err == nil {
		t.Error("expected error executing result without plan")
	}
}

func TestReshapePreservesContentExactly(t *testing.T) {
	in := vfs.NewFS()
	contents := map[string]string{
		"d1": "the first document. ",
		"d2": "the second one. ",
		"d3": "a third, rather longer, document follows here. ",
		"d4": "tiny. ",
	}
	for name, c := range contents {
		if err := in.Add(vfs.BytesFile(name, []byte(c))); err != nil {
			t.Fatal(err)
		}
	}
	out, bins, err := Reshape(in, 40, "unit")
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalSize() != in.TotalSize() {
		t.Errorf("total size changed: %d -> %d", in.TotalSize(), out.TotalSize())
	}
	// Every byte of every input must appear in the merged output, in bin
	// order.
	var allOut bytes.Buffer
	for _, f := range out.List() {
		data, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		allOut.Write(data)
	}
	for _, c := range contents {
		if !strings.Contains(allOut.String(), c) {
			t.Errorf("content %q lost in reshape", c)
		}
	}
	if len(bins) != out.Len() {
		t.Errorf("bins %d != output files %d", len(bins), out.Len())
	}
}

func TestReshapeValidation(t *testing.T) {
	in := vfs.NewFS()
	_ = in.Add(vfs.BytesFile("a", []byte("x")))
	if _, _, err := Reshape(in, 0, ""); err == nil {
		t.Error("expected error for zero unit size")
	}
}

func TestReshapeDefaultPrefix(t *testing.T) {
	in := vfs.NewFS()
	_ = in.Add(vfs.BytesFile("a", []byte("xyz")))
	out, _, err := Reshape(in, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.List()[0].Name, "unit-") {
		t.Errorf("default prefix missing: %s", out.List()[0].Name)
	}
}
