package core

import (
	"testing"

	"repro/internal/binpack"
	"repro/internal/corpus"
	"repro/internal/workload"
)

func profiledPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(Config{
		Seed:            17,
		App:             workload.NewPOS(),
		DeadlineSeconds: 300,
		InitialVolume:   200_000,
		MaxVolume:       4_000_000,
		S0:              10_000,
		Multiples:       []int{10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProfileComplexityRaisesSlope(t *testing.T) {
	spec := corpus.Text400K(0.01)
	flat, err := corpus.GenerateProfile(spec, 17, corpus.FlatComplexity(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := corpus.GenerateProfile(spec, 17, corpus.FlatComplexity(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	resFlat, err := profiledPipeline(t).RunProfile(flat)
	if err != nil {
		t.Fatal(err)
	}
	resDense, err := profiledPipeline(t).RunProfile(dense)
	if err != nil {
		t.Fatal(err)
	}
	// Twice the complexity → roughly twice the predicted time per byte,
	// and therefore about twice the instances for the same deadline.
	at := 10_000_000.0
	ratio := resDense.Model.Predict(at) / resFlat.Model.Predict(at)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("model ratio = %v, want ≈2", ratio)
	}
	if resDense.Plan.Instances < resFlat.Plan.Instances {
		t.Errorf("denser corpus plans fewer instances: %d vs %d",
			resDense.Plan.Instances, resFlat.Plan.Instances)
	}
}

func TestRunProfileExecuteUsesMeanComplexity(t *testing.T) {
	spec := corpus.Text400K(0.005)
	profile, err := corpus.GenerateProfile(spec, 18, corpus.RampComplexity{From: 0.8, To: 1.6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p := profiledPipeline(t)
	res, err := p.RunProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complexity == nil {
		t.Fatal("result lost the complexity map")
	}
	out, err := p.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	// The calibration saw the real complexities, so the plan's predictions
	// should track the execution: no instance wildly over its prediction.
	for _, io := range out.PerInstance {
		if io.PredictedS > 0 && io.ActualS > 2*io.PredictedS {
			t.Errorf("instance %s actual %v >> predicted %v", io.InstanceID, io.ActualS, io.PredictedS)
		}
	}
}

func TestRunProfileValidation(t *testing.T) {
	p := profiledPipeline(t)
	if _, err := p.RunProfile(nil); err == nil {
		t.Error("expected error for nil profile")
	}
	if _, err := p.RunProfile(&corpus.Profile{}); err == nil {
		t.Error("expected error for profile without corpus")
	}
}

func TestMeanComplexityHelper(t *testing.T) {
	r := &Result{}
	if r.MeanComplexity(nil) != 1 {
		t.Error("nil complexity should mean 1")
	}
	r.Complexity = map[string]float64{"a": 2}
	// Empty items exercise the zero-total branch.
	if got := r.MeanComplexity(nil); got != 1 {
		t.Errorf("empty items mean = %v, want 1", got)
	}
	items := []binpack.Item{{ID: "a", Size: 10}, {ID: "unknown", Size: 10}}
	if got := r.MeanComplexity(items); got != 1.5 {
		t.Errorf("mean = %v, want 1.5 (2 and default 1)", got)
	}
}
