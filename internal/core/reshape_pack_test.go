package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/vfs"
)

// TestReshapePackRoundTrip pins the full durable-store chain: a corpus
// reshaped into unit files, exported as pack shards and re-imported must
// be bit-identical to the in-memory reshape — same CombinedChecksum,
// same per-unit manifest — and no byte may be lost (the packer reorders
// files across units, so the corpus-wide fold is pinned on the merged FS
// and its round-trip, while total volume pins against the original).
func TestReshapePackRoundTrip(t *testing.T) {
	fs, err := corpus.GenerateWithContent(corpus.Text400K(0.0004), 7)
	if err != nil {
		t.Fatal(err)
	}

	merged, bins, err := Reshape(fs, 50_000, "unit")
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 2 {
		t.Fatalf("expected multiple unit files, got %d", len(bins))
	}
	if merged.TotalSize() != fs.TotalSize() {
		t.Fatalf("reshape changed total volume: %d != %d", merged.TotalSize(), fs.TotalSize())
	}
	reshaped, err := vfs.CombinedChecksum(merged)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := vfs.BuildManifest(merged)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths, err := merged.ExportPack(dir, vfs.PackOptions{Prefix: "unit", ShardSize: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no pack shards written")
	}
	imported, closer, err := vfs.ImportPack(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	if imported.Len() != merged.Len() {
		t.Fatalf("imported %d unit files, want %d", imported.Len(), merged.Len())
	}
	roundTripped, err := vfs.CombinedChecksum(imported)
	if err != nil {
		t.Fatal(err)
	}
	if roundTripped != reshaped {
		t.Fatalf("pack round-trip changed corpus bytes: %x != %x", roundTripped, reshaped)
	}
	if err := manifest.Verify(imported); err != nil {
		t.Fatalf("per-unit manifest verify over pack import: %v", err)
	}
}
