package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// runWithMethod executes the pipeline once with the given fit method.
func runWithMethod(t *testing.T, method FitMethod) *Result {
	t.Helper()
	fs, err := corpus.Generate(corpus.Text400K(0.005), 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Seed:            3,
		App:             workload.NewPOS(),
		DeadlineSeconds: 300,
		InitialVolume:   200_000,
		MaxVolume:       4_000_000,
		S0:              10_000,
		Multiples:       []int{10},
		FitMethod:       method,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(fs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFitMethodsAllProduceWorkingModels(t *testing.T) {
	for _, m := range []FitMethod{FitBestR2, FitCrossValidated, FitWeighted} {
		res := runWithMethod(t, m)
		if res.Model == nil {
			t.Fatalf("method %d: no model", m)
		}
		// The POS workload is linear in volume: every method must produce
		// a model whose one-hour volume is in the same ballpark.
		x, err := res.Model.Invert(3600)
		if err != nil {
			t.Fatalf("method %d: invert: %v", m, err)
		}
		if x < 10_000_000 || x > 120_000_000 {
			t.Errorf("method %d: f⁻¹(3600) = %v bytes, outside the plausible band", m, x)
		}
		if res.Plan == nil || res.Plan.Instances < 1 {
			t.Errorf("method %d: bad plan", m)
		}
	}
}

func TestFitMethodsAgreeOnLinearTruth(t *testing.T) {
	best := runWithMethod(t, FitBestR2)
	cv := runWithMethod(t, FitCrossValidated)
	weighted := runWithMethod(t, FitWeighted)
	ref := best.Model.Predict(50_000_000)
	for name, m := range map[string]float64{
		"cv":       cv.Model.Predict(50_000_000),
		"weighted": weighted.Model.Predict(50_000_000),
	} {
		rel := m/ref - 1
		if rel < -0.2 || rel > 0.2 {
			t.Errorf("%s prediction %v deviates from best-R² %v", name, m, ref)
		}
	}
}
