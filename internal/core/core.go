// Package core orchestrates the paper's complete workflow as a single
// pipeline, the library's primary entry point:
//
//  1. acquire a stable, well-performing instance (bonnie++ qualification, §4);
//  2. probe the application across volumes and unit file sizes (§4);
//  3. select the preferred unit file size (plateau analysis, §4);
//  4. fit performance-model candidates and keep the best (§5);
//  5. reshape the corpus to the preferred unit size (subset-sum first fit);
//  6. build a deadline-meeting, cost-minimising execution plan with the
//     residual-based deadline adjustment (§5.2);
//  7. optionally execute the plan on the simulated cloud.
//
// Each stage is also callable on its own; the pipeline only sequences them.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/corpus"
	"repro/internal/errs"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/provision"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Config parameterises a pipeline run. Zero values get the paper's
// defaults where they exist.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// App is the application cost model under study.
	App workload.App
	// Zone to provision in; defaults to the region's first zone.
	Zone string
	// InitialVolume, Growth, MaxVolume and StableCV configure the §4
	// escalation protocol. Defaults: 1 MB, x10, 1 GB, 0.15.
	InitialVolume int64
	Growth        int64
	MaxVolume     int64
	StableCV      float64
	// S0 is the base unit size for probe reshaping; Multiples derives the
	// others. Defaults: 1 MB and {2, 5, 10, 50, 100}.
	S0        int64
	Multiples []int
	// PlateauTol is the relative tolerance for plateau membership (§4
	// analysis). Default 0.05.
	PlateauTol float64
	// DeadlineSeconds is the user deadline D.
	DeadlineSeconds float64
	// MissProb is the accepted deadline-miss probability for the §5.2
	// adjustment. Default 0.10.
	MissProb float64
	// Rate is the flat hourly price. Default $0.085.
	Rate float64
	// MaxInstances caps the plan (0 = uncapped).
	MaxInstances int
	// FitMethod selects how the performance model is chosen. Default
	// FitBestR2, the paper's procedure.
	FitMethod FitMethod
}

// FitMethod selects the model-fitting strategy of stage 4.
type FitMethod int

// Fit methods.
const (
	// FitBestR2 fits every family and keeps the best in-sample R² — the
	// paper's §5 procedure.
	FitBestR2 FitMethod = iota
	// FitCrossValidated selects the family by k-fold cross-validation on
	// held-out relative error (more robust for flexible families).
	FitCrossValidated
	// FitWeighted fits the affine family with volume-proportional weights,
	// the paper's §7 extension "demanding closer fits in the large data
	// volume range".
	FitWeighted
)

func (c *Config) fillDefaults() {
	if c.Zone == "" {
		c.Zone = cloudsim.USEast.Zones[0]
	}
	if c.InitialVolume == 0 {
		c.InitialVolume = 1_000_000
	}
	if c.Growth == 0 {
		c.Growth = 10
	}
	if c.MaxVolume == 0 {
		c.MaxVolume = 1_000_000_000
	}
	if c.StableCV == 0 {
		c.StableCV = 0.15
	}
	if c.S0 == 0 {
		c.S0 = 1_000_000
	}
	if c.Multiples == nil {
		c.Multiples = []int{2, 5, 10, 50, 100}
	}
	if c.PlateauTol == 0 {
		c.PlateauTol = 0.05
	}
	if c.MissProb == 0 {
		c.MissProb = 0.10
	}
	if c.Rate == 0 {
		c.Rate = 0.085
	}
}

// Result carries every artefact the pipeline produced.
type Result struct {
	// Instance is the qualified measurement instance.
	Instance *cloudsim.Instance
	// QualificationAttempts is how many instances were tried.
	QualificationAttempts int
	// ProbeSets holds all measurements, one slice per escalation volume.
	ProbeSets [][]probe.Measurement
	// PreferredUnit is the selected unit file size (0 = keep the original
	// segmentation, the POS outcome).
	PreferredUnit int64
	// Model is the best-fitting performance model at the preferred unit.
	Model perfmodel.Model
	// Candidates are all fitted model families.
	Candidates []perfmodel.Model
	// Adjustment is the §5.2 residual-based deadline derating.
	Adjustment perfmodel.Adjustment
	// ReshapedBins is the full corpus packed at the preferred unit size
	// (nil when the original segmentation was kept).
	ReshapedBins []*binpack.Bin
	// Plan is the provisioning plan for the configured deadline.
	Plan *provision.Plan
	// Complexity is the per-file complexity map of a profiled run (nil
	// for uniform corpora).
	Complexity map[string]float64
}

// MeanComplexity returns the size-weighted mean complexity of the corpus
// the result was computed over (1.0 when no profile was used).
func (r *Result) MeanComplexity(items []binpack.Item) float64 {
	if r.Complexity == nil {
		return 1
	}
	var weighted, total float64
	for _, it := range items {
		c := r.Complexity[it.ID]
		if c <= 0 {
			c = 1
		}
		weighted += c * float64(it.Size)
		total += float64(it.Size)
	}
	if total == 0 {
		return 1
	}
	return weighted / total
}

// Pipeline runs the stages against one cloud.
type Pipeline struct {
	Cloud  *cloudsim.Cloud
	Config Config
}

// New creates a pipeline with its own simulated cloud.
func New(cfg Config) (*Pipeline, error) {
	if cfg.App == nil {
		return nil, errs.Invalid("core: Config.App is required")
	}
	if cfg.DeadlineSeconds <= 0 {
		return nil, errs.Invalid("core: Config.DeadlineSeconds must be positive")
	}
	cfg.fillDefaults()
	return &Pipeline{Cloud: cloudsim.New(cfg.Seed), Config: cfg}, nil
}

// ItemsFromFS converts a corpus to packable items in deterministic order.
func ItemsFromFS(fs *vfs.FS) []binpack.Item {
	files := fs.List()
	items := make([]binpack.Item, len(files))
	for i, f := range files {
		items[i] = binpack.Item{ID: f.Name, Size: f.Size}
	}
	return items
}

// Run executes the full pipeline over a uniform-complexity corpus.
func (p *Pipeline) Run(corpusFS *vfs.FS) (*Result, error) {
	return p.RunCtx(context.Background(), corpusFS)
}

// RunCtx is Run with cancellation and a deadline. When
// Config.DeadlineSeconds is set, it also arms a real wall-clock
// context.WithTimeout over the whole run: a pipeline that cannot even
// finish its measurement phase inside the user deadline D has no plan
// worth executing. The returned error identifies the interrupted stage
// (errs.StageOf) and satisfies errors.Is against errs.ErrCancelled or
// errs.ErrDeadline.
func (p *Pipeline) RunCtx(ctx context.Context, corpusFS *vfs.FS) (*Result, error) {
	return p.run(ctx, corpusFS, nil)
}

// RunProfile executes the pipeline over a heterogeneous-complexity corpus:
// probe measurements and plan predictions carry each file's complexity, so
// the calibration honestly reflects what the workload will cost (§5.2's
// closing observation). The profile's complexity map keys must match the
// corpus file names.
func (p *Pipeline) RunProfile(profile *corpus.Profile) (*Result, error) {
	return p.RunProfileCtx(context.Background(), profile)
}

// RunProfileCtx is RunProfile with cancellation and the same armed
// deadline as RunCtx.
func (p *Pipeline) RunProfileCtx(ctx context.Context, profile *corpus.Profile) (*Result, error) {
	if profile == nil || profile.FS == nil {
		return nil, errs.Invalid("core: nil profile")
	}
	return p.run(ctx, profile.FS, profile.Complexity)
}

func (p *Pipeline) run(ctx context.Context, corpusFS *vfs.FS, complexity map[string]float64) (*Result, error) {
	if p.Config.DeadlineSeconds > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx,
			time.Duration(p.Config.DeadlineSeconds*float64(time.Second)))
		defer cancel()
	}
	items := ItemsFromFS(corpusFS)
	if len(items) == 0 {
		return nil, errs.Invalid("core: empty corpus")
	}
	res := &Result{Complexity: complexity}

	// Stage 1: qualified instance (§4).
	if cerr := errs.FromContext(ctx); cerr != nil {
		return nil, errs.Stage("qualification", cerr)
	}
	in, attempts, err := p.Cloud.AcquireQualifiedCtx(ctx, cloudsim.Small, p.Config.Zone, 50)
	if err != nil {
		return nil, errs.Stage("qualification", err)
	}
	res.Instance = in
	res.QualificationAttempts = attempts

	// Stage 2: escalating probes (§4).
	harness := probe.NewHarness(p.Cloud, in, p.Config.App, workload.Local{})
	protocol := &probe.Protocol{
		Harness:       harness,
		InitialVolume: p.Config.InitialVolume,
		Growth:        p.Config.Growth,
		MaxVolume:     p.Config.MaxVolume,
		StableCV:      p.Config.StableCV,
		S0:            p.Config.S0,
		Multiples:     p.Config.Multiples,
		MinSets:       3, // the regression needs multiple volumes
		Complexity:    complexity,
	}
	probeRes, err := protocol.RunCtx(ctx, items)
	if err != nil {
		return nil, errs.Stage("probing", err)
	}
	if len(probeRes.Sets) == 0 {
		return nil, errs.Stage("probing", fmt.Errorf("core: probing produced no measurements"))
	}
	res.ProbeSets = probeRes.Sets

	// Stage 3: preferred unit size from the most stable (last) probe set.
	if cerr := errs.FromContext(ctx); cerr != nil {
		return nil, errs.Stage("unit-selection", cerr)
	}
	last := probeRes.Sets[len(probeRes.Sets)-1]
	unit, err := probe.PickPreferredUnit(last, p.Config.PlateauTol)
	if err != nil {
		return nil, errs.Stage("unit-selection", err)
	}
	res.PreferredUnit = unit

	// Stage 4: fit models on the preferred unit's measurements (§5). Every
	// individual run is a calibration point — the repeats carry the
	// residual spread the §5.2 deadline adjustment needs.
	if cerr := errs.FromContext(ctx); cerr != nil {
		return nil, errs.Stage("model-fitting", cerr)
	}
	xs, ys := probe.AllRunsPoints(probeRes.Sets, unit)
	if len(xs) < 2 {
		return nil, errs.Stage("model-fitting",
			fmt.Errorf("core: only %d calibration points at unit %d", len(xs), unit))
	}
	res.Candidates = perfmodel.FitAll(xs, ys)
	var model perfmodel.Model
	switch p.Config.FitMethod {
	case FitCrossValidated:
		k := 5
		if len(xs) < 2*k {
			k = 2
		}
		m, _, err := perfmodel.SelectByCV(xs, ys, k)
		if err != nil {
			return nil, errs.Stage("model-fitting", err)
		}
		model = m
	case FitWeighted:
		m, err := perfmodel.FitAffineWeighted(xs, ys, perfmodel.VolumeWeights(xs, 1))
		if err != nil {
			return nil, errs.Stage("model-fitting", err)
		}
		model = m
	default:
		m, err := perfmodel.Best(res.Candidates)
		if err != nil {
			return nil, errs.Stage("model-fitting", err)
		}
		model = m
	}
	res.Model = model
	adj, err := perfmodel.NewAdjustment(model, xs, ys, p.Config.MissProb)
	if err == nil {
		res.Adjustment = adj
	}

	// Stage 5: reshape the full corpus at the preferred unit size.
	if cerr := errs.FromContext(ctx); cerr != nil {
		return nil, errs.Stage("reshaping", cerr)
	}
	planItems := items
	if unit > 0 {
		bins, err := binpack.SubsetSumFirstFit(items, unit)
		if err != nil {
			return nil, errs.Stage("reshaping", err)
		}
		if err := binpack.Verify(items, bins); err != nil {
			return nil, errs.Stage("reshaping", fmt.Errorf("core: reshaping invariant: %w", err))
		}
		res.ReshapedBins = bins
		planItems = make([]binpack.Item, 0, len(bins))
		for i, b := range bins {
			planItems = append(planItems, binpack.Item{
				ID:   fmt.Sprintf("unit-%06d", i),
				Size: b.Used,
			})
		}
	}

	// Stage 6: provisioning plan with the adjusted-deadline strategy (§5.2).
	// The context check here is the last gate before the plan exists: a run
	// whose deadline already expired must abort before producing (and
	// certainly before executing) a plan.
	if cerr := errs.FromContext(ctx); cerr != nil {
		return nil, errs.Stage("planning", cerr)
	}
	planner := &provision.Planner{Model: model, Rate: p.Config.Rate, MaxInstances: p.Config.MaxInstances}
	plan, err := planner.PlanAdjusted(planItems, p.Config.DeadlineSeconds, res.Adjustment)
	if err != nil {
		return nil, errs.Stage("planning", err)
	}
	res.Plan = plan
	return res, nil
}

// Execute runs the result's plan on the pipeline's cloud (stage 7).
// Profiled runs execute at the corpus's size-weighted mean complexity.
func (p *Pipeline) Execute(res *Result) (*provision.Outcome, error) {
	return p.ExecuteCtx(context.Background(), res)
}

// ExecuteCtx is Execute with cancellation, threaded through the per-bin
// launch/estimate loop.
func (p *Pipeline) ExecuteCtx(ctx context.Context, res *Result) (*provision.Outcome, error) {
	if res == nil || res.Plan == nil {
		return nil, errs.Invalid("core: no plan to execute")
	}
	complexity := 1.0
	if res.Complexity != nil {
		// After reshaping, plan bins hold synthetic unit IDs; the original
		// file IDs live in the reshaped bins.
		source := res.Plan.Bins
		if res.ReshapedBins != nil {
			source = res.ReshapedBins
		}
		var flat []binpack.Item
		for _, b := range source {
			flat = append(flat, b.Items...)
		}
		complexity = res.MeanComplexity(flat)
	}
	return provision.ExecuteCtx(ctx, p.Cloud, res.Plan, provision.ExecuteOptions{
		App:        p.Config.App,
		Zone:       p.Config.Zone,
		Complexity: complexity,
	})
}

// Reshape is the standalone reshaping operation for real data: pack the
// corpus's files into unit files of the given size (subset-sum first fit)
// and return a new file system holding the concatenated unit files, plus
// the manifest of which inputs each unit contains. Content-backed inputs
// produce content-backed unit files whose bytes are exactly the members'
// bytes in order.
func Reshape(in *vfs.FS, unitSize int64, unitPrefix string) (*vfs.FS, []*binpack.Bin, error) {
	return ReshapeCtx(context.Background(), in, unitSize, unitPrefix)
}

// ReshapeCtx is Reshape with cancellation, checked between unit-file
// assemblies; the input FS is never mutated, so an aborted reshape
// leaves nothing to clean up.
func ReshapeCtx(ctx context.Context, in *vfs.FS, unitSize int64, unitPrefix string) (*vfs.FS, []*binpack.Bin, error) {
	if unitSize <= 0 {
		return nil, nil, errs.Invalid("core: unit size must be positive, got %d", unitSize)
	}
	if unitPrefix == "" {
		unitPrefix = "unit"
	}
	items := ItemsFromFS(in)
	bins, err := binpack.SubsetSumFirstFit(items, unitSize)
	if err != nil {
		return nil, nil, err
	}
	if err := binpack.Verify(items, bins); err != nil {
		return nil, nil, fmt.Errorf("core: reshape invariant: %w", err)
	}
	out := vfs.NewFS()
	for i, b := range bins {
		if cerr := errs.FromContext(ctx); cerr != nil {
			return nil, nil, errs.Stage("reshaping", cerr)
		}
		members := make([]vfs.File, 0, len(b.Items))
		for _, it := range b.Items {
			f, err := in.Get(it.ID)
			if err != nil {
				return nil, nil, err
			}
			members = append(members, f)
		}
		merged := vfs.Concat(fmt.Sprintf("%s-%06d", unitPrefix, i), members)
		if err := out.Add(merged); err != nil {
			return nil, nil, err
		}
	}
	return out, bins, nil
}
