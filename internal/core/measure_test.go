package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/errs"
	"repro/internal/textproc"
	"repro/internal/vfs"
	"repro/internal/workload"
)

func measureCorpus(t *testing.T, n int) *vfs.FS {
	t.Helper()
	fs := vfs.NewFS()
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("File %d says the error count is %d. Unknownzz word! lines\nhere.", i, i*3)
		if err := fs.Add(vfs.BytesFile(fmt.Sprintf("doc-%03d.txt", i), []byte(text))); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestMeasureMatchesSeparatePasses(t *testing.T) {
	fs := measureCorpus(t, 20)
	m, err := Measure(fs, MeasureOptions{
		Patterns:   []string{"error", "the"},
		Complexity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Files != 20 {
		t.Fatalf("Files = %d, want 20", m.Files)
	}

	// Manifest equals the dedicated builder's.
	wantManifest, err := vfs.BuildManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Manifest) != len(wantManifest) {
		t.Fatalf("manifest has %d entries, want %d", len(m.Manifest), len(wantManifest))
	}
	for name, want := range wantManifest {
		if m.Manifest[name] != want {
			t.Fatalf("manifest[%s] = %+v, want %+v", name, m.Manifest[name], want)
		}
	}
	if err := m.Manifest.Verify(fs); err != nil {
		t.Fatalf("measured manifest does not verify its own corpus: %v", err)
	}

	// Stats, matches and complexity equal the per-file references.
	tagger := textproc.NewTagger()
	var wantTokens, wantWords int
	var wantBytes int64
	for _, f := range fs.List() {
		data, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += f.Size
		st := textproc.Analyze(data)
		wantTokens += st.Tokens
		wantWords += st.Words
		if want := workload.ComplexityOf(data, tagger); m.Complexity[f.Name] != want {
			t.Fatalf("complexity[%s] = %v, want %v", f.Name, m.Complexity[f.Name], want)
		}
		s, err := textproc.NewSearcher("error")
		if err != nil {
			t.Fatal(err)
		}
		_ = s
	}
	if m.Bytes != wantBytes {
		t.Fatalf("Bytes = %d, want %d", m.Bytes, wantBytes)
	}
	if m.Stats.Tokens != wantTokens || m.Stats.Words != wantWords {
		t.Fatalf("stats %+v, want tokens=%d words=%d", m.Stats, wantTokens, wantWords)
	}

	// Pattern totals equal the reference searcher, and per-file counts sum
	// to the totals.
	for i, p := range m.Patterns {
		s, err := textproc.NewSearcher(p)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		var sum int64
		for _, f := range fs.List() {
			data, _ := f.ReadAll()
			want += s.CountBytes(data)
		}
		for _, fc := range m.PatternFiles {
			sum += fc.Counts[i]
		}
		if m.PatternTotals[i] != want || sum != want {
			t.Fatalf("pattern %q: total %d (files sum %d), want %d", p, m.PatternTotals[i], sum, want)
		}
	}
	if m.Matches != m.PatternTotals[0]+m.PatternTotals[1] {
		t.Fatalf("Matches = %d, want %d", m.Matches, m.PatternTotals[0]+m.PatternTotals[1])
	}
}

func TestMeasureCancellationIsTypedAndStaged(t *testing.T) {
	fs := measureCorpus(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MeasureCtx(ctx, fs, MeasureOptions{})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("cancelled measure returned %v, want ErrCancelled", err)
	}
	if got := errs.StageOf(err); got != "measure" {
		t.Fatalf("StageOf = %q, want \"measure\"", got)
	}
}

func TestRunMeasuredFeedsComplexityProfile(t *testing.T) {
	// Big enough that the probing phase has volume to escalate over.
	fs := vfs.NewFS()
	for i := 0; i < 12; i++ {
		var b []byte
		for len(b) < 40_000 {
			b = append(b, fmt.Sprintf("File %d says the error count is %d. Unknownzz word!\n", i, i*3)...)
		}
		if err := fs.Add(vfs.BytesFile(fmt.Sprintf("doc-%03d.txt", i), b)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		App:             workload.NewGrep(),
		DeadlineSeconds: 300,
		Seed:            1,
		InitialVolume:   100_000,
		MaxVolume:       400_000,
		S0:              10_000,
		Multiples:       []int{10},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := p.RunMeasured(fs)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || m == nil {
		t.Fatal("RunMeasured returned nil result or measurement")
	}
	if len(m.Complexity) != 12 {
		t.Fatalf("measured complexity for %d files, want 12", len(m.Complexity))
	}
	if len(res.Complexity) != 12 {
		t.Fatalf("result carries %d complexities, want the measured profile", len(res.Complexity))
	}
	// The measured profile is exactly what RunProfileCtx consumes: a fresh
	// pipeline run over it reproduces the same plan.
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.RunProfileCtx(context.Background(), &corpus.Profile{FS: fs, Complexity: m.Complexity})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Instances != res2.Plan.Instances {
		t.Fatalf("measured run plan diverged: %d instances vs %d", res.Plan.Instances, res2.Plan.Instances)
	}
}
