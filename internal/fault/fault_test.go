package fault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/vfs"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	inj, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inj
}

// TestDecisionsDeterministic pins the replayability contract: two
// injectors with the same seed make identical decisions for identical
// (site, key, attempt) streams, and a different seed diverges.
func TestDecisionsDeterministic(t *testing.T) {
	decisions := func(seed int64) []bool {
		inj := mustNew(t, Config{Seed: seed, Kill: 0.5})
		hook := inj.TaskKill("w0")
		out := make([]bool, 0, 64)
		for task := 0; task < 8; task++ {
			for attempt := 0; attempt < 8; attempt++ {
				out = append(out, hook(context.Background(), task) != nil)
			}
		}
		return out
	}
	a, b := decisions(7), decisions(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if reflect.DeepEqual(a, decisions(8)) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	fired := 0
	for _, d := range a {
		if d {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("kill rate 0.5 fired %d/%d times — dice look broken", fired, len(a))
	}
}

// TestDecisionsIndependentOfInterleaving pins that concurrent rolls on
// *different* keys cannot perturb each other's schedules: per-key
// decisions depend only on that key's attempt counter.
func TestDecisionsIndependentOfInterleaving(t *testing.T) {
	run := func(parallel bool) map[string][]bool {
		inj := mustNew(t, Config{Seed: 3, Kill: 0.5})
		hook := inj.TaskKill("w0")
		out := make(map[string][]bool)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for task := 0; task < 4; task++ {
			record := func(task int) {
				local := make([]bool, 0, 8)
				for attempt := 0; attempt < 8; attempt++ {
					local = append(local, hook(context.Background(), task) != nil)
				}
				mu.Lock()
				out[fmt.Sprintf("t%d", task)] = local
				mu.Unlock()
			}
			if parallel {
				wg.Add(1)
				go func(task int) { defer wg.Done(); record(task) }(task)
			} else {
				record(task)
			}
		}
		wg.Wait()
		return out
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("interleaving changed per-key fault schedules")
	}
}

func testFS(t *testing.T, n int) *vfs.FS {
	t.Helper()
	fs := vfs.NewFS()
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte('a' + i%26)}, 400+i*13)
		if err := fs.Add(vfs.BytesFile(fmt.Sprintf("doc-%03d.txt", i), data)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// TestWrapFSPreservesShape pins that wrapping changes no metadata: same
// names, sizes, locality — so plan fingerprints match the clean corpus —
// and raw views are stripped.
func TestWrapFSPreservesShape(t *testing.T) {
	fs := vfs.NewFS()
	raw := []byte("hello raw world")
	f := vfs.BytesFile("a.txt", raw).WithLocality("shard-000", 64).WithRawBytes(raw)
	if err := fs.Add(f); err != nil {
		t.Fatal(err)
	}
	inj := mustNew(t, Config{Seed: 1, ReadErr: 1})
	wrapped, err := inj.WrapFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	g, err := wrapped.Get("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size != f.Size {
		t.Fatalf("size changed: %d -> %d", f.Size, g.Size)
	}
	shard, off := g.Locality()
	if shard != "shard-000" || off != 64 {
		t.Fatalf("locality changed: %q %d", shard, off)
	}
	if g.HasRaw() {
		t.Fatal("wrapped file kept its raw view — faults would be bypassed")
	}
}

// TestReadErrorInjection: a read-error fault surfaces as a retryable
// ErrUnavailable, and a later open of the same file (new attempt) can
// succeed — the retry layer's bread and butter.
func TestReadErrorInjection(t *testing.T) {
	fs := testFS(t, 1)
	inj := mustNew(t, Config{Seed: 1, ReadErr: 1})
	wrapped, err := inj.WrapFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := wrapped.Get("doc-000.txt")
	if _, err := f.ReadAll(); !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if !errs.IsRetryable(func() error { _, err := f.ReadAll(); return err }()) {
		t.Fatal("injected read error must be retryable")
	}
	if inj.Counts()[SiteReadErr] < 2 {
		t.Fatalf("counts = %v, want >= 2 read-err", inj.Counts())
	}
}

// TestReadErrorRetrySucceeds: at a 0.5 rate some open of the same file
// eventually streams clean, and the clean bytes are the true bytes.
func TestReadErrorRetrySucceeds(t *testing.T) {
	fs := testFS(t, 1)
	orig, _ := fs.Get("doc-000.txt")
	want, err := orig.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want = append([]byte(nil), want...)
	inj := mustNew(t, Config{Seed: 2, ReadErr: 0.5})
	wrapped, _ := inj.WrapFS(fs)
	f, _ := wrapped.Get("doc-000.txt")
	for attempt := 0; attempt < 64; attempt++ {
		got, err := f.ReadAll()
		if err == nil {
			if !bytes.Equal(got, want) {
				t.Fatal("clean read returned different bytes")
			}
			return
		}
	}
	t.Fatal("no clean read in 64 attempts at rate 0.5")
}

// TestShortReadViolatesDeclaredSize: a torn read must fail size
// validation loudly (never silently yield fewer bytes).
func TestShortReadViolatesDeclaredSize(t *testing.T) {
	fs := testFS(t, 1)
	inj := mustNew(t, Config{Seed: 1, ShortRead: 1})
	wrapped, _ := inj.WrapFS(fs)
	f, _ := wrapped.Get("doc-000.txt")
	if _, err := f.ReadAll(); err == nil {
		t.Fatal("torn read passed size validation")
	}
}

// TestBitFlipChangesExactlyOneByte: the flip is silent at the byte level
// (same length, one bit differs) — detecting it is the checksum
// layer's job, which is why -verify-reads exists.
func TestBitFlipChangesExactlyOneByte(t *testing.T) {
	fs := testFS(t, 1)
	orig, _ := fs.Get("doc-000.txt")
	want, _ := orig.ReadAll()
	want = append([]byte(nil), want...)
	inj := mustNew(t, Config{Seed: 5, BitFlip: 1})
	wrapped, _ := inj.WrapFS(fs)
	f, _ := wrapped.Get("doc-000.txt")
	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("bit flip must not fail the read itself: %v", err)
	}
	diff := 0
	for i := range want {
		if want[i] != got[i] {
			diff++
			if want[i]^got[i] != 0x01 {
				t.Fatalf("byte %d changed by more than one bit: %02x -> %02x", i, want[i], got[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

// TestTransportRefuse: a refused request surfaces ECONNREFUSED without
// touching the server.
func TestTransportRefuse(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer srv.Close()
	inj := mustNew(t, Config{Seed: 1, Refuse: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	_, err := hc.Get(srv.URL + "/v1/scan")
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want ECONNREFUSED", err)
	}
	if !errs.IsRetryable(errors.Unwrap(err)) { // unwrap the url.Error
		t.Fatal("refused connection must be retryable")
	}
	if hits != 0 {
		t.Fatal("refused request reached the server")
	}
}

// TestTransport503And429 pin the synthesized responses: right status,
// Retry-After header, JSON envelope.
func TestTransport503And429(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	for _, tc := range []struct {
		cfg  Config
		code int
	}{
		{Config{Seed: 1, HTTP503: 1, RetryAfterS: 2}, 503},
		{Config{Seed: 1, HTTP429: 1, RetryAfterS: 2}, 429},
	} {
		inj := mustNew(t, tc.cfg)
		hc := &http.Client{Transport: inj.Transport(nil)}
		resp, err := hc.Get(srv.URL + "/v1/scan")
		if err != nil {
			t.Fatalf("%d: %v", tc.code, err)
		}
		if resp.StatusCode != tc.code {
			t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", ra)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Contains(body, []byte("injected")) {
			t.Fatalf("body %q lacks the injected marker", body)
		}
	}
}

// TestTransportStall: the response starts, then dies mid-body with a
// reset — the truncated-response path clients map onto ErrUnavailable.
func TestTransportStall(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 64<<10)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()
	inj := mustNew(t, Config{Seed: 1, Stall: 1})
	hc := &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(srv.URL + "/v1/scan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil {
		t.Fatal("stalled body completed cleanly")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET", err)
	}
	if n <= 0 || n >= int64(len(payload)) {
		t.Fatalf("body died after %d bytes, want mid-stream", n)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,readerr=0.1,kill=0.05,latency=2ms,latencyrate=0.25,http503=0.1,retryafter=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, ReadErr: 0.1, Kill: 0.05,
		Latency: 2 * time.Millisecond, LatencyRate: 0.25,
		HTTP503: 0.1, RetryAfterS: 1,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config reports disabled")
	}
	for _, bad := range []string{"bogus=1", "readerr=2", "readerr", "seed=x", "kill=-0.1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v, want disabled no-error", cfg, err)
	}
	// A latency rate without an explicit latency gets a usable default.
	cfg, err = ParseSpec("latencyrate=0.5")
	if err != nil || cfg.Latency <= 0 {
		t.Fatalf("latencyrate without latency: cfg=%+v err=%v", cfg, err)
	}
}

func TestSummaryDeterministic(t *testing.T) {
	mk := func() string {
		inj := mustNew(t, Config{Seed: 9, Kill: 0.5})
		hook := inj.TaskKill("w0")
		for task := 0; task < 16; task++ {
			hook(context.Background(), task)
		}
		return inj.Summary()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("summaries differ across same-seed replays:\n%s\n%s", a, b)
	}
	if fired := mustNew(t, Config{Seed: 9}).Summary(); fired != "fault: seed=9 injected=0" {
		t.Fatalf("quiet summary = %q", fired)
	}
}
