// Package fault is a deterministic, seeded fault injector for chaos
// testing the scan pipeline. It attacks the three surfaces where the
// paper's EC2 deployment actually failed — shard reads (I/O errors,
// torn short reads, checksum-violating bit flips, added latency), the
// coordinator↔worker HTTP path (connection refused, 429/503, stalled
// response bodies), and whole task attempts (worker kills) — and every
// decision is a pure function of (seed, site, key, attempt), so a chaos
// run's fault schedule is replayable from its seed regardless of
// goroutine interleaving.
//
// The injector never fabricates *wrong data that passes validation*:
// injected read errors surface as errs.ErrUnavailable (retryable), torn
// reads violate declared sizes (the scan's ErrCorrupt), and bit flips
// are only detectable under checksum-verified imports
// (vfs.ImportPackVerified) — which is exactly the point: the chaos
// suite proves the resilience layer retries what is transient, refuses
// what is corrupt, and never silently returns different bytes.
package fault

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/errs"
	"repro/internal/vfs"
)

// Injection sites. Each site rolls its own dice stream; the Key
// identifies the victim within the site (file name, worker#task,
// method+path).
const (
	SiteReadErr     = "read-err"
	SiteShortRead   = "short-read"
	SiteBitFlip     = "bit-flip"
	SiteReadLatency = "read-latency"
	SiteKill        = "kill"
	SiteRefuse      = "http-refuse"
	Site503         = "http-503"
	Site429         = "http-429"
	SiteStall       = "http-stall"
)

// Config sets the per-site fault rates (probabilities in [0, 1]) and
// the seed that makes the schedule replayable.
type Config struct {
	// Seed selects the deterministic fault schedule. Two injectors with
	// the same seed and config make identical decisions for identical
	// (site, key, attempt) triples.
	Seed int64

	// Read layer (WrapFS): per file open.
	ReadErr     float64       // transient I/O error partway through the stream
	ShortRead   float64       // torn read: stream ends before the declared size
	BitFlip     float64       // one content byte flipped (checksum-detectable)
	LatencyRate float64       // probability of adding Latency before the first byte
	Latency     time.Duration // the added latency (default 1ms when a rate needs it)

	// Task layer (TaskKill): per worker scan attempt.
	Kill float64 // the attempt dies with ErrUnavailable before scanning

	// HTTP layer (Transport): per request.
	Refuse  float64 // connection refused (ECONNREFUSED, no bytes exchanged)
	HTTP503 float64 // synthesized 503 + Retry-After
	HTTP429 float64 // synthesized 429 + Retry-After
	Stall   float64 // response body stalls, then dies mid-stream (ECONNRESET)

	// RetryAfterS is the Retry-After value (seconds) on injected 429/503
	// responses. 0 means "0": retry immediately, which still exercises
	// the client's header parsing without slowing the chaos run.
	RetryAfterS int
}

// Enabled reports whether any fault rate is nonzero.
func (c Config) Enabled() bool {
	return c.ReadErr > 0 || c.ShortRead > 0 || c.BitFlip > 0 || c.LatencyRate > 0 ||
		c.Kill > 0 || c.Refuse > 0 || c.HTTP503 > 0 || c.HTTP429 > 0 || c.Stall > 0
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"readerr", c.ReadErr}, {"shortread", c.ShortRead}, {"bitflip", c.BitFlip},
		{"latencyrate", c.LatencyRate}, {"kill", c.Kill}, {"refuse", c.Refuse},
		{"http503", c.HTTP503}, {"http429", c.HTTP429}, {"stall", c.Stall},
	} {
		if r.v < 0 || r.v > 1 {
			return errs.Invalid("fault: rate %s=%v outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// ParseSpec parses the CLI fault spec: comma-separated key=value pairs,
// e.g. "seed=7,readerr=0.1,kill=0.05,latency=1ms,latencyrate=0.2".
// Keys: seed, readerr, shortread, bitflip, latency (duration),
// latencyrate, kill, refuse, http503, http429, stall, retryafter
// (seconds). Unknown keys and out-of-range rates are errors.
func ParseSpec(spec string) (Config, error) {
	var c Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return c, errs.Invalid("fault: spec entry %q is not key=value", part)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "latency":
			c.Latency, err = time.ParseDuration(v)
		case "retryafter":
			c.RetryAfterS, err = strconv.Atoi(v)
		default:
			var rate float64
			if rate, err = strconv.ParseFloat(v, 64); err == nil {
				switch k {
				case "readerr":
					c.ReadErr = rate
				case "shortread":
					c.ShortRead = rate
				case "bitflip":
					c.BitFlip = rate
				case "latencyrate":
					c.LatencyRate = rate
				case "kill":
					c.Kill = rate
				case "refuse":
					c.Refuse = rate
				case "http503":
					c.HTTP503 = rate
				case "http429":
					c.HTTP429 = rate
				case "stall":
					c.Stall = rate
				default:
					return c, errs.Invalid("fault: unknown spec key %q", k)
				}
			}
		}
		if err != nil {
			return c, errs.Invalid("fault: spec %s=%q: %v", k, v, err)
		}
	}
	if c.LatencyRate > 0 && c.Latency <= 0 {
		c.Latency = time.Millisecond
	}
	return c, c.validate()
}

// Event records one injected fault.
type Event struct {
	Site    string // which injection point fired
	Key     string // the victim: file name, worker#task, method+path
	Attempt uint64 // per-(site,key) attempt index the decision was made at
}

// Injector makes the seeded fault decisions. Decisions are a pure
// function of (seed, site, key, attempt): the attempt counter is the
// only mutable input, and it advances exactly once per roll of its
// (site, key) pair, so concurrent victims cannot perturb each other's
// schedules.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]uint64 // per-(site,key) roll count
	counts   map[string]int    // per-site fired count
	events   []Event
	fired    int
}

// maxEvents bounds the retained event log; counts keep totalling past it.
const maxEvents = 10000

// New builds an injector for the config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg:      cfg,
		attempts: make(map[string]uint64),
		counts:   make(map[string]int),
	}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// FNV-64a, inlined so the hot roll path allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFold(h uint64, data []byte) uint64 {
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

func fnvFoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvFoldU64(h, v uint64) uint64 {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return fnvFold(h, buf[:])
}

// roll makes one seeded decision at (site, key): it advances the pair's
// attempt counter and reports whether the fault fires, plus the raw
// hash (for deriving deterministic victim offsets) and the attempt the
// decision belongs to.
func (i *Injector) roll(site, key string, rate float64) (fire bool, h uint64, attempt uint64) {
	if rate <= 0 {
		return false, 0, 0
	}
	i.mu.Lock()
	ck := site + "\x00" + key
	attempt = i.attempts[ck]
	i.attempts[ck] = attempt + 1
	i.mu.Unlock()

	h = fnvFoldU64(fnvOffset64, uint64(i.cfg.Seed))
	h = fnvFoldString(h, site)
	h = fnvFoldU64(h, 0)
	h = fnvFoldString(h, key)
	h = fnvFoldU64(h, attempt)
	// 53 uniform bits, like rand.Float64.
	fire = float64(h>>11)/(1<<53) < rate
	if fire {
		i.record(site, key, attempt)
	}
	return fire, h, attempt
}

func (i *Injector) record(site, key string, attempt uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.fired++
	i.counts[site]++
	if len(i.events) < maxEvents {
		i.events = append(i.events, Event{Site: site, Key: key, Attempt: attempt})
	}
}

// Fired reports the total number of injected faults so far.
func (i *Injector) Fired() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired
}

// Counts returns the per-site fired counts (a copy).
func (i *Injector) Counts() map[string]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Events returns the recorded fault log (a copy, capped at maxEvents).
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// Summary renders a one-line report: total faults and per-site counts
// in sorted site order — the line chaos runs print and replay runs diff.
func (i *Injector) Summary() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	sites := make([]string, 0, len(i.counts))
	for s := range i.counts {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var b strings.Builder
	fmt.Fprintf(&b, "fault: seed=%d injected=%d", i.cfg.Seed, i.fired)
	for n, s := range sites {
		if n == 0 {
			b.WriteString(" (")
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%d", s, i.counts[s])
	}
	if len(sites) > 0 {
		b.WriteString(")")
	}
	return b.String()
}

// --- read layer ----------------------------------------------------------

// WrapFS returns a copy of fs whose content-backed files stream through
// the injector's read layer. Names, sizes and shard locality are
// preserved — a plan derived from the wrapped FS fingerprints
// identically to one from the original — but zero-copy raw views are
// dropped, forcing every read through the (faultable) streaming path.
func (i *Injector) WrapFS(fs *vfs.FS) (*vfs.FS, error) {
	out := vfs.NewFS()
	for _, f := range fs.List() {
		nf := f
		if f.HasContent() {
			src := f
			nf = vfs.NewContentFile(f.Name, f.Size, func() io.Reader {
				base, err := src.Open()
				if err != nil {
					return &errReader{err: err}
				}
				return i.newReader(src.Name, src.Size, base)
			})
			if shard, off := f.Locality(); shard != "" {
				nf = nf.WithLocality(shard, off)
			}
		}
		if err := out.Add(nf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }

// newReader wraps one freshly-opened content stream with this open's
// fault decisions. Each open rolls anew (the per-file attempt counter
// advances), so a retried read can succeed where the first one failed —
// the property the retry layer's chaos tests lean on.
func (i *Injector) newReader(name string, size int64, base io.Reader) io.Reader {
	r := &faultReader{base: base, size: size, failAt: -1, cutAt: -1, flipAt: -1}
	r.name = name
	if size > 0 {
		if fire, h, _ := i.roll(SiteReadErr, name, i.cfg.ReadErr); fire {
			r.failAt = int64(h % uint64(size))
		}
		if fire, h, _ := i.roll(SiteShortRead, name, i.cfg.ShortRead); fire {
			r.cutAt = int64(h % uint64(size))
		}
		if fire, h, _ := i.roll(SiteBitFlip, name, i.cfg.BitFlip); fire {
			r.flipAt = int64(h % uint64(size))
		}
		if fire, _, _ := i.roll(SiteReadLatency, name, i.cfg.LatencyRate); fire {
			r.latency = i.cfg.Latency
		}
	}
	return r
}

// faultReader streams base, applying at most one of each fault decided
// at open time: an injected transient error at failAt, a torn EOF at
// cutAt, a single flipped bit at flipAt, and optional first-byte
// latency.
type faultReader struct {
	base io.Reader
	name string
	size int64
	pos  int64

	failAt  int64 // byte position to fail at (-1: none)
	cutAt   int64 // byte position to end the stream at (-1: none)
	flipAt  int64 // byte position to flip (-1: none)
	latency time.Duration
	started bool
}

func (r *faultReader) Read(p []byte) (int, error) {
	if !r.started {
		r.started = true
		if r.latency > 0 {
			time.Sleep(r.latency)
		}
	}
	// The earliest truncating fault bounds how far this stream goes.
	limit := r.size
	if r.failAt >= 0 && r.failAt < limit {
		limit = r.failAt
	}
	if r.cutAt >= 0 && r.cutAt < limit {
		limit = r.cutAt
	}
	if r.pos >= limit {
		switch {
		case r.failAt >= 0 && limit == r.failAt:
			return 0, errs.Unavailable("fault: injected read error in %q at byte %d", r.name, r.failAt)
		case r.cutAt >= 0 && limit == r.cutAt:
			return 0, io.EOF // torn short read: size validation catches it
		}
		return r.base.Read(p) // drain the genuine tail/EOF
	}
	if max := limit - r.pos; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.base.Read(p)
	if n > 0 && r.flipAt >= r.pos && r.flipAt < r.pos+int64(n) {
		p[r.flipAt-r.pos] ^= 0x01
	}
	r.pos += int64(n)
	return n, err
}

// Close forwards to the underlying stream when it holds a resource.
func (r *faultReader) Close() error {
	if c, ok := r.base.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// --- task layer ----------------------------------------------------------

// TaskKill returns a worker fault hook (dist.Local.SetFault /
// WorkerServer.SetFault): each scan attempt of (worker, task) rolls the
// kill dice, and a fired kill aborts the attempt with ErrUnavailable —
// indistinguishable from the worker process dying mid-task, which is
// the point.
func (i *Injector) TaskKill(worker string) func(ctx context.Context, task int) error {
	return func(ctx context.Context, task int) error {
		key := worker + "#" + strconv.Itoa(task)
		if fire, _, attempt := i.roll(SiteKill, key, i.cfg.Kill); fire {
			return errs.Unavailable("fault: injected kill of worker %q on task %d (attempt %d)", worker, task, attempt)
		}
		return nil
	}
}

// --- HTTP layer ----------------------------------------------------------

// Transport wraps base (nil: http.DefaultTransport) with the injector's
// HTTP faults, keyed by "METHOD path". Refusals happen before any bytes
// are exchanged; 429/503 are synthesized with the configured
// Retry-After; stalls pass the request through and kill the response
// body mid-stream.
func (i *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: i, base: base}
}

type transport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.inj
	key := req.Method + " " + req.URL.Path
	if fire, _, _ := i.roll(SiteRefuse, key, i.cfg.Refuse); fire {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	if fire, _, _ := i.roll(Site503, key, i.cfg.HTTP503); fire {
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesized(req, 503, "503 Service Unavailable",
			"fault: injected 503 (service unavailable)", i.cfg.RetryAfterS), nil
	}
	if fire, _, _ := i.roll(Site429, key, i.cfg.HTTP429); fire {
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesized(req, 429, "429 Too Many Requests",
			"fault: injected 429 (too many requests)", i.cfg.RetryAfterS), nil
	}
	stall, h, _ := i.roll(SiteStall, key, i.cfg.Stall)
	resp, err := t.base.RoundTrip(req)
	if err != nil || !stall {
		return resp, err
	}
	// Let a deterministic number of body bytes through, then die.
	cut := int64(1 + h%4096)
	resp.Body = &stallBody{rc: resp.Body, remaining: cut, latency: i.cfg.Latency}
	return resp, nil
}

// synthesized builds a fake error response in the repository's JSON
// envelope (server.ErrorBody shape, duplicated here so fault does not
// depend on internal/server).
func synthesized(req *http.Request, code int, status, msg string, retryAfterS int) *http.Response {
	body := fmt.Sprintf("{\n  \"error\": %q,\n  \"status\": %d\n}\n", msg, code)
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", strconv.Itoa(retryAfterS))
	return &http.Response{
		Status:        status,
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// stallBody forwards up to remaining bytes of the real response, then
// (after an optional stall) dies with a connection reset — the
// mid-stream worker death HTTPWorker maps onto ErrUnavailable.
type stallBody struct {
	rc        io.ReadCloser
	remaining int64
	latency   time.Duration
	stalled   bool
}

func (s *stallBody) Read(p []byte) (int, error) {
	if s.remaining <= 0 {
		if !s.stalled {
			s.stalled = true
			if s.latency > 0 {
				time.Sleep(s.latency)
			}
		}
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if int64(len(p)) > s.remaining {
		p = p[:s.remaining]
	}
	n, err := s.rc.Read(p)
	s.remaining -= int64(n)
	return n, err
}

func (s *stallBody) Close() error { return s.rc.Close() }
