package experiments

import (
	"fmt"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/corpus"
	"repro/internal/provision"
	"repro/internal/sched"
	"repro/internal/textproc"
	"repro/internal/workload"
)

// Complexity reproduces the §5.2 text-complexity experiment: two books of
// nearly equal word count (Dubliners 67,496 words vs Agnes Grey 67,755 —
// within 300) whose POS analysis differs by almost 2x (6m32s vs 3m48s)
// because of sentence complexity. The books are generated synthetically in
// matching styles, analysed by the real tagger, and priced by the POS cost
// model.
func Complexity(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("complexity", "Dubliners vs Agnes Grey: POS cost of text complexity")
	tagger := textproc.NewTagger()
	pos := workload.NewPOS()
	_, in, err := qualifiedSetup(cfg.Seed, "complexity")
	if err != nil {
		return nil, err
	}
	type book struct {
		spec corpus.BookSpec
		text []byte
	}
	books := []book{
		{spec: corpus.Dubliners()},
		{spec: corpus.AgnesGrey()},
	}
	rep.Header = []string{"book", "words", "bytes", "mean sentence", "OOV rate", "complexity", "sim time"}
	simMinutes := map[string]float64{}
	for i := range books {
		b := &books[i]
		b.text = corpus.GenerateBook(b.spec, cfg.Seed)
		st := textproc.Analyze(b.text)
		_, res := tagger.TagText(b.text)
		oov := float64(res.Unknown) / float64(res.Words)
		complexity := workload.ComplexityFromStats(st, oov)
		item := workload.Item{Size: int64(len(b.text)), Complexity: complexity}
		simT := pos.Process(item, 80, in) + pos.PerFile(in) + pos.Startup(in)
		simMinutes[b.spec.Title] = simT.Minutes()
		rep.addRow(b.spec.Title,
			fmt.Sprintf("%d", corpus.CountWords(b.text)),
			fmtBytes(int64(len(b.text))),
			fmt.Sprintf("%.1f", st.MeanSentence),
			fmt.Sprintf("%.3f", oov),
			fmt.Sprintf("%.2f", complexity),
			fmt.Sprintf("%.1f min", simT.Minutes()))
	}
	rep.note("paper: Dubliners 6m32s vs Agnes Grey 3m48s (1.72x) on ~67.5k words each")
	rep.Values["dubliners_min"] = simMinutes["Dubliners"]
	rep.Values["agnesgrey_min"] = simMinutes["Agnes Grey"]
	rep.Values["ratio"] = simMinutes["Dubliners"] / simMinutes["Agnes Grey"]
	rep.Values["word_diff"] = float64(corpus.AgnesGrey().Words - corpus.Dubliners().Words)
	return rep, nil
}

// SwitchCalc reproduces the §3.1 switch-or-stay calculation for a slow
// instance: staying processes ~210 GB in the next hour; switching to a
// fast instance (3-minute startup + attach penalty) gains ~57 GB; a slow
// replacement loses ~10 GB.
func SwitchCalc(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("switchcalc", "switch-or-stay for a slow instance (§3.1)")
	d, err := sched.AnalyzeSwitch(60, 78, 3*time.Minute, time.Hour, 0.85)
	if err != nil {
		return nil, err
	}
	rep.Header = []string{"option", "GB processed next hour", "delta vs stay"}
	rep.addRow("stay on slow (60 MB/s)", fmt.Sprintf("%.0f", d.StayGB), "-")
	rep.addRow("switch, fast replacement", fmt.Sprintf("%.0f", d.SwitchGB), fmt.Sprintf("%+.0f", d.SwitchGB-d.StayGB))
	rep.addRow("switch, slow replacement", fmt.Sprintf("%.0f", d.SwitchSlowGB), fmt.Sprintf("%+.0f", d.SwitchSlowGB-d.StayGB))
	rep.note("paper: stay ≈210 GB; switching gains ≈57 GB if fast, loses ≈10 GB if slow")
	rep.Values["stay_gb"] = d.StayGB
	rep.Values["switch_gain_gb"] = d.SwitchGB - d.StayGB
	rep.Values["switch_loss_gb"] = d.StayGB - d.SwitchSlowGB
	rep.Values["recommend_switch"] = boolToFloat(d.Recommend)
	rep.Values["expected_gain_gb"] = d.ExpectedGainGB
	return rep, nil
}

// Retrieval quantifies the paper's §1 claim that reshaping "also speeds up
// the task of retrieving the results of our application, by having the
// output be less segmented", which "in turn, results in a shorter makespan"
// — and that the per-byte transfer cost is constant, so only request
// charges vary with segmentation.
func Retrieval(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("retrieval", "output retrieval time and cost vs segmentation")
	m := cloudsim.DefaultRetrievalModel
	p := cloudsim.DefaultTransferPricing
	const outputBytes = 10_000_000_000 // 10 GB of application output
	rep.Header = []string{"output files", "retrieval time", "transfer cost", "request share"}
	segmentations := []int{2_000_000, 200_000, 20_000, 1000, 100}
	var times []float64
	for _, objects := range segmentations {
		d, err := m.RetrievalTime(outputBytes, objects)
		if err != nil {
			return nil, err
		}
		cost, err := p.TransferCost(outputBytes, objects, "out")
		if err != nil {
			return nil, err
		}
		byteCost, err := p.TransferCost(outputBytes, 0, "out")
		if err != nil {
			return nil, err
		}
		times = append(times, d.Seconds())
		rep.addRow(fmt.Sprintf("%d", objects), fmtSecs(d.Seconds()),
			fmt.Sprintf("$%.3f", cost), fmt.Sprintf("%.1f%%", 100*(cost-byteCost)/cost))
	}
	speedup, err := m.RetrievalSpeedup(outputBytes, segmentations[0], segmentations[len(segmentations)-1])
	if err != nil {
		return nil, err
	}
	rep.note("the per-byte cost is constant; only request charges and wall-clock vary")
	rep.Values["speedup_2M_to_100_files"] = speedup
	rep.Values["segmented_s"] = times[0]
	rep.Values["merged_s"] = times[len(times)-1]
	return rep, nil
}

// CostFn tabulates the paper's §5 pricing function f(d) for a fixed
// predicted workload across deadlines on both sides of the one-hour
// boundary.
func CostFn(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("costfn", "pricing function f(d) for P = 5.3 predicted hours")
	const predicted = 5.3
	const rate = 0.085
	rep.Header = []string{"deadline (h)", "cost ($)", "instances implied"}
	for _, d := range []float64{0.25, 0.5, 0.75, 1, 2, 6} {
		c, err := provision.Cost(predicted, d, rate)
		if err != nil {
			return nil, err
		}
		instances := c / rate
		rep.addRow(fmt.Sprintf("%.2f", d), fmt.Sprintf("%.3f", c), fmt.Sprintf("%.0f", instances))
		rep.Values[fmt.Sprintf("cost_d%.2f", d)] = c
	}
	rep.note("d ≥ 1h: r·⌈P⌉ = %.3f; d < 1h: r·⌈P/d⌉ grows as the deadline shrinks", rate*6)
	// The headline shape: sub-hour deadlines cost strictly more.
	cHalf, _ := provision.Cost(predicted, 0.5, rate)
	cOne, _ := provision.Cost(predicted, 1, rate)
	rep.Values["subhour_premium"] = cHalf / cOne
	return rep, nil
}
