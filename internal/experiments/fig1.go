package experiments

import (
	"fmt"

	"repro/internal/corpus"
)

// Fig1a reproduces the HTML_18mil size histogram (10 kB bins up to
// 300 kB). Base scale generates 18,000 files (0.1% of the paper's 18M);
// the distribution shape, not the count, is the reproduced artefact.
func Fig1a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig1a", "HTML_18mil frequency distribution (10 kB bins)")
	spec := corpus.HTML18Mil(0.001 * cfg.Scale)
	fs, err := corpus.Generate(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h, err := corpus.SizeHistogram(fs, 10*corpus.KB, 300*corpus.KB)
	if err != nil {
		return nil, err
	}
	rep.note("paper: 18M files, ~900 GB, majority < 50 kB, long tail, max 43 MB")
	rep.note("generated: %d files, %s (scale %.4g of the paper's corpus)", fs.Len(), fmtBytes(fs.TotalSize()), 0.001*cfg.Scale)
	rep.Header = []string{"bin", "count", "bar"}
	bins := h.Bins()
	var peak int64 = 1
	for _, c := range bins {
		if c > peak {
			peak = c
		}
	}
	for i, c := range bins {
		bar := ""
		for j := int64(0); j < c*40/peak; j++ {
			bar += "#"
		}
		rep.addRow(fmt.Sprintf("%d-%d kB", i*10, (i+1)*10), fmt.Sprintf("%d", c), bar)
	}
	rep.addRow("300 kB+ (tail)", fmt.Sprintf("%d", h.Overflow()), "")
	var maxSize int64
	for _, s := range fs.Sizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	rep.Values["files"] = float64(fs.Len())
	rep.Values["total_bytes"] = float64(fs.TotalSize())
	rep.Values["mean_bytes"] = float64(fs.TotalSize()) / float64(fs.Len())
	rep.Values["frac_below_50kB"] = h.FractionBelow(50 * corpus.KB)
	rep.Values["tail_files"] = float64(h.Overflow())
	rep.Values["max_bytes"] = float64(maxSize)
	return rep, nil
}

// Fig1b reproduces the Text_400K size histogram (1 kB bins up to 160 kB).
// Base scale generates 20,000 files (5% of the paper's 400k).
func Fig1b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig1b", "Text_400K frequency distribution (1 kB bins)")
	spec := corpus.Text400K(0.05 * cfg.Scale)
	fs, err := corpus.Generate(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h, err := corpus.SizeHistogram(fs, corpus.KB, 160*corpus.KB)
	if err != nil {
		return nil, err
	}
	rep.note("paper: 400k files, ~1 GB, >40%% under 1 kB, majority < 5 kB, max 705 kB")
	rep.note("generated: %d files, %s", fs.Len(), fmtBytes(fs.TotalSize()))
	rep.Header = []string{"bin", "count", "bar"}
	bins := h.Bins()
	var peak int64 = 1
	for _, c := range bins {
		if c > peak {
			peak = c
		}
	}
	// Print the first 20 bins (the long tail continues to 160 kB).
	for i := 0; i < 20 && i < len(bins); i++ {
		bar := ""
		for j := int64(0); j < bins[i]*40/peak; j++ {
			bar += "#"
		}
		rep.addRow(fmt.Sprintf("%d-%d kB", i, i+1), fmt.Sprintf("%d", bins[i]), bar)
	}
	var maxSize int64
	for _, s := range fs.Sizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	rep.Values["files"] = float64(fs.Len())
	rep.Values["total_bytes"] = float64(fs.TotalSize())
	rep.Values["frac_below_1kB"] = h.FractionBelow(corpus.KB)
	rep.Values["frac_below_5kB"] = h.FractionBelow(5 * corpus.KB)
	rep.Values["max_bytes"] = float64(maxSize)
	return rep, nil
}
