package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	rep := newReport("unit", "csv round trip")
	rep.Header = []string{"a", "b"}
	rep.addRow("1", "x")
	rep.addRow("2", "y")
	rep.Values["metric"] = 3.5
	rep.Values["alpha"] = 1

	dir := t.TempDir()
	if err := WriteCSV(rep, dir); err != nil {
		t.Fatal(err)
	}
	table := readCSV(t, filepath.Join(dir, "unit.csv"))
	if len(table) != 3 || table[0][0] != "a" || table[2][1] != "y" {
		t.Errorf("table = %v", table)
	}
	values := readCSV(t, filepath.Join(dir, "unit_values.csv"))
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	// Sorted by name: alpha before metric.
	if values[1][0] != "alpha" || values[2][0] != "metric" || values[2][1] != "3.5" {
		t.Errorf("values = %v", values)
	}
}

func TestWriteCSVNoTable(t *testing.T) {
	rep := newReport("vonly", "values only")
	rep.Values["v"] = 1
	dir := t.TempDir()
	if err := WriteCSV(rep, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "vonly.csv")); !os.IsNotExist(err) {
		t.Error("table file written despite empty table")
	}
	if _, err := os.Stat(filepath.Join(dir, "vonly_values.csv")); err != nil {
		t.Error("values file missing")
	}
}

func TestWriteCSVNilReport(t *testing.T) {
	if err := WriteCSV(nil, t.TempDir()); err == nil {
		t.Error("expected error for nil report")
	}
}

func TestWriteCSVCreatesDir(t *testing.T) {
	rep := newReport("deep", "nested dir")
	rep.Header = []string{"x"}
	rep.addRow("1")
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := WriteCSV(rep, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "deep.csv")); err != nil {
		t.Error("nested output missing")
	}
}

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}
