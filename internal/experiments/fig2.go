package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/provision"
)

// Fig2 reproduces the shape analysis of Fig. 2: for power-law performance
// models f(x) = a·x^b, convexity (b > 1) versus concavity (b < 1) flips
// the optimal provisioning strategy. The experiment tabulates the data
// processable per instance-hour at several working volumes for both
// shapes and verifies the strategy each implies.
func Fig2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig2", "execution time as a function of data volume: f(x)=a·x^b")
	convex := &perfmodel.PowerLaw{A: 2e-11, B: 1.3}
	concave := &perfmodel.PowerLaw{A: 6e-5, B: 0.7}
	rep.note("convex model:  %v → %s", convex, provision.StrategyForShape(convex.Shape()))
	rep.note("concave model: %v → %s", concave, provision.StrategyForShape(concave.Shape()))

	rep.Header = []string{"volume", "convex f(x)", "concave f(x)", "convex MB/s", "concave MB/s"}
	volumes := []float64{1e8, 1e9, 1e10, 1e11}
	for _, v := range volumes {
		tc := convex.Predict(v)
		tk := concave.Predict(v)
		rep.addRow(fmtBytes(int64(v)), fmtSecs(tc), fmtSecs(tk),
			fmt.Sprintf("%.1f", v/tc/1e6), fmt.Sprintf("%.1f", v/tk/1e6))
	}

	// The decision quantity: data processed in one hour starting from zero
	// versus the marginal hour from hour D-1 to D.
	firstHourConvex, err := convex.Invert(3600)
	if err != nil {
		return nil, err
	}
	firstHourConcave, err := concave.Invert(3600)
	if err != nil {
		return nil, err
	}
	lateConvexEnd, err := convex.Invert(4 * 3600)
	if err != nil {
		return nil, err
	}
	lateConvexStart, err := convex.Invert(3 * 3600)
	if err != nil {
		return nil, err
	}
	lateConcaveEnd, err := concave.Invert(4 * 3600)
	if err != nil {
		return nil, err
	}
	lateConcaveStart, err := concave.Invert(3 * 3600)
	if err != nil {
		return nil, err
	}
	rep.Values["convex_first_hour_bytes"] = firstHourConvex
	rep.Values["convex_marginal_hour_bytes"] = lateConvexEnd - lateConvexStart
	rep.Values["concave_first_hour_bytes"] = firstHourConcave
	rep.Values["concave_marginal_hour_bytes"] = lateConcaveEnd - lateConcaveStart
	// Convex: fresh instances process more per hour → start new instances.
	rep.Values["convex_prefers_new_instances"] = boolToFloat(firstHourConvex > lateConvexEnd-lateConvexStart)
	// Concave: the marginal hour processes more → pack up to the deadline.
	rep.Values["concave_prefers_packing"] = boolToFloat(lateConcaveEnd-lateConcaveStart > firstHourConcave)
	rep.Values["convex_shape"] = float64(convex.Shape())
	rep.Values["concave_shape"] = float64(concave.Shape())
	return rep, nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
