package experiments

import (
	"fmt"

	"repro/internal/binpack"
	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/provision"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig7 reproduces the POS probe of Fig. 7: on a 1000 kB volume the
// original segmentation fares best; merging into larger unit files buys
// nothing because the tagger is memory-bound.
func Fig7(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig7", "POS tagging on a 1000 kB volume: original segmentation wins")
	c, in, err := qualifiedSetup(cfg.Seed, "fig7")
	if err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewPOS(), workload.Local{})
	items := sampleItems(textDist(), 2_000_000, cfg.Seed, "fig7")
	const volume = 1_000_000
	units := []int64{0, 1_000, 10_000, 100_000, 1_000_000}
	ms, err := measureUnits(h, items, volume, units)
	if err != nil {
		return nil, err
	}
	addMeasurementRows(rep, ms)
	unit, err := probe.PickPreferredUnit(ms, 0.05)
	if err != nil {
		return nil, err
	}
	byUnit := map[int64]float64{}
	for _, m := range ms {
		byUnit[m.UnitSize] = m.Mean
		if m.UnitSize == 0 {
			rep.Values["orig_files"] = float64(m.Files)
		}
		if m.UnitSize == 1000 {
			rep.Values["unit1kB_files"] = float64(m.Files)
		}
	}
	rep.note("paper: original probe has over twice the files (2183 vs 1000) yet fares best")
	rep.Values["preferred_unit"] = float64(unit)
	rep.Values["orig_seconds"] = byUnit[0]
	rep.Values["unit1MB_seconds"] = byUnit[1_000_000]
	rep.Values["large_unit_degradation"] = byUnit[1_000_000] / byUnit[0]
	return rep, nil
}

// posCalibration measures POS at the original segmentation across volumes
// and fits the Eq. (3)-style affine model. Calibration runs on a nominal
// instance so the §5 figures isolate model error from instance luck.
func posCalibration(cfg Config, salt string) (*perfmodel.Affine, []float64, []float64, error) {
	c, in, err := nominalSetup(cfg.Seed, salt)
	if err != nil {
		return nil, nil, nil, err
	}
	h := probe.NewHarness(c, in, workload.NewPOS(), workload.Local{})
	var xs, ys []float64
	for _, volume := range []int64{1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000} {
		items := sampleItems(textDist(), volume+100_000, cfg.Seed, fmt.Sprintf("%s-%d", salt, volume))
		ms, err := measureUnits(h, items, volume, []int64{0})
		if err != nil {
			return nil, nil, nil, err
		}
		for _, r := range ms[0].Runs {
			xs = append(xs, float64(volume))
			ys = append(ys, r)
		}
	}
	m, err := perfmodel.FitAffine(xs, ys)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, xs, ys, nil
}

// eq4SlopeRatio is the paper's refit ratio: Eq. (4)'s slope over
// Eq. (3)'s (0.725482e-4 / 0.865e-4). The random-sample refit lands near
// this; Figs. 8(c)-(d)/9(b)-(c) apply the published ratio so the
// under-provisioning phenomenon reproduces deterministically.
const eq4SlopeRatio = 0.725482 / 0.865

// Eq34 reproduces the POS linear fits: model (3) from escalation probes
// and the random-sample refit (4) with its lower slope.
func Eq34(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("eq34", "POS linear fits: model (3) and random-sample refit (4)")
	m3, xs, ys, err := posCalibration(cfg, "eq34")
	if err != nil {
		return nil, err
	}
	rep.note("model (3): %v [paper: f(x) = 0.327 + 0.865e-4·x, x in bytes]", m3)

	// Random sampling refit (§5.2): 3 samples of 5 MB plus subsets.
	c, in, err := qualifiedSetup(cfg.Seed, "eq34-samples")
	if err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewPOS(), workload.Local{})
	xs2 := append([]float64(nil), xs...)
	ys2 := append([]float64(nil), ys...)
	rep.Header = []string{"sample", "volume", "mean", "stddev"}
	for i := 0; i < 3; i++ {
		for _, volume := range []int64{1_000_000, 5_000_000} {
			items := sampleItems(textDist(), volume+100_000, cfg.Seed, fmt.Sprintf("eq34-rs-%d-%d", i, volume))
			ms, err := measureUnits(h, items, volume, []int64{0})
			if err != nil {
				return nil, err
			}
			rep.addRow(fmt.Sprintf("%d", i+1), fmtBytes(volume), fmtSecs(ms[0].Mean), fmtSecs(ms[0].StdDev))
			for _, r := range ms[0].Runs {
				xs2 = append(xs2, float64(volume))
				ys2 = append(ys2, r)
			}
		}
	}
	m4fit, err := perfmodel.FitAffine(xs2, ys2)
	if err != nil {
		return nil, err
	}
	rep.note("refit over samples: %v [paper model (4): f(x) = 3.086 + 0.725482e-4·x]", m4fit)
	// The §5.2 adjustment comes from the under-predicting model (4)'s
	// residuals; we evaluate it for the published-ratio variant used by
	// the Fig. 8/9 panels.
	m4 := &perfmodel.Affine{A: m3.A * eq4SlopeRatio, B: 3.086}
	adj, err := perfmodel.NewAdjustment(m4, xs, ys, 0.10)
	if err != nil {
		return nil, err
	}
	rep.note("deadline adjustment from model (4) residuals: %v [paper: a = 0.1525 → 3600→3124]", adj)
	rep.Values["eq3_slope_s_per_byte"] = m3.A
	rep.Values["eq3_r2"] = m3.R2()
	rep.Values["refit_slope_s_per_byte"] = m4fit.A
	rep.Values["paper_eq4_ratio"] = eq4SlopeRatio
	rep.Values["adjustment_a"] = adj.A
	rep.Values["adjusted_3600"] = adj.AdjustDeadline(3600)
	return rep, nil
}

// posSchedulingContext holds the shared pieces of the Fig. 8/9 experiments.
type posSchedulingContext struct {
	items []binpack.Item
	m3    *perfmodel.Affine
	m4    *perfmodel.Affine
	adj   perfmodel.Adjustment
}

// posContext calibrates the models and builds the ≈1 GB scheduling corpus.
// The corpus volume is pinned to the paper's operating point
// V = 26.1 · f⁻¹(3600) (its "⌈26.1⌉ = 27 instances" arithmetic), so every
// instance count of Figs. 8-9 — 27, 22, 14, 11 — falls out of the same
// ratios the paper reports, independent of calibration luck.
func posContext(cfg Config) (*posSchedulingContext, error) {
	m3, xs, ys, err := posCalibration(cfg, "fig89-cal")
	if err != nil {
		return nil, err
	}
	// Model (4): the published refit ratio applied to our model (3); see
	// eq4SlopeRatio. Its intercept follows the paper's (small, positive).
	m4 := &perfmodel.Affine{A: m3.A * eq4SlopeRatio, B: 3.086}
	// §5.2 derives the deadline adjustment "based on the residuals for the
	// model in (4)" — the under-predicting refit — which is what makes the
	// derating large enough to compensate the slope gap.
	adj, err := perfmodel.NewAdjustment(m4, xs, ys, 0.10)
	if err != nil {
		return nil, err
	}
	x0, err := m3.Invert(3600)
	if err != nil {
		return nil, err
	}
	volume := int64(26.1 * x0 * cfg.Scale)
	items := sampleItems(textDist(), volume, cfg.Seed, "fig89-corpus")
	return &posSchedulingContext{items: items, m3: m3, m4: m4, adj: adj}, nil
}

// schedOpts configures one Fig. 8/9 panel.
type schedOpts struct {
	id, title string
	deadline  float64
	useM4     bool
	strategy  provision.Strategy
	adjusted  bool
	paperNote string
}

// runPOSScheduling executes one scheduling panel: plan, execute on
// qualified instances, report per-instance times and deadline misses.
func runPOSScheduling(cfg Config, o schedOpts) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport(o.id, o.title)
	ctx, err := posContext(cfg)
	if err != nil {
		return nil, err
	}
	var model perfmodel.Model = ctx.m3
	if o.useM4 {
		model = ctx.m4
	}
	planner := &provision.Planner{Model: model, Rate: 0.085}
	var plan *provision.Plan
	if o.adjusted {
		plan, err = planner.PlanAdjusted(ctx.items, o.deadline, ctx.adj)
	} else {
		plan, err = planner.PlanDeadline(ctx.items, o.deadline, o.strategy)
	}
	if err != nil {
		return nil, err
	}
	c, _, err := qualifiedSetup(cfg.Seed, o.id+"-exec")
	if err != nil {
		return nil, err
	}
	out, err := provision.Execute(c, plan, provision.ExecuteOptions{
		App:     workload.NewPOS(),
		Uniform: true, // §5 assumption: uniform, well-performing instances
	})
	if err != nil {
		return nil, err
	}
	rep.note("model: %v", model)
	if o.adjusted {
		rep.note("deadline adjusted %v → %.0f s (a = %.4f)", o.deadline, plan.Deadline, ctx.adj.A)
	}
	if o.paperNote != "" {
		rep.note("paper: %s", o.paperNote)
	}
	rep.Header = []string{"instance", "bytes", "files", "predicted", "actual", "missed"}
	for i, io := range out.PerInstance {
		missed := ""
		if io.Missed {
			missed = "MISS"
		}
		rep.addRow(fmt.Sprintf("%d", i+1), fmtBytes(io.Bytes), fmt.Sprintf("%d", io.Files),
			fmtSecs(io.PredictedS), fmtSecs(io.ActualS), missed)
	}
	var actuals []float64
	for _, io := range out.PerInstance {
		actuals = append(actuals, io.ActualS)
	}
	s := stats.Summarize(actuals)
	rep.Values["instances"] = float64(plan.Instances)
	rep.Values["instance_hours"] = out.InstanceHours
	rep.Values["cost_usd"] = out.ActualCost
	rep.Values["missed"] = float64(out.Missed)
	rep.Values["makespan_s"] = out.MakespanS
	rep.Values["deadline_s"] = o.deadline
	rep.Values["planned_deadline_s"] = plan.Deadline
	rep.Values["mean_actual_s"] = s.Mean
	rep.Values["max_actual_s"] = s.Max
	return rep, nil
}

// Fig8a: D = 1 h, model (3), first-fit bins in original order.
func Fig8a(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig8a",
		title:     "POS D=1h, model (3), first-fit original order",
		deadline:  3600,
		strategy:  provision.FirstFitOriginal,
		paperNote: "27 instances; a few bins close to or over the deadline",
	})
}

// Fig8b: D = 1 h, model (3), uniform bins.
func Fig8b(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig8b",
		title:     "POS D=1h, model (3), uniform bins",
		deadline:  3600,
		strategy:  provision.UniformBins,
		paperNote: "same cost, deadline met: uniform bins reduce miss risk",
	})
}

// Fig8c: D = 1 h, refit model (4) with its lower slope.
func Fig8c(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig8c",
		title:     "POS D=1h, refit model (4), uniform bins",
		deadline:  3600,
		useM4:     true,
		strategy:  provision.UniformBins,
		paperNote: "22 instances instead of 27; very full bins; deadline missed",
	})
}

// Fig8d: adjusted deadline 3600 → ~3124 under model (4).
func Fig8d(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig8d",
		title:     "POS adjusted D (3600 → ~3124), model (4)",
		deadline:  3600,
		useM4:     true,
		adjusted:  true,
		paperNote: "fewer misses than 8(c) but ~30 instance-hours (worse than model (3)'s 27)",
	})
}

// Fig9a: D = 2 h, model (3), uniform bins.
func Fig9a(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig9a",
		title:     "POS D=2h, model (3), uniform bins",
		deadline:  7200,
		strategy:  provision.UniformBins,
		paperNote: "14 instances / 28 instance-hours; deadline met loosely",
	})
}

// Fig9b: D = 2 h, refit model (4).
func Fig9b(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig9b",
		title:     "POS D=2h, refit model (4), uniform bins",
		deadline:  7200,
		useM4:     true,
		strategy:  provision.UniformBins,
		paperNote: "11 instances instead of 14; deadline missed",
	})
}

// Fig9c: adjusted deadline 7200 → ~6247 under model (4).
func Fig9c(cfg Config) (*Report, error) {
	return runPOSScheduling(cfg, schedOpts{
		id:        "fig9c",
		title:     "POS adjusted D (7200 → ~6247), model (4)",
		deadline:  7200,
		useM4:     true,
		adjusted:  true,
		paperNote: "26 instance-hours and the deadline met — better than 9(a)'s 28",
	})
}
