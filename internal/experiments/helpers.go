package experiments

import (
	"fmt"

	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/corpus"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/workload"
)

// qualifiedSetup builds a cloud and acquires a qualified instance, the §4
// precondition of every measurement experiment.
func qualifiedSetup(seed int64, salt string) (*cloudsim.Cloud, *cloudsim.Instance, error) {
	c := cloudsim.New(stats.SeedFor(seed, salt))
	in, _, err := c.AcquireQualified(cloudsim.Small, "us-east-1a", 50)
	if err != nil {
		return nil, nil, err
	}
	return c, in, nil
}

// nominalSetup builds a cloud and launches an idealised nominal-quality
// instance — the controlled environment the §5 planning figures assume
// ("all instances are uniform and performing well").
func nominalSetup(seed int64, salt string) (*cloudsim.Cloud, *cloudsim.Instance, error) {
	c := cloudsim.New(stats.SeedFor(seed, salt))
	in, err := c.LaunchNominal(cloudsim.Small, "us-east-1a")
	if err != nil {
		return nil, nil, err
	}
	if err := c.WaitUntilRunning(in); err != nil {
		return nil, nil, err
	}
	return c, in, nil
}

// sampleItems draws files from a size distribution until the target volume
// is reached, without materialising a full corpus. The items stand in for
// a contiguous region of the data set.
func sampleItems(dist corpus.SizeDist, volume int64, seed int64, salt string) []binpack.Item {
	r := stats.NewRand(seed, salt)
	var items []binpack.Item
	var total int64
	for i := 0; total < volume; i++ {
		s := dist.Sample(r)
		if total+s > volume {
			s = volume - total
			if s <= 0 {
				break
			}
		}
		items = append(items, binpack.Item{ID: fmt.Sprintf("%s-%06d", salt, i), Size: s})
		total += s
	}
	return items
}

// htmlDist / textDist are the two corpora's size distributions.
func htmlDist() corpus.SizeDist { return corpus.HTML18Mil(1).Sizes }
func textDist() corpus.SizeDist { return corpus.Text400K(1).Sizes }

// measureUnits packs the items at each requested unit size (0 = original)
// and measures the probe with the harness. Unit sizes must be multiples of
// the smallest nonzero unit so bins merge without re-packing.
func measureUnits(h *probe.Harness, items []binpack.Item, volume int64, units []int64) ([]probe.Measurement, error) {
	var s0 int64
	var multiples []int
	for _, u := range units {
		if u == 0 {
			continue
		}
		if s0 == 0 {
			s0 = u
			continue
		}
		if u%s0 != 0 {
			return nil, fmt.Errorf("experiments: unit %d not a multiple of s0 %d", u, s0)
		}
		multiples = append(multiples, int(u/s0))
	}
	var set *probe.Set
	var err error
	if s0 > 0 {
		set, err = probe.BuildSet(items, volume, s0, multiples)
	} else {
		sel, selErr := probe.SelectPrefix(items, volume)
		if selErr != nil {
			return nil, selErr
		}
		set = &probe.Set{Volume: volume}
		for _, f := range sel {
			set.Original = append(set.Original, workload.NewItem(f.Size))
		}
	}
	if err != nil {
		return nil, err
	}
	var out []probe.Measurement
	for _, u := range units {
		var m probe.Measurement
		if u == 0 {
			m, err = h.MeasureProbe(volume, 0, set.Original)
		} else {
			m, err = h.MeasureProbe(volume, u, set.ByUnit[u])
		}
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// addMeasurementRows renders measurements into a report table.
func addMeasurementRows(rep *Report, ms []probe.Measurement) {
	rep.Header = []string{"unit size", "files", "mean", "stddev", "cv"}
	for _, m := range ms {
		unit := "original"
		if m.UnitSize > 0 {
			unit = fmtBytes(m.UnitSize)
		}
		rep.addRow(unit, fmt.Sprintf("%d", m.Files), fmtSecs(m.Mean), fmtSecs(m.StdDev), fmt.Sprintf("%.3f", m.CV()))
	}
}
