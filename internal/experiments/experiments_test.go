package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// run executes a driver at default config, failing the test on error.
func run(t *testing.T, id string) *Report {
	t.Helper()
	d, ok := Lookup(id)
	if !ok {
		t.Fatalf("no driver registered for %s", id)
	}
	rep, err := d(Config{})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report ID %q != %q", rep.ID, id)
	}
	if rep.String() == "" {
		t.Fatalf("%s: empty rendering", id)
	}
	return rep
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1a", "fig1b", "fig2", "fig3", "fig4", "fig5", "eq12", "fig6",
		"fig7", "eq34", "fig8a", "fig8b", "fig8c", "fig8d", "fig9a", "fig9b", "fig9c",
		"complexity", "switchcalc", "costfn", "retrieval"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	rep := run(t, "fig1a")
	if rep.Values["frac_below_50kB"] < 0.5 {
		t.Errorf("majority not below 50 kB: %v", rep.Values["frac_below_50kB"])
	}
	if rep.Values["tail_files"] == 0 {
		t.Error("no long tail beyond 300 kB")
	}
	if rep.Values["max_bytes"] > 43_000_000 {
		t.Errorf("max %v exceeds the 43 MB cap", rep.Values["max_bytes"])
	}
	mean := rep.Values["mean_bytes"]
	if mean < 25_000 || mean > 100_000 {
		t.Errorf("mean size %v far from the paper's ≈50 kB", mean)
	}
}

func TestFig1bShape(t *testing.T) {
	rep := run(t, "fig1b")
	if rep.Values["frac_below_1kB"] < 0.35 {
		t.Errorf("under-1kB fraction %v, paper reports >40%%", rep.Values["frac_below_1kB"])
	}
	if rep.Values["frac_below_5kB"] < 0.5 {
		t.Errorf("majority not under 5 kB: %v", rep.Values["frac_below_5kB"])
	}
	if rep.Values["max_bytes"] > 705_000 {
		t.Errorf("max %v exceeds 705 kB", rep.Values["max_bytes"])
	}
}

func TestFig2Strategies(t *testing.T) {
	rep := run(t, "fig2")
	if rep.Values["convex_prefers_new_instances"] != 1 {
		t.Error("convex model should prefer fresh instances")
	}
	if rep.Values["concave_prefers_packing"] != 1 {
		t.Error("concave model should prefer packing to the deadline")
	}
}

func TestFig3Unstable(t *testing.T) {
	rep := run(t, "fig3")
	if rep.Values["unstable"] != 1 {
		t.Errorf("1 MB probe stable (max CV %v); the paper discards it as unstable", rep.Values["max_cv"])
	}
	if rep.Values["mean_seconds"] > 2 {
		t.Errorf("1 MB probe took %vs; should be sub-second scale", rep.Values["mean_seconds"])
	}
}

func TestFig4Plateau(t *testing.T) {
	rep := run(t, "fig4")
	ratio := rep.Values["plateau_ratio_10MB_2GB"]
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("plateau ratio = %v, want ≈1 (10 MB to 2 GB)", ratio)
	}
	if rep.Values["orig_vs_plateau"] < 3 {
		t.Errorf("original files only %vx slower; paper shows a large gap", rep.Values["orig_vs_plateau"])
	}
}

func TestFig5Spikes(t *testing.T) {
	rep := run(t, "fig5")
	if rep.Values["spikes"] < 1 {
		t.Error("no EBS placement spikes in the sweep")
	}
	if rep.Values["plateau_spread"] < 1.3 {
		t.Errorf("spread %v too small; the paper sees spikes up to 3x", rep.Values["plateau_spread"])
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("spike not repeatable: %s", n)
		}
	}
}

func TestEq12Fits(t *testing.T) {
	rep := run(t, "eq12")
	slope := rep.Values["eq1_slope_s_per_byte"]
	// Paper: 1.324e-8 s/byte; accept a 2x band (substrate differs).
	if slope < 1.324e-8/2 || slope > 1.324e-8*2 {
		t.Errorf("Eq.(1) slope %v far from the paper's 1.324e-8", slope)
	}
	if rep.Values["eq1_r2"] < 0.99 {
		t.Errorf("Eq.(1) R² = %v, paper reports 0.999", rep.Values["eq1_r2"])
	}
	if rep.Values["sample_spread"] < 1.01 {
		t.Error("random samples show no variability; paper reports 23.25-45.95s")
	}
}

func TestFig6PredictionAndImprovement(t *testing.T) {
	rep := run(t, "fig6")
	if rep.Values["underestimate_frac"] <= 0 {
		t.Errorf("model overestimated (%v); paper reports a ~30%% underestimate", rep.Values["underestimate_frac"])
	}
	imp := rep.Values["improvement_vs_original"]
	if imp < 3.5 || imp > 9 {
		t.Errorf("improvement = %vx, paper reports 5.6x", imp)
	}
}

func TestFig7OriginalWins(t *testing.T) {
	rep := run(t, "fig7")
	// Paper: original segmentation fares best; merging buys nothing. Our
	// plateau tolerance may pick the statistically indistinguishable 1 kB
	// unit, but large units must clearly lose.
	if rep.Values["preferred_unit"] > 1000 {
		t.Errorf("preferred unit %v; the paper keeps small/original segmentation", rep.Values["preferred_unit"])
	}
	if rep.Values["large_unit_degradation"] < 1.3 {
		t.Errorf("1 MB unit only %vx worse; paper calls the degradation pronounced", rep.Values["large_unit_degradation"])
	}
}

func TestEq34Fits(t *testing.T) {
	rep := run(t, "eq34")
	slope := rep.Values["eq3_slope_s_per_byte"]
	if slope < 0.865e-4/2 || slope > 0.865e-4*2 {
		t.Errorf("Eq.(3) slope %v far from the paper's 0.865e-4", slope)
	}
	if rep.Values["eq3_r2"] < 0.99 {
		t.Errorf("Eq.(3) R² = %v", rep.Values["eq3_r2"])
	}
	a := rep.Values["adjustment_a"]
	if a < 0.05 || a > 0.6 {
		t.Errorf("adjustment a = %v, paper derives ≈0.15", a)
	}
	if adj := rep.Values["adjusted_3600"]; adj >= 3600 || adj < 2000 {
		t.Errorf("adjusted deadline %v; paper derates 3600 → 3124", adj)
	}
}

func TestFig8Panels(t *testing.T) {
	a := run(t, "fig8a")
	b := run(t, "fig8b")
	c := run(t, "fig8c")
	d := run(t, "fig8d")
	// Paper arithmetic: ⌈26.1⌉ = 27 instances under model (3).
	if a.Values["instances"] != 27 || b.Values["instances"] != 27 {
		t.Errorf("model (3) instances = %v/%v, want 27", a.Values["instances"], b.Values["instances"])
	}
	// Model (4) prescribes 22.
	if c.Values["instances"] != 22 {
		t.Errorf("model (4) instances = %v, want 22", c.Values["instances"])
	}
	// Uniform bins miss less than first-fit at the same instance count.
	if b.Values["missed"] > a.Values["missed"] {
		t.Errorf("uniform missed %v > first-fit %v", b.Values["missed"], a.Values["missed"])
	}
	// Model (4)'s under-provisioned plan misses pervasively.
	if c.Values["missed"] < c.Values["instances"]*0.8 {
		t.Errorf("model (4) missed only %v of %v", c.Values["missed"], c.Values["instances"])
	}
	// The adjusted deadline recovers: fewer misses than (c), more instances.
	if d.Values["missed"] >= c.Values["missed"] {
		t.Errorf("adjusted missed %v, not below (c)'s %v", d.Values["missed"], c.Values["missed"])
	}
	if d.Values["instances"] <= c.Values["instances"] {
		t.Errorf("adjusted instances %v not above (c)'s %v", d.Values["instances"], c.Values["instances"])
	}
	if d.Values["planned_deadline_s"] >= 3600 {
		t.Error("adjusted plan did not derate the deadline")
	}
}

func TestFig9Panels(t *testing.T) {
	a := run(t, "fig9a")
	b := run(t, "fig9b")
	c := run(t, "fig9c")
	// Paper: 14 instances (28 instance-hours) under model (3) at D=2h.
	if a.Values["instances"] != 14 {
		t.Errorf("fig9a instances = %v, want 14", a.Values["instances"])
	}
	if a.Values["missed"] > 1 {
		t.Errorf("fig9a missed %v; paper meets the deadline loosely", a.Values["missed"])
	}
	// Model (4): 11 instances, deadline missed.
	if b.Values["instances"] != 11 {
		t.Errorf("fig9b instances = %v, want 11", b.Values["instances"])
	}
	if b.Values["missed"] < b.Values["instances"]*0.8 {
		t.Errorf("fig9b missed only %v of %v", b.Values["missed"], b.Values["instances"])
	}
	// Adjusted: met again, and cheaper or equal to fig9a (paper: 26 vs 28).
	if c.Values["missed"] > 1 {
		t.Errorf("fig9c missed %v; paper meets the deadline", c.Values["missed"])
	}
	if c.Values["instance_hours"] > a.Values["instance_hours"]+2 {
		t.Errorf("fig9c hours %v much worse than fig9a %v", c.Values["instance_hours"], a.Values["instance_hours"])
	}
}

func TestComplexityRatio(t *testing.T) {
	rep := run(t, "complexity")
	ratio := rep.Values["ratio"]
	// Paper: 6m32s / 3m48s = 1.72.
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("complexity ratio = %v, paper reports 1.72", ratio)
	}
	if d := rep.Values["word_diff"]; d < 0 || d > 300 {
		t.Errorf("word difference = %v, paper keeps it within 300", d)
	}
}

func TestSwitchCalc(t *testing.T) {
	rep := run(t, "switchcalc")
	if v := rep.Values["stay_gb"]; v < 200 || v < 0 {
		t.Errorf("stay = %v GB, want ≈210", v)
	}
	if v := rep.Values["switch_gain_gb"]; v < 40 || v > 80 {
		t.Errorf("gain = %v GB, want ≈57", v)
	}
	if v := rep.Values["switch_loss_gb"]; v < 5 || v > 15 {
		t.Errorf("loss = %v GB, want ≈10", v)
	}
	if rep.Values["recommend_switch"] != 1 {
		t.Error("switch not recommended")
	}
}

func TestCostFn(t *testing.T) {
	rep := run(t, "costfn")
	if rep.Values["subhour_premium"] <= 1 {
		t.Error("sub-hour deadlines should cost strictly more")
	}
	// d ≥ 1h: cost is flat at r·⌈P⌉.
	if rep.Values["cost_d1.00"] != rep.Values["cost_d6.00"] {
		t.Error("cost should be deadline-independent above one hour")
	}
	if rep.Values["cost_d0.25"] <= rep.Values["cost_d0.50"] {
		t.Error("cost should grow as sub-hour deadlines shrink")
	}
}

func TestRetrievalSegmentationPenalty(t *testing.T) {
	rep := run(t, "retrieval")
	if rep.Values["speedup_2M_to_100_files"] < 5 {
		t.Errorf("retrieval speedup = %v, want large", rep.Values["speedup_2M_to_100_files"])
	}
	if rep.Values["segmented_s"] <= rep.Values["merged_s"] {
		t.Error("segmented retrieval not slower than merged")
	}
}

func TestRunAllProducesEveryReport(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is the slow full sweep")
	}
	reports, err := RunAll(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Registry) {
		t.Fatalf("reports = %d, want %d", len(reports), len(Registry))
	}
	for i, rep := range reports {
		if rep.ID != Registry[i].ID {
			t.Errorf("report %d = %s, want %s", i, rep.ID, Registry[i].ID)
		}
	}
	// The concurrent sweep must be indistinguishable from the serial one:
	// every driver builds its own seeded world, so the reports — tables,
	// notes and scalar values alike — are bit-identical at any worker count.
	serial, err := RunAllWorkers(Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(reports) {
		t.Fatalf("serial reports = %d, parallel %d", len(serial), len(reports))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], reports[i]) {
			t.Errorf("report %s differs between serial and parallel runs", serial[i].ID)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := newReport("x", "test report")
	rep.note("a note with %d", 42)
	rep.Header = []string{"col1", "col2"}
	rep.addRow("a", "b")
	rep.Values["v"] = 1.5
	s := rep.String()
	for _, want := range []string{"test report", "a note with 42", "col1", "col2", "v", "1.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 2011 || c.Scale != 1 {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{Seed: 5, Scale: 2}.withDefaults()
	if c2.Seed != 5 || c2.Scale != 2 {
		t.Errorf("explicit config overwritten: %+v", c2)
	}
}

func TestScaleParameterRespected(t *testing.T) {
	small, err := Fig1a(Config{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Fig1a(Config{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big.Values["files"] != 4*small.Values["files"] {
		t.Errorf("scale not linear in files: %v vs %v", big.Values["files"], small.Values["files"])
	}
	// Shape statistics are scale-invariant.
	if d := big.Values["frac_below_50kB"] - small.Values["frac_below_50kB"]; d < -0.05 || d > 0.05 {
		t.Errorf("distribution shape drifted with scale: %v", d)
	}
}
