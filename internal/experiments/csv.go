package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// WriteCSV persists a report's table and values as two CSV files under
// dir: <id>.csv (the table) and <id>_values.csv (the named scalars). The
// files are the machine-readable form of the regenerated figures, suitable
// for external plotting.
func WriteCSV(rep *Report, dir string) error {
	if rep == nil {
		return fmt.Errorf("experiments: nil report")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if len(rep.Header) > 0 {
		path := filepath.Join(dir, rep.ID+".csv")
		if err := writeCSVFile(path, rep.Header, rep.Rows); err != nil {
			return err
		}
	}
	if len(rep.Values) > 0 {
		keys := make([]string, 0, len(rep.Values))
		for k := range rep.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, []string{k, fmt.Sprintf("%g", rep.Values[k])})
		}
		path := filepath.Join(dir, rep.ID+"_values.csv")
		if err := writeCSVFile(path, []string{"name", "value"}, rows); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVFile(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return f.Close()
}
