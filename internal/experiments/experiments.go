// Package experiments regenerates every table and figure of the paper's
// evaluation (§3-§5) on the simulated substrate. Each experiment is a
// named driver returning a Report: a rendered table plus named scalar
// Values that the test suite (and EXPERIMENTS.md) assert the paper's
// qualitative shape against — who wins, by what factor, where plateaus and
// crossovers fall.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all randomness; the default 2011 honours the paper.
	Seed int64
	// Scale multiplies dataset sizes: 1.0 is the default laptop-friendly
	// scale (each driver documents its own base size); larger values
	// approach the paper's full volumes at proportional runtime.
	Scale float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2011
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Notes are free-form commentary lines (assumptions, calibration).
	Notes []string
	// Header and Rows form the experiment's table.
	Header []string
	Rows   [][]string
	// Values are named scalar results for programmatic assertions.
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) addRow(cols ...string) { r.Rows = append(r.Rows, cols) }

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cols []string) {
			for i, c := range cols {
				if i < len(widths) {
					fmt.Fprintf(&b, "  %-*s", widths[i], c)
				} else {
					fmt.Fprintf(&b, "  %s", c)
				}
			}
			b.WriteByte('\n')
		}
		line(r.Header)
		for _, row := range r.Rows {
			line(row)
		}
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  --\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %.6g\n", k, r.Values[k])
		}
	}
	return b.String()
}

// Driver is an experiment entry point.
type Driver func(Config) (*Report, error)

// Registry maps experiment IDs to drivers, in the paper's order.
var Registry = []struct {
	ID     string
	Paper  string
	Driver Driver
}{
	{"fig1a", "Fig. 1(a): HTML_18mil size distribution", Fig1a},
	{"fig1b", "Fig. 1(b): Text_400K size distribution", Fig1b},
	{"fig2", "Fig. 2: power-law shapes and provisioning strategy", Fig2},
	{"fig3", "Fig. 3: grep on a 1 MB volume (unstable)", Fig3},
	{"fig4", "Fig. 4: grep on a 5 GB volume (plateau)", Fig4},
	{"fig5", "Fig. 5: grep on 1/2/10 GB volumes (EBS spikes)", Fig5},
	{"eq12", "Eqs. (1)-(2): grep linear fits", Eq12},
	{"fig6", "Fig. 6: grep on 100 GB (prediction vs actual, 5.6x)", Fig6},
	{"fig7", "Fig. 7: POS tagging on a 1000 kB volume", Fig7},
	{"eq34", "Eqs. (3)-(4): POS linear fits", Eq34},
	{"fig8a", "Fig. 8(a): POS D=1h, first-fit bins, model (3)", Fig8a},
	{"fig8b", "Fig. 8(b): POS D=1h, uniform bins, model (3)", Fig8b},
	{"fig8c", "Fig. 8(c): POS D=1h, refit model (4)", Fig8c},
	{"fig8d", "Fig. 8(d): POS adjusted D=3124, model (4)", Fig8d},
	{"fig9a", "Fig. 9(a): POS D=2h, uniform bins, model (3)", Fig9a},
	{"fig9b", "Fig. 9(b): POS D=2h, refit model (4)", Fig9b},
	{"fig9c", "Fig. 9(c): POS adjusted D=6247, model (4)", Fig9c},
	{"complexity", "§5.2: Dubliners vs Agnes Grey POS complexity", Complexity},
	{"switchcalc", "§3.1: switch-or-stay calculation", SwitchCalc},
	{"costfn", "§5: pricing function f(d)", CostFn},
	{"retrieval", "§1: output retrieval time vs segmentation", Retrieval},
}

// Lookup finds a driver by ID.
func Lookup(id string) (Driver, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Driver, true
		}
	}
	return nil, false
}

// RunAll executes every experiment concurrently and returns the reports in
// registry order. Drivers are independent by construction — each builds its
// own seeded cloud and corpus from cfg, sharing only read-only state — so
// the reports are identical to a serial run at any worker count. The error
// contract also matches the serial loop: on failure, the reports for the
// registry prefix before the first (by registry order) failing driver are
// returned alongside its error.
func RunAll(cfg Config) ([]*Report, error) {
	return RunAllWorkersCtx(context.Background(), cfg, 0)
}

// RunAllCtx is RunAll with cancellation: no new driver starts once ctx
// is done, and the call returns the typed cancellation error.
func RunAllCtx(ctx context.Context, cfg Config) ([]*Report, error) {
	return RunAllWorkersCtx(ctx, cfg, 0)
}

// RunAllWorkers is RunAll with an explicit worker count (0 or negative
// means GOMAXPROCS); workers=1 is the serial reference.
func RunAllWorkers(cfg Config, workers int) ([]*Report, error) {
	return RunAllWorkersCtx(context.Background(), cfg, workers)
}

// RunAllWorkersCtx is the cancellable, worker-bounded form the other
// variants delegate to. Driver failures keep the serial error contract
// (first failure in registry order, with the completed prefix); a
// cancellation with no driver failure returns the fan-out's typed
// cancellation error and no reports.
func RunAllWorkersCtx(ctx context.Context, cfg Config, workers int) ([]*Report, error) {
	reps := make([]*Report, len(Registry))
	errs := make([]error, len(Registry))
	ferr := par.New(workers).ForEachCtx(ctx, len(Registry), func(i int) error {
		reps[i], errs[i] = Registry[i].Driver(cfg)
		return nil
	})
	reports := make([]*Report, 0, len(Registry))
	for i, e := range Registry {
		if errs[i] != nil {
			return reports, fmt.Errorf("experiments: %s: %w", e.ID, errs[i])
		}
		reports = append(reports, reps[i])
	}
	if ferr != nil {
		return nil, ferr
	}
	return reports, nil
}

// Formatting helpers shared by drivers.

func fmtBytes(b int64) string {
	switch {
	case b >= 1_000_000_000:
		return fmt.Sprintf("%.3g GB", float64(b)/1e9)
	case b >= 1_000_000:
		return fmt.Sprintf("%.3g MB", float64(b)/1e6)
	case b >= 1_000:
		return fmt.Sprintf("%.3g kB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fmtSecs(s float64) string {
	return fmt.Sprintf("%.2fs", s)
}
