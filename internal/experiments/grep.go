package experiments

import (
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig3 reproduces the 1 MB grep probe of Fig. 3: the run is so short that
// unstable setup overheads dominate and the measurements are discarded
// ("We discard these results as too unstable").
func Fig3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig3", "grep on a 1 MB volume: unstable at small scale")
	c, in, err := qualifiedSetup(cfg.Seed, "fig3")
	if err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewGrep(), workload.Local{})
	items := sampleItems(htmlDist(), 2_000_000, cfg.Seed, "fig3")
	ms, err := measureUnits(h, items, 1_000_000, []int64{0, 100_000, 500_000, 1_000_000})
	if err != nil {
		return nil, err
	}
	addMeasurementRows(rep, ms)
	maxCV, meanOfMeans := 0.0, 0.0
	for _, m := range ms {
		if m.CV() > maxCV {
			maxCV = m.CV()
		}
		meanOfMeans += m.Mean / float64(len(ms))
	}
	rep.note("paper: values very small, stddev large over 5 runs → discarded")
	rep.Values["max_cv"] = maxCV
	rep.Values["mean_seconds"] = meanOfMeans
	rep.Values["unstable"] = boolToFloat(maxCV > 0.15)
	return rep, nil
}

// Fig4 reproduces the 5 GB probe of Fig. 4: execution time vs unit file
// size reaches a plateau at the 10 MB unit that extends to 2 GB.
func Fig4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig4", "grep on a 5 GB volume: plateau from 10 MB to 2 GB")
	c, in, err := qualifiedSetup(cfg.Seed, "fig4")
	if err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewGrep(), workload.Local{})
	const volume = 5_000_000_000
	items := sampleItems(htmlDist(), volume+100_000_000, cfg.Seed, "fig4")
	units := []int64{0, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 2_000_000_000, 5_000_000_000}
	ms, err := measureUnits(h, items, volume, units)
	if err != nil {
		return nil, err
	}
	addMeasurementRows(rep, ms)
	byUnit := map[int64]float64{}
	for _, m := range ms {
		byUnit[m.UnitSize] = m.Mean
	}
	rep.Values["orig_seconds"] = byUnit[0]
	rep.Values["plateau_10MB_seconds"] = byUnit[10_000_000]
	rep.Values["plateau_2GB_seconds"] = byUnit[2_000_000_000]
	rep.Values["plateau_ratio_10MB_2GB"] = byUnit[10_000_000] / byUnit[2_000_000_000]
	rep.Values["orig_vs_plateau"] = byUnit[0] / byUnit[100_000_000]
	rep.note("plateau holds when the 10 MB / 2 GB ratio ≈ 1; original files sit far above it")
	return rep, nil
}

// Fig5 reproduces the spike structure of Fig. 5: on 1, 2 and 10 GB
// volumes, a fine sweep of unit sizes shows repeatable spikes caused by
// EBS placement ("probes, while on the same EBS logical storage volume,
// were placed in different locations some of which have a consistently
// higher access time").
func Fig5(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig5", "grep on 1/2/10 GB volumes: repeatable EBS placement spikes")
	c, in, err := qualifiedSetup(cfg.Seed, "fig5")
	if err != nil {
		return nil, err
	}
	vol, err := c.CreateVolume(in.Zone, 100)
	if err != nil {
		return nil, err
	}
	if err := c.Attach(vol, in); err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewGrep(), vol)
	rep.Header = []string{"volume", "unit size", "mean", "rerun mean", "placement"}
	spikes, points := 0, 0
	var plateauMin, plateauMax float64 = 1e18, 0
	for _, volume := range []int64{1_000_000_000, 2_000_000_000, 10_000_000_000} {
		items := sampleItems(htmlDist(), volume+50_000_000, cfg.Seed, fmt.Sprintf("fig5-%d", volume))
		// Fine sweep: 10 MB base unit, many multiples along the plateau.
		units := []int64{10_000_000, 20_000_000, 30_000_000, 40_000_000, 50_000_000,
			70_000_000, 100_000_000, 150_000_000, 200_000_000, 300_000_000, 500_000_000}
		ms, err := measureUnits(h, items, volume, units)
		if err != nil {
			return nil, err
		}
		// Rerun to demonstrate repeatability.
		ms2, err := measureUnits(h, items, volume, units)
		if err != nil {
			return nil, err
		}
		for i, m := range ms {
			key := h.DatasetKeyFn(volume, m.UnitSize)
			pf := vol.PlacementFactor(key)
			rep.addRow(fmtBytes(volume), fmtBytes(m.UnitSize), fmtSecs(m.Mean), fmtSecs(ms2[i].Mean), fmt.Sprintf("%.2fx", pf))
			points++
			perByte := m.Mean / float64(volume)
			if perByte < plateauMin {
				plateauMin = perByte
			}
			if perByte > plateauMax {
				plateauMax = perByte
			}
			if pf > 1.2 {
				spikes++
				// Repeatability: the rerun must reproduce the spike.
				if rel := ms2[i].Mean/m.Mean - 1; rel < -0.2 || rel > 0.2 {
					rep.note("WARNING: spike at %s/%s not repeatable", fmtBytes(volume), fmtBytes(m.UnitSize))
				}
			}
		}
	}
	rep.Values["sweep_points"] = float64(points)
	rep.Values["spikes"] = float64(spikes)
	rep.Values["spike_fraction"] = float64(spikes) / float64(points)
	rep.Values["plateau_spread"] = plateauMax / plateauMin
	rep.note("paper: spikes up to ~3x, repeatable and stable in time")
	return rep, nil
}

// grepCalibration runs the escalating probe protocol for grep and fits the
// Eq. (1)-style model at the 100 MB unit size.
func grepCalibration(cfg Config, salt string) (*perfmodel.Affine, []float64, []float64, error) {
	c, in, err := qualifiedSetup(cfg.Seed, salt)
	if err != nil {
		return nil, nil, nil, err
	}
	h := probe.NewHarness(c, in, workload.NewGrep(), workload.Local{})
	var xs, ys []float64
	for _, volume := range []int64{200_000_000, 500_000_000, 1_000_000_000, 2_000_000_000, 5_000_000_000} {
		items := sampleItems(htmlDist(), volume+50_000_000, cfg.Seed, fmt.Sprintf("%s-%d", salt, volume))
		ms, err := measureUnits(h, items, volume, []int64{100_000_000})
		if err != nil {
			return nil, nil, nil, err
		}
		for _, r := range ms[0].Runs {
			xs = append(xs, float64(volume))
			ys = append(ys, r)
		}
	}
	m, err := perfmodel.FitAffine(xs, ys)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, xs, ys, nil
}

// Eq12 reproduces the two grep linear fits: Eq. (1) from the escalation
// probes at the 100 MB unit size, and Eq. (2) from additional random 2 GB
// samples, whose slightly different slope shows the sampling sensitivity
// the paper reports (32.2s mean with min 23.25 / max 45.95 across
// samples).
func Eq12(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("eq12", "grep linear fits at the 100 MB unit size")
	m1, xs, ys, err := grepCalibration(cfg, "eq12")
	if err != nil {
		return nil, err
	}
	rep.note("model (1): %v [paper: f(x) = -0.974 + 1.324e-8x, R²=0.999]", m1)

	// Random sampling: 10 independent 2 GB samples (§5.1).
	c, in, err := qualifiedSetup(cfg.Seed, "eq12-samples")
	if err != nil {
		return nil, err
	}
	h := probe.NewHarness(c, in, workload.NewGrep(), workload.Local{})
	xs2 := append([]float64(nil), xs...)
	ys2 := append([]float64(nil), ys...)
	var sampleMeans []float64
	rep.Header = []string{"sample", "volume", "mean", "stddev"}
	for i := 0; i < 10; i++ {
		const volume = 2_000_000_000
		items := sampleItems(htmlDist(), volume+50_000_000, cfg.Seed, fmt.Sprintf("eq12-rs-%d", i))
		ms, err := measureUnits(h, items, volume, []int64{100_000_000})
		if err != nil {
			return nil, err
		}
		sampleMeans = append(sampleMeans, ms[0].Mean)
		rep.addRow(fmt.Sprintf("%d", i+1), fmtBytes(volume), fmtSecs(ms[0].Mean), fmtSecs(ms[0].StdDev))
		for _, r := range ms[0].Runs {
			xs2 = append(xs2, float64(volume))
			ys2 = append(ys2, r)
		}
	}
	m2, err := perfmodel.FitAffine(xs2, ys2)
	if err != nil {
		return nil, err
	}
	rep.note("model (2): %v [paper: f(x) = 0.208 + 1.503e-8x]", m2)
	s := stats.Summarize(sampleMeans)
	rep.Values["eq1_slope_s_per_byte"] = m1.A
	rep.Values["eq1_r2"] = m1.R2()
	rep.Values["eq2_slope_s_per_byte"] = m2.A
	rep.Values["samples_mean_s"] = s.Mean
	rep.Values["samples_min_s"] = s.Min
	rep.Values["samples_max_s"] = s.Max
	rep.Values["sample_spread"] = s.Max / s.Min
	return rep, nil
}

// Fig6 reproduces the 100 GB experiment of Fig. 6: predict with the fitted
// model, run at the 100 MB unit size (staged across 100 EBS volumes) and
// in the original format, and compare. The paper reports prediction
// 1387.8s vs actual 1975.6s (a ~30% underestimate) and a 5.6x improvement
// over the original small files.
func Fig6(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := newReport("fig6", "grep on 100 GB: prediction vs actual, reshaped vs original")
	m1, _, _, err := grepCalibration(cfg, "fig6-cal")
	if err != nil {
		return nil, err
	}
	const volume = 100_000_000_000
	predicted := m1.Predict(volume)

	// Execution environment: a fresh (unqualified-pool) instance with the
	// data staged on EBS volumes. The EBS bandwidth and placement draw
	// differ from the calibration instance's local storage — the paper's
	// prediction error has the same root (training conditions ≠ production
	// conditions).
	c, in, err := qualifiedSetup(cfg.Seed, "fig6-run")
	if err != nil {
		return nil, err
	}
	vol, err := c.CreateVolume(in.Zone, 1000)
	if err != nil {
		return nil, err
	}
	if err := c.Attach(vol, in); err != nil {
		return nil, err
	}

	// Reshaped run: 1000 unit files of 100 MB.
	units := make([]workload.Item, 1000)
	for i := range units {
		units[i] = workload.NewItem(100_000_000)
	}
	reshaped, err := workload.Estimate(in, workload.NewGrep(), units, vol, "fig6-reshaped")
	if err != nil {
		return nil, err
	}
	// Original-format run: sample the HTML distribution up to 100 GB.
	origBinItems := sampleItems(htmlDist(), volume, cfg.Seed, "fig6-orig")
	origItems := make([]workload.Item, len(origBinItems))
	for i, it := range origBinItems {
		origItems[i] = workload.NewItem(it.Size)
	}
	original, err := workload.Estimate(in, workload.NewGrep(), origItems, vol, "fig6-original")
	if err != nil {
		return nil, err
	}

	actual := reshaped.Seconds()
	rep.Header = []string{"configuration", "files", "time", "vs 100MB units"}
	rep.addRow("predicted (model 1)", "-", fmtSecs(predicted), fmt.Sprintf("%.2fx", predicted/actual))
	rep.addRow("100 MB units", "1000", fmtSecs(actual), "1.00x")
	rep.addRow("original format", fmt.Sprintf("%d", len(origItems)), fmtSecs(original.Seconds()), fmt.Sprintf("%.2fx", original.Seconds()/actual))
	rep.note("paper: predicted 1387.8s, actual 1975.6s (~30%% underestimate), 5.6x improvement")
	rep.Values["predicted_s"] = predicted
	rep.Values["actual_s"] = actual
	rep.Values["underestimate_frac"] = (actual - predicted) / actual
	rep.Values["improvement_vs_original"] = original.Seconds() / actual
	rep.Values["original_files"] = float64(len(origItems))
	return rep, nil
}
