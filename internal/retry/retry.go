// Package retry is the resilience layer's backoff engine: exponential
// backoff with full jitter, a shared per-run retry budget, and
// retryability classified by the errs taxonomy. It exists because the
// distributed scan (internal/dist) must survive the faults the paper's
// EC2 deployment actually saw — transient I/O errors, refused
// connections, overloaded workers — without ever retrying a
// deterministic failure (corrupt shard, bad argument) and without
// letting independent retry loops stampede a struggling worker in
// lockstep.
//
// The jitter follows the "full jitter" scheme: each wait is drawn
// uniformly from [0, min(MaxDelay, BaseDelay·2^attempt)). Draws come
// from a seeded stream, so a chaos run's wait schedule — like its fault
// schedule (internal/fault) — is replayable from the seed.
//
// Server-provided hints win over the dice: when an error carries an
// errs.RetryAfter annotation (the HTTP Retry-After header on 429/503),
// the loop waits at least that long.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/errs"
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	// DefaultMaxAttempts bounds one Do call: the first try plus up to
	// three retries.
	DefaultMaxAttempts = 4
	// DefaultBaseDelay is the upper bound of the first backoff draw.
	DefaultBaseDelay = 5 * time.Millisecond
	// DefaultMaxDelay caps the exponential growth.
	DefaultMaxDelay = 250 * time.Millisecond
)

// Policy configures one retry loop. The zero value is usable: defaults
// above, seed 1, real sleeping.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// 0 means DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int
	// BaseDelay scales the first backoff window (0 = DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps every backoff window (0 = DefaultMaxDelay).
	MaxDelay time.Duration
	// Seed selects the deterministic jitter stream (0 = seed 1). Two Do
	// calls with the same seed draw identical wait schedules.
	Seed int64
	// Sleep waits for d or until ctx is done, returning the ctx's
	// categorised error in the latter case. nil means a real timer;
	// tests substitute a recording stub so nothing actually sleeps.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = sleep
	}
	return p
}

func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return errs.FromContext(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return errs.FromContext(ctx)
	case <-t.C:
		return nil
	}
}

// Budget is a concurrency-safe retry allowance shared by every retry
// loop of one run. It bounds the *total* number of retries a scan may
// spend across all workers and tasks, so a systemic fault (every shard
// read failing) degenerates into a prompt loud failure instead of an
// exponential stall. A nil *Budget means unlimited.
type Budget struct {
	mu        sync.Mutex
	remaining int
	used      int
}

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget {
	return &Budget{remaining: n}
}

// Take consumes one retry from the budget, reporting false when it is
// exhausted (the caller must surface the last error instead of
// retrying). A nil budget always grants.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	b.used++
	return true
}

// Used reports how many retries have been consumed.
func (b *Budget) Used() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Do runs op, retrying transient failures (errs.IsRetryable) with
// exponential backoff and full jitter until op succeeds, a
// non-retryable error occurs, attempts or the shared budget run out, or
// ctx is cancelled. It returns the number of retries performed (0 when
// the first attempt decided the outcome) and the final error.
//
// Waits are drawn from the policy's seeded stream; an errs.RetryAfter
// hint on the error raises the wait to at least the server's ask.
func Do(ctx context.Context, p Policy, b *Budget, op func(ctx context.Context) error) (retries int, err error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	for attempt := 0; ; attempt++ {
		if cerr := errs.FromContext(ctx); cerr != nil {
			return retries, cerr
		}
		err = op(ctx)
		if err == nil || !errs.IsRetryable(err) {
			return retries, err
		}
		if attempt+1 >= p.MaxAttempts || !b.Take() {
			return retries, err
		}
		d := p.backoff(rng, attempt)
		if hint, ok := errs.RetryAfterHint(err); ok && hint > d {
			d = hint
		}
		if serr := p.Sleep(ctx, d); serr != nil {
			return retries, serr
		}
		retries++
	}
}

// backoff draws the full-jitter wait for the given attempt index:
// uniform over [0, min(MaxDelay, BaseDelay·2^attempt)).
func (p Policy) backoff(rng *rand.Rand, attempt int) time.Duration {
	window := p.BaseDelay << uint(attempt)
	if window <= 0 || window > p.MaxDelay { // <=0 catches shift overflow
		window = p.MaxDelay
	}
	return time.Duration(rng.Int63n(int64(window)))
}
