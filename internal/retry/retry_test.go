package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/errs"
)

// recordingSleep returns a Sleep stub that records every requested wait
// without sleeping.
func recordingSleep(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return errs.FromContext(ctx)
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	var waits []time.Duration
	calls := 0
	retries, err := Do(context.Background(), Policy{
		MaxAttempts: 5,
		Sleep:       recordingSleep(&waits),
	}, nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errs.Unavailable("attempt %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || retries != 2 || len(waits) != 2 {
		t.Fatalf("calls=%d retries=%d waits=%d, want 3/2/2", calls, retries, len(waits))
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	calls := 0
	retries, err := Do(context.Background(), Policy{MaxAttempts: 5}, nil, func(context.Context) error {
		calls++
		return errs.Corrupt("shard-000")
	})
	if !errors.Is(err, errs.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d, want 1/0 — corrupt data must never be retried", calls, retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var waits []time.Duration
	calls := 0
	retries, err := Do(context.Background(), Policy{
		MaxAttempts: 3,
		Sleep:       recordingSleep(&waits),
	}, nil, func(context.Context) error {
		calls++
		return errs.Unavailable("always down")
	})
	if !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3/2", calls, retries)
	}
}

func TestDoHonoursSharedBudget(t *testing.T) {
	b := NewBudget(3)
	var waits []time.Duration
	p := Policy{MaxAttempts: 10, Sleep: recordingSleep(&waits)}
	fail := func(context.Context) error { return errs.Unavailable("down") }

	// First loop spends the whole budget.
	if retries, _ := Do(context.Background(), p, b, fail); retries != 3 {
		t.Fatalf("first loop performed %d retries, want 3 (budget-capped)", retries)
	}
	// Second loop finds it empty: one attempt, no retries.
	retries, err := Do(context.Background(), p, b, fail)
	if retries != 0 || !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("retries=%d err=%v, want 0 retries with the last error surfaced", retries, err)
	}
	if b.Used() != 3 {
		t.Fatalf("budget used = %d, want 3", b.Used())
	}
}

func TestDoHonoursRetryAfterHint(t *testing.T) {
	var waits []time.Duration
	hint := 40 * time.Millisecond
	calls := 0
	_, err := Do(context.Background(), Policy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond, // jitter window far below the hint
		Sleep:       recordingSleep(&waits),
	}, nil, func(context.Context) error {
		calls++
		if calls == 1 {
			return errs.RetryAfter(errs.Unavailable("429 too many requests"), hint)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(waits) != 1 || waits[0] < hint {
		t.Fatalf("waits = %v, want one wait >= the server's %v hint", waits, hint)
	}
}

func TestDoDeterministicJitterSchedule(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var waits []time.Duration
		Do(context.Background(), Policy{
			MaxAttempts: 6,
			Seed:        seed,
			Sleep:       recordingSleep(&waits),
		}, nil, func(context.Context) error { return errs.Unavailable("down") })
		return waits
	}
	a, b := schedule(7), schedule(7)
	if len(a) != 5 {
		t.Fatalf("schedule has %d waits, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical jitter schedules")
	}
	// Full jitter stays inside the growing window.
	p := Policy{}.withDefaults()
	for i, d := range a {
		window := p.BaseDelay << uint(i)
		if window > p.MaxDelay {
			window = p.MaxDelay
		}
		if d < 0 || d >= window {
			t.Fatalf("wait %d = %v outside [0, %v)", i, d, window)
		}
	}
}

func TestDoRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Do(ctx, Policy{}, nil, func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if calls != 0 {
		t.Fatal("op ran despite a cancelled context")
	}

	// Cancellation during the backoff sleep surfaces as ErrCancelled too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	_, err = Do(ctx2, Policy{MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel2()
		return errs.FromContext(ctx)
	}}, nil, func(context.Context) error { return errs.Unavailable("down") })
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled from mid-backoff cancellation", err)
	}
}

func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget must always grant")
		}
	}
	if b.Used() != 0 {
		t.Fatal("nil budget reports nonzero use")
	}
}
