package probe

import (
	"fmt"
	"testing"

	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/corpus"
	"repro/internal/workload"
)

func corpusItems(t *testing.T, spec corpus.Spec, seed int64) []binpack.Item {
	t.Helper()
	fs, err := corpus.Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	var items []binpack.Item
	for _, f := range fs.List() {
		items = append(items, binpack.Item{ID: f.Name, Size: f.Size})
	}
	return items
}

func qualified(t *testing.T, seed int64) (*cloudsim.Cloud, *cloudsim.Instance) {
	t.Helper()
	c := cloudsim.New(seed)
	in, _, err := c.AcquireQualified(cloudsim.Small, "us-east-1a", 50)
	if err != nil {
		t.Fatal(err)
	}
	return c, in
}

func TestSelectPrefix(t *testing.T) {
	files := []binpack.Item{{ID: "a", Size: 10}, {ID: "b", Size: 20}, {ID: "c", Size: 30}}
	sel, err := SelectPrefix(files, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Errorf("selection = %v", sel)
	}
	if _, err := SelectPrefix(files, 100); err == nil {
		t.Error("expected error for oversized volume")
	}
	if _, err := SelectPrefix(files, 0); err == nil {
		t.Error("expected error for zero volume")
	}
}

func TestBuildSetDerivesMultiplesWithoutRepacking(t *testing.T) {
	items := corpusItems(t, corpus.Text400K(0.005), 1) // 2000 files
	const volume = 2_000_000
	const s0 = 10_000
	set, err := BuildSet(items, volume, s0, []int{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Original) == 0 {
		t.Fatal("no original probe")
	}
	units := set.UnitSizes()
	want := []int64{s0, 2 * s0, 5 * s0, 10 * s0}
	if len(units) != len(want) {
		t.Fatalf("unit sizes = %v, want %v", units, want)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Errorf("unit %d = %d, want %d", i, units[i], want[i])
		}
	}
	// Volume is conserved across every reshaping.
	origTotal := workload.TotalBytes(set.Original)
	for u, probeItems := range set.ByUnit {
		if got := workload.TotalBytes(probeItems); got != origTotal {
			t.Errorf("unit %d: volume %d != original %d", u, got, origTotal)
		}
		// Larger units → no more files than the s0 packing.
		if u > s0 && len(probeItems) > len(set.ByUnit[s0]) {
			t.Errorf("unit %d has more files than s0", u)
		}
	}
}

func TestBuildSetValidation(t *testing.T) {
	items := []binpack.Item{{ID: "a", Size: 100}}
	if _, err := BuildSet(items, 50, 0, nil); err == nil {
		t.Error("expected error for s0=0")
	}
	if _, err := BuildSet(items, 1000, 10, nil); err == nil {
		t.Error("expected error for volume beyond corpus")
	}
}

func TestMeasureProbeRepeats(t *testing.T) {
	c, in := qualified(t, 2)
	h := NewHarness(c, in, workload.NewGrep(), workload.Local{})
	m, err := h.MeasureProbe(1000000, 100000, workload.Items([]int64{100000, 100000, 100000}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 5 {
		t.Errorf("runs = %d, want 5", len(m.Runs))
	}
	if m.Mean <= 0 || m.Files != 3 {
		t.Errorf("measurement = %+v", m)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
	if _, err := h.MeasureProbe(10, 10, nil); err == nil {
		t.Error("expected error for empty probe")
	}
}

func TestMeasureSetCoversAllUnits(t *testing.T) {
	items := corpusItems(t, corpus.Text400K(0.002), 3)
	set, err := BuildSet(items, 500_000, 5_000, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	c, in := qualified(t, 3)
	h := NewHarness(c, in, workload.NewPOS(), workload.Local{})
	ms, err := h.MeasureSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 { // orig + 3 units
		t.Fatalf("measurements = %d, want 4", len(ms))
	}
	if ms[0].UnitSize != 0 {
		t.Error("first measurement should be the original probe")
	}
}

func TestProtocolEscalatesUntilStable(t *testing.T) {
	items := corpusItems(t, corpus.Text400K(0.02), 4)
	c, in := qualified(t, 4)
	h := NewHarness(c, in, workload.NewGrep(), workload.Local{})
	p := &Protocol{
		Harness:       h,
		InitialVolume: 100_000, // tiny: setup noise dominates → unstable
		Growth:        10,
		MaxVolume:     100_000_000,
		StableCV:      0.15,
		S0:            50_000,
		Multiples:     []int{10},
	}
	res, err := p.Run(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) == 0 {
		t.Fatal("no probe sets measured")
	}
	if !res.Stable {
		t.Error("protocol never stabilised up to 100 MB")
	}
	// The first (tiny) volume should be less stable than the last.
	firstCV, lastCV := 0.0, 0.0
	for _, m := range res.Sets[0] {
		if m.CV() > firstCV {
			firstCV = m.CV()
		}
	}
	for _, m := range res.Sets[len(res.Sets)-1] {
		if m.CV() > lastCV {
			lastCV = m.CV()
		}
	}
	if firstCV <= lastCV {
		t.Errorf("instability did not shrink: first max CV %.3f vs last %.3f", firstCV, lastCV)
	}
}

func TestProtocolValidation(t *testing.T) {
	p := &Protocol{InitialVolume: 0}
	if _, err := p.Run(nil); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestPickPreferredUnitGrepShape(t *testing.T) {
	// Grep-like measurements: tiny units slow, plateau from 10 MB.
	ms := []Measurement{
		{UnitSize: 0, Mean: 60, StdDev: 2},
		{UnitSize: 1_000_000, Mean: 20, StdDev: 1},
		{UnitSize: 10_000_000, Mean: 14.2, StdDev: 0.8},
		{UnitSize: 100_000_000, Mean: 14.0, StdDev: 0.3},
		{UnitSize: 1_000_000_000, Mean: 14.1, StdDev: 1.5},
	}
	got, err := PickPreferredUnit(ms, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 100 MB: on the plateau with the smallest stddev — the paper's pick.
	if got != 100_000_000 {
		t.Errorf("preferred unit = %d, want 100 MB", got)
	}
}

func TestPickPreferredUnitPOSShape(t *testing.T) {
	// POS-like: the original segmentation wins (Fig. 7).
	ms := []Measurement{
		{UnitSize: 0, Mean: 80, StdDev: 1},
		{UnitSize: 1_000, Mean: 85, StdDev: 1},
		{UnitSize: 10_000, Mean: 95, StdDev: 1},
		{UnitSize: 1_000_000, Mean: 130, StdDev: 2},
	}
	got, err := PickPreferredUnit(ms, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("preferred unit = %d, want 0 (original)", got)
	}
}

func TestPickPreferredUnitEmpty(t *testing.T) {
	if _, err := PickPreferredUnit(nil, 0.05); err == nil {
		t.Error("expected error for no measurements")
	}
}

func TestPointsExtraction(t *testing.T) {
	sets := [][]Measurement{
		{{Volume: 100, UnitSize: 10, Mean: 1, Runs: []float64{0.9, 1.1}}},
		{{Volume: 200, UnitSize: 10, Mean: 2, Runs: []float64{1.9, 2.1}},
			{Volume: 200, UnitSize: 20, Mean: 3, Runs: []float64{3}}},
	}
	xs, ys := Points(sets, 10)
	if len(xs) != 2 || ys[0] != 1 || ys[1] != 2 {
		t.Errorf("points = %v, %v", xs, ys)
	}
	xr, yr := AllRunsPoints(sets, 10)
	if len(xr) != 4 || yr[0] != 0.9 {
		t.Errorf("all-runs points = %v, %v", xr, yr)
	}
	if xs2, _ := Points(sets, 99); xs2 != nil {
		t.Error("unknown unit returned points")
	}
}

func TestFig5SpikesAreRepeatable(t *testing.T) {
	// Running the same probe family twice on the same EBS volume must
	// reproduce the same slow placements ("the results are repeatable and
	// stable in time").
	items := corpusItems(t, corpus.Text400K(0.02), 6)
	c, in := qualified(t, 6)
	vol, err := c.CreateVolume("us-east-1a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(vol, in); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(c, in, workload.NewGrep(), vol)
	set, err := BuildSet(items, 5_000_000, 100_000, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	first, err := h.MeasureSet(set)
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.MeasureSet(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		rel := first[i].Mean/second[i].Mean - 1
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("unit %d mean not repeatable: %.3f vs %.3f", first[i].UnitSize, first[i].Mean, second[i].Mean)
		}
	}
}

func TestHarnessDatasetKeyFnDrivesPlacement(t *testing.T) {
	// Two harnesses with different key functions can see different speeds
	// on the same volume — the mechanism behind Fig. 5's spikes.
	items := corpusItems(t, corpus.Text400K(0.01), 7)
	c, in := qualified(t, 7)
	vol, err := c.CreateVolume("us-east-1a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(vol, in); err != nil {
		t.Fatal(err)
	}
	set, err := BuildSet(items, 2_000_000, 100_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for i := 0; i < 40; i++ {
		h := NewHarness(c, in, workload.NewGrep(), vol)
		key := fmt.Sprintf("clone-%d", i)
		h.DatasetKeyFn = func(volume, unitSize int64) string { return key }
		m, err := h.MeasureProbe(set.Volume, 100_000, set.ByUnit[100_000])
		if err != nil {
			t.Fatal(err)
		}
		means[key] = m.Mean
	}
	min, max := 1e18, 0.0
	for _, v := range means {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 1.3*min {
		t.Errorf("clone spread %.2fx, want > 1.3x (paper saw up to 3x)", max/min)
	}
}
