package probe

import (
	"repro/internal/binpack"
	"repro/internal/workload"
)

// Complexity-aware item construction: probes built over a heterogeneous
// corpus (corpus.Profile) carry each file's complexity, and merged unit
// files carry the size-weighted mean of their members' — the physically
// right aggregate for a per-byte cost model.

// ItemsWithComplexity converts files to workload items carrying their
// complexity factors (missing entries default to 1).
func ItemsWithComplexity(files []binpack.Item, cx map[string]float64) []workload.Item {
	items := make([]workload.Item, len(files))
	for i, f := range files {
		c := cx[f.ID]
		if c <= 0 {
			c = 1
		}
		items[i] = workload.Item{Size: f.Size, Complexity: c}
	}
	return items
}

// BinsToItemsWithComplexity converts packed bins to unit-file items whose
// complexity is the size-weighted mean of the members'.
func BinsToItemsWithComplexity(bins []*binpack.Bin, cx map[string]float64) []workload.Item {
	items := make([]workload.Item, 0, len(bins))
	for _, b := range bins {
		if b.Used == 0 {
			continue
		}
		var weighted float64
		for _, it := range b.Items {
			c := cx[it.ID]
			if c <= 0 {
				c = 1
			}
			weighted += c * float64(it.Size)
		}
		items = append(items, workload.Item{
			Size:       b.Used,
			Complexity: weighted / float64(b.Used),
		})
	}
	return items
}
