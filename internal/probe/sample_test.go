package probe

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/binpack"
)

func sampleCorpus(n int) []binpack.Item {
	items := make([]binpack.Item, n)
	for i := range items {
		items[i] = binpack.Item{ID: fmt.Sprintf("s%05d", i), Size: int64(1000 + i%100)}
	}
	return items
}

func TestSampleWithoutReplacementBasics(t *testing.T) {
	files := sampleCorpus(1000)
	r := rand.New(rand.NewSource(1))
	sample, err := SampleWithoutReplacement(files, 50_000, r)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	seen := map[string]bool{}
	for _, f := range sample {
		if seen[f.ID] {
			t.Fatalf("file %s drawn twice", f.ID)
		}
		seen[f.ID] = true
		total += f.Size
	}
	if total < 50_000 {
		t.Errorf("sample volume %d below target", total)
	}
	// Overshoot bounded by one file.
	if total > 50_000+1100 {
		t.Errorf("sample overshoot too large: %d", total)
	}
}

func TestSampleInputNotMutated(t *testing.T) {
	files := sampleCorpus(100)
	before := append([]binpack.Item(nil), files...)
	r := rand.New(rand.NewSource(2))
	if _, err := SampleWithoutReplacement(files, 10_000, r); err != nil {
		t.Fatal(err)
	}
	for i := range files {
		if files[i] != before[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestSampleErrors(t *testing.T) {
	files := sampleCorpus(10)
	r := rand.New(rand.NewSource(3))
	if _, err := SampleWithoutReplacement(files, 0, r); err == nil {
		t.Error("expected error for zero volume")
	}
	if _, err := SampleWithoutReplacement(files, 1_000_000, r); err == nil {
		t.Error("expected error for oversized sample")
	}
	if _, err := SampleWithoutReplacement(files, 100, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestSampleRandomness(t *testing.T) {
	files := sampleCorpus(1000)
	a, err := SampleWithoutReplacement(files, 20_000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleWithoutReplacement(files, 20_000, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].ID != b[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
	// Same seed reproduces exactly.
	c, err := SampleWithoutReplacement(files, 20_000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(c) {
		t.Fatal("same seed, different sample size")
	}
	for i := range a {
		if a[i].ID != c[i].ID {
			t.Fatal("same seed, different sample")
		}
	}
}

func TestMultiSampleDisjoint(t *testing.T) {
	files := sampleCorpus(2000)
	r := rand.New(rand.NewSource(4))
	samples, err := MultiSample(files, 10, 100_000, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
	seen := map[string]int{}
	for si, sample := range samples {
		for _, f := range sample {
			if prev, dup := seen[f.ID]; dup {
				t.Fatalf("file %s in samples %d and %d", f.ID, prev, si)
			}
			seen[f.ID] = si
		}
	}
}

func TestMultiSampleExhaustion(t *testing.T) {
	files := sampleCorpus(100) // ~105 kB total
	r := rand.New(rand.NewSource(5))
	if _, err := MultiSample(files, 3, 50_000, r); err == nil {
		t.Error("expected exhaustion error")
	}
	if _, err := MultiSample(files, 0, 1000, r); err == nil {
		t.Error("expected error for zero samples")
	}
}
