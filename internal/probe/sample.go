package probe

import (
	"fmt"
	"math/rand"

	"repro/internal/binpack"
)

// SampleWithoutReplacement draws files uniformly at random, without
// replacement, until the cumulative size reaches volume — the §5.1/§5.2
// random-sampling procedure used to refit the performance models ("we
// choose 10 random samples (without replacement) of 2 GB"). The input
// slice is not modified. The last drawn file may overshoot the volume,
// mirroring the paper's whole-file samples.
func SampleWithoutReplacement(files []binpack.Item, volume int64, r *rand.Rand) ([]binpack.Item, error) {
	if volume <= 0 {
		return nil, fmt.Errorf("probe: sample volume must be positive, got %d", volume)
	}
	if r == nil {
		return nil, fmt.Errorf("probe: nil random source")
	}
	var available int64
	for _, f := range files {
		available += f.Size
	}
	if available < volume {
		return nil, fmt.Errorf("probe: corpus holds %d bytes, sample needs %d", available, volume)
	}
	// Partial Fisher-Yates over an index permutation: draw until filled.
	idx := make([]int, len(files))
	for i := range idx {
		idx[i] = i
	}
	var out []binpack.Item
	var total int64
	for i := 0; total < volume && i < len(idx); i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		f := files[idx[i]]
		out = append(out, f)
		total += f.Size
	}
	return out, nil
}

// MultiSample draws n disjoint samples of the given volume (each without
// replacement, and no file shared across samples), as in the paper's ten
// 2 GB grep samples. It errors when the corpus cannot supply them all.
func MultiSample(files []binpack.Item, n int, volume int64, r *rand.Rand) ([][]binpack.Item, error) {
	if n <= 0 {
		return nil, fmt.Errorf("probe: sample count must be positive, got %d", n)
	}
	remaining := append([]binpack.Item(nil), files...)
	samples := make([][]binpack.Item, 0, n)
	for s := 0; s < n; s++ {
		sample, err := SampleWithoutReplacement(remaining, volume, r)
		if err != nil {
			return nil, fmt.Errorf("probe: sample %d of %d: %w", s+1, n, err)
		}
		samples = append(samples, sample)
		taken := make(map[string]bool, len(sample))
		for _, f := range sample {
			taken[f.ID] = true
		}
		next := remaining[:0]
		for _, f := range remaining {
			if !taken[f.ID] {
				next = append(next, f)
			}
		}
		remaining = next
	}
	return samples, nil
}
