package probe

import (
	"math/rand"
	"testing"

	"repro/internal/binpack"
	"repro/internal/corpus"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

func TestItemsWithComplexity(t *testing.T) {
	files := []binpack.Item{{ID: "a", Size: 10}, {ID: "b", Size: 20}}
	cx := map[string]float64{"a": 2.0} // b missing → defaults to 1
	items := ItemsWithComplexity(files, cx)
	if items[0].Complexity != 2.0 || items[1].Complexity != 1.0 {
		t.Errorf("complexities = %v, %v", items[0].Complexity, items[1].Complexity)
	}
}

func TestBinsToItemsWithComplexityWeightedMean(t *testing.T) {
	files := []binpack.Item{{ID: "a", Size: 30}, {ID: "b", Size: 10}}
	bins, err := binpack.FirstFit(files, 100)
	if err != nil {
		t.Fatal(err)
	}
	cx := map[string]float64{"a": 1.0, "b": 3.0}
	items := BinsToItemsWithComplexity(bins, cx)
	if len(items) != 1 {
		t.Fatalf("items = %d", len(items))
	}
	// (1.0·30 + 3.0·10) / 40 = 1.5
	if items[0].Complexity != 1.5 {
		t.Errorf("merged complexity = %v, want 1.5", items[0].Complexity)
	}
	if items[0].Size != 40 {
		t.Errorf("merged size = %d", items[0].Size)
	}
}

func TestGenerateProfileGradient(t *testing.T) {
	spec := corpus.Text400K(0.002)
	p, err := corpus.GenerateProfile(spec, 5, corpus.RampComplexity{From: 0.8, To: 1.6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	files := p.FS.List()
	first := p.Complexity[files[0].Name]
	last := p.Complexity[files[len(files)-1].Name]
	if first != 0.8 || last != 1.6 {
		t.Errorf("gradient endpoints = %v, %v", first, last)
	}
	mean := p.MeanComplexity()
	if mean < 1.0 || mean > 1.4 {
		t.Errorf("mean complexity = %v, want ≈1.2", mean)
	}
	// Flat gradient, with jitter: complexity varies around the level.
	pj, err := corpus.GenerateProfile(spec, 5, corpus.FlatComplexity(1), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, c := range pj.Complexity {
		if c != 1 {
			varied = true
		}
		if c < 0.05 {
			t.Fatalf("complexity %v below floor", c)
		}
	}
	if !varied {
		t.Error("jitter produced no variation")
	}
}

func TestGenerateProfileValidation(t *testing.T) {
	spec := corpus.Text400K(0.0001)
	if _, err := corpus.GenerateProfile(spec, 1, nil, 0); err == nil {
		t.Error("expected error for nil gradient")
	}
	if _, err := corpus.GenerateProfile(spec, 1, corpus.FlatComplexity(1), -1); err == nil {
		t.Error("expected error for negative jitter")
	}
}

// The §5.2 mechanism, reproduced honestly: on a corpus whose complexity
// ramps upward, a prefix-based calibration (the escalation protocol reads
// files in order) under-prices the corpus, while random samples capture
// the true mean — the reason the paper's random-sample refits moved the
// slope, and why "random sampling can be vital".
func TestRandomSamplingCapturesComplexityVariation(t *testing.T) {
	profile, err := corpus.GenerateProfile(corpus.Text400K(0.05), 9,
		corpus.RampComplexity{From: 0.7, To: 1.7}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	files := profileItems(profile)
	c, in := qualified(t, 9)
	h := NewHarness(c, in, workload.NewPOS(), workload.Local{})

	measure := func(sel []binpack.Item, volume int64) (float64, float64) {
		items := ItemsWithComplexity(sel, profile.Complexity)
		m, err := h.MeasureProbe(volume, 0, items)
		if err != nil {
			t.Fatal(err)
		}
		return float64(workload.TotalBytes(items)), m.Mean
	}

	// Prefix calibration at two volumes (the escalation protocol's shape).
	var pxs, pys []float64
	for _, volume := range []int64{2_000_000, 8_000_000} {
		sel, err := SelectPrefix(files, volume)
		if err != nil {
			t.Fatal(err)
		}
		x, y := measure(sel, volume)
		pxs = append(pxs, x)
		pys = append(pys, y)
	}
	prefixFit, err := perfmodel.FitAffine(pxs, pys)
	if err != nil {
		t.Fatal(err)
	}

	// Random-sample calibration at the same volumes.
	r := rand.New(rand.NewSource(10))
	var rxs, rys []float64
	for _, volume := range []int64{2_000_000, 8_000_000} {
		for s := 0; s < 3; s++ {
			sel, err := SampleWithoutReplacement(files, volume, r)
			if err != nil {
				t.Fatal(err)
			}
			x, y := measure(sel, volume)
			rxs = append(rxs, x)
			rys = append(rys, y)
		}
	}
	randomFit, err := perfmodel.FitAffine(rxs, rys)
	if err != nil {
		t.Fatal(err)
	}

	// The prefix sees complexity ≈0.7-0.8; random samples see ≈1.2. The
	// random-sample slope must be markedly higher, like the paper's
	// Eq. (2) vs Eq. (1) direction.
	ratio := randomFit.A / prefixFit.A
	if ratio < 1.2 {
		t.Errorf("random-sample slope only %vx the prefix slope; the complexity ramp should show", ratio)
	}
	// And the random model predicts the full corpus far better.
	allItems := ItemsWithComplexity(files, profile.Complexity)
	var trueSeconds float64
	for _, it := range allItems {
		trueSeconds += workload.NewPOS().Process(it, 80, in).Seconds()
	}
	total := float64(workload.TotalBytes(allItems))
	prefErr := relErr(prefixFit.Predict(total), trueSeconds)
	randErr := relErr(randomFit.Predict(total), trueSeconds)
	if randErr >= prefErr {
		t.Errorf("random-sample model no better: err %v vs prefix %v", randErr, prefErr)
	}
}

func relErr(pred, truth float64) float64 {
	d := pred - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

func profileItems(p *corpus.Profile) []binpack.Item {
	files := p.FS.List()
	items := make([]binpack.Item, len(files))
	for i, f := range files {
		items[i] = binpack.Item{ID: f.Name, Size: f.Size}
	}
	return items
}
